(* AutoFDO end to end (the paper's Section V-C causal chain) on one SPEC
   analog:

     dune exec examples/autofdo_demo.exe

   1. compile a profiling binary at clang -O2;
   2. run it under cost-driven PC sampling;
   3. map samples to source lines through the binary's line table
      (samples on line-less addresses are lost);
   4. recompile at -O2 with the profile driving block frequencies and
      inliner hotness;
   5. repeat with a debug-friendlier O2-d3 profiling build and compare. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module A = Debugtuner.Autofdo

let () =
  print_endline "== AutoFDO demo: 505.mcf analog ==\n";
  let bench = Spec.find "505.mcf" in
  let ast = Suite_types.ast bench in
  let roots = Suite_types.roots bench in
  let o2 = C.make C.Clang C.O2 in

  let describe tag (profiling_config : C.t) =
    let profiling_bin = T.compile ast ~config:profiling_config ~roots in
    let coll =
      A.collect profiling_bin ~entry:"main" ~workloads:[ [] ] ~period:211
        ~seed:7
    in
    Printf.printf
      "%-8s profiling binary: %d steppable lines; %d samples, %d lost (%.1f%%)\n"
      tag
      (List.length (Dwarfish.steppable_lines profiling_bin.Emit.debug))
      coll.A.samples_taken coll.A.samples_lost
      (100.0
      *. float_of_int coll.A.samples_lost
      /. float_of_int (max 1 coll.A.samples_taken));
    let final =
      T.compile
        ~options:(T.Options.make ~profile:coll.A.profile ())
        ast ~config:o2 ~roots
    in
    let cost = (Vm.run final ~entry:"main" ~input:[] Vm.default_opts).Vm.cost in
    Printf.printf "%-8s AutoFDO-optimized binary cost: %d cycles\n\n" tag cost;
    cost
  in

  let plain = T.compile ast ~config:o2 ~roots in
  let plain_cost =
    (Vm.run plain ~entry:"main" ~input:[] Vm.default_opts).Vm.cost
  in
  Printf.printf "plain O2 (no AutoFDO): %d cycles\n\n" plain_cost;

  let base = describe "O2" o2 in
  let dy =
    describe "O2-d3"
      (C.make
         ~disabled:[ "SimplifyCFG"; "Machine Scheduler"; "JumpThreading" ]
         C.Clang C.O2)
  in
  Printf.printf
    "speedup of O2-d3-profile AutoFDO over O2-profile AutoFDO: %+.2f%%\n"
    ((float_of_int base /. float_of_int dy -. 1.0) *. 100.0);
  print_endline
    "(the debug-friendlier profiling build loses fewer samples, so the\n\
    \ profile is truer and the final binary usually faster — RQ3)"
