(** Precise unit tests of the VM's cost model, on hand-assembled machine
    functions — every pass's performance rationale rests on these
    numbers, so they are pinned exactly. *)

let mk_block label mins mterm =
  {
    Mach.mb_label = label;
    mins = List.map (fun mk -> { Mach.mk; mline = None }) mins;
    mterm;
    mterm_line = None;
    mb_prob = 0.5;
    mb_freq = 1.0;
  }

let mk_fn ?(frame = []) ?(spill = 0) ?(params = []) name blocks layout =
  let tbl = Hashtbl.create 8 in
  List.iter (fun (b : Mach.mblock) -> Hashtbl.replace tbl b.Mach.mb_label b) blocks;
  {
    Mach.mf_name = name;
    mf_line = 1;
    mf_blocks = tbl;
    mf_entry = (List.hd layout : int);
    mf_layout = layout;
    mf_param_locs = params;
    mf_frame = frame;
    mf_spill_words = spill;
    mf_shrink_wrapped = false;
  }

let run_cost fns ~entry =
  let bin = Emit.emit { Mach.mfuncs = fns; mglobals = [] } in
  (Vm.run bin ~entry ~input:[] Vm.default_opts).Vm.cost

let r k = Mach.Preg k
let rv k = Mach.Loc (Mach.Preg k)
let c n = Mach.Cst n

(* Entry cost of a frameless zero-arg function: call 9 + ret 2 + ret
   transfer 3... the top-level entry has no return transfer (halts). *)
let base_entry_cost = 9 + 2

let test_alu_costs () =
  let fn ops = mk_fn "f" [ mk_block 0 ops (Mach.Mret None) ] [ 0 ] in
  let cost ops = run_cost [ fn ops ] ~entry:"f" in
  let empty = cost [] in
  Alcotest.(check int) "empty fn = entry cost" base_entry_cost empty;
  (* Independent adds cost 1 each. *)
  Alcotest.(check int) "add costs 1" (empty + 1)
    (cost [ Mach.Mbin (Ir.Add, r 0, c 1, c 2) ]);
  Alcotest.(check int) "mul costs 3" (empty + 3)
    (cost [ Mach.Mbin (Ir.Mul, r 0, c 3, c 4) ]);
  Alcotest.(check int) "div costs 10" (empty + 10)
    (cost [ Mach.Mbin (Ir.Div, r 0, c 8, c 2) ])

let test_hazard_costs () =
  let fn ops = mk_fn "f" [ mk_block 0 ops (Mach.Mret None) ] [ 0 ] in
  let cost ops = run_cost [ fn ops ] ~entry:"f" in
  let independent =
    cost
      [
        Mach.Mbin (Ir.Add, r 0, c 1, c 2);
        Mach.Mbin (Ir.Add, r 1, c 3, c 4);
      ]
  in
  let dependent =
    cost
      [
        Mach.Mbin (Ir.Add, r 0, c 1, c 2);
        Mach.Mbin (Ir.Add, r 1, rv 0, c 4);
      ]
  in
  Alcotest.(check int) "read-after-write hazard +2" (independent + 2) dependent

let test_vector_cheaper_than_scalars () =
  let fn ops = mk_fn "f" [ mk_block 0 ops (Mach.Mret None) ] [ 0 ] in
  let cost ops = run_cost [ fn ops ] ~entry:"f" in
  let scalars =
    cost
      (List.init 4 (fun i -> Mach.Mbin (Ir.Add, r i, c i, c 1)))
  in
  let vec =
    cost [ Mach.Mvec (Ir.Add, Array.init 4 (fun i -> (r i, c i, c 1))) ]
  in
  Alcotest.(check bool) "4-lane vec cheaper than 4 adds" true (vec < scalars)

let test_taken_branch_cost () =
  (* Two layouts of the same if: fallthrough vs taken path. *)
  let blocks target =
    [
      mk_block 0 [] (Mach.Mcbr (c 1, target, 9));
      mk_block 1 [] (Mach.Mret None);
      mk_block 9 [] (Mach.Mret None);
    ]
  in
  let fall = mk_fn "f" (blocks 1) [ 0; 1; 9 ] in
  let taken = mk_fn "f" (blocks 9) [ 0; 1; 9 ] in
  let cf = run_cost [ fall ] ~entry:"f" in
  let ct = run_cost [ taken ] ~entry:"f" in
  Alcotest.(check int) "taken branch +3" (cf + 3) ct

let test_frame_and_slot_costs () =
  (* A function with a 5-word frame costs 5 extra on call; each Pslot
     access adds 1. *)
  let plain = mk_fn "g" [ mk_block 0 [] (Mach.Mret None) ] [ 0 ] in
  let framed =
    mk_fn "g" ~spill:5 [ mk_block 0 [] (Mach.Mret None) ] [ 0 ]
  in
  let caller callee_cost_probe =
    ignore callee_cost_probe;
    mk_fn "f"
      [ mk_block 0 [ Mach.Mcall (None, "g", []) ] (Mach.Mret None) ]
      [ 0 ]
  in
  let c1 = run_cost [ caller (); plain ] ~entry:"f" in
  let c2 = run_cost [ caller (); framed ] ~entry:"f" in
  Alcotest.(check int) "frame words cost 1 each on entry" (c1 + 5) c2;
  let slot_op =
    mk_fn "f" ~spill:1
      [ mk_block 0 [ Mach.Mbin (Ir.Add, Mach.Pslot 0, c 1, c 2) ] (Mach.Mret None) ]
      [ 0 ]
  in
  let reg_op =
    mk_fn "f" ~spill:1
      [ mk_block 0 [ Mach.Mbin (Ir.Add, r 0, c 1, c 2) ] (Mach.Mret None) ]
      [ 0 ]
  in
  Alcotest.(check int) "slot write +1"
    (run_cost [ reg_op ] ~entry:"f" + 1)
    (run_cost [ slot_op ] ~entry:"f")

let test_load_use_penalty () =
  let frame = [ { Mach.fs_id = 0; fs_size = 1; fs_var = None; fs_array = false } ] in
  let with_gap =
    mk_fn "f" ~frame
      [
        mk_block 0
          [
            Mach.Mload (r 0, { Mach.mbase = Mach.Mframe 0; mindex = c 0 });
            Mach.Mbin (Ir.Add, r 1, c 1, c 2);
            Mach.Mbin (Ir.Add, r 2, rv 0, c 1);
          ]
          (Mach.Mret None);
      ]
      [ 0 ]
  in
  let without_gap =
    mk_fn "f" ~frame
      [
        mk_block 0
          [
            Mach.Mload (r 0, { Mach.mbase = Mach.Mframe 0; mindex = c 0 });
            Mach.Mbin (Ir.Add, r 2, rv 0, c 1);
            Mach.Mbin (Ir.Add, r 1, c 1, c 2);
          ]
          (Mach.Mret None);
      ]
      [ 0 ]
  in
  Alcotest.(check int) "load-use penalty is 4"
    (run_cost [ with_gap ] ~entry:"f" + 4)
    (run_cost [ without_gap ] ~entry:"f")

let test_shrink_wrap_defers_frame_cost () =
  (* Shrink-wrapped: frame charged only when the frame is touched. *)
  let framed activation =
    let fi_block =
      mk_block 0 [] (Mach.Mcbr (c 0 (* always false -> early exit *), 1, 9))
    in
    let touch =
      mk_block 1
        [ Mach.Mbin (Ir.Add, Mach.Pslot 0, c 1, c 1) ]
        (Mach.Mret None)
    in
    let early = mk_block 9 [] (Mach.Mret None) in
    let m = mk_fn "f" ~spill:8 [ fi_block; touch; early ] [ 0; 1; 9 ] in
    m.Mach.mf_shrink_wrapped <- activation;
    m
  in
  let eager = run_cost [ framed false ] ~entry:"f" in
  let wrapped = run_cost [ framed true ] ~entry:"f" in
  (* The early-exit path never touches the frame: all 8 words saved. *)
  Alcotest.(check int) "shrink wrap saves the frame cost" (eager - 8) wrapped

(* Regression fixtures for the decode-time lookup tables: frame-slot
   offsets (replacing the per-access [List.find_opt] over
   [fi_slot_offset]) and the hazard bitsets (replacing the
   O(writes×reads) list scan). Both cores must agree to the cycle on
   fixtures built to exercise exactly those paths, and the absolute
   numbers are pinned so a cost-model change cannot hide behind
   core agreement. *)
let both_cores fns ~entry =
  let bin = Emit.emit { Mach.mfuncs = fns; mglobals = [] } in
  let fast = Vm.run bin ~entry ~input:[] Vm.default_opts in
  let slow = Vm.Reference.run bin ~entry ~input:[] Vm.default_opts in
  Alcotest.(check int) "cores agree on cost" slow.Vm.cost fast.Vm.cost;
  Alcotest.(check int) "cores agree on instrs" slow.Vm.instrs fast.Vm.instrs;
  fast.Vm.cost

let test_frame_slot_lookup_regression () =
  (* Two data slots: a scalar at offset 0 and a 4-word array at offset
     1. Loads/stores through both slots, with a register index into the
     array, plus a spill-slot operand — every address kind the slot
     table resolves. *)
  let frame =
    [
      { Mach.fs_id = 0; fs_size = 1; fs_var = None; fs_array = false };
      { Mach.fs_id = 1; fs_size = 4; fs_var = None; fs_array = true };
    ]
  in
  let addr0 = { Mach.mbase = Mach.Mframe 0; mindex = c 0 } in
  let addr1 i = { Mach.mbase = Mach.Mframe 1; mindex = i } in
  let fn =
    mk_fn "f" ~frame ~spill:1
      [
        mk_block 0
          [
            Mach.Mstore (addr0, c 7);
            (* wrap: index 6 into a 4-word slot lands on word 2 *)
            Mach.Mstore (addr1 (c 6), c 9);
            Mach.Mbin (Ir.Add, r 1, c 2, c 0);
            Mach.Mload (r 0, addr1 (rv 1));
            Mach.Mload (r 2, addr0);
            Mach.Mbin (Ir.Add, Mach.Pslot 0, rv 0, rv 2);
          ]
          (Mach.Mret (Some (Mach.Loc (Mach.Pslot 0))));
      ]
      [ 0 ]
  in
  (* entry 9 + frame 6 + store 4 + store 4 + add 1 + load 4 (+2 hazard:
     index r1 written by the add) + load 4 + add 1 (+4 load-use on r2,
     +1 slot write) + ret 2 (+1 slot read) = 43. *)
  Alcotest.(check int) "frame-slot fixture cost pinned" 43
    (both_cores [ fn ] ~entry:"f")

let test_hazard_bitset_regression () =
  (* Register->register, slot->slot and cross-kind adjacencies: the
     bitset encoding must reproduce the list scan on all of them. *)
  let fn =
    mk_fn "f" ~spill:2
      [
        mk_block 0
          [
            Mach.Mbin (Ir.Add, r 0, c 1, c 2);
            Mach.Mbin (Ir.Add, r 1, rv 0, c 1);
            (* r0 read: +2 *)
            Mach.Mbin (Ir.Add, Mach.Pslot 0, rv 1, c 1);
            (* r1 read: +2, slot write +1 *)
            Mach.Mbin (Ir.Add, r 2, Mach.Loc (Mach.Pslot 0), c 1);
            (* Pslot 0 read: +2 (+1 slot read) *)
            Mach.Mbin (Ir.Add, r 3, Mach.Loc (Mach.Pslot 1), c 1);
            (* Pslot 1 was NOT the last write: no hazard (+1 slot read) *)
            Mach.Mbin (Ir.Add, r 4, c 1, c 1);
            Mach.Mbin (Ir.Add, r 5, rv 3, rv 4);
            (* r4 read: +2 *)
          ]
          (Mach.Mret None);
      ]
      [ 0 ]
  in
  (* entry 9 + frame 2 + 7 adds + hazards 2+2+2+2 + slot charges 1+1+1
     + ret 2 = 31. *)
  Alcotest.(check int) "hazard fixture cost pinned" 31
    (both_cores [ fn ] ~entry:"f")

let tests =
  [
    Alcotest.test_case "alu costs" `Quick test_alu_costs;
    Alcotest.test_case "hazard costs" `Quick test_hazard_costs;
    Alcotest.test_case "vector cheaper" `Quick test_vector_cheaper_than_scalars;
    Alcotest.test_case "taken branch" `Quick test_taken_branch_cost;
    Alcotest.test_case "frame and slot costs" `Quick test_frame_and_slot_costs;
    Alcotest.test_case "load-use penalty" `Quick test_load_use_penalty;
    Alcotest.test_case "shrink wrap defers frame" `Quick
      test_shrink_wrap_defers_frame_cost;
    Alcotest.test_case "frame-slot lookup regression" `Quick
      test_frame_slot_lookup_regression;
    Alcotest.test_case "hazard bitset regression" `Quick
      test_hazard_bitset_regression;
  ]
