(** Differential correctness over the ranking sweep's compile space:
    single-pass-disabled configurations must produce binaries that agree
    with O0 on every harness seed — this is exactly the space the
    DebugTuner sweep (Tables V/VI) explores. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let check_program_config (p : Suite_types.sprogram) (cfg : C.t) =
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let o0 = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots in
  let bin = T.compile ast ~config:cfg ~roots in
  List.iter
    (fun (h : Suite_types.harness) ->
      let inputs =
        if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds
      in
      List.iter
        (fun input ->
          let r0 = Vm.run o0 ~entry:h.Suite_types.h_entry ~input Vm.default_opts in
          let r1 = Vm.run bin ~entry:h.Suite_types.h_entry ~input Vm.default_opts in
          Alcotest.(check (list int))
            (Printf.sprintf "%s %s %s" p.Suite_types.p_name (C.name cfg)
               h.Suite_types.h_name)
            r0.Vm.output r1.Vm.output)
        inputs)
    p.Suite_types.p_harnesses

(* A representative slice: four structurally different programs at the
   two most aggressive levels, sweeping every toggleable pass. *)
let swept_programs = [ "bzip2"; "libpcap"; "wasm3"; "libdwarf" ]

let sweep_case pname comp =
  Alcotest.test_case
    (Printf.sprintf "%s %s sweep" pname (C.compiler_name comp))
    `Slow
    (fun () ->
      let p = Programs.find pname in
      let level = C.O2 in
      List.iter
        (fun pass ->
          check_program_config p (C.make ~disabled:[ pass ] comp level))
        (T.pass_names (C.make comp level)))

(* Multi-pass dy-style combinations on one program. *)
let test_dy_combinations () =
  let p = Programs.find "libpng" in
  List.iter
    (fun (comp, level) ->
      let names = T.pass_names (C.make comp level) in
      let prefixes = [ 3; 5; 9; List.length names ] in
      List.iter
        (fun k ->
          let disabled = List.filteri (fun i _ -> i < k) names in
          check_program_config p (C.make ~disabled comp level))
        prefixes)
    [ (C.Gcc, C.O3); (C.Clang, C.O3); (C.Gcc, C.Og) ]

(* Profile-guided builds must preserve semantics too. *)
let test_profile_guided_configs () =
  let p = Spec.find "525.x264" in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let cfg = C.make C.Clang C.O2 in
  let bin = T.compile ast ~config:cfg ~roots in
  let coll =
    Debugtuner.Autofdo.collect bin ~entry:"main" ~workloads:[ [] ] ~period:211
      ~seed:3
  in
  let fdo =
    T.compile
      ~options:(T.Options.make ~profile:coll.Debugtuner.Autofdo.profile ())
      ast ~config:cfg ~roots
  in
  let r0 = Vm.run bin ~entry:"main" ~input:[] Vm.default_opts in
  let r1 = Vm.run fdo ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "profile-guided output identical" r0.Vm.output
    r1.Vm.output

let tests =
  List.concat_map
    (fun pname -> [ sweep_case pname C.Gcc; sweep_case pname C.Clang ])
    swept_programs
  @ [
      Alcotest.test_case "dy combinations" `Slow test_dy_combinations;
      Alcotest.test_case "profile-guided semantics" `Quick
        test_profile_guided_configs;
    ]
