(** The persistent artifact store (Engine.Disk_store): entries must
    survive process boundaries (modelled as fresh handles), corruption
    of any kind must be detected, evicted, counted and recomputed —
    never trusted — and a warm engine must serve a whole workload from
    disk with byte-identical results. *)

module C = Debugtuner.Config
module ME = Debugtuner.Measure_engine
module Ev = Debugtuner.Evaluation
module DS = Engine.Disk_store

let temp_dir =
  let seq = ref 0 in
  fun () ->
    incr seq;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dtstore-test-%d-%d" (Unix.getpid ()) !seq)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let with_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf d with _ -> ()) (fun () -> f d)

(* Every published entry file under the store's objects/ tree. *)
let entry_files dir =
  let objects = Filename.concat dir "objects" in
  let out = ref [] in
  let ls d = try Sys.readdir d with Sys_error _ -> [||] in
  Array.iter
    (fun cache ->
      let cdir = Filename.concat objects cache in
      Array.iter
        (fun shard ->
          let sdir = Filename.concat cdir shard in
          Array.iter
            (fun f -> out := Filename.concat sdir f :: !out)
            (ls sdir))
        (ls cdir))
    (ls objects);
  List.sort compare !out

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let counter store name =
  match List.assoc_opt name (DS.counters store) with Some v -> v | None -> 0

(* ------------------------------------------------------------------ *)

let test_roundtrip_and_persistence () =
  with_dir @@ fun d ->
  let s1 = DS.create ~schema:"s" ~dir:d () in
  Alcotest.(check (option string)) "empty miss" None (DS.get s1 ~cache:"c" ~key:"k");
  DS.put s1 ~cache:"c" ~key:"k" "payload-1";
  Alcotest.(check (option string))
    "roundtrip" (Some "payload-1")
    (DS.get s1 ~cache:"c" ~key:"k");
  (* A fresh handle on the same directory models a new process. *)
  let s2 = DS.create ~schema:"s" ~dir:d () in
  Alcotest.(check (option string))
    "persists across handles" (Some "payload-1")
    (DS.get s2 ~cache:"c" ~key:"k");
  Alcotest.(check int) "one entry" 1 (DS.entry_count s2);
  Alcotest.(check bool) "sized" true (DS.size_bytes s2 > 0);
  (* Binary payloads (NULs, newlines) survive the framing. *)
  let blob = String.init 257 (fun i -> Char.chr (i mod 256)) in
  DS.put s2 ~cache:"c" ~key:"blob" blob;
  Alcotest.(check (option string))
    "binary payload" (Some blob)
    (DS.get s2 ~cache:"c" ~key:"blob");
  Alcotest.(check int) "clear removes all" 2 (DS.clear s2);
  Alcotest.(check (list string)) "directory empty" [] (entry_files d)

let test_memo_write_through () =
  with_dir @@ fun d ->
  let s1 = DS.create ~schema:"s" ~dir:d () in
  let m1 = Engine.Memo.create ~store:s1 ~name:"square" () in
  let calls = ref 0 in
  let produce x () = incr calls; x * x in
  Alcotest.(check int) "computed" 9 (Engine.Memo.find_or_add m1 "3" (produce 3));
  Alcotest.(check int) "memory hit" 9 (Engine.Memo.find_or_add m1 "3" (produce 3));
  Alcotest.(check int) "one computation" 1 !calls;
  (* Fresh memo + fresh store handle: the value comes back from disk
     without running the producer. *)
  let s2 = DS.create ~schema:"s" ~dir:d () in
  let m2 = Engine.Memo.create ~store:s2 ~name:"square" () in
  Alcotest.(check int) "disk hit" 9 (Engine.Memo.find_or_add m2 "3" (produce 3));
  Alcotest.(check int) "still one computation" 1 !calls;
  Alcotest.(check int) "store counted the hit" 1 (counter s2 "square/hits")

let corrupt_one mutate =
  with_dir @@ fun d ->
  let s1 = DS.create ~schema:"s" ~dir:d () in
  DS.put s1 ~cache:"c" ~key:"k" "the payload bytes";
  let path =
    match entry_files d with [ p ] -> p | l -> Alcotest.failf "%d entries" (List.length l)
  in
  mutate path;
  (* A fresh handle (no memory of the entry) must detect the damage,
     evict the file, count it, and report a miss. *)
  let s2 = DS.create ~schema:"s" ~dir:d () in
  Alcotest.(check (option string)) "damaged = miss" None (DS.get s2 ~cache:"c" ~key:"k");
  Alcotest.(check bool) "evicted from disk" false (Sys.file_exists path);
  (* Recompute path: a new put/get works as if nothing happened. *)
  DS.put s2 ~cache:"c" ~key:"k" "the payload bytes";
  Alcotest.(check (option string))
    "recomputed" (Some "the payload bytes")
    (DS.get s2 ~cache:"c" ~key:"k");
  s2

let test_corrupt_truncated () =
  let s =
    corrupt_one (fun path ->
        let full = read_file path in
        write_file path (String.sub full 0 (String.length full / 2)))
  in
  Alcotest.(check int) "counted corrupt" 1 (counter s "c/corrupt")

let test_corrupt_bit_flip () =
  let s =
    corrupt_one (fun path ->
        let full = read_file path in
        let b = Bytes.of_string full in
        let i = Bytes.length b - 1 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
        write_file path (Bytes.to_string b))
  in
  Alcotest.(check int) "counted corrupt" 1 (counter s "c/corrupt")

let test_stale_version_bump () =
  let s =
    corrupt_one (fun path ->
        let full = read_file path in
        let nl = String.index full '\n' in
        let header = String.sub full 0 nl in
        let rest = String.sub full nl (String.length full - nl) in
        match String.split_on_char ' ' header with
        | magic :: ver :: fields ->
            let bumped = string_of_int (int_of_string ver + 1) in
            write_file path (String.concat " " (magic :: bumped :: fields) ^ rest)
        | _ -> Alcotest.fail "unparseable header")
  in
  Alcotest.(check int) "counted stale" 1 (counter s "c/stale")

let test_stale_schema_mismatch () =
  with_dir @@ fun d ->
  let old = DS.create ~schema:"debugtuner-v1" ~dir:d () in
  DS.put old ~cache:"c" ~key:"k" "old-schema payload";
  (* The same directory opened under a new schema stamp: the entry is
     stale, never decoded. *)
  let s = DS.create ~schema:"debugtuner-v2" ~dir:d () in
  Alcotest.(check (option string)) "stale = miss" None (DS.get s ~cache:"c" ~key:"k");
  Alcotest.(check int) "counted stale" 1 (counter s "c/stale");
  Alcotest.(check (list string)) "evicted" [] (entry_files d)

let test_garbage_entry_is_miss () =
  with_dir @@ fun d ->
  let s = DS.create ~schema:"s" ~dir:d () in
  DS.put s ~cache:"c" ~key:"k" "good";
  let path = List.hd (entry_files d) in
  (* A half-written file published under an entry name (a crashed writer
     without atomic rename) must read as a miss, not an error. *)
  write_file path "not a store entry at all";
  let s2 = DS.create ~schema:"s" ~dir:d () in
  Alcotest.(check (option string)) "garbage = miss" None (DS.get s2 ~cache:"c" ~key:"k");
  (* Abandoned temp files are invisible to reads and removed by gc. *)
  write_file (Filename.concat (Filename.concat d "tmp") "999-0.tmp") "partial";
  Alcotest.(check int) "tmp not an entry" 0 (DS.entry_count s2);
  let _ = DS.clear s2 in
  Alcotest.(check bool) "tmp cleared" false
    (Sys.file_exists (Filename.concat (Filename.concat d "tmp") "999-0.tmp"))

let test_lru_eviction () =
  with_dir @@ fun d ->
  (* ~100-byte payloads with framing overhead: a 2000-byte bound holds
     only a handful of entries. *)
  let s = DS.create ~max_bytes:2000 ~schema:"s" ~dir:d () in
  for i = 1 to 30 do
    DS.put s ~cache:"c" ~key:(string_of_int i) (String.make 100 'x')
  done;
  Alcotest.(check bool) "bounded" true (DS.size_bytes s <= 2000);
  Alcotest.(check bool) "evicted some" true (counter s "c/evicted" > 0);
  Alcotest.(check bool) "kept some" true (DS.entry_count s > 0);
  (* gc on a healthy store drops nothing and keeps the bound. *)
  Alcotest.(check int) "gc drops nothing" 0 (DS.gc s);
  Alcotest.(check bool) "still bounded" true (DS.size_bytes s <= 2000)

let test_gc_sweeps_damage () =
  with_dir @@ fun d ->
  let s = DS.create ~schema:"s" ~dir:d () in
  for i = 1 to 4 do
    DS.put s ~cache:"c" ~key:(string_of_int i) (Printf.sprintf "payload %d" i)
  done;
  (match entry_files d with
  | p1 :: p2 :: _ ->
      write_file p1 "garbage";
      let full = read_file p2 in
      write_file p2 (String.sub full 0 (String.length full - 3))
  | _ -> Alcotest.fail "expected entries");
  let s2 = DS.create ~schema:"s" ~dir:d () in
  Alcotest.(check int) "gc dropped the two damaged" 2 (DS.gc s2);
  Alcotest.(check int) "two healthy remain" 2 (DS.entry_count s2)

let test_two_domain_race () =
  with_dir @@ fun d ->
  let s = DS.create ~schema:"s" ~dir:d () in
  let payload i = Printf.sprintf "deterministic payload for key %d" i in
  (* Two domains hammer one store handle with overlapping writes and
     reads. Writers are deterministic per key, so whichever rename wins,
     every subsequent read must be either a miss or the exact payload —
     never a torn entry (which would count as corrupt). *)
  let worker () =
    for round = 1 to 3 do
      ignore round;
      for i = 1 to 25 do
        DS.put s ~cache:"race" ~key:(string_of_int i) (payload i);
        match DS.get s ~cache:"race" ~key:(string_of_int i) with
        | None -> ()
        | Some got ->
            if got <> payload i then
              Alcotest.failf "torn read for key %d" i
      done
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Alcotest.(check int) "no corruption seen" 0 (counter s "race/corrupt");
  Alcotest.(check int) "all entries live" 25 (DS.entry_count s);
  let s2 = DS.create ~schema:"s" ~dir:d () in
  for i = 1 to 25 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d intact" i)
      (Some (payload i))
      (DS.get s2 ~cache:"race" ~key:(string_of_int i))
  done

(* ------------------------------------------------------------------ *)
(* Two processes sharing one directory (the shard-worker scenario)     *)

(* A real second process (store_worker.exe, built next to this test
   binary) rather than fork: the runtime has spawned domains by now and
   OCaml 5 refuses to fork a multi-domain process. *)
let run_worker mode dir =
  let exe =
    Filename.concat (Filename.dirname Sys.executable_name) "store_worker.exe"
  in
  let pid =
    Unix.create_process exe [| exe; mode; dir |] Unix.stdin Unix.stdout
      Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, Unix.WEXITED n -> Alcotest.failf "worker exited %d" n
  | _, (Unix.WSIGNALED n | Unix.WSTOPPED n) ->
      Alcotest.failf "worker signal %d" n

let test_two_process_store () =
  with_dir @@ fun d ->
  let payload i = Printf.sprintf "deterministic payload for key %d" i in
  (* Parent and child processes hammer the same directory through
     separate handles — exactly how shard workers coordinate. Writers
     are deterministic per key, so every read must be a miss or the
     exact payload, never a torn entry. *)
  let hammer s =
    for round = 1 to 3 do
      for i = 1 to 25 do
        DS.put s ~cache:"mp" ~key:(string_of_int i) (payload i);
        (match DS.get s ~cache:"mp" ~key:(string_of_int i) with
        | None -> ()
        | Some got ->
            if got <> payload i then
              Alcotest.failf "torn read for key %d (round %d)" i round)
      done;
      (* concurrent maintenance must not break readers or writers *)
      ignore (DS.gc s : int)
    done
  in
  let worker = Thread.create (fun () -> run_worker "hammer" d) () in
  let s = DS.create ~schema:"s" ~dir:d () in
  hammer s;
  Thread.join worker;
  Alcotest.(check int) "no corruption seen" 0 (counter s "mp/corrupt");
  let s2 = DS.create ~schema:"s" ~dir:d () in
  for i = 1 to 25 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d intact" i)
      (Some (payload i))
      (DS.get s2 ~cache:"mp" ~key:(string_of_int i))
  done

let test_cross_process_eviction_counted () =
  with_dir @@ fun d ->
  let s = DS.create ~max_bytes:2000 ~schema:"s" ~dir:d () in
  DS.put s ~cache:"x" ~key:"victim" (String.make 100 'v');
  (* Backdate the entry so any LRU pass — ours or another process's —
     prefers it. *)
  (match entry_files d with
  | [ p ] -> Unix.utimes p 1.0 1.0
  | l -> Alcotest.failf "%d entries" (List.length l));
  (* The worker process floods the store past its bound from a separate
     handle: its LRU eviction removes the backdated victim. *)
  run_worker "flood" d;
  (* This handle published the victim; finding it gone means another
     process evicted it — reported as a miss and counted separately. *)
  Alcotest.(check (option string))
    "victim evicted by the other process" None
    (DS.get s ~cache:"x" ~key:"victim");
  Alcotest.(check int) "cross-process eviction counted" 1
    (counter s "x/evicted_ext");
  Alcotest.(check int) "not one of ours" 0 (counter s "x/evicted")

(* ------------------------------------------------------------------ *)
(* Through the measurement engine                                      *)

let small_subject =
  lazy (Ev.prepare ~fuzz_budget:8 (Synth.program ~seed:3))

let engine_configs = [ C.make C.Gcc C.O1; C.make C.Gcc C.O2 ]

let total_counter stats field =
  let t = Engine.Stats.total stats in
  match field with
  | `Hits -> t.Engine.Stats.hits
  | `Misses -> t.Engine.Stats.misses

let test_engine_warm_run () =
  with_dir @@ fun d ->
  let p = Lazy.force small_subject in
  let cold_store = ME.open_store ~dir:d () in
  let cold = ME.create ~store:cold_store () in
  let cold_results = List.map (fun cfg -> fst (ME.measure cold p cfg)) engine_configs in
  Alcotest.(check bool) "cold run wrote entries" true
    (counter cold_store "measure/writes" > 0);
  (* A fresh engine + fresh store handle on the same directory: the
     whole workload must be served from disk — no recomputation — with
     identical results. *)
  let warm_store = ME.open_store ~dir:d () in
  let warm = ME.create ~store:warm_store () in
  let warm_results = List.map (fun cfg -> fst (ME.measure warm p cfg)) engine_configs in
  Alcotest.(check bool) "byte-identical metrics" true (cold_results = warm_results);
  Alcotest.(check int) "zero engine misses when warm" 0
    (total_counter (ME.stats warm) `Misses);
  Alcotest.(check bool) "disk hits served the run" true
    (counter warm_store "measure/hits" > 0);
  (* The unified stats table surfaces the store counters. *)
  Alcotest.(check bool) "store rows in stats_table" true
    (List.exists
       (fun (n, _) -> String.length n >= 6 && String.sub n 0 6 = "store/")
       (ME.stats_table warm))

let test_engine_resumable () =
  with_dir @@ fun d ->
  let p = Lazy.force small_subject in
  (* An interrupted run: only the first configuration was measured. *)
  let partial = ME.create ~store:(ME.open_store ~dir:d ()) () in
  let first = fst (ME.measure partial p (List.hd engine_configs)) in
  (* The restart picks up where it stopped: the first configuration is a
     disk hit, only the second is computed. *)
  let store = ME.open_store ~dir:d () in
  let resumed = ME.create ~store () in
  let results = List.map (fun cfg -> fst (ME.measure resumed p cfg)) engine_configs in
  Alcotest.(check bool) "resumed result matches" true (List.hd results = first);
  Alcotest.(check bool) "prior work served from disk" true
    (counter store "measure/hits" >= 1);
  Alcotest.(check bool) "new work computed" true
    (total_counter (ME.stats resumed) `Misses > 0)

let test_corruption_never_changes_results () =
  with_dir @@ fun d ->
  let p = Lazy.force small_subject in
  let cfg = List.hd engine_configs in
  let clean = fst (ME.measure (ME.create ()) p cfg) in
  let cold = ME.create ~store:(ME.open_store ~dir:d ()) () in
  ignore (ME.measure cold p cfg);
  (* Damage every entry on disk; the engine must fall back to computing
     and still produce the clean result. *)
  List.iter (fun path -> write_file path "damaged beyond recognition") (entry_files d);
  let store = ME.open_store ~dir:d () in
  let eng = ME.create ~store () in
  Alcotest.(check bool) "corrupt cache never changes the result" true
    (fst (ME.measure eng p cfg) = clean);
  Alcotest.(check bool) "corruption counted" true
    (List.exists
       (fun (n, v) ->
         v > 0
         && String.length n > 8
         && String.sub n (String.length n - 8) 8 = "/corrupt")
       (DS.counters store))

let test_oracle_warm_byte_identical () =
  with_dir @@ fun d ->
  let module DO = Diff_oracle in
  Sanitize.reset_counters ();
  let cold_store = ME.open_store ~dir:d () in
  let cold = DO.fuzz ~store:cold_store ~count:3 ~seed:11 () in
  let cold_counters = Sanitize.counters () in
  Sanitize.reset_counters ();
  let warm_store = ME.open_store ~dir:d () in
  let warm = DO.fuzz ~store:warm_store ~count:3 ~seed:11 () in
  let warm_counters = Sanitize.counters () in
  Alcotest.(check string)
    "identical report"
    (DO.report_to_string cold)
    (DO.report_to_string warm);
  (* Warm hits replay the recorded sanitizer deltas, so even the
     counter table is identical to the cold run's. *)
  Alcotest.(check bool) "identical sanitizer counters" true
    (cold_counters = warm_counters);
  Alcotest.(check int) "every verdict from disk" 3
    (counter warm_store "oracle/hits")

let tests =
  [
    Alcotest.test_case "roundtrip + persistence" `Quick
      test_roundtrip_and_persistence;
    Alcotest.test_case "memo write-through" `Quick test_memo_write_through;
    Alcotest.test_case "corruption: truncated" `Quick test_corrupt_truncated;
    Alcotest.test_case "corruption: bit-flip" `Quick test_corrupt_bit_flip;
    Alcotest.test_case "stale: version bump" `Quick test_stale_version_bump;
    Alcotest.test_case "stale: schema mismatch" `Quick
      test_stale_schema_mismatch;
    Alcotest.test_case "garbage entries are misses" `Quick
      test_garbage_entry_is_miss;
    Alcotest.test_case "LRU eviction under a size bound" `Quick
      test_lru_eviction;
    Alcotest.test_case "gc sweeps damaged entries" `Quick test_gc_sweeps_damage;
    Alcotest.test_case "two-domain race on one store" `Quick
      test_two_domain_race;
    Alcotest.test_case "two-process race on one directory" `Quick
      test_two_process_store;
    Alcotest.test_case "cross-process eviction is counted" `Quick
      test_cross_process_eviction_counted;
    Alcotest.test_case "warm engine: zero misses, identical metrics" `Slow
      test_engine_warm_run;
    Alcotest.test_case "interrupted run resumes from the store" `Slow
      test_engine_resumable;
    Alcotest.test_case "corrupt cache never changes results" `Slow
      test_corruption_never_changes_results;
    Alcotest.test_case "oracle warm run byte-identical" `Slow
      test_oracle_warm_byte_identical;
  ]
