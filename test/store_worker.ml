(* Child-process side of the two-process Disk_store tests
   (test_disk_store.ml): a genuinely separate OS process working the
   same store directory through its own handle. Spawned with
   create_process rather than fork — the test binary has run Domain
   work by the time these tests execute, and OCaml 5 forbids forking
   a multi-domain runtime. *)

module DS = Engine.Disk_store

let payload i = Printf.sprintf "deterministic payload for key %d" i

let () =
  match Sys.argv with
  | [| _; "hammer"; dir |] ->
      (* Overlapping deterministic put/get/gc against the parent. *)
      let s = DS.create ~schema:"s" ~dir () in
      for _round = 1 to 3 do
        for i = 1 to 25 do
          DS.put s ~cache:"mp" ~key:(string_of_int i) (payload i);
          (match DS.get s ~cache:"mp" ~key:(string_of_int i) with
          | None -> ()
          | Some got -> if got <> payload i then exit 1 (* torn read *))
        done;
        ignore (DS.gc s : int)
      done
  | [| _; "flood"; dir |] ->
      (* Blow past a tiny size bound so this process's LRU eviction
         removes the parent's backdated entry. *)
      let s = DS.create ~max_bytes:2000 ~schema:"s" ~dir () in
      for i = 1 to 30 do
        DS.put s ~cache:"x" ~key:("k" ^ string_of_int i) (String.make 100 'x')
      done
  | _ ->
      prerr_endline "usage: store_worker (hammer|flood) DIR";
      exit 2
