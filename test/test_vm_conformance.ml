(** Differential conformance harness pinning the fast VM core to
    {!Vm.Reference}, the executable specification: every suite and
    fuzz-generated binary must produce byte-identical {!Vm.result}s —
    output, cost, instruction count, coverage edges, breakpoint hits,
    samples and timeout status — across the whole [run_opts] grid
    (coverage on/off, breakpoints, sampling periods including the
    degenerate [Some 1], and budget exhaustion, including exhaustion
    mid-call). The fast core is forced explicitly (not via [Vm.run]'s
    dispatcher), so a [DEBUGTUNER_VM=reference] environment cannot make
    these tests vacuous, and every binary is asserted decodable so the
    fast path provably engages. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let compile ?(config = C.make C.Gcc C.O0) src roots =
  T.compile_source src ~config ~roots

(* The config spread: unoptimized, heavily optimized, and the clang
   pipeline — shrink-wrapping, spilling, scheduling and block placement
   all change which cost-model paths the binary exercises. *)
let configs =
  [ C.make C.Gcc C.O0; C.make C.Gcc C.O2; C.make C.Clang C.O2 ]

let sorted_edges (r : Vm.result) =
  Hashtbl.fold (fun (s, d) n acc -> (s, d, n) :: acc) r.Vm.edges []
  |> List.sort compare

(* Byte-for-byte equality of everything in a [Vm.result] (edges compared
   as sorted association lists — the hashtable layout itself may
   differ). *)
let check_same what (ref_r : Vm.result) (fast_r : Vm.result) =
  Alcotest.(check (list int)) (what ^ " output") ref_r.Vm.output fast_r.Vm.output;
  Alcotest.(check int) (what ^ " cost") ref_r.Vm.cost fast_r.Vm.cost;
  Alcotest.(check int) (what ^ " instrs") ref_r.Vm.instrs fast_r.Vm.instrs;
  Alcotest.(check bool) (what ^ " timed_out") ref_r.Vm.timed_out
    fast_r.Vm.timed_out;
  Alcotest.(check (list int)) (what ^ " bp_hits") ref_r.Vm.bp_hits
    fast_r.Vm.bp_hits;
  Alcotest.(check (list int)) (what ^ " samples") ref_r.Vm.samples
    fast_r.Vm.samples;
  Alcotest.(check (list (triple int int int)))
    (what ^ " edges") (sorted_edges ref_r) (sorted_edges fast_r)

let run_fast bin ~entry ~args ~input opts =
  match Vm.Decode.get bin with
  | Some p -> Vm.Fast.run p bin ~entry ~args ~input opts
  | None -> Alcotest.fail "binary rejected by the fast-core decoder"

(* The opts grid. Breakpoint arrays are mutated by the run (first-hit
   clearing), so each core gets its own fresh copy. *)
let opts_grid code_len : (string * (unit -> Vm.run_opts)) list =
  let mk ?(max_instrs = Vm.default_opts.Vm.max_instrs) ?(coverage = false)
      ?(bps = false) ?sample_period () () =
    {
      Vm.max_instrs;
      coverage;
      breakpoints = (if bps then Some (Array.make code_len true) else None);
      sample_period;
      seed = 1;
    }
  in
  [
    ("plain", mk ());
    ("coverage", mk ~coverage:true ());
    ("breakpoints", mk ~bps:true ());
    ("sampling", mk ~sample_period:997 ());
    ("sampling-1", mk ~sample_period:1 ());
    ("all-instr", mk ~coverage:true ~bps:true ~sample_period:97 ());
    ("tiny-budget", mk ~max_instrs:40 ());
    ("tiny-budget-instr", mk ~max_instrs:40 ~coverage:true ~sample_period:13 ());
  ]

let conform ?(args = []) ~what bin ~entry ~input () =
  Alcotest.(check bool)
    (what ^ " decodable") true
    (Vm.Decode.supported bin);
  List.iter
    (fun (oname, mk_opts) ->
      let r_ref = Vm.Reference.run bin ~entry ~args ~input (mk_opts ()) in
      let r_fast = run_fast bin ~entry ~args ~input (mk_opts ()) in
      check_same (what ^ " [" ^ oname ^ "]") r_ref r_fast)
    (opts_grid (Array.length bin.Emit.code))

(* ------------------------------------------------------------------ *)
(* Suite programs: every harness seed at every config.                 *)

let suite_subjects = [ "zlib"; "libpng"; "wasm3"; "bzip2"; "liblouis" ]

let test_suite_conformance () =
  List.iter
    (fun name ->
      let p = Programs.find name in
      let ast = Suite_types.ast p in
      let roots = Suite_types.roots p in
      List.iter
        (fun config ->
          let bin = T.compile ast ~config ~roots in
          List.iter
            (fun (h : Suite_types.harness) ->
              let seeds = if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds in
              List.iter
                (fun input ->
                  conform
                    ~what:
                      (Printf.sprintf "%s/%s@%s" name h.Suite_types.h_name
                         (C.name config))
                    bin ~entry:h.Suite_types.h_entry ~input ())
                seeds)
            p.Suite_types.p_harnesses)
        configs)
    suite_subjects

(* ------------------------------------------------------------------ *)
(* Fuzz-generated binaries: the synthetic generator at many seeds,     *)
(* each config, on the oracle's input vectors.                         *)

let synth_inputs = [ []; [ 3; 1; 4; 1; 5; 9; 2; 6 ] ]

let test_synth_conformance () =
  for seed = 1 to 40 do
    let src = Synth.generate ~seed in
    List.iter
      (fun config ->
        let bin = compile ~config src [ "main" ] in
        List.iter
          (fun input ->
            conform
              ~what:(Printf.sprintf "synth-%d@%s" seed (C.name config))
              bin ~entry:"main" ~input ())
          synth_inputs)
      configs
  done

let test_qcheck_conformance =
  QCheck.Test.make ~count:120 ~name:"random synth binaries conform"
    QCheck.(make Gen.(int_range 100 100_000))
    (fun seed ->
      let src = Synth.generate ~seed in
      let config = C.make (if seed mod 2 = 0 then C.Gcc else C.Clang) C.O2 in
      let bin = compile ~config src [ "main" ] in
      let opts =
        {
          Vm.default_opts with
          Vm.coverage = seed mod 3 = 0;
          sample_period = (if seed mod 5 = 0 then Some 61 else None);
          max_instrs = (if seed mod 7 = 0 then 100 else 1_000_000);
        }
      in
      let r_ref = Vm.Reference.run bin ~entry:"main" ~input:[] opts in
      let r_fast = run_fast bin ~entry:"main" ~args:[] ~input:[] opts in
      r_ref.Vm.output = r_fast.Vm.output
      && r_ref.Vm.cost = r_fast.Vm.cost
      && r_ref.Vm.instrs = r_fast.Vm.instrs
      && r_ref.Vm.timed_out = r_fast.Vm.timed_out
      && r_ref.Vm.samples = r_fast.Vm.samples
      && sorted_edges r_ref = sorted_edges r_fast)

(* ------------------------------------------------------------------ *)
(* run_opts edge cases the suite never hits.                           *)

let fib_src =
  "int fib(int n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - \
   2); }\n\
   int main() { output(fib(12)); return 0; }"

let test_budget_mid_call () =
  (* Sweep small budgets over a call-heavy program: several of them
     exhaust inside the call/enter sequence. The partial output, the
     instrs = budget + 1 accounting and the timeout flag must match. *)
  List.iter
    (fun config ->
      let bin = compile ~config fib_src [ "main" ] in
      List.iter
        (fun budget ->
          let mk () = { Vm.default_opts with Vm.max_instrs = budget } in
          let r_ref = Vm.Reference.run bin ~entry:"main" ~input:[] (mk ()) in
          let r_fast = run_fast bin ~entry:"main" ~args:[] ~input:[] (mk ()) in
          Alcotest.(check bool)
            (Printf.sprintf "budget %d timed out" budget)
            true r_ref.Vm.timed_out;
          Alcotest.(check int)
            (Printf.sprintf "budget %d instrs = budget + 1" budget)
            (budget + 1) r_ref.Vm.instrs;
          check_same (Printf.sprintf "budget %d" budget) r_ref r_fast)
        [ 1; 2; 3; 5; 8; 13; 21; 55; 233; 1597 ])
    configs

let test_unreachable_breakpoints () =
  (* Breakpoints planted on every address: the unreachable ones must
     never fire, survive in the array, and both cores must agree on the
     surviving set. *)
  let src =
    "int main() { int x = input(); if (x) { output(1); } else { output(2); \
     } return 0; }"
  in
  List.iter
    (fun config ->
      let bin = compile ~config src [ "main" ] in
      let len = Array.length bin.Emit.code in
      let bp_ref = Array.make len true and bp_fast = Array.make len true in
      let mk bps =
        { Vm.default_opts with Vm.breakpoints = Some bps }
      in
      let r_ref = Vm.Reference.run bin ~entry:"main" ~input:[ 0 ] (mk bp_ref) in
      let r_fast = run_fast bin ~entry:"main" ~args:[] ~input:[ 0 ] (mk bp_fast) in
      check_same "unreachable bps" r_ref r_fast;
      Alcotest.(check (array bool)) "surviving breakpoints" bp_ref bp_fast;
      (* The not-taken arm really was unreachable: some breakpoints
         survive, and none of the hits repeat. *)
      Alcotest.(check bool)
        "some breakpoints never fire" true
        (Array.exists (fun b -> b) bp_ref);
      let sorted = List.sort_uniq compare r_ref.Vm.bp_hits in
      Alcotest.(check int)
        "hits are first-hit unique"
        (List.length sorted)
        (List.length r_ref.Vm.bp_hits))
    configs

let test_sample_every_cycle () =
  (* sample_period = Some 1: the jitter degenerates to Rng.int _ 1 = 0,
     so every instruction boundary past the cost threshold samples. *)
  let bin = compile fib_src [ "main" ] in
  let mk () = { Vm.default_opts with Vm.sample_period = Some 1 } in
  let r_ref = Vm.Reference.run bin ~entry:"main" ~input:[] (mk ()) in
  let r_fast = run_fast bin ~entry:"main" ~args:[] ~input:[] (mk ()) in
  check_same "period-1 sampling" r_ref r_fast;
  Alcotest.(check bool) "dense samples" true
    (List.length r_ref.Vm.samples >= r_ref.Vm.cost / 2)

let test_empty_input () =
  (* input() on an exhausted stream yields 0 without advancing; eof()
     flips to 1 immediately on an empty vector. *)
  let src =
    "int main() { output(eof()); output(input()); output(input()); \
     output(eof()); return 0; }"
  in
  List.iter
    (fun config ->
      let bin = compile ~config src [ "main" ] in
      let r_ref = Vm.Reference.run bin ~entry:"main" ~input:[] Vm.default_opts in
      let r_fast =
        run_fast bin ~entry:"main" ~args:[] ~input:[] Vm.default_opts
      in
      Alcotest.(check (list int)) "empty-input semantics" [ 1; 0; 0; 1 ]
        r_ref.Vm.output;
      check_same "empty input" r_ref r_fast)
    configs

(* ------------------------------------------------------------------ *)
(* enter_function arity handling (the fixed nth_opt path).             *)

let arity_src =
  "int f(int a, int b) { output(a); output(b); return a + b; }\n\
   int main() { return 0; }"

let test_arity_underapplication () =
  List.iter
    (fun config ->
      let bin = compile ~config arity_src [ "f"; "main" ] in
      let r = Vm.run bin ~entry:"f" ~args:[ 7 ] ~input:[] Vm.default_opts in
      Alcotest.(check (list int)) "missing args zero-filled" [ 7; 0 ] r.Vm.output;
      let r_ref =
        Vm.Reference.run bin ~entry:"f" ~args:[ 7 ] ~input:[] Vm.default_opts
      in
      check_same "under-application" r_ref r)
    configs

let test_arity_overapplication () =
  List.iter
    (fun config ->
      let bin = compile ~config arity_src [ "f"; "main" ] in
      let r =
        Vm.run bin ~entry:"f" ~args:[ 7; 8; 9; 10 ] ~input:[] Vm.default_opts
      in
      Alcotest.(check (list int)) "surplus args dropped" [ 7; 8 ] r.Vm.output;
      let r_ref =
        Vm.Reference.run bin ~entry:"f" ~args:[ 7; 8; 9; 10 ] ~input:[]
          Vm.default_opts
      in
      check_same "over-application" r_ref r)
    configs

(* ------------------------------------------------------------------ *)

let tests =
  [
    Alcotest.test_case "suite programs conform across opts grid" `Slow
      test_suite_conformance;
    Alcotest.test_case "synthetic binaries conform across opts grid" `Slow
      test_synth_conformance;
    QCheck_alcotest.to_alcotest test_qcheck_conformance;
    Alcotest.test_case "budget exhaustion mid-call" `Quick test_budget_mid_call;
    Alcotest.test_case "breakpoints on unreachable addresses" `Quick
      test_unreachable_breakpoints;
    Alcotest.test_case "sample_period = 1" `Quick test_sample_every_cycle;
    Alcotest.test_case "empty-input input()/eof()" `Quick test_empty_input;
    Alcotest.test_case "arity under-application zero-fills" `Quick
      test_arity_underapplication;
    Alcotest.test_case "arity over-application drops surplus" `Quick
      test_arity_overapplication;
  ]
