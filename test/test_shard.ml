(* Sharded corpus execution (ROADMAP item 5): merged shard partials
   must render byte-identically to the single-process run for any
   shard count, a killed-and-restarted run must resume warm from the
   shared store with unchanged output, and the corpus itself must be
   digest-stable and exactly partitioned however it is sliced. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

module C = Debugtuner.Config
module E = Debugtuner.Experiments
module ME = Debugtuner.Measure_engine
module R = Api.Request
module Resp = Api.Response

let seed = 5
let corpus = 8
let spec = { E.cs_seed = seed; cs_n = corpus }
let configs = [ C.make C.Gcc C.O2; C.make C.Clang C.O1 ]
let job ?shard () = Api.Job.make ~configs ~seed ~corpus ?shard ()

let temp_dir =
  let seq = ref 0 in
  fun () ->
    incr seq;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dtshard-test-%d-%d" (Unix.getpid ()) !seq)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let with_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf d with _ -> ()) (fun () -> f d)

(* Every execution uses a fresh context (and optionally a fresh store
   handle on a shared directory) — each one models a separate worker
   process. *)
let exec ?store req =
  let resp = Api.execute (Api.create_ctx ?store ()) req in
  (match resp.Resp.status with
  | Resp.Ok -> ()
  | Resp.Error msg -> Alcotest.failf "request failed: %s" msg
  | Resp.Overloaded -> Alcotest.fail "overloaded");
  resp

let partial_of (resp : Resp.t) =
  match resp.Resp.data with
  | Resp.D_partial p -> p
  | _ -> Alcotest.fail "expected a shard partial"

let stat (resp : Resp.t) name =
  Option.value ~default:0 (List.assoc_opt name resp.Resp.stats)

let store_hits (resp : Resp.t) =
  List.fold_left
    (fun acc (n, v) ->
      let pre = "store/" and suf = "/hits" in
      if
        String.length n > String.length pre + String.length suf
        && String.sub n 0 (String.length pre) = pre
        && String.sub n (String.length n - String.length suf)
             (String.length suf)
           = suf
      then acc + v
      else acc)
    0 resp.Resp.stats

(* ------------------------------------------------------------------ *)

let test_merge_byte_identity () =
  with_dir @@ fun d ->
  (* One shared cache directory across every run: exactly the shard
     deployment (and it keeps this test fast — one cold pass). *)
  let store () = ME.open_store ~dir:d () in
  let single = exec ~store:(store ()) (R.Experiments { e_job = job () }) in
  checkb "single run renders tables" true
    (String.length single.Resp.text > 0);
  List.iter
    (fun n ->
      let partials =
        List.init n (fun k ->
            let resp =
              exec ~store:(store ())
                (R.Experiments { e_job = job ~shard:(k + 1, n) () })
            in
            partial_of resp)
      in
      (* digest-stable: every shard of every count sees one corpus *)
      List.iter
        (fun (p : Api.Partial.t) ->
          check Alcotest.string
            (Printf.sprintf "digest stable at %d shards" n)
            (E.corpus_digest spec) p.Api.Partial.pt_digest)
        partials;
      (* merge must not care about partial order *)
      let merged =
        exec (R.Merge { m_partials = List.rev partials })
      in
      check Alcotest.string
        (Printf.sprintf "%d-shard merge byte-identical" n)
        single.Resp.text merged.Resp.text)
    [ 1; 2; 4 ]

let test_kill_and_resume () =
  with_dir @@ fun d ->
  (* The "killed" run: only shard 1/2 completed before the crash. *)
  let killed =
    exec
      ~store:(ME.open_store ~dir:d ())
      (R.Experiments { e_job = job ~shard:(1, 2) () })
  in
  checkb "interrupted run made progress" true
    ((partial_of killed).Api.Partial.pt_rows <> []);
  (* Reference output, computed with no store at all. *)
  let reference = exec (R.Experiments { e_job = job () }) in
  (* The restart: a fresh process (fresh context/engine/handle) on the
     same directory finishes the job — prior work is served from disk,
     the output is unchanged. *)
  let resumed =
    exec ~store:(ME.open_store ~dir:d ()) (R.Experiments { e_job = job () })
  in
  check Alcotest.string "resumed output unchanged" reference.Resp.text
    resumed.Resp.text;
  checkb "warm rerun hit the store" true (store_hits resumed > 0);
  checkb "resume counter reports salvaged programs" true
    (stat resumed "shard/resumed_programs" >= 1);
  check Alcotest.int "every program accounted" corpus
    (stat resumed "shard/programs")

let test_slices_partition_corpus () =
  let entries = Corpus.generate ~seed ~n:corpus in
  let all = List.map (fun e -> e.Corpus.e_index) entries in
  List.iter
    (fun n ->
      let sliced =
        List.concat_map
          (fun i ->
            List.map
              (fun e -> e.Corpus.e_index)
              (E.shard_slice { E.sh_index = i; sh_count = n } entries))
          (List.init n (fun i -> i + 1))
      in
      check
        Alcotest.(list int)
        (Printf.sprintf "%d shards partition the corpus" n)
        (List.sort compare all) (List.sort compare sliced))
    [ 1; 2; 3; 4; 5; 8; 11 ]

let test_merge_validation () =
  with_dir @@ fun d ->
  let store () = ME.open_store ~dir:d () in
  let partials =
    List.init 2 (fun k ->
        partial_of
          (exec ~store:(store ())
             (R.Experiments { e_job = job ~shard:(k + 1, 2) () })))
  in
  let expect_error what req =
    let resp = Api.execute (Api.create_ctx ()) req in
    match resp.Resp.status with
    | Resp.Error _ -> ()
    | _ -> Alcotest.failf "%s accepted" what
  in
  expect_error "empty partial set" (R.Merge { m_partials = [] });
  expect_error "incomplete shard set"
    (R.Merge { m_partials = [ List.hd partials ] });
  expect_error "duplicate shard"
    (R.Merge { m_partials = [ List.hd partials; List.hd partials ] });
  (match partials with
  | [ a; b ] ->
      expect_error "digest mismatch"
        (R.Merge
           { m_partials = [ a; { b with Api.Partial.pt_digest = "beef" } ] })
  | _ -> Alcotest.fail "expected two partials");
  (* and the happy path still merges *)
  let merged = exec (R.Merge { m_partials = partials }) in
  checkb "valid set merges" true (String.length merged.Resp.text > 0)

let test_strict_shard_parser () =
  let ok s = match Util.Cliopts.parse_shard s with Ok v -> Some v | Error _ -> None in
  check Alcotest.(option (pair int int)) "1/1" (Some (1, 1)) (ok "1/1");
  check Alcotest.(option (pair int int)) "2/4" (Some (2, 4)) (ok "2/4");
  check Alcotest.(option (pair int int)) "16/16" (Some (16, 16)) (ok "16/16");
  List.iter
    (fun s ->
      match Util.Cliopts.parse_shard s with
      | Ok (i, n) -> Alcotest.failf "%S accepted as %d/%d" s i n
      | Error msg ->
          checkb (Printf.sprintf "%S error names the spec" s) true
            (String.length msg > 0))
    [
      ""; "junk"; "0/2"; "3/2"; "1/0"; "0/0"; "-1/2"; "1/-2"; "1/2/3";
      " 1/2"; "1/2 "; "1.0/2"; "a/2"; "2/b"; "/"; "1/"; "/2"; "0x1/2";
    ]

let tests =
  [
    Alcotest.test_case "strict --shard parser" `Quick test_strict_shard_parser;
    Alcotest.test_case "shard slices partition the corpus" `Quick
      test_slices_partition_corpus;
    Alcotest.test_case "merge validation refuses bad sets" `Slow
      test_merge_validation;
    Alcotest.test_case "1/2/4-shard merges byte-identical" `Slow
      test_merge_byte_identity;
    Alcotest.test_case "kill-and-resume: warm, unchanged output" `Slow
      test_kill_and_resume;
  ]
