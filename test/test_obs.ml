(** Tests for the observability layer ([Obs] + [Instrument]): span
    nesting and self-time attribution, the zero-cost disabled path
    (no observable allocation, byte-identical artifacts), Chrome
    trace_event export round-tripping through the validator, and the
    per-pass profile deltas telescoping to the whole-compile deltas
    reported by [Toolchain.pipeline_trace]. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

(* Every test installs and tears down its own session; a leaked session
   would poison the digest-identity test, so bracket defensively. *)
let with_session f =
  ignore (Obs.stop ());
  Obs.start ();
  Fun.protect ~finally:(fun () -> ignore (Obs.stop ())) f

let stop_exn () =
  match Obs.stop () with
  | Some s -> s
  | None -> Alcotest.fail "expected an active session"

let spin () =
  (* Busy loop long enough to register on the monotonic clock. *)
  let t0 = Obs.Clock.now_ns () in
  while Int64.sub (Obs.Clock.now_ns ()) t0 < 100_000L do
    ()
  done

(* ------------------------------------------------------------------ *)
(* Span nesting and self time                                          *)

let test_span_nesting () =
  ignore (Obs.stop ());
  Obs.start ();
  Obs.Span.wrap "outer" (fun () ->
      spin ();
      Obs.Span.wrap "inner" (fun () -> spin ()));
  Obs.Span.start "bracketed";
  spin ();
  Obs.Span.finish "bracketed";
  let s = stop_exn () in
  let evs = Obs.events s in
  Alcotest.(check int) "four events" 4 (List.length evs);
  let names = List.map (fun e -> e.Obs.ev_name) evs in
  (* wrap records at completion: inner closes before outer. *)
  Alcotest.(check (list string))
    "emission order" [ "inner"; "outer"; "bracketed"; "bracketed" ] names;
  (* Timestamps are monotone relative to session start. *)
  List.iter
    (fun e -> Alcotest.(check bool) "ts >= 0" true (e.Obs.ev_ts >= 0L))
    evs;
  let rows = Obs.self_times s in
  let find n = List.find (fun r -> r.Obs.sr_name = n) rows in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check bool) "inner nested inside outer" true
    (outer.Obs.sr_total_ns >= inner.Obs.sr_total_ns);
  (* Self time excludes the nested span but never goes negative. *)
  Alcotest.(check bool) "outer self = total - inner" true
    (outer.Obs.sr_self_ns
    <= Int64.sub outer.Obs.sr_total_ns inner.Obs.sr_total_ns);
  Alcotest.(check bool) "self non-negative" true
    (List.for_all (fun r -> r.Obs.sr_self_ns >= 0L) rows)

let test_span_wrap_reraises () =
  ignore (Obs.stop ());
  Obs.start ();
  (try Obs.Span.wrap "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let s = stop_exn () in
  (* The span is still recorded, and the document still validates. *)
  Alcotest.(check int) "span recorded despite raise" 1
    (List.length (Obs.events s));
  match Obs.validate_chrome (Obs.to_chrome_json s) with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m

let test_counters () =
  ignore (Obs.stop ());
  (* Disabled: counting is a no-op, not an error. *)
  Obs.count "never";
  Obs.start ();
  Obs.count "a";
  Obs.count ~n:41 "a";
  Obs.count "b";
  Alcotest.(check (list (pair string int)))
    "live counters" [ ("a", 42); ("b", 1) ] (Obs.current_counters ());
  let s = stop_exn () in
  Alcotest.(check (list (pair string int)))
    "stopped counters" [ ("a", 42); ("b", 1) ] (Obs.counters s);
  Alcotest.(check (list (pair string int)))
    "no live counters after stop" [] (Obs.current_counters ())

(* ------------------------------------------------------------------ *)
(* The disabled path                                                   *)

let test_disabled_allocates_nothing () =
  ignore (Obs.stop ());
  let f = fun () -> 17 in
  (* Warm up so any one-time setup is out of the measurement. *)
  ignore (Obs.Span.wrap "warm" f);
  Obs.count "warm";
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    ignore (Obs.Span.wrap "off" f);
    Obs.count "off";
    ignore (Obs.enabled ())
  done;
  let words = Gc.minor_words () -. before in
  (* 30k API entries: allow a few words of slack (Gc.minor_words itself
     boxes its float result) but nothing per-call. *)
  Alcotest.(check bool)
    (Printf.sprintf "disabled path allocated %.0f words" words)
    true (words < 256.0)

let test_disabled_binaries_byte_identical () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let cfg = C.make C.Gcc C.O2 in
  ignore (Obs.stop ());
  let plain = T.compile ast ~config:cfg ~roots in
  let traced =
    with_session (fun () -> T.compile ast ~config:cfg ~roots)
  in
  Alcotest.(check string) "same machine code" plain.Emit.text_digest
    traced.Emit.text_digest;
  Alcotest.(check string) "same full artifact (debug info included)"
    plain.Emit.full_digest traced.Emit.full_digest

(* ------------------------------------------------------------------ *)
(* Chrome export and validation                                        *)

let compile_session () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  ignore (Obs.stop ());
  Obs.start ();
  ignore (T.compile ast ~config:(C.make C.Gcc C.O2) ~roots:(Suite_types.roots p));
  stop_exn ()

let test_chrome_roundtrip () =
  let s = compile_session () in
  let js = Obs.to_chrome_json s in
  match Obs.validate_chrome js with
  | Error m -> Alcotest.fail m
  | Ok v ->
      Alcotest.(check bool) "events checked" true (v.Obs.v_events > 0);
      (* Every profiled pass shows up as at least one named span. *)
      List.iter
        (fun pr ->
          match List.assoc_opt pr.Obs.pr_pass v.Obs.v_spans with
          | Some n when n >= 1 -> ()
          | _ -> Alcotest.failf "no span for pass %s" pr.Obs.pr_pass)
        (Obs.profiles s);
      (* Phases bracket as B/E pairs and survive validation too. *)
      List.iter
        (fun phase ->
          match List.assoc_opt ("phase:" ^ phase) v.Obs.v_spans with
          | Some n when n >= 1 -> ()
          | _ -> Alcotest.failf "no span for phase %s" phase)
        [ "ir"; "backend"; "emit" ]

let test_chrome_rejects_corruption () =
  let s = compile_session () in
  let js = Obs.to_chrome_json s in
  let corrupt =
    (* Break the first ph marker: "ph":"X" -> "ph":"Q". *)
    let needle = {|"ph":"X"|} in
    let rec find i =
      if i + String.length needle > String.length js then
        Alcotest.fail "no X event to corrupt"
      else if String.sub js i (String.length needle) = needle then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub js 0 i ^ {|"ph":"Q"|}
    ^ String.sub js
        (i + String.length needle)
        (String.length js - i - String.length needle)
  in
  (match Obs.validate_chrome corrupt with
  | Ok _ -> Alcotest.fail "validator accepted a bad ph"
  | Error _ -> ());
  match Obs.validate_chrome (String.sub js 0 (String.length js / 2)) with
  | Ok _ -> Alcotest.fail "validator accepted truncated JSON"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Per-pass deltas telescope to the whole-compile deltas               *)

let test_deltas_telescope () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let cfg = C.make C.Gcc C.O2 in
  ignore (Obs.stop ());
  Obs.start ();
  ignore (T.compile ast ~config:cfg ~roots);
  let s = stop_exn () in
  let trace = T.pipeline_trace ast ~config:cfg ~roots in
  let ir_names =
    List.filter_map
      (fun (name, _) ->
        if Filename.check_suffix name " (backend)" then None else Some name)
      trace
  in
  let sum f =
    List.fold_left
      (fun acc pr ->
        if List.mem pr.Obs.pr_pass ir_names then acc + f pr.Obs.pr_delta
        else acc)
      0 (Obs.profiles s)
  in
  let first = snd (List.hd trace) in
  let last = snd (List.nth trace (List.length trace - 1)) in
  Alcotest.(check int) "instr deltas telescope"
    (last.T.st_instrs - first.T.st_instrs)
    (sum (fun d -> d.Instrument.c_instrs));
  Alcotest.(check int) "line deltas telescope"
    (last.T.st_lines - first.T.st_lines)
    (sum (fun d -> d.Instrument.c_lines))

let test_vm_counters () =
  let p = Programs.find "zlib" in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:(Suite_types.roots p) in
  let h = List.hd p.Suite_types.p_harnesses in
  ignore (Obs.stop ());
  Obs.start ();
  let r = Vm.run bin ~entry:h.Suite_types.h_entry ~input:[ 1; 2; 3 ] Vm.default_opts in
  let s = stop_exn () in
  let ctrs = Obs.counters s in
  Alcotest.(check (option int)) "one run" (Some 1) (List.assoc_opt "vm/runs" ctrs);
  Alcotest.(check (option int)) "instr counter matches result"
    (Some r.Vm.instrs)
    (List.assoc_opt "vm/instrs" ctrs);
  Alcotest.(check bool) "vm span recorded" true
    (List.exists (fun e -> e.Obs.ev_name = "vm:run") (Obs.events s))

let tests =
  [
    Alcotest.test_case "span nesting and self time" `Quick test_span_nesting;
    Alcotest.test_case "wrap records on raise" `Quick test_span_wrap_reraises;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "disabled path allocates nothing" `Quick
      test_disabled_allocates_nothing;
    Alcotest.test_case "disabled tracing is byte-identical" `Quick
      test_disabled_binaries_byte_identical;
    Alcotest.test_case "chrome JSON round-trips the validator" `Quick
      test_chrome_roundtrip;
    Alcotest.test_case "validator rejects corruption" `Quick
      test_chrome_rejects_corruption;
    Alcotest.test_case "per-pass deltas telescope" `Quick
      test_deltas_telescope;
    Alcotest.test_case "vm counters" `Quick test_vm_counters;
  ]
