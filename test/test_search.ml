(* Tuning search (ROADMAP item 2): the Pareto-front search over the
   2^N disable-set space must be a pure function of (strategy, seed,
   budget) — byte-identical frontiers at any worker count and across
   kill-and-resume through the persistent store — and the hill-climb
   must actually escape the one-dimensional ridge the greedy dy sweep
   walks. Also holds the digest-equality regression for the sorted
   function-iteration hardening (Ir.iter_funcs): sweep-planned compiles
   run passes over Snapshot-restored tables, whose Hashtbl iteration
   order differs from a straight compile's, and the binaries must be
   byte-identical anyway. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module ME = Debugtuner.Measure_engine
module Ev = Debugtuner.Evaluation
module Tu = Debugtuner.Tuning
module Rk = Debugtuner.Ranking

(* A pinned two-program suite: big enough that disable sets move both
   metrics, small enough that a search is a few hundred milliseconds. *)
let sprog seed name =
  {
    Suite_types.p_name = name;
    p_source = Synth.generate ~seed;
    p_harnesses =
      [ { Suite_types.h_name = "main"; h_entry = "main"; h_seeds = [] } ];
  }

(* Program seeds 3/5 are pinned with the search seed: on this pair the
   greedy dy points sit off the true front, so the escape assertion in
   [test_hill_climb_escapes_greedy] has something to find (verified for
   search seeds 1 and 2). *)
let benches = [ sprog 3 "srch-a"; sprog 5 "srch-b" ]
let suite = lazy (List.map Ev.prepare benches)
let base = C.make C.Gcc C.O2

let opts ?(strategy = Tu.Hill_climb) ?(budget = 5) ?(seed = 1)
    ?(seeds = []) () =
  {
    Tu.so_strategy = strategy;
    so_budget = budget;
    so_seed = seed;
    so_debug_weight = 1.0;
    so_speed_weight = 1.0;
    so_seeds = seeds;
  }

let run_search ?(engine = ME.create ()) opts =
  let suite = Lazy.force suite in
  let o0_costs = Tu.o0_costs ~engine benches in
  Tu.search ~engine suite ~o0_costs benches ~base ~opts

(* The full result, flattened to a comparable string — fingerprints and
   both metrics at full precision. *)
let frontier_repr (r : Tu.search_result) =
  String.concat ";"
    (List.map
       (fun (f : Tu.frontier_point) ->
         Printf.sprintf "%s|%.17g|%.17g" (C.fingerprint f.Tu.fp_config)
           f.Tu.fp_debug f.Tu.fp_speedup)
       r.Tu.sr_frontier)

(* ------------------------------------------------------------------ *)
(* Determinism: equal (strategy, seed, budget) => equal frontier, at
   1, 2 and 4 engine workers.                                          *)

let strategy_of_int = function
  | 0 -> Tu.Random_sampling
  | 1 -> Tu.Hill_climb
  | _ -> Tu.Bandit

let qcheck_jobs_determinism =
  QCheck.Test.make ~count:6
    ~name:"equal (strategy, seed, budget) => identical frontier at jobs 1/2/4"
    QCheck.(pair (int_range 0 2) (int_range 1 1000))
    (fun (si, seed) ->
      let strategy = strategy_of_int si in
      let run workers =
        frontier_repr
          (run_search ~engine:(ME.create ~workers ())
             (opts ~strategy ~budget:4 ~seed ()))
      in
      let r1 = run 1 in
      r1 <> "" && r1 = run 2 && r1 = run 4)

let test_repeat_run_identical () =
  List.iter
    (fun strategy ->
      let r1 = run_search (opts ~strategy ~budget:6 ()) in
      let r2 = run_search (opts ~strategy ~budget:6 ()) in
      check Alcotest.string
        (Tu.strategy_name strategy ^ " frontier stable across runs")
        (frontier_repr r1) (frontier_repr r2);
      check Alcotest.int "budget honored" 6 r1.Tu.sr_evaluated)
    [ Tu.Random_sampling; Tu.Hill_climb; Tu.Bandit ]

(* ------------------------------------------------------------------ *)
(* Frontier invariants: sorted, mutually non-dominated, and it weakly
   dominates every point that was evaluated.                           *)

let qcheck_frontier_invariants =
  QCheck.Test.make ~count:5
    ~name:"frontier is sorted, non-dominated, and covers its seeds"
    QCheck.(pair (int_range 0 2) (int_range 1 1000))
    (fun (si, seed) ->
      let r =
        run_search (opts ~strategy:(strategy_of_int si) ~budget:4 ~seed ())
      in
      let front = r.Tu.sr_frontier in
      let keys =
        List.map
          (fun (f : Tu.frontier_point) -> (f.Tu.fp_debug, f.Tu.fp_speedup))
          front
      in
      let sorted = List.sort compare keys = keys in
      let dominates (d1, s1) (d2, s2) =
        d1 >= d2 && s1 >= s2 && (d1 > d2 || s1 > s2)
      in
      let non_dominated =
        List.for_all
          (fun p -> not (List.exists (fun q -> q <> p && dominates q p) keys))
          keys
      in
      sorted && non_dominated
      && Tu.weak_dominance_margin front keys >= 0.0)

(* ------------------------------------------------------------------ *)
(* The point of the exercise: seeded with the greedy dy configurations,
   the hill-climb must come back with a point that strictly dominates
   one of them — the greedy sweep can only disable prefixes of its one
   ranked order, a local optimum in the 2^N space.                     *)

let test_hill_climb_escapes_greedy () =
  let engine = ME.create () in
  let lr = Rk.rank ~engine (Lazy.force suite) base in
  let dys = List.map (fun y -> Tu.dy_config lr ~y) [ 3; 5; 7; 9 ] in
  let r =
    run_search ~engine (opts ~strategy:Tu.Hill_climb ~budget:24 ~seeds:dys ())
  in
  let o0_costs = Tu.o0_costs ~engine benches in
  let greedy =
    List.map
      (fun c ->
        let pt =
          Tu.measure_point ~engine (Lazy.force suite) ~o0_costs benches c
        in
        (pt.Tu.cp_debug, pt.Tu.cp_speedup))
      dys
  in
  (* weak dominance of every greedy point holds by construction... *)
  checkb "front weakly dominates every greedy point" true
    (Tu.weak_dominance_margin r.Tu.sr_frontier greedy >= 0.0);
  (* ...and the climb found something the greedy order cannot reach:
     a frontier point strictly better than some greedy point. *)
  let strictly_improves (d, s) =
    List.exists
      (fun (f : Tu.frontier_point) ->
        f.Tu.fp_debug >= d && f.Tu.fp_speedup >= s
        && (f.Tu.fp_debug > d || f.Tu.fp_speedup > s))
      r.Tu.sr_frontier
  in
  checkb "some greedy point is strictly dominated" true
    (List.exists strictly_improves greedy)

(* ------------------------------------------------------------------ *)
(* Kill-and-resume through the persistent store.                       *)

let temp_dir =
  let seq = ref 0 in
  fun () ->
    incr seq;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "dtsearch-test-%d-%d" (Unix.getpid ()) !seq)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    try Sys.rmdir path with Sys_error _ -> ()
  end
  else try Sys.remove path with Sys_error _ -> ()

let with_dir f =
  let d = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf d with _ -> ()) (fun () -> f d)

let search_counter name =
  Option.value ~default:0 (List.assoc_opt name (ME.search_counters ()))

let test_resume_after_kill () =
  with_dir @@ fun d ->
  (* Reference: the full search, no store anywhere near it. *)
  let reference = run_search (opts ~budget:6 ()) in
  (* The "killed" run: a store-backed search that only got through half
     its budget. The candidate sequence is deterministic, so those
     evaluations are exactly a prefix of the full run's. *)
  ignore
    (run_search
       ~engine:(ME.create ~store:(ME.open_store ~dir:d ()) ())
       (opts ~budget:3 ()));
  (* The restart: a fresh engine (fresh process, same directory) runs
     the full search — the first half must come back from the store. *)
  ME.reset_search_counters ();
  let resumed =
    run_search
      ~engine:(ME.create ~store:(ME.open_store ~dir:d ()) ())
      (opts ~budget:6 ())
  in
  check Alcotest.string "resumed frontier identical to cold one"
    (frontier_repr reference) (frontier_repr resumed);
  checkb "search/resumed counts salvaged evaluations" true
    (search_counter "resumed" >= 3);
  check Alcotest.int "sr_resumed agrees with the counter"
    (search_counter "resumed") resumed.Tu.sr_resumed

(* ------------------------------------------------------------------ *)
(* Digest equality: sweep-planned compiles (Snapshot-restored function
   tables) vs straight compiles, over random disable sets.             *)

let test_sweep_digest_equality () =
  let sp = List.hd benches in
  let prepared = List.hd (Lazy.force suite) in
  let rng = Util.Rng.create 77 in
  let universe = Array.of_list (T.pass_names base) in
  let random_config () =
    let disabled =
      Array.to_list universe
      |> List.filter (fun _ -> Util.Rng.int rng 3 = 0)
    in
    C.canonical { base with C.disabled }
  in
  let configs = base :: List.init 8 (fun _ -> random_config ()) in
  let engine = ME.create () in
  ME.compile_sweep engine prepared configs;
  List.iter
    (fun config ->
      let swept = ME.compile engine prepared config in
      let straight =
        T.compile (Suite_types.ast sp) ~config ~roots:(Suite_types.roots sp)
      in
      check Alcotest.string
        (C.fingerprint config ^ " sweep binary == straight binary")
        straight.Emit.full_digest swept.Emit.full_digest)
    configs

(* ------------------------------------------------------------------ *)
(* Small pure pieces.                                                  *)

let test_strategy_names () =
  List.iter
    (fun s ->
      check
        Alcotest.(option string)
        (Tu.strategy_name s ^ " round-trips")
        (Some (Tu.strategy_name s))
        (Option.map Tu.strategy_name (Tu.strategy_of_string (Tu.strategy_name s))))
    [ Tu.Random_sampling; Tu.Hill_climb; Tu.Bandit ];
  checkb "unknown strategy rejected" true (Tu.strategy_of_string "zen" = None)

let test_dominance_margin () =
  let fp d s =
    { Tu.fp_config = base; fp_debug = d; fp_speedup = s }
  in
  let front = [ fp 0.4 2.0; fp 0.6 1.5 ] in
  checkb "empty point set is vacuously dominated" true
    (Tu.weak_dominance_margin front [] = infinity);
  checkb "empty front dominates nothing" true
    (Tu.weak_dominance_margin [] [ (0.1, 0.1) ] = neg_infinity);
  check (Alcotest.float 1e-9) "interior point's margin" 0.1
    (Tu.weak_dominance_margin front [ (0.3, 1.4) ]);
  checkb "uncovered point goes negative" true
    (Tu.weak_dominance_margin front [ (0.7, 1.9) ] < 0.0)

let tests =
  [
    Alcotest.test_case "strategy names round-trip" `Quick test_strategy_names;
    Alcotest.test_case "weak dominance margin" `Quick test_dominance_margin;
    QCheck_alcotest.to_alcotest qcheck_jobs_determinism;
    QCheck_alcotest.to_alcotest qcheck_frontier_invariants;
    Alcotest.test_case "repeat runs byte-identical" `Slow
      test_repeat_run_identical;
    Alcotest.test_case "hill-climb escapes the greedy local optimum" `Slow
      test_hill_climb_escapes_greedy;
    Alcotest.test_case "kill-and-resume through the store" `Slow
      test_resume_after_kill;
    Alcotest.test_case "sweep binaries byte-identical to straight" `Slow
      test_sweep_digest_equality;
  ]
