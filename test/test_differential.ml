(** The differential oracle as a tier-1 test: every suite program,
    compiled at O0-O3 under both pipelines with the pass-boundary
    sanitizer on, must produce exactly the interpreter's output on the
    VM. One alcotest case per suite program so a miscompile names its
    program in the failure line. *)

let check_clean (p : Suite_types.sprogram) () =
  let failures, (runs, _skipped) = Diff_oracle.check_program p in
  Alcotest.(check bool)
    "ran the matrix" true
    (runs >= List.length (Diff_oracle.configs ()));
  match failures with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "%d divergence(s); first: %s" (List.length failures)
        (Diff_oracle.failure_to_string f)

let test_synth_clean () =
  (* A couple of synthetic programs through the same matrix, with
     shrinking armed — the path `debugtuner_cli check --fuzz` takes. *)
  let r = Diff_oracle.fuzz ~count:2 ~seed:101 () in
  Alcotest.(check bool) "ran" true (r.Diff_oracle.r_runs > 0);
  if not (Diff_oracle.clean r) then
    Alcotest.failf "synthetic divergence:\n%s" (Diff_oracle.report_to_string r)

let test_report_shape () =
  let r = Diff_oracle.fuzz ~count:1 ~seed:42 () in
  Alcotest.(check int) "programs" 1 r.Diff_oracle.r_programs;
  Alcotest.(check int) "configs" 8 r.Diff_oracle.r_configs;
  Alcotest.(check bool) "summary line" true
    (String.length (Diff_oracle.report_to_string r) > 0)

let tests =
  List.map
    (fun (p : Suite_types.sprogram) ->
      Alcotest.test_case
        (Printf.sprintf "oracle: %s" p.Suite_types.p_name)
        `Slow (check_clean p))
    Programs.all
  @ [
      Alcotest.test_case "oracle: synthetic programs" `Slow test_synth_clean;
      Alcotest.test_case "report shape" `Quick test_report_shape;
    ]
