(** Tests for the fuzzing substrate: coverage-guided loop, corpus
    minimization and debug-trace pruning. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let branchy =
  lazy
    (T.compile_source
       "int classify(int x) {\n\
        if (x < 0) { return 0; }\n\
        if (x == 42) { return 1; }\n\
        if (x > 1000) { return 2; }\n\
        if (x % 2 == 0) { return 3; }\n\
        return 4;\n\
        }\n\
        int main() {\n\
        while (!eof()) {\n\
        output(classify(input()));\n\
        }\n\
        return 0;\n\
        }"
       ~config:(C.make C.Gcc C.O0)
       ~roots:[ "main" ])

let test_fuzzer_deterministic () =
  let bin = Lazy.force branchy in
  let go () = Fuzzer.fuzz bin ~entry:"main" ~seeds:[ [ 1 ] ] ~budget:150 ~seed:5 in
  let a = go () and b = go () in
  Alcotest.(check int) "same corpus size" (List.length a.Fuzzer.corpus)
    (List.length b.Fuzzer.corpus);
  Alcotest.(check int) "same edges" a.Fuzzer.edges_found b.Fuzzer.edges_found

let test_fuzzer_finds_branches () =
  let bin = Lazy.force branchy in
  let r = Fuzzer.fuzz bin ~entry:"main" ~seeds:[ [ 1 ] ] ~budget:400 ~seed:7 in
  Alcotest.(check bool) "budget respected" true (r.Fuzzer.total_execs <= 401);
  (* The corpus should grow beyond the seed: several classify branches
     are reachable with cheap mutations. *)
  Alcotest.(check bool) "corpus grew" true (List.length r.Fuzzer.corpus >= 3)

let test_fuzzer_mutation_shapes () =
  let rng = Util.Rng.create 11 in
  for _ = 1 to 200 do
    let m = Fuzzer.mutate rng [ 1; 2; 3 ] in
    Alcotest.(check bool) "mutant bounded" true (List.length m <= 10)
  done

let test_cmin_preserves_edges () =
  let bin = Lazy.force branchy in
  let fz = Fuzzer.fuzz bin ~entry:"main" ~seeds:[ [ 1 ] ] ~budget:300 ~seed:3 in
  let corpus = List.map (fun (c : Fuzzer.corpus_entry) -> c.Fuzzer.data) fz.Fuzzer.corpus in
  let st = Cmin.minimize bin ~entry:"main" corpus in
  Alcotest.(check bool) "kept <= original" true
    (List.length st.Cmin.kept <= st.Cmin.original);
  (* Edge coverage of kept equals edge coverage of the full corpus. *)
  let edges inputs =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun input ->
        let r = Fuzzer.run_input bin ~entry:"main" input in
        List.iter (fun e -> Hashtbl.replace tbl e ()) (Fuzzer.edges_of r))
      inputs;
    Hashtbl.length tbl
  in
  Alcotest.(check int) "coverage preserved" (edges corpus) (edges st.Cmin.kept)

let test_trace_prune_preserves_lines () =
  let bin = Lazy.force branchy in
  let corpus = [ [ 1 ]; [ 2 ]; [ 42 ]; [ -5 ]; [ 2000 ]; [ 1; 2; 42 ] ] in
  let pruned = Trace_prune.prune bin ~entry:"main" corpus in
  let lines inputs =
    let t = Debugger.trace bin ~entry:"main" ~inputs in
    Debugger.stepped_lines t
  in
  Alcotest.(check (list int)) "stepped lines preserved" (lines corpus)
    (lines pruned);
  Alcotest.(check bool) "pruned something" true
    (List.length pruned < List.length corpus)

let test_edges_sorted () =
  (* Regression: edges_of folded a Hashtbl directly, so the edge list —
     and everything keyed off it — depended on the table's layout.
     It must come back sorted, and byte-identically across runs. *)
  let bin = Lazy.force branchy in
  let r = Fuzzer.run_input bin ~entry:"main" [ 1; 2; 42; 2000; -5 ] in
  let e = Fuzzer.edges_of r in
  Alcotest.(check bool) "non-empty" true (e <> []);
  Alcotest.(check bool) "sorted" true (List.sort compare e = e);
  let r2 = Fuzzer.run_input bin ~entry:"main" [ 1; 2; 42; 2000; -5 ] in
  Alcotest.(check bool) "reproducible" true (Fuzzer.edges_of r2 = e)

let test_fuzz_byte_reproducible () =
  (* Stronger than test_fuzzer_deterministic: the corpora must match
     entry for entry, not just in size. *)
  let bin = Lazy.force branchy in
  let go () =
    Fuzzer.fuzz bin ~entry:"main" ~seeds:[ [ 1 ] ] ~budget:200 ~seed:9
  in
  let data r =
    List.map (fun (c : Fuzzer.corpus_entry) -> c.Fuzzer.data) r.Fuzzer.corpus
  in
  Alcotest.(check (list (list int))) "identical corpora" (data (go ()))
    (data (go ()))

let test_shrink_list () =
  (* ddmin over a list: keep only what the predicate needs. *)
  let calls = ref 0 in
  let needs l = incr calls; List.mem 7 l && List.mem 13 l in
  let items = List.init 30 (fun i -> i) in
  let out = Cmin.shrink_list ~still_interesting:needs items in
  Alcotest.(check (list int)) "1-minimal" [ 7; 13 ] out;
  let c1 = !calls in
  calls := 0;
  let out2 = Cmin.shrink_list ~still_interesting:needs items in
  Alcotest.(check (list int)) "deterministic" out out2;
  Alcotest.(check int) "same call count" c1 !calls;
  Alcotest.(check (list int)) "empty ok" []
    (Cmin.shrink_list ~still_interesting:(fun _ -> true) [])

let tests =
  [
    Alcotest.test_case "fuzzer deterministic" `Quick test_fuzzer_deterministic;
    Alcotest.test_case "edges_of sorted + reproducible" `Quick test_edges_sorted;
    Alcotest.test_case "fuzz corpus byte-reproducible" `Quick
      test_fuzz_byte_reproducible;
    Alcotest.test_case "shrink_list ddmin" `Quick test_shrink_list;
    Alcotest.test_case "fuzzer finds branches" `Quick test_fuzzer_finds_branches;
    Alcotest.test_case "mutation shapes" `Quick test_fuzzer_mutation_shapes;
    Alcotest.test_case "cmin preserves edges" `Quick test_cmin_preserves_edges;
    Alcotest.test_case "trace prune preserves lines" `Quick
      test_trace_prune_preserves_lines;
  ]
