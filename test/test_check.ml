(** Tests for the pass-boundary sanitizer ([Sanitize]): it must accept
    every well-formed program the pipeline produces, and each invariant
    must demonstrably fire on a hand-corrupted fixture — a sanitizer
    that never rejects is no sanitizer. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

(* ------------------------------------------------------------------ *)
(* Acceptance: the sanitizer is silent on healthy compilations          *)

let all_configs =
  Array.of_list
    (List.concat_map
       (fun level -> [ C.make C.Gcc level; C.make C.Clang level ])
       [ C.O0; C.O1; C.O2; C.O3 ])

(* 1000 seeded synthetic programs through the full pipeline with every
   boundary checked; the config rotates with the seed so all eight
   pipelines share the load. Any [Check_failed] escapes and fails the
   test with the offending pass in the message. The seed sequence is a
   deterministic counter (2001..3000, disjoint from the CLI fuzz
   smoke's 1..100) so tier-1 cannot flake; random exploration lives in
   `debugtuner_cli check --fuzz N --seed S`. *)
let qcheck_sanitizer_accepts =
  let counter = ref 2000 in
  QCheck.Test.make ~name:"sanitizer accepts 1000 synthetic programs"
    ~count:1000
    (QCheck.make ~print:string_of_int (fun _rng ->
         incr counter;
         !counter))
    (fun seed ->
      let source = Synth.generate ~seed in
      let config = all_configs.(seed mod Array.length all_configs) in
      let ast = Minic.Typecheck.parse_and_check source in
      ignore
        (T.compile ast ~config ~roots:[ "main" ]
           ~options:(T.Options.make ~sanitize:true ()));
      true)

(* ------------------------------------------------------------------ *)
(* Rejection: every invariant fires on a corrupted fixture              *)

let loop_src =
  "int f(int n) {\n\
  \  int s = 0;\n\
  \  int i = 0;\n\
  \  while (i < n) {\n\
  \    s = s + i;\n\
  \    i = i + 1;\n\
  \  }\n\
  \  return s;\n\
   }"

let lowered () = Lower.lower_program (Minic.Typecheck.parse_and_check loop_src)

let ssa () =
  let p = lowered () in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) p.Ir.funcs;
  Cleanup.run_program p;
  p

let fn_of p = Hashtbl.find p.Ir.funcs "f"

let expect invariant f =
  match f () with
  | _ ->
      Alcotest.failf "expected a %s violation, sanitizer stayed silent"
        (Sanitize.invariant_name invariant)
  | exception Sanitize.Check_failed { invariant = fired; _ } ->
      Alcotest.(check string)
        "invariant"
        (Sanitize.invariant_name invariant)
        (Sanitize.invariant_name fired)

let test_rejects_structural () =
  let p = ssa () in
  let fn = fn_of p in
  (Ir.block fn fn.Ir.entry).Ir.term <- Ir.Br 999;
  expect Sanitize.Structural (fun () ->
      Sanitize.check_ir ~pass:"fixture" p)

let test_rejects_dominance () =
  let p = ssa () in
  let fn = fn_of p in
  (* Rewrite some phi to feed itself on every incoming edge: the
     entry-side edge then uses a value its block does not dominate. *)
  let corrupted = ref false in
  Ir.iter_blocks fn (fun b ->
      if (not !corrupted) && b.Ir.phis <> [] && List.length b.Ir.preds > 1
      then begin
        let ph = List.hd b.Ir.phis in
        ph.Ir.p_args <-
          List.map (fun (pl, _) -> (pl, Ir.Reg ph.Ir.p_dst)) ph.Ir.p_args;
        corrupted := true
      end);
  Alcotest.(check bool) "found a merge phi" true !corrupted;
  expect Sanitize.Dominance (fun () -> Sanitize.check_ir ~pass:"fixture" p)

let test_rejects_liveness_entry () =
  (* Pre-SSA form (dominance not checked, as at the "lower" boundary):
     an entry-block read of a register only defined further down makes
     that register live into entry. *)
  let p = lowered () in
  let fn = fn_of p in
  let entry = Ir.block fn fn.Ir.entry in
  let defined = ref [] in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          defined := Ir.def_of_ikind i.Ir.ik @ !defined)
        b.Ir.instrs);
  Alcotest.(check bool) "f defines something" true (!defined <> []);
  let r = List.hd !defined in
  let premature =
    { Ir.ik = Ir.Bin (Ir.Add, Ir.fresh_reg fn, Ir.Reg r, Ir.Imm 0);
      line = None }
  in
  entry.Ir.instrs <- premature :: entry.Ir.instrs;
  expect Sanitize.Liveness_entry (fun () ->
      Sanitize.check_ir ~ssa:false ~pass:"fixture" p)

let test_rejects_line_invalid () =
  let p = ssa () in
  let fn = fn_of p in
  let entry = Ir.block fn fn.Ir.entry in
  Alcotest.(check bool) "entry non-empty" true (entry.Ir.instrs <> []);
  (List.hd entry.Ir.instrs).Ir.line <- Some 0;
  expect Sanitize.Line_invalid (fun () ->
      Sanitize.check_ir ~pass:"fixture" p)

let test_rejects_line_grow () =
  let p = ssa () in
  let prev = Sanitize.check_ir ~pass:"fixture" p in
  let fn = fn_of p in
  let entry = Ir.block fn fn.Ir.entry in
  (List.hd entry.Ir.instrs).Ir.line <- Some 4999;
  expect Sanitize.Line_grow (fun () ->
      ignore (Sanitize.check_ir ~prev ~pass:"fixture" p))

let test_rejects_var_grow () =
  let p = ssa () in
  let prev = Sanitize.check_ir ~pass:"fixture" p in
  let fn = fn_of p in
  let entry = Ir.block fn fn.Ir.entry in
  let ghost =
    { Ir.ik = Ir.Dbg ({ Ir.origin = "f"; name = "ghost" }, None); line = None }
  in
  entry.Ir.instrs <- entry.Ir.instrs @ [ ghost ];
  expect Sanitize.Var_grow (fun () ->
      ignore (Sanitize.check_ir ~prev ~pass:"fixture" p))

let test_rejects_loc_bounds () =
  let p = lowered () in
  let m = Isel.translate_fn (fn_of p) Mach.opts_o0 in
  let corrupted = ref false in
  Hashtbl.iter
    (fun _ (b : Mach.mblock) ->
      List.iter
        (fun (i : Mach.minstr) ->
          if not !corrupted then
            let garbage = Mach.Preg (Mach.num_regs + 7) in
            match i.Mach.mk with
            | Mach.Mmov (_, v) ->
                i.Mach.mk <- Mach.Mmov (garbage, v);
                corrupted := true
            | Mach.Mload (_, a) ->
                i.Mach.mk <- Mach.Mload (garbage, a);
                corrupted := true
            | Mach.Mbin (op, _, a, b) ->
                i.Mach.mk <- Mach.Mbin (op, garbage, a, b);
                corrupted := true
            | _ -> ())
        b.Mach.mins)
    m.Mach.mf_blocks;
  Alcotest.(check bool) "found a move to corrupt" true !corrupted;
  expect Sanitize.Loc_bounds (fun () ->
      ignore (Sanitize.check_mach ~pass:"fixture" m))

let test_rejects_binary_debug () =
  let bin =
    T.compile_source loop_src ~config:(C.make C.Gcc C.O0) ~roots:[ "f" ]
  in
  bin.Emit.debug.Dwarfish.line_table <-
    bin.Emit.debug.Dwarfish.line_table
    @ [ { Dwarfish.addr = 1_000_000; line = 1 } ];
  expect Sanitize.Binary_debug (fun () ->
      Sanitize.check_binary ~pass:"fixture" bin)

let test_rejects_range_nesting () =
  let bin =
    T.compile_source loop_src ~config:(C.make C.Gcc C.O0) ~roots:[ "f" ]
  in
  (* Split one healthy range into two partially-overlapping copies of
     itself: same location (so Debug_verify's overlap-conflict check
     stays quiet), in bounds, but neither disjoint nor nested. *)
  let vi =
    List.find
      (fun (vi : Dwarfish.var_info) ->
        List.exists
          (fun (r : Dwarfish.range) -> r.Dwarfish.hi - r.Dwarfish.lo >= 3)
          vi.Dwarfish.vi_ranges)
      bin.Emit.debug.Dwarfish.vars
  in
  let r =
    List.find
      (fun (r : Dwarfish.range) -> r.Dwarfish.hi - r.Dwarfish.lo >= 3)
      vi.Dwarfish.vi_ranges
  in
  vi.Dwarfish.vi_ranges <-
    [
      { r with Dwarfish.hi = r.Dwarfish.hi - 1 };
      { r with Dwarfish.lo = r.Dwarfish.lo + 1 };
    ];
  expect Sanitize.Range_nesting (fun () ->
      Sanitize.check_binary ~pass:"fixture" bin)

let test_counters_track_failures () =
  Sanitize.reset_counters ();
  let p = ssa () in
  ignore (Sanitize.check_ir ~pass:"ctr-ok" p);
  let fn = fn_of p in
  (Ir.block fn fn.Ir.entry).Ir.term <- Ir.Br 999;
  (try ignore (Sanitize.check_ir ~pass:"ctr-bad" p)
   with Sanitize.Check_failed _ -> ());
  let find pass = List.find (fun (p', _, _) -> p' = pass) (Sanitize.counters ()) in
  let _, ok_checks, ok_fails = find "ctr-ok" in
  let _, bad_checks, bad_fails = find "ctr-bad" in
  Alcotest.(check (pair int int)) "clean boundary" (1, 0) (ok_checks, ok_fails);
  Alcotest.(check (pair int int)) "failing boundary" (1, 1)
    (bad_checks, bad_fails);
  Sanitize.reset_counters ()

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_sanitizer_accepts;
    Alcotest.test_case "rejects broken CFG (structural)" `Quick
      test_rejects_structural;
    Alcotest.test_case "rejects dominance violation" `Quick
      test_rejects_dominance;
    Alcotest.test_case "rejects non-param live into entry" `Quick
      test_rejects_liveness_entry;
    Alcotest.test_case "rejects invalid line" `Quick test_rejects_line_invalid;
    Alcotest.test_case "rejects invented line" `Quick test_rejects_line_grow;
    Alcotest.test_case "rejects invented variable" `Quick
      test_rejects_var_grow;
    Alcotest.test_case "rejects out-of-bounds machine location" `Quick
      test_rejects_loc_bounds;
    Alcotest.test_case "rejects corrupt binary debug info" `Quick
      test_rejects_binary_debug;
    Alcotest.test_case "rejects partially-overlapping ranges" `Quick
      test_rejects_range_nesting;
    Alcotest.test_case "counters track checks and failures" `Quick
      test_counters_track_failures;
  ]
