(** Property tests for the pass-prefix sweep planner
    ([Measure_engine.compile_sweep] / [bench_compile_sweep]): over
    random configuration sets, (a) every binary the planner seeds is
    byte-identical ([full_digest]) to a straight-line
    [Toolchain.compile], and (b) the [prefix/*] counters match an
    independent reference model of the divergence tree —
    [passes_skipped] is exactly the sum of shared-prefix lengths,
    including the O0/empty-pipeline edge case. The counters are
    structural by contract, so (b) holds no matter how much better the
    planner's semantic no-op merging does; (a) is what keeps the
    merging honest. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module ME = Debugtuner.Measure_engine
module Ev = Debugtuner.Evaluation

(* One small fixed subject: the planner's behavior varies with the
   config set, not the program. *)
let sp =
  {
    Suite_types.p_name = "prefix-prop";
    p_source = Synth.generate ~seed:42;
    p_harnesses =
      [ { Suite_types.h_name = "main"; h_entry = "main"; h_seeds = [] } ];
  }

let straight config =
  T.compile (Suite_types.ast sp) ~config ~roots:(Suite_types.roots sp)

let counter name =
  match List.assoc_opt name (ME.prefix_counters ()) with
  | Some v -> v
  | None -> Alcotest.fail ("missing counter " ^ name)

(* ------------------------------------------------------------------ *)
(* Reference model                                                     *)

(* Leaf depths of the divergence tree over one pipeline family: extend
   the trunk while every config agrees on the next entry's enabled bit,
   split at the first disagreement, stop at singletons. A leaf's depth
   is the number of pipeline entries its compile did not re-execute. *)
let leaf_depths n bitss =
  let rec plan idx = function
    | [] -> []
    | [ _ ] -> [ idx ]
    | b0 :: rest as l ->
        let k = ref idx in
        while !k < n && List.for_all (fun b -> b.(!k) = b0.(!k)) rest do
          incr k
        done;
        if !k > idx then if !k >= n then List.map (fun _ -> n) l else plan !k l
        else if idx >= n then List.map (fun _ -> idx) l
        else
          let yes, no = List.partition (fun b -> b.(idx)) l in
          plan idx yes @ plan idx no
  in
  plan 0 bitss

(* Expected (hits, misses, passes_skipped) for a sweep over [configs]:
   dedupe by fingerprint, group by pipeline family, singletons compile
   straight (one miss), groups follow the divergence tree. *)
let expected_counters configs =
  let seen = Hashtbl.create 8 in
  let uniq =
    List.filter
      (fun c ->
        let fp = C.fingerprint c in
        if Hashtbl.mem seen fp then false
        else begin
          Hashtbl.add seen fp ();
          true
        end)
      configs
  in
  let fams = ref [] in
  List.iter
    (fun c ->
      let key = (c.C.compiler, c.C.level) in
      match List.assoc_opt key !fams with
      | Some r -> r := c :: !r
      | None -> fams := !fams @ [ (key, ref [ c ]) ])
    uniq;
  List.fold_left
    (fun acc (_, r) ->
      match List.rev !r with
      | [ _ ] ->
          let h, m, sk = acc in
          (h, m + 1, sk)
      | group ->
          let names = List.map T.entry_name (T.pipeline (List.hd group)) in
          let n = List.length names in
          let bits c =
            Array.of_list (List.map (fun nm -> C.enabled c nm) names)
          in
          List.fold_left
            (fun (h, m, sk) d ->
              if d > 0 then (h + 1, m, sk + d) else (h, m + 1, sk))
            acc
            (leaf_depths n (List.map bits group)))
    (0, 0, 0) !fams

(* ------------------------------------------------------------------ *)
(* Random configuration sets                                           *)

(* Tiny deterministic LCG so a failing case reproduces from the QCheck
   input alone. *)
let derive_configs rand_seed count =
  let state = ref (rand_seed land 0x3FFFFFFF) in
  let next bound =
    state := ((!state * 48271) + 11) land 0x3FFFFFFF;
    !state mod max 1 bound
  in
  List.init count (fun _ ->
      let comp = if next 2 = 0 then C.Gcc else C.Clang in
      let levels = C.O0 :: C.standard_levels comp in
      let level = List.nth levels (next (List.length levels)) in
      let names = T.pass_names (C.make comp level) in
      let pool = "not-a-pass" :: names in
      let disabled =
        List.init (next 4) (fun _ -> List.nth pool (next (List.length pool)))
      in
      C.make ~disabled comp level)

let run_sweep configs =
  let eng = ME.create () in
  ME.reset_prefix_counters ();
  ME.bench_compile_sweep eng sp configs;
  eng

let check_byte_identity eng configs =
  List.iter
    (fun config ->
      match ME.peek_bench_compile eng sp config with
      | None -> Alcotest.fail ("not seeded: " ^ C.fingerprint config)
      | Some bin ->
          Alcotest.(check string)
            ("byte-identical: " ^ C.fingerprint config)
            (straight config).Emit.full_digest bin.Emit.full_digest)
    configs

let qcheck_planner =
  QCheck.Test.make ~name:"planner: byte-identity + counter arithmetic"
    ~count:12
    QCheck.(pair (int_range 0 1_000_000) (int_range 1 7))
    (fun (rand_seed, count) ->
      let configs = derive_configs rand_seed count in
      let eng = run_sweep configs in
      check_byte_identity eng configs;
      let h, m, sk = expected_counters configs in
      Alcotest.(check int) "prefix/hits" h (counter "prefix/hits");
      Alcotest.(check int) "prefix/misses" m (counter "prefix/misses");
      Alcotest.(check int) "prefix/passes_skipped" sk
        (counter "prefix/passes_skipped");
      true)

(* ------------------------------------------------------------------ *)
(* Deterministic edges                                                 *)

(* The Ranking sweep shape: baseline plus one config per disabled pass.
   Almost everything is shareable — require real savings, not just a
   nonzero counter. *)
let test_ranking_shape () =
  let base = C.make C.Gcc C.O2 in
  let configs =
    base
    :: List.map
         (fun pass -> C.make ~disabled:[ pass ] C.Gcc C.O2)
         (T.pass_names base)
  in
  let eng = run_sweep configs in
  check_byte_identity eng configs;
  let h, m, sk = expected_counters configs in
  Alcotest.(check int) "hits" h (counter "prefix/hits");
  Alcotest.(check int) "misses" m (counter "prefix/misses");
  Alcotest.(check int) "passes skipped" sk (counter "prefix/passes_skipped");
  Alcotest.(check bool) "most compiles shared a prefix" true
    (h > List.length configs / 2);
  Alcotest.(check bool) "snapshots accounted" true
    (counter "prefix/snapshot_bytes" > 0);
  (* Disabling a pass that happens to be a no-op on this subject must
     merge that config back into its siblings — on real programs most
     one-disabled configs collapse this way. *)
  Alcotest.(check bool) "no-op passes merged" true
    (counter "prefix/merged" > 0)

(* O0 has an empty pipeline: everything compiles as a prefix miss, and
   nothing breaks. *)
let test_o0_edge () =
  let configs =
    [
      C.make C.Gcc C.O0;
      C.make ~disabled:[ "dce" ] C.Gcc C.O0;
      C.make C.Clang C.O1;
    ]
  in
  let eng = run_sweep configs in
  check_byte_identity eng configs;
  Alcotest.(check int) "no hits" 0 (counter "prefix/hits");
  Alcotest.(check int) "all misses" 3 (counter "prefix/misses");
  Alcotest.(check int) "nothing skipped" 0 (counter "prefix/passes_skipped");
  (* The two O0 configs are trivially state-identical at the (empty)
     pipeline's end: one backend run serves both. *)
  Alcotest.(check int) "O0 pair merged" 1 (counter "prefix/merged")

(* Distinct fingerprints, identical effective pipelines: the planner
   proves the configs state-identical at the end of the pipeline and
   seeds both the same (physically shared) binary — no second backend
   run. *)
let test_merged_identical_bits () =
  let configs =
    [ C.make C.Gcc C.O2; C.make ~disabled:[ "not-a-pass" ] C.Gcc C.O2 ]
  in
  let eng = run_sweep configs in
  check_byte_identity eng configs;
  Alcotest.(check int) "merged" 1 (counter "prefix/merged");
  match
    ( ME.peek_bench_compile eng sp (List.nth configs 0),
      ME.peek_bench_compile eng sp (List.nth configs 1) )
  with
  | Some a, Some b -> Alcotest.(check bool) "physically shared" true (a == b)
  | _ -> Alcotest.fail "not seeded"

(* The --no-prefix-cache escape hatch: same binaries, zero planner
   activity. *)
let test_cache_disabled () =
  let configs =
    [ C.make C.Gcc C.O2; C.make ~disabled:[ "dce" ] C.Gcc C.O2 ]
  in
  ME.prefix_cache_enabled := false;
  Fun.protect ~finally:(fun () -> ME.prefix_cache_enabled := true)
  @@ fun () ->
  let eng = run_sweep configs in
  check_byte_identity eng configs;
  List.iter
    (fun (name, v) -> Alcotest.(check int) name 0 v)
    (ME.prefix_counters ())

(* compile_sweep (the prepared-subject tier): seeded binaries are what
   Evaluation.compile produces, and later engine compiles are tier-1
   hits. *)
let prepared = lazy (Ev.prepare (Programs.find "libpng"))

let test_prepared_sweep () =
  let p = Lazy.force prepared in
  let configs =
    [
      C.make C.Gcc C.O2;
      C.make ~disabled:[ "dce" ] C.Gcc C.O2;
      C.make ~disabled:[ "inline" ] C.Gcc C.O2;
    ]
  in
  let eng = ME.create () in
  ME.reset_prefix_counters ();
  ME.compile_sweep eng p configs;
  Alcotest.(check bool) "prefix engaged" true (counter "prefix/hits" > 0);
  List.iter
    (fun config ->
      match ME.peek_compile eng p config with
      | None -> Alcotest.fail ("not seeded: " ^ C.fingerprint config)
      | Some bin ->
          Alcotest.(check string)
            ("matches Evaluation.compile: " ^ C.fingerprint config)
            (Ev.compile p config).Emit.full_digest bin.Emit.full_digest;
          (* A post-sweep engine compile must be a tier-1 hit, i.e.
             physically the seeded binary. *)
          Alcotest.(check bool) "tier-1 hit" true
            (ME.compile eng p config == bin))
    configs;
  (* Re-sweeping is a no-op: everything peeks as cached. *)
  let before = ME.prefix_counters () in
  ME.compile_sweep eng p configs;
  Alcotest.(check (list (pair string int)))
    "idempotent" before (ME.prefix_counters ())

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_planner;
    Alcotest.test_case "ranking-shaped sweep" `Quick test_ranking_shape;
    Alcotest.test_case "O0 / empty pipeline" `Quick test_o0_edge;
    Alcotest.test_case "identical-bit configs share one backend run" `Quick
      test_merged_identical_bits;
    Alcotest.test_case "--no-prefix-cache escape hatch" `Quick
      test_cache_disabled;
    Alcotest.test_case "prepared-subject sweep" `Quick test_prepared_sweep;
  ]
