(** Tests for the AutoFDO substrate: sample collection, line mapping,
    profile-guided recompilation and the end-to-end causal chain. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain
module A = Debugtuner.Autofdo

let bench = lazy (Spec.find "505.mcf")

let test_collect_maps_samples () =
  let p = Lazy.force bench in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ] in
  let coll = A.collect bin ~entry:"main" ~workloads:[ [] ] ~period:211 ~seed:1 in
  Alcotest.(check bool) "samples taken" true (coll.A.samples_taken > 50);
  Alcotest.(check bool) "most samples mapped" true
    (coll.A.samples_lost * 2 < coll.A.samples_taken);
  Alcotest.(check bool) "profile has hot lines" true
    (Hashtbl.length coll.A.profile.T.line_counts > 3)

let test_hot_loop_is_hottest () =
  (* mcf's relax_all arc loop is its hottest code: the top line count
     must belong to it (lines 30-45 of the source hold the loop). *)
  let p = Lazy.force bench in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Gcc C.O0) ~roots:[ "main" ] in
  let coll = A.collect bin ~entry:"main" ~workloads:[ [] ] ~period:101 ~seed:2 in
  let hottest =
    Hashtbl.fold
      (fun line count (bl, bc) -> if count > bc then (line, count) else (bl, bc))
      coll.A.profile.T.line_counts (0, 0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hottest line %d inside relax_all" (fst hottest))
    true
    (fst hottest >= 28 && fst hottest <= 50)

let test_profile_guided_build_valid () =
  let p = Lazy.force bench in
  let ast = Suite_types.ast p in
  let cfg = C.make C.Clang C.O2 in
  let o =
    A.run_autofdo ast ~roots:[ "main" ] ~entry:"main" ~workloads:[ [] ]
      ~profiling_config:cfg ~final_config:cfg ()
  in
  Alcotest.(check bool) "final cost positive" true (o.A.final_cost > 0);
  (* The profile-guided binary still computes the same result. *)
  let plain = T.compile ast ~config:cfg ~roots:[ "main" ] in
  let r_plain = Vm.run plain ~entry:"main" ~input:[] Vm.default_opts in
  let bin2 = T.compile ast ~config:cfg ~roots:[ "main" ] in
  ignore bin2;
  let coll = A.collect plain ~entry:"main" ~workloads:[ [] ] ~period:211 ~seed:7 in
  let fdo =
    T.compile
      ~options:(T.Options.make ~profile:coll.A.profile ())
      ast ~config:cfg ~roots:[ "main" ]
  in
  let r_fdo = Vm.run fdo ~entry:"main" ~input:[] Vm.default_opts in
  Alcotest.(check (list int)) "semantics preserved under profile" r_plain.Vm.output
    r_fdo.Vm.output

let test_debug_friendlier_profile_binary_keeps_more_lines () =
  (* The RQ3 premise: O2-dy profiling binaries expose more steppable
     lines than plain O2. *)
  let p = Lazy.force bench in
  let ast = Suite_types.ast p in
  let base = T.compile ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ] in
  let dy =
    T.compile ast
      ~config:
        (C.make
           ~disabled:[ "SimplifyCFG"; "Machine code sinking"; "JumpThreading" ]
           C.Clang C.O2)
      ~roots:[ "main" ]
  in
  let lines (b : Emit.binary) =
    List.length (Dwarfish.steppable_lines b.Emit.debug)
  in
  Alcotest.(check bool) "dy keeps at least as many lines" true
    (lines dy >= lines base)

let test_profile_text_roundtrip () =
  let p = Lazy.force bench in
  let ast = Suite_types.ast p in
  let bin = T.compile ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ] in
  let coll = A.collect bin ~entry:"main" ~workloads:[ [] ] ~period:211 ~seed:1 in
  let prof = coll.A.profile in
  let text = A.profile_to_string prof in
  let prof' = A.profile_of_string text in
  Alcotest.(check int) "total preserved" prof.T.total_samples
    prof'.T.total_samples;
  Alcotest.(check string) "canonical text" text (A.profile_to_string prof');
  (* The parsed profile must drive compilation identically. *)
  let dig profile =
    (T.compile
       ~options:(T.Options.make ~profile ())
       ast ~config:(C.make C.Clang C.O2) ~roots:[ "main" ])
      .Emit.text_digest
  in
  Alcotest.(check string) "same optimized binary" (dig prof) (dig prof')

let test_profile_text_rejects () =
  List.iter
    (fun text ->
      match A.profile_of_string text with
      | exception A.Profile_error _ -> ()
      | _ -> Alcotest.fail ("should reject: " ^ String.escaped text))
    [
      "";
      "wrong header\ntotal: 0\n";
      "autofdo-profile v1\n" (* missing total *);
      "autofdo-profile v1\ntotal: 5\n3: 4\n" (* sum mismatch *);
      "autofdo-profile v1\ntotal: 4\n3: 2\n3: 2\n" (* duplicate line *);
      "autofdo-profile v1\ntotal: 2\nx: 2\n" (* bad line number *);
      "autofdo-profile v1\ntotal: 2\n-3: 2\n" (* negative line *);
    ]

let tests =
  [
    Alcotest.test_case "collect maps samples" `Quick test_collect_maps_samples;
    Alcotest.test_case "hot loop is hottest" `Quick test_hot_loop_is_hottest;
    Alcotest.test_case "profile-guided build valid" `Quick
      test_profile_guided_build_valid;
    Alcotest.test_case "dy profiling binary keeps lines" `Quick
      test_debug_friendlier_profile_binary_keeps_more_lines;
    Alcotest.test_case "profile text roundtrip" `Quick
      test_profile_text_roundtrip;
    Alcotest.test_case "profile text rejects malformed" `Quick
      test_profile_text_rejects;
  ]
