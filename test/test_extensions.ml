(** Tests for the extensions (clang-Og prototype, pairwise interactions,
    iterative AutoFDO) and the ablation hooks. *)

module C = Debugtuner.Config
module E = Debugtuner.Evaluation
module X = Debugtuner.Extensions

let prepared = lazy (List.map E.prepare [ Programs.find "zlib"; Programs.find "libexif" ])

let test_clang_og_trade () =
  (* The prototype Og must be more debuggable than O1 and slower than
     it, but much faster than O0. *)
  let pts = Lazy.force prepared in
  let product cfg = Util.Stats.mean (List.map (fun p -> E.product p cfg) pts) in
  let o1 = C.make C.Clang C.O1 in
  Alcotest.(check bool) "more debuggable than O1" true
    (product X.clang_og > product o1);
  let cost cfg =
    Debugtuner.Tuning.bench_cost (Spec.find "505.mcf") cfg
  in
  Alcotest.(check bool) "faster than O0" true
    (cost X.clang_og < cost (C.make C.Clang C.O0))

let test_clang_og_disables_the_five () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (p ^ " disabled") true
        (List.mem p X.clang_og.C.disabled))
    [ "SimplifyCFG"; "InstCombine"; "EarlyCSE" ];
  Alcotest.(check bool) "based on O1" true (X.clang_og.C.level = C.O1)

let test_pairwise_interactions () =
  let pts = Lazy.force prepared in
  let config = C.make C.Gcc C.O2 in
  let inter =
    X.pairwise pts config ~passes:[ "schedule-insns2"; "if-conversion"; "tree-ter" ]
  in
  Alcotest.(check int) "3 choose 2 pairs" 3 (List.length inter);
  List.iter
    (fun (i : X.interaction) ->
      (* The pair effect relates sensibly to the solo effects. *)
      Alcotest.(check bool) "pair >= min(solo)-slack" true
        (i.X.in_pair >= Float.min i.X.in_solo_a i.X.in_solo_b -. 0.2);
      Alcotest.(check bool) "distinct passes" true (i.X.in_pass_a <> i.X.in_pass_b))
    inter

let test_iterative_autofdo_rounds () =
  let bench = Spec.find "557.xz" in
  let ast = Suite_types.ast bench in
  let rounds =
    X.iterative_autofdo ast ~roots:(Suite_types.roots bench) ~entry:"main"
      ~workloads:[ [] ]
      ~config:(C.make C.Clang C.O2)
      ~rounds:2 ()
  in
  Alcotest.(check int) "two rounds" 2 (List.length rounds);
  List.iter
    (fun (r : X.round) ->
      Alcotest.(check bool) "cost positive" true (r.X.rd_cost > 0);
      Alcotest.(check bool) "lost fraction bounded" true
        (r.X.rd_lost_fraction >= 0.0 && r.X.rd_lost_fraction <= 1.0))
    rounds

let test_breakpoint_policy_ablation () =
  (* The all-locations policy can only step at least as many lines. *)
  let p = List.hd (Lazy.force prepared) in
  let bin = E.compile p (C.make C.Gcc C.O2) in
  let hc = List.hd p.E.corpora in
  let entry = hc.E.hc_harness.Suite_types.h_entry in
  let inputs = hc.E.hc_inputs in
  let all = Debugger.trace ~all_locations:true bin ~entry ~inputs in
  let lowest = Debugger.trace ~all_locations:false bin ~entry ~inputs in
  Alcotest.(check bool) "all >= lowest" true
    (List.length (Debugger.stepped_lines all)
    >= List.length (Debugger.stepped_lines lowest))

let test_entry_values_ablation () =
  (* Disabling entry-value emission can only reduce static coverage. *)
  let p = List.hd (Lazy.force prepared) in
  let cfg = C.make C.Gcc C.O2 in
  let avail entry_values =
    let bin =
      Debugtuner.Toolchain.compile
        ~options:(Debugtuner.Toolchain.Options.make ~entry_values ())
        p.E.ast ~config:cfg ~roots:p.E.roots
    in
    let opt_trace = E.trace_config_bin p bin in
    (Metrics.static_dbg
       {
         Metrics.defranges = p.E.defranges;
         unopt_trace = p.E.o0_trace;
         opt_trace;
         unopt_bin = p.E.o0_bin;
         opt_bin = bin;
       })
      .Metrics.availability
  in
  Alcotest.(check bool) "entry-values only add coverage" true
    (avail true >= avail false -. 1e-9)

let test_ranking_metric_choice () =
  let pts = Lazy.force prepared in
  let cfg = C.make C.Gcc C.O1 in
  let h = Debugtuner.Ranking.rank pts cfg in
  let d = Debugtuner.Ranking.rank ~metric:Debugtuner.Ranking.dynamic_product pts cfg in
  Alcotest.(check int) "same pass universe"
    (List.length h.Debugtuner.Ranking.lr_effects)
    (List.length d.Debugtuner.Ranking.lr_effects)

let test_scheduler_lines_ablation () =
  (* Forcing clang-style line retention on the gcc scheduler can only
     keep more lines than stripping them. *)
  let p = List.hd (Lazy.force prepared) in
  let cfg = C.make C.Gcc C.O2 in
  let coverage keep =
    let bin =
      Debugtuner.Toolchain.compile
        ~options:(Debugtuner.Toolchain.Options.make ~sched_keep_lines:keep ())
        p.E.ast ~config:cfg ~roots:p.E.roots
    in
    Metrics.line_coverage_of_traces p.E.o0_trace (E.trace_config_bin p bin)
  in
  let strip = coverage false and keep = coverage true in
  Alcotest.(check bool)
    (Printf.sprintf "keep (%.4f) >= strip (%.4f)" keep strip)
    true (keep >= strip);
  (* And the hook is a no-op for a family whose default already keeps. *)
  let clang = C.make C.Clang C.O2 in
  let bin_def =
    Debugtuner.Toolchain.compile p.E.ast ~config:clang ~roots:p.E.roots
  in
  let bin_keep =
    Debugtuner.Toolchain.compile
      ~options:(Debugtuner.Toolchain.Options.make ~sched_keep_lines:true ())
      p.E.ast ~config:clang ~roots:p.E.roots
  in
  Alcotest.(check string) "clang default already keeps lines"
    bin_def.Emit.text_digest bin_keep.Emit.text_digest

let test_per_program () =
  let pts = Lazy.force prepared in
  let cfg = C.make C.Gcc C.O1 in
  let rows = X.per_program pts cfg ~y:3 in
  Alcotest.(check int) "one row per program" (List.length pts)
    (List.length rows);
  List.iter
    (fun (r : X.per_program_row) ->
      Alcotest.(check bool) (r.X.pp_program ^ " products in range") true
        (r.X.pp_global >= 0.0 && r.X.pp_global <= 1.0 && r.X.pp_local >= 0.0
        && r.X.pp_local <= 1.0);
      Alcotest.(check bool) "at most y passes disabled" true
        (List.length r.X.pp_disabled <= 3);
      (* The paper never disables inlining in Ox-dy configurations. *)
      Alcotest.(check bool) "inliners never disabled" false
        (List.exists
           (fun p -> p = "inline" || p = "Inliner")
           r.X.pp_disabled);
      Alcotest.(check bool) "gain consistent with products" true
        (if r.X.pp_global > 0.0 then
           abs_float
             (r.X.pp_gain_pct
             -. (100.0 *. (r.X.pp_local -. r.X.pp_global) /. r.X.pp_global))
           < 1e-6
         else true))
    rows;
  (* Own-program tuning should not lose on average across the subset. *)
  Alcotest.(check bool) "mean gain not strongly negative" true
    (X.per_program_mean_gain rows > -5.0)

let tests =
  [
    Alcotest.test_case "per-program tuning" `Quick test_per_program;
    Alcotest.test_case "scheduler-lines ablation" `Quick
      test_scheduler_lines_ablation;
    Alcotest.test_case "clang-Og trade-off" `Quick test_clang_og_trade;
    Alcotest.test_case "clang-Og composition" `Quick test_clang_og_disables_the_five;
    Alcotest.test_case "pairwise interactions" `Quick test_pairwise_interactions;
    Alcotest.test_case "iterative autofdo" `Quick test_iterative_autofdo_rounds;
    Alcotest.test_case "breakpoint policy ablation" `Quick
      test_breakpoint_policy_ablation;
    Alcotest.test_case "entry-values ablation" `Quick test_entry_values_ablation;
    Alcotest.test_case "ranking metric choice" `Quick test_ranking_metric_choice;
  ]
