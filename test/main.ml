(* Aggregated alcotest runner for the whole repository. *)
let () =
  Alcotest.run "debugtuner"
    [
      ("util", Test_util.tests);
      ("minic", Test_minic.tests);
      ("ir", Test_ir.tests);
      ("passes", Test_passes.tests);
      ("passes-edge", Test_passes_edge.tests);
      ("backend", Test_backend.tests);
      ("vm", Test_vm.tests);
      ("debugger+metrics", Test_debugger.tests);
      ("fuzz", Test_fuzz.tests);
      ("suite", Test_suite_programs.tests);
      ("toolchain", Test_toolchain.tests);
      ("snapshot", Test_snapshot.tests);
      ("prefix", Test_prefix.tests);
      ("engine", Test_engine.tests);
      ("disk-store", Test_disk_store.tests);
      ("autofdo", Test_autofdo.tests);
      ("extensions", Test_extensions.tests);
      ("sweep", Test_disabled_configs.tests);
      ("debuginfo", Test_debuginfo.tests);
      ("cost-model", Test_cost_model.tests);
      ("interp", Test_interp.tests);
      ("trace-json", Test_trace_json.tests);
      ("debug-verify", Test_debug_verify.tests);
      ("session", Test_session.tests);
      ("properties", Test_properties.tests);
      ("dwarf-encode", Test_dwarf_encode.tests);
      ("value-oracle", Test_value_oracle.tests);
      ("sanitizer", Test_check.tests);
      ("obs", Test_obs.tests);
      ("differential", Test_differential.tests);
      ("vm-conformance", Test_vm_conformance.tests);
      ("api", Test_api.tests);
      ("shard", Test_shard.tests);
      ("search", Test_search.tests);
    ]
