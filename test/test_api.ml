(* The typed service API: codec round-trips (QCheck), version-stamp and
   unknown-field behaviour, wire-framing torture (partial reads,
   oversized prefixes, mid-message disconnects), and an N-client x
   M-request daemon session asserting responses byte-identical to the
   same requests executed through the in-process (CLI) path. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)

module Config = Debugtuner.Config
module R = Api.Request
module Resp = Api.Response

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)

let gen_byte_string =
  QCheck.Gen.(string_size (int_bound 12) ~gen:(map Char.chr (int_bound 255)))

let gen_config =
  QCheck.Gen.(
    map3
      (fun comp lvl dis -> Config.make ~disabled:dis comp lvl)
      (oneofl [ Config.Gcc; Config.Clang ])
      (oneofl [ Config.O0; Config.Og; Config.O1; Config.O2; Config.O3 ])
      (list_size (int_bound 3)
         (oneofl [ "mem2reg"; "dce"; "sra"; "inline"; "GVN" ])))

let gen_subject =
  QCheck.Gen.(
    oneof
      [
        map (fun n -> R.Named ("prog-" ^ n)) (string_size (int_bound 6));
        map2
          (fun n src -> R.Inline { in_name = "f-" ^ n; in_source = src })
          (string_size (int_bound 6))
          gen_byte_string;
      ])

let gen_ints = QCheck.Gen.(list_size (int_bound 4) (int_range (-1000) 1000))

let gen_opt_str =
  QCheck.Gen.(opt (map (fun s -> "e" ^ s) (string_size (int_bound 5))))

let gen_view =
  QCheck.Gen.(
    oneof
      [
        return R.Summary;
        return R.Measure;
        map (fun s -> R.Dump s) (list_size (int_bound 3) (oneofl [ "functions"; "lines"; "locs" ]));
        return R.Verify;
        map (fun f -> R.Disasm f) gen_opt_str;
        return R.Dwarf_size;
        return R.Passes;
        return R.Pass_trace;
        map2 (fun e i -> R.Trace { t_entry = e; t_input = i }) gen_opt_str gen_ints;
        map2
          (fun e c -> R.Debug { d_entry = e; d_commands = c })
          gen_opt_str
          (list_size (int_bound 3) gen_byte_string);
        map2
          (fun e p -> R.Sample { s_entry = e; s_period = p })
          gen_opt_str (int_range 1 1000);
        map2
          (fun e i -> R.Value_check { v_entry = e; v_input = i })
          gen_opt_str gen_ints;
      ])

let gen_metric = QCheck.Gen.(map (fun f -> f /. 7.0) (float_bound_inclusive 7.0))

let gen_corpus_row =
  QCheck.Gen.(
    let* idx = int_range 0 9_999 in
    let* fam = oneofl [ "synth"; "fuzz"; "selfcomp" ] in
    let* cfg = oneofl [ "gcc-O2"; "clang-O1"; "gcc-Og"; "clang-O3" ] in
    let* avail = gen_metric in
    let* cov = gen_metric in
    let* product = gen_metric in
    return
      {
        Debugtuner.Experiments.cr_index = idx;
        cr_program = Printf.sprintf "%s-%04d" fam idx;
        cr_family = fam;
        cr_config = cfg;
        cr_avail = avail;
        cr_cov = cov;
        cr_product = product;
      })

let gen_shard =
  QCheck.Gen.(
    let* n = int_range 1 8 in
    let* i = int_range 1 n in
    return (i, n))

let gen_job =
  QCheck.Gen.(
    let* tables =
      list_size (int_bound 2) (oneofl Api.Job.table_names)
    in
    let* seed = int_range 0 9_999 in
    let* corpus = int_range 1 10_000 in
    let* configs = list_size (int_bound 3) gen_config in
    let* shard = opt gen_shard in
    return
      {
        Api.Job.j_tables = tables;
        j_seed = seed;
        j_corpus = corpus;
        j_configs = configs;
        j_shard = shard;
      })

let gen_partial =
  QCheck.Gen.(
    let* i, n = gen_shard in
    let* seed = int_range 0 9_999 in
    let* corpus = int_range 1 10_000 in
    let* digest = string_size (int_bound 16) in
    let* configs = list_size (int_bound 3) (oneofl [ "gcc-O2"; "clang-O1" ]) in
    let* programs = int_range 0 2_500 in
    let* rows = list_size (int_bound 6) gen_corpus_row in
    return
      {
        Api.Partial.pt_shard = i;
        pt_shards = n;
        pt_seed = seed;
        pt_corpus = corpus;
        pt_digest = digest;
        pt_configs = configs;
        pt_programs = programs;
        pt_rows = rows;
      })

let gen_request =
  QCheck.Gen.(
    oneof
      [
        (let* s = gen_subject in
         let* c = gen_config in
         let* p = opt gen_byte_string in
         let* sz = bool in
         let* v = gen_view in
         return
           (R.Compile
              {
                c_subject = s;
                c_config = c;
                c_profile = p;
                c_sanitize = sz;
                c_view = v;
              }));
        (let* c = gen_config in
         let* k = int_range 0 40 in
         return (R.Rank { r_config = c; r_k = k }));
        (let* c = gen_config in
         let* y = int_range 0 20 in
         return (R.Tune { t_config = c; t_y = y }));
        (let* s = opt gen_subject in
         let* f = int_range 0 100 in
         let* sd = int_range 0 10_000 in
         let* su = bool in
         return (R.Check { k_subject = s; k_fuzz = f; k_seed = sd; k_suite = su }));
        (let* s = gen_subject in
         let* c = gen_config in
         let* sz = bool in
         let* st = bool in
         let* tc = bool in
         return
           (R.Profile
              {
                p_subject = s;
                p_config = c;
                p_sanitize = sz;
                p_stats = st;
                p_trace = tc;
              }));
        (let* s = gen_subject in
         let* c = gen_config in
         let* a =
           oneof
             [
               return R.Cost;
               map2
                 (fun e i -> R.Exec { x_entry = "e" ^ e; x_input = i })
                 (string_size (int_bound 5))
                 gen_ints;
             ]
         in
         return (R.Bench { b_subject = s; b_config = c; b_action = a }));
        (let* a = oneofl [ R.Op_stats; R.Op_clear; R.Op_gc ] in
         let* d = opt gen_byte_string in
         return (R.Cache_op { o_action = a; o_dir = d }));
        (let* w = oneofl [ R.Counters; R.Suite; R.Server ] in
         return (R.Stats { s_what = w }));
        (let* j = gen_job in
         return (R.Experiments { e_job = j }));
        (let* ps = list_size (int_range 1 4) gen_partial in
         return (R.Merge { m_partials = ps }));
      ])

let gen_stats =
  QCheck.Gen.(
    list_size (int_bound 5)
      (map2 (fun n v -> ("c/" ^ n, v)) (string_size (int_bound 6))
         (int_range (-1000) 1_000_000)))

let gen_float = QCheck.Gen.(map (fun f -> f /. 3.0) (float_range (-1e9) 1e9))

let gen_data =
  QCheck.Gen.(
    oneof
      [
        return Resp.D_none;
        (let* i = int_range 0 10_000 in
         let* f = int_range 0 100 in
         let* d = gen_byte_string in
         return
           (Resp.D_compiled
              {
                dc_program = "p";
                dc_config = "gcc-O2";
                dc_instrs = i;
                dc_funcs = f;
                dc_text_digest = d;
              }));
        (let* top =
           list_size (int_bound 4)
             (let* p = string_size (int_bound 8) in
              let* a = gen_float in
              let* b = gen_float in
              return (p, a, b))
         in
         return (Resp.D_ranked { dr_config = "clang-O1"; dr_top = top }));
        (let* d = gen_float in
         let* s = gen_float in
         return
           (Resp.D_tuned
              {
                dt_config = "gcc-O2-d3";
                dt_disabled = [ "dce"; "sra" ];
                dt_debug = d;
                dt_speedup = s;
              }));
        (let* r = int_range 0 500 in
         return
           (Resp.D_checked
              {
                dk_programs = 13;
                dk_configs = 8;
                dk_runs = r;
                dk_skipped = 0;
                dk_failures = r mod 3;
              }));
        map (fun c -> Resp.D_cost c) (int_range 0 1_000_000);
        map (fun rows -> Resp.D_counters rows) gen_stats;
        map (fun p -> Resp.D_partial p) gen_partial;
      ])

let gen_response =
  QCheck.Gen.(
    let* status =
      oneof
        [
          return Resp.Ok;
          map (fun m -> Resp.Error m) gen_byte_string;
          return Resp.Overloaded;
        ]
    in
    let* text = gen_byte_string in
    let* artifact = opt gen_byte_string in
    let* data = gen_data in
    let* stats = gen_stats in
    let* exit_code = int_range 0 125 in
    return { Resp.status; text; artifact; data; stats; exit_code })

(* ------------------------------------------------------------------ *)
(* Codec round-trips                                                   *)

let req_arb = QCheck.make ~print:Api.request_to_json gen_request
let resp_arb = QCheck.make ~print:Api.response_to_json gen_response

let qcheck_request_roundtrip =
  QCheck.Test.make ~name:"request JSON codec round-trips" ~count:500 req_arb
    (fun r ->
      match Api.request_of_json (Api.request_to_json r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let qcheck_response_roundtrip =
  QCheck.Test.make ~name:"response JSON codec round-trips" ~count:500 resp_arb
    (fun r ->
      match Api.response_of_json (Api.response_to_json r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let qcheck_unknown_fields_tolerated =
  (* Splice an unrecognized field right after the canonical version
     stamp; decoding must ignore it and yield the same request. *)
  QCheck.Test.make ~name:"decoder tolerates unknown fields" ~count:200 req_arb
    (fun r ->
      let enc = Api.request_to_json r in
      let prefix = "{\"v\":1," in
      assert (String.length enc > String.length prefix);
      assert (String.sub enc 0 (String.length prefix) = prefix);
      let spliced =
        prefix
        ^ "\"x_future_extension\":{\"deep\":[1,2,{\"a\":null}]},"
        ^ String.sub enc (String.length prefix)
            (String.length enc - String.length prefix)
      in
      match Api.request_of_json spliced with
      | Ok r' -> r' = r
      | Error _ -> false)

let qcheck_version_rejected =
  QCheck.Test.make ~name:"decoder rejects foreign version stamps" ~count:100
    req_arb (fun r ->
      let enc = Api.request_to_json r in
      let skip = String.length "{\"v\":1," in
      let bumped =
        "{\"v\":99," ^ String.sub enc skip (String.length enc - skip)
      in
      match Api.request_of_json bumped with
      | Error msg ->
          (* the one-line error names the offending version *)
          let has_sub s sub =
            let n = String.length sub in
            let rec go i =
              i + n <= String.length s
              && (String.sub s i n = sub || go (i + 1))
            in
            go 0
          in
          has_sub msg "version"
      | Ok _ -> false)

let test_version_missing () =
  (match Api.request_of_json "{\"kind\":\"stats\",\"what\":\"suite\"}" with
  | Error msg ->
      checkb "mentions stamp" true
        (String.length msg > 0)
  | Ok _ -> Alcotest.fail "missing version stamp accepted");
  match Api.response_of_json "{\"status\":\"ok\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing version stamp accepted (response)"

let test_malformed_json () =
  List.iter
    (fun text ->
      match Api.request_of_json text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("accepted malformed input: " ^ text))
    [
      ""; "{"; "nope"; "{\"v\":1}"; "{\"v\":1,\"kind\":\"wat\"}";
      "{\"v\":1,\"kind\":\"rank\"}"; "[1,2,3]"; "{\"v\":1} trailing";
    ]

let qcheck_json_string_roundtrip =
  QCheck.Test.make ~name:"Api_json strings round-trip all byte values"
    ~count:500
    (QCheck.make ~print:String.escaped
       QCheck.Gen.(string_size (int_bound 40) ~gen:(map Char.chr (int_bound 255))))
    (fun s ->
      match Api_json.parse (Api_json.to_string (Api_json.Str s)) with
      | Api_json.Str s' -> s' = s
      | _ -> false)

(* The shard-partial document doubles as a standalone file format
   (--partial-dir), so it gets the same treatment as requests: exact
   round-trips (including the float metrics — the %.17g writer), unknown
   fields tolerated, foreign versions refused. *)
let partial_arb = QCheck.make ~print:Api.partial_to_json gen_partial

let qcheck_partial_roundtrip =
  QCheck.Test.make ~name:"shard partial codec round-trips" ~count:500
    partial_arb (fun p ->
      match Api.partial_of_json (Api.partial_to_json p) with
      | Ok p' -> p' = p
      | Error _ -> false)

let qcheck_partial_unknown_fields =
  QCheck.Test.make ~name:"partial decoder tolerates unknown fields" ~count:200
    partial_arb (fun p ->
      let enc = Api.partial_to_json p in
      let prefix = "{\"v\":1," in
      assert (String.sub enc 0 (String.length prefix) = prefix);
      let spliced =
        prefix
        ^ "\"x_extra\":[{\"nested\":true}],"
        ^ String.sub enc (String.length prefix)
            (String.length enc - String.length prefix)
      in
      match Api.partial_of_json spliced with
      | Ok p' -> p' = p
      | Error _ -> false)

let qcheck_partial_version_rejected =
  QCheck.Test.make ~name:"partial decoder rejects foreign versions" ~count:100
    partial_arb (fun p ->
      let enc = Api.partial_to_json p in
      let skip = String.length "{\"v\":1," in
      let bumped =
        "{\"v\":42," ^ String.sub enc skip (String.length enc - skip)
      in
      match Api.partial_of_json bumped with
      | Error _ -> true
      | Ok _ -> false)

let test_partial_invalid_shard () =
  (* a shard index beyond the count must be refused at decode time *)
  let bad =
    "{\"v\":1,\"shard\":3,\"shards\":2,\"seed\":1,\"corpus\":4,\"digest\":\"d\",\
     \"configs\":[\"gcc-O2\"],\"programs\":0,\"rows\":[]}"
  in
  match Api.partial_of_json bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range shard index accepted"

(* ------------------------------------------------------------------ *)
(* Framing torture                                                     *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_framing_roundtrip () =
  with_socketpair (fun a b ->
      List.iter
        (fun payload ->
          Framing.write_frame a payload;
          check Alcotest.string "frame round-trips" payload (Framing.read_frame b))
        [ ""; "x"; String.make 70_000 '\xAB'; "{\"v\":1}"; String.init 256 Char.chr ])

let test_framing_partial_reads () =
  (* Feed a frame one byte at a time from a writer thread: the reader
     must reassemble it regardless of how the bytes trickle in. *)
  with_socketpair (fun a b ->
      let payload = String.init 1500 (fun i -> Char.chr (i mod 256)) in
      let n = String.length payload in
      let wire =
        Bytes.cat (Framing.encode_length n) (Bytes.of_string payload)
      in
      let writer =
        Thread.create
          (fun () ->
            Bytes.iter
              (fun c ->
                ignore (Unix.write a (Bytes.make 1 c) 0 1);
                if Char.code c mod 100 = 0 then Thread.yield ())
              wire)
          ()
      in
      let got = Framing.read_frame b in
      Thread.join writer;
      check Alcotest.string "reassembled" payload got)

let test_framing_oversized_prefix () =
  with_socketpair (fun a b ->
      let huge = Framing.encode_length (Framing.max_frame + 1) in
      ignore (Unix.write a huge 0 4);
      match Framing.read_frame b with
      | _ -> Alcotest.fail "oversized prefix accepted"
      | exception Framing.Oversized n ->
          check Alcotest.int "reported size" (Framing.max_frame + 1) n);
  (* and writing one is refused outright *)
  with_socketpair (fun a _ ->
      match Framing.write_frame a (String.make (Framing.max_frame + 1) ' ') with
      | _ -> Alcotest.fail "oversized write accepted"
      | exception Framing.Oversized _ -> ())

let test_framing_mid_message_disconnect () =
  with_socketpair (fun a b ->
      ignore (Unix.write a (Framing.encode_length 100) 0 4);
      ignore (Unix.write a (Bytes.make 10 'x') 0 10);
      Unix.close a;
      match Framing.read_frame b with
      | _ -> Alcotest.fail "truncated frame accepted"
      | exception Framing.Closed -> ());
  (* header itself truncated *)
  with_socketpair (fun a b ->
      ignore (Unix.write a (Bytes.make 2 '\000') 0 2);
      Unix.close a;
      match Framing.read_frame b with
      | _ -> Alcotest.fail "truncated header accepted"
      | exception Framing.Closed -> ())

let test_framing_clean_eof () =
  with_socketpair (fun a b ->
      Framing.write_frame a "last";
      Unix.close a;
      checkb "first frame" true (Framing.read_frame_opt b = Some "last");
      checkb "then clean EOF" true (Framing.read_frame_opt b = None))

(* ------------------------------------------------------------------ *)
(* Execute semantics                                                   *)

let test_execute_error_response () =
  let ctx = Api.create_ctx () in
  let resp =
    Api.execute ctx
      (R.Compile
         {
           c_subject = R.Named "no-such-program";
           c_config = Config.make Config.Gcc Config.O1;
           c_profile = None;
           c_sanitize = false;
           c_view = R.Summary;
         })
  in
  (match resp.Resp.status with
  | Resp.Error msg ->
      check Alcotest.string "one-line message" "unknown program no-such-program"
        msg
  | _ -> Alcotest.fail "expected an error response");
  check Alcotest.int "exit code" 2 resp.Resp.exit_code;
  (* the context stays usable after a failed request *)
  let ok = Api.execute ctx (R.Stats { s_what = R.Suite }) in
  checkb "recovers" true (ok.Resp.status = Resp.Ok)

let test_execute_stats_delta () =
  (* Two identical compile requests on one context: the first pays the
     misses, the second's delta must report hits, not re-count the
     first request's work. *)
  let ctx = Api.create_ctx () in
  let req =
    R.Bench
      {
        b_subject = R.Named "zlib";
        b_config = Config.make Config.Gcc Config.O1;
        b_action = R.Cost;
      }
  in
  let r1 = Api.execute ctx req in
  let r2 = Api.execute ctx req in
  checkb "first ok" true (r1.Resp.status = Resp.Ok);
  check Alcotest.string "same text" r1.Resp.text r2.Resp.text;
  let v name rows = Option.value ~default:0 (List.assoc_opt name rows) in
  checkb "first request misses" true
    (v "engine/bench-cost/misses" r1.Resp.stats >= 1);
  check Alcotest.int "second request pays no miss" 0
    (v "engine/bench-cost/misses" r2.Resp.stats);
  checkb "second request hits" true
    (v "engine/bench-cost/hits" r2.Resp.stats >= 1)

(* ------------------------------------------------------------------ *)
(* Daemon: N clients x M requests, byte-identical to the CLI path      *)

let tmp_socket tag =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "dt-%s-%d.sock" tag (Unix.getpid ()))

let identity_requests =
  let cfg = Config.make Config.Gcc Config.Og in
  [
    R.Stats { s_what = R.Suite };
    R.Compile
      {
        c_subject = R.Named "zlib";
        c_config = cfg;
        c_profile = None;
        c_sanitize = false;
        c_view = R.Passes;
      };
    R.Compile
      {
        c_subject = R.Named "zlib";
        c_config = cfg;
        c_profile = None;
        c_sanitize = false;
        c_view = R.Summary;
      };
    R.Bench
      {
        b_subject = R.Named "zlib";
        b_config = cfg;
        b_action = R.Exec { x_entry = "fuzz_deflate"; x_input = [ 1; 2; 3 ] };
      };
    R.Compile
      {
        c_subject = R.Named "bzip2";
        c_config = cfg;
        c_profile = None;
        c_sanitize = false;
        c_view = R.Verify;
      };
  ]

let test_daemon_byte_identity () =
  (* Expected bytes: each request through a fresh in-process context —
     exactly what the CLI does without --connect. *)
  let expected =
    List.map
      (fun req ->
        let resp = Api.execute (Api.create_ctx ()) req in
        checkb "cli path ok" true (resp.Resp.status = Resp.Ok);
        resp.Resp.text)
      identity_requests
  in
  let socket = tmp_socket "ident" in
  let server = Api_server.create ~queue_limit:16 ~socket (Api.create_ctx ()) in
  let accept_thread = Api_server.start server in
  let n_clients = 4 in
  let rounds = 3 in
  let results =
    Array.init n_clients (fun _ ->
        Array.make (rounds * List.length identity_requests) "")
  in
  let client i () =
    let c = Api_client.connect ~timeout:60.0 socket in
    let slot = ref 0 in
    for _ = 1 to rounds do
      List.iter
        (fun req ->
          (match Api_client.rpc c req with
          | Ok resp ->
              checkb "daemon ok" true (resp.Resp.status = Resp.Ok);
              results.(i).(!slot) <- resp.Resp.text
          | Error msg -> Alcotest.fail ("rpc failed: " ^ msg));
          incr slot)
        identity_requests
    done;
    Api_client.close c
  in
  let threads =
    List.init n_clients (fun i -> Thread.create (client i) ())
  in
  List.iter Thread.join threads;
  Api_server.stop server;
  Thread.join accept_thread;
  let per_round = List.length identity_requests in
  Array.iteri
    (fun i per_client ->
      Array.iteri
        (fun slot got ->
          let want = List.nth expected (slot mod per_round) in
          check Alcotest.string
            (Printf.sprintf "client %d slot %d matches CLI path" i slot)
            want got)
        per_client)
    results

let test_execute_concurrent_counters () =
  (* Per-request attribution under real parallelism: N domains hammer
     one shared context with disjoint (program, config) pairs, and each
     response's counters (and text) must be byte-equal to the same
     request executed alone on a fresh context — no bleed from whatever
     ran alongside. Disjoint pairs are essential: concurrent duplicate
     keys legitimately flip miss/dedup/hit by arrival order. *)
  let reqs =
    List.map
      (fun (name, level) ->
        R.Compile
          {
            c_subject = R.Named name;
            c_config = Config.make Config.Gcc level;
            c_profile = None;
            c_sanitize = false;
            c_view = R.Summary;
          })
      [
        ("zlib", Config.O1);
        ("bzip2", Config.O2);
        ("libexif", Config.O1);
        ("liblouis", Config.O2);
      ]
  in
  let serialized =
    List.map
      (fun req ->
        let resp = Api.execute (Api.create_ctx ()) req in
        checkb "serialized ok" true (resp.Resp.status = Resp.Ok);
        resp)
      reqs
  in
  let ctx = Api.create_ctx () in
  let doms =
    List.map (fun req -> Domain.spawn (fun () -> Api.execute ctx req)) reqs
  in
  let concurrent = List.map Domain.join doms in
  List.iteri
    (fun i (want, got) ->
      checkb
        (Printf.sprintf "request %d concurrent ok" i)
        true
        (got.Resp.status = Resp.Ok);
      check Alcotest.string
        (Printf.sprintf "request %d text matches serialized run" i)
        want.Resp.text got.Resp.text;
      check
        Alcotest.(list (pair string int))
        (Printf.sprintf "request %d counters match serialized run" i)
        want.Resp.stats got.Resp.stats)
    (List.combine serialized concurrent)

let test_daemon_tcp_identity () =
  (* The TCP transport speaks the identical framing: responses over
     --listen/--connect HOST:PORT are byte-equal to the Unix-socket
     path against the same warm daemon. *)
  let socket = tmp_socket "tcp" in
  let server =
    Api_server.create ~listen:"localhost:0" ~socket (Api.create_ctx ())
  in
  let accept_thread = Api_server.start server in
  let host, port =
    match Api_server.listen_addr server with
    | Some hp -> hp
    | None -> Alcotest.fail "no TCP listener bound"
  in
  checkb "ephemeral port bound" true (port > 0);
  let endpoint = Printf.sprintf "%s:%d" host port in
  List.iter
    (fun req ->
      match
        ( Api_client.oneshot ~timeout:60.0 socket req,
          Api_client.oneshot ~timeout:60.0 endpoint req )
      with
      | Ok a, Ok b ->
          checkb "unix ok" true (a.Resp.status = Resp.Ok);
          checkb "tcp ok" true (b.Resp.status = Resp.Ok);
          check Alcotest.string "tcp text matches unix text" a.Resp.text
            b.Resp.text
      | Error msg, _ -> Alcotest.fail ("unix rpc failed: " ^ msg)
      | _, Error msg -> Alcotest.fail ("tcp rpc failed: " ^ msg))
    identity_requests;
  Api_server.stop server;
  Thread.join accept_thread

let test_daemon_overloaded () =
  (* Deterministic backpressure: park the execute gate so the first
     admitted request holds its slot inside execute, then a second
     concurrent request must be refused with Overloaded immediately —
     not queued, not hung. *)
  let ctx = Api.create_ctx () in
  let socket = tmp_socket "load" in
  let server = Api_server.create ~queue_limit:1 ~socket ctx in
  let accept_thread = Api_server.start server in
  let gate = Mutex.create () in
  Mutex.lock gate;
  Api.execute_gate :=
    (fun () ->
      Mutex.lock gate;
      Mutex.unlock gate);
  let slow_result = ref None in
  let slow =
    Thread.create
      (fun () ->
        slow_result := Some (Api_client.oneshot socket (R.Stats { s_what = R.Suite })))
      ()
  in
  (* wait until the slow request is admitted (in_flight = 1) *)
  let rec wait_admitted n =
    let in_flight =
      Option.value ~default:0
        (List.assoc_opt "serve/in_flight" (Api_server.counters server))
    in
    if in_flight < 1 then begin
      if n > 2000 then Alcotest.fail "request never admitted";
      Thread.yield ();
      Unix.sleepf 0.005;
      wait_admitted (n + 1)
    end
  in
  wait_admitted 0;
  (match Api_client.oneshot ~timeout:30.0 socket (R.Stats { s_what = R.Suite }) with
  | Ok resp ->
      checkb "refused with overloaded" true (resp.Resp.status = Resp.Overloaded);
      checkb "non-zero exit" true (resp.Resp.exit_code <> 0)
  | Error msg -> Alcotest.fail ("overload probe failed: " ^ msg));
  Mutex.unlock gate;
  Thread.join slow;
  Api.execute_gate := (fun () -> ());
  (match !slow_result with
  | Some (Ok resp) -> checkb "parked request completes" true (resp.Resp.status = Resp.Ok)
  | _ -> Alcotest.fail "parked request lost");
  Api_server.stop server;
  Thread.join accept_thread

let test_daemon_protocol_error () =
  (* A frame that is not a valid request must produce an error
     response, and the session must survive for the next frame. *)
  let socket = tmp_socket "proto" in
  let server = Api_server.create ~socket (Api.create_ctx ()) in
  let accept_thread = Api_server.start server in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  Framing.write_frame fd "this is not json";
  (match Api.response_of_json (Framing.read_frame fd) with
  | Ok resp -> checkb "error status" true
      (match resp.Resp.status with Resp.Error _ -> true | _ -> false)
  | Error msg -> Alcotest.fail ("bad error response: " ^ msg));
  Framing.write_frame fd
    (Api.request_to_json (R.Stats { s_what = R.Suite }));
  (match Api.response_of_json (Framing.read_frame fd) with
  | Ok resp -> checkb "session survives" true (resp.Resp.status = Resp.Ok)
  | Error msg -> Alcotest.fail ("bad follow-up response: " ^ msg));
  Unix.close fd;
  Api_server.stop server;
  Thread.join accept_thread

let tests =
  [
    Alcotest.test_case "version stamp required" `Quick test_version_missing;
    Alcotest.test_case "malformed JSON rejected" `Quick test_malformed_json;
    QCheck_alcotest.to_alcotest qcheck_request_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_response_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_unknown_fields_tolerated;
    QCheck_alcotest.to_alcotest qcheck_version_rejected;
    QCheck_alcotest.to_alcotest qcheck_json_string_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_partial_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_partial_unknown_fields;
    QCheck_alcotest.to_alcotest qcheck_partial_version_rejected;
    Alcotest.test_case "partial decoder rejects bad shard arithmetic" `Quick
      test_partial_invalid_shard;
    Alcotest.test_case "framing round-trip" `Quick test_framing_roundtrip;
    Alcotest.test_case "framing partial reads" `Quick test_framing_partial_reads;
    Alcotest.test_case "framing oversized prefix" `Quick
      test_framing_oversized_prefix;
    Alcotest.test_case "framing mid-message disconnect" `Quick
      test_framing_mid_message_disconnect;
    Alcotest.test_case "framing clean EOF" `Quick test_framing_clean_eof;
    Alcotest.test_case "execute turns failures into error responses" `Quick
      test_execute_error_response;
    Alcotest.test_case "per-request counter deltas" `Quick
      test_execute_stats_delta;
    Alcotest.test_case "concurrent executes keep per-request counters" `Quick
      test_execute_concurrent_counters;
    Alcotest.test_case "daemon byte-identical to CLI path (4x3x5)" `Quick
      test_daemon_byte_identity;
    Alcotest.test_case "daemon TCP transport byte-identical to unix" `Quick
      test_daemon_tcp_identity;
    Alcotest.test_case "daemon backpressure: overloaded, not hung" `Quick
      test_daemon_overloaded;
    Alcotest.test_case "daemon survives protocol garbage" `Quick
      test_daemon_protocol_error;
  ]
