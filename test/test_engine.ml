(** The measurement engine (lib/engine + Measure_engine): caching must
    never change a result, canonical fingerprints must collapse
    equivalent configurations, content dedup must share the baseline
    metrics object, and the worker pool must be output-invariant. *)

module C = Debugtuner.Config
module ME = Debugtuner.Measure_engine
module Ev = Debugtuner.Evaluation
module R = Debugtuner.Ranking

let libpng = lazy (Ev.prepare (Programs.find "libpng"))
let bzip2 = lazy (Ev.prepare (Programs.find "bzip2"))
let all_levels = [ C.O0; C.Og; C.O1; C.O2; C.O3 ]

(* Cached and uncached measurement agree at every standard level, and a
   repeated engine lookup serves the physically-same record. *)
let test_cached_matches_uncached () =
  let p = Lazy.force libpng in
  let eng = ME.create () in
  List.iter
    (fun level ->
      let cfg = C.make C.Gcc level in
      let m_raw, bin_raw = Ev.measure p cfg in
      let m_eng, bin_eng = ME.measure eng p cfg in
      Alcotest.(check string)
        (C.name cfg ^ ": same binary")
        bin_raw.Emit.full_digest bin_eng.Emit.full_digest;
      Alcotest.(check bool)
        (C.name cfg ^ ": identical metrics")
        true (m_raw = m_eng);
      let m_again, _ = ME.measure eng p cfg in
      Alcotest.(check bool)
        (C.name cfg ^ ": cache hit is physically shared")
        true (m_eng == m_again))
    all_levels

(* Canonical fingerprints: the disabled-pass list is a set, so neither
   order nor duplicates may yield a distinct cache key or name. *)
let test_fingerprint_canonical () =
  let a = C.make ~disabled:[ "inline"; "dce" ] C.Gcc C.O2 in
  let b = C.make ~disabled:[ "dce"; "inline"; "dce" ] C.Gcc C.O2 in
  Alcotest.(check string) "same fingerprint" (C.fingerprint a) (C.fingerprint b);
  Alcotest.(check string) "same name" (C.name a) (C.name b);
  Alcotest.(check bool) "equal" true (C.equal a b);
  Alcotest.(check int) "compare = 0" 0 (C.compare a b);
  Alcotest.(check int) "same hash" (C.hash a) (C.hash b);
  let c = C.make ~disabled:[ "inline" ] C.Gcc C.O2 in
  Alcotest.(check bool) "distinct sets stay distinct" false (C.equal a c);
  Alcotest.(check bool) "distinct fingerprints" true
    (C.fingerprint a <> C.fingerprint c)

(* Content dedup: a distinct fingerprint whose compile produces an
   identical binary must be served the baseline's metrics object
   without re-measuring. *)
let test_dedup_returns_baseline_object () =
  let p = Lazy.force libpng in
  let eng = ME.create () in
  let base = C.make C.Gcc C.O1 in
  let m_base, _ = ME.measure eng p base in
  (* Disabling a pass that is not in the O1 pipeline changes nothing
     about the compile, but is a different tier-1 key. *)
  let alias = C.make ~disabled:[ "not-a-real-pass" ] C.Gcc C.O1 in
  Alcotest.(check bool) "distinct fingerprint" true
    (C.fingerprint base <> C.fingerprint alias);
  let m_alias, _ = ME.measure eng p alias in
  Alcotest.(check bool) "dedup shares the baseline object" true
    (m_base == m_alias);
  let measure_counter =
    List.assoc "measure" (Engine.Stats.snapshot (ME.stats eng))
  in
  Alcotest.(check bool) "stats record the dedup" true
    (measure_counter.Engine.Stats.dedups >= 1)

(* The pool's ordered reduction: a parallel map returns results in
   input order for any worker count. *)
let test_pool_ordered () =
  let pool = Engine.Pool.create ~workers:4 () in
  let xs = List.init 100 (fun i -> i) in
  Alcotest.(check (list int))
    "ordered parallel map" (List.map (fun i -> i * i) xs)
    (Engine.Pool.map pool (fun i -> i * i) xs)

(* A multi-worker engine must rank exactly like a sequential one (the
   tables built from rankings are byte-identical). *)
let test_workers_rank_identical () =
  let programs = [ Lazy.force libpng; Lazy.force bzip2 ] in
  let cfg = C.make C.Gcc C.O1 in
  let seq = R.rank ~engine:(ME.create ()) programs cfg in
  let par_eng = ME.create ~workers:4 () in
  Alcotest.(check int) "pool sized" 4 (ME.workers par_eng);
  let par = R.rank ~engine:par_eng programs cfg in
  Alcotest.(check bool) "identical ranking" true
    (seq.R.lr_effects = par.R.lr_effects
    && seq.R.lr_baseline_avg = par.R.lr_baseline_avg)

let tests =
  [
    Alcotest.test_case "cached = uncached, all levels" `Slow
      test_cached_matches_uncached;
    Alcotest.test_case "canonical fingerprints" `Quick
      test_fingerprint_canonical;
    Alcotest.test_case "dedup shares baseline metrics" `Quick
      test_dedup_returns_baseline_object;
    Alcotest.test_case "pool ordered reduction" `Quick test_pool_ordered;
    Alcotest.test_case "parallel rank = sequential rank" `Slow
      test_workers_rank_identical;
  ]
