(** Tests for [Ir.Snapshot] and the resumable pipeline driver
    ([Toolchain.start] / [advance] / [resume]): a resumed compilation
    must be byte-identical ([Emit.binary.full_digest]) to a
    straight-line [Toolchain.compile]; checkpoints must be forkable and
    mutation-isolated; snapshot digests must be independent of
    [Hashtbl] iteration order — including after the inliner runs, whose
    caller order used to follow bucket order. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

let ast_of ~seed = Minic.Typecheck.parse_and_check (Synth.generate ~seed)
let roots = [ "main" ]

let digest (bin : Emit.binary) = bin.Emit.full_digest

let check_same name a b = Alcotest.(check string) name (digest a) (digest b)

(* ------------------------------------------------------------------ *)
(* Straight-line vs resumed compilation                                *)

let test_resume_identity () =
  List.iter
    (fun (seed, config) ->
      let ast = ast_of ~seed in
      let label = Printf.sprintf "seed %d, %s" seed (C.name config) in
      let straight = T.compile ast ~config ~roots in
      let cp0 = T.start ast ~config ~roots in
      Alcotest.(check int) (label ^ ": root index") 0 (T.checkpoint_index cp0);
      check_same (label ^ ": resume from root") straight
        (T.resume ~from:cp0 config);
      let n = T.pipeline_length config in
      if n > 0 then begin
        let mid = T.advance ~upto:(n / 2) cp0 config in
        check_same (label ^ ": resume from middle") straight
          (T.resume ~from:mid config);
        let full = T.advance ~upto:n mid config in
        Alcotest.(check int) (label ^ ": full index") n
          (T.checkpoint_index full);
        check_same (label ^ ": resume past last pass") straight
          (T.resume ~from:full config)
      end)
    [
      (1, C.make C.Gcc C.O2);
      (1, C.make C.Clang C.O3);
      (2, C.make C.Gcc C.O1);
      (3, C.make C.Gcc C.O0);
    ]

(* A checkpoint is never consumed: several configurations of one family
   can fork from the same snapshot, and an earlier resume must not
   perturb a later one. *)
let test_checkpoint_forkable () =
  let ast = ast_of ~seed:4 in
  let base = C.make C.Gcc C.O2 in
  let nodce = C.make ~disabled:[ "dce" ] C.Gcc C.O2 in
  let cp0 = T.start ast ~config:base ~roots in
  let from_cp0 config = T.resume ~from:cp0 config in
  check_same "disabled-dce fork" (T.compile ast ~config:nodce ~roots)
    (from_cp0 nodce);
  check_same "baseline fork after sibling resume"
    (T.compile ast ~config:base ~roots)
    (from_cp0 base);
  check_same "same fork twice" (from_cp0 base) (from_cp0 base)

(* ------------------------------------------------------------------ *)
(* Mutation isolation                                                  *)

let test_snapshot_isolation () =
  let ast = ast_of ~seed:5 in
  let prog = Lower.lower_program ast in
  let snap = Ir.Snapshot.capture prog in
  let d0 = Ir.Snapshot.digest snap in
  (* Mutating the captured program must not leak into the snapshot. *)
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) prog.Ir.funcs;
  Cleanup.run_program prog;
  Alcotest.(check string) "digest survives source mutation" d0
    (Ir.Snapshot.digest snap);
  (* Mutating one restored copy must not leak into a second restore. *)
  let r1 = Ir.Snapshot.restore snap in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) r1.Ir.funcs;
  Cleanup.run_program r1;
  let r2 = Ir.Snapshot.restore snap in
  Alcotest.(check string) "second restore unaffected" d0
    (Ir.Snapshot.digest (Ir.Snapshot.capture r2));
  Alcotest.(check bool) "size estimate positive" true
    (Ir.Snapshot.size_bytes snap > 0)

(* ------------------------------------------------------------------ *)
(* Iteration-order independence                                        *)

(* The same functions inserted into [funcs] in a different order land in
   different buckets; nothing downstream may observe it. *)
let reversed_funcs (p : Ir.program) =
  let fns =
    Hashtbl.fold (fun name fn acc -> (name, fn) :: acc) p.Ir.funcs []
    |> List.sort compare |> List.rev
  in
  let funcs = Hashtbl.create 16 in
  List.iter (fun (name, fn) -> Hashtbl.replace funcs name fn) fns;
  { p with Ir.funcs = funcs }

let test_digest_order_independence () =
  let ast = ast_of ~seed:6 in
  let prog = Lower.lower_program ast in
  Alcotest.(check bool) "several functions" true
    (Hashtbl.length prog.Ir.funcs > 1);
  Alcotest.(check string) "insertion order invisible"
    (Ir.Snapshot.digest (Ir.Snapshot.capture prog))
    (Ir.Snapshot.digest (Ir.Snapshot.capture (reversed_funcs prog)))

(* Regression for the inliner's caller order: it used to iterate
   [prog.funcs] in bucket order, so two insertion orders of the same
   program could inline in different sequences and diverge. Run the
   whole gcc -O2 IR pipeline over both orders and require identical
   results. *)
let run_ir_pipeline config prog =
  let env =
    {
      T.prog;
      roots;
      pure = (fun _ -> false);
      profile = None;
      enabled = C.enabled config;
    }
  in
  Hashtbl.iter (fun _ fn -> Mem2reg.run fn) prog.Ir.funcs;
  Cleanup.run_program prog;
  List.iter
    (fun e ->
      match e with
      | T.Ir_pass (name, f) when C.enabled config name ->
          f env;
          Cleanup.run_program prog
      | T.Ir_pass _ | T.Backend_flag _ -> ())
    (T.pipeline config)

let test_pipeline_order_regression () =
  let config = C.make C.Gcc C.O2 in
  List.iter
    (fun seed ->
      let ast = ast_of ~seed in
      let a = Lower.lower_program ast in
      let b = reversed_funcs (Lower.lower_program ast) in
      run_ir_pipeline config a;
      run_ir_pipeline config b;
      Alcotest.(check string)
        (Printf.sprintf "seed %d: pipeline result order-independent" seed)
        (Ir.Snapshot.digest (Ir.Snapshot.capture a))
        (Ir.Snapshot.digest (Ir.Snapshot.capture b)))
    [ 7; 8; 9 ]

(* ------------------------------------------------------------------ *)
(* Checkpoint metadata and misuse                                      *)

let test_checkpoint_guards () =
  let ast = ast_of ~seed:10 in
  let gcc = C.make C.Gcc C.O2 in
  let clang = C.make C.Clang C.O2 in
  let cp = T.start ast ~config:gcc ~roots in
  Alcotest.(check bool) "digest non-empty" true
    (String.length (T.checkpoint_digest cp) > 0);
  Alcotest.check_raises "family mismatch"
    (Invalid_argument
       "Toolchain.resume: checkpoint belongs to another pipeline family")
    (fun () -> ignore (T.resume ~from:cp clang : Emit.binary));
  Alcotest.check_raises "rewind refused"
    (Invalid_argument "Toolchain.advance: upto precedes the checkpoint")
    (fun () ->
      ignore (T.advance ~upto:1 (T.advance ~upto:3 cp gcc) gcc : T.checkpoint))

let test_prefix_fingerprint () =
  let base = C.make C.Gcc C.O2 in
  let nodce = C.make ~disabled:[ "dce" ] C.Gcc C.O2 in
  let n = T.pipeline_length base in
  Alcotest.(check bool) "pipeline non-trivial" true (n > 2);
  (* The two configs agree up to (not including) the first "dce" entry
     and disagree on the full pipeline. *)
  Alcotest.(check string) "empty prefixes agree" (T.prefix_fingerprint base 0)
    (T.prefix_fingerprint nodce 0);
  Alcotest.(check bool) "full prefixes differ" true
    (T.prefix_fingerprint base n <> T.prefix_fingerprint nodce n);
  Alcotest.(check bool) "families never collide" true
    (T.prefix_fingerprint base 0
    <> T.prefix_fingerprint (C.make C.Clang C.O2) 0)

let tests =
  [
    Alcotest.test_case "resume = straight-line compile" `Quick
      test_resume_identity;
    Alcotest.test_case "checkpoints fork" `Quick test_checkpoint_forkable;
    Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
    Alcotest.test_case "digest order-independence" `Quick
      test_digest_order_independence;
    Alcotest.test_case "pipeline order regression" `Quick
      test_pipeline_order_regression;
    Alcotest.test_case "checkpoint guards" `Quick test_checkpoint_guards;
    Alcotest.test_case "prefix fingerprints" `Quick test_prefix_fingerprint;
  ]
