(* The DebugTuner command-line interface.

     debugtuner compile     -p libpng -c gcc -l O2 [-d pass]... [--profile F]
     debugtuner measure     -p libpng -c gcc -l O2 [-d pass]...
     debugtuner rank        -c gcc -l O2 [-k 10]
     debugtuner tune        -c gcc -l O1 -y 5
     debugtuner passes      -c clang -l O3
     debugtuner suite
     debugtuner run         -p zlib -e fuzz_deflate -i 1,2,3
     debugtuner trace       -p zlib -l O2 -o trace.json [--against old.json]
     debugtuner debug       -p zlib -l Og "break 12" "run 1,2" "print x" c
     debugtuner dump        -p zlib -l O2 [-s functions|lines|locs]
     debugtuner verify      -p zlib -l O3
     debugtuner disasm      -p zlib -l O2 [-f func]
     debugtuner dwarf-size  -p zlib -c gcc
     debugtuner sample      -p 505.mcf -l O2 [-o mcf.prof]
     debugtuner profile     -p zlib -O2 --pipeline gcc [--trace out.json]
     debugtuner pass-trace  -p zlib -l O2
     debugtuner value-check -p zlib -l Og

   Programs are the built-in test-suite / SPEC-analog / selfcomp sources
   (see `debugtuner suite`), or a path to a MiniC file. *)

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let compiler_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "gcc" -> Ok Debugtuner.Config.Gcc
        | "clang" -> Ok Debugtuner.Config.Clang
        | _ -> Error (`Msg "compiler must be gcc or clang")),
      fun ppf c ->
        Format.pp_print_string ppf (Debugtuner.Config.compiler_name c) )

let level_conv =
  Arg.conv
    ( (fun s ->
        match String.uppercase_ascii s with
        | "O0" -> Ok Debugtuner.Config.O0
        | "OG" -> Ok Debugtuner.Config.Og
        | "O1" -> Ok Debugtuner.Config.O1
        | "O2" -> Ok Debugtuner.Config.O2
        | "O3" -> Ok Debugtuner.Config.O3
        | _ -> Error (`Msg "level must be O0, Og, O1, O2 or O3")),
      fun ppf l -> Format.pp_print_string ppf (Debugtuner.Config.level_name l)
    )

let compiler_arg =
  Arg.(
    value
    & opt compiler_conv Debugtuner.Config.Gcc
    & info [ "c"; "compiler" ] ~docv:"COMPILER" ~doc:"Pipeline family: gcc or clang.")

let level_arg =
  Arg.(
    value
    & opt level_conv Debugtuner.Config.O2
    & info [ "l"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level (O0, Og, O1, O2, O3).")

let disabled_arg =
  Arg.(
    value & opt_all string []
    & info [ "d"; "disable" ] ~docv:"PASS"
        ~doc:"Disable every instance of $(docv) (repeatable).")

let program_arg =
  Arg.(
    value & opt string "libpng"
    & info [ "p"; "program" ] ~docv:"PROGRAM"
        ~doc:
          "A built-in program name (see $(b,debugtuner suite)) or a path to \
           a MiniC source file.")

let find_program name : Suite_types.sprogram =
  if Sys.file_exists name then
    let ic = open_in name in
    let n = in_channel_length ic in
    let src = really_input_string ic n in
    close_in ic;
    let ast = Minic.Typecheck.parse_and_check src in
    let entry =
      match Minic.Ast.find_func ast "main" with
      | Some _ -> "main"
      | None -> failwith "MiniC file must define main()"
    in
    {
      Suite_types.p_name = Filename.basename name;
      p_source = src;
      p_harnesses =
        [ { Suite_types.h_name = "main"; h_entry = entry; h_seeds = [ [] ] } ];
    }
  else
    match List.find_opt (fun p -> p.Suite_types.p_name = name) Programs.all with
    | Some p -> p
    | None -> (
        match List.find_opt (fun p -> p.Suite_types.p_name = name) Spec.all with
        | Some p -> p
        | None ->
            if name = "selfcomp" then Selfcomp.program
            else failwith ("unknown program " ^ name))

let config compiler level disabled =
  Debugtuner.Config.make ~disabled compiler level

(* Adapters from the shared option declarations (Util.Cliopts — one
   source of truth with the bench harness) to cmdliner terms. *)
let cliopt_name (s : Util.Cliopts.spec) =
  String.sub s.Util.Cliopts.o_name 2 (String.length s.Util.Cliopts.o_name - 2)

let cliopt_flag (s : Util.Cliopts.spec) =
  Arg.(value & flag & info [ cliopt_name s ] ~doc:s.Util.Cliopts.o_doc)

let cliopt_file (s : Util.Cliopts.spec) =
  Arg.(
    value
    & opt (some string) None
    & info [ cliopt_name s ]
        ?docv:s.Util.Cliopts.o_docv ~doc:s.Util.Cliopts.o_doc)

(* ------------------------------------------------------------------ *)
(* compile: show binary statistics                                     *)

let compile_cmd =
  let profile_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"AutoFDO text profile to optimize with (see $(b,sample)).")
  in
  let run program compiler level disabled profile_file =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let ast = Suite_types.ast p in
    let profile =
      Option.map
        (fun file ->
          let ic = open_in file in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          Debugtuner.Autofdo.profile_of_string text)
        profile_file
    in
    let bin =
      Debugtuner.Toolchain.compile
        ~options:(Debugtuner.Toolchain.Options.make ?profile ())
        ast ~config:cfg ~roots:(Suite_types.roots p)
    in
    Printf.printf "%s at %s\n" p.Suite_types.p_name (Debugtuner.Config.name cfg);
    Printf.printf "  code: %d instructions, %d functions\n"
      (Array.length bin.Emit.code)
      (Array.length bin.Emit.funcs);
    Printf.printf "  line table: %d entries, %d steppable lines\n"
      (List.length bin.Emit.debug.Dwarfish.line_table)
      (List.length (Dwarfish.steppable_lines bin.Emit.debug));
    Printf.printf "  variables with location info: %d\n"
      (List.length bin.Emit.debug.Dwarfish.vars);
    Printf.printf "  .text digest: %s\n" bin.Emit.text_digest
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a program and print binary statistics.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ profile_arg)

(* ------------------------------------------------------------------ *)
(* measure: the four metric methods                                    *)

let measure_cmd =
  let run program compiler level disabled =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let prepared = Debugtuner.Evaluation.prepare p in
    let engine = Debugtuner.Measure_engine.default () in
    let m, _ = Debugtuner.Measure_engine.measure engine prepared cfg in
    Printf.printf "%s at %s (vs the O0 baseline)\n" p.Suite_types.p_name
      (Debugtuner.Config.name cfg);
    let show name (s : Metrics.score) =
      Printf.printf "  %-10s availability=%.4f line-coverage=%.4f product=%.4f\n"
        name s.Metrics.availability s.Metrics.line_coverage s.Metrics.product
    in
    show "static" m.Metrics.m_static;
    show "static-dbg" m.Metrics.m_static_dbg;
    show "dynamic" m.Metrics.m_dynamic;
    show "hybrid" m.Metrics.m_hybrid
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:"Measure debug-information quality of a configuration.")
    Term.(const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg)

(* ------------------------------------------------------------------ *)
(* rank: the DebugTuner sweep                                          *)

let rank_cmd =
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Entries to print.")
  in
  let run compiler level k no_prefix_cache =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    let cfg = Debugtuner.Config.make compiler level in
    Printf.printf "ranking %s passes on the 13-program suite...\n%!"
      (Debugtuner.Config.name cfg);
    let prepared = List.map Debugtuner.Evaluation.prepare Programs.all in
    let lr = Debugtuner.Ranking.rank prepared cfg in
    Printf.printf "%-4s %-26s %8s %8s\n" "#" "pass" "+%" "avg rank";
    List.iteri
      (fun i (e : Debugtuner.Ranking.pass_effect) ->
        if i < k then
          Printf.printf "%-4d %-26s %8.2f %8.2f\n" (i + 1)
            e.Debugtuner.Ranking.pe_pass e.Debugtuner.Ranking.pe_geo_increment_pct
            e.Debugtuner.Ranking.pe_avg_rank)
      lr.Debugtuner.Ranking.lr_effects
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Rank a level's passes by debug-information impact (Tables V/VI).")
    Term.(
      const run $ compiler_arg $ level_arg $ k_arg
      $ cliopt_flag Util.Cliopts.no_prefix_cache)

(* ------------------------------------------------------------------ *)
(* tune: build and evaluate an Ox-dy configuration                     *)

let tune_cmd =
  let y_arg =
    Arg.(value & opt int 5 & info [ "y" ] ~docv:"Y" ~doc:"Passes to disable.")
  in
  let run compiler level y no_prefix_cache =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    let base = Debugtuner.Config.make compiler level in
    Printf.printf "tuning %s (disabling top %d)...\n%!"
      (Debugtuner.Config.name base) y;
    let prepared = List.map Debugtuner.Evaluation.prepare Programs.all in
    let lr = Debugtuner.Ranking.rank prepared base in
    let dy = Debugtuner.Tuning.dy_config lr ~y in
    Printf.printf "%s disables: %s\n" (Debugtuner.Config.name dy)
      (String.concat ", " dy.Debugtuner.Config.disabled);
    let o0_costs = Debugtuner.Tuning.o0_costs Spec.all in
    let base_pt =
      Debugtuner.Tuning.measure_point prepared ~o0_costs Spec.all base
    in
    let dy_pt = Debugtuner.Tuning.measure_point prepared ~o0_costs Spec.all dy in
    Printf.printf "%-12s debug=%.4f speedup=%.4f\n"
      (Debugtuner.Config.name base)
      base_pt.Debugtuner.Tuning.cp_debug base_pt.Debugtuner.Tuning.cp_speedup;
    Printf.printf "%-12s debug=%.4f (%+.2f%%) speedup=%.4f (%+.2f%%)\n"
      (Debugtuner.Config.name dy)
      dy_pt.Debugtuner.Tuning.cp_debug
      (Util.Stats.pct_delta base_pt.Debugtuner.Tuning.cp_debug
         dy_pt.Debugtuner.Tuning.cp_debug)
      dy_pt.Debugtuner.Tuning.cp_speedup
      (Util.Stats.pct_delta base_pt.Debugtuner.Tuning.cp_speedup
         dy_pt.Debugtuner.Tuning.cp_speedup)
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Build an Ox-dy configuration and report its debug/perf trade.")
    Term.(
      const run $ compiler_arg $ level_arg $ y_arg
      $ cliopt_flag Util.Cliopts.no_prefix_cache)

(* ------------------------------------------------------------------ *)
(* trace: JSON export + offline comparison                             *)

let trace_cmd =
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Entry function (default: the program's first harness).")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS"
          ~doc:"Comma-separated input values.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSON here.")
  in
  let diff_arg =
    Arg.(
      value & opt (some string) None
      & info [ "against" ] ~docv:"FILE"
          ~doc:"Compare against a previously exported trace.")
  in
  let run program compiler level disabled entry input out against =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let ast = Suite_types.ast p in
    let bin =
      Debugtuner.Toolchain.compile ast ~config:cfg ~roots:(Suite_types.roots p)
    in
    let entry =
      match entry with
      | Some e -> e
      | None -> (List.hd p.Suite_types.p_harnesses).Suite_types.h_entry
    in
    let input =
      if input = "" then []
      else String.split_on_char ',' input |> List.map int_of_string
    in
    let t = Debugger.trace bin ~entry ~inputs:[ input ] in
    let json = Trace_json.to_string t in
    (match out with
    | Some file ->
        let oc = open_out file in
        output_string oc json;
        close_out oc;
        Printf.printf "trace written to %s (%d stepped lines)\n" file
          (List.length (Debugger.stepped_lines t))
    | None -> print_string json);
    match against with
    | None -> ()
    | Some file ->
        let ic = open_in file in
        let n = in_channel_length ic in
        let base = Trace_json.of_string (really_input_string ic n) in
        close_in ic;
        let d = Trace_json.compare_traces base t in
        Printf.printf "vs %s:\n  lines lost: [%s]\n  lines gained: [%s]\n"
          file
          (String.concat "; " (List.map string_of_int d.Trace_json.lines_lost))
          (String.concat "; " (List.map string_of_int d.Trace_json.lines_gained));
        List.iter
          (fun (line, vars) ->
            Printf.printf "  line %d lost vars: %s\n" line
              (String.concat ", " (List.map Ir.var_to_string vars)))
          d.Trace_json.vars_lost
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a debug session and export the trace as JSON (optionally \
          diffing against a previous export).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ input_arg $ out_arg $ diff_arg)

(* ------------------------------------------------------------------ *)
(* dump / verify: the dwarfdump analog                                 *)

let compile_for program compiler level disabled =
  let p = find_program program in
  let cfg = config compiler level disabled in
  let ast = Suite_types.ast p in
  (p, cfg, Debugtuner.Toolchain.compile ast ~config:cfg ~roots:(Suite_types.roots p))

let dump_cmd =
  let section_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "section" ] ~docv:"SECTION"
          ~doc:
            "Section to print: functions, lines or locs (repeatable; \
             default all).")
  in
  let run program compiler level disabled sections =
    let sections =
      match sections with
      | [] -> Dwarfdump.all_sections
      | names ->
          List.map
            (fun n ->
              match Dwarfdump.section_of_string n with
              | Some s -> s
              | None -> failwith ("unknown section " ^ n))
            names
    in
    let p, cfg, bin = compile_for program compiler level disabled in
    Printf.printf "%s at %s: %s\n\n" p.Suite_types.p_name
      (Debugtuner.Config.name cfg)
      (Dwarfdump.summary bin);
    print_string (Dwarfdump.dump ~sections bin);
    print_newline ();
    print_string (Dwarfdump.locstats_to_string (Dwarfdump.locstats bin))
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Pretty-print a binary's DWARF-like sections (the dwarfdump \
          analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ section_arg)

let verify_cmd =
  let run program compiler level disabled =
    let p, cfg, bin = compile_for program compiler level disabled in
    let ds = Debug_verify.verify bin in
    Printf.printf "%s at %s: %s" p.Suite_types.p_name
      (Debugtuner.Config.name cfg)
      (Debug_verify.report ds);
    if ds <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the structural integrity of a binary's debug info (the \
          llvm-dwarfdump --verify analog); exits 1 on errors.")
    Term.(const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg)

(* ------------------------------------------------------------------ *)
(* value-check: the dynamic value-soundness oracle                     *)

let value_check_cmd =
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Entry function (default: the program's first harness).")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS" ~doc:"Comma-separated inputs.")
  in
  let run program compiler level disabled entry input =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let ast = Suite_types.ast p in
    let entry =
      match entry with
      | Some e -> e
      | None -> (List.hd p.Suite_types.p_harnesses).Suite_types.h_entry
    in
    let input =
      if input = "" then []
      else String.split_on_char ',' input |> List.map int_of_string
    in
    let r =
      Debugtuner.Value_oracle.check ast ~config:cfg
        ~roots:(Suite_types.roots p) ~entry ~input
    in
    Printf.printf "%s at %s (%s):
%s" p.Suite_types.p_name
      (Debugtuner.Config.name cfg)
      entry
      (Debugtuner.Value_oracle.report_to_string r);
    if
      cfg.Debugtuner.Config.level = Debugtuner.Config.O0
      && r.Debugtuner.Value_oracle.rp_mismatches <> []
    then exit 1
  in
  Cmd.v
    (Cmd.info "value-check"
       ~doc:
         "Compare every value the debugger would display against the           reference interpreter (the dynamic soundness oracle); exits 1 on           O0 mismatches.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ input_arg)

(* ------------------------------------------------------------------ *)
(* pass-trace: per-pass IR statistics (the -fdump-tree-all analog)     *)

let pass_trace_cmd =
  let run program compiler level disabled =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let trace =
      Debugtuner.Toolchain.pipeline_trace (Suite_types.ast p) ~config:cfg
        ~roots:(Suite_types.roots p)
    in
    Printf.printf "%-28s %8s %7s %9s %9s %6s\n" "pass" "instrs" "blocks"
      "bindings" "opt-out" "lines";
    let prev = ref None in
    List.iter
      (fun (name, (st : Debugtuner.Toolchain.ir_stats)) ->
        let delta get =
          match !prev with
          | Some p when get p <> get st ->
              Printf.sprintf "%+d" (get st - get p)
          | _ -> ""
        in
        Printf.printf "%-28s %5d %2s %4d %2s %6d %2s %6d %2s %4d %2s\n" name
          st.Debugtuner.Toolchain.st_instrs
          (delta (fun s -> s.Debugtuner.Toolchain.st_instrs))
          st.Debugtuner.Toolchain.st_blocks
          (delta (fun s -> s.Debugtuner.Toolchain.st_blocks))
          st.Debugtuner.Toolchain.st_bindings
          (delta (fun s -> s.Debugtuner.Toolchain.st_bindings))
          st.Debugtuner.Toolchain.st_optimized_out
          (delta (fun s -> s.Debugtuner.Toolchain.st_optimized_out))
          st.Debugtuner.Toolchain.st_lines
          (delta (fun s -> s.Debugtuner.Toolchain.st_lines));
        prev := Some st)
      trace
  in
  Cmd.v
    (Cmd.info "pass-trace"
       ~doc:
         "Replay the IR pipeline and print per-pass statistics — where           instructions, debug bindings and line attributions go (the           -fdump-tree-all analog).")
    Term.(const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg)

(* ------------------------------------------------------------------ *)
(* profile: collect an AutoFDO profile and write the text format       *)

let sample_cmd =
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Entry function (default: the program's first harness).")
  in
  let period_arg =
    Arg.(
      value & opt int 211
      & info [ "period" ] ~docv:"CYCLES" ~doc:"Sampling period in cycles.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the profile here.")
  in
  let run program compiler level disabled entry period out =
    let p, cfg, bin = compile_for program compiler level disabled in
    let entry =
      match entry with
      | Some e -> e
      | None -> (List.hd p.Suite_types.p_harnesses).Suite_types.h_entry
    in
    let workloads =
      List.concat_map
        (fun h -> h.Suite_types.h_seeds)
        p.Suite_types.p_harnesses
    in
    let coll = Debugtuner.Autofdo.collect bin ~entry ~workloads ~period ~seed:7 in
    let text = Debugtuner.Autofdo.profile_to_string coll.Debugtuner.Autofdo.profile in
    Printf.printf
      "profiled %s at %s: %d samples taken, %d lost (%.1f%%) to missing line info\n"
      p.Suite_types.p_name
      (Debugtuner.Config.name cfg)
      coll.Debugtuner.Autofdo.samples_taken coll.Debugtuner.Autofdo.samples_lost
      (if coll.Debugtuner.Autofdo.samples_taken = 0 then 0.0
       else
         100.0
         *. float_of_int coll.Debugtuner.Autofdo.samples_lost
         /. float_of_int coll.Debugtuner.Autofdo.samples_taken);
    match out with
    | Some file ->
        let oc = open_out file in
        output_string oc text;
        close_out oc;
        Printf.printf "profile written to %s\n" file
    | None -> print_string text
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Run a binary under PC sampling and emit the AutoFDO text profile           (the perf + create_llvm_prof analog). Feed it back with           $(b,compile --profile).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ period_arg $ out_arg)

(* ------------------------------------------------------------------ *)
(* profile: per-pass self-time of one compilation (the observability
   layer's front door)                                                 *)

let profile_cmd =
  let pipeline_arg =
    Arg.(
      value
      & opt compiler_conv Debugtuner.Config.Gcc
      & info [ "pipeline" ] ~docv:"FAMILY"
          ~doc:"Pipeline family to profile: gcc or clang.")
  in
  let o_arg =
    (* Short-only so `-O2` parses as the glued value "2" of option -O,
       matching compiler-driver muscle memory; the conv therefore
       accepts both the bare suffix ("2", "g") and the full spelling
       ("O2", "Og"). *)
    let olevel_conv =
      Arg.conv
        ( (fun s ->
            match String.uppercase_ascii s with
            | "0" | "O0" -> Ok Debugtuner.Config.O0
            | "G" | "OG" -> Ok Debugtuner.Config.Og
            | "1" | "O1" -> Ok Debugtuner.Config.O1
            | "2" | "O2" -> Ok Debugtuner.Config.O2
            | "3" | "O3" -> Ok Debugtuner.Config.O3
            | _ -> Error (`Msg "level must be 0, g, 1, 2 or 3")),
          fun ppf l ->
            Format.pp_print_string ppf (Debugtuner.Config.level_name l) )
    in
    Arg.(
      value
      & opt olevel_conv Debugtuner.Config.O2
      & info [ "O" ] ~docv:"LEVEL"
          ~doc:"Optimization level: -O0, -Og, -O1, -O2, -O3.")
  in
  let run program pipeline level disabled trace sanitize stats =
    let p = find_program program in
    let cfg = Debugtuner.Config.make ~disabled pipeline level in
    let ast = Suite_types.ast p in
    Obs.start ();
    let bin =
      Debugtuner.Toolchain.compile ast ~config:cfg
        ~roots:(Suite_types.roots p)
        ~options:(Debugtuner.Toolchain.Options.make ~sanitize ())
    in
    (* Snapshot the unified counter table while the session is live (the
       obs/* rows read the active session). *)
    let counter_rows =
      if stats then
        Debugtuner.Measure_engine.stats_table
          (Debugtuner.Measure_engine.default ())
      else []
    in
    let session =
      match Obs.stop () with Some s -> s | None -> assert false
    in
    let profs = Obs.profiles session in
    let total_ns =
      List.fold_left (fun a pr -> Int64.add a pr.Obs.pr_ns) 0L profs
    in
    Printf.printf "%s at %s: %d pass executions, %.3f ms in passes\n\n"
      p.Suite_types.p_name
      (Debugtuner.Config.name cfg)
      (List.fold_left (fun a pr -> a + pr.Obs.pr_calls) 0 profs)
      (Int64.to_float total_ns /. 1e6);
    let pct ns =
      if total_ns = 0L then "-"
      else
        Printf.sprintf "%.1f"
          (100.0 *. Int64.to_float ns /. Int64.to_float total_ns)
    in
    let rows =
      List.map
        (fun pr ->
          [
            pr.Obs.pr_pass;
            string_of_int pr.Obs.pr_calls;
            Printf.sprintf "%.3f" (Int64.to_float pr.Obs.pr_ns /. 1e6);
            pct pr.Obs.pr_ns;
            string_of_int pr.Obs.pr_delta.Instrument.c_instrs;
            string_of_int pr.Obs.pr_delta.Instrument.c_lines;
            string_of_int pr.Obs.pr_delta.Instrument.c_vars;
          ])
        (List.sort
           (fun a b -> Int64.compare b.Obs.pr_ns a.Obs.pr_ns)
           profs)
    in
    Util.Tablefmt.print
      (Util.Tablefmt.make ~title:"Per-pass self time (sorted)"
         ~header:
           [ "pass"; "calls"; "ms"; "self%"; "d-instrs"; "d-lines"; "d-vars" ]
         rows);
    print_newline ();
    if stats then begin
      print_endline "== Counters (engine caches / sanitizer / obs) ==";
      List.iter print_endline (Util.Cliopts.kv_lines counter_rows);
      print_newline ()
    end;
    Printf.printf "binary: %d instructions, text digest %s\n"
      (Array.length bin.Emit.code) bin.Emit.text_digest;
    match trace with
    | None -> ()
    | Some file -> (
        let js = Obs.to_chrome_json session in
        let oc = open_out file in
        output_string oc js;
        close_out oc;
        (* Self-check the artifact: parse what we wrote, require balanced
           spans and at least one span per profiled pass. *)
        match Obs.validate_chrome js with
        | Error msg ->
            Printf.eprintf "trace validation FAILED: %s\n" msg;
            exit 1
        | Ok v ->
            let missing =
              List.filter
                (fun pr ->
                  match List.assoc_opt pr.Obs.pr_pass v.Obs.v_spans with
                  | Some n when n >= 1 -> false
                  | _ -> true)
                profs
            in
            if missing <> [] then begin
              Printf.eprintf "trace validation FAILED: no span for: %s\n"
                (String.concat ", "
                   (List.map (fun pr -> pr.Obs.pr_pass) missing));
              exit 1
            end;
            Printf.printf
              "trace written to %s (%d events, %d named spans, validated)\n"
              file v.Obs.v_events
              (List.length v.Obs.v_spans))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile once with the observability layer on and print the           per-pass self-time table (wall time and IR size / debug-info           deltas per pass). With $(b,--trace), also write and validate a           Chrome trace_event JSON of the whole compilation.")
    Term.(
      const run $ program_arg $ pipeline_arg $ o_arg $ disabled_arg
      $ cliopt_file Util.Cliopts.trace
      $ cliopt_flag Util.Cliopts.sanitize
      $ cliopt_flag Util.Cliopts.stats)

(* ------------------------------------------------------------------ *)
(* disasm: objdump -dl analog                                          *)

let disasm_cmd =
  let func_arg =
    Arg.(
      value & opt (some string) None
      & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Only this function.")
  in
  let run program compiler level disabled func =
    let _, _, bin = compile_for program compiler level disabled in
    print_string (Objdump.disassemble ?func bin)
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Disassemble a binary with interleaved source lines (the objdump           -dl analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ func_arg)

(* ------------------------------------------------------------------ *)
(* dwarf-size: encoded debug-info sizes across levels                  *)

let dwarf_size_cmd =
  let run program compiler =
    let p = find_program program in
    let ast = Suite_types.ast p in
    Printf.printf "%-8s %12s %12s %12s %8s %8s\n" "level" ".debug_line"
      ".debug_loc" "total" "entries" "vars";
    List.iter
      (fun level ->
        let cfg = Debugtuner.Config.make compiler level in
        let bin =
          Debugtuner.Toolchain.compile ast ~config:cfg
            ~roots:(Suite_types.roots p)
        in
        let line, locs, total = Dwarf_encode.section_sizes bin.Emit.debug in
        Printf.printf "%-8s %11dB %11dB %11dB %8d %8d\n"
          (Debugtuner.Config.level_name level)
          line locs total
          (List.length bin.Emit.debug.Dwarfish.line_table)
          (List.length bin.Emit.debug.Dwarfish.vars))
      (Debugtuner.Config.O0 :: Debugtuner.Config.standard_levels compiler)
  in
  Cmd.v
    (Cmd.info "dwarf-size"
       ~doc:
         "Encode the debug info with the DWARF wire formats (LEB128,           line-number program, location expressions) and report section           sizes per optimization level.")
    Term.(const run $ program_arg $ compiler_arg)

(* ------------------------------------------------------------------ *)
(* debug: scripted debugger sessions (gdb -x analog)                   *)

let debug_cmd =
  let entry_arg =
    Arg.(
      value & opt (some string) None
      & info [ "e"; "entry" ] ~docv:"FUNC"
          ~doc:"Entry function (default: the program's first harness).")
  in
  let script_arg =
    Arg.(
      value & opt (some string) None
      & info [ "x"; "script" ] ~docv:"FILE"
          ~doc:"Read commands from $(docv), one per line ('#' comments).")
  in
  let commands_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"COMMAND"
          ~doc:
            "Debugger commands, e.g. 'break 6' 'run 1,2' 'print x' \
             'continue'.")
  in
  let run program compiler level disabled entry script commands =
    let p, _cfg, bin = compile_for program compiler level disabled in
    let entry =
      match entry with
      | Some e -> e
      | None -> (List.hd p.Suite_types.p_harnesses).Suite_types.h_entry
    in
    let commands =
      match script with
      | None -> commands
      | Some file ->
          let ic = open_in file in
          let n = in_channel_length ic in
          let text = really_input_string ic n in
          close_in ic;
          String.split_on_char '\n' text
          |> List.map String.trim
          |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    if commands = [] then
      print_endline
        "no commands; pass them positionally or via -x FILE (commands: \
         break/tbreak/delete L, run [inputs], continue, step, next, finish, \
         print VAR, info locals|line|breakpoints, backtrace, quit)"
    else print_string (Session.script bin ~entry commands)
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Replay a scripted debugger session against an optimized binary \
          (the gdb batch-mode analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ script_arg $ commands_arg)

(* ------------------------------------------------------------------ *)
(* check: pipeline sanitizer + differential oracle                      *)

let check_cmd =
  let fuzz_arg =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Also run $(docv) synthetic programs through the differential \
             matrix (in addition to the suite).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"First seed for the synthetic programs.")
  in
  let suite_arg =
    Arg.(
      value & flag
      & info [ "no-suite" ]
          ~doc:"Skip the built-in suite; only run the --fuzz programs.")
  in
  let one_program_arg =
    Arg.(
      value & opt (some string) None
      & info [ "p"; "program" ] ~docv:"PROGRAM"
          ~doc:"Check only this program (name or MiniC file path).")
  in
  let run program fuzz seed no_suite cache_dir no_cache no_prefix_cache json =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    (* The oracle's persistent verdict cache is opt-in: only an explicit
       --cache-dir (and no --no-cache) turns it on, so plain [check]
       stays stateless. Warm hits replay the cached sanitizer-counter
       deltas, keeping stdout byte-identical to a cold run. *)
    let oracle_store =
      match cache_dir with
      | Some dir when not no_cache ->
          Some (Debugtuner.Measure_engine.open_store ~dir ())
      | _ -> None
    in
    let reports = ref [] in
    (match program with
    | Some name ->
        let p = find_program name in
        Printf.printf "checking %s across O0-O3 x {gcc, clang}...\n%!"
          p.Suite_types.p_name;
        let failures, (runs, skipped) =
          Diff_oracle.check_program ?store:oracle_store p
        in
        reports :=
          [
            {
              Diff_oracle.r_programs = 1;
              r_configs = List.length (Diff_oracle.configs ());
              r_runs = runs;
              r_skipped = skipped;
              r_failures = failures;
            };
          ]
    | None ->
        if not no_suite then begin
          Printf.printf
            "checking the suite across O0-O3 x {gcc, clang} (sanitizer \
             on)...\n%!";
          reports := [ Diff_oracle.check_suite ?store:oracle_store () ]
        end);
    if fuzz > 0 then begin
      Printf.printf "fuzzing %d synthetic program(s) from seed %d...\n%!" fuzz
        seed;
      reports :=
        !reports @ [ Diff_oracle.fuzz ?store:oracle_store ~count:fuzz ~seed () ]
    end;
    List.iter (fun r -> print_endline (Diff_oracle.report_to_string r)) !reports;
    (match Sanitize.counters () with
    | [] -> ()
    | cs ->
        Printf.printf "sanitizer boundaries validated:\n";
        List.iter
          (fun (pass, checks, failures) ->
            Printf.printf "  %-26s %7d checked %s\n" pass checks
              (if failures = 0 then ""
               else Printf.sprintf "%d FAILED" failures))
          cs);
    (match json with
    | None -> ()
    | Some file ->
        (* Counters to a side file — store activity is run-dependent
           (cold vs warm), so it must never reach the byte-stable
           stdout. *)
        let rows =
          (match oracle_store with
          | None -> []
          | Some s ->
              List.filter_map
                (fun (n, v) -> if v = 0 then None else Some ("store/" ^ n, v))
                (Engine.Disk_store.counters s))
          @ List.concat_map
              (fun (pass, checks, failures) ->
                ("sanitize/" ^ pass ^ "/checked", checks)
                :: (if failures <> 0 then
                      [ ("sanitize/" ^ pass ^ "/failures", failures) ]
                    else []))
              (Sanitize.counters ())
        in
        let oc = open_out file in
        output_string oc "[\n  ";
        output_string oc
          (String.concat ",\n  " (Util.Cliopts.kv_json_rows rows));
        output_string oc "\n]\n";
        close_out oc);
    if not (List.for_all Diff_oracle.clean !reports) then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the pipeline sanitizer and the differential oracle: every \
          program is interpreted (ground truth) and executed at O0-O3 under \
          both pipelines with per-pass checking on; failing synthetic \
          programs are shrunk before reporting. Exits 1 on any failure. With \
          --cache-dir, verdicts persist across runs (warm runs are \
          near-instant and byte-identical).")
    Term.(
      const run $ one_program_arg $ fuzz_arg $ seed_arg $ suite_arg
      $ cliopt_file Util.Cliopts.cache_dir
      $ cliopt_flag Util.Cliopts.no_cache
      $ cliopt_flag Util.Cliopts.no_prefix_cache
      $ cliopt_file Util.Cliopts.json)

(* ------------------------------------------------------------------ *)
(* cache: inspect and maintain the persistent artifact store            *)

let cache_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear); ("gc", `Gc) ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(docv) is one of: $(b,stats) (entry/byte counts per cache), \
             $(b,clear) (remove every entry), $(b,gc) (drop stale/corrupt \
             entries, enforce the size bound, remove abandoned temp files).")
  in
  let run action cache_dir =
    let store = Debugtuner.Measure_engine.open_store ?dir:cache_dir () in
    match action with
    | `Stats ->
        Printf.printf "cache %s (format v%d)\n"
          (Engine.Disk_store.dir store)
          Engine.Disk_store.format_version;
        let summary = Engine.Disk_store.summary store in
        if summary = [] then print_endline "  (empty)"
        else
          List.iter
            (fun (cache, entries, bytes) ->
              Printf.printf "  %-14s %6d entries %10d bytes\n" cache entries
                bytes)
            summary;
        Printf.printf "  %-14s %6d entries %10d bytes\n" "total"
          (Engine.Disk_store.entry_count store)
          (Engine.Disk_store.size_bytes store)
    | `Clear ->
        let n = Engine.Disk_store.clear store in
        Printf.printf "cache %s: removed %d entr%s\n"
          (Engine.Disk_store.dir store)
          n
          (if n = 1 then "y" else "ies")
    | `Gc ->
        let n = Engine.Disk_store.gc store in
        Printf.printf
          "cache %s: dropped %d stale/corrupt entr%s, %d entries (%d bytes) \
           kept\n"
          (Engine.Disk_store.dir store)
          n
          (if n = 1 then "y" else "ies")
          (Engine.Disk_store.entry_count store)
          (Engine.Disk_store.size_bytes store)
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or maintain the persistent artifact cache (default _cache, \
          or $(b,DEBUGTUNER_CACHE), or --cache-dir).")
    Term.(const run $ action_arg $ cliopt_file Util.Cliopts.cache_dir)

(* ------------------------------------------------------------------ *)
(* passes / suite / run                                                *)

let passes_cmd =
  let run compiler level =
    let cfg = Debugtuner.Config.make compiler level in
    List.iter print_endline (Debugtuner.Toolchain.pass_names cfg)
  in
  Cmd.v
    (Cmd.info "passes" ~doc:"List the toggleable passes of a level.")
    Term.(const run $ compiler_arg $ level_arg)

let suite_cmd =
  let run () =
    print_endline "test suite (13 programs):";
    List.iter
      (fun (p : Suite_types.sprogram) ->
        Printf.printf "  %-12s %d harness(es)\n" p.Suite_types.p_name
          (List.length p.Suite_types.p_harnesses))
      Programs.all;
    print_endline "SPEC CPU 2017 analogs:";
    List.iter
      (fun (p : Suite_types.sprogram) ->
        Printf.printf "  %s\n" p.Suite_types.p_name)
      Spec.all;
    print_endline "large AutoFDO workload:";
    print_endline "  selfcomp"
  in
  Cmd.v (Cmd.info "suite" ~doc:"List the built-in programs.") Term.(const run $ const ())

let run_cmd =
  let entry_arg =
    Arg.(
      value & opt string "main"
      & info [ "e"; "entry" ] ~docv:"FUNC" ~doc:"Entry function.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS"
          ~doc:"Comma-separated input values for input().")
  in
  let run program compiler level disabled entry input =
    let p = find_program program in
    let cfg = config compiler level disabled in
    let ast = Suite_types.ast p in
    let bin =
      Debugtuner.Toolchain.compile ast ~config:cfg ~roots:(Suite_types.roots p)
    in
    let input =
      if input = "" then []
      else String.split_on_char ',' input |> List.map int_of_string
    in
    let r = Vm.run bin ~entry ~input Vm.default_opts in
    Printf.printf "output: [%s]\n"
      (String.concat "; " (List.map string_of_int r.Vm.output));
    Printf.printf "cost: %d cycles, %d instructions%s\n" r.Vm.cost r.Vm.instrs
      (if r.Vm.timed_out then "  (TIMED OUT)" else "")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a program on the VM.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ input_arg)

let () =
  let info =
    Cmd.info "debugtuner" ~version:"1.0.0"
      ~doc:
        "Measure and tune the debug-information quality of optimized \
         binaries (DebugTuner reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; measure_cmd; rank_cmd; tune_cmd; passes_cmd; suite_cmd; run_cmd; trace_cmd; dump_cmd; verify_cmd; debug_cmd; dwarf_size_cmd; disasm_cmd; sample_cmd; profile_cmd; pass_trace_cmd; value_check_cmd; check_cmd; cache_cmd ]))
