(* The DebugTuner command-line interface.

     debugtuner compile     -p libpng -c gcc -l O2 [-d pass]... [--profile F]
     debugtuner measure     -p libpng -c gcc -l O2 [-d pass]...
     debugtuner rank        -c gcc -l O2 [-k 10]
     debugtuner tune        -c gcc -l O1 -y 5
     debugtuner search      -c gcc -l O2 --strategy hill-climb --budget 64
     debugtuner passes      -c clang -l O3
     debugtuner suite
     debugtuner run         -p zlib -e fuzz_deflate -i 1,2,3
     debugtuner trace       -p zlib -l O2 -o trace.json [--against old.json]
     debugtuner debug       -p zlib -l Og "break 12" "run 1,2" "print x" c
     debugtuner dump        -p zlib -l O2 [-s functions|lines|locs]
     debugtuner verify      -p zlib -l O3
     debugtuner disasm      -p zlib -l O2 [-f func]
     debugtuner dwarf-size  -p zlib -c gcc
     debugtuner sample      -p 505.mcf -l O2 [-o mcf.prof]
     debugtuner profile     -p zlib -O2 --pipeline gcc [--trace out.json]
     debugtuner pass-trace  -p zlib -l O2
     debugtuner value-check -p zlib -l Og
     debugtuner stats       [counters|suite|server]
     debugtuner experiments --corpus 10000 [--shard 2/4 --partial-dir P]
     debugtuner merge       --partial-dir P
     debugtuner serve       --socket /tmp/dt.sock [--queue-limit 8]

   Every subcommand parses its flags into one [Api.Request.t] and
   dispatches through the single [Api.execute] — in-process by
   default, or in a running daemon with --connect PATH (the daemon's
   caches are shared across all clients, so warm requests are cheap).
   Programs are the built-in test-suite / SPEC-analog / selfcomp
   sources (see `debugtuner suite`), or a path to a MiniC file (read
   client-side; the daemon never touches this machine's paths). *)

open Cmdliner

let die_code code fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "debugtuner: %s\n" s;
      exit (if code = 0 then 2 else code))
    fmt

let die fmt = die_code 2 fmt

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> die "%s" msg
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let write_file path contents =
  match open_out_bin path with
  | exception Sys_error msg -> die "%s" msg
  | oc ->
      output_string oc contents;
      close_out oc

let parse_input_list s =
  if s = "" then []
  else
    String.split_on_char ',' s
    |> List.map (fun v ->
           match int_of_string_opt (String.trim v) with
           | Some i -> i
           | None -> die "not an integer input: %s" v)

(* ------------------------------------------------------------------ *)
(* Shared arguments                                                    *)

let compiler_conv =
  Arg.conv
    ( (fun s ->
        match String.lowercase_ascii s with
        | "gcc" -> Ok Debugtuner.Config.Gcc
        | "clang" -> Ok Debugtuner.Config.Clang
        | _ -> Error (`Msg "compiler must be gcc or clang")),
      fun ppf c ->
        Format.pp_print_string ppf (Debugtuner.Config.compiler_name c) )

let level_conv =
  Arg.conv
    ( (fun s ->
        match String.uppercase_ascii s with
        | "O0" -> Ok Debugtuner.Config.O0
        | "OG" -> Ok Debugtuner.Config.Og
        | "O1" -> Ok Debugtuner.Config.O1
        | "O2" -> Ok Debugtuner.Config.O2
        | "O3" -> Ok Debugtuner.Config.O3
        | _ -> Error (`Msg "level must be O0, Og, O1, O2 or O3")),
      fun ppf l -> Format.pp_print_string ppf (Debugtuner.Config.level_name l)
    )

let compiler_arg =
  Arg.(
    value
    & opt compiler_conv Debugtuner.Config.Gcc
    & info [ "c"; "compiler" ] ~docv:"COMPILER" ~doc:"Pipeline family: gcc or clang.")

let level_arg =
  Arg.(
    value
    & opt level_conv Debugtuner.Config.O2
    & info [ "l"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level (O0, Og, O1, O2, O3).")

let disabled_arg =
  Arg.(
    value & opt_all string []
    & info [ "d"; "disable" ] ~docv:"PASS"
        ~doc:"Disable every instance of $(docv) (repeatable).")

let program_arg =
  Arg.(
    value & opt string "libpng"
    & info [ "p"; "program" ] ~docv:"PROGRAM"
        ~doc:
          "A built-in program name (see $(b,debugtuner suite)) or a path to \
           a MiniC source file.")

(* A file path becomes an inline subject — the source travels in the
   request, so a daemon serves it without reading this machine's
   filesystem. *)
let subject_of name : Api.Request.subject =
  if Sys.file_exists name then
    Api.Request.Inline
      { in_name = Filename.basename name; in_source = read_file name }
  else Api.Request.Named name

let config compiler level disabled =
  Debugtuner.Config.make ~disabled compiler level

(* Adapters from the shared option declarations (Util.Cliopts — one
   source of truth with the bench harness) to cmdliner terms. *)
let cliopt_name (s : Util.Cliopts.spec) =
  String.sub s.Util.Cliopts.o_name 2 (String.length s.Util.Cliopts.o_name - 2)

let cliopt_flag (s : Util.Cliopts.spec) =
  Arg.(value & flag & info [ cliopt_name s ] ~doc:s.Util.Cliopts.o_doc)

let cliopt_file (s : Util.Cliopts.spec) =
  Arg.(
    value
    & opt (some string) None
    & info [ cliopt_name s ]
        ?docv:s.Util.Cliopts.o_docv ~doc:s.Util.Cliopts.o_doc)

let cliopt_int (s : Util.Cliopts.spec) default =
  Arg.(
    value & opt int default
    & info [ cliopt_name s ]
        ?docv:s.Util.Cliopts.o_docv ~doc:s.Util.Cliopts.o_doc)

let cliopt_float_opt (s : Util.Cliopts.spec) =
  Arg.(
    value
    & opt (some float) None
    & info [ cliopt_name s ]
        ?docv:s.Util.Cliopts.o_docv ~doc:s.Util.Cliopts.o_doc)

(* ------------------------------------------------------------------ *)
(* Transport: every subcommand executes its request either in-process
   or in a daemon (--connect PATH), through the same Api.execute.      *)

type transport = { tr_connect : string option; tr_timeout : float option }

let transport_term =
  let make connect timeout = { tr_connect = connect; tr_timeout = timeout } in
  Term.(
    const make
    $ cliopt_file Util.Cliopts.connect
    $ cliopt_float_opt Util.Cliopts.timeout)

let dispatch ?store ?workers (tr : transport) (req : Api.Request.t) :
    Api.Response.t =
  match tr.tr_connect with
  | Some path -> (
      match Api_client.oneshot ?timeout:tr.tr_timeout path req with
      | Ok resp -> resp
      | Error msg -> die "%s" msg)
  | None -> Api.execute (Api.create_ctx ?workers ?store ()) req

(* Surface failures the same way everywhere: one line on stderr,
   non-zero exit — never an exception trace (Api.execute catches). *)
let check_status (resp : Api.Response.t) =
  match resp.Api.Response.status with
  | Api.Response.Ok -> ()
  | Api.Response.Error msg -> die_code resp.Api.Response.exit_code "%s" msg
  | Api.Response.Overloaded ->
      die_code resp.Api.Response.exit_code
        "server overloaded (admission queue full), try again"

let finish (resp : Api.Response.t) =
  if resp.Api.Response.exit_code <> 0 then exit resp.Api.Response.exit_code

(* Run a request and print its canonical text; the common case. *)
let simple ?store tr req =
  let resp = dispatch ?store tr req in
  check_status resp;
  print_string resp.Api.Response.text;
  finish resp

let artifact_of (resp : Api.Response.t) =
  match resp.Api.Response.artifact with
  | Some a -> a
  | None -> die "server returned no artifact"

(* ------------------------------------------------------------------ *)
(* compile: show binary statistics                                     *)

let compile_req ?(profile = None) ?(sanitize = false) program compiler level
    disabled view =
  Api.Request.Compile
    {
      c_subject = subject_of program;
      c_config = config compiler level disabled;
      c_profile = profile;
      c_sanitize = sanitize;
      c_view = view;
    }

let compile_cmd =
  let profile_arg =
    Arg.(
      value & opt (some string) None
      & info [ "profile" ] ~docv:"FILE"
          ~doc:"AutoFDO text profile to optimize with (see $(b,sample)).")
  in
  let run program compiler level disabled profile_file tr =
    let profile = Option.map read_file profile_file in
    simple tr
      (compile_req ~profile program compiler level disabled
         Api.Request.Summary)
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile a program and print binary statistics.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ profile_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* measure: the four metric methods                                    *)

let measure_cmd =
  let run program compiler level disabled tr =
    simple tr (compile_req program compiler level disabled Api.Request.Measure)
  in
  Cmd.v
    (Cmd.info "measure"
       ~doc:"Measure debug-information quality of a configuration.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* rank: the DebugTuner sweep                                          *)

let rank_cmd =
  let k_arg =
    Arg.(value & opt int 10 & info [ "k" ] ~docv:"K" ~doc:"Entries to print.")
  in
  let run compiler level k no_prefix_cache tr =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    simple tr
      (Api.Request.Rank
         { r_config = Debugtuner.Config.make compiler level; r_k = k })
  in
  Cmd.v
    (Cmd.info "rank"
       ~doc:"Rank a level's passes by debug-information impact (Tables V/VI).")
    Term.(
      const run $ compiler_arg $ level_arg $ k_arg
      $ cliopt_flag Util.Cliopts.no_prefix_cache
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* tune: build and evaluate an Ox-dy configuration                     *)

let tune_cmd =
  let y_arg =
    Arg.(value & opt int 5 & info [ "y" ] ~docv:"Y" ~doc:"Passes to disable.")
  in
  let run compiler level y no_prefix_cache tr =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    simple tr
      (Api.Request.Tune
         { t_config = Debugtuner.Config.make compiler level; t_y = y })
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:"Build an Ox-dy configuration and report its debug/perf trade.")
    Term.(
      const run $ compiler_arg $ level_arg $ y_arg
      $ cliopt_flag Util.Cliopts.no_prefix_cache
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* search: Pareto-front search over the 2^N disable-set space          *)

let search_cmd =
  let strategy_conv =
    let parse s =
      match Debugtuner.Tuning.strategy_of_string s with
      | Some st -> Ok st
      | None ->
          Error
            (`Msg
               (Printf.sprintf
                  "unknown strategy %S (expected random, hill-climb or bandit)"
                  s))
    in
    Arg.conv
      ( parse,
        fun ppf st ->
          Format.pp_print_string ppf (Debugtuner.Tuning.strategy_name st) )
  in
  let strategy_arg =
    Arg.(
      value
      & opt strategy_conv Debugtuner.Tuning.Hill_climb
      & info [ "strategy" ] ~docv:"STRATEGY"
          ~doc:"Search strategy: $(b,random), $(b,hill-climb) or $(b,bandit).")
  in
  let budget_arg =
    Arg.(
      value & opt int 64
      & info [ "budget" ] ~docv:"N" ~doc:"Candidate evaluation budget.")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Root seed of the search.")
  in
  let debug_weight_arg =
    Arg.(
      value & opt float 1.0
      & info [ "debug-weight" ] ~docv:"W"
          ~doc:"Objective weight on the debug product.")
  in
  let speed_weight_arg =
    Arg.(
      value & opt float 1.0
      & info [ "speed-weight" ] ~docv:"W"
          ~doc:"Objective weight on the speedup.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the canonical frontier JSON here.")
  in
  let run compiler level strategy budget seed debug_weight speed_weight out
      no_prefix_cache cache_dir no_cache jobs tr =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    let store =
      if no_cache then None
      else Some (Debugtuner.Measure_engine.open_store ?dir:cache_dir ())
    in
    let resp =
      dispatch ?store ~workers:jobs tr
        (Api.Request.Search
           {
             se_config = Debugtuner.Config.make compiler level;
             se_strategy = strategy;
             se_budget = budget;
             se_seed = seed;
             se_debug_weight = debug_weight;
             se_speed_weight = speed_weight;
           })
    in
    check_status resp;
    print_string resp.Api.Response.text;
    (match out with
    | None -> ()
    | Some file ->
        write_file file (artifact_of resp ^ "\n");
        Printf.printf "frontier written to %s\n" file);
    finish resp
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:
         "Search the level's 2^N pass-disable space for the debug/performance \
          Pareto front. Strictly seeded: equal (strategy, budget, seed) runs \
          print byte-identical frontiers at any $(b,--jobs) setting, and a \
          persistent cache ($(b,--cache-dir)) makes killed searches resume \
          where they stopped.")
    Term.(
      const run $ compiler_arg $ level_arg $ strategy_arg $ budget_arg
      $ seed_arg $ debug_weight_arg $ speed_weight_arg $ out_arg
      $ cliopt_flag Util.Cliopts.no_prefix_cache
      $ cliopt_file Util.Cliopts.cache_dir
      $ cliopt_flag Util.Cliopts.no_cache
      $ cliopt_int Util.Cliopts.jobs 1
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* trace: JSON export + offline comparison                             *)

let entry_opt_arg =
  Arg.(
    value & opt (some string) None
    & info [ "e"; "entry" ] ~docv:"FUNC"
        ~doc:"Entry function (default: the program's first harness).")

let trace_cmd =
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS"
          ~doc:"Comma-separated input values.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the JSON here.")
  in
  let diff_arg =
    Arg.(
      value & opt (some string) None
      & info [ "against" ] ~docv:"FILE"
          ~doc:"Compare against a previously exported trace.")
  in
  let run program compiler level disabled entry input out against tr =
    let resp =
      dispatch tr
        (compile_req program compiler level disabled
           (Api.Request.Trace
              { t_entry = entry; t_input = parse_input_list input }))
    in
    check_status resp;
    print_string resp.Api.Response.text;
    let json = artifact_of resp in
    let t = Trace_json.of_string json in
    (match out with
    | Some file ->
        write_file file json;
        Printf.printf "trace written to %s (%d stepped lines)\n" file
          (List.length (Debugger.stepped_lines t))
    | None -> print_string json);
    (match against with
    | None -> ()
    | Some file ->
        let base = Trace_json.of_string (read_file file) in
        let d = Trace_json.compare_traces base t in
        Printf.printf "vs %s:\n  lines lost: [%s]\n  lines gained: [%s]\n"
          file
          (String.concat "; " (List.map string_of_int d.Trace_json.lines_lost))
          (String.concat "; " (List.map string_of_int d.Trace_json.lines_gained));
        List.iter
          (fun (line, vars) ->
            Printf.printf "  line %d lost vars: %s\n" line
              (String.concat ", " (List.map Ir.var_to_string vars)))
          d.Trace_json.vars_lost);
    finish resp
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a debug session and export the trace as JSON (optionally \
          diffing against a previous export).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_opt_arg $ input_arg $ out_arg $ diff_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* dump / verify: the dwarfdump analog                                 *)

let dump_cmd =
  let section_arg =
    Arg.(
      value & opt_all string []
      & info [ "s"; "section" ] ~docv:"SECTION"
          ~doc:
            "Section to print: functions, lines or locs (repeatable; \
             default all).")
  in
  let run program compiler level disabled sections tr =
    simple tr
      (compile_req program compiler level disabled (Api.Request.Dump sections))
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:
         "Pretty-print a binary's DWARF-like sections (the dwarfdump \
          analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ section_arg $ transport_term)

let verify_cmd =
  let run program compiler level disabled tr =
    simple tr (compile_req program compiler level disabled Api.Request.Verify)
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check the structural integrity of a binary's debug info (the \
          llvm-dwarfdump --verify analog); exits 1 on errors.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* value-check: the dynamic value-soundness oracle                     *)

let value_check_cmd =
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS" ~doc:"Comma-separated inputs.")
  in
  let run program compiler level disabled entry input tr =
    simple tr
      (compile_req program compiler level disabled
         (Api.Request.Value_check
            { v_entry = entry; v_input = parse_input_list input }))
  in
  Cmd.v
    (Cmd.info "value-check"
       ~doc:
         "Compare every value the debugger would display against the           reference interpreter (the dynamic soundness oracle); exits 1 on           O0 mismatches.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_opt_arg $ input_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* pass-trace: per-pass IR statistics (the -fdump-tree-all analog)     *)

let pass_trace_cmd =
  let run program compiler level disabled tr =
    simple tr
      (compile_req program compiler level disabled Api.Request.Pass_trace)
  in
  Cmd.v
    (Cmd.info "pass-trace"
       ~doc:
         "Replay the IR pipeline and print per-pass statistics — where           instructions, debug bindings and line attributions go (the           -fdump-tree-all analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* sample: collect an AutoFDO profile and write the text format        *)

let sample_cmd =
  let period_arg =
    Arg.(
      value & opt int 211
      & info [ "period" ] ~docv:"CYCLES" ~doc:"Sampling period in cycles.")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the profile here.")
  in
  let run program compiler level disabled entry period out tr =
    let resp =
      dispatch tr
        (compile_req program compiler level disabled
           (Api.Request.Sample { s_entry = entry; s_period = period }))
    in
    check_status resp;
    print_string resp.Api.Response.text;
    let text = artifact_of resp in
    (match out with
    | Some file ->
        write_file file text;
        Printf.printf "profile written to %s\n" file
    | None -> print_string text);
    finish resp
  in
  Cmd.v
    (Cmd.info "sample"
       ~doc:
         "Run a binary under PC sampling and emit the AutoFDO text profile           (the perf + create_llvm_prof analog). Feed it back with           $(b,compile --profile).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_opt_arg $ period_arg $ out_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* profile: per-pass self-time of one compilation (the observability
   layer's front door)                                                 *)

let profile_cmd =
  let pipeline_arg =
    Arg.(
      value
      & opt compiler_conv Debugtuner.Config.Gcc
      & info [ "pipeline" ] ~docv:"FAMILY"
          ~doc:"Pipeline family to profile: gcc or clang.")
  in
  let o_arg =
    (* Short-only so `-O2` parses as the glued value "2" of option -O,
       matching compiler-driver muscle memory; the conv therefore
       accepts both the bare suffix ("2", "g") and the full spelling
       ("O2", "Og"). *)
    let olevel_conv =
      Arg.conv
        ( (fun s ->
            match String.uppercase_ascii s with
            | "0" | "O0" -> Ok Debugtuner.Config.O0
            | "G" | "OG" -> Ok Debugtuner.Config.Og
            | "1" | "O1" -> Ok Debugtuner.Config.O1
            | "2" | "O2" -> Ok Debugtuner.Config.O2
            | "3" | "O3" -> Ok Debugtuner.Config.O3
            | _ -> Error (`Msg "level must be 0, g, 1, 2 or 3")),
          fun ppf l ->
            Format.pp_print_string ppf (Debugtuner.Config.level_name l) )
    in
    Arg.(
      value
      & opt olevel_conv Debugtuner.Config.O2
      & info [ "O" ] ~docv:"LEVEL"
          ~doc:"Optimization level: -O0, -Og, -O1, -O2, -O3.")
  in
  let run program pipeline level disabled trace sanitize stats tr =
    let resp =
      dispatch tr
        (Api.Request.Profile
           {
             p_subject = subject_of program;
             p_config = Debugtuner.Config.make ~disabled pipeline level;
             p_sanitize = sanitize;
             p_stats = stats;
             p_trace = trace <> None;
           })
    in
    check_status resp;
    print_string resp.Api.Response.text;
    (match trace with
    | None -> ()
    | Some file -> (
        let js = artifact_of resp in
        write_file file js;
        (* The executor already validated span coverage; re-validate
           the bytes we just wrote before declaring victory. *)
        match Obs.validate_chrome js with
        | Error msg ->
            Printf.eprintf "trace validation FAILED: %s\n" msg;
            exit 1
        | Ok v ->
            Printf.printf
              "trace written to %s (%d events, %d named spans, validated)\n"
              file v.Obs.v_events
              (List.length v.Obs.v_spans)));
    finish resp
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile once with the observability layer on and print the           per-pass self-time table (wall time and IR size / debug-info           deltas per pass). With $(b,--trace), also write and validate a           Chrome trace_event JSON of the whole compilation.")
    Term.(
      const run $ program_arg $ pipeline_arg $ o_arg $ disabled_arg
      $ cliopt_file Util.Cliopts.trace
      $ cliopt_flag Util.Cliopts.sanitize
      $ cliopt_flag Util.Cliopts.stats
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* disasm: objdump -dl analog                                          *)

let disasm_cmd =
  let func_arg =
    Arg.(
      value & opt (some string) None
      & info [ "f"; "function" ] ~docv:"FUNC" ~doc:"Only this function.")
  in
  let run program compiler level disabled func tr =
    simple tr
      (compile_req program compiler level disabled (Api.Request.Disasm func))
  in
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Disassemble a binary with interleaved source lines (the objdump           -dl analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ func_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* dwarf-size: encoded debug-info sizes across levels                  *)

let dwarf_size_cmd =
  let run program compiler tr =
    simple tr (compile_req program compiler Debugtuner.Config.O2 []
                 Api.Request.Dwarf_size)
  in
  Cmd.v
    (Cmd.info "dwarf-size"
       ~doc:
         "Encode the debug info with the DWARF wire formats (LEB128,           line-number program, location expressions) and report section           sizes per optimization level.")
    Term.(const run $ program_arg $ compiler_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* debug: scripted debugger sessions (gdb -x analog)                   *)

let debug_cmd =
  let script_arg =
    Arg.(
      value & opt (some string) None
      & info [ "x"; "script" ] ~docv:"FILE"
          ~doc:"Read commands from $(docv), one per line ('#' comments).")
  in
  let commands_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"COMMAND"
          ~doc:
            "Debugger commands, e.g. 'break 6' 'run 1,2' 'print x' \
             'continue'.")
  in
  let run program compiler level disabled entry script commands tr =
    let commands =
      match script with
      | None -> commands
      | Some file ->
          String.split_on_char '\n' (read_file file)
          |> List.map String.trim
          |> List.filter (fun l -> l <> "" && l.[0] <> '#')
    in
    simple tr
      (compile_req program compiler level disabled
         (Api.Request.Debug { d_entry = entry; d_commands = commands }))
  in
  Cmd.v
    (Cmd.info "debug"
       ~doc:
         "Replay a scripted debugger session against an optimized binary \
          (the gdb batch-mode analog).")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_opt_arg $ script_arg $ commands_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* check: pipeline sanitizer + differential oracle                      *)

let check_cmd =
  let fuzz_arg =
    Arg.(
      value & opt int 0
      & info [ "fuzz" ] ~docv:"N"
          ~doc:
            "Also run $(docv) synthetic programs through the differential \
             matrix (in addition to the suite).")
  in
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"First seed for the synthetic programs.")
  in
  let suite_arg =
    Arg.(
      value & flag
      & info [ "no-suite" ]
          ~doc:"Skip the built-in suite; only run the --fuzz programs.")
  in
  let one_program_arg =
    Arg.(
      value & opt (some string) None
      & info [ "p"; "program" ] ~docv:"PROGRAM"
          ~doc:"Check only this program (name or MiniC file path).")
  in
  let run program fuzz seed no_suite cache_dir no_cache no_prefix_cache json
      tr =
    if no_prefix_cache then
      Debugtuner.Measure_engine.prefix_cache_enabled := false;
    (* The oracle's persistent verdict cache is opt-in: only an explicit
       --cache-dir (and no --no-cache) turns it on, so plain [check]
       stays stateless. Warm hits replay the cached sanitizer-counter
       deltas, keeping stdout byte-identical to a cold run. *)
    let store =
      match cache_dir with
      | Some dir when not no_cache ->
          Some (Debugtuner.Measure_engine.open_store ~dir ())
      | _ -> None
    in
    let resp =
      dispatch ?store tr
        (Api.Request.Check
           {
             k_subject = Option.map subject_of program;
             k_fuzz = fuzz;
             k_seed = seed;
             k_suite = not no_suite;
           })
    in
    check_status resp;
    print_string resp.Api.Response.text;
    (match json with
    | None -> ()
    | Some file ->
        (* Counters to a side file — store activity is run-dependent
           (cold vs warm), so it must never reach the byte-stable
           stdout. Only the oracle-relevant rows of the request's
           counter delta belong here: engine/prefix rows vary with
           planner settings. *)
        let rows =
          List.filter
            (fun (n, _) ->
              let pre p =
                String.length n >= String.length p
                && String.sub n 0 (String.length p) = p
              in
              pre "store/" || pre "sanitize/")
            resp.Api.Response.stats
        in
        write_file file
          ("[\n  "
          ^ String.concat ",\n  " (Util.Cliopts.kv_json_rows rows)
          ^ "\n]\n"));
    finish resp
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the pipeline sanitizer and the differential oracle: every \
          program is interpreted (ground truth) and executed at O0-O3 under \
          both pipelines with per-pass checking on; failing synthetic \
          programs are shrunk before reporting. Exits 1 on any failure. With \
          --cache-dir, verdicts persist across runs (warm runs are \
          near-instant and byte-identical).")
    Term.(
      const run $ one_program_arg $ fuzz_arg $ seed_arg $ suite_arg
      $ cliopt_file Util.Cliopts.cache_dir
      $ cliopt_flag Util.Cliopts.no_cache
      $ cliopt_flag Util.Cliopts.no_prefix_cache
      $ cliopt_file Util.Cliopts.json
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* cache: inspect and maintain the persistent artifact store            *)

let cache_cmd =
  let action_arg =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [
                  ("stats", Api.Request.Op_stats);
                  ("clear", Api.Request.Op_clear);
                  ("gc", Api.Request.Op_gc);
                ]))
          None
      & info [] ~docv:"ACTION"
          ~doc:
            "$(docv) is one of: $(b,stats) (entry/byte counts per cache), \
             $(b,clear) (remove every entry), $(b,gc) (drop stale/corrupt \
             entries, enforce the size bound, remove abandoned temp files).")
  in
  let run action cache_dir tr =
    simple tr (Api.Request.Cache_op { o_action = action; o_dir = cache_dir })
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect or maintain the persistent artifact cache (default _cache, \
          or $(b,DEBUGTUNER_CACHE), or --cache-dir).")
    Term.(
      const run $ action_arg $ cliopt_file Util.Cliopts.cache_dir
      $ transport_term)

(* ------------------------------------------------------------------ *)
(* passes / suite / run / stats                                        *)

let passes_cmd =
  let run compiler level tr =
    simple tr (compile_req "libpng" compiler level [] Api.Request.Passes)
  in
  Cmd.v
    (Cmd.info "passes" ~doc:"List the toggleable passes of a level.")
    Term.(const run $ compiler_arg $ level_arg $ transport_term)

let suite_cmd =
  let run tr = simple tr (Api.Request.Stats { s_what = Api.Request.Suite }) in
  Cmd.v
    (Cmd.info "suite" ~doc:"List the built-in programs.")
    Term.(const run $ transport_term)

let stats_cmd =
  let what_arg =
    Arg.(
      value
      & pos 0
          (enum
             [
               ("counters", Api.Request.Counters);
               ("suite", Api.Request.Suite);
               ("server", Api.Request.Server);
             ])
          Api.Request.Counters
      & info [] ~docv:"WHAT"
          ~doc:
            "$(docv) is $(b,counters) (the unified counter table), \
             $(b,suite) (the built-in programs) or $(b,server) (live \
             daemon counters; use with --connect).")
  in
  let run what tr = simple tr (Api.Request.Stats { s_what = what }) in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Print the unified counter table of the executing process — \
          in-process, or a daemon's with $(b,--connect).")
    Term.(const run $ what_arg $ transport_term)

let run_cmd =
  let entry_arg =
    Arg.(
      value & opt string "main"
      & info [ "e"; "entry" ] ~docv:"FUNC" ~doc:"Entry function.")
  in
  let input_arg =
    Arg.(
      value & opt string ""
      & info [ "i"; "input" ] ~docv:"INTS"
          ~doc:"Comma-separated input values for input().")
  in
  let run program compiler level disabled entry input tr =
    simple tr
      (Api.Request.Bench
         {
           b_subject = subject_of program;
           b_config = config compiler level disabled;
           b_action =
             Api.Request.Exec
               { x_entry = entry; x_input = parse_input_list input };
         })
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a program on the VM.")
    Term.(
      const run $ program_arg $ compiler_arg $ level_arg $ disabled_arg
      $ entry_arg $ input_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* experiments / merge: the sharded corpus runner                      *)

(* Both front-ends (this CLI and the bench harness) route --shard
   through the one strict parser in Util.Cliopts. *)
let shard_conv =
  Arg.conv
    ( (fun s ->
        match Util.Cliopts.parse_shard s with
        | Ok pair -> Ok pair
        | Error msg -> Error (`Msg msg)),
      fun ppf (i, n) -> Format.fprintf ppf "%d/%d" i n )

let shard_arg =
  Arg.(
    value
    & opt (some shard_conv) None
    & info
        [ cliopt_name Util.Cliopts.shard ]
        ?docv:Util.Cliopts.shard.Util.Cliopts.o_docv
        ~doc:Util.Cliopts.shard.Util.Cliopts.o_doc)

let partial_dir_arg = cliopt_file Util.Cliopts.partial_dir

(* "gcc-O2", "clang-Og", ... — Config.name spellings. *)
let config_spec_conv =
  let parse s =
    match String.index_opt s '-' with
    | None -> Error (`Msg (Printf.sprintf "bad config %S (expected e.g. gcc-O2)" s))
    | Some dash -> (
        let comp = String.sub s 0 dash
        and level = String.sub s (dash + 1) (String.length s - dash - 1) in
        let compiler =
          match String.lowercase_ascii comp with
          | "gcc" -> Some Debugtuner.Config.Gcc
          | "clang" -> Some Debugtuner.Config.Clang
          | _ -> None
        and level =
          match String.uppercase_ascii level with
          | "O0" -> Some Debugtuner.Config.O0
          | "OG" -> Some Debugtuner.Config.Og
          | "O1" -> Some Debugtuner.Config.O1
          | "O2" -> Some Debugtuner.Config.O2
          | "O3" -> Some Debugtuner.Config.O3
          | _ -> None
        in
        match (compiler, level) with
        | Some c, Some l -> Ok (Debugtuner.Config.make c l)
        | _ ->
            Error
              (`Msg (Printf.sprintf "bad config %S (expected e.g. gcc-O2)" s)))
  in
  Arg.conv
    (parse, fun ppf c -> Format.pp_print_string ppf (Debugtuner.Config.name c))

let partial_file dir (i, n) =
  Filename.concat dir (Printf.sprintf "shard-%d-of-%d.json" i n)

let ensure_dir dir =
  if not (Sys.file_exists dir) then
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let experiments_cmd =
  let seed_arg =
    Arg.(
      value & opt int 1
      & info [ "s"; "seed" ] ~docv:"SEED"
          ~doc:"Seed of the corpus generator (shards must agree).")
  in
  let corpus_arg = cliopt_int Util.Cliopts.corpus 100 in
  let configs_arg =
    Arg.(
      value & opt_all config_spec_conv []
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:
            "Configuration to measure, e.g. gcc-O2 (repeatable, in \
             presentation order; default: the full standard set).")
  in
  let only_arg =
    Arg.(
      value & opt_all string []
      & info [ "only" ] ~docv:"TABLE"
          ~doc:"Render only this table: summary or families (repeatable).")
  in
  let run seed corpus configs only shard partial_dir cache_dir no_cache jobs
      tr =
    let store =
      if no_cache then None
      else Some (Debugtuner.Measure_engine.open_store ?dir:cache_dir ())
    in
    let job =
      Api.Job.make ~tables:only ~configs ~seed ~corpus ?shard ()
    in
    let resp =
      dispatch ?store ~workers:jobs tr (Api.Request.Experiments { e_job = job })
    in
    check_status resp;
    print_string resp.Api.Response.text;
    (match (shard, resp.Api.Response.data) with
    | Some pair, Api.Response.D_partial p ->
        (* The partial file is written client-side: the transport owns
           file I/O, a daemon never touches this machine's paths. *)
        let dir = Option.value partial_dir ~default:"." in
        ensure_dir dir;
        let file = partial_file dir pair in
        write_file file (Api.partial_to_json p ^ "\n");
        Printf.printf "partial written to %s\n" file
    | Some _, _ -> die "server returned no shard partial"
    | None, _ -> ());
    finish resp
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:
         "Measure the generated experiment corpus (synthetic sweeps, fuzz \
          programs, self-compilation subjects) at a configuration set and \
          print the summary tables. With $(b,--shard) I/N, process only \
          one slice and write a partial JSON to $(b,--partial-dir) — run \
          one process per shard against a shared cache directory, then \
          fold the partials with $(b,debugtuner merge) (byte-identical to \
          the single-process run). Interrupted runs resume warm from the \
          cache.")
    Term.(
      const run $ seed_arg $ corpus_arg $ configs_arg $ only_arg $ shard_arg
      $ partial_dir_arg
      $ cliopt_file Util.Cliopts.cache_dir
      $ cliopt_flag Util.Cliopts.no_cache
      $ cliopt_int Util.Cliopts.jobs 1
      $ transport_term)

let merge_cmd =
  let files_arg =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PARTIAL"
          ~doc:"Shard partial JSON files (alternative to --partial-dir).")
  in
  let out_arg =
    Arg.(
      value & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the merged tables here instead of stdout.")
  in
  let run files partial_dir out tr =
    let from_dir =
      match partial_dir with
      | None -> []
      | Some dir -> (
          match Sys.readdir dir with
          | exception Sys_error msg -> die "%s" msg
          | names ->
              Array.to_list names
              |> List.filter (fun n -> Filename.check_suffix n ".json")
              |> List.sort compare
              |> List.map (Filename.concat dir))
    in
    let files = from_dir @ files in
    if files = [] then die "nothing to merge: pass partial files or --partial-dir";
    let partials =
      List.map
        (fun f ->
          match Api.partial_of_json (read_file f) with
          | Ok p -> p
          | Error msg -> die "%s: %s" f msg)
        files
    in
    let resp = dispatch tr (Api.Request.Merge { m_partials = partials }) in
    check_status resp;
    (match out with
    | None -> print_string resp.Api.Response.text
    | Some file ->
        write_file file resp.Api.Response.text;
        Printf.printf "merged tables written to %s\n" file);
    finish resp
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:
         "Fold per-shard partial JSON files (from $(b,experiments --shard)) \
          into the final corpus tables. Refuses incomplete or inconsistent \
          shard sets; the output is byte-identical to an unsharded run of \
          the same job.")
    Term.(
      const run $ files_arg $ partial_dir_arg $ out_arg $ transport_term)

(* ------------------------------------------------------------------ *)
(* serve: the persistent daemon                                        *)

let serve_cmd =
  let socket_arg =
    Arg.(
      required
      & opt (some string) None
      & info
          [ cliopt_name Util.Cliopts.socket ]
          ?docv:Util.Cliopts.socket.Util.Cliopts.o_docv
          ~doc:Util.Cliopts.socket.Util.Cliopts.o_doc)
  in
  let jobs_arg = cliopt_int Util.Cliopts.jobs 1 in
  let run socket listen executors queue_limit jobs cache_dir no_cache =
    if executors < 0 then die "--executors must be >= 0";
    let store =
      if no_cache then None
      else Some (Debugtuner.Measure_engine.open_store ?dir:cache_dir ())
    in
    let ctx = Api.create_ctx ~workers:jobs ?store () in
    let server =
      try Api_server.create ~queue_limit ~executors ?listen ~socket ctx with
      | Unix.Unix_error (err, _, _) ->
          die "cannot listen on %s: %s" socket (Unix.error_message err)
      | Invalid_argument msg -> die "%s" msg
    in
    (* SIGINT/SIGTERM close the listeners; serve returns and we clean
       up on the main flow (no joins inside the signal handler). *)
    let on_signal _ = Api_server.interrupt server in
    Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal);
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ());
    Printf.printf "debugtuner: serving on %s (queue limit %d, %d worker%s, %d executor%s)\n%!"
      socket queue_limit jobs
      (if jobs = 1 then "" else "s")
      executors
      (if executors = 1 then "" else "s");
    (match Api_server.listen_addr server with
    | None -> ()
    | Some (host, port) ->
        (* the actual bound port (ephemeral with --listen HOST:0) *)
        Printf.printf "debugtuner: listening on %s:%d\n%!" host port);
    Api_server.serve server;
    Api_server.stop server;
    Printf.printf "debugtuner: daemon stopped\n%!"
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the persistent service daemon: length-prefixed JSON \
          requests over a Unix-domain socket (plus TCP with --listen), \
          every cache shared process-wide across all clients, requests \
          from different clients executing concurrently on an executor \
          domain pool (--executors). Drive it with --connect on any \
          subcommand. Bounded admission: beyond --queue-limit \
          concurrent requests, clients get an immediate 'overloaded' \
          response.")
    Term.(
      const run $ socket_arg
      $ cliopt_file Util.Cliopts.listen
      $ cliopt_int Util.Cliopts.executors Api_server.default_executors
      $ cliopt_int Util.Cliopts.queue_limit 8
      $ jobs_arg
      $ cliopt_file Util.Cliopts.cache_dir
      $ cliopt_flag Util.Cliopts.no_cache)

let () =
  let info =
    Cmd.info "debugtuner" ~version:"1.0.0"
      ~doc:
        "Measure and tune the debug-information quality of optimized \
         binaries (DebugTuner reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ compile_cmd; measure_cmd; rank_cmd; tune_cmd; search_cmd; passes_cmd; suite_cmd; run_cmd; trace_cmd; dump_cmd; verify_cmd; debug_cmd; dwarf_size_cmd; disasm_cmd; sample_cmd; profile_cmd; pass_trace_cmd; value_check_cmd; check_cmd; cache_cmd; stats_cmd; experiments_cmd; merge_cmd; serve_cmd ]))
