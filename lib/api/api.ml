(** The one typed Request/Response API every front-end dispatches
    through.

    A {!Request.t} is a serializable description of one unit of work —
    exactly what a CLI invocation's flags encode today: a subject
    program, a {!Config.t}, and per-kind options. {!execute} turns a
    request into a {!Response.t}: a status, the canonical rendered
    report (the bytes the CLI prints), an optional secondary artifact
    (a trace JSON, an AutoFDO profile), and the per-request counter
    delta of {!Measure_engine.stats_table}. The CLI is one transport
    over this module (parse flags, execute, print); the
    [debugtuner serve] daemon ([Api_server]) is a second one
    (length-prefixed JSON over a Unix socket, see [Framing]) — both
    produce byte-identical output for the same request, asserted in
    ci.sh.

    The JSON codecs are canonical (fixed field order, no whitespace),
    stamped with {!version}, tolerate unknown fields on decode, and
    reject documents stamped with any other version. *)

module Config = Debugtuner.Config
module Measure_engine = Debugtuner.Measure_engine
module Evaluation = Debugtuner.Evaluation
module Experiments = Debugtuner.Experiments
module Toolchain = Debugtuner.Toolchain
module Ranking = Debugtuner.Ranking
module Tuning = Debugtuner.Tuning
module Autofdo = Debugtuner.Autofdo
module Value_oracle = Debugtuner.Value_oracle

let version = 1

(* ------------------------------------------------------------------ *)
(* Jobs: the sharded corpus-experiment description                      *)

(** A complete, serializable description of one corpus-experiment run —
    what to measure (corpus spec + configuration set), what to render
    (table selection), and which slice of the work this process owns
    (shard spec). The same job value drives every front-end: the CLI
    runs it in-process, [--connect] ships it to the daemon, the bench
    harness and the shard workers build it programmatically. Because
    the whole description travels in the request, [n] workers given the
    same job (with different shard indices) partition the identical
    corpus without any other coordination channel. *)
module Job = struct
  type t = {
    j_tables : string list;
        (** which final tables to render ({!table_names}); [[]] = all.
            Ignored by sharded runs, which return rows, not tables. *)
    j_seed : int;  (** corpus generator seed *)
    j_corpus : int;  (** corpus size (number of programs) *)
    j_configs : Config.t list;
        (** configurations to measure, in presentation order;
            [[]] = the standard set ({!Experiments.all_standard_configs}) *)
    j_shard : (int * int) option;
        (** [Some (i, n)]: run only shard [i] of [n] (1-based,
            [1 <= i <= n]) and return a {!Partial.t} instead of tables *)
  }

  let table_names = [ "summary"; "families" ]
  (** The renderable corpus tables, in {!Experiments.corpus_tables}
      order. *)

  let make ?(tables = []) ?(configs = []) ?shard ~seed ~corpus () =
    { j_tables = tables; j_seed = seed; j_corpus = corpus;
      j_configs = configs; j_shard = shard }
end

(** One shard's result: the row fragment it computed plus everything
    needed to validate a merge (corpus identity, shard arithmetic,
    configuration order). This is at once the [Response] payload of a
    sharded [Experiments] request, the element type of a [Merge]
    request, and — via {!partial_to_json} — the canonical partial-file
    format shard workers leave in [--partial-dir]. *)
module Partial = struct
  type t = {
    pt_shard : int;  (** this shard's 1-based index *)
    pt_shards : int;  (** total shard count *)
    pt_seed : int;
    pt_corpus : int;  (** the job's corpus spec, echoed *)
    pt_digest : string;
        (** {!Experiments.corpus_digest} — merge refuses partials that
            disagree, or that disagree with this build's generator *)
    pt_configs : string list;  (** {!Config.name}s in presentation order *)
    pt_programs : int;  (** corpus entries this shard measured *)
    pt_rows : Experiments.corpus_row list;
  }
end

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

module Request = struct
  (** What to operate on. File I/O stays in the transport: a CLI path
      argument is read client-side into [Inline], so the daemon never
      touches a client's filesystem. *)
  type subject =
    | Named of string  (** a built-in suite / SPEC / selfcomp program *)
    | Inline of { in_name : string; in_source : string }

  (** The compile-family sub-modes: everything derived from one
      compiled binary (the CLI's compile/measure/dump/verify/disasm/
      dwarf-size/passes/pass-trace/trace/debug/sample/value-check). *)
  type view =
    | Summary
    | Measure
    | Dump of string list  (** sections; [[]] = all *)
    | Verify
    | Disasm of string option
    | Dwarf_size
    | Passes
    | Pass_trace
    | Trace of { t_entry : string option; t_input : int list }
    | Debug of { d_entry : string option; d_commands : string list }
    | Sample of { s_entry : string option; s_period : int }
    | Value_check of { v_entry : string option; v_input : int list }

  type bench_action =
    | Exec of { x_entry : string; x_input : int list }
    | Cost

  type cache_action = Op_stats | Op_clear | Op_gc

  type stats_what = Counters | Suite | Server

  type t =
    | Compile of {
        c_subject : subject;
        c_config : Config.t;
        c_profile : string option;  (** AutoFDO text profile, inline *)
        c_sanitize : bool;
        c_view : view;
      }
    | Rank of { r_config : Config.t; r_k : int }
    | Tune of { t_config : Config.t; t_y : int }
    | Search of {
        se_config : Config.t;  (** the base level whose 2^N space to search *)
        se_strategy : Tuning.strategy;
        se_budget : int;
        se_seed : int;
        se_debug_weight : float;
        se_speed_weight : float;
      }
    | Check of {
        k_subject : subject option;
        k_fuzz : int;
        k_seed : int;
        k_suite : bool;
      }
    | Profile of {
        p_subject : subject;
        p_config : Config.t;
        p_sanitize : bool;
        p_stats : bool;
        p_trace : bool;  (** capture a Chrome trace as the artifact *)
      }
    | Bench of {
        b_subject : subject;
        b_config : Config.t;
        b_action : bench_action;
      }
    | Cache_op of { o_action : cache_action; o_dir : string option }
    | Stats of { s_what : stats_what }
    | Experiments of { e_job : Job.t }
        (** run a corpus-experiment job (or one shard of it) *)
    | Merge of { m_partials : Partial.t list }
        (** fold a complete set of shard partials into the final
            tables — byte-identical to the unsharded run *)

  let subject_name = function
    | Named n -> n
    | Inline { in_name; _ } -> in_name
end

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)

module Response = struct
  type status = Ok | Error of string | Overloaded

  (** The typed result payload, for clients that want structure rather
      than the rendered [text]. *)
  type data =
    | D_none
    | D_compiled of {
        dc_program : string;
        dc_config : string;
        dc_instrs : int;
        dc_funcs : int;
        dc_text_digest : string;
      }
    | D_ranked of {
        dr_config : string;
        dr_top : (string * float * float) list;
            (** pass, +% geomean increment, average rank *)
      }
    | D_tuned of {
        dt_config : string;
        dt_disabled : string list;
        dt_debug : float;
        dt_speedup : float;
      }
    | D_frontier of {
        df_config : string;  (** base level searched *)
        df_strategy : string;
        df_seed : int;
        df_budget : int;
        df_evaluated : int;
        df_dominated : int;
        df_front : (string * float * float) list;
            (** config name, debug product, speedup — the Pareto front,
                sorted by (debug, speedup, name) *)
      }
    | D_checked of {
        dk_programs : int;
        dk_configs : int;
        dk_runs : int;
        dk_skipped : int;
        dk_failures : int;
      }
    | D_cost of int
    | D_counters of (string * int) list
    | D_partial of Partial.t
        (** a sharded [Experiments] run's typed result fragment *)

  type t = {
    status : status;
    text : string;
        (** canonical rendering — exactly what the CLI prints on stdout *)
    artifact : string option;
        (** secondary document (trace JSON, AutoFDO profile text); the
            transport decides where it goes ([-o FILE], stdout, ...) *)
    data : data;
    stats : (string * int) list;
        (** this request's own counter delta of
            {!Measure_engine.stats_table} — snapshot before, snapshot
            after, subtract — so overlapping sessions never
            double-count *)
    exit_code : int;
  }

  let ok ?(artifact = None) ?(data = D_none) ?(exit_code = 0) text stats =
    { status = Ok; text; artifact; data; stats; exit_code }
end

(* ------------------------------------------------------------------ *)
(* JSON codecs                                                         *)

module J = Api_json

exception Decode_error of string

module Codec = struct
  let dfail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

  let need name = function
    | Some v -> v
    | None -> dfail "missing field %S" name

  let get j name = need name (J.field name j)
  let get_str j name = need name (J.str (get j name))
  let get_int j name = need name (J.int (get j name))
  let get_num j name = need name (J.num (get j name))
  let get_bool j name = need name (J.bool (get j name))
  let get_arr j name = need name (J.arr (get j name))

  let opt_str j name =
    match J.field name j with
    | None | Some J.Null -> None
    | Some v -> Some (need name (J.str v))

  let str_list j name =
    List.map (fun v -> need name (J.str v)) (get_arr j name)

  let int_list j name =
    List.map (fun v -> need name (J.int v)) (get_arr j name)

  let check_version j =
    match J.field "v" j with
    | Some (J.Num f) when int_of_float f = version -> ()
    | Some (J.Num f) ->
        dfail "unsupported api version %d (this build speaks %d)"
          (int_of_float f) version
    | _ -> dfail "missing version stamp \"v\""

  (* -- Config.t -- *)

  let config_to_json (c : Config.t) =
    J.Obj
      [
        ("compiler", J.Str (Config.compiler_name c.Config.compiler));
        ("level", J.Str (Config.level_name c.Config.level));
        ("disabled", J.Arr (List.map (fun p -> J.Str p) c.Config.disabled));
      ]

  let compiler_of_string = function
    | "gcc" -> Config.Gcc
    | "clang" -> Config.Clang
    | s -> dfail "unknown compiler %S" s

  let level_of_string = function
    | "O0" -> Config.O0
    | "Og" -> Config.Og
    | "O1" -> Config.O1
    | "O2" -> Config.O2
    | "O3" -> Config.O3
    | s -> dfail "unknown level %S" s

  let config_of_json j =
    Config.make
      ~disabled:(str_list j "disabled")
      (compiler_of_string (get_str j "compiler"))
      (level_of_string (get_str j "level"))

  (* -- subjects -- *)

  let subject_to_json = function
    | Request.Named n -> J.Obj [ ("name", J.Str n) ]
    | Request.Inline { in_name; in_source } ->
        J.Obj [ ("name", J.Str in_name); ("source", J.Str in_source) ]

  let subject_of_json j =
    let name = get_str j "name" in
    match J.field "source" j with
    | None | Some J.Null -> Request.Named name
    | Some v ->
        Request.Inline
          { in_name = name; in_source = need "source" (J.str v) }

  (* -- views -- *)

  let opt_str_field name = function
    | None -> (name, J.Null)
    | Some s -> (name, J.Str s)

  let view_to_json (v : Request.view) =
    match v with
    | Request.Summary -> J.Obj [ ("kind", J.Str "summary") ]
    | Request.Measure -> J.Obj [ ("kind", J.Str "measure") ]
    | Request.Dump sections ->
        J.Obj
          [
            ("kind", J.Str "dump");
            ("sections", J.Arr (List.map (fun s -> J.Str s) sections));
          ]
    | Request.Verify -> J.Obj [ ("kind", J.Str "verify") ]
    | Request.Disasm func ->
        J.Obj [ ("kind", J.Str "disasm"); opt_str_field "func" func ]
    | Request.Dwarf_size -> J.Obj [ ("kind", J.Str "dwarf-size") ]
    | Request.Passes -> J.Obj [ ("kind", J.Str "passes") ]
    | Request.Pass_trace -> J.Obj [ ("kind", J.Str "pass-trace") ]
    | Request.Trace { t_entry; t_input } ->
        J.Obj
          [
            ("kind", J.Str "trace");
            opt_str_field "entry" t_entry;
            ("input", J.Arr (List.map (fun i -> J.Num (float_of_int i)) t_input));
          ]
    | Request.Debug { d_entry; d_commands } ->
        J.Obj
          [
            ("kind", J.Str "debug");
            opt_str_field "entry" d_entry;
            ("commands", J.Arr (List.map (fun s -> J.Str s) d_commands));
          ]
    | Request.Sample { s_entry; s_period } ->
        J.Obj
          [
            ("kind", J.Str "sample");
            opt_str_field "entry" s_entry;
            ("period", J.Num (float_of_int s_period));
          ]
    | Request.Value_check { v_entry; v_input } ->
        J.Obj
          [
            ("kind", J.Str "value-check");
            opt_str_field "entry" v_entry;
            ("input", J.Arr (List.map (fun i -> J.Num (float_of_int i)) v_input));
          ]

  let view_of_json j : Request.view =
    match get_str j "kind" with
    | "summary" -> Request.Summary
    | "measure" -> Request.Measure
    | "dump" -> Request.Dump (str_list j "sections")
    | "verify" -> Request.Verify
    | "disasm" -> Request.Disasm (opt_str j "func")
    | "dwarf-size" -> Request.Dwarf_size
    | "passes" -> Request.Passes
    | "pass-trace" -> Request.Pass_trace
    | "trace" ->
        Request.Trace { t_entry = opt_str j "entry"; t_input = int_list j "input" }
    | "debug" ->
        Request.Debug
          { d_entry = opt_str j "entry"; d_commands = str_list j "commands" }
    | "sample" ->
        Request.Sample
          { s_entry = opt_str j "entry"; s_period = get_int j "period" }
    | "value-check" ->
        Request.Value_check
          { v_entry = opt_str j "entry"; v_input = int_list j "input" }
    | k -> dfail "unknown view kind %S" k

  (* -- jobs and shard partials -- *)

  let shard_field = function
    | None -> ("shard", J.Null)
    | Some (i, n) ->
        ( "shard",
          J.Obj
            [
              ("index", J.Num (float_of_int i));
              ("count", J.Num (float_of_int n));
            ] )

  let shard_of_json j =
    match J.field "shard" j with
    | None | Some J.Null -> None
    | Some s ->
        let i = get_int s "index" and n = get_int s "count" in
        if 1 <= i && i <= n then Some (i, n)
        else dfail "invalid shard %d/%d (need 1 <= index <= count)" i n

  let job_to_json (job : Job.t) =
    J.Obj
      [
        ("tables", J.Arr (List.map (fun s -> J.Str s) job.Job.j_tables));
        ("seed", J.Num (float_of_int job.Job.j_seed));
        ("corpus", J.Num (float_of_int job.Job.j_corpus));
        ("configs", J.Arr (List.map config_to_json job.Job.j_configs));
        shard_field job.Job.j_shard;
      ]

  let job_of_json j : Job.t =
    {
      Job.j_tables = str_list j "tables";
      j_seed = get_int j "seed";
      j_corpus = get_int j "corpus";
      j_configs = List.map config_of_json (get_arr j "configs");
      j_shard = shard_of_json j;
    }

  (* Metric fields round-trip exactly: the canonical writer prints
     non-integral floats with %.17g, so a merge of JSON-decoded rows
     renders byte-identically to the single-process run. *)
  let corpus_row_to_json (r : Experiments.corpus_row) =
    J.Obj
      [
        ("index", J.Num (float_of_int r.Experiments.cr_index));
        ("program", J.Str r.Experiments.cr_program);
        ("family", J.Str r.Experiments.cr_family);
        ("config", J.Str r.Experiments.cr_config);
        ("avail", J.Num r.Experiments.cr_avail);
        ("cov", J.Num r.Experiments.cr_cov);
        ("product", J.Num r.Experiments.cr_product);
      ]

  let corpus_row_of_json j : Experiments.corpus_row =
    {
      Experiments.cr_index = get_int j "index";
      cr_program = get_str j "program";
      cr_family = get_str j "family";
      cr_config = get_str j "config";
      cr_avail = get_num j "avail";
      cr_cov = get_num j "cov";
      cr_product = get_num j "product";
    }

  (* The partial carries its own version stamp: the same document is a
     standalone file in --partial-dir, so it must self-describe like
     any top-level request/response. *)
  let partial_to_json (p : Partial.t) =
    J.Obj
      [
        ("v", J.Num (float_of_int version));
        ("shard", J.Num (float_of_int p.Partial.pt_shard));
        ("shards", J.Num (float_of_int p.Partial.pt_shards));
        ("seed", J.Num (float_of_int p.Partial.pt_seed));
        ("corpus", J.Num (float_of_int p.Partial.pt_corpus));
        ("digest", J.Str p.Partial.pt_digest);
        ("configs", J.Arr (List.map (fun s -> J.Str s) p.Partial.pt_configs));
        ("programs", J.Num (float_of_int p.Partial.pt_programs));
        ("rows", J.Arr (List.map corpus_row_to_json p.Partial.pt_rows));
      ]

  let partial_of_json j : Partial.t =
    check_version j;
    let p =
      {
        Partial.pt_shard = get_int j "shard";
        pt_shards = get_int j "shards";
        pt_seed = get_int j "seed";
        pt_corpus = get_int j "corpus";
        pt_digest = get_str j "digest";
        pt_configs = str_list j "configs";
        pt_programs = get_int j "programs";
        pt_rows = List.map corpus_row_of_json (get_arr j "rows");
      }
    in
    if not (1 <= p.Partial.pt_shard && p.Partial.pt_shard <= p.Partial.pt_shards)
    then
      dfail "invalid partial shard %d/%d (need 1 <= shard <= shards)"
        p.Partial.pt_shard p.Partial.pt_shards;
    p

  (* -- requests -- *)

  let request_to_json (r : Request.t) =
    let v = ("v", J.Num (float_of_int version)) in
    match r with
    | Request.Compile { c_subject; c_config; c_profile; c_sanitize; c_view } ->
        J.Obj
          [
            v;
            ("kind", J.Str "compile");
            ("subject", subject_to_json c_subject);
            ("config", config_to_json c_config);
            opt_str_field "profile" c_profile;
            ("sanitize", J.Bool c_sanitize);
            ("view", view_to_json c_view);
          ]
    | Request.Rank { r_config; r_k } ->
        J.Obj
          [
            v;
            ("kind", J.Str "rank");
            ("config", config_to_json r_config);
            ("k", J.Num (float_of_int r_k));
          ]
    | Request.Tune { t_config; t_y } ->
        J.Obj
          [
            v;
            ("kind", J.Str "tune");
            ("config", config_to_json t_config);
            ("y", J.Num (float_of_int t_y));
          ]
    | Request.Search
        {
          se_config;
          se_strategy;
          se_budget;
          se_seed;
          se_debug_weight;
          se_speed_weight;
        } ->
        J.Obj
          [
            v;
            ("kind", J.Str "search");
            ("config", config_to_json se_config);
            ("strategy", J.Str (Tuning.strategy_name se_strategy));
            ("budget", J.Num (float_of_int se_budget));
            ("seed", J.Num (float_of_int se_seed));
            ("debug_weight", J.Num se_debug_weight);
            ("speed_weight", J.Num se_speed_weight);
          ]
    | Request.Check { k_subject; k_fuzz; k_seed; k_suite } ->
        J.Obj
          [
            v;
            ("kind", J.Str "check");
            ( "subject",
              match k_subject with
              | None -> J.Null
              | Some s -> subject_to_json s );
            ("fuzz", J.Num (float_of_int k_fuzz));
            ("seed", J.Num (float_of_int k_seed));
            ("suite", J.Bool k_suite);
          ]
    | Request.Profile { p_subject; p_config; p_sanitize; p_stats; p_trace } ->
        J.Obj
          [
            v;
            ("kind", J.Str "profile");
            ("subject", subject_to_json p_subject);
            ("config", config_to_json p_config);
            ("sanitize", J.Bool p_sanitize);
            ("stats", J.Bool p_stats);
            ("trace", J.Bool p_trace);
          ]
    | Request.Bench { b_subject; b_config; b_action } ->
        let action =
          match b_action with
          | Request.Cost -> J.Obj [ ("kind", J.Str "cost") ]
          | Request.Exec { x_entry; x_input } ->
              J.Obj
                [
                  ("kind", J.Str "exec");
                  ("entry", J.Str x_entry);
                  ( "input",
                    J.Arr (List.map (fun i -> J.Num (float_of_int i)) x_input)
                  );
                ]
        in
        J.Obj
          [
            v;
            ("kind", J.Str "bench");
            ("subject", subject_to_json b_subject);
            ("config", config_to_json b_config);
            ("action", action);
          ]
    | Request.Cache_op { o_action; o_dir } ->
        let op =
          match o_action with
          | Request.Op_stats -> "stats"
          | Request.Op_clear -> "clear"
          | Request.Op_gc -> "gc"
        in
        J.Obj
          [ v; ("kind", J.Str "cache"); ("op", J.Str op); opt_str_field "dir" o_dir ]
    | Request.Stats { s_what } ->
        let what =
          match s_what with
          | Request.Counters -> "counters"
          | Request.Suite -> "suite"
          | Request.Server -> "server"
        in
        J.Obj [ v; ("kind", J.Str "stats"); ("what", J.Str what) ]
    | Request.Experiments { e_job } ->
        J.Obj [ v; ("kind", J.Str "experiments"); ("job", job_to_json e_job) ]
    | Request.Merge { m_partials } ->
        J.Obj
          [
            v;
            ("kind", J.Str "merge");
            ("partials", J.Arr (List.map partial_to_json m_partials));
          ]

  let request_of_json j : Request.t =
    check_version j;
    match get_str j "kind" with
    | "compile" ->
        Request.Compile
          {
            c_subject = subject_of_json (get j "subject");
            c_config = config_of_json (get j "config");
            c_profile = opt_str j "profile";
            c_sanitize = get_bool j "sanitize";
            c_view = view_of_json (get j "view");
          }
    | "rank" ->
        Request.Rank
          { r_config = config_of_json (get j "config"); r_k = get_int j "k" }
    | "tune" ->
        Request.Tune
          { t_config = config_of_json (get j "config"); t_y = get_int j "y" }
    | "search" ->
        let s = get_str j "strategy" in
        Request.Search
          {
            se_config = config_of_json (get j "config");
            se_strategy =
              (match Tuning.strategy_of_string s with
              | Some st -> st
              | None -> dfail "unknown search strategy %S" s);
            se_budget = get_int j "budget";
            se_seed = get_int j "seed";
            se_debug_weight = get_num j "debug_weight";
            se_speed_weight = get_num j "speed_weight";
          }
    | "check" ->
        Request.Check
          {
            k_subject =
              (match J.field "subject" j with
              | None | Some J.Null -> None
              | Some s -> Some (subject_of_json s));
            k_fuzz = get_int j "fuzz";
            k_seed = get_int j "seed";
            k_suite = get_bool j "suite";
          }
    | "profile" ->
        Request.Profile
          {
            p_subject = subject_of_json (get j "subject");
            p_config = config_of_json (get j "config");
            p_sanitize = get_bool j "sanitize";
            p_stats = get_bool j "stats";
            p_trace = get_bool j "trace";
          }
    | "bench" ->
        let action = get j "action" in
        Request.Bench
          {
            b_subject = subject_of_json (get j "subject");
            b_config = config_of_json (get j "config");
            b_action =
              (match get_str action "kind" with
              | "cost" -> Request.Cost
              | "exec" ->
                  Request.Exec
                    {
                      x_entry = get_str action "entry";
                      x_input = int_list action "input";
                    }
              | k -> dfail "unknown bench action %S" k);
          }
    | "cache" ->
        Request.Cache_op
          {
            o_action =
              (match get_str j "op" with
              | "stats" -> Request.Op_stats
              | "clear" -> Request.Op_clear
              | "gc" -> Request.Op_gc
              | o -> dfail "unknown cache op %S" o);
            o_dir = opt_str j "dir";
          }
    | "stats" ->
        Request.Stats
          {
            s_what =
              (match get_str j "what" with
              | "counters" -> Request.Counters
              | "suite" -> Request.Suite
              | "server" -> Request.Server
              | w -> dfail "unknown stats selector %S" w);
          }
    | "experiments" ->
        Request.Experiments { e_job = job_of_json (get j "job") }
    | "merge" ->
        Request.Merge
          { m_partials = List.map partial_of_json (get_arr j "partials") }
    | k -> dfail "unknown request kind %S" k

  (* -- responses -- *)

  let stats_to_json rows =
    J.Arr
      (List.map
         (fun (n, v) ->
           J.Obj [ ("name", J.Str n); ("value", J.Num (float_of_int v)) ])
         rows)

  let stats_of_json j name =
    List.map
      (fun row -> (get_str row "name", get_int row "value"))
      (get_arr j name)

  let data_to_json (d : Response.data) =
    match d with
    | Response.D_none -> J.Obj [ ("kind", J.Str "none") ]
    | Response.D_compiled
        { dc_program; dc_config; dc_instrs; dc_funcs; dc_text_digest } ->
        J.Obj
          [
            ("kind", J.Str "compiled");
            ("program", J.Str dc_program);
            ("config", J.Str dc_config);
            ("instrs", J.Num (float_of_int dc_instrs));
            ("funcs", J.Num (float_of_int dc_funcs));
            ("text_digest", J.Str dc_text_digest);
          ]
    | Response.D_ranked { dr_config; dr_top } ->
        J.Obj
          [
            ("kind", J.Str "ranked");
            ("config", J.Str dr_config);
            ( "top",
              J.Arr
                (List.map
                   (fun (pass, pct, rank) ->
                     J.Obj
                       [
                         ("pass", J.Str pass);
                         ("pct", J.Num pct);
                         ("rank", J.Num rank);
                       ])
                   dr_top) );
          ]
    | Response.D_tuned { dt_config; dt_disabled; dt_debug; dt_speedup } ->
        J.Obj
          [
            ("kind", J.Str "tuned");
            ("config", J.Str dt_config);
            ("disabled", J.Arr (List.map (fun s -> J.Str s) dt_disabled));
            ("debug", J.Num dt_debug);
            ("speedup", J.Num dt_speedup);
          ]
    | Response.D_frontier
        {
          df_config;
          df_strategy;
          df_seed;
          df_budget;
          df_evaluated;
          df_dominated;
          df_front;
        } ->
        J.Obj
          [
            ("kind", J.Str "frontier");
            ("config", J.Str df_config);
            ("strategy", J.Str df_strategy);
            ("seed", J.Num (float_of_int df_seed));
            ("budget", J.Num (float_of_int df_budget));
            ("evaluated", J.Num (float_of_int df_evaluated));
            ("dominated", J.Num (float_of_int df_dominated));
            ( "front",
              J.Arr
                (List.map
                   (fun (name, debug, speedup) ->
                     J.Obj
                       [
                         ("name", J.Str name);
                         ("debug", J.Num debug);
                         ("speedup", J.Num speedup);
                       ])
                   df_front) );
          ]
    | Response.D_checked { dk_programs; dk_configs; dk_runs; dk_skipped; dk_failures }
      ->
        J.Obj
          [
            ("kind", J.Str "checked");
            ("programs", J.Num (float_of_int dk_programs));
            ("configs", J.Num (float_of_int dk_configs));
            ("runs", J.Num (float_of_int dk_runs));
            ("skipped", J.Num (float_of_int dk_skipped));
            ("failures", J.Num (float_of_int dk_failures));
          ]
    | Response.D_cost c ->
        J.Obj [ ("kind", J.Str "cost"); ("cost", J.Num (float_of_int c)) ]
    | Response.D_counters rows ->
        J.Obj [ ("kind", J.Str "counters"); ("rows", stats_to_json rows) ]
    | Response.D_partial p ->
        J.Obj [ ("kind", J.Str "partial"); ("partial", partial_to_json p) ]

  let data_of_json j : Response.data =
    match get_str j "kind" with
    | "none" -> Response.D_none
    | "compiled" ->
        Response.D_compiled
          {
            dc_program = get_str j "program";
            dc_config = get_str j "config";
            dc_instrs = get_int j "instrs";
            dc_funcs = get_int j "funcs";
            dc_text_digest = get_str j "text_digest";
          }
    | "ranked" ->
        Response.D_ranked
          {
            dr_config = get_str j "config";
            dr_top =
              List.map
                (fun row ->
                  (get_str row "pass", get_num row "pct", get_num row "rank"))
                (get_arr j "top");
          }
    | "tuned" ->
        Response.D_tuned
          {
            dt_config = get_str j "config";
            dt_disabled = str_list j "disabled";
            dt_debug = get_num j "debug";
            dt_speedup = get_num j "speedup";
          }
    | "frontier" ->
        Response.D_frontier
          {
            df_config = get_str j "config";
            df_strategy = get_str j "strategy";
            df_seed = get_int j "seed";
            df_budget = get_int j "budget";
            df_evaluated = get_int j "evaluated";
            df_dominated = get_int j "dominated";
            df_front =
              List.map
                (fun row ->
                  ( get_str row "name",
                    get_num row "debug",
                    get_num row "speedup" ))
                (get_arr j "front");
          }
    | "checked" ->
        Response.D_checked
          {
            dk_programs = get_int j "programs";
            dk_configs = get_int j "configs";
            dk_runs = get_int j "runs";
            dk_skipped = get_int j "skipped";
            dk_failures = get_int j "failures";
          }
    | "cost" -> Response.D_cost (get_int j "cost")
    | "counters" -> Response.D_counters (stats_of_json j "rows")
    | "partial" -> Response.D_partial (partial_of_json (get j "partial"))
    | k -> dfail "unknown data kind %S" k

  let response_to_json (r : Response.t) =
    let status =
      match r.Response.status with
      | Response.Ok -> J.Str "ok"
      | Response.Overloaded -> J.Str "overloaded"
      | Response.Error msg -> J.Obj [ ("error", J.Str msg) ]
    in
    J.Obj
      [
        ("v", J.Num (float_of_int version));
        ("status", status);
        ("exit", J.Num (float_of_int r.Response.exit_code));
        ("text", J.Str r.Response.text);
        ( "artifact",
          match r.Response.artifact with None -> J.Null | Some s -> J.Str s );
        ("data", data_to_json r.Response.data);
        ("stats", stats_to_json r.Response.stats);
      ]

  let response_of_json j : Response.t =
    check_version j;
    let status =
      match get j "status" with
      | J.Str "ok" -> Response.Ok
      | J.Str "overloaded" -> Response.Overloaded
      | J.Obj _ as o -> Response.Error (get_str o "error")
      | _ -> dfail "bad status"
    in
    {
      Response.status;
      exit_code = get_int j "exit";
      text = get_str j "text";
      artifact =
        (match J.field "artifact" j with
        | None | Some J.Null -> None
        | Some v -> Some (need "artifact" (J.str v)));
      data = data_of_json (get j "data");
      stats = stats_of_json j "stats";
    }
end

let decode f text =
  match f (J.parse text) with
  | v -> Ok v
  | exception Decode_error msg -> Error msg
  | exception J.Parse_error msg -> Error ("malformed JSON: " ^ msg)

let request_to_json r = J.to_string (Codec.request_to_json r)
let request_of_json text = decode Codec.request_of_json text
let response_to_json r = J.to_string (Codec.response_to_json r)
let response_of_json text = decode Codec.response_of_json text

let partial_to_json p = J.to_string (Codec.partial_to_json p)
(** The canonical shard-partial file format ([--partial-dir]). *)

let partial_of_json text = decode Codec.partial_of_json text

(* ------------------------------------------------------------------ *)
(* Execution context                                                   *)

(** One context per process: the shared measurement engine, the
    optional persistent store behind it, and the prepared-subject cache.
    The daemon keeps a single context alive across every client, so the
    millionth request hits warm memo tables; the CLI builds one per
    invocation.

    {!execute} is safe to call from many threads (or executor domains)
    at once on a shared context: the engine's memo tables and the disk
    store are domain-safe by construction, per-request counters come
    from scoped sinks (see {!Measure_engine.with_request_sink}) rather
    than global snapshots, and the two remaining serialization points
    are narrow — [prepared_mu] guards the prepared-subject cache, and a
    global mutex serializes [profile] requests (the [Obs] session is
    process-wide). *)
type ctx = {
  engine : Measure_engine.t;
  store : Engine.Disk_store.t option;
  prepared : (string, Evaluation.prepared) Hashtbl.t;
  prepared_mu : Mutex.t;
}

let create_ctx ?(workers = 1) ?store () =
  {
    engine = Measure_engine.create ~workers ?store ();
    store;
    prepared = Hashtbl.create 16;
    prepared_mu = Mutex.create ();
  }

(** Server-introspection hook: [Api_server] installs its live counters
    here so a [Stats Server] request can be answered without a
    dependency cycle. *)
let server_counters_hook : (unit -> (string * int) list) ref = ref (fun () -> [])

(* ------------------------------------------------------------------ *)
(* Executors (the former CLI subcommand bodies, rendering to buffers)  *)

let bpf = Printf.bprintf

let subject_program (s : Request.subject) : Suite_types.sprogram =
  match s with
  | Request.Inline { in_name; in_source } ->
      let ast = Minic.Typecheck.parse_and_check in_source in
      let entry =
        match Minic.Ast.find_func ast "main" with
        | Some _ -> "main"
        | None -> failwith "MiniC source must define main()"
      in
      {
        Suite_types.p_name = in_name;
        p_source = in_source;
        p_harnesses =
          [ { Suite_types.h_name = "main"; h_entry = entry; h_seeds = [ [] ] } ];
      }
  | Request.Named name -> (
      match
        List.find_opt (fun p -> p.Suite_types.p_name = name) Programs.all
      with
      | Some p -> p
      | None -> (
          match
            List.find_opt (fun p -> p.Suite_types.p_name = name) Spec.all
          with
          | Some p -> p
          | None ->
              if name = "selfcomp" then Selfcomp.program
              else failwith ("unknown program " ^ name)))

(** Prepared subjects are expensive (fuzzing-derived corpora); cache
    them per context so warm daemon requests skip preparation. The
    preparation runs outside the mutex — concurrent requests preparing
    *different* subjects proceed in parallel; a race on the same subject
    computes twice (deterministically, so both agree) and the first
    insert wins, preserving physical sharing for every later reader. *)
let prepared_of ctx (p : Suite_types.sprogram) =
  let key = Evaluation.prepare_key p in
  let lookup () =
    Mutex.lock ctx.prepared_mu;
    let r = Hashtbl.find_opt ctx.prepared key in
    Mutex.unlock ctx.prepared_mu;
    r
  in
  match lookup () with
  | Some pr -> pr
  | None -> (
      let pr = Evaluation.prepare p in
      Mutex.lock ctx.prepared_mu;
      match Hashtbl.find_opt ctx.prepared key with
      | Some winner ->
          Mutex.unlock ctx.prepared_mu;
          winner
      | None ->
          Hashtbl.replace ctx.prepared key pr;
          Mutex.unlock ctx.prepared_mu;
          pr)

let prepared_suite ctx = List.map (prepared_of ctx) Programs.all

(** Plain compiles (default options) are cached in the engine's
    bench-compile tier, so a warm daemon serves repeated views of the
    same (program, config) without recompiling. Sanitized or
    profile-fed compiles run straight — their side effects are the
    point. *)
let compile_subject ctx (p : Suite_types.sprogram) (cfg : Config.t)
    ~(profile : string option) ~(sanitize : bool) : Emit.binary =
  let straight () =
    let profile = Option.map Autofdo.profile_of_string profile in
    Toolchain.compile
      ~options:(Toolchain.Options.make ?profile ~sanitize ())
      (Suite_types.ast p) ~config:cfg ~roots:(Suite_types.roots p)
  in
  if profile = None && not sanitize then
    match Measure_engine.peek_bench_compile ctx.engine p cfg with
    | Some bin -> bin
    | None -> Measure_engine.seed_bench_compile ctx.engine p cfg straight
  else straight ()

let default_entry (p : Suite_types.sprogram) = function
  | Some e -> e
  | None -> (List.hd p.Suite_types.p_harnesses).Suite_types.h_entry

(* -- compile-family views -- *)

let exec_summary b (p : Suite_types.sprogram) cfg (bin : Emit.binary) =
  bpf b "%s at %s\n" p.Suite_types.p_name (Config.name cfg);
  bpf b "  code: %d instructions, %d functions\n"
    (Array.length bin.Emit.code)
    (Array.length bin.Emit.funcs);
  bpf b "  line table: %d entries, %d steppable lines\n"
    (List.length bin.Emit.debug.Dwarfish.line_table)
    (List.length (Dwarfish.steppable_lines bin.Emit.debug));
  bpf b "  variables with location info: %d\n"
    (List.length bin.Emit.debug.Dwarfish.vars);
  bpf b "  .text digest: %s\n" bin.Emit.text_digest;
  Response.D_compiled
    {
      dc_program = p.Suite_types.p_name;
      dc_config = Config.name cfg;
      dc_instrs = Array.length bin.Emit.code;
      dc_funcs = Array.length bin.Emit.funcs;
      dc_text_digest = bin.Emit.text_digest;
    }

let exec_measure ctx b (p : Suite_types.sprogram) cfg =
  let prepared = prepared_of ctx p in
  let m, _ = Measure_engine.measure ctx.engine prepared cfg in
  bpf b "%s at %s (vs the O0 baseline)\n" p.Suite_types.p_name (Config.name cfg);
  let show name (s : Metrics.score) =
    bpf b "  %-10s availability=%.4f line-coverage=%.4f product=%.4f\n" name
      s.Metrics.availability s.Metrics.line_coverage s.Metrics.product
  in
  show "static" m.Metrics.m_static;
  show "static-dbg" m.Metrics.m_static_dbg;
  show "dynamic" m.Metrics.m_dynamic;
  show "hybrid" m.Metrics.m_hybrid

let exec_dump b (p : Suite_types.sprogram) cfg bin sections =
  let sections =
    match sections with
    | [] -> Dwarfdump.all_sections
    | names ->
        List.map
          (fun n ->
            match Dwarfdump.section_of_string n with
            | Some s -> s
            | None -> failwith ("unknown section " ^ n))
          names
  in
  bpf b "%s at %s: %s\n\n" p.Suite_types.p_name (Config.name cfg)
    (Dwarfdump.summary bin);
  Buffer.add_string b (Dwarfdump.dump ~sections bin);
  Buffer.add_char b '\n';
  Buffer.add_string b (Dwarfdump.locstats_to_string (Dwarfdump.locstats bin))

let exec_verify b (p : Suite_types.sprogram) cfg bin =
  let ds = Debug_verify.verify bin in
  bpf b "%s at %s: %s" p.Suite_types.p_name (Config.name cfg)
    (Debug_verify.report ds);
  if ds <> [] then 1 else 0

let exec_dwarf_size b (p : Suite_types.sprogram) (cfg : Config.t) =
  let ast = Suite_types.ast p in
  bpf b "%-8s %12s %12s %12s %8s %8s\n" "level" ".debug_line" ".debug_loc"
    "total" "entries" "vars";
  List.iter
    (fun level ->
      let lcfg = Config.make cfg.Config.compiler level in
      let bin =
        Toolchain.compile ast ~config:lcfg ~roots:(Suite_types.roots p)
      in
      let line, locs, total = Dwarf_encode.section_sizes bin.Emit.debug in
      bpf b "%-8s %11dB %11dB %11dB %8d %8d\n" (Config.level_name level) line
        locs total
        (List.length bin.Emit.debug.Dwarfish.line_table)
        (List.length bin.Emit.debug.Dwarfish.vars))
    (Config.O0 :: Config.standard_levels cfg.Config.compiler)

let exec_pass_trace b (p : Suite_types.sprogram) cfg =
  let trace =
    Toolchain.pipeline_trace (Suite_types.ast p) ~config:cfg
      ~roots:(Suite_types.roots p)
  in
  bpf b "%-28s %8s %7s %9s %9s %6s\n" "pass" "instrs" "blocks" "bindings"
    "opt-out" "lines";
  let prev = ref None in
  List.iter
    (fun (name, (st : Toolchain.ir_stats)) ->
      let delta get =
        match !prev with
        | Some p when get p <> get st -> Printf.sprintf "%+d" (get st - get p)
        | _ -> ""
      in
      bpf b "%-28s %5d %2s %4d %2s %6d %2s %6d %2s %4d %2s\n" name
        st.Toolchain.st_instrs
        (delta (fun s -> s.Toolchain.st_instrs))
        st.Toolchain.st_blocks
        (delta (fun s -> s.Toolchain.st_blocks))
        st.Toolchain.st_bindings
        (delta (fun s -> s.Toolchain.st_bindings))
        st.Toolchain.st_optimized_out
        (delta (fun s -> s.Toolchain.st_optimized_out))
        st.Toolchain.st_lines
        (delta (fun s -> s.Toolchain.st_lines));
      prev := Some st)
    trace

let exec_trace (p : Suite_types.sprogram) bin entry input =
  let entry = default_entry p entry in
  let t = Debugger.trace bin ~entry ~inputs:[ input ] in
  Trace_json.to_string t

let exec_debug b (p : Suite_types.sprogram) bin entry commands =
  let entry = default_entry p entry in
  if commands = [] then
    Buffer.add_string b
      "no commands; pass them positionally or via -x FILE (commands: \
       break/tbreak/delete L, run [inputs], continue, step, next, finish, \
       print VAR, info locals|line|breakpoints, backtrace, quit)\n"
  else Buffer.add_string b (Session.script bin ~entry commands)

let exec_sample b (p : Suite_types.sprogram) cfg bin entry period =
  let entry = default_entry p entry in
  let workloads =
    List.concat_map (fun h -> h.Suite_types.h_seeds) p.Suite_types.p_harnesses
  in
  let coll = Autofdo.collect bin ~entry ~workloads ~period ~seed:7 in
  let text = Autofdo.profile_to_string coll.Autofdo.profile in
  bpf b
    "profiled %s at %s: %d samples taken, %d lost (%.1f%%) to missing line \
     info\n"
    p.Suite_types.p_name (Config.name cfg) coll.Autofdo.samples_taken
    coll.Autofdo.samples_lost
    (if coll.Autofdo.samples_taken = 0 then 0.0
     else
       100.0
       *. float_of_int coll.Autofdo.samples_lost
       /. float_of_int coll.Autofdo.samples_taken);
  text

let exec_value_check b (p : Suite_types.sprogram) (cfg : Config.t) entry input =
  let entry = default_entry p entry in
  let r =
    Value_oracle.check (Suite_types.ast p) ~config:cfg
      ~roots:(Suite_types.roots p) ~entry ~input
  in
  bpf b "%s at %s (%s):\n%s" p.Suite_types.p_name (Config.name cfg) entry
    (Value_oracle.report_to_string r);
  if cfg.Config.level = Config.O0 && r.Value_oracle.rp_mismatches <> [] then 1
  else 0

let run_compile ctx ~subject ~config ~profile ~sanitize (view : Request.view) =
  let b = Buffer.create 1024 in
  match view with
  | Request.Passes ->
      List.iter
        (fun name ->
          Buffer.add_string b name;
          Buffer.add_char b '\n')
        (Toolchain.pass_names config);
      (Buffer.contents b, None, Response.D_none, 0)
  | Request.Dwarf_size ->
      let p = subject_program subject in
      exec_dwarf_size b p config;
      (Buffer.contents b, None, Response.D_none, 0)
  | Request.Pass_trace ->
      let p = subject_program subject in
      exec_pass_trace b p config;
      (Buffer.contents b, None, Response.D_none, 0)
  | Request.Measure ->
      let p = subject_program subject in
      exec_measure ctx b p config;
      (Buffer.contents b, None, Response.D_none, 0)
  | Request.Value_check { v_entry; v_input } ->
      let p = subject_program subject in
      let code = exec_value_check b p config v_entry v_input in
      (Buffer.contents b, None, Response.D_none, code)
  | Request.Summary | Request.Dump _ | Request.Verify | Request.Disasm _
  | Request.Trace _ | Request.Debug _ | Request.Sample _ -> (
      let p = subject_program subject in
      let bin = compile_subject ctx p config ~profile ~sanitize in
      match view with
      | Request.Summary ->
          let data = exec_summary b p config bin in
          (Buffer.contents b, None, data, 0)
      | Request.Dump sections ->
          exec_dump b p config bin sections;
          (Buffer.contents b, None, Response.D_none, 0)
      | Request.Verify ->
          let code = exec_verify b p config bin in
          (Buffer.contents b, None, Response.D_none, code)
      | Request.Disasm func ->
          Buffer.add_string b (Objdump.disassemble ?func bin);
          (Buffer.contents b, None, Response.D_none, 0)
      | Request.Trace { t_entry; t_input } ->
          let artifact = exec_trace p bin t_entry t_input in
          (Buffer.contents b, Some artifact, Response.D_none, 0)
      | Request.Debug { d_entry; d_commands } ->
          exec_debug b p bin d_entry d_commands;
          (Buffer.contents b, None, Response.D_none, 0)
      | Request.Sample { s_entry; s_period } ->
          let artifact = exec_sample b p config bin s_entry s_period in
          (Buffer.contents b, Some artifact, Response.D_none, 0)
      | _ -> assert false)

(* -- rank / tune -- *)

let run_rank ctx ~config ~k =
  let b = Buffer.create 1024 in
  bpf b "ranking %s passes on the 13-program suite...\n" (Config.name config);
  let prepared = prepared_suite ctx in
  let lr = Ranking.rank ~engine:ctx.engine prepared config in
  bpf b "%-4s %-26s %8s %8s\n" "#" "pass" "+%" "avg rank";
  let top = ref [] in
  List.iteri
    (fun i (e : Ranking.pass_effect) ->
      if i < k then begin
        bpf b "%-4d %-26s %8.2f %8.2f\n" (i + 1) e.Ranking.pe_pass
          e.Ranking.pe_geo_increment_pct e.Ranking.pe_avg_rank;
        top :=
          (e.Ranking.pe_pass, e.Ranking.pe_geo_increment_pct, e.Ranking.pe_avg_rank)
          :: !top
      end)
    lr.Ranking.lr_effects;
  ( Buffer.contents b,
    None,
    Response.D_ranked { dr_config = Config.name config; dr_top = List.rev !top },
    0 )

let run_tune ctx ~config ~y =
  let b = Buffer.create 1024 in
  bpf b "tuning %s (disabling top %d)...\n" (Config.name config) y;
  let prepared = prepared_suite ctx in
  let lr = Ranking.rank ~engine:ctx.engine prepared config in
  let dy = Tuning.dy_config lr ~y in
  bpf b "%s disables: %s\n" (Config.name dy)
    (String.concat ", " dy.Config.disabled);
  let o0_costs = Tuning.o0_costs ~engine:ctx.engine Spec.all in
  let base_pt =
    Tuning.measure_point ~engine:ctx.engine prepared ~o0_costs Spec.all config
  in
  let dy_pt =
    Tuning.measure_point ~engine:ctx.engine prepared ~o0_costs Spec.all dy
  in
  bpf b "%-12s debug=%.4f speedup=%.4f\n" (Config.name config)
    base_pt.Tuning.cp_debug base_pt.Tuning.cp_speedup;
  bpf b "%-12s debug=%.4f (%+.2f%%) speedup=%.4f (%+.2f%%)\n" (Config.name dy)
    dy_pt.Tuning.cp_debug
    (Util.Stats.pct_delta base_pt.Tuning.cp_debug dy_pt.Tuning.cp_debug)
    dy_pt.Tuning.cp_speedup
    (Util.Stats.pct_delta base_pt.Tuning.cp_speedup dy_pt.Tuning.cp_speedup);
  ( Buffer.contents b,
    None,
    Response.D_tuned
      {
        dt_config = Config.name dy;
        dt_disabled = dy.Config.disabled;
        dt_debug = dy_pt.Tuning.cp_debug;
        dt_speedup = dy_pt.Tuning.cp_speedup;
      },
    0 )

(* -- search -- *)

(** The frontier artifact: a standalone, self-stamped canonical JSON
    document (every float through {!Api_json}'s [%.17g] writer), so the
    CI determinism leg can byte-diff it across runs and [--jobs]
    settings. *)
let frontier_json ~config (r : Tuning.search_result) =
  J.to_string
    (J.Obj
       [
         ("v", J.Num (float_of_int version));
         ("kind", J.Str "frontier");
         ("base", J.Str (Config.name config));
         ("strategy", J.Str (Tuning.strategy_name r.Tuning.sr_strategy));
         ("seed", J.Num (float_of_int r.Tuning.sr_seed));
         ("budget", J.Num (float_of_int r.Tuning.sr_budget));
         (* no [resumed] here: the artifact is a pure function of
            (strategy, seed, budget, suite) — byte-identical whether the
            evaluations ran cold or came back from the store *)
         ("evaluated", J.Num (float_of_int r.Tuning.sr_evaluated));
         ("dominated", J.Num (float_of_int r.Tuning.sr_dominated));
         ( "frontier",
           J.Arr
             (List.map
                (fun (f : Tuning.frontier_point) ->
                  J.Obj
                    [
                      ("name", J.Str (Config.name f.Tuning.fp_config));
                      ("config", Codec.config_to_json f.Tuning.fp_config);
                      ("debug", J.Num f.Tuning.fp_debug);
                      ("speedup", J.Num f.Tuning.fp_speedup);
                    ])
                r.Tuning.sr_frontier) );
       ])

let run_search ctx ~config ~strategy ~budget ~seed ~debug_weight ~speed_weight =
  let b = Buffer.create 1024 in
  bpf b "searching %s disable-sets (%s, budget %d, seed %d)...\n"
    (Config.name config)
    (Tuning.strategy_name strategy)
    budget seed;
  let prepared = prepared_suite ctx in
  (* Seed the search with the greedy dy points of this base: the front
     can only improve on them, so it weakly dominates the paper's greedy
     trade-off by construction and strictly wherever the search finds
     anything better. *)
  let lr = Ranking.rank ~engine:ctx.engine prepared config in
  let seeds = List.map (fun y -> Tuning.dy_config lr ~y) [ 3; 5; 7; 9 ] in
  let o0_costs = Tuning.o0_costs ~engine:ctx.engine Spec.all in
  let opts =
    {
      Tuning.so_strategy = strategy;
      so_budget = budget;
      so_seed = seed;
      so_debug_weight = debug_weight;
      so_speed_weight = speed_weight;
      so_seeds = seeds;
    }
  in
  let r =
    Tuning.search ~engine:ctx.engine prepared ~o0_costs Spec.all ~base:config
      ~opts
  in
  bpf b "%d candidates evaluated (%d served from the store), %d dominated\n"
    r.Tuning.sr_evaluated r.Tuning.sr_resumed r.Tuning.sr_dominated;
  bpf b "Pareto front (%d points):\n" (List.length r.Tuning.sr_frontier);
  bpf b "%-16s %10s %10s  %s\n" "config" "debug" "speedup" "disabled";
  List.iter
    (fun (f : Tuning.frontier_point) ->
      bpf b "%-16s %10.4f %10.4f  %s\n"
        (Config.name f.Tuning.fp_config)
        f.Tuning.fp_debug f.Tuning.fp_speedup
        (match f.Tuning.fp_config.Config.disabled with
        | [] -> "-"
        | l -> String.concat "," l))
    r.Tuning.sr_frontier;
  ( Buffer.contents b,
    Some (frontier_json ~config r),
    Response.D_frontier
      {
        df_config = Config.name config;
        df_strategy = Tuning.strategy_name r.Tuning.sr_strategy;
        df_seed = r.Tuning.sr_seed;
        df_budget = r.Tuning.sr_budget;
        df_evaluated = r.Tuning.sr_evaluated;
        df_dominated = r.Tuning.sr_dominated;
        df_front =
          List.map
            (fun (f : Tuning.frontier_point) ->
              ( Config.name f.Tuning.fp_config,
                f.Tuning.fp_debug,
                f.Tuning.fp_speedup ))
            r.Tuning.sr_frontier;
      },
    0 )

(* -- check -- *)

(** This request's own sanitizer work, as [(pass, checks, failures)]
    triples sorted by pass. [Sanitize.counters] is process-cumulative
    and under concurrent execution a snapshot/subtract would bracket
    other requests' boundary checks; the request sink's
    [sanitize/<pass>/checked|failures] rows are scoped to exactly this
    request (including its engine-pool workers), so in a daemon,
    response N's text cannot depend on requests running alongside it. *)
let sanitize_rows_delta before after =
  let look rows name = Option.value ~default:0 (List.assoc_opt name rows) in
  let passes =
    List.sort_uniq compare
      (List.filter_map
         (fun (name, _) ->
           match String.split_on_char '/' name with
           | [ "sanitize"; pass; ("checked" | "failures") ] -> Some pass
           | _ -> None)
         after)
  in
  List.filter_map
    (fun pass ->
      let row field = Printf.sprintf "sanitize/%s/%s" pass field in
      let dc = look after (row "checked") - look before (row "checked") in
      let df = look after (row "failures") - look before (row "failures") in
      if dc = 0 && df = 0 then None else Some (pass, dc, df))
    passes

let run_check ctx ~subject ~fuzz ~seed ~suite =
  let b = Buffer.create 1024 in
  let san_before = Measure_engine.current_request_sink_rows () in
  let reports = ref [] in
  (match subject with
  | Some s ->
      let p = subject_program s in
      bpf b "checking %s across O0-O3 x {gcc, clang}...\n" p.Suite_types.p_name;
      let failures, (runs, skipped) =
        Diff_oracle.check_program ?store:ctx.store p
      in
      reports :=
        [
          {
            Diff_oracle.r_programs = 1;
            r_configs = List.length (Diff_oracle.configs ());
            r_runs = runs;
            r_skipped = skipped;
            r_failures = failures;
          };
        ]
  | None ->
      if suite then begin
        bpf b "checking the suite across O0-O3 x {gcc, clang} (sanitizer on)...\n";
        reports := [ Diff_oracle.check_suite ?store:ctx.store () ]
      end);
  if fuzz > 0 then begin
    bpf b "fuzzing %d synthetic program(s) from seed %d...\n" fuzz seed;
    reports :=
      !reports @ [ Diff_oracle.fuzz ?store:ctx.store ~count:fuzz ~seed () ]
  end;
  List.iter
    (fun r ->
      Buffer.add_string b (Diff_oracle.report_to_string r);
      Buffer.add_char b '\n')
    !reports;
  (match
     sanitize_rows_delta san_before (Measure_engine.current_request_sink_rows ())
   with
  | [] -> ()
  | cs ->
      bpf b "sanitizer boundaries validated:\n";
      List.iter
        (fun (pass, checks, failures) ->
          bpf b "  %-26s %7d checked %s\n" pass checks
            (if failures = 0 then "" else Printf.sprintf "%d FAILED" failures))
        cs);
  let totals =
    List.fold_left
      (fun (p, c, r, s, f) (rep : Diff_oracle.report) ->
        ( p + rep.Diff_oracle.r_programs,
          max c rep.Diff_oracle.r_configs,
          r + rep.Diff_oracle.r_runs,
          s + rep.Diff_oracle.r_skipped,
          f + List.length rep.Diff_oracle.r_failures ))
      (0, 0, 0, 0, 0) !reports
  in
  let dk_programs, dk_configs, dk_runs, dk_skipped, dk_failures = totals in
  let code = if List.for_all Diff_oracle.clean !reports then 0 else 1 in
  ( Buffer.contents b,
    None,
    Response.D_checked { dk_programs; dk_configs; dk_runs; dk_skipped; dk_failures },
    code )

(* -- profile -- *)

(** The [Obs] session is process-wide (one recording at a time), so
    profile requests are the one request kind that still serializes
    against each other: a second concurrent profile fails with the same
    error a nested session would have raised. *)
let profile_mu = Mutex.create ()

let run_profile_locked ctx ~subject ~config ~sanitize ~stats ~trace =
  let p = subject_program subject in
  let b = Buffer.create 1024 in
  if Obs.enabled () then
    failwith "an observability session is already active in this process";
  Obs.start ();
  let stop_started () = ignore (Obs.stop () : Obs.session option) in
  match
    Toolchain.compile (Suite_types.ast p) ~config
      ~roots:(Suite_types.roots p)
      ~options:(Toolchain.Options.make ~sanitize ())
  with
  | exception e ->
      stop_started ();
      raise e
  | bin ->
      (* Snapshot the unified counter table while the session is live
         (the obs/* rows read the active session). *)
      let counter_rows =
        if stats then Measure_engine.stats_table ctx.engine else []
      in
      let session =
        match Obs.stop () with Some s -> s | None -> assert false
      in
      let profs = Obs.profiles session in
      let total_ns =
        List.fold_left (fun a pr -> Int64.add a pr.Obs.pr_ns) 0L profs
      in
      bpf b "%s at %s: %d pass executions, %.3f ms in passes\n\n"
        p.Suite_types.p_name (Config.name config)
        (List.fold_left (fun a pr -> a + pr.Obs.pr_calls) 0 profs)
        (Int64.to_float total_ns /. 1e6);
      let pct ns =
        if total_ns = 0L then "-"
        else
          Printf.sprintf "%.1f"
            (100.0 *. Int64.to_float ns /. Int64.to_float total_ns)
      in
      let rows =
        List.map
          (fun pr ->
            [
              pr.Obs.pr_pass;
              string_of_int pr.Obs.pr_calls;
              Printf.sprintf "%.3f" (Int64.to_float pr.Obs.pr_ns /. 1e6);
              pct pr.Obs.pr_ns;
              string_of_int pr.Obs.pr_delta.Instrument.c_instrs;
              string_of_int pr.Obs.pr_delta.Instrument.c_lines;
              string_of_int pr.Obs.pr_delta.Instrument.c_vars;
            ])
          (List.sort (fun a b -> Int64.compare b.Obs.pr_ns a.Obs.pr_ns) profs)
      in
      Buffer.add_string b
        (Util.Tablefmt.render
           (Util.Tablefmt.make ~title:"Per-pass self time (sorted)"
              ~header:
                [ "pass"; "calls"; "ms"; "self%"; "d-instrs"; "d-lines"; "d-vars" ]
              rows));
      Buffer.add_char b '\n';
      if stats then begin
        Buffer.add_string b
          "== Counters (engine caches / sanitizer / obs) ==\n";
        List.iter
          (fun line ->
            Buffer.add_string b line;
            Buffer.add_char b '\n')
          (Util.Cliopts.kv_lines counter_rows);
        Buffer.add_char b '\n'
      end;
      bpf b "binary: %d instructions, text digest %s\n"
        (Array.length bin.Emit.code) bin.Emit.text_digest;
      let artifact =
        if not trace then None
        else begin
          let js = Obs.to_chrome_json session in
          (* Self-check the artifact before shipping it: balanced spans
             and at least one span per profiled pass. *)
          (match Obs.validate_chrome js with
          | Error msg -> failwith ("trace validation failed: " ^ msg)
          | Ok v ->
              let missing =
                List.filter
                  (fun pr ->
                    match List.assoc_opt pr.Obs.pr_pass v.Obs.v_spans with
                    | Some n when n >= 1 -> false
                    | _ -> true)
                  profs
              in
              if missing <> [] then
                failwith
                  ("trace validation failed: no span for: "
                  ^ String.concat ", "
                      (List.map (fun pr -> pr.Obs.pr_pass) missing)));
          Some js
        end
      in
      (Buffer.contents b, artifact, Response.D_none, 0)

let run_profile ctx ~subject ~config ~sanitize ~stats ~trace =
  if not (Mutex.try_lock profile_mu) then
    failwith "an observability session is already active in this process";
  Fun.protect
    ~finally:(fun () -> Mutex.unlock profile_mu)
    (fun () -> run_profile_locked ctx ~subject ~config ~sanitize ~stats ~trace)

(* -- bench / cache / stats -- *)

let run_bench ctx ~subject ~config (action : Request.bench_action) =
  let p = subject_program subject in
  match action with
  | Request.Cost ->
      let cost = Measure_engine.bench_cost ctx.engine p config in
      ( Printf.sprintf "%s at %s: %d cycles\n" p.Suite_types.p_name
          (Config.name config) cost,
        None,
        Response.D_cost cost,
        0 )
  | Request.Exec { x_entry; x_input } ->
      let bin =
        compile_subject ctx p config ~profile:None ~sanitize:false
      in
      let r = Vm.run bin ~entry:x_entry ~input:x_input Vm.default_opts in
      let b = Buffer.create 128 in
      bpf b "output: [%s]\n"
        (String.concat "; " (List.map string_of_int r.Vm.output));
      bpf b "cost: %d cycles, %d instructions%s\n" r.Vm.cost r.Vm.instrs
        (if r.Vm.timed_out then "  (TIMED OUT)" else "");
      (Buffer.contents b, None, Response.D_cost r.Vm.cost, 0)

let run_cache_op ctx ~action ~dir =
  let b = Buffer.create 256 in
  let store =
    match (dir, ctx.store) with
    | None, Some s -> s
    | _ -> Measure_engine.open_store ?dir ()
  in
  (match action with
  | Request.Op_stats ->
      bpf b "cache %s (format v%d)\n"
        (Engine.Disk_store.dir store)
        Engine.Disk_store.format_version;
      let summary = Engine.Disk_store.summary store in
      if summary = [] then Buffer.add_string b "  (empty)\n"
      else
        List.iter
          (fun (cache, entries, bytes) ->
            bpf b "  %-14s %6d entries %10d bytes\n" cache entries bytes)
          summary;
      bpf b "  %-14s %6d entries %10d bytes\n" "total"
        (Engine.Disk_store.entry_count store)
        (Engine.Disk_store.size_bytes store)
  | Request.Op_clear ->
      let n = Engine.Disk_store.clear store in
      bpf b "cache %s: removed %d entr%s\n"
        (Engine.Disk_store.dir store)
        n
        (if n = 1 then "y" else "ies")
  | Request.Op_gc ->
      let n = Engine.Disk_store.gc store in
      bpf b "cache %s: dropped %d stale/corrupt entr%s, %d entries (%d bytes) kept\n"
        (Engine.Disk_store.dir store)
        n
        (if n = 1 then "y" else "ies")
        (Engine.Disk_store.entry_count store)
        (Engine.Disk_store.size_bytes store));
  (Buffer.contents b, None, Response.D_none, 0)

let run_stats ctx (what : Request.stats_what) =
  let b = Buffer.create 512 in
  match what with
  | Request.Suite ->
      Buffer.add_string b "test suite (13 programs):\n";
      List.iter
        (fun (p : Suite_types.sprogram) ->
          bpf b "  %-12s %d harness(es)\n" p.Suite_types.p_name
            (List.length p.Suite_types.p_harnesses))
        Programs.all;
      Buffer.add_string b "SPEC CPU 2017 analogs:\n";
      List.iter
        (fun (p : Suite_types.sprogram) -> bpf b "  %s\n" p.Suite_types.p_name)
        Spec.all;
      Buffer.add_string b "large AutoFDO workload:\n";
      Buffer.add_string b "  selfcomp\n";
      (Buffer.contents b, None, Response.D_none, 0)
  | Request.Counters ->
      let rows = Measure_engine.stats_table ctx.engine in
      Buffer.add_string b "== Counters (engine caches / sanitizer / obs) ==\n";
      List.iter
        (fun line ->
          Buffer.add_string b line;
          Buffer.add_char b '\n')
        (Util.Cliopts.kv_lines rows);
      (Buffer.contents b, None, Response.D_counters rows, 0)
  | Request.Server ->
      let rows = !server_counters_hook () in
      if rows = [] then Buffer.add_string b "(no server in this process)\n"
      else
        List.iter
          (fun line ->
            Buffer.add_string b line;
            Buffer.add_char b '\n')
          (Util.Cliopts.kv_lines rows);
      (Buffer.contents b, None, Response.D_counters rows, 0)

(* -- experiments / merge: the sharded corpus runner (ROADMAP item 5) -- *)

let job_spec (job : Job.t) =
  if job.Job.j_corpus < 1 then failwith "corpus size must be >= 1";
  { Experiments.cs_seed = job.Job.j_seed; cs_n = job.Job.j_corpus }

let job_configs (job : Job.t) =
  match job.Job.j_configs with
  | [] -> Experiments.all_standard_configs
  | cs -> cs

(** Pick the requested tables out of {!Experiments.corpus_tables}
    output (which renders every table, in {!Job.table_names} order). *)
let select_tables (job : Job.t) tables =
  match job.Job.j_tables with
  | [] -> tables
  | wanted ->
      let named = List.combine Job.table_names tables in
      List.map
        (fun name ->
          match List.assoc_opt name named with
          | Some t -> t
          | None ->
              failwith
                (Printf.sprintf "unknown table %S (tables: %s)" name
                   (String.concat ", " Job.table_names)))
        wanted

let run_experiments ctx (job : Job.t) =
  let spec = job_spec job in
  let configs = job_configs job in
  let config_names = List.map Config.name configs in
  let digest = Experiments.corpus_digest spec in
  match job.Job.j_shard with
  | None ->
      let rows = Experiments.corpus_rows ~engine:ctx.engine spec configs in
      let tables =
        select_tables job
          (Experiments.corpus_tables spec ~configs:config_names rows)
      in
      let text = String.concat "" (List.map Util.Tablefmt.render tables) in
      (text, None, Response.D_none, 0)
  | Some (i, n) ->
      let shard = { Experiments.sh_index = i; sh_count = n } in
      let rows =
        Experiments.corpus_rows ~engine:ctx.engine ~shard spec configs
      in
      let programs =
        List.length
          (List.sort_uniq compare
             (List.map (fun r -> r.Experiments.cr_index) rows))
      in
      let partial =
        {
          Partial.pt_shard = i;
          pt_shards = n;
          pt_seed = spec.Experiments.cs_seed;
          pt_corpus = spec.Experiments.cs_n;
          pt_digest = digest;
          pt_configs = config_names;
          pt_programs = programs;
          pt_rows = rows;
        }
      in
      let text =
        Printf.sprintf
          "shard %d/%d: %d program(s), %d row(s) (corpus n=%d seed=%d digest \
           %s)\n"
          i n programs (List.length rows) spec.Experiments.cs_n
          spec.Experiments.cs_seed digest
      in
      (text, None, Response.D_partial partial, 0)

(** Fold a complete partial set into the final tables. Pure validation
    plus rendering — no engine work, so merging is cheap enough to run
    anywhere (CLI, daemon, bench). [corpus_tables] re-sorts the row set
    before any reduction, so the output is byte-identical to the
    unsharded run however the rows were partitioned. *)
let run_merge (partials : Partial.t list) =
  match partials with
  | [] -> failwith "merge needs at least one shard partial"
  | first :: rest ->
      List.iter
        (fun (p : Partial.t) ->
          if
            p.Partial.pt_shards <> first.Partial.pt_shards
            || p.Partial.pt_seed <> first.Partial.pt_seed
            || p.Partial.pt_corpus <> first.Partial.pt_corpus
            || p.Partial.pt_digest <> first.Partial.pt_digest
            || p.Partial.pt_configs <> first.Partial.pt_configs
          then
            failwith
              (Printf.sprintf
                 "shard %d/%d disagrees with shard %d/%d on corpus or \
                  configuration set"
                 p.Partial.pt_shard p.Partial.pt_shards first.Partial.pt_shard
                 first.Partial.pt_shards))
        rest;
      let spec =
        {
          Experiments.cs_seed = first.Partial.pt_seed;
          cs_n = first.Partial.pt_corpus;
        }
      in
      let expect = Experiments.corpus_digest spec in
      if first.Partial.pt_digest <> expect then
        failwith
          (Printf.sprintf
             "corpus digest mismatch: partials carry %s, this build generates \
              %s"
             first.Partial.pt_digest expect);
      let n = first.Partial.pt_shards in
      let seen =
        List.sort compare (List.map (fun p -> p.Partial.pt_shard) partials)
      in
      let wanted = List.init n (fun i -> i + 1) in
      if seen <> wanted then
        failwith
          (Printf.sprintf "incomplete merge: have shard(s) %s of %d"
             (String.concat ", " (List.map string_of_int seen))
             n);
      let rows = List.concat_map (fun p -> p.Partial.pt_rows) partials in
      let text =
        Experiments.render_corpus_tables spec ~configs:first.Partial.pt_configs
          rows
      in
      (text, None, Response.D_none, 0)

(* ------------------------------------------------------------------ *)
(* The dispatcher                                                      *)

let run_request ctx (req : Request.t) =
  match req with
  | Request.Compile { c_subject; c_config; c_profile; c_sanitize; c_view } ->
      run_compile ctx ~subject:c_subject ~config:c_config ~profile:c_profile
        ~sanitize:c_sanitize c_view
  | Request.Rank { r_config; r_k } -> run_rank ctx ~config:r_config ~k:r_k
  | Request.Tune { t_config; t_y } -> run_tune ctx ~config:t_config ~y:t_y
  | Request.Search
      { se_config; se_strategy; se_budget; se_seed; se_debug_weight;
        se_speed_weight } ->
      run_search ctx ~config:se_config ~strategy:se_strategy ~budget:se_budget
        ~seed:se_seed ~debug_weight:se_debug_weight
        ~speed_weight:se_speed_weight
  | Request.Check { k_subject; k_fuzz; k_seed; k_suite } ->
      run_check ctx ~subject:k_subject ~fuzz:k_fuzz ~seed:k_seed ~suite:k_suite
  | Request.Profile { p_subject; p_config; p_sanitize; p_stats; p_trace } ->
      run_profile ctx ~subject:p_subject ~config:p_config ~sanitize:p_sanitize
        ~stats:p_stats ~trace:p_trace
  | Request.Bench { b_subject; b_config; b_action } ->
      run_bench ctx ~subject:b_subject ~config:b_config b_action
  | Request.Cache_op { o_action; o_dir } ->
      run_cache_op ctx ~action:o_action ~dir:o_dir
  | Request.Stats { s_what } -> run_stats ctx s_what
  | Request.Experiments { e_job } -> run_experiments ctx e_job
  | Request.Merge { m_partials } -> run_merge m_partials

let error_message = function
  | Failure msg -> msg
  | Minic.Parser.Error (msg, line) ->
      Printf.sprintf "parse error line %d: %s" line msg
  | Minic.Lexer.Error (msg, line) ->
      Printf.sprintf "lex error line %d: %s" line msg
  | Minic.Typecheck.Error (msg, line) ->
      Printf.sprintf "check error line %d: %s" line msg
  | Sys_error msg -> msg
  | e -> Printexc.to_string e

(** Test seam: called at the top of every {!execute}, inside the
    request's sink scope. The daemon tests park it on a mutex to hold a
    request in flight deterministically. *)
let execute_gate : (unit -> unit) ref = ref (fun () -> ())

(** Execute one request against a context. Never raises: failures come
    back as [Error] responses with a one-line message and exit code 2.
    Safe to call concurrently from many threads or domains on a shared
    context — see {!ctx} — and the response's [stats] field is the
    request's private sink ({!Measure_engine.request_sink_rows}): its
    own counter activity, unpolluted by whatever ran alongside it. *)
let execute (ctx : ctx) (req : Request.t) : Response.t =
  let sink = Measure_engine.create_request_sink () in
  let finish status text artifact data exit_code =
    let stats = Measure_engine.request_sink_rows sink in
    { Response.status; text; artifact; data; stats; exit_code }
  in
  match
    Measure_engine.with_request_sink sink (fun () ->
        !execute_gate ();
        Obs.Span.wrap "api:execute" (fun () -> run_request ctx req))
  with
  | text, artifact, data, exit_code ->
      finish Response.Ok text artifact data exit_code
  | exception e -> finish (Response.Error (error_message e)) "" None Response.D_none 2
