(** Client side of the service protocol: connect to a [debugtuner
    serve] daemon — over its Unix-domain socket, or over TCP when the
    endpoint looks like [HOST:PORT] — and exchange
    {!Api.Request.t}/{!Api.Response.t} as length-prefixed canonical
    JSON (see [Framing]; the codec is identical on both transports).
    One connection is one session; requests on it are answered in
    order. *)

type t = { fd : Unix.file_descr }

type endpoint = Unix_path of string | Tcp of string * int

(** An endpoint string is TCP iff it splits as [HOST:PORT] with a
    numeric port — ["localhost:7070"], [":7070"] (loopback),
    ["10.0.0.2:7070"]. Anything else (no colon, non-numeric suffix) is
    a Unix-socket path, so ordinary paths like ["/tmp/d.sock"] keep
    working unchanged. *)
let endpoint_of_string s =
  match String.rindex_opt s ':' with
  | None -> Unix_path s
  | Some i -> (
      let port_s = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port_s with
      | Some port when port >= 0 && port <= 65535 ->
          let host = String.sub s 0 i in
          Tcp ((if host = "" then "localhost" else host), port)
      | _ -> Unix_path s)

let resolve_host host =
  if host = "localhost" then Unix.inet_addr_loopback
  else
    match Unix.inet_addr_of_string host with
    | a -> a
    | exception Failure _ -> (
        match Unix.gethostbyname host with
        | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
            raise
              (Unix.Unix_error
                 (Unix.EHOSTUNREACH, "gethostbyname", host))
        | h -> h.Unix.h_addr_list.(0))

(** [connect ?timeout endpoint] opens a session ([endpoint] as in
    {!endpoint_of_string}). [timeout] (seconds) bounds each blocking
    read/write on the socket so a wedged daemon surfaces as an error
    rather than a hang. *)
let connect ?timeout path =
  let ep = endpoint_of_string path in
  let fd =
    match ep with
    | Unix_path _ -> Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0
    | Tcp _ -> Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0
  in
  (match
     (match timeout with
     | Some s when s > 0.0 ->
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     | _ -> ());
     match ep with
     | Unix_path p -> Unix.connect fd (Unix.ADDR_UNIX p)
     | Tcp (host, port) ->
         Unix.connect fd (Unix.ADDR_INET (resolve_host host, port));
         Unix.setsockopt fd Unix.TCP_NODELAY true
   with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** One round trip. Protocol-level problems (daemon gone, malformed
    reply, timeout) come back as [Error msg], never as an exception —
    transports decide how to surface them. *)
let rpc (t : t) (req : Api.Request.t) : (Api.Response.t, string) result =
  match
    Framing.write_frame t.fd (Api.request_to_json req);
    Framing.read_frame t.fd
  with
  | payload -> Api.response_of_json payload
  | exception Framing.Closed -> Error "server closed the connection"
  | exception Framing.Oversized n ->
      Error (Printf.sprintf "oversized reply frame (%d bytes)" n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for the server"
  | exception Unix.Unix_error (err, _, _) ->
      Error (Unix.error_message err)

(** Convenience for one-shot [--connect] clients: connect, one
    request, close. *)
let oneshot ?timeout path req =
  match connect ?timeout path with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" path
           (Unix.error_message err))
  | t ->
      let r = rpc t req in
      close t;
      r
