(** Client side of the service protocol: connect to a [debugtuner
    serve] daemon over its Unix-domain socket and exchange
    {!Api.Request.t}/{!Api.Response.t} as length-prefixed canonical
    JSON (see [Framing]). One connection is one session; requests on
    it are answered in order. *)

type t = { fd : Unix.file_descr }

(** [connect ?timeout path] opens a session. [timeout] (seconds)
    bounds each blocking read/write on the socket so a wedged daemon
    surfaces as an error rather than a hang. *)
let connect ?timeout path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     (match timeout with
     | Some s when s > 0.0 ->
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
     | _ -> ());
     Unix.connect fd (Unix.ADDR_UNIX path)
   with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  { fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(** One round trip. Protocol-level problems (daemon gone, malformed
    reply, timeout) come back as [Error msg], never as an exception —
    transports decide how to surface them. *)
let rpc (t : t) (req : Api.Request.t) : (Api.Response.t, string) result =
  match
    Framing.write_frame t.fd (Api.request_to_json req);
    Framing.read_frame t.fd
  with
  | payload -> Api.response_of_json payload
  | exception Framing.Closed -> Error "server closed the connection"
  | exception Framing.Oversized n ->
      Error (Printf.sprintf "oversized reply frame (%d bytes)" n)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "timed out waiting for the server"
  | exception Unix.Unix_error (err, _, _) ->
      Error (Unix.error_message err)

(** Convenience for one-shot [--connect] clients: connect, one
    request, close. *)
let oneshot ?timeout path req =
  match connect ?timeout path with
  | exception Unix.Unix_error (err, _, _) ->
      Error
        (Printf.sprintf "cannot connect to %s: %s" path
           (Unix.error_message err))
  | t ->
      let r = rpc t req in
      close t;
      r
