(** A minimal, self-contained JSON reader/writer for the typed API.

    The repository deliberately has no JSON dependency; the wire format
    of [Api.Request]/[Api.Response] is small and fully under our
    control, so a ~150-line recursive-descent reader (modeled on the
    Chrome-trace validator's in [Obs]) plus a canonical writer is all
    the protocol needs. Strings are treated as byte sequences: every
    byte below 0x20 is escaped as [\uNNNN] and decoded back to the same
    byte, bytes >= 0x80 pass through verbatim, so arbitrary OCaml
    strings round-trip exactly (the codec QCheck tests rely on it). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Writer (canonical: no whitespace, fields in construction order)     *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let number_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (number_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          to_buffer b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Reader                                                              *)

let parse (text : string) : t =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg =
    raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if
      !pos + String.length word <= n
      && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              Buffer.add_char b (if code < 256 then Char.chr code else '?');
              go ()
          | _ -> fail "unknown escape")
      | c ->
          Buffer.add_char b c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elems [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_result text =
  match parse text with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (decoding tolerates unknown fields by construction:
   [field] looks keys up by name and ignores everything else)          *)

let field name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let int = function Num f -> Some (int_of_float f) | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr l -> Some l | _ -> None
