(** The [debugtuner serve] daemon: a persistent process owning one
    {!Api.ctx} — engine memo tables, disk store, prepared corpora —
    shared by every client, so warm requests cost approximately
    nothing.

    Transports: always a Unix-domain socket; optionally a TCP listener
    ([~listen:"HOST:PORT"]) speaking the identical length-prefixed JSON
    codec ([Framing] is transport-agnostic). One accept thread per
    listener; one lightweight thread per connection (a session, with
    its own id).

    Execution: admitted requests are pushed onto a bounded job queue
    drained by a pool of executor {e domains} ([~executors], default
    {!default_executors}) — systhreads share one runtime lock, so
    genuine concurrency needs domains. {!Api.execute} is safe to run
    concurrently on the shared context (per-request counter sinks,
    domain-safe caches; see {!Api.ctx}), and the engine's own Domain
    pool declines to nest spawning from a worker domain, so an executor
    runs its request's internal work sequentially while other executors
    make progress. With [~executors:0] requests execute inline on their
    session thread (serialized by the runtime lock — the pre-pool
    behavior).

    Admission is bounded regardless of executor count: at most
    [queue_limit] requests may be admitted (executing or queued) at
    once; beyond that a client gets an immediate [Overloaded] response
    — backpressure, never a hang. *)

(* A one-shot synchronization cell: the session thread parks on [read]
   until the executor [fill]s the response. *)
module Ivar = struct
  type 'a t = { mu : Mutex.t; cv : Condition.t; mutable v : 'a option }

  let create () = { mu = Mutex.create (); cv = Condition.create (); v = None }

  let fill t x =
    Mutex.lock t.mu;
    t.v <- Some x;
    Condition.broadcast t.cv;
    Mutex.unlock t.mu

  let read t =
    Mutex.lock t.mu;
    while t.v = None do
      Condition.wait t.cv t.mu
    done;
    let x = Option.get t.v in
    Mutex.unlock t.mu;
    x
end

type job = {
  j_req : Api.Request.t;
  j_session : int;
  j_reply : Api.Response.t Ivar.t;
}

type t = {
  ctx : Api.ctx;
  socket_path : string;
  queue_limit : int;
  executor_count : int;
  listen_fd : Unix.file_descr;
  tcp : (Unix.file_descr * string * int) option;  (** fd, host, bound port *)
  lock : Mutex.t;
  mutable stopping : bool;
  mutable in_flight : int;  (** admitted requests not yet answered *)
  mutable sessions : int;  (** connections accepted so far *)
  mutable live_sessions : int;
  mutable requests : int;  (** requests admitted and executed *)
  mutable overloaded : int;  (** requests refused by admission control *)
  mutable protocol_errors : int;  (** undecodable frames *)
  mutable client_threads : Thread.t list;
  jobs : job Queue.t;
  jobs_mu : Mutex.t;
  jobs_cv : Condition.t;
  mutable executors : unit Domain.t list;
}

let counters t =
  Mutex.lock t.lock;
  let rows =
    [
      ("serve/sessions", t.sessions);
      ("serve/live_sessions", t.live_sessions);
      ("serve/requests", t.requests);
      ("serve/in_flight", t.in_flight);
      ("serve/overloaded", t.overloaded);
      ("serve/protocol_errors", t.protocol_errors);
    ]
  in
  Mutex.unlock t.lock;
  List.filter (fun (_, v) -> v <> 0) rows

let default_queue_limit = 8

(* Never more executor domains than cores: on an N-core box the extra
   domains buy no parallelism and pay for it in stop-the-world minor
   GCs, which every domain must join. *)
let default_executors = min 4 (Domain.recommended_domain_count ())

(** ["HOST:PORT"] → (host, resolved address, port). Unparseable specs
    and unresolvable hosts raise [Invalid_argument]. *)
let parse_listen spec =
  match String.rindex_opt spec ':' with
  | None -> invalid_arg (Printf.sprintf "bad HOST:PORT %S" spec)
  | Some i -> (
      let host = String.sub spec 0 i in
      let port_s = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port_s with
      | None ->
          invalid_arg (Printf.sprintf "bad HOST:PORT %S" spec)
      | Some port when port < 0 || port > 65535 ->
          invalid_arg (Printf.sprintf "bad HOST:PORT %S" spec)
      | Some port ->
          let addr =
            if host = "" || host = "localhost" then Unix.inet_addr_loopback
            else
              match Unix.inet_addr_of_string host with
              | a -> a
              | exception Failure _ -> (
                  match Unix.gethostbyname host with
                  | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
                      invalid_arg
                        (Printf.sprintf "cannot resolve host %S" host)
                  | h -> h.Unix.h_addr_list.(0))
          in
          let host = if host = "" then "localhost" else host in
          (host, addr, port))

let error_response msg =
  {
    Api.Response.status = Api.Response.Error msg;
    text = "";
    artifact = None;
    data = Api.Response.D_none;
    stats = [];
    exit_code = 2;
  }

(* One executor: drain jobs until stopped *and* the queue is empty —
   shutdown never abandons an admitted request (its session thread is
   parked on the reply). *)
let executor_loop t =
  let rec loop () =
    Mutex.lock t.jobs_mu;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.jobs_cv t.jobs_mu
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.jobs_mu
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.jobs_mu;
      let resp =
        try
          Obs.Span.wrap
            ~args:[ ("session", string_of_int job.j_session) ]
            "serve:request"
            (fun () -> Api.execute t.ctx job.j_req)
        with e -> error_response (Printexc.to_string e)
      in
      Ivar.fill job.j_reply resp;
      loop ()
    end
  in
  loop ()

(** Bind and listen; does not accept yet (call {!serve} or {!start}).
    An existing socket file at [socket] is replaced — stale sockets
    from a killed daemon must not block a restart. [listen] adds a TCP
    listener ("HOST:PORT"; port 0 binds an ephemeral port, reported by
    {!listen_addr}). *)
let create ?(queue_limit = default_queue_limit)
    ?(executors = default_executors) ?listen ~socket (ctx : Api.ctx) =
  if queue_limit < 1 then invalid_arg "queue_limit must be >= 1";
  if executors < 0 then invalid_arg "executors must be >= 0";
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  let tcp =
    match listen with
    | None -> None
    | Some spec -> (
        let host, addr, port = parse_listen spec in
        let tfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        match
          Unix.setsockopt tfd Unix.SO_REUSEADDR true;
          Unix.bind tfd (Unix.ADDR_INET (addr, port));
          Unix.listen tfd 64;
          (match Unix.getsockname tfd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port)
        with
        | bound -> Some (tfd, host, bound)
        | exception e ->
            Unix.close tfd;
            Unix.close fd;
            raise e)
  in
  let t =
    {
      ctx;
      socket_path = socket;
      queue_limit;
      executor_count = executors;
      listen_fd = fd;
      tcp;
      lock = Mutex.create ();
      stopping = false;
      in_flight = 0;
      sessions = 0;
      live_sessions = 0;
      requests = 0;
      overloaded = 0;
      protocol_errors = 0;
      client_threads = [];
      jobs = Queue.create ();
      jobs_mu = Mutex.create ();
      jobs_cv = Condition.create ();
      executors = [];
    }
  in
  t.executors <- List.init executors (fun _ -> Domain.spawn (fun () -> executor_loop t));
  Api.server_counters_hook := (fun () -> counters t);
  t

let listen_addr t = match t.tcp with None -> None | Some (_, h, p) -> Some (h, p)

let overloaded_response =
  {
    Api.Response.status = Api.Response.Overloaded;
    text = "";
    artifact = None;
    data = Api.Response.D_none;
    stats = [];
    exit_code = 3;
  }

let protocol_error_response msg = error_response msg

(* Admission control: admit (true) or refuse (false) without blocking. *)
let admit t =
  Mutex.lock t.lock;
  let ok = t.in_flight < t.queue_limit && not t.stopping in
  if ok then begin
    t.in_flight <- t.in_flight + 1;
    t.requests <- t.requests + 1
  end
  else t.overloaded <- t.overloaded + 1;
  Mutex.unlock t.lock;
  ok

let release t =
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight - 1;
  Mutex.unlock t.lock

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let handle_request t ~session payload =
  match Api.request_of_json payload with
  | Error msg ->
      bump t (fun t -> t.protocol_errors <- t.protocol_errors + 1);
      protocol_error_response ("bad request: " ^ msg)
  | Ok req ->
      if not (admit t) then overloaded_response
      else
        Fun.protect
          ~finally:(fun () -> release t)
          (fun () ->
            if t.executor_count = 0 then
              Obs.Span.wrap
                ~args:[ ("session", string_of_int session) ]
                "serve:request"
                (fun () -> Api.execute t.ctx req)
            else begin
              let reply = Ivar.create () in
              Mutex.lock t.jobs_mu;
              Queue.push { j_req = req; j_session = session; j_reply = reply }
                t.jobs;
              Condition.signal t.jobs_cv;
              Mutex.unlock t.jobs_mu;
              Ivar.read reply
            end)

let handle_session t ~session fd =
  let rec loop () =
    match Framing.read_frame_opt fd with
    | None -> ()
    | Some payload ->
        let resp = handle_request t ~session payload in
        Framing.write_frame fd (Api.response_to_json resp);
        loop ()
    | exception (Framing.Closed | Framing.Oversized _ | Unix.Unix_error _) ->
        ()
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  bump t (fun t -> t.live_sessions <- t.live_sessions - 1)

(* One accept loop per listener; TCP connections get NODELAY (the
   protocol is small request/response frames — Nagle only adds
   latency). *)
let accept_loop t ~nodelay listen_fd =
  let rec loop () =
    match Unix.accept listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ ->
        (* listening socket closed by [stop] (or unusable): shut down *)
        ()
    | fd, _ ->
        if nodelay then
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
        let session =
          Mutex.lock t.lock;
          t.sessions <- t.sessions + 1;
          t.live_sessions <- t.live_sessions + 1;
          let id = t.sessions in
          Mutex.unlock t.lock;
          id
        in
        let th =
          Thread.create (fun () -> handle_session t ~session fd) ()
        in
        bump t (fun t -> t.client_threads <- th :: t.client_threads);
        loop ()
  in
  loop ()

(** Accept loop(s); blocks until {!stop}. *)
let serve t =
  match t.tcp with
  | None -> accept_loop t ~nodelay:false t.listen_fd
  | Some (tfd, _, _) ->
      let tcp_thread =
        Thread.create (fun () -> accept_loop t ~nodelay:true tfd) ()
      in
      accept_loop t ~nodelay:false t.listen_fd;
      Thread.join tcp_thread

(** Run the accept loop on a background thread (in-process daemon, as
    used by tests and the serve bench). *)
let start t = Thread.create serve t

(** Make {!serve} return: mark stopping and shut the listening sockets
    down. [shutdown] (not just [close]) is what wakes an [accept]
    blocked in another thread. Safe to call from a signal handler —
    no joins, no locks. *)
let interrupt t =
  t.stopping <- true;
  (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
   with Unix.Unix_error _ -> ());
  match t.tcp with
  | None -> ()
  | Some (tfd, _, _) -> (
      try Unix.shutdown tfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

(** Stop accepting, drain every in-flight request, then remove the
    socket file — in that order. Session threads are joined first (each
    finishes once its client disconnects and its admitted requests are
    answered — the executors are still running at that point), then the
    executor pool is woken and joined (the queue is necessarily empty),
    and only then does the socket file disappear: a vanished socket
    means no work remains, so a supervisor watching for it cannot
    observe a "stopped" daemon that is still computing. Idempotent. *)
let stop t =
  interrupt t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.tcp with
  | None -> ()
  | Some (tfd, _, _) -> (
      try Unix.close tfd with Unix.Unix_error _ -> ()));
  let threads =
    Mutex.lock t.lock;
    let ths = t.client_threads in
    t.client_threads <- [];
    Mutex.unlock t.lock;
    ths
  in
  List.iter Thread.join threads;
  let doms =
    Mutex.lock t.jobs_mu;
    let ds = t.executors in
    t.executors <- [];
    Condition.broadcast t.jobs_cv;
    Mutex.unlock t.jobs_mu;
    ds
  in
  List.iter Domain.join doms;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

let socket_path t = t.socket_path
