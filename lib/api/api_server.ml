(** The [debugtuner serve] daemon: a persistent process owning one
    {!Api.ctx} — engine memo tables, disk store, prepared corpora —
    shared by every client, so warm requests cost approximately
    nothing.

    Transport: Unix-domain socket, length-prefixed JSON ([Framing]).
    One accept thread; one lightweight thread per connection (a
    session, with its own id); requests execute on the shared context,
    whose lock serializes them — intra-request parallelism comes from
    the engine's Domain pool. Admission is bounded: at most
    [queue_limit] requests may be admitted (executing or waiting on
    the context) at once; beyond that a client gets an immediate
    [Overloaded] response — backpressure, never a hang. *)

type t = {
  ctx : Api.ctx;
  socket_path : string;
  queue_limit : int;
  listen_fd : Unix.file_descr;
  lock : Mutex.t;
  mutable stopping : bool;
  mutable in_flight : int;  (** admitted requests not yet answered *)
  mutable sessions : int;  (** connections accepted so far *)
  mutable live_sessions : int;
  mutable requests : int;  (** requests admitted and executed *)
  mutable overloaded : int;  (** requests refused by admission control *)
  mutable protocol_errors : int;  (** undecodable frames *)
  mutable client_threads : Thread.t list;
}

let counters t =
  Mutex.lock t.lock;
  let rows =
    [
      ("serve/sessions", t.sessions);
      ("serve/live_sessions", t.live_sessions);
      ("serve/requests", t.requests);
      ("serve/in_flight", t.in_flight);
      ("serve/overloaded", t.overloaded);
      ("serve/protocol_errors", t.protocol_errors);
    ]
  in
  Mutex.unlock t.lock;
  List.filter (fun (_, v) -> v <> 0) rows

let default_queue_limit = 8

(** Bind and listen; does not accept yet (call {!serve} or {!start}).
    An existing socket file at [socket] is replaced — stale sockets
    from a killed daemon must not block a restart. *)
let create ?(queue_limit = default_queue_limit) ~socket (ctx : Api.ctx) =
  if queue_limit < 1 then invalid_arg "queue_limit must be >= 1";
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind fd (Unix.ADDR_UNIX socket);
     Unix.listen fd 64
   with
  | () -> ()
  | exception e ->
      Unix.close fd;
      raise e);
  let t =
    {
      ctx;
      socket_path = socket;
      queue_limit;
      listen_fd = fd;
      lock = Mutex.create ();
      stopping = false;
      in_flight = 0;
      sessions = 0;
      live_sessions = 0;
      requests = 0;
      overloaded = 0;
      protocol_errors = 0;
      client_threads = [];
    }
  in
  Api.server_counters_hook := (fun () -> counters t);
  t

let overloaded_response =
  {
    Api.Response.status = Api.Response.Overloaded;
    text = "";
    artifact = None;
    data = Api.Response.D_none;
    stats = [];
    exit_code = 3;
  }

let protocol_error_response msg =
  {
    Api.Response.status = Api.Response.Error msg;
    text = "";
    artifact = None;
    data = Api.Response.D_none;
    stats = [];
    exit_code = 2;
  }

(* Admission control: admit (true) or refuse (false) without blocking. *)
let admit t =
  Mutex.lock t.lock;
  let ok = t.in_flight < t.queue_limit && not t.stopping in
  if ok then begin
    t.in_flight <- t.in_flight + 1;
    t.requests <- t.requests + 1
  end
  else t.overloaded <- t.overloaded + 1;
  Mutex.unlock t.lock;
  ok

let release t =
  Mutex.lock t.lock;
  t.in_flight <- t.in_flight - 1;
  Mutex.unlock t.lock

let bump t f =
  Mutex.lock t.lock;
  f t;
  Mutex.unlock t.lock

let handle_request t ~session payload =
  match Api.request_of_json payload with
  | Error msg ->
      bump t (fun t -> t.protocol_errors <- t.protocol_errors + 1);
      protocol_error_response ("bad request: " ^ msg)
  | Ok req ->
      if not (admit t) then overloaded_response
      else
        Fun.protect
          ~finally:(fun () -> release t)
          (fun () ->
            Obs.Span.wrap
              ~args:[ ("session", string_of_int session) ]
              "serve:request"
              (fun () -> Api.execute t.ctx req))

let handle_session t ~session fd =
  let rec loop () =
    match Framing.read_frame_opt fd with
    | None -> ()
    | Some payload ->
        let resp = handle_request t ~session payload in
        Framing.write_frame fd (Api.response_to_json resp);
        loop ()
    | exception (Framing.Closed | Framing.Oversized _ | Unix.Unix_error _) ->
        ()
  in
  (try loop () with _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  bump t (fun t -> t.live_sessions <- t.live_sessions - 1)

(** Accept loop; blocks until {!stop}. *)
let serve t =
  let rec loop () =
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ ->
        (* listening socket closed by [stop] (or unusable): shut down *)
        ()
    | fd, _ ->
        let session =
          Mutex.lock t.lock;
          t.sessions <- t.sessions + 1;
          t.live_sessions <- t.live_sessions + 1;
          let id = t.sessions in
          Mutex.unlock t.lock;
          id
        in
        let th =
          Thread.create (fun () -> handle_session t ~session fd) ()
        in
        bump t (fun t -> t.client_threads <- th :: t.client_threads);
        loop ()
  in
  loop ()

(** Run the accept loop on a background thread (in-process daemon, as
    used by tests and the serve bench). *)
let start t = Thread.create serve t

(** Make {!serve} return: mark stopping and shut the listening socket
    down. [shutdown] (not just [close]) is what wakes an [accept]
    blocked in another thread. Safe to call from a signal handler —
    no joins, no locks. *)
let interrupt t =
  t.stopping <- true;
  try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL
  with Unix.Unix_error _ -> ()

(** Stop accepting, wait for live sessions to drain, remove the socket
    file. Idempotent. *)
let stop t =
  interrupt t;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  let threads =
    Mutex.lock t.lock;
    let ths = t.client_threads in
    t.client_threads <- [];
    Mutex.unlock t.lock;
    ths
  in
  List.iter Thread.join threads;
  (try Unix.unlink t.socket_path with Unix.Unix_error _ -> ())

let socket_path t = t.socket_path
