(** Wire framing for the service protocol: one message is a 4-byte
    big-endian length prefix followed by that many payload bytes
    (UTF-8 JSON, but framing is payload-agnostic). Both sides read and
    write through this module, so partial reads, short writes and
    EINTR are handled in exactly one place. A length prefix larger
    than {!max_frame} is a protocol violation ({!Oversized}), not an
    allocation request — a garbage or hostile prefix must never make
    the daemon try to allocate gigabytes. *)

exception Closed
(** The peer went away mid-message (EOF inside a frame, or a
    write/read on a reset socket). A clean EOF *between* frames is
    reported by {!read_frame_opt} as [None] instead. *)

exception Oversized of int
(** The length prefix exceeded {!max_frame}. *)

let max_frame = 16 * 1024 * 1024

exception Clean_eof
(* internal: EOF before the first byte of a buffer *)

let rec retry_intr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

(* EPIPE/ECONNRESET mean the same thing as EOF here: the peer is gone. *)
let closed_error = function
  | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> true
  | _ -> false

let really_write fd (s : string) =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then begin
      let w =
        try retry_intr (fun () -> Unix.write fd b off (n - off))
        with e when closed_error e -> raise Closed
      in
      if w = 0 then raise Closed;
      go (off + w)
    end
  in
  go 0

(* Fill all of [buf]; [Clean_eof] if the peer closed before the first
   byte, [Closed] if it closed partway through. *)
let really_read_into fd buf =
  let n = Bytes.length buf in
  let rec go off =
    if off < n then begin
      let r =
        try retry_intr (fun () -> Unix.read fd buf off (n - off))
        with e when closed_error e -> 0
      in
      if r = 0 then raise (if off = 0 then Clean_eof else Closed)
      else go (off + r)
    end
  in
  go 0

let decode_length hdr =
  (Char.code (Bytes.get hdr 0) lsl 24)
  lor (Char.code (Bytes.get hdr 1) lsl 16)
  lor (Char.code (Bytes.get hdr 2) lsl 8)
  lor Char.code (Bytes.get hdr 3)

let encode_length n =
  let hdr = Bytes.create 4 in
  Bytes.set hdr 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set hdr 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set hdr 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set hdr 3 (Char.chr (n land 0xff));
  hdr

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then raise (Oversized n);
  really_write fd (Bytes.unsafe_to_string (encode_length n));
  really_write fd payload

let read_frame_opt fd =
  match
    let hdr = Bytes.create 4 in
    really_read_into fd hdr;
    let n = decode_length hdr in
    if n > max_frame then raise (Oversized n);
    let payload = Bytes.create n in
    (try really_read_into fd payload with Clean_eof -> raise Closed);
    Bytes.unsafe_to_string payload
  with
  | payload -> Some payload
  | exception Clean_eof -> None

let read_frame fd =
  match read_frame_opt fd with Some payload -> payload | None -> raise Closed
