(** Binary emission: flatten machine functions to an address space,
    resolve branches, drop fall-through jumps, and build the debug
    information (line table and location lists).

    The location-list builder is a small LiveDebugValues: per-block
    forward scans track which location holds each variable, a binding
    dies when its location is overwritten, and block entry states are the
    meet (agreement) of predecessor exits — disagreeing locations after a
    join are exactly how duplication-heavy passes (jump threading, loop
    rotation) lose variables. *)

type eop =
  | Eins of Mach.mkind  (** non-control instruction *)
  | Ejmp of int
  | Ecbr of Mach.mval * int * int
  | Eret of Mach.mval option

type func_info = {
  fi_name : string;
  fi_index : int;
  fi_entry : int;
  fi_end : int;  (** exclusive *)
  fi_data_words : int;
  fi_frame_words : int;  (** data + spill *)
  fi_slot_offset : (int * int * int) list;  (** slot id, offset, size *)
  fi_param_locs : Mach.mloc list;
  fi_activation : int option;
      (** shrink-wrapped functions pay the frame cost when execution first
          reaches this address *)
}

type binary = {
  code : eop array;
  line_of : int option array;
  funcs : func_info array;
  fn_by_name : (string, int) Hashtbl.t;
  fn_of_addr : int array;
  bin_globals : Ir.global_def list;
  debug : Dwarfish.t;
  text_digest : string;
  full_digest : string;
      (** content address of the whole binary — machine code, line
          attributions and debug sections. Two binaries sharing it are
          interchangeable for *any* measurement, including debug-quality
          metrics; [text_digest] alone only licenses sharing
          code-dependent results (execution cost), since identical
          .text can carry different debug info. *)
}

(* ------------------------------------------------------------------ *)
(* Identical-code folding (gcc's toplevel-reorder model)               *)

(* Canonical text of a function's code with labels normalized to layout
   positions and all debug artifacts stripped. Two functions with equal
   canonical text produce identical .text, so the later one can alias the
   earlier. *)
let canonical_text (m : Mach.mfn) =
  let pos = Hashtbl.create 16 in
  List.iteri (fun i l -> Hashtbl.replace pos l i) m.Mach.mf_layout;
  let lbl l = string_of_int (Option.value ~default:(-1) (Hashtbl.find_opt pos l)) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (String.concat ","
       (List.map Mach.mloc_to_string m.Mach.mf_param_locs));
  List.iter
    (fun (fs : Mach.frame_slot) ->
      Buffer.add_string buf (Printf.sprintf "|s%d:%d" fs.Mach.fs_id fs.Mach.fs_size))
    m.Mach.mf_frame;
  Buffer.add_string buf (Printf.sprintf "|spill%d|" m.Mach.mf_spill_words);
  List.iter
    (fun l ->
      let b = Mach.mblock m l in
      Buffer.add_string buf (lbl l ^ ":");
      List.iter
        (fun (i : Mach.minstr) ->
          match i.Mach.mk with
          | Mach.Mdbg _ -> ()
          | mk -> Buffer.add_string buf (Mach.mkind_to_string mk ^ ";"))
        b.Mach.mins;
      (match b.Mach.mterm with
      | Mach.Mret None -> Buffer.add_string buf "ret;"
      | Mach.Mret (Some v) ->
          Buffer.add_string buf ("ret " ^ Mach.mval_to_string v ^ ";")
      | Mach.Mjmp t -> Buffer.add_string buf ("jmp " ^ lbl t ^ ";")
      | Mach.Mcbr (c, t1, t2) ->
          Buffer.add_string buf
            (Printf.sprintf "cbr %s,%s,%s;" (Mach.mval_to_string c) (lbl t1)
               (lbl t2))))
    m.Mach.mf_layout;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Location-list construction                                          *)

module Var_map = Map.Make (struct
  type t = Ir.var_id

  let compare = compare
end)

type binding = Mach.dloc  (* where the variable's value is *)

type event = Bind of Ir.var_id * binding option | Write of Mach.mloc

(* The meet of two binding environments keeps only agreeing bindings. *)
let meet_env a b =
  Var_map.merge
    (fun _ x y -> match (x, y) with Some x, Some y when x = y -> Some x | _ -> None)
    a b

(* ------------------------------------------------------------------ *)

let slot_layout (m : Mach.mfn) =
  let offset = ref 0 in
  let table =
    List.map
      (fun (fs : Mach.frame_slot) ->
        let o = !offset in
        offset := o + fs.Mach.fs_size;
        (fs.Mach.fs_id, o, fs.Mach.fs_size))
      m.Mach.mf_frame
  in
  (table, !offset)

let dloc_to_location ~data_words = function
  | Mach.Dloc (Mach.Preg k) -> Dwarfish.In_reg k
  | Mach.Dloc (Mach.Pslot i) -> Dwarfish.In_slot (data_words + i)
  | Mach.Dconst n -> Dwarfish.Const n

(** [emit ?icf ?entry_values prog] flattens an ordered machine program
    into a binary. With [icf] (gcc's toplevel-reorder model) functions
    with identical code are folded into one. With [entry_values] (gcc's
    variable-tracking style), a binding killed by a register overwrite is
    continued as an entry-value-style entry until the next rebinding —
    present in the debug info, unusable by the debugger. *)
let emit ?(icf = false) ?(entry_values = false) (prog : Mach.mprogram) : binary =
  let code = ref [] in
  let line_of = ref [] in
  let fn_of_addr = ref [] in
  let next_addr = ref 0 in
  let push fi_index eop line =
    code := eop :: !code;
    line_of := line :: !line_of;
    fn_of_addr := fi_index :: !fn_of_addr;
    incr next_addr
  in
  let debug = Dwarfish.empty () in
  let funcs = ref [] in
  let fn_by_name = Hashtbl.create 16 in
  (* ICF: functions whose canonical text matches an earlier function
     become aliases and emit no code (and hence no debug info — the
     mechanical cost of folding). *)
  let canon_seen : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let fi_counter = ref 0 in
  List.iter
    (fun (m : Mach.mfn) ->
      let canon =
        if icf then canonical_text m
        else "unique:" ^ m.Mach.mf_name
      in
      match Hashtbl.find_opt canon_seen canon with
      | Some idx -> Hashtbl.replace fn_by_name m.Mach.mf_name idx
      | None ->
          let fi_index = !fi_counter in
          incr fi_counter;
          Hashtbl.replace canon_seen canon fi_index;
          Hashtbl.replace fn_by_name m.Mach.mf_name fi_index;
          let slot_offsets, data_words = slot_layout m in
          let entry_addr = !next_addr in
          (* First pass: assign addresses to blocks, accounting for
             dropped fall-through jumps and stripped Mdbg. *)
          let block_addr = Hashtbl.create 16 in
          let addr = ref entry_addr in
          let layout = m.Mach.mf_layout in
          let rec assign = function
            | [] -> ()
            | l :: rest ->
                Hashtbl.replace block_addr l !addr;
                let b = Mach.mblock m l in
                let real =
                  List.length
                    (List.filter
                       (fun (i : Mach.minstr) ->
                         match i.Mach.mk with Mach.Mdbg _ -> false | _ -> true)
                       b.Mach.mins)
                in
                addr := !addr + real;
                (match (b.Mach.mterm, rest) with
                | Mach.Mjmp t, next :: _ when t = next -> () (* fall-through *)
                | _ -> incr addr);
                assign rest
          in
          assign layout;
          let fn_end = !addr in
          (* Second pass: emit code, collect line entries and debug
             events per block. *)
          let events : (int, (int * event) list ref) Hashtbl.t =
            Hashtbl.create 16
          in
          let rec emit_blocks = function
            | [] -> ()
            | l :: rest ->
                let b = Mach.mblock m l in
                let evs = ref [] in
                Hashtbl.replace events l evs;
                List.iter
                  (fun (i : Mach.minstr) ->
                    match i.Mach.mk with
                    | Mach.Mdbg (v, d) ->
                        (* Takes effect from the next emitted address. *)
                        evs := (!next_addr, Bind (v, d)) :: !evs
                    | mk ->
                        List.iter
                          (fun w -> evs := (!next_addr, Write w) :: !evs)
                          (Mach.writes mk);
                        (match i.Mach.mline with
                        | Some line -> Dwarfish.add_line debug ~addr:!next_addr ~line
                        | None -> ());
                        push fi_index (Eins mk) i.Mach.mline)
                  b.Mach.mins;
                let target t = Hashtbl.find block_addr t in
                (match (b.Mach.mterm, rest) with
                | Mach.Mjmp t, next :: _ when t = next -> ()
                | Mach.Mjmp t, _ ->
                    (match b.Mach.mterm_line with
                    | Some line -> Dwarfish.add_line debug ~addr:!next_addr ~line
                    | None -> ());
                    push fi_index (Ejmp (target t)) b.Mach.mterm_line
                | Mach.Mcbr (c, t1, t2), _ ->
                    (match b.Mach.mterm_line with
                    | Some line -> Dwarfish.add_line debug ~addr:!next_addr ~line
                    | None -> ());
                    push fi_index (Ecbr (c, target t1, target t2)) b.Mach.mterm_line
                | Mach.Mret v, _ ->
                    (match b.Mach.mterm_line with
                    | Some line -> Dwarfish.add_line debug ~addr:!next_addr ~line
                    | None -> ());
                    push fi_index (Eret v) b.Mach.mterm_line);
                emit_blocks rest
          in
          emit_blocks layout;
          (* Location lists: dataflow over blocks, then per-block range
             emission. *)
          let preds = Hashtbl.create 16 in
          List.iter (fun l -> Hashtbl.replace preds l []) layout;
          let rec succs_of = function
            | [] -> ()
            | l :: rest ->
                let b = Mach.mblock m l in
                let add s =
                  match Hashtbl.find_opt preds s with
                  | Some ps -> Hashtbl.replace preds s (l :: ps)
                  | None -> ()
                in
                List.iter add (Mach.msuccs b.Mach.mterm);
                succs_of rest
          in
          succs_of layout;
          let block_out : (int, binding Var_map.t) Hashtbl.t = Hashtbl.create 16 in
          let block_in : (int, binding Var_map.t) Hashtbl.t = Hashtbl.create 16 in
          let transfer l env0 =
            let evs = List.rev !(Hashtbl.find events l) in
            List.fold_left
              (fun env (_, ev) ->
                match ev with
                | Bind (v, Some d) -> Var_map.add v d env
                | Bind (v, None) -> Var_map.remove v env
                | Write w ->
                    Var_map.filter (fun _ d -> d <> Mach.Dloc w) env)
              env0 evs
          in
          (* Optimistic (top-initialized) fixpoint: a block whose
             predecessors are all still unvisited is skipped — its input
             stays at top — so every defined in/out only ever loses
             bindings and the iteration terminates. (Treating unvisited
             inputs as bottom instead makes the dataflow non-monotone and
             can oscillate forever on loopy layouts.) *)
          let changed = ref true in
          while !changed do
            changed := false;
            List.iter
              (fun l ->
                let pred_outs =
                  List.filter_map (Hashtbl.find_opt block_out)
                    (Hashtbl.find preds l)
                in
                let inn_opt =
                  if l = m.Mach.mf_entry then Some Var_map.empty
                  else
                    match pred_outs with
                    | [] -> None (* all predecessors still at top *)
                    | first :: rest -> Some (List.fold_left meet_env first rest)
                in
                match inn_opt with
                | None -> ()
                | Some inn ->
                    let out = transfer l inn in
                    let same map tbl =
                      match Hashtbl.find_opt tbl l with
                      | Some old -> Var_map.equal ( = ) old map
                      | None -> false
                    in
                    if not (same inn block_in && same out block_out) then begin
                      Hashtbl.replace block_in l inn;
                      Hashtbl.replace block_out l out;
                      changed := true
                    end)
              layout
          done;
          (* Range emission. *)
          let layout_arr = Array.of_list layout in
          Array.iteri
            (fun i l ->
              let bstart = Hashtbl.find block_addr l in
              let bend =
                if i + 1 < Array.length layout_arr then
                  Hashtbl.find block_addr layout_arr.(i + 1)
                else fn_end
              in
              let open_ranges = ref Var_map.empty in
              let ghost_ranges = ref Var_map.empty in
              let start_env =
                Option.value ~default:Var_map.empty (Hashtbl.find_opt block_in l)
              in
              Var_map.iter
                (fun v d -> open_ranges := Var_map.add v (bstart, d) !open_ranges)
                start_env;
              let close ?(killed = false) v addr =
                match Var_map.find_opt v !open_ranges with
                | Some (lo, d) ->
                    if addr > lo then
                      Dwarfish.add_var debug ~var:v ~is_array:false
                        [
                          {
                            Dwarfish.lo;
                            hi = addr;
                            where = dloc_to_location ~data_words d;
                            usable = true;
                          };
                        ];
                    open_ranges := Var_map.remove v !open_ranges;
                    (* gcc-style variable tracking: the value still has a
                       recoverable expression, emitted as an entry-value
                       entry the debugger cannot materialize. *)
                    if killed && entry_values then
                      ghost_ranges := Var_map.add v (addr, d) !ghost_ranges
                | None -> ()
              in
              let close_ghost v addr =
                match Var_map.find_opt v !ghost_ranges with
                | Some (lo, d) ->
                    if addr > lo then
                      Dwarfish.add_var debug ~var:v ~is_array:false
                        [
                          {
                            Dwarfish.lo;
                            hi = addr;
                            where = dloc_to_location ~data_words d;
                            usable = false;
                          };
                        ];
                    ghost_ranges := Var_map.remove v !ghost_ranges
                | None -> ()
              in
              List.iter
                (fun (addr, ev) ->
                  match ev with
                  | Bind (v, d) -> (
                      close v addr;
                      close_ghost v addr;
                      match d with
                      | Some d -> open_ranges := Var_map.add v (addr, d) !open_ranges
                      | None -> ())
                  | Write w ->
                      let victims =
                        Var_map.filter (fun _ (_, d) -> d = Mach.Dloc w) !open_ranges
                      in
                      Var_map.iter (fun v _ -> close ~killed:true v addr) victims)
                (List.rev !(Hashtbl.find events l));
              Var_map.iter (fun v _ -> close v bend) !open_ranges;
              Var_map.iter (fun v _ -> close_ghost v bend) !ghost_ranges)
            layout_arr;
          (* Frame-resident variables: whole-function (or post-activation)
             slot locations. *)
          let activation =
            if m.Mach.mf_shrink_wrapped then begin
              (* First address whose instruction touches the frame. *)
              let found = ref None in
              List.iter
                (fun l ->
                  let b = Mach.mblock m l in
                  let a = ref (Hashtbl.find block_addr l) in
                  List.iter
                    (fun (i : Mach.minstr) ->
                      match i.Mach.mk with
                      | Mach.Mdbg _ -> ()
                      | mk ->
                          if !found = None && Mach.touches_frame mk then
                            found := Some !a;
                          incr a)
                    b.Mach.mins)
                layout;
              !found
            end
            else None
          in
          let static_start =
            match activation with Some a -> a | None -> entry_addr
          in
          List.iter
            (fun (fs : Mach.frame_slot) ->
              match fs.Mach.fs_var with
              | Some v ->
                  let offset =
                    List.find_map
                      (fun (id, o, _) -> if id = fs.Mach.fs_id then Some o else None)
                      slot_offsets
                  in
                  (match offset with
                  | Some o ->
                      Dwarfish.add_var debug ~var:v ~is_array:fs.Mach.fs_array
                        [
                          {
                            Dwarfish.lo = static_start;
                            hi = fn_end;
                            where = Dwarfish.In_slot o;
                            usable = true;
                          };
                        ]
                  | None -> ())
              | None -> ())
            m.Mach.mf_frame;
          funcs :=
            {
              fi_name = m.Mach.mf_name;
              fi_index;
              fi_entry = entry_addr;
              fi_end = fn_end;
              fi_data_words = data_words;
              fi_frame_words = data_words + m.Mach.mf_spill_words;
              fi_slot_offset = slot_offsets;
              fi_param_locs = m.Mach.mf_param_locs;
              fi_activation = activation;
            }
            :: !funcs)
    prog.Mach.mfuncs;
  Dwarfish.finalize debug;
  let code = Array.of_list (List.rev !code) in
  let line_of = Array.of_list (List.rev !line_of) in
  let fn_of_addr = Array.of_list (List.rev !fn_of_addr) in
  let funcs =
    Array.of_list (List.sort (fun a b -> compare a.fi_index b.fi_index) (List.rev !funcs))
  in
  let digest v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  {
    code;
    line_of;
    funcs;
    fn_by_name;
    fn_of_addr;
    bin_globals = prog.Mach.mglobals;
    debug;
    text_digest = digest code;
    full_digest = digest (code, line_of, funcs, prog.Mach.mglobals, debug);
  }
