(** Machine-level passes, run between instruction selection and emission.

    - {!schedule}: post-RA list scheduling (gcc [schedule-insns2]).
      Separates producer-consumer pairs to dodge the VM's hazard
      penalties and hoists loads; instructions that end up displaced from
      their original order lose their line attribution, which is why this
      pass sits near the top of the paper's O2/O3 rankings.
    - {!sink}: machine code sinking (clang [Machine code sinking]) —
      moves a computation used in only one successor into it.
    - {!tail_merge}: identical block tails merged (gcc [crossjumping],
      clang's Control Flow Optimizer); the surviving copy keeps one set
      of line entries.
    - {!place_blocks}: frequency-driven block chaining (gcc
      [reorder-blocks], clang [Branch Prob BB Placement]); fall-through
      jumps disappear together with their line entries.
    - {!shrink_wrap}: marks functions whose entry can exit without
      touching the frame, deferring the frame cost and narrowing
      frame-resident variable ranges. *)

(* ------------------------------------------------------------------ *)
(* Post-RA list scheduling                                             *)

let instr_deps (a : Mach.mkind) (b : Mach.mkind) =
  (* Must [b] stay after [a]? RAW / WAR / WAW on locations, any pair of
     memory-or-effect instructions, and debug bindings pinned to their
     defining instruction (handled by the caller). *)
  let wa = Mach.writes a and ra = Mach.reads a in
  let wb = Mach.writes b and rb = Mach.reads b in
  let inter xs ys = List.exists (fun x -> List.mem x ys) xs in
  inter wa rb (* RAW *) || inter ra wb (* WAR *) || inter wa wb (* WAW *)
  || (Mach.touches_memory a && Mach.touches_memory b)
  || (Mach.has_side_effect a && Mach.has_side_effect b)

let schedule_block ~keep_lines (b : Mach.mblock) =
  let arr = Array.of_list b.Mach.mins in
  let n = Array.length arr in
  if n > 2 && n <= 200 then begin
    (* Dependence edges; Mdbg depends on the previous real instruction
       (it must stay glued after its def). *)
    let deps = Array.make n [] in
    for i = 0 to n - 1 do
      for j = 0 to i - 1 do
        let pinned_dbg =
          match arr.(i).Mach.mk with Mach.Mdbg _ -> j = i - 1 | _ -> false
        in
        let dbg_barrier =
          (* Real instructions must not move before a preceding Mdbg that
             they would unglue... only ordering wrt writes matters: a
             binding to location L must stay before the next write of L. *)
          match (arr.(j).Mach.mk, arr.(i).Mach.mk) with
          | Mach.Mdbg (_, Some (Mach.Dloc l)), mk -> List.mem l (Mach.writes mk)
          | _ -> false
        in
        if pinned_dbg || dbg_barrier || instr_deps arr.(j).Mach.mk arr.(i).Mach.mk
        then deps.(i) <- j :: deps.(i)
      done
    done;
    (* Greedy list scheduling: at each step pick the ready instruction,
       preferring (1) loads (start them early), (2) anything that does
       not read what the previously scheduled instruction wrote,
       (3) original order. *)
    let scheduled = Array.make n false in
    let order = ref [] in
    let last_writes = ref [] in
    for _slot = 0 to n - 1 do
      let ready =
        List.filter
          (fun i ->
            (not scheduled.(i)) && List.for_all (fun j -> scheduled.(j)) deps.(i))
          (List.init n (fun i -> i))
      in
      let score i =
        let mk = arr.(i).Mach.mk in
        let is_load = match mk with Mach.Mload _ -> 0 | _ -> 1 in
        let hazard =
          if List.exists (fun l -> List.mem l !last_writes) (Mach.reads mk) then 1
          else 0
        in
        (hazard, is_load, i)
      in
      match
        List.sort (fun a b -> compare (score a) (score b)) ready
      with
      | best :: _ ->
          scheduled.(best) <- true;
          order := best :: !order;
          (match arr.(best).Mach.mk with
          | Mach.Mdbg _ -> ()
          | mk -> last_writes := Mach.writes mk)
      | [] -> ()
    done;
    let order = Array.of_list (List.rev !order) in
    if Array.length order = n then begin
      (* Instructions whose relative rank changed lose their line —
         unless the target preserves locations on motion (LLVM). *)
      if not keep_lines then begin
        let rank = Array.make n 0 in
        Array.iteri (fun pos i -> rank.(i) <- pos) order;
        for i = 0 to n - 1 do
          match arr.(i).Mach.mk with
          | Mach.Mdbg _ -> ()
          | _ -> if rank.(i) <> i then arr.(i).Mach.mline <- None
        done
      end;
      b.Mach.mins <- Array.to_list (Array.map (fun i -> arr.(i)) order)
    end
  end

let schedule ?(keep_lines = false) (m : Mach.mfn) =
  List.iter (fun l -> schedule_block ~keep_lines (Mach.mblock m l)) m.Mach.mf_layout

(* ------------------------------------------------------------------ *)
(* Machine sinking                                                     *)

let mpreds (m : Mach.mfn) =
  let preds = Hashtbl.create 16 in
  List.iter (fun l -> Hashtbl.replace preds l []) m.Mach.mf_layout;
  List.iter
    (fun l ->
      let b = Mach.mblock m l in
      List.iter
        (fun s ->
          match Hashtbl.find_opt preds s with
          | Some ps -> Hashtbl.replace preds s (l :: ps)
          | None -> Hashtbl.replace preds s [ l ])
        (Mach.msuccs b.Mach.mterm))
    m.Mach.mf_layout;
  preds

let sink (m : Mach.mfn) =
  let preds = mpreds m in
  let single_pred t of_l =
    match Hashtbl.find_opt preds t with
    | Some [ p ] -> p = of_l
    | _ -> false
  in
  (* Move an instruction writing a location read only in one successor —
     and not live along the other edge — down into that successor. We
     approximate "not live elsewhere" very conservatively: the location
     must be read by the target block before any write, read by no other
     block before a write, and the instruction must be pure and its
     operands must not be rewritten between its position and the end of
     its block. *)
  let first_access_reads l (b : Mach.mblock) =
    let rec go = function
      | [] -> `Neither
      | (i : Mach.minstr) :: rest -> (
          match i.Mach.mk with
          | Mach.Mdbg _ -> go rest
          | mk ->
              if List.mem l (Mach.reads mk) then `Reads
              else if List.mem l (Mach.writes mk) then `Writes
              else go rest)
    in
    match go b.Mach.mins with
    | (`Reads | `Writes) as r -> r
    | `Neither -> (
        match b.Mach.mterm with
        | Mach.Mcbr (c, _, _) when List.mem l (Mach.mval_reads c) -> `Reads
        | Mach.Mret (Some v) when List.mem l (Mach.mval_reads v) -> `Reads
        | _ -> `Neither)
  in
  List.iter
    (fun bl ->
      let b = Mach.mblock m bl in
      match b.Mach.mterm with
      | Mach.Mcbr (_, t1, t2) when t1 <> t2 ->
          let b1 = Mach.mblock m t1 and b2 = Mach.mblock m t2 in
          (* Only sink when each successor has a single predecessor-like
             shape: approximated by the successor not being the entry and
             the instruction's destination being written before read in
             the other successor. *)
          let moved = ref [] in
          let rec scan kept = function
            | [] -> List.rev kept
            | (i : Mach.minstr) :: rest -> (
                match i.Mach.mk with
                | Mach.Mbin (_, d, _, _) | Mach.Mun (_, d, _) | Mach.Mmov (d, _)
                  when (not (Mach.has_side_effect i.Mach.mk))
                       && (not
                             (List.exists
                                (fun (r : Mach.minstr) ->
                                  List.exists
                                    (fun w ->
                                      List.mem w (Mach.reads i.Mach.mk)
                                      || List.mem w (Mach.writes i.Mach.mk))
                                    (Mach.writes r.Mach.mk)
                                  || List.mem d (Mach.reads r.Mach.mk))
                                rest))
                       &&
                       (match b.Mach.mterm with
                       | Mach.Mcbr (c, _, _) ->
                           not (List.mem d (Mach.mval_reads c))
                       | _ -> true) -> (
                    (* d unused in the rest of this block and not read by
                       the terminator: a sinking candidate. *)
                    match (first_access_reads d b1, first_access_reads d b2) with
                    | `Reads, `Writes when single_pred t1 bl ->
                        moved := (t1, i) :: !moved;
                        scan kept rest
                    | `Writes, `Reads when single_pred t2 bl ->
                        moved := (t2, i) :: !moved;
                        scan kept rest
                    | _ -> scan (i :: kept) rest)
                | _ -> scan (i :: kept) rest)
          in
          b.Mach.mins <- scan [] b.Mach.mins;
          List.iter
            (fun (target, (i : Mach.minstr)) ->
              i.Mach.mline <- None;
              let tb = Mach.mblock m target in
              tb.Mach.mins <- i :: tb.Mach.mins)
            !moved
      | _ -> ())
    m.Mach.mf_layout

(* ------------------------------------------------------------------ *)
(* Tail merging (crossjumping)                                         *)

let tail_key (i : Mach.minstr) = Mach.mkind_to_string i.Mach.mk

let tail_merge (m : Mach.mfn) =
  (* Pairs of blocks with the same terminator whose instruction suffixes
     coincide: move the common suffix into a fresh block both jump to.
     The fresh block takes the FIRST block's lines; the second copy's
     line entries are gone. *)
  let same_term a b =
    match (a, b) with
    | Mach.Mjmp x, Mach.Mjmp y -> x = y
    | Mach.Mret None, Mach.Mret None -> true
    | Mach.Mret (Some x), Mach.Mret (Some y) -> x = y
    | _ -> false
  in
  let labels = m.Mach.mf_layout in
  let merged = ref false in
  List.iteri
    (fun ai a_l ->
      List.iteri
        (fun bi b_l ->
          if (not !merged) && bi > ai then begin
            match (Hashtbl.find_opt m.Mach.mf_blocks a_l,
                   Hashtbl.find_opt m.Mach.mf_blocks b_l) with
            | Some a, Some b when same_term a.Mach.mterm b.Mach.mterm ->
                let ra =
                  List.rev
                    (List.filter
                       (fun (i : Mach.minstr) ->
                         match i.Mach.mk with Mach.Mdbg _ -> false | _ -> true)
                       a.Mach.mins)
                and rb =
                  List.rev
                    (List.filter
                       (fun (i : Mach.minstr) ->
                         match i.Mach.mk with Mach.Mdbg _ -> false | _ -> true)
                       b.Mach.mins)
                in
                let rec common acc (xs : Mach.minstr list) (ys : Mach.minstr list)
                    =
                  match (xs, ys) with
                  | x :: xs', y :: ys' when tail_key x = tail_key y ->
                      common (x :: acc) xs' ys'
                  | _ -> acc
                in
                let suffix = common [] ra rb in
                let k = List.length suffix in
                if k >= 2 then begin
                  merged := true;
                  (* New label reusing a fresh id. *)
                  let fresh =
                    1
                    + Hashtbl.fold (fun l _ acc -> max l acc) m.Mach.mf_blocks 0
                  in
                  let nb =
                    {
                      Mach.mb_label = fresh;
                      mins = suffix;
                      mterm = a.Mach.mterm;
                      mterm_line = a.Mach.mterm_line;
                      mb_prob = 1.0;
                      mb_freq = a.Mach.mb_freq +. b.Mach.mb_freq;
                    }
                  in
                  Hashtbl.replace m.Mach.mf_blocks fresh nb;
                  let chop (blk : Mach.mblock) =
                    (* Remove the last k real instructions (and any Mdbg
                       interleaved after the cut keeps its place). *)
                    let rec drop n acc = function
                      | [] -> List.rev acc
                      | (i : Mach.minstr) :: rest -> (
                          match i.Mach.mk with
                          | Mach.Mdbg _ when n > 0 -> drop n acc rest
                          | _ when n > 0 -> drop (n - 1) acc rest
                          | _ -> drop 0 (i :: acc) rest)
                    in
                    blk.Mach.mins <- List.rev (drop k [] (List.rev blk.Mach.mins));
                    blk.Mach.mterm <- Mach.Mjmp fresh
                  in
                  chop a;
                  chop b;
                  m.Mach.mf_layout <- m.Mach.mf_layout @ [ fresh ]
                end
            | _ -> ()
          end)
        labels)
    labels

let tail_merge_all (m : Mach.mfn) =
  (* Iterate a few times; each call merges at most one pair. *)
  for _ = 1 to 8 do
    tail_merge m
  done

(* ------------------------------------------------------------------ *)
(* Block placement                                                     *)

let place_blocks (m : Mach.mfn) =
  let preds = mpreds m in
  (* Greedy chaining: start from the entry, repeatedly append the most
     probable unplaced successor; then continue with the hottest
     unplaced block. Cold blocks drift to the end; fall-through edges
     replace taken jumps. *)
  let placed = Hashtbl.create 16 in
  let order = ref [] in
  let place l =
    if not (Hashtbl.mem placed l) then begin
      Hashtbl.replace placed l ();
      order := l :: !order
    end
  in
  let best_successor l =
    let b = Mach.mblock m l in
    match b.Mach.mterm with
    | Mach.Mjmp t when not (Hashtbl.mem placed t) -> Some t
    | Mach.Mcbr (_, t1, t2) ->
        let p1 = b.Mach.mb_prob and p2 = 1.0 -. b.Mach.mb_prob in
        let cand =
          List.filter
            (fun (t, _) -> not (Hashtbl.mem placed t))
            [ (t1, p1); (t2, p2) ]
        in
        (match List.sort (fun (_, a) (_, b) -> compare b a) cand with
        | (t, _) :: _ -> Some t
        | [] -> None)
    | _ -> None
  in
  let rec chain l =
    place l;
    match best_successor l with Some next -> chain next | None -> ()
  in
  chain m.Mach.mf_entry;
  (* Remaining blocks: hottest first, each starting a new chain. *)
  let rec drain () =
    let remaining =
      List.filter (fun l -> not (Hashtbl.mem placed l)) m.Mach.mf_layout
    in
    match
      List.sort
        (fun a b ->
          compare (Mach.mblock m b).Mach.mb_freq (Mach.mblock m a).Mach.mb_freq)
        remaining
    with
    | [] -> ()
    | l :: _ ->
        chain l;
        drain ()
  in
  drain ();
  m.Mach.mf_layout <- List.rev !order;
  (* A block stitched after a non-predecessor (a chain break: control
     never falls into it from above) loses the statement anchor of its
     first instruction — reordering breaks the contiguity the line
     table's is_stmt heuristics rely on (gcc's bbro behaviour; see
     DESIGN.md). *)
  let rec strip = function
    | a :: (b :: _ as rest) ->
        let b_preds = Option.value ~default:[] (Hashtbl.find_opt preds b) in
        (if not (List.mem a b_preds) then
           let blk = Mach.mblock m b in
           match
             List.find_opt
               (fun (i : Mach.minstr) ->
                 match i.Mach.mk with Mach.Mdbg _ -> false | _ -> true)
               blk.Mach.mins
           with
           | Some i -> i.Mach.mline <- None
           | None -> ());
        strip rest
    | _ -> ()
  in
  strip (List.tl m.Mach.mf_layout |> fun t -> List.hd m.Mach.mf_layout :: t)

(* ------------------------------------------------------------------ *)
(* Shrink wrapping                                                     *)

let shrink_wrap (m : Mach.mfn) =
  (* Profitable when the entry block itself touches no frame word and
     can reach a return without ever touching the frame. *)
  let entry = Mach.mblock m m.Mach.mf_entry in
  let entry_clean =
    List.for_all
      (fun (i : Mach.minstr) -> not (Mach.touches_frame i.Mach.mk))
      entry.Mach.mins
    && List.for_all
         (function Mach.Pslot _ -> false | Mach.Preg _ -> true)
         m.Mach.mf_param_locs
  in
  let has_frame = m.Mach.mf_frame <> [] || m.Mach.mf_spill_words > 0 in
  if entry_clean && has_frame then begin
    (* Some path from entry must avoid the frame entirely for the
       deferral to pay off. *)
    let rec frame_free l visited =
      if List.mem l visited then false
      else
        let b = Mach.mblock m l in
        let clean =
          List.for_all
            (fun (i : Mach.minstr) -> not (Mach.touches_frame i.Mach.mk))
            b.Mach.mins
        in
        clean
        &&
        match b.Mach.mterm with
        | Mach.Mret _ -> true
        | t -> List.exists (fun s -> frame_free s (l :: visited)) (Mach.msuccs t)
    in
    if entry_clean && frame_free m.Mach.mf_entry [] then
      m.Mach.mf_shrink_wrapped <- true
  end

(* ------------------------------------------------------------------ *)

(** The machine passes selected in [opts], in execution order, as
    [(name, pass)] pairs — the names match what a sanitizer or tracer
    wants to report. *)
let passes (opts : Mach.opts) : (string * (Mach.mfn -> unit)) list =
  List.concat
    [
      (if opts.Mach.sink then [ ("mach-sink", sink) ] else []);
      (if opts.Mach.schedule then
         [
           ( "mach-schedule",
             schedule ~keep_lines:opts.Mach.sched_keep_lines );
         ]
       else []);
      (if opts.Mach.tail_merge then [ ("mach-tail-merge", tail_merge_all) ]
       else []);
      (if opts.Mach.place_blocks then [ ("mach-place-blocks", place_blocks) ]
       else []);
      (if opts.Mach.shrink_wrap then [ ("mach-shrink-wrap", shrink_wrap) ]
       else []);
    ]

(** Apply the machine passes selected in [opts]. Callers that want a
    boundary hook iterate {!passes} themselves (the toolchain driver
    does, firing its [Instrument.t] after each pass). *)
let run (m : Mach.mfn) (opts : Mach.opts) =
  List.iter (fun (_, pass) -> pass m) (passes opts)
