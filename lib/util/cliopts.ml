(** Command-line options shared by the bench harness and the CLI.

    Both front-ends expose the same measurement/observability switches
    (--stats, --json, --jobs, --sanitize, --trace, --profile); each
    option's name, metavariable and help string live here exactly once.
    The bench harness consumes them through {!parse}; the cmdliner-based
    CLI builds its [Arg.info]s from the same {!spec}s, so the two always
    agree on spelling and semantics. This module must stay free of
    cmdliner (util underpins every library in the repo). *)

type spec = {
  o_name : string;  (** long option, with the leading "--" *)
  o_docv : string option;  (** argument metavariable; [None] = flag *)
  o_doc : string;  (** help string (cmdliner markup-free) *)
}

let stats =
  {
    o_name = "--stats";
    o_docv = None;
    o_doc =
      "print the unified counter table (engine caches, sanitizer \
       boundaries, observability counters) after the run";
  }

let json =
  {
    o_name = "--json";
    o_docv = Some "FILE";
    o_doc = "write machine-readable timings and the counter table to FILE";
  }

let jobs =
  {
    o_name = "--jobs";
    o_docv = Some "N";
    o_doc = "size of the measurement engine's worker pool (default 1)";
  }

let sanitize =
  {
    o_name = "--sanitize";
    o_docv = None;
    o_doc = "validate every pass boundary during compilation";
  }

let trace =
  {
    o_name = "--trace";
    o_docv = Some "FILE";
    o_doc =
      "record an execution trace and write it to FILE as Chrome \
       trace_event JSON (load in chrome://tracing or Perfetto)";
  }

let profile =
  {
    o_name = "--profile";
    o_docv = None;
    o_doc = "print a sorted self-time report of the traced spans";
  }

let cache_dir =
  {
    o_name = "--cache-dir";
    o_docv = Some "DIR";
    o_doc =
      "persistent artifact cache directory (default _cache, or \
       $DEBUGTUNER_CACHE when set)";
  }

let no_cache =
  {
    o_name = "--no-cache";
    o_docv = None;
    o_doc = "disable the persistent artifact cache for this run";
  }

let no_prefix_cache =
  {
    o_name = "--no-prefix-cache";
    o_docv = None;
    o_doc =
      "disable pass-prefix incremental compilation for sweeps (compile \
       every configuration from scratch)";
  }

let socket =
  {
    o_name = "--socket";
    o_docv = Some "PATH";
    o_doc = "unix-domain socket path of the service daemon";
  }

let timeout =
  {
    o_name = "--timeout";
    o_docv = Some "SECONDS";
    o_doc =
      "bound every blocking socket read/write when talking to the daemon \
       (default: wait forever)";
  }

let queue_limit =
  {
    o_name = "--queue-limit";
    o_docv = Some "N";
    o_doc =
      "maximum requests admitted at once before the daemon answers \
       'overloaded' instead of queueing (default 8)";
  }

let listen =
  {
    o_name = "--listen";
    o_docv = Some "HOST:PORT";
    o_doc =
      "additionally serve the same protocol over TCP on HOST:PORT \
       (port 0 binds an ephemeral port, reported at startup)";
  }

let executors =
  {
    o_name = "--executors";
    o_docv = Some "N";
    o_doc =
      "size of the daemon's executor domain pool — requests from \
       different clients that execute concurrently (0 = execute inline \
       on session threads, serialized; default min(4, cores))";
  }

let connect =
  {
    o_name = "--connect";
    o_docv = Some "ENDPOINT";
    o_doc =
      "run this command in the debugtuner serve daemon at ENDPOINT — a \
       unix socket path, or HOST:PORT for a TCP daemon — instead of \
       in-process (shares its caches)";
  }

let shard =
  {
    o_name = "--shard";
    o_docv = Some "I/N";
    o_doc =
      "run only this shard of the experiment corpus (1-based; e.g. 2/4) \
       and emit a partial instead of final tables";
  }

let corpus =
  {
    o_name = "--corpus";
    o_docv = Some "N";
    o_doc =
      "size of the generated experiment corpus (synth sweeps, fuzz \
       programs and self-compilation subjects; seed-deterministic)";
  }

let partial_dir =
  {
    o_name = "--partial-dir";
    o_docv = Some "DIR";
    o_doc =
      "directory where shard runs write (and merge reads) per-shard \
       partial JSON files";
  }

let shared =
  [
    stats; json; jobs; sanitize; trace; profile; cache_dir; no_cache;
    no_prefix_cache; socket; listen; executors; timeout; queue_limit;
    connect; shard; corpus; partial_dir;
  ]

type common = {
  mutable c_stats : bool;
  mutable c_json : string option;
  mutable c_jobs : int;
  mutable c_sanitize : bool;
  mutable c_trace : string option;
  mutable c_profile : bool;
  mutable c_cache_dir : string option;
  mutable c_no_cache : bool;
  mutable c_no_prefix_cache : bool;
  mutable c_socket : string option;
  mutable c_listen : string option;
  mutable c_executors : int;
  mutable c_timeout : float option;
  mutable c_queue_limit : int;
  mutable c_connect : string option;
  mutable c_shard : (int * int) option;
  mutable c_corpus : int option;
  mutable c_partial_dir : string option;
}

let defaults () =
  {
    c_stats = false;
    c_json = None;
    c_jobs = 1;
    c_sanitize = false;
    c_trace = None;
    c_profile = false;
    c_cache_dir = None;
    c_no_cache = false;
    c_no_prefix_cache = false;
    c_socket = None;
    c_listen = None;
    c_executors = min 4 (Domain.recommended_domain_count ());
    c_timeout = None;
    c_queue_limit = 8;
    c_connect = None;
    c_shard = None;
    c_corpus = None;
    c_partial_dir = None;
  }

(** The one strict shard-spec parser: both front-ends route "--shard"
    arguments through it so a bad spec always produces the same
    one-line message. Accepts exactly [I/N] with 1 <= I <= N. *)
let parse_shard (s : string) : (int * int, string) result =
  let bad () =
    Error
      (Printf.sprintf
         "invalid shard spec %S (expected I/N with 1 <= I <= N, e.g. 2/4)" s)
  in
  let all_digits part =
    part <> "" && String.for_all (fun c -> c >= '0' && c <= '9') part
  in
  match String.index_opt s '/' with
  | None -> bad ()
  | Some slash -> (
      let i_part = String.sub s 0 slash
      and n_part = String.sub s (slash + 1) (String.length s - slash - 1) in
      if not (all_digits i_part && all_digits n_part) then bad ()
      else
        match (int_of_string_opt i_part, int_of_string_opt n_part) with
        | Some i, Some n when 1 <= i && i <= n -> Ok (i, n)
        | _ -> bad ())

let value name = function
  | v :: rest -> (v, rest)
  | [] -> invalid_arg (name ^ " requires an argument")

let int_value name rest =
  let v, rest = value name rest in
  match int_of_string_opt v with
  | Some n -> (n, rest)
  | None -> invalid_arg (Printf.sprintf "%s: not an integer: %s" name v)

let float_value name rest =
  let v, rest = value name rest in
  match float_of_string_opt v with
  | Some f -> (f, rest)
  | None -> invalid_arg (Printf.sprintf "%s: not a number: %s" name v)

(** [parse c argv] consumes every shared option from [argv] into [c] and
    returns the arguments it did not recognize, in their original
    order. Raises [Invalid_argument] on a missing or malformed option
    argument. *)
let parse (c : common) (argv : string list) : string list =
  let rec go acc = function
    | [] -> List.rev acc
    | a :: rest when a = stats.o_name ->
        c.c_stats <- true;
        go acc rest
    | a :: rest when a = json.o_name ->
        let v, rest = value a rest in
        c.c_json <- Some v;
        go acc rest
    | a :: rest when a = jobs.o_name ->
        let n, rest = int_value a rest in
        c.c_jobs <- n;
        go acc rest
    | a :: rest when a = sanitize.o_name ->
        c.c_sanitize <- true;
        go acc rest
    | a :: rest when a = trace.o_name ->
        let v, rest = value a rest in
        c.c_trace <- Some v;
        go acc rest
    | a :: rest when a = profile.o_name ->
        c.c_profile <- true;
        go acc rest
    | a :: rest when a = cache_dir.o_name ->
        let v, rest = value a rest in
        c.c_cache_dir <- Some v;
        go acc rest
    | a :: rest when a = no_cache.o_name ->
        c.c_no_cache <- true;
        go acc rest
    | a :: rest when a = no_prefix_cache.o_name ->
        c.c_no_prefix_cache <- true;
        go acc rest
    | a :: rest when a = socket.o_name ->
        let v, rest = value a rest in
        c.c_socket <- Some v;
        go acc rest
    | a :: rest when a = listen.o_name ->
        let v, rest = value a rest in
        c.c_listen <- Some v;
        go acc rest
    | a :: rest when a = executors.o_name ->
        let n, rest = int_value a rest in
        c.c_executors <- n;
        go acc rest
    | a :: rest when a = timeout.o_name ->
        let f, rest = float_value a rest in
        c.c_timeout <- Some f;
        go acc rest
    | a :: rest when a = queue_limit.o_name ->
        let n, rest = int_value a rest in
        c.c_queue_limit <- n;
        go acc rest
    | a :: rest when a = connect.o_name ->
        let v, rest = value a rest in
        c.c_connect <- Some v;
        go acc rest
    | a :: rest when a = shard.o_name -> (
        let v, rest = value a rest in
        match parse_shard v with
        | Ok pair ->
            c.c_shard <- Some pair;
            go acc rest
        | Error msg -> invalid_arg msg)
    | a :: rest when a = corpus.o_name ->
        let n, rest = int_value a rest in
        if n < 1 then invalid_arg (Printf.sprintf "%s: must be >= 1" a);
        c.c_corpus <- Some n;
        go acc rest
    | a :: rest when a = partial_dir.o_name ->
        let v, rest = value a rest in
        c.c_partial_dir <- Some v;
        go acc rest
    | a :: rest -> go (a :: acc) rest
  in
  go [] argv

(* ------------------------------------------------------------------ *)
(* Unified (name, value) counter table renderers — the single stats
   path: whatever counters a front-end collects, they print through
   these two functions, as text or as JSON. *)

let kv_lines (rows : (string * int) list) : string list =
  let w =
    List.fold_left (fun acc (n, _) -> max acc (String.length n)) 0 rows
  in
  List.map (fun (n, v) -> Printf.sprintf "%-*s %d" w n v) rows

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let kv_json_rows (rows : (string * int) list) : string list =
  List.map
    (fun (n, v) ->
      Printf.sprintf "{\"name\": \"%s\", \"value\": %d}" (json_escape n) v)
    rows
