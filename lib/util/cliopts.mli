(** Command-line options shared by the bench harness and the CLI: each
    switch's name, metavariable and help string declared exactly once.
    The bench harness consumes them via {!parse}; the cmdliner CLI
    builds its [Arg.info]s from the same {!spec}s. Keep this module
    free of cmdliner — util underpins every library in the repo. *)

type spec = {
  o_name : string;  (** long option, with the leading "--" *)
  o_docv : string option;  (** argument metavariable; [None] = flag *)
  o_doc : string;  (** help string *)
}

val stats : spec
val json : spec
val jobs : spec
val sanitize : spec
val trace : spec
val profile : spec
val cache_dir : spec
val no_cache : spec
val no_prefix_cache : spec
val socket : spec
val listen : spec
val executors : spec
val timeout : spec
val queue_limit : spec
val connect : spec
val shard : spec
val corpus : spec
val partial_dir : spec

val shared : spec list
(** All of the above, in help order. *)

type common = {
  mutable c_stats : bool;
  mutable c_json : string option;
  mutable c_jobs : int;
  mutable c_sanitize : bool;
  mutable c_trace : string option;
  mutable c_profile : bool;
  mutable c_cache_dir : string option;
  mutable c_no_cache : bool;
  mutable c_no_prefix_cache : bool;
  mutable c_socket : string option;
  mutable c_listen : string option;
  mutable c_executors : int;
  mutable c_timeout : float option;
  mutable c_queue_limit : int;
  mutable c_connect : string option;
  mutable c_shard : (int * int) option;
  mutable c_corpus : int option;
  mutable c_partial_dir : string option;
}

val defaults : unit -> common

val parse_shard : string -> (int * int, string) result
(** The single strict ["I/N"] shard-spec parser shared by every
    front-end: 1-based index, [1 <= I <= N], digits only. Anything else
    ([0/4], [5/4], ["a/b"], missing slash) is an [Error] carrying a
    one-line message ready for a [debugtuner: <msg>] usage error. *)

val parse : common -> string list -> string list
(** [parse c argv] consumes every shared option from [argv] into [c]
    and returns the unrecognized arguments in their original order.
    Raises [Invalid_argument] on a missing or malformed option
    argument. *)

val kv_lines : (string * int) list -> string list
(** A unified counter table as aligned ["name   value"] text lines. *)

val kv_json_rows : (string * int) list -> string list
(** The same table as one JSON object per row
    ([{"name": ..., "value": ...}]); the caller joins and indents. *)
