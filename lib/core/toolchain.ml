(** The toolchain driver: MiniC source + configuration -> binary.

    Pipelines for the two compiler families are lists of named pass
    instances; disabling a name (the paper's setup, our OptPassGate
    analog) skips every instance carrying it. Backend behaviours
    (coalescing, scheduling, placement, …) are toggled through named
    flags folded into {!Mach.opts}.

    An optional AutoFDO profile (source-line -> sample count) overrides
    the static branch-probability estimates and feeds callsite hotness,
    reproducing the paper's Section V-C setup. *)

type profile = { line_counts : (int, int) Hashtbl.t; total_samples : int }

type env = {
  prog : Ir.program;
  roots : string list;
  mutable pure : string -> bool;
  profile : profile option;
  enabled : string -> bool;  (** pass-toggle lookup (master gates) *)
}

type entry =
  | Ir_pass of string * (env -> unit)
  | Backend_flag of string * (Mach.opts -> Mach.opts)

let entry_name = function Ir_pass (n, _) | Backend_flag (n, _) -> n

(* ------------------------------------------------------------------ *)
(* Profile annotation                                                  *)

(* Set block frequencies and branch probabilities from per-line sample
   counts. Blocks whose lines carry no samples get a small floor, so
   lost samples (debug-info holes in the profiling binary!) directly
   degrade the frequency picture. *)
let annotate_from_profile (prof : profile) (prog : Ir.program) =
  Hashtbl.iter
    (fun _ fn ->
      Ir.iter_blocks fn (fun b ->
          let count = ref 0 in
          List.iter
            (fun (i : Ir.instr) ->
              match i.Ir.line with
              | Some l ->
                  count :=
                    max !count
                      (Option.value ~default:0
                         (Hashtbl.find_opt prof.line_counts l))
              | None -> ())
            b.Ir.instrs;
          (match b.Ir.term_line with
          | Some l ->
              count :=
                max !count
                  (Option.value ~default:0 (Hashtbl.find_opt prof.line_counts l))
          | None -> ());
          b.Ir.freq <- float_of_int !count +. 0.01);
      (* Branch probabilities from successor frequencies, with
         hysteresis: near-balanced counts stay at 0.5 so sampling noise
         cannot flip block placement (AutoFDO's FS-discriminator
         smoothing plays the same role). *)
      Ir.iter_blocks fn (fun b ->
          match b.Ir.term with
          | Ir.Cbr (_, l1, l2) when l1 <> l2 ->
              let f1 = (Ir.block fn l1).Ir.freq
              and f2 = (Ir.block fn l2).Ir.freq in
              let total = f1 +. f2 in
              if total > 0.0 && abs_float (f1 -. f2) > 0.25 *. total then
                b.Ir.prob <- f1 /. total
              else b.Ir.prob <- 0.5
          | _ -> ()))
    prog.Ir.funcs

let apply_profile env =
  match env.profile with
  | Some prof -> annotate_from_profile prof env.prog
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Pipeline definitions                                                *)

let inline_pass name policy =
  Ir_pass
    ( name,
      fun env ->
        ignore (Inline.run env.prog ~policy ~roots:env.roots);
        apply_profile env )

(* gcc's specific inlining toggles are all gated by the master [inline]
   switch (-fno-inline turns the inliner off wholesale). Every gated
   name is recorded so that [entry_effective] can expose the full
   behaviour-determining input of an entry to the sweep planner. *)
let gated_names : (string, unit) Hashtbl.t = Hashtbl.create 8

let gated_inline_pass name policy =
  Hashtbl.replace gated_names name ();
  Ir_pass
    ( name,
      fun env ->
        if env.enabled "inline" then begin
          ignore (Inline.run env.prog ~policy ~roots:env.roots);
          apply_profile env
        end )

let simple name f = Ir_pass (name, fun env -> f env.prog)

let gcc_pipeline (level : Config.level) : entry list =
  let base =
    [
      Ir_pass
        ( "ipa-pure-const",
          fun env ->
            Ipa_pure_const.run env.prog;
            env.pure <- Ipa_pure_const.pure_predicate env.prog );
      Ir_pass
        ( "guess-branch-probability",
          fun env ->
            Branch_prob.run_program env.prog;
            apply_profile env );
    ]
  in
  let inliners =
    match level with
    | Config.O0 -> []
    | Config.Og ->
        (* gcc -Og only inlines always_inline-style trivia; model as a
           present-but-idle toggle (it never reaches the top-10, as in
           the paper). *)
        [ inline_pass "inline" { Inline.policy_off with small_threshold = 1 } ]
    | Config.O1 ->
        [
          inline_pass "inline" { Inline.policy_off with small_threshold = 4 };
          gated_inline_pass "inline-fncs-called-once"
            { Inline.policy_off with called_once = true };
        ]
    | Config.O2 ->
        [
          inline_pass "inline" { Inline.policy_off with small_threshold = 8 };
          gated_inline_pass "inline-fncs-called-once"
            { Inline.policy_off with called_once = true };
          gated_inline_pass "inline-small-functions"
            { Inline.policy_off with small_threshold = 16 };
          gated_inline_pass "inline-functions"
            { Inline.policy_off with functions_threshold = 32 };
        ]
    | Config.O3 ->
        [
          inline_pass "inline" { Inline.policy_off with small_threshold = 8 };
          gated_inline_pass "inline-fncs-called-once"
            { Inline.policy_off with called_once = true };
          gated_inline_pass "inline-small-functions"
            { Inline.policy_off with small_threshold = 24 };
          gated_inline_pass "inline-functions"
            { Inline.policy_off with functions_threshold = 64 };
        ]
  in
  let scalar_cleanup =
    [
      simple "tree-ccp" Instcombine.run_program;
      simple "tree-forwprop" Instcombine.run_program;
      Ir_pass
        ( "tree-fre",
          fun env -> Cse.run_global_program ~pure_calls:env.pure env.prog );
      Ir_pass ("dce", fun env -> Dce.run_program ~pure_calls:env.pure env.prog);
    ]
  in
  let o1_extras =
    [
      simple "sra" Sroa.run_program;
      simple "tree-ch" Loop_rotate.run_program;
      simple "tree-loop-optimize" Licm.run_program;
      simple "tree-sink" Sink.run_program;
      Ir_pass
        ( "tree-dominator-opts",
          fun env ->
            Cse.run_global_program ~pure_calls:env.pure env.prog;
            Jump_threading.run_program env.prog );
      simple "tree-ter" Ter.run_program;
    ]
  in
  let o2_extras =
    [
      simple "tree-ivopts" (fun p ->
          Hashtbl.iter (fun _ fn -> ignore (Lsr.run fn)) p.Ir.funcs);
      simple "dse" (fun p -> ignore (Dse.run p));
      Ir_pass
        ( "expensive-opts",
          (* The -fexpensive-optimizations group: a second redundancy /
             sinking / dead-store round. *)
          fun env ->
            Cse.run_global_program ~pure_calls:env.pure env.prog;
            Sink.run_program env.prog;
            ignore (Dse.run env.prog) );
      simple "if-conversion" (fun p -> If_conversion.run_program p);
    ]
  in
  let o3_extras =
    [
      simple "cunroll" (fun p ->
          Hashtbl.iter (fun _ fn -> ignore (Loop_unroll.run fn ~factor:2)) p.Ir.funcs);
      simple "tree-slp-vectorize" Slp.run_program;
    ]
  in
  let late =
    [
      simple "thread-jumps" Jump_threading.run_program;
      Ir_pass ("dce", fun env -> Dce.run_program ~pure_calls:env.pure env.prog);
    ]
  in
  let backend_flags =
    [
      Backend_flag ("tree-coalesce-vars", fun o -> { o with Mach.coalesce = true });
      Backend_flag
        ("ira-share-spill-slots", fun o -> { o with Mach.share_spill_slots = true });
      Backend_flag ("shrink-wrap", fun o -> { o with Mach.shrink_wrap = true });
      Backend_flag ("reorder-blocks", fun o -> { o with Mach.place_blocks = true });
    ]
  in
  let o1_flags =
    [ Backend_flag ("toplevel-reorder", fun o -> { o with Mach.icf = true }) ]
  in
  let o2_flags =
    [
      Backend_flag ("schedule-insns2", fun o -> { o with Mach.schedule = true });
      Backend_flag ("crossjumping", fun o -> { o with Mach.tail_merge = true });
    ]
  in
  match level with
  | Config.O0 -> []
  | Config.Og -> base @ inliners @ scalar_cleanup @ late @ backend_flags
  | Config.O1 ->
      base @ inliners @ scalar_cleanup @ o1_extras @ late @ backend_flags
      @ o1_flags
  | Config.O2 ->
      base @ inliners @ scalar_cleanup @ o1_extras @ o2_extras @ late
      @ backend_flags @ o1_flags @ o2_flags
  | Config.O3 ->
      base @ inliners @ scalar_cleanup @ o1_extras @ o2_extras @ o3_extras
      @ late @ backend_flags @ o1_flags @ o2_flags

let clang_pipeline (level : Config.level) : entry list =
  let inliner threshold =
    inline_pass "Inliner" { Inline.policy_off with small_threshold = threshold }
  in
  let o1 =
    [
      simple "SROA" Sroa.run_program;
      simple "EarlyCSE" (fun p -> Cse.run_local_program p);
      simple "SimplifyCFG" Simplify_cfg.run_program;
      simple "InstCombine" Instcombine.run_program;
      (match level with
      | Config.O1 -> inliner 12
      | Config.O2 -> inliner 16
      | _ -> inliner 20);
      simple "LoopRotate" Loop_rotate.run_program;
      simple "LICM" Licm.run_program;
      simple "LoopStrengthReduce" (fun p ->
          Hashtbl.iter (fun _ fn -> ignore (Lsr.run fn)) p.Ir.funcs);
      simple "SimplifyCFG" Simplify_cfg.run_program;
      simple "InstCombine" Instcombine.run_program;
      simple "EarlyCSE" (fun p -> Cse.run_local_program p);
    ]
  in
  let o2 =
    [
      Ir_pass
        ( "GVN",
          fun env -> Cse.run_global_program ~pure_calls:env.pure env.prog );
      simple "JumpThreading" Jump_threading.run_program;
      simple "DSE" (fun p -> ignore (Dse.run p));
      simple "LoopUnroll" (fun p ->
          Hashtbl.iter (fun _ fn -> ignore (Loop_unroll.run fn ~factor:2)) p.Ir.funcs);
      simple "SimplifyCFG" Simplify_cfg.run_program;
    ]
  in
  let o3 =
    [
      simple "LoopUnroll" (fun p ->
          Hashtbl.iter (fun _ fn -> ignore (Loop_unroll.run fn ~factor:2)) p.Ir.funcs);
      simple "SLPVectorizer" Slp.run_program;
    ]
  in
  let dce_late =
    [
      Ir_pass ("ADCE", fun env -> Dce.run_program ~pure_calls:env.pure env.prog);
    ]
  in
  let purity =
    [
      Ir_pass
        ( "FunctionAttrs",
          fun env ->
            Ipa_pure_const.run env.prog;
            env.pure <- Ipa_pure_const.pure_predicate env.prog );
    ]
  in
  let machine_flags =
    [
      Backend_flag ("Machine code sinking", fun o -> { o with Mach.sink = true });
      Backend_flag
        ("Control Flow Optimizer", fun o -> { o with Mach.tail_merge = true });
      Backend_flag
        ("Branch Prob BB Placement", fun o -> { o with Mach.place_blocks = true });
      Backend_flag ("Machine Scheduler", fun o -> { o with Mach.schedule = true });
    ]
  in
  match level with
  | Config.O0 -> []
  | Config.Og | Config.O1 -> purity @ o1 @ dce_late @ machine_flags
  | Config.O2 -> purity @ o1 @ o2 @ dce_late @ machine_flags
  | Config.O3 -> purity @ o1 @ o2 @ o3 @ dce_late @ machine_flags

let pipeline (c : Config.t) =
  match c.Config.compiler with
  | Config.Gcc -> gcc_pipeline c.Config.level
  | Config.Clang -> clang_pipeline c.Config.level

(** Names of the toggleable passes of a configuration's level, in
    pipeline order, deduplicated — the sweep set of Section V. *)
let pass_names (c : Config.t) =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun e ->
      let n = entry_name e in
      if Hashtbl.mem seen n then None
      else begin
        Hashtbl.replace seen n ();
        Some n
      end)
    (pipeline c)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)

module Options = struct
  (** Everything [compile] accepts beyond the program itself, as one
      record (ablation hooks and the sanitizer gate included) — the
      replacement for the optional arguments that used to accrete on
      [compile]. [None] fields mean "compiler-family default" (or, for
      [sanitize], the global [Sanitize.enabled] gate). *)
  type t = {
    profile : profile option;  (** AutoFDO profile (Section V-C setup) *)
    entry_values : bool option;
        (** override entry-value emission (ablation hook) *)
    sched_keep_lines : bool option;
        (** override the scheduler's line retention (ablation hook) *)
    sanitize : bool option;
        (** validate every pass boundary; default: [!Sanitize.enabled] *)
  }

  let default =
    { profile = None; entry_values = None; sched_keep_lines = None; sanitize = None }

  let make ?profile ?entry_values ?sched_keep_lines ?sanitize () =
    { profile; entry_values; sched_keep_lines; sanitize }
end

(* ------------------------------------------------------------------ *)
(* The single pipeline driver

   Every consumer of the IR phase — [compile], [pipeline_trace], and
   the incremental [start]/[advance]/[resume] entry points — runs the
   same prelude and the same entry fold below, observing progress
   through one [notify] callback. There is deliberately no second copy
   of the fold anywhere: a driver change is a change for all consumers
   at once. *)

(** What the driver just did at one pipeline position. *)
type step =
  | Ran_pass of string  (** an [Ir_pass] executed (cleanup included) *)
  | Set_flag of string  (** a [Backend_flag] folded into the options *)
  | Skipped of string  (** the entry was disabled by the configuration *)

type ir_state = { st_env : env; mutable st_mach : Mach.opts }
(** The complete mutable state of the IR phase between two pipeline
    entries: the pass environment (program included) plus the backend
    options accumulated so far. Everything a snapshot must capture. *)

let compose_instruments ~sanitize instrument =
  Instrument.combine
    ((if sanitize then [ Sanitize.instrument () ] else [])
    @ (match Obs.pipeline_instrument () with Some i -> [ i ] | None -> [])
    @ if instrument == Instrument.nop then [] else [ instrument ])

let sanitize_of (options : Options.t) =
  Option.value ~default:!Sanitize.enabled options.Options.sanitize

(* Run a slice of pipeline entries against the state, firing [notify]
   once per entry (executed or skipped). *)
let run_entries (state : ir_state) (config : Config.t)
    ~(notify : Ir.program -> step -> unit) entries =
  List.iter
    (fun e ->
      match e with
      | Ir_pass (name, f) when Config.enabled config name ->
          f state.st_env;
          Cleanup.run_program state.st_env.prog;
          notify state.st_env.prog (Ran_pass name)
      | Backend_flag (name, f) when Config.enabled config name ->
          state.st_mach <- f state.st_mach;
          notify state.st_env.prog (Set_flag name)
      | e -> notify state.st_env.prog (Skipped (entry_name e)))
    entries

(* Lowering and SSA construction — everything that runs before pipeline
   entry 0, whatever the configuration's disabled set. *)
let ir_prelude (options : Options.t) src ~(config : Config.t) ~roots ~notify =
  let prog = Lower.lower_program src in
  let env =
    {
      prog;
      roots;
      pure = (fun _ -> false);
      profile = options.Options.profile;
      enabled = Config.enabled config;
    }
  in
  (* The freshly lowered program routes merges through slots; the
     sanitizer's "lower" boundary skips the dominance check. *)
  notify prog (Ran_pass "lower");
  let state = { st_env = env; st_mach = Mach.opts_o0 } in
  if config.Config.level <> Config.O0 then begin
    (* into-ssa: neither compiler lets you opt out of SSA
       construction. *)
    Hashtbl.iter (fun _ fn -> Mem2reg.run fn) prog.Ir.funcs;
    Cleanup.run_program prog;
    notify prog (Ran_pass "mem2reg");
    (* clang's register allocator always coalesces and shares stack
       slots and shrink-wraps; gcc exposes these as flags. *)
    (if config.Config.compiler = Config.Clang then
       state.st_mach <-
         {
           state.st_mach with
           Mach.coalesce = true;
           share_spill_slots = true;
           shrink_wrap = true;
           sched_keep_lines = true;
         });
    apply_profile env
  end;
  state

(* The whole IR phase: prelude, every pipeline entry, final profile
   re-annotation. *)
let ir_phase (options : Options.t) src ~(config : Config.t) ~roots ~notify =
  let state = ir_prelude options src ~config ~roots ~notify in
  if config.Config.level <> Config.O0 then begin
    run_entries state config ~notify (pipeline config);
    apply_profile state.st_env
  end;
  state

(* Instruction selection, machine passes and emission from a finished
   IR-phase state. *)
let backend_emit inst (options : Options.t) ~(config : Config.t)
    (state : ir_state) : Emit.binary =
  let prog = state.st_env.prog in
  let mfuncs =
    Instrument.phase inst "backend" (fun () ->
        (* Emission order: source order (our toplevel-reorder only gates
           ICF, which the emitter applies when the flag is on). *)
        let fns =
          Hashtbl.fold (fun _ fn acc -> fn :: acc) prog.Ir.funcs []
          |> List.sort (fun (a : Ir.fn) b ->
                 compare (a.Ir.f_line, a.Ir.f_name) (b.Ir.f_line, b.Ir.f_name))
        in
        (* Ablation hook: force the scheduler's line-retention behaviour
           (gcc's scheduler strips displaced lines, clang's keeps them)
           independently of the compiler family. *)
        (match options.Options.sched_keep_lines with
        | Some v -> state.st_mach <- { state.st_mach with Mach.sched_keep_lines = v }
        | None -> ());
        List.map
          (fun fn ->
            let m = Isel.translate_fn fn state.st_mach in
            inst.Instrument.on_pass "isel" (Instrument.Mach_fn m);
            List.iter
              (fun (name, pass) ->
                pass m;
                inst.Instrument.on_pass name (Instrument.Mach_fn m))
              (Mach_passes.passes state.st_mach);
            m)
          fns)
  in
  let entry_values =
    match options.Options.entry_values with
    | Some v -> v
    | None ->
        config.Config.compiler = Config.Gcc && config.Config.level <> Config.O0
  in
  Instrument.phase inst "emit" (fun () ->
      let bin =
        Emit.emit ~icf:state.st_mach.Mach.icf ~entry_values
          { Mach.mfuncs; mglobals = prog.Ir.prog_globals }
      in
      inst.Instrument.on_pass "emit" (Instrument.Binary bin);
      bin)

(* [notify] hook that forwards executed IR boundaries to an
   instrument. *)
let notify_on_pass inst prog = function
  | Ran_pass name -> inst.Instrument.on_pass name (Instrument.Ir_program prog)
  | Set_flag _ | Skipped _ -> ()

(** [compile ?options ?instrument src ~config ~roots] produces a binary.
    [roots] lists entry functions that must survive (harness entries).

    All observers run through the single {!Instrument.t} seam: the
    driver composes (in order) the sanitizer (when
    [options.sanitize] / the global gate asks for it), the {!Obs} tracer
    (when a recording session is active), and the caller's [instrument].
    Instruments are purely observational — the artifact is byte-for-byte
    identical whatever is attached. A sanitizer violation raises
    [Sanitize.Check_failed] naming the offending pass. *)
let compile ?(options = Options.default) ?(instrument = Instrument.nop)
    (src : Minic.Ast.program) ~(config : Config.t) ~roots : Emit.binary =
  let inst = compose_instruments ~sanitize:(sanitize_of options) instrument in
  let state =
    Instrument.phase inst "ir" (fun () ->
        ir_phase options src ~config ~roots ~notify:(notify_on_pass inst))
  in
  backend_emit inst options ~config state

(* ------------------------------------------------------------------ *)
(* Incremental compilation: checkpoints of the IR phase

   A checkpoint freezes the complete IR-phase state at a pipeline
   index: a deep [Ir.Snapshot] of the program plus the accumulated
   backend options. [resume] replays only the pipeline suffix — the
   sanitizer and [Instrument.on_pass] still fire at every boundary it
   executes — and must produce a binary byte-identical
   ([Emit.binary.full_digest]) to a straight-line [compile] of the same
   configuration; the unit and property tests gate exactly that.

   Soundness of sharing one checkpoint between configurations: entry
   [j]'s behaviour depends on the IR state, on [Config.enabled] of its
   own name, and (for gcc's gated inliners) on [Config.enabled
   "inline"] — whose entry always precedes the gated ones in the
   pipeline list. So two configurations that agree on the enabled bits
   of entries [0..k) run byte-identical prefixes, which is what
   {!prefix_fingerprint} captures (see DESIGN.md "Incremental
   compilation"). *)

type checkpoint = {
  cp_snapshot : Ir.Snapshot.t;
  cp_index : int;  (** pipeline entries [0, cp_index) already executed *)
  cp_mach : Mach.opts;
  cp_compiler : Config.compiler;
  cp_level : Config.level;
  cp_roots : string list;
}

let checkpoint_index cp = cp.cp_index
let checkpoint_bytes cp = Ir.Snapshot.size_bytes cp.cp_snapshot
let checkpoint_digest cp = Ir.Snapshot.digest cp.cp_snapshot
let checkpoint_opts cp = cp.cp_mach

let pipeline_length (config : Config.t) = List.length (pipeline config)

(** Content address of the execution prefix [0, k) of [config]'s
    pipeline: compiler, level, and the enabled bit of each of the first
    [k] entries. Two configurations with equal prefix fingerprints run
    byte-identical pipeline prefixes, so a checkpoint captured under one
    is valid for the other. Sound because {!Config.canonical} makes
    [Config.enabled] a pure set-membership test and because no pass
    closure reads any other configuration state (the one cross-entry
    read, gcc's master "inline" gate, always precedes its dependents —
    enforced by [test_prefix]). *)
let prefix_fingerprint (config : Config.t) (k : int) =
  let bits =
    List.filteri (fun i _ -> i < k) (pipeline config)
    |> List.map (fun e ->
           let n = entry_name e in
           if Config.enabled config n then n else "!" ^ n)
  in
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (Config.compiler_name config.Config.compiler
          :: Config.level_name config.Config.level
          :: bits)))

(** The full behaviour-determining input of entry [e] under [config]:
    its own enabled bit and, for gcc's gated inliners, the master
    "inline" bit their closures read ([gated_names]). Two same-family
    configurations agreeing on [entry_effective] of an entry execute it
    identically from identical state — the planner's merge walk keys on
    this, not on the raw bit, so it never shares across the one
    cross-entry dependency. *)
let entry_effective (config : Config.t) e =
  let name = entry_name e in
  Config.enabled config name
  && ((not (Hashtbl.mem gated_names name)) || Config.enabled config "inline")

let capture_checkpoint index (state : ir_state) ~(config : Config.t) ~roots =
  {
    cp_snapshot = Ir.Snapshot.capture state.st_env.prog;
    cp_index = index;
    cp_mach = state.st_mach;
    cp_compiler = config.Config.compiler;
    cp_level = config.Config.level;
    cp_roots = roots;
  }

let check_family (cp : checkpoint) (config : Config.t) what =
  if cp.cp_compiler <> config.Config.compiler || cp.cp_level <> config.Config.level
  then invalid_arg (what ^ ": checkpoint belongs to another pipeline family")

(* Rebuild a live IR-phase state from a checkpoint. The purity
   predicate is reconstructed from the restored program itself:
   [Ipa_pure_const.pure_predicate] reads the [is_pure] flags, which are
   snapshot state — before the purity pass ever ran they are all false,
   which is exactly the initial predicate. *)
let restore_state (options : Options.t) (cp : checkpoint) ~(config : Config.t) =
  let prog = Ir.Snapshot.restore cp.cp_snapshot in
  let env =
    {
      prog;
      roots = cp.cp_roots;
      pure = Ipa_pure_const.pure_predicate prog;
      profile = options.Options.profile;
      enabled = Config.enabled config;
    }
  in
  { st_env = env; st_mach = cp.cp_mach }

let entries_slice (config : Config.t) lo hi =
  List.filteri (fun i _ -> i >= lo && i < hi) (pipeline config)

(** [start src config] runs lowering and SSA construction and freezes
    the state before pipeline entry 0 — the root checkpoint every
    prefix of [config]'s family shares. *)
let start ?(options = Options.default) ?(instrument = Instrument.nop)
    (src : Minic.Ast.program) ~(config : Config.t) ~roots : checkpoint =
  let inst = compose_instruments ~sanitize:(sanitize_of options) instrument in
  let state =
    Instrument.phase inst "ir" (fun () ->
        ir_prelude options src ~config ~roots ~notify:(notify_on_pass inst))
  in
  capture_checkpoint 0 state ~config ~roots

(** [advance ~upto cp config] forks the checkpoint, executes pipeline
    entries [cp.index, upto) under [config]'s gates, and freezes the
    result. The input checkpoint is not consumed: advancing is how the
    sweep planner grows a trunk while keeping every divergence point
    alive. *)
let advance ?(options = Options.default) ?(instrument = Instrument.nop)
    ~(upto : int) (cp : checkpoint) (config : Config.t) : checkpoint =
  check_family cp config "Toolchain.advance";
  if upto < cp.cp_index then
    invalid_arg "Toolchain.advance: upto precedes the checkpoint";
  let entries = entries_slice config cp.cp_index upto in
  if
    not
      (List.exists (fun e -> Config.enabled config (entry_name e)) entries)
  then
    (* Every entry in the slice is disabled: nothing would execute, so
       the state is unchanged — share the snapshot instead of paying a
       restore + capture round trip just to bump the index. *)
    { cp with cp_index = upto }
  else begin
    let inst = compose_instruments ~sanitize:(sanitize_of options) instrument in
    let state = restore_state options cp ~config in
    Instrument.phase inst "ir" (fun () ->
        run_entries state config ~notify:(notify_on_pass inst) entries);
    capture_checkpoint upto state ~config ~roots:cp.cp_roots
  end

(** [resume ~from config] replays only the pipeline suffix
    [from.index, end) and finishes the compilation (backend and
    emission included). Byte-identical to [compile] of the same
    configuration whenever [from] was captured under a configuration
    agreeing with [config] on {!prefix_fingerprint} at [from]'s
    index. *)
let resume ?(options = Options.default) ?(instrument = Instrument.nop)
    ~(from : checkpoint) (config : Config.t) : Emit.binary =
  check_family from config "Toolchain.resume";
  let inst = compose_instruments ~sanitize:(sanitize_of options) instrument in
  let state = restore_state options from ~config in
  Instrument.phase inst "ir" (fun () ->
      if config.Config.level <> Config.O0 then begin
        run_entries state config ~notify:(notify_on_pass inst)
          (entries_slice config from.cp_index (pipeline_length config));
        apply_profile state.st_env
      end);
  backend_emit inst options ~config state

(* ------------------------------------------------------------------ *)
(* Pipeline tracing                                                    *)

type ir_stats = {
  st_instrs : int;  (** real (non-debug) instructions *)
  st_blocks : int;
  st_bindings : int;  (** Dbg bindings with a live operand *)
  st_optimized_out : int;  (** Dbg bindings already lost *)
  st_lines : int;  (** distinct source lines still on instructions *)
}

let ir_stats_of (prog : Ir.program) =
  let instrs = ref 0 and blocks = ref 0 in
  let bindings = ref 0 and dead = ref 0 in
  let lines = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ fn ->
      Ir.iter_blocks fn (fun b ->
          incr blocks;
          (match b.Ir.term_line with
          | Some l -> Hashtbl.replace lines l ()
          | None -> ());
          List.iter
            (fun (i : Ir.instr) ->
              match i.Ir.ik with
              | Ir.Dbg (_, Some _) -> incr bindings
              | Ir.Dbg (_, None) -> incr dead
              | _ ->
                  incr instrs;
                  (match i.Ir.line with
                  | Some l -> Hashtbl.replace lines l ()
                  | None -> ()))
            b.Ir.instrs))
    prog.Ir.funcs;
  {
    st_instrs = !instrs;
    st_blocks = !blocks;
    st_bindings = !bindings;
    st_optimized_out = !dead;
    st_lines = Hashtbl.length lines;
  }

(** [pipeline_trace src ~config ~roots] replays the IR phase of
    {!compile} and records the statistics after every executed pass —
    the [-fdump-tree-all] analog, showing where instructions, debug
    bindings and line attributions go. The first row ("lower") is the
    freshly lowered program; "mem2reg" follows SSA construction; later
    rows carry the pipeline's pass names. Backend flags do not run at
    the IR level and are reported with unchanged statistics. *)
let pipeline_trace (src : Minic.Ast.program) ~(config : Config.t) ~roots :
    (string * ir_stats) list =
  (* One more consumer of the single driver: same prelude, same entry
     fold as [compile] — the trace can never drift from what [compile]
     executes because there is no second fold to drift. *)
  let steps = ref [] in
  let notify prog = function
    | Ran_pass name -> steps := (name, ir_stats_of prog) :: !steps
    | Set_flag name -> steps := (name ^ " (backend)", ir_stats_of prog) :: !steps
    | Skipped _ -> ()
  in
  ignore (ir_phase Options.default src ~config ~roots ~notify : ir_state);
  List.rev !steps

(** Convenience: parse, check and compile a source string. The
    front-end gets its own span when tracing is on. *)
let compile_source ?options ?instrument source ~config ~roots =
  let ast =
    Obs.Span.wrap "frontend" (fun () -> Minic.Typecheck.parse_and_check source)
  in
  compile ?options ?instrument ast ~config ~roots
