(** The toolchain driver: MiniC source + configuration -> binary.

    This interface is the sanctioned surface: one options record, one
    instrument argument. Every observer of a compilation — the
    pass-boundary sanitizer, the [Obs] tracer, ad-hoc clients — runs
    through the same [Instrument.t] callback seam; there is no second
    hook path. *)

type profile = { line_counts : (int, int) Hashtbl.t; total_samples : int }
(** An AutoFDO profile: source-line -> sample count. Overrides the
    static branch-probability estimates and feeds callsite hotness
    (the paper's Section V-C setup). *)

module Options : sig
  (** Everything {!compile} accepts beyond the program itself. [None]
      fields mean "compiler-family default" (or, for [sanitize], the
      global [Sanitize.enabled] gate). *)
  type t = {
    profile : profile option;  (** AutoFDO profile *)
    entry_values : bool option;
        (** override entry-value emission (ablation hook) *)
    sched_keep_lines : bool option;
        (** override the scheduler's line retention (ablation hook) *)
    sanitize : bool option;
        (** validate every pass boundary; default: [!Sanitize.enabled] *)
  }

  val default : t
  val make :
    ?profile:profile ->
    ?entry_values:bool ->
    ?sched_keep_lines:bool ->
    ?sanitize:bool ->
    unit ->
    t
end

val compile :
  ?options:Options.t ->
  ?instrument:Instrument.t ->
  Minic.Ast.program ->
  config:Config.t ->
  roots:string list ->
  Emit.binary
(** [compile ?options ?instrument src ~config ~roots] produces a binary;
    [roots] lists entry functions that must survive (harness entries).
    The driver composes the sanitizer (when [options.sanitize] or the
    global gate asks for it), the [Obs] tracer (when a recording session
    is active) and the caller's [instrument] into one event stream:
    [on_phase_start]/[on_phase_end] bracket the ["ir"], ["backend"] and
    ["emit"] phases, and [on_pass] fires after lowering ("lower"), SSA
    construction ("mem2reg"), every enabled IR pass, each function's
    instruction selection ("isel") and machine passes, and emission
    ("emit"). Instruments are purely observational: the artifact is
    byte-for-byte identical whatever is attached. A sanitizer violation
    raises [Sanitize.Check_failed] naming the offending pass. *)

val compile_source :
  ?options:Options.t ->
  ?instrument:Instrument.t ->
  string ->
  config:Config.t ->
  roots:string list ->
  Emit.binary
(** Parse, typecheck and {!compile} a source string (the front-end gets
    its own [Obs] span when tracing is on). *)

(** {1 Pipeline inspection}

    The pass-table internals below are exposed for white-box clients
    (property tests replay the IR phase on hand-built environments).
    They are observers of pipeline {e structure}; driving a compilation
    still goes through {!compile}. *)

type env = {
  prog : Ir.program;
  roots : string list;
  mutable pure : string -> bool;
  profile : profile option;
  enabled : string -> bool;  (** pass-toggle lookup (master gates) *)
}
(** The mutable state an IR pass sees. *)

type entry =
  | Ir_pass of string * (env -> unit)
  | Backend_flag of string * (Mach.opts -> Mach.opts)

val entry_name : entry -> string

val entry_effective : Config.t -> entry -> bool
(** The full behaviour-determining input of an entry under a
    configuration: its own enabled bit and, for gcc's gated inliners,
    the master "inline" bit their closures also read. Two same-family
    configurations agreeing on [entry_effective] of an entry execute it
    identically from identical state; agreeing on the raw
    {!Config.enabled} bit alone does not guarantee that. *)

val pipeline : Config.t -> entry list
(** The level's pass table in execution order (both families). *)

val pass_names : Config.t -> string list
(** Names of the toggleable passes of a configuration's level, in
    pipeline order, deduplicated — the sweep set of Section V. *)

type ir_stats = {
  st_instrs : int;  (** real (non-debug) instructions *)
  st_blocks : int;
  st_bindings : int;  (** Dbg bindings with a live operand *)
  st_optimized_out : int;  (** Dbg bindings already lost *)
  st_lines : int;  (** distinct source lines still on instructions *)
}

val ir_stats_of : Ir.program -> ir_stats

val pipeline_trace :
  Minic.Ast.program ->
  config:Config.t ->
  roots:string list ->
  (string * ir_stats) list
(** Replay the IR phase of {!compile} and record the statistics after
    every executed pass — the [-fdump-tree-all] analog. The first row
    ("lower") is the freshly lowered program; "mem2reg" follows SSA
    construction; later rows carry the pipeline's pass names. Backend
    flags do not run at the IR level and are reported with unchanged
    statistics as ["<name> (backend)"] rows. Shares the one pipeline
    driver with {!compile} (one fold, two consumers). *)

(** {1 Incremental compilation}

    The IR phase is a resumable fold: a {!checkpoint} freezes its
    complete state (a deep {!Ir.Snapshot} of the program plus the
    accumulated backend options) at a pipeline index, and {!resume}
    replays only the suffix. Checkpoints are forkable — {!advance} and
    {!resume} never consume their input — so a sweep of configurations
    sharing a pipeline prefix compiles the prefix once. A resumed
    compilation is byte-identical ([Emit.binary.full_digest]) to a
    straight-line {!compile}; the sanitizer and [on_pass] instruments
    still fire at every boundary the suffix executes. *)

type checkpoint
(** Frozen IR-phase state before pipeline entry [index]; shares no
    mutable structure with any live compilation. *)

val checkpoint_index : checkpoint -> int
(** Pipeline entries [0, index) are already executed. *)

val checkpoint_bytes : checkpoint -> int
(** Approximate heap footprint of the underlying snapshot. *)

val checkpoint_digest : checkpoint -> string
(** Content digest of the snapshotted program
    ({!Ir.Snapshot.digest}) — iteration-order independent. *)

val checkpoint_opts : checkpoint -> Mach.opts
(** The accumulated backend options at the checkpoint. Together with
    {!checkpoint_digest} this is the complete compilation state: two
    same-family checkpoints at the same index with equal digests and
    equal options produce byte-identical binaries from any common
    suffix — the fact the sweep planner's no-op merging rests on. *)

val pipeline_length : Config.t -> int
(** Number of pipeline entries of the configuration's family (0 at O0). *)

val prefix_fingerprint : Config.t -> int -> string
(** [prefix_fingerprint config k] — content address of the execution
    prefix [0, k): compiler, level, and each of the first [k] entries'
    enabled bits. Equal fingerprints guarantee byte-identical prefix
    execution, so a checkpoint captured under one configuration can be
    resumed under any other with the same fingerprint at its index
    (the engine's prefix-cache key; soundness argument in DESIGN.md
    "Incremental compilation"). *)

val start :
  ?options:Options.t ->
  ?instrument:Instrument.t ->
  Minic.Ast.program ->
  config:Config.t ->
  roots:string list ->
  checkpoint
(** Lower, build SSA, and freeze the state before pipeline entry 0 —
    the root checkpoint shared by every configuration of the family. *)

val advance :
  ?options:Options.t ->
  ?instrument:Instrument.t ->
  upto:int ->
  checkpoint ->
  Config.t ->
  checkpoint
(** [advance ~upto cp config] forks [cp], executes entries
    [index, upto) under [config]'s pass gates, and freezes the result.
    When every entry in the slice is disabled the state cannot change,
    so the returned checkpoint shares [cp]'s snapshot (no copy is
    made). Raises [Invalid_argument] on a pipeline-family mismatch or
    [upto < index]. *)

val resume :
  ?options:Options.t ->
  ?instrument:Instrument.t ->
  from:checkpoint ->
  Config.t ->
  Emit.binary
(** [resume ~from config] replays pipeline entries [from.index, end)
    and finishes the compilation (backend, emission). Byte-identical to
    {!compile} whenever [from] was captured under a configuration whose
    {!prefix_fingerprint} at [from]'s index equals [config]'s. *)
