(** Compiler configurations: a compiler (pipeline family), an
    optimization level, and a set of disabled pass instances — the
    paper's [Ox-dy] configurations are values of this type. *)

type compiler = Gcc | Clang

type level = O0 | Og | O1 | O2 | O3

type t = {
  compiler : compiler;
  level : level;
  disabled : string list;
      (** pass names to disable; a name disables every instance of the
          pass in the pipeline (paper footnote 2) *)
}

let compiler_name = function Gcc -> "gcc" | Clang -> "clang"

let level_name = function
  | O0 -> "O0"
  | Og -> "Og"
  | O1 -> "O1"
  | O2 -> "O2"
  | O3 -> "O3"

(** Canonical form: [disabled] sorted and deduplicated. Two values that
    agree up to order and duplication of [disabled] denote the same
    semantic configuration ({!enabled} is a set-membership test), so
    every derived identity below goes through this. *)
let canonical c =
  { c with disabled = List.sort_uniq String.compare c.disabled }

let name c =
  let base = Printf.sprintf "%s-%s" (compiler_name c.compiler) (level_name c.level) in
  match (canonical c).disabled with
  | [] -> base
  | ds -> Printf.sprintf "%s-d%d" base (List.length ds)

let make ?(disabled = []) compiler level =
  canonical { compiler; level; disabled }

let level_index = function O0 -> 0 | Og -> 1 | O1 -> 2 | O2 -> 3 | O3 -> 4

let compare a b =
  let a = canonical a and b = canonical b in
  let c = Stdlib.compare a.compiler b.compiler in
  if c <> 0 then c
  else
    let c = Stdlib.compare (level_index a.level) (level_index b.level) in
    if c <> 0 then c
    else Stdlib.compare a.disabled b.disabled

let equal a b = compare a b = 0

let hash c = Hashtbl.hash (canonical c)

let fingerprint c =
  let c = canonical c in
  Printf.sprintf "%s:%s:%s" (compiler_name c.compiler) (level_name c.level)
    (String.concat "," c.disabled)

(** Standard levels of a compiler (clang has no Og, as in the paper). *)
let standard_levels = function
  | Gcc -> [ Og; O1; O2; O3 ]
  | Clang -> [ O1; O2; O3 ]

let enabled c pass_name = not (List.mem pass_name c.disabled)
