(** Compiler configurations: a pipeline family, an optimization level,
    and a set of disabled pass instances — the paper's [Ox-dy]
    configurations are values of this type. *)

type compiler = Gcc | Clang

type level = O0 | Og | O1 | O2 | O3

type t = {
  compiler : compiler;
  level : level;
  disabled : string list;
      (** pass names to disable; a name disables every instance of the
          pass in the pipeline (paper footnote 2) *)
}

val compiler_name : compiler -> string

val level_name : level -> string

val name : t -> string
(** E.g. ["gcc-O2"] or ["clang-O1-d5"]. Computed on the {!canonical}
    form, so permuted or duplicated [disabled] lists print the same
    name. *)

val make : ?disabled:string list -> compiler -> level -> t
(** Returns the {!canonical} form. *)

val canonical : t -> t
(** [disabled] sorted and deduplicated. [disabled] is semantically a
    set ({!enabled} is a membership test), so configurations that agree
    up to order and duplication are interchangeable; [canonical] is the
    chosen representative. *)

val fingerprint : t -> string
(** A stable, injective-on-canonical-forms content address, e.g.
    ["gcc:O2:dce,inline"] — the cache key of the measurement engine.
    Invariant: [fingerprint a = fingerprint b] iff [equal a b]. *)

val compare : t -> t -> int
(** Total order on canonical forms; consistent with {!equal} and
    suitable for [Map.Make]. *)

val equal : t -> t -> bool
(** Semantic equality: insensitive to order and duplication of
    [disabled] (unlike polymorphic equality, whose use as a cache key
    this function replaces). *)

val hash : t -> int
(** Compatible with {!equal}; suitable for [Hashtbl.Make]. *)

val standard_levels : compiler -> level list
(** [Og; O1; O2; O3] for gcc, [O1; O2; O3] for clang (which has no Og,
    as in the paper). *)

val enabled : t -> string -> bool
(** Is a pass instance enabled under this configuration? *)
