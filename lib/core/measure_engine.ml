(** The repository's measurement engine: {!Engine.Make} instantiated
    over the DebugTuner toolchain. This is the single entry point for
    all measurement — [Ranking], [Tuning], [Experiments], the bench
    harness and the CLI all issue their compile / trace / measure /
    benchmark jobs here, sharing one two-tier content-addressed cache:

    - tier 1, keyed by (AST digest, {!Config.fingerprint}): compiled
      binaries — a configuration is compiled once per program no matter
      how many tables ask for it;
    - tier 2, keyed by (subject digest, binary digest): traces, metric
      records and benchmark costs — two configurations whose binaries
      have identical content share one measurement, generalizing the
      paper's Section III-A discard optimization engine-wide. Metric
      and trace results key on {!Emit.binary.full_digest} (identical
      [.text] can still carry different debug info, and the metrics see
      it); benchmark costs key on the coarser
      {!Emit.binary.text_digest}, since execution cost depends on the
      machine code alone. *)

module Domain_impl = struct
  type config = Config.t
  type subject = Evaluation.prepared
  type bench_subject = Suite_types.sprogram
  type binary = Emit.binary
  type trace = Debugger.trace
  type metrics = Metrics.all_methods

  let config_key = Config.fingerprint
  let subject_ast_key (p : Evaluation.prepared) = p.Evaluation.ast_digest
  let subject_key (p : Evaluation.prepared) = p.Evaluation.content_digest

  (* Benchmark programs carry no corpus; their content address is the
     source plus the harness list (entries and seed workloads). *)
  let bench_subject_key (p : Suite_types.sprogram) =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string (p.Suite_types.p_source, p.Suite_types.p_harnesses) []))

  let binary_key (b : Emit.binary) = b.Emit.full_digest
  let binary_cost_key (b : Emit.binary) = b.Emit.text_digest

  (* Each worker function below runs only on a cache miss, so its span
     measures actual work (hits never reach it). The [Obs.enabled]
     guard keeps the disabled path allocation-free. *)
  let span name subject f =
    if not (Obs.enabled ()) then f ()
    else begin
      Obs.count ("engine/" ^ name);
      Obs.Span.wrap ("engine:" ^ name) ~args:[ ("subject", subject) ] f
    end

  let pname (p : Evaluation.prepared) =
    p.Evaluation.program.Suite_types.p_name

  let compile p config =
    span "compile" (pname p) (fun () -> Evaluation.compile p config)

  let trace (p : Evaluation.prepared) bin =
    span "trace" (pname p) (fun () -> Evaluation.trace_config_bin p bin)

  let metrics p bin tr =
    span "metrics" (pname p) (fun () ->
        Evaluation.metrics_of_trace p bin tr)

  let bench_compile (p : Suite_types.sprogram) config =
    span "bench_compile" p.Suite_types.p_name (fun () ->
        Toolchain.compile (Suite_types.ast p) ~config
          ~roots:(Suite_types.roots p))

  (** Total VM cost of every harness seed (the paper's SPEC timing; the
      median-of-three degenerates to one deterministic run). *)
  let bench_run (p : Suite_types.sprogram) (bin : Emit.binary) =
    span "bench_run" p.Suite_types.p_name @@ fun () ->
    List.fold_left
      (fun acc (h : Suite_types.harness) ->
        let inputs =
          if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds
        in
        List.fold_left
          (fun acc input ->
            let r =
              Vm.run bin ~entry:h.Suite_types.h_entry ~input Vm.default_opts
            in
            if r.Vm.timed_out then
              invalid_arg ("bench timed out: " ^ p.Suite_types.p_name);
            acc + r.Vm.cost)
          acc inputs)
      0 p.Suite_types.p_harnesses
end

include Engine.Make (Domain_impl)

(* ------------------------------------------------------------------ *)
(* Per-request counter sinks. Every counter in the repository is
   process-cumulative (the observable truth for `stats`/`bench`), but a
   service request must report only its own activity — and concurrent
   requests make the old snapshot/subtract trick unsound, because a
   request's two snapshots bracket other requests' work. Instead, every
   counter choke point (engine stats, disk store, sanitizer, obs
   counters, prefix planner, the counter tables below) mirrors its bump
   into the sink registered for the current (domain, thread), so each
   concurrent request accumulates a private table with the exact row
   names {!stats_table} uses. Pool workers inherit the spawning
   request's sink through the shadowed {!map}. *)
module Request_sink = struct
  type t = { tbl : (string, int) Hashtbl.t; mu : Mutex.t }

  let create () = { tbl = Hashtbl.create 32; mu = Mutex.create () }

  (* Sinks are keyed by (domain, thread): requests run concurrently
     both as systhreads of the main domain (tests, session threads) and
     as executor domains (the daemon's pool), and the two must never
     share a slot. [Thread.id] is only consulted on the main domain —
     executor domains run one request at a time. *)
  let registry : (int * int, t) Hashtbl.t = Hashtbl.create 8
  let reg_mu = Mutex.create ()

  let slot () =
    let d = (Domain.self () :> int) in
    if Domain.is_main_domain () then (d, Thread.id (Thread.self ())) else (d, 0)

  let current () =
    let k = slot () in
    Mutex.lock reg_mu;
    let s = Hashtbl.find_opt registry k in
    Mutex.unlock reg_mu;
    s

  (* May be called with other subsystems' locks held (the store notes
     under its own mutex), so this must remain a leaf: take only the
     registry and sink mutexes, call nothing else. *)
  let bump name v =
    match current () with
    | None -> ()
    | Some s ->
        Mutex.lock s.mu;
        let cur =
          match Hashtbl.find_opt s.tbl name with Some c -> c | None -> 0
        in
        Hashtbl.replace s.tbl name (cur + v);
        Mutex.unlock s.mu

  (* Scoped registration, restoring any previously-registered sink on
     exit so nested scopes (a request issuing a sub-request) compose. *)
  let with_sink s f =
    let k = slot () in
    Mutex.lock reg_mu;
    let prev = Hashtbl.find_opt registry k in
    Hashtbl.replace registry k s;
    Mutex.unlock reg_mu;
    Fun.protect
      ~finally:(fun () ->
        Mutex.lock reg_mu;
        (match prev with
        | Some p -> Hashtbl.replace registry k p
        | None -> Hashtbl.remove registry k);
        Mutex.unlock reg_mu)
      f

  let rows s =
    Mutex.lock s.mu;
    let out = Hashtbl.fold (fun n v acc -> (n, v) :: acc) s.tbl [] in
    Mutex.unlock s.mu;
    List.sort compare (List.filter (fun (_, v) -> v <> 0) out)
end

type request_sink = Request_sink.t

let create_request_sink = Request_sink.create
let with_request_sink = Request_sink.with_sink
let request_sink_rows = Request_sink.rows

let current_request_sink_rows () =
  match Request_sink.current () with
  | None -> []
  | Some s -> Request_sink.rows s

(* Pool workers run on fresh domains with no registered sink; wrap the
   worker body so the spawning request's attribution follows its work.
   Shadows the engine [map] for every consumer of this module (sweeps,
   Ranking, Tuning, Experiments). *)
let map t f xs =
  match Request_sink.current () with
  | None -> map t f xs
  | Some s -> map t (fun x -> Request_sink.with_sink s (fun () -> f x)) xs

(* Mirror the engine cache counters and disk-store activity into the
   current sink, with the exact row names {!stats_table} renders. *)
let () =
  Engine.Stats.set_observer
    (Some
       (fun name event ->
         let field =
           match event with
           | `Hit -> "hits"
           | `Miss -> "misses"
           | `Dedup -> "dedups"
         in
         Request_sink.bump ("engine/" ^ name ^ "/" ^ field) 1));
  Engine.Disk_store.set_note_observer
    (Some
       (fun cache field n ->
         Request_sink.bump ("store/" ^ cache ^ "/" ^ field) n));
  Sanitize.set_observer
    (Some
       (fun pass checks failures ->
         if checks <> 0 then
           Request_sink.bump ("sanitize/" ^ pass ^ "/checked") checks;
         if failures <> 0 then
           Request_sink.bump ("sanitize/" ^ pass ^ "/failures") failures));
  Obs.set_count_observer
    (Some (fun name n -> Request_sink.bump ("obs/" ^ name) n))

(* Bracket every disk-store I/O with an [Obs] span + counter. Installed
   at module init so the engine library itself never depends on
   lib/obs; free when observability is off. *)
let () =
  Engine.Disk_store.set_io_wrap
    (Some
       {
         Engine.Disk_store.wrap =
           (fun name args f ->
             if not (Obs.enabled ()) then f ()
             else begin
               Obs.count name;
               Obs.Span.wrap name ~args f
             end);
       })

(* The serialization schema stamp: [Marshal] is type-unsafe, so any
   change to the marshalled value layouts (or the compiler that decides
   them) must read as "stale entry, recompute". Bump the leading tag
   whenever a persisted type changes shape. *)
let cache_schema = "debugtuner-v1/" ^ Sys.ocaml_version

let cache_dir_of ?dir () =
  match dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "DEBUGTUNER_CACHE" with
      | Some d when d <> "" -> d
      | _ -> "_cache")

let open_store ?dir ?max_bytes () =
  Engine.Disk_store.create ?max_bytes ~schema:cache_schema
    ~dir:(cache_dir_of ?dir ()) ()

(* The store behind {!Vm.Decode}'s persistence seam (satellite of the
   decoded-program cache): process-global because the decode cache
   itself is — the last engine created with a store wins, which in
   every real deployment (CLI one-shot, daemon, bench) is the only
   one. *)
let decode_store : Engine.Disk_store.t option ref = ref None

let create ?workers ?store () =
  (match store with Some _ -> decode_store := store | None -> ());
  create ?workers ?store ()

let default_instance = lazy (create ())

(** The process-wide shared engine, for callers that do not thread an
    instance (CLI one-shots, tests). Experiment contexts create their
    own so cache statistics are per-run. *)
let default () = Lazy.force default_instance

(** The paper's headline number for a configuration, engine-cached. *)
let product t prepared config =
  (fst (measure t prepared config)).Metrics.m_hybrid.Metrics.product

(* ------------------------------------------------------------------ *)
(* Pass-prefix incremental compilation (DESIGN.md "Incremental
   compilation"). A sweep's configurations mostly run the identical
   pipeline prefix up to their first divergence; the planner below
   groups a config set by shared prefix, executes each shared segment
   once through [Toolchain.advance], and schedules only the divergent
   suffixes ([Toolchain.resume]) on the Domain pool. Results are seeded
   into the ordinary tier-1 table, so they are byte-identical and
   indistinguishable from straight-line compiles to every consumer. *)

let prefix_cache_enabled = ref true

module Prefix_stats = struct
  type t = {
    mutable hits : int;  (** suffix compiles that skipped a prefix *)
    mutable misses : int;  (** sweep compiles with nothing to share *)
    mutable snapshot_bytes : int;
    mutable passes_skipped : int;
    mutable merged : int;
        (** configs served a sibling's binary outright: every contested
            entry between them was a no-op on this subject, so not even
            the backend ran for them (see [plan_family]) *)
  }

  let state =
    { hits = 0; misses = 0; snapshot_bytes = 0; passes_skipped = 0; merged = 0 }

  let mutex = Mutex.create ()

  (* Mutations arrive as an arbitrary field update; diff the record
     around it so the per-request sink sees the same named deltas the
     stats_table rows report. *)
  let bump f =
    Mutex.lock mutex;
    let before =
      (state.hits, state.misses, state.snapshot_bytes, state.passes_skipped,
       state.merged)
    in
    f state;
    let h0, m0, b0, p0, g0 = before in
    let deltas =
      [
        ("prefix/hits", state.hits - h0);
        ("prefix/misses", state.misses - m0);
        ("prefix/snapshot_bytes", state.snapshot_bytes - b0);
        ("prefix/passes_skipped", state.passes_skipped - p0);
        ("prefix/merged", state.merged - g0);
      ]
    in
    Mutex.unlock mutex;
    List.iter
      (fun (n, v) -> if v <> 0 then Request_sink.bump n v)
      deltas

  let counters () =
    Mutex.lock mutex;
    let rows =
      [
        ("prefix/hits", state.hits);
        ("prefix/misses", state.misses);
        ("prefix/snapshot_bytes", state.snapshot_bytes);
        ("prefix/passes_skipped", state.passes_skipped);
        ("prefix/merged", state.merged);
      ]
    in
    Mutex.unlock mutex;
    rows

  let reset () =
    bump (fun s ->
        s.hits <- 0;
        s.misses <- 0;
        s.snapshot_bytes <- 0;
        s.passes_skipped <- 0;
        s.merged <- 0)
end

let prefix_counters = Prefix_stats.counters
let reset_prefix_counters = Prefix_stats.reset

(* Named process-global counter tables, one instance per subsystem.
   Thread-safe; [counters] returns sorted rows so every consumer prints
   deterministically. [Prefix] is the subsystem's row prefix in
   {!stats_table} ("shard/", ...), which is also how each bump is
   mirrored into the current request sink. *)
module Counter_table (Prefix : sig
  val prefix : string
end) =
struct
  let table : (string, int) Hashtbl.t = Hashtbl.create 8
  let mutex = Mutex.create ()

  let bump name v =
    Mutex.lock mutex;
    let cur = match Hashtbl.find_opt table name with Some c -> c | None -> 0 in
    Hashtbl.replace table name (cur + v);
    Mutex.unlock mutex;
    Request_sink.bump (Prefix.prefix ^ name) v

  let counters () =
    Mutex.lock mutex;
    let rows = Hashtbl.fold (fun n v acc -> (n, v) :: acc) table [] in
    Mutex.unlock mutex;
    List.sort compare rows

  let reset () =
    Mutex.lock mutex;
    Hashtbl.reset table;
    Mutex.unlock mutex
end

(* Shard progress/resume counters. The sharded experiment runner bumps
   these as it walks its slice of the corpus; they surface as shard/*
   rows of {!stats_table}, so a shard's JSON partial (and `--stats`)
   reports how far it got and how much of a rerun came warm from the
   store. Process-global like the sanitizer and prefix counters. *)
module Shard_stats = Counter_table (struct
  let prefix = "shard/"
end)

let shard_counters = Shard_stats.counters
let bump_shard_counter = Shard_stats.bump
let reset_shard_counters = Shard_stats.reset

(* Tuning-search counters (candidates evaluated, suffix-shared
   compiles, frontier size, dominated points, store-resumed
   evaluations). Surface as search/* rows of {!stats_table}; the bench
   dominance gate and the resume test read them. *)
module Search_stats = Counter_table (struct
  let prefix = "search/"
end)

let search_counters = Search_stats.counters
let bump_search_counter = Search_stats.bump
let reset_search_counters = Search_stats.reset

(* VM-layer counters, today just the decoded-program cache
   (decode_hits = decode results served from the persistent store,
   decode_misses = fresh decodes). Surface as vm/* rows of
   {!stats_table}. *)
module Vm_stats = Counter_table (struct
  let prefix = "vm/"
end)

let vm_counters = Vm_stats.counters
let reset_vm_counters = Vm_stats.reset

(* Key decoded programs into the persistent store: a warm daemon (or a
   second process sharing --cache-dir) skips re-decoding every binary
   it executes. A [None] result ("the fast core cannot run this
   binary") is persisted too — rediscovering it costs a full decode
   attempt. Failures degrade to a miss, exactly like every other store
   consumer; a payload that fails to unmarshal is evicted. *)
let () =
  Vm.Decode.set_persist
    (Some
       {
         Vm.Decode.ps_get =
           (fun key ->
             match !decode_store with
             | None -> None
             | Some s -> (
                 match Engine.Disk_store.get s ~cache:"vm-decode" ~key with
                 | None -> None
                 | Some data -> (
                     match
                       (Marshal.from_string data 0 : Vm.Decode.program option)
                     with
                     | p -> Some p
                     | exception _ ->
                         Engine.Disk_store.invalidate s ~cache:"vm-decode" ~key;
                         None)));
         ps_put =
           (fun key p ->
             match !decode_store with
             | None -> ()
             | Some s -> (
                 match Marshal.to_string p [] with
                 | data -> Engine.Disk_store.put s ~cache:"vm-decode" ~key data
                 | exception _ -> ()));
         ps_note =
           (fun hit ->
             if !decode_store <> None then
               Vm_stats.bump (if hit then "decode_hits" else "decode_misses") 1);
       })

let prefix_span name args f =
  if not (Obs.enabled ()) then f ()
  else begin
    Obs.count name;
    Obs.Span.wrap name ~args f
  end

(* One unit of sweep work: a suffix compile forked from a shared
   checkpoint, a group of configurations proven state-identical at the
   end of the pipeline (one backend run serves them all), or a
   configuration with no shareable prefix (singleton pipeline family),
   compiled straight. *)
type sweep_job =
  | Suffix of Config.t * Toolchain.checkpoint
  | Merged of Config.t list * Toolchain.checkpoint
  | Straight of Config.t

(* The prefix-sharing the divergence trie alone guarantees, as leaf
   depths: purely structural (a function of the enabled-bit vectors,
   never of pass behaviour). This is what the prefix/* counters report
   — [passes_skipped] is exactly the sum of shared-prefix lengths, the
   invariant the property tests pin down — while the execution walk in
   [plan_family] is free to do strictly better via no-op merging,
   surfaced separately as prefix/merged. *)
let structural_depths n tagged =
  let depths = ref [] in
  let note idx (c, _) = depths := (c, idx) :: !depths in
  let rec go idx tagged =
    match tagged with
    | [] -> ()
    | [ single ] -> note idx single
    | ((_, b0) :: rest) as all ->
        let k = ref idx in
        while
          !k < n && List.for_all (fun (_, b) -> b.(!k) = b0.(!k)) rest
        do
          incr k
        done;
        let k = !k in
        if k > idx then begin
          if k >= n then List.iter (note k) all else go k all
        end
        else if idx >= n then
          (* Identical bit vectors under distinct fingerprints (disabled
             passes outside this pipeline; always the case at O0, where
             the pipeline is empty). *)
          List.iter (note idx) all
        else begin
          let yes, no = List.partition (fun (_, b) -> b.(idx)) all in
          go idx yes;
          go idx no
        end
  in
  go 0 tagged;
  !depths

(* Divergence-tree construction for one pipeline family (all configs
   share compiler + level, hence the same pass table). Trunk segments on
   which every remaining config agrees are executed once via [advance];
   at the first disagreeing entry the contested entry is probed: it runs
   once on the enabled side, and if the state digest (and accumulated
   backend options) did not change, the entry was a no-op on this
   subject, the split is immaterial, and both sides continue together —
   on real suite programs most disabled passes are no-ops, so most
   sweep configurations merge all the way to the end of the pipeline
   and share a single backend run ([Merged]). Only genuinely divergent
   groups are partitioned and planned recursively; singletons run their
   unique suffix as a leaf [resume]. Deterministic: configs keep their
   input order, the enabled branch is planned first. *)
let plan_family ~ast ~roots configs =
  let rep = List.hd configs in
  let entries = Array.of_list (Toolchain.pipeline rep) in
  let n = Array.length entries in
  (* Raw bits drive the structural counters (the shared-prefix model the
     property tests pin down); effective bits — which fold in the gcc
     gated inliners' master-"inline" read — drive the execution walk,
     because only they determine an entry's behaviour. *)
  let bits c =
    Array.map (fun e -> Config.enabled c (Toolchain.entry_name e)) entries
  in
  let effective c = Array.map (fun e -> Toolchain.entry_effective c e) entries in
  List.iter
    (fun (_, depth) ->
      Prefix_stats.bump (fun s ->
          if depth > 0 then begin
            s.hits <- s.hits + 1;
            s.passes_skipped <- s.passes_skipped + depth
          end
          else s.misses <- s.misses + 1))
    (structural_depths n (List.map (fun c -> (c, bits c)) configs));
  let tagged = List.map (fun c -> (c, effective c)) configs in
  let note_capture cp =
    Prefix_stats.bump (fun s ->
        s.snapshot_bytes <- s.snapshot_bytes + Toolchain.checkpoint_bytes cp)
  in
  let cp0 =
    prefix_span "prefix:snapshot" [ ("upto", "0") ] (fun () ->
        Toolchain.start ast ~config:rep ~roots)
  in
  note_capture cp0;
  let jobs = ref [] in
  let rec plan cp tagged =
    let idx = Toolchain.checkpoint_index cp in
    match tagged with
    | [] -> ()
    | [ (c, _) ] -> jobs := Suffix (c, cp) :: !jobs
    | _ when idx >= n ->
        (* Two or more configs state-identical at the end of the
           pipeline: one backend run serves the whole group. *)
        jobs := Merged (List.map fst tagged, cp) :: !jobs
    | ((c0, b0) :: rest) as all ->
        let j = ref idx in
        while
          !j < n && List.for_all (fun (_, b) -> b.(!j) = b0.(!j)) rest
        do
          incr j
        done;
        let j = !j in
        if j > idx then begin
          (* Agreed segment [idx, j): execute it once. When every entry
             in it is disabled, [advance] shares the snapshot and there
             is no new capture to account for. *)
          let cp' =
            prefix_span "prefix:snapshot"
              [ ("upto", string_of_int j) ]
              (fun () -> Toolchain.advance ~upto:j cp c0)
          in
          let executed = ref false in
          for i = idx to j - 1 do
            if b0.(i) then executed := true
          done;
          if !executed then note_capture cp';
          plan cp' all
        end
        else begin
          (* Contested entry [idx]: probe it on the enabled side. *)
          let yes, no = List.partition (fun (_, b) -> b.(idx)) all in
          let rep_yes = fst (List.hd yes) in
          let cp_yes =
            prefix_span "prefix:snapshot"
              [ ("upto", string_of_int (idx + 1)) ]
              (fun () -> Toolchain.advance ~upto:(idx + 1) cp rep_yes)
          in
          if
            Toolchain.checkpoint_digest cp_yes = Toolchain.checkpoint_digest cp
            && Toolchain.checkpoint_opts cp_yes = Toolchain.checkpoint_opts cp
          then
            (* The entry was a no-op on this subject: skipping it and
               running it coincide, so the split is immaterial and
               everyone continues from the post-entry state. *)
            plan cp_yes all
          else begin
            note_capture cp_yes;
            plan cp_yes yes;
            plan cp no
          end
        end
  in
  plan cp0 tagged;
  List.rev !jobs

(* The generic sweep driver behind [compile_sweep] and
   [bench_compile_sweep]. [peek]/[seed]/[straight] abstract over the
   two tier-1 tables; [straight c] must be the exact producer the
   engine's own compile path runs. *)
let sweep t ~ast ~roots ~peek ~seed ~straight configs =
  let seen = Hashtbl.create 16 in
  let fresh c =
    let fp = Config.fingerprint c in
    if Hashtbl.mem seen fp then false
    else begin
      Hashtbl.add seen fp ();
      true
    end
  in
  let todo =
    List.filter (fun c -> fresh c && Option.is_none (peek c)) configs
  in
  if todo = [] then ()
  else if not !prefix_cache_enabled then
    (* Escape hatch (--no-prefix-cache): same compiles, no snapshots;
       still parallel, still seeded through the ordinary tier-1 path. *)
    ignore
      (map t (fun c -> seed c (fun () -> straight c)) todo : unit list)
  else begin
    (* Group by pipeline family, preserving input order. *)
    let families = ref [] in
    List.iter
      (fun c ->
        let key = (c.Config.compiler, c.Config.level) in
        match List.assoc_opt key !families with
        | Some cell -> cell := c :: !cell
        | None -> families := !families @ [ (key, ref [ c ]) ])
      todo;
    let jobs =
      List.concat_map
        (fun (_, cell) ->
          match List.rev !cell with
          | [ c ] -> [ Straight c ]
          | group -> plan_family ~ast ~roots group)
        !families
    in
    ignore
      (map t
         (fun job ->
           match job with
           | Straight c ->
               Prefix_stats.bump (fun s -> s.misses <- s.misses + 1);
               seed c (fun () -> straight c)
           | Suffix (c, cp) ->
               seed c (fun () ->
                   prefix_span "prefix:resume"
                     [ ("config", Config.fingerprint c) ]
                     (fun () -> Toolchain.resume ~from:cp c))
           | Merged (cs, cp) ->
               (* One backend run; every config in the group is seeded
                  the same (byte-identical) binary. *)
               let rep = List.hd cs in
               let bin =
                 lazy
                   (prefix_span "prefix:resume"
                      [ ("config", Config.fingerprint rep) ]
                      (fun () -> Toolchain.resume ~from:cp rep))
               in
               Prefix_stats.bump (fun s ->
                   s.merged <- s.merged + List.length cs - 1);
               List.iter (fun c -> seed c (fun () -> Lazy.force bin)) cs)
         jobs
        : unit list)
  end

let compile_sweep t (p : Evaluation.prepared) configs =
  sweep t ~ast:p.Evaluation.ast ~roots:p.Evaluation.roots
    ~peek:(fun c -> peek_compile t p c)
    ~seed:(fun c produce -> ignore (seed_compile t p c produce : Emit.binary))
    ~straight:(fun c -> Domain_impl.compile p c)
    configs

let bench_compile_sweep t (sp : Suite_types.sprogram) configs =
  sweep t ~ast:(Suite_types.ast sp) ~roots:(Suite_types.roots sp)
    ~peek:(fun c -> peek_bench_compile t sp c)
    ~seed:(fun c produce ->
      ignore (seed_bench_compile t sp c produce : Emit.binary))
    ~straight:(fun c -> Domain_impl.bench_compile sp c)
    configs

let sanitizer_stats () =
  List.map
    (fun (pass, checks, failures) ->
      ( "sanitize:" ^ pass,
        { Engine.Stats.hits = checks; misses = failures; dedups = 0 } ))
    (Sanitize.counters ())

(** One flat [(name, value)] table merging every counter source — the
    engine caches ([engine/<cache>/hits|misses|dedups], zero rows
    dropped), the sanitizer ([sanitize/<pass>/checked|failures]) and
    any live [Obs] counters ([obs/<name>]) — so [bench --stats] and the
    CLI render one table through one code path, text or JSON alike. *)
let stats_table t : (string * int) list =
  let engine_rows =
    List.concat_map
      (fun (name, { Engine.Stats.hits; misses; dedups }) ->
        List.filter
          (fun (_, v) -> v <> 0)
          [
            ("engine/" ^ name ^ "/hits", hits);
            ("engine/" ^ name ^ "/misses", misses);
            ("engine/" ^ name ^ "/dedups", dedups);
          ])
      (Engine.Stats.snapshot (stats t))
  in
  let sanitize_rows =
    List.concat_map
      (fun (pass, checks, failures) ->
        ("sanitize/" ^ pass ^ "/checked", checks)
        :: (if failures <> 0 then [ ("sanitize/" ^ pass ^ "/failures", failures) ]
            else []))
      (Sanitize.counters ())
  in
  let store_rows =
    match store t with
    | None -> []
    | Some s ->
        List.filter_map
          (fun (n, v) -> if v = 0 then None else Some ("store/" ^ n, v))
          (Engine.Disk_store.counters s)
  in
  let obs_rows =
    List.map (fun (n, v) -> ("obs/" ^ n, v)) (Obs.current_counters ())
  in
  let prefix_rows =
    List.filter (fun (_, v) -> v <> 0) (Prefix_stats.counters ())
  in
  let shard_rows =
    List.filter_map
      (fun (n, v) -> if v = 0 then None else Some ("shard/" ^ n, v))
      (Shard_stats.counters ())
  in
  let search_rows =
    List.filter_map
      (fun (n, v) -> if v = 0 then None else Some ("search/" ^ n, v))
      (Search_stats.counters ())
  in
  let vm_rows =
    List.filter_map
      (fun (n, v) -> if v = 0 then None else Some ("vm/" ^ n, v))
      (Vm_stats.counters ())
  in
  List.sort compare
    (engine_rows @ sanitize_rows @ store_rows @ obs_rows @ prefix_rows
   @ shard_rows @ search_rows @ vm_rows)

(** [stats_delta ~before after] subtracts two {!stats_table} snapshots
    row-wise (rows absent from [before] count from zero; zero-delta
    rows are dropped), preserving [after]'s sorted order. This is how
    a service request reports only its own work: snapshot the table,
    run, snapshot again, subtract — sound even though the underlying
    counters are process-cumulative. *)
let stats_delta ~before after : (string * int) list =
  List.filter_map
    (fun (name, v) ->
      let v0 =
        match List.assoc_opt name before with Some v0 -> v0 | None -> 0
      in
      if v - v0 = 0 then None else Some (name, v - v0))
    after
