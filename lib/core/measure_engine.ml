(** The repository's measurement engine: {!Engine.Make} instantiated
    over the DebugTuner toolchain. This is the single entry point for
    all measurement — [Ranking], [Tuning], [Experiments], the bench
    harness and the CLI all issue their compile / trace / measure /
    benchmark jobs here, sharing one two-tier content-addressed cache:

    - tier 1, keyed by (AST digest, {!Config.fingerprint}): compiled
      binaries — a configuration is compiled once per program no matter
      how many tables ask for it;
    - tier 2, keyed by (subject digest, binary digest): traces, metric
      records and benchmark costs — two configurations whose binaries
      have identical content share one measurement, generalizing the
      paper's Section III-A discard optimization engine-wide. Metric
      and trace results key on {!Emit.binary.full_digest} (identical
      [.text] can still carry different debug info, and the metrics see
      it); benchmark costs key on the coarser
      {!Emit.binary.text_digest}, since execution cost depends on the
      machine code alone. *)

module Domain_impl = struct
  type config = Config.t
  type subject = Evaluation.prepared
  type bench_subject = Suite_types.sprogram
  type binary = Emit.binary
  type trace = Debugger.trace
  type metrics = Metrics.all_methods

  let config_key = Config.fingerprint
  let subject_ast_key (p : Evaluation.prepared) = p.Evaluation.ast_digest
  let subject_key (p : Evaluation.prepared) = p.Evaluation.content_digest

  (* Benchmark programs carry no corpus; their content address is the
     source plus the harness list (entries and seed workloads). *)
  let bench_subject_key (p : Suite_types.sprogram) =
    Digest.to_hex
      (Digest.string
         (Marshal.to_string (p.Suite_types.p_source, p.Suite_types.p_harnesses) []))

  let binary_key (b : Emit.binary) = b.Emit.full_digest
  let binary_cost_key (b : Emit.binary) = b.Emit.text_digest

  (* Each worker function below runs only on a cache miss, so its span
     measures actual work (hits never reach it). The [Obs.enabled]
     guard keeps the disabled path allocation-free. *)
  let span name subject f =
    if not (Obs.enabled ()) then f ()
    else begin
      Obs.count ("engine/" ^ name);
      Obs.Span.wrap ("engine:" ^ name) ~args:[ ("subject", subject) ] f
    end

  let pname (p : Evaluation.prepared) =
    p.Evaluation.program.Suite_types.p_name

  let compile p config =
    span "compile" (pname p) (fun () -> Evaluation.compile p config)

  let trace (p : Evaluation.prepared) bin =
    span "trace" (pname p) (fun () -> Evaluation.trace_config_bin p bin)

  let metrics p bin tr =
    span "metrics" (pname p) (fun () ->
        Evaluation.metrics_of_trace p bin tr)

  let bench_compile (p : Suite_types.sprogram) config =
    span "bench_compile" p.Suite_types.p_name (fun () ->
        Toolchain.compile (Suite_types.ast p) ~config
          ~roots:(Suite_types.roots p))

  (** Total VM cost of every harness seed (the paper's SPEC timing; the
      median-of-three degenerates to one deterministic run). *)
  let bench_run (p : Suite_types.sprogram) (bin : Emit.binary) =
    span "bench_run" p.Suite_types.p_name @@ fun () ->
    List.fold_left
      (fun acc (h : Suite_types.harness) ->
        let inputs =
          if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds
        in
        List.fold_left
          (fun acc input ->
            let r =
              Vm.run bin ~entry:h.Suite_types.h_entry ~input Vm.default_opts
            in
            if r.Vm.timed_out then
              invalid_arg ("bench timed out: " ^ p.Suite_types.p_name);
            acc + r.Vm.cost)
          acc inputs)
      0 p.Suite_types.p_harnesses
end

include Engine.Make (Domain_impl)

(* Bracket every disk-store I/O with an [Obs] span + counter. Installed
   at module init so the engine library itself never depends on
   lib/obs; free when observability is off. *)
let () =
  Engine.Disk_store.set_io_wrap
    (Some
       {
         Engine.Disk_store.wrap =
           (fun name args f ->
             if not (Obs.enabled ()) then f ()
             else begin
               Obs.count name;
               Obs.Span.wrap name ~args f
             end);
       })

(* The serialization schema stamp: [Marshal] is type-unsafe, so any
   change to the marshalled value layouts (or the compiler that decides
   them) must read as "stale entry, recompute". Bump the leading tag
   whenever a persisted type changes shape. *)
let cache_schema = "debugtuner-v1/" ^ Sys.ocaml_version

let cache_dir_of ?dir () =
  match dir with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "DEBUGTUNER_CACHE" with
      | Some d when d <> "" -> d
      | _ -> "_cache")

let open_store ?dir ?max_bytes () =
  Engine.Disk_store.create ?max_bytes ~schema:cache_schema
    ~dir:(cache_dir_of ?dir ()) ()

let default_instance = lazy (create ())

(** The process-wide shared engine, for callers that do not thread an
    instance (CLI one-shots, tests). Experiment contexts create their
    own so cache statistics are per-run. *)
let default () = Lazy.force default_instance

(** The paper's headline number for a configuration, engine-cached. *)
let product t prepared config =
  (fst (measure t prepared config)).Metrics.m_hybrid.Metrics.product

let sanitizer_stats () =
  List.map
    (fun (pass, checks, failures) ->
      ( "sanitize:" ^ pass,
        { Engine.Stats.hits = checks; misses = failures; dedups = 0 } ))
    (Sanitize.counters ())

(** One flat [(name, value)] table merging every counter source — the
    engine caches ([engine/<cache>/hits|misses|dedups], zero rows
    dropped), the sanitizer ([sanitize/<pass>/checked|failures]) and
    any live [Obs] counters ([obs/<name>]) — so [bench --stats] and the
    CLI render one table through one code path, text or JSON alike. *)
let stats_table t : (string * int) list =
  let engine_rows =
    List.concat_map
      (fun (name, { Engine.Stats.hits; misses; dedups }) ->
        List.filter
          (fun (_, v) -> v <> 0)
          [
            ("engine/" ^ name ^ "/hits", hits);
            ("engine/" ^ name ^ "/misses", misses);
            ("engine/" ^ name ^ "/dedups", dedups);
          ])
      (Engine.Stats.snapshot (stats t))
  in
  let sanitize_rows =
    List.concat_map
      (fun (pass, checks, failures) ->
        ("sanitize/" ^ pass ^ "/checked", checks)
        :: (if failures <> 0 then [ ("sanitize/" ^ pass ^ "/failures", failures) ]
            else []))
      (Sanitize.counters ())
  in
  let store_rows =
    match store t with
    | None -> []
    | Some s ->
        List.filter_map
          (fun (n, v) -> if v = 0 then None else Some ("store/" ^ n, v))
          (Engine.Disk_store.counters s)
  in
  let obs_rows =
    List.map (fun (n, v) -> ("obs/" ^ n, v)) (Obs.current_counters ())
  in
  List.sort compare (engine_rows @ sanitize_rows @ store_rows @ obs_rows)
