(** Per-program debug-information evaluation (the left half of Figure 1):
    corpus construction, trace extraction for the O0 baseline and for any
    configuration, and metric computation.

    Each suite program is "prepared" once — fuzzing-derived corpus,
    minimization, trace pruning, O0 baseline trace — and then arbitrary
    configurations are measured against that baseline. Binaries whose
    .text is identical to the reference level's are not re-traced
    (Section III-A's discard optimization). *)

type harness_corpus = {
  hc_harness : Suite_types.harness;
  hc_inputs : int list list;  (** post-minimization, post-pruning *)
  hc_raw_count : int;  (** corpus size before minimization *)
  hc_edges : int;
}

type prepared = {
  program : Suite_types.sprogram;
  ast : Minic.Ast.program;
  roots : string list;
  defranges : Minic.Defranges.t;
  corpora : harness_corpus list;
  o0_bin : Emit.binary;
  o0_trace : Debugger.trace;
  ast_digest : string;
      (** content address of the compile inputs (AST + roots); tier-1
          engine cache key component *)
  content_digest : string;
      (** content address of everything measurement depends on (AST +
          roots + minimized corpora); tier-2 engine cache key
          component *)
}

(* Merge traces of several harness sessions into one program-level
   trace (first binding of a line wins, like one long session). *)
let merge_traces (traces : Debugger.trace list) : Debugger.trace =
  let stepped = Hashtbl.create 128 in
  let steppable = ref [] in
  let hit_order = ref [] in
  List.iter
    (fun (t : Debugger.trace) ->
      Hashtbl.iter
        (fun line vars ->
          if not (Hashtbl.mem stepped line) then Hashtbl.replace stepped line vars)
        t.Debugger.stepped;
      steppable := t.Debugger.steppable @ !steppable;
      hit_order := t.Debugger.hit_order @ !hit_order)
    traces;
  {
    Debugger.stepped;
    steppable = List.sort_uniq compare !steppable;
    hit_order = List.rev !hit_order;
    per_input_lines = [||];
  }

let trace_with_corpora (corpora : harness_corpus list) (bin : Emit.binary) =
  merge_traces
    (List.map
       (fun hc ->
         Debugger.trace bin ~entry:hc.hc_harness.Suite_types.h_entry
           ~inputs:hc.hc_inputs)
       corpora)

let trace_config_bin (prepared : prepared) (bin : Emit.binary) =
  trace_with_corpora prepared.corpora bin

(** [prepare_key program] — content address of what {!prepare} would
    build: the compile inputs plus every parameter the corpus depends
    on. Equal keys imply interchangeable prepared subjects, so the
    expensive preparation can be served from a persistent store. *)
let prepare_key ?(fuzz_budget = 700) ?(seed = 42)
    (program : Suite_types.sprogram) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( program.Suite_types.p_source,
            program.Suite_types.p_harnesses,
            fuzz_budget,
            seed,
            "prepare-v1" )
          []))

(** [prepare ?fuzz_budget program] builds the corpus (fuzz + afl-cmin
    analog + debug-trace pruning) and the O0 baseline. *)
let prepare ?(fuzz_budget = 700) ?(seed = 42) (program : Suite_types.sprogram) :
    prepared =
  let ast = Suite_types.ast program in
  let roots = Suite_types.roots program in
  let defranges = Minic.Defranges.analyze ast in
  let o0_config = Config.make Config.Gcc Config.O0 in
  let o0_bin = Toolchain.compile ast ~config:o0_config ~roots in
  let corpora =
    List.mapi
      (fun i (h : Suite_types.harness) ->
        let entry = h.Suite_types.h_entry in
        let fuzzed =
          Fuzzer.fuzz o0_bin ~entry ~seeds:h.Suite_types.h_seeds
            ~budget:fuzz_budget ~seed:(seed + (i * 1000))
        in
        let raw =
          h.Suite_types.h_seeds
          @ List.map (fun (c : Fuzzer.corpus_entry) -> c.Fuzzer.data) fuzzed.Fuzzer.corpus
        in
        let minimized = Cmin.minimize o0_bin ~entry raw in
        let pruned = Trace_prune.prune o0_bin ~entry minimized.Cmin.kept in
        {
          hc_harness = h;
          hc_inputs = pruned;
          hc_raw_count = List.length raw;
          hc_edges = fuzzed.Fuzzer.edges_found;
        })
      program.Suite_types.p_harnesses
  in
  let o0_trace = trace_with_corpora corpora o0_bin in
  let digest_of v = Digest.to_hex (Digest.string (Marshal.to_string v [])) in
  let ast_digest = digest_of (ast, roots) in
  let content_digest =
    digest_of
      ( ast_digest,
        List.map
          (fun hc -> (hc.hc_harness.Suite_types.h_entry, hc.hc_inputs))
          corpora )
  in
  {
    program;
    ast;
    roots;
    defranges;
    corpora;
    o0_bin;
    o0_trace;
    ast_digest;
    content_digest;
  }

(** [compile prepared config] — the program under a configuration. *)
let compile (prepared : prepared) (config : Config.t) =
  Toolchain.compile prepared.ast ~config ~roots:prepared.roots

(** [metrics_of_trace prepared bin opt_trace] — the four metric methods
    given an already-collected trace (the engine's metrics primitive). *)
let metrics_of_trace (prepared : prepared) (bin : Emit.binary)
    (opt_trace : Debugger.trace) : Metrics.all_methods =
  Metrics.all
    {
      Metrics.defranges = prepared.defranges;
      unopt_trace = prepared.o0_trace;
      opt_trace;
      unopt_bin = prepared.o0_bin;
      opt_bin = bin;
    }

(** [measure prepared config] — all four metric methods for [config],
    uncached (the engine's job primitive; cached measurement lives in
    {!Measure_engine}). [reuse] short-circuits tracing when the binary's
    .text digest matches a previously measured binary (the discard
    optimization; kept for engine-less callers). *)
let measure ?reuse (prepared : prepared) (config : Config.t) :
    Metrics.all_methods * Emit.binary =
  let bin = compile prepared config in
  match reuse with
  | Some (digest, cached) when digest = bin.Emit.text_digest -> (cached, bin)
  | _ -> (metrics_of_trace prepared bin (trace_config_bin prepared bin), bin)

(** The paper's headline number for a configuration. *)
let product (prepared : prepared) (config : Config.t) =
  let m, _ = measure prepared config in
  m.Metrics.m_hybrid.Metrics.product

(* -------------------------------------------------------------- *)
(* Table III statistics                                            *)

type suite_stats = {
  ss_program : string;
  ss_inputs : int;  (** average per harness, post-minimization *)
  ss_reduction_pct : float;
  ss_steppable : int;
  ss_stepped : int;
  ss_debug_coverage_pct : float;
}

let stats (prepared : prepared) : suite_stats =
  let n_harnesses = max 1 (List.length prepared.corpora) in
  let kept =
    List.fold_left (fun a hc -> a + List.length hc.hc_inputs) 0 prepared.corpora
  in
  let raw =
    List.fold_left (fun a hc -> a + hc.hc_raw_count) 0 prepared.corpora
  in
  let steppable = List.length prepared.o0_trace.Debugger.steppable in
  let stepped = List.length (Debugger.stepped_lines prepared.o0_trace) in
  {
    ss_program = prepared.program.Suite_types.p_name;
    ss_inputs = kept / n_harnesses;
    ss_reduction_pct =
      (if raw = 0 then 0.0
       else float_of_int (raw - kept) /. float_of_int raw *. 100.0);
    ss_steppable = steppable;
    ss_stepped = stepped;
    ss_debug_coverage_pct =
      (if steppable = 0 then 0.0
       else float_of_int stepped /. float_of_int steppable *. 100.0);
  }
