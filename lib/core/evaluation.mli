(** Per-program debug-information evaluation (the left half of Figure 1):
    corpus construction, trace extraction for the O0 baseline and for any
    configuration, and metric computation.

    Each suite program is "prepared" once — fuzzing-derived corpus,
    minimization, trace pruning, O0 baseline trace — and then arbitrary
    configurations are measured against that baseline. The functions
    here are the engine's uncached primitives; repeated measurement
    should go through {!Measure_engine}, which caches them
    content-addressed (the prepared digests below are its keys). *)

type harness_corpus = {
  hc_harness : Suite_types.harness;
  hc_inputs : int list list;  (** post-minimization, post-pruning *)
  hc_raw_count : int;  (** corpus size before minimization *)
  hc_edges : int;
}

type prepared = {
  program : Suite_types.sprogram;
  ast : Minic.Ast.program;
  roots : string list;
  defranges : Minic.Defranges.t;
  corpora : harness_corpus list;
  o0_bin : Emit.binary;
  o0_trace : Debugger.trace;
  ast_digest : string;
      (** content address of the compile inputs (AST + roots); tier-1
          engine cache key component *)
  content_digest : string;
      (** content address of everything measurement depends on (AST +
          roots + minimized corpora); tier-2 engine cache key
          component *)
}

val merge_traces : Debugger.trace list -> Debugger.trace
(** Merge traces of several harness sessions into one program-level
    trace (first binding of a line wins, like one long session). *)

val trace_with_corpora : harness_corpus list -> Emit.binary -> Debugger.trace

val trace_config_bin : prepared -> Emit.binary -> Debugger.trace
(** Trace a configuration's binary over the prepared corpora (the
    engine's trace primitive). *)

val prepare_key :
  ?fuzz_budget:int -> ?seed:int -> Suite_types.sprogram -> string
(** Content address of what {!prepare} would build (source, harnesses
    and every corpus parameter): equal keys imply interchangeable
    prepared subjects, so preparation can be memoized persistently. *)

val prepare : ?fuzz_budget:int -> ?seed:int -> Suite_types.sprogram -> prepared
(** Build the corpus (fuzz + afl-cmin analog + debug-trace pruning) and
    the O0 baseline. *)

val compile : prepared -> Config.t -> Emit.binary
(** The program under a configuration, uncached. *)

val metrics_of_trace :
  prepared -> Emit.binary -> Debugger.trace -> Metrics.all_methods
(** All four metric methods given an already-collected trace (the
    engine's metrics primitive). *)

val measure :
  ?reuse:string * Metrics.all_methods ->
  prepared ->
  Config.t ->
  Metrics.all_methods * Emit.binary
(** All four metric methods for a configuration, uncached. [reuse]
    short-circuits tracing when the binary's .text digest matches a
    previously measured binary (the discard optimization; kept for
    engine-less callers). *)

val product : prepared -> Config.t -> float
(** The paper's headline number for a configuration, uncached. *)

type suite_stats = {
  ss_program : string;
  ss_inputs : int;  (** average per harness, post-minimization *)
  ss_reduction_pct : float;
  ss_steppable : int;
  ss_stepped : int;
  ss_debug_coverage_pct : float;
}

val stats : prepared -> suite_stats
(** Table III statistics. *)
