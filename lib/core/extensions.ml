(** Extensions beyond the paper's core evaluation, implementing the
    directions its Sections V-B and VI sketch:

    - {!clang_og}: the paper's "takeaway for developers" — a prototype
      [-Og] for clang built from O1 by disabling the recurring lossy
      passes (SimplifyCFG, the machine passes, InstCombine, EarlyCSE, as
      with O1-d5);
    - {!pairwise}: a bounded exploration of pass {e interactions}
      (Section VI notes DebugTuner is blind to inter-dependencies; this
      measures the top-k passes pairwise and reports super- and
      sub-additive pairs);
    - {!iterative_autofdo}: multi-round AutoFDO (Section V-C describes
      production profiling on already-AutoFDO-optimized binaries). *)

(* ------------------------------------------------------------------ *)
(* A prototype clang -Og                                               *)

(** The paper's concrete recommendation (end of Section V-B): derive a
    clang Og from O1 by disabling SimplifyCFG, the machine-level
    reorderers and the two scalar cleanups — our pipeline's closest
    equivalents of the named five. *)
let clang_og : Config.t =
  Config.make
    ~disabled:
      [
        "SimplifyCFG";
        "Machine Scheduler";
        "Branch Prob BB Placement";
        "InstCombine";
        "EarlyCSE";
      ]
    Config.Clang Config.O1

(* ------------------------------------------------------------------ *)
(* Pairwise pass interactions                                          *)

type interaction = {
  in_pass_a : string;
  in_pass_b : string;
  in_solo_a : float;  (** relative increment of disabling a alone *)
  in_solo_b : float;
  in_pair : float;  (** relative increment of disabling both *)
  in_synergy : float;  (** pair - (a + b): positive = super-additive *)
}

(** [pairwise prepared config ~passes] measures every unordered pair of
    [passes] (intended: a ranking's top handful — the quadratic cost is
    why the paper leaves the full space to future work). *)
let pairwise (prepared : Evaluation.prepared list) (config : Config.t)
    ~(passes : string list) : interaction list =
  let product cfg =
    Util.Stats.mean (List.map (fun p -> Evaluation.product p cfg) prepared)
  in
  let base = product config in
  let inc disabled =
    if base <= 0.0 then 0.0
    else (product { config with Config.disabled } -. base) /. base
  in
  let solo = List.map (fun p -> (p, inc [ p ])) passes in
  let rec pairs = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) rest @ pairs rest
  in
  List.map
    (fun (a, b) ->
      let sa = List.assoc a solo and sb = List.assoc b solo in
      let pair = inc [ a; b ] in
      {
        in_pass_a = a;
        in_pass_b = b;
        in_solo_a = sa;
        in_solo_b = sb;
        in_pair = pair;
        in_synergy = pair -. (sa +. sb);
      })
    (pairs passes)

(* ------------------------------------------------------------------ *)
(* Iterative (multi-round) AutoFDO                                     *)

type round = {
  rd_index : int;
  rd_cost : int;  (** final-binary cost after this round *)
  rd_lost_fraction : float;  (** samples unattributable in this round *)
}

(** [iterative_autofdo src ~roots ~entry ~workloads ~config ~rounds] runs
    AutoFDO repeatedly, each round profiling the previous round's
    optimized binary (the paper's production setup). Returns per-round
    results; convergence typically within 2-3 rounds. *)
let iterative_autofdo (src : Minic.Ast.program) ~roots ~entry ~workloads
    ~(config : Config.t) ~rounds ?(period = 211) ?(seed = 7) () : round list =
  let rec go i profile acc =
    if i > rounds then List.rev acc
    else begin
      let bin =
        match profile with
        | None -> Toolchain.compile src ~config ~roots
        | Some p ->
            Toolchain.compile
              ~options:(Toolchain.Options.make ~profile:p ())
              src ~config ~roots
      in
      let coll = Autofdo.collect bin ~entry ~workloads ~period ~seed:(seed + i) in
      let optimized =
        Toolchain.compile
          ~options:(Toolchain.Options.make ~profile:coll.Autofdo.profile ())
          src ~config ~roots
      in
      let cost =
        List.fold_left
          (fun acc input ->
            acc + (Vm.run optimized ~entry ~input Vm.default_opts).Vm.cost)
          0 workloads
      in
      let lost =
        if coll.Autofdo.samples_taken = 0 then 0.0
        else
          float_of_int coll.Autofdo.samples_lost
          /. float_of_int coll.Autofdo.samples_taken
      in
      go (i + 1)
        (Some coll.Autofdo.profile)
        ({ rd_index = i; rd_cost = cost; rd_lost_fraction = lost } :: acc)
    end
  in
  go 1 None []

(* ------------------------------------------------------------------ *)
(* Per-program tuned configurations                                    *)

type per_program_row = {
  pp_program : string;
  pp_global : float;  (** debug product under the suite-wide Ox-dy *)
  pp_local : float;  (** product under this program's own Ox-dy *)
  pp_gain_pct : float;  (** local over global, in percent *)
  pp_disabled : string list;  (** the program-specific disable set *)
}

(** [per_program prepared config ~y] builds, for every program, an
    [Ox-dy] from a ranking computed on that program alone, and compares
    it against the suite-wide [Ox-dy] (the paper's setup). Section VI
    lists per-program configurations as future work: the cross-program
    ranking trades per-program optimality for one reusable
    configuration; this measures what the trade costs. *)
let per_program (prepared : Evaluation.prepared list) (config : Config.t)
    ~y : per_program_row list =
  let global_dy = Tuning.dy_config (Ranking.rank prepared config) ~y in
  List.map
    (fun p ->
      let local_dy = Tuning.dy_config (Ranking.rank [ p ] config) ~y in
      let g = Evaluation.product p global_dy in
      let l = Evaluation.product p local_dy in
      {
        pp_program = p.Evaluation.program.Suite_types.p_name;
        pp_global = g;
        pp_local = l;
        pp_gain_pct = Util.Stats.pct_delta g l;
        pp_disabled = local_dy.Config.disabled;
      })
    prepared

(** Mean local-over-global gain of a {!per_program} result. *)
let per_program_mean_gain rows =
  Util.Stats.mean (List.map (fun r -> r.pp_gain_pct) rows)
