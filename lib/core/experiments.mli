(** The paper's evaluation, one constructor per table/figure. Each
    function renders a {!Util.Tablefmt.t} (printed by [bench/main.exe])
    from shared measurement state. All randomness is seeded and all
    reductions are ordered, so every run prints identical tables — for
    any engine worker count.

    The context owns a private measurement engine: every compile /
    trace / measure / benchmark job of every table goes through its
    two-tier content-addressed cache, and derived results (rankings,
    trade-off points, speedup rows) are memoized on
    {!Config.fingerprint} keys. The mutable cache state is hidden
    behind this interface; inspect it with {!engine_stats}. *)

type ctx

val create :
  ?synth_count:int -> ?workers:int -> ?store:Engine.Disk_store.t -> unit -> ctx
(** Prepare the 13-program suite and the SPEC-analog baselines.
    [synth_count] sizes Table I's synthetic-program set (default 40);
    [workers] sizes the engine's worker pool (default 1 = sequential).
    [store] backs the context's engine — and the expensive subject
    preparation itself, memoized on {!Evaluation.prepare_key} — with a
    persistent on-disk cache, making interrupted runs resumable and
    warm re-runs near-instant while staying byte-identical. *)

val suite : ctx -> Evaluation.prepared list
val engine : ctx -> Measure_engine.t

val engine_stats : ctx -> (string * Engine.Stats.counter) list
(** Per-cache hit / miss / dedup counters of the context's engine,
    sorted by cache name, followed by the per-pass sanitizer counters
    ([sanitize:<pass>]) when compiles ran with the sanitizer on. *)

val synth_programs : ctx -> Evaluation.prepared list

val ranking : ctx -> Config.t -> Ranking.level_ranking
(** Fingerprint-memoized {!Ranking.rank} over the suite. *)

val point : ctx -> Config.t -> Tuning.config_point
(** Fingerprint-memoized {!Tuning.measure_point}. *)

val all_standard_configs : Config.t list
val dy_values : int list

(** {1 Tables and figures} *)

val table1 : ctx -> Util.Tablefmt.t
val table2 : ctx -> Util.Tablefmt.t
val table3 : ctx -> Util.Tablefmt.t
val table4 : ctx -> Util.Tablefmt.t
val table5 : ctx -> Util.Tablefmt.t
val table6 : ctx -> Util.Tablefmt.t
val table7 : ctx -> Util.Tablefmt.t
val fig2_scatter : ctx -> string
val fig2 : ctx -> Util.Tablefmt.t
val table8 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val table9 : ctx -> Util.Tablefmt.t
val table10 : ctx -> Util.Tablefmt.t
val table11 : ctx -> Util.Tablefmt.t
val table12 : ctx -> Util.Tablefmt.t
val table13_14 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val fig3_table15 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val fig4 : ctx -> Util.Tablefmt.t

(** {1 Extensions beyond the paper} *)

val clang_og_table : ctx -> Util.Tablefmt.t
val per_program_table : ctx -> Util.Tablefmt.t
val dwarf_sizes_table : ctx -> Util.Tablefmt.t
val autofdo_rounds_table : ctx -> Util.Tablefmt.t
