(** The paper's evaluation, one constructor per table/figure. Each
    function renders a {!Util.Tablefmt.t} (printed by [bench/main.exe])
    from shared measurement state. All randomness is seeded and all
    reductions are ordered, so every run prints identical tables — for
    any engine worker count.

    The context owns a private measurement engine: every compile /
    trace / measure / benchmark job of every table goes through its
    two-tier content-addressed cache, and derived results (rankings,
    trade-off points, speedup rows) are memoized on
    {!Config.fingerprint} keys. The mutable cache state is hidden
    behind this interface; inspect it with {!engine_stats}. *)

type ctx

val create :
  ?synth_count:int -> ?workers:int -> ?store:Engine.Disk_store.t -> unit -> ctx
(** Prepare the 13-program suite and the SPEC-analog baselines.
    [synth_count] sizes Table I's synthetic-program set (default 40);
    [workers] sizes the engine's worker pool (default 1 = sequential).
    [store] backs the context's engine — and the expensive subject
    preparation itself, memoized on {!Evaluation.prepare_key} — with a
    persistent on-disk cache, making interrupted runs resumable and
    warm re-runs near-instant while staying byte-identical. *)

val suite : ctx -> Evaluation.prepared list
val engine : ctx -> Measure_engine.t

val engine_stats : ctx -> (string * Engine.Stats.counter) list
(** Per-cache hit / miss / dedup counters of the context's engine,
    sorted by cache name, followed by the per-pass sanitizer counters
    ([sanitize:<pass>]) when compiles ran with the sanitizer on. *)

val synth_programs : ctx -> Evaluation.prepared list

val ranking : ctx -> Config.t -> Ranking.level_ranking
(** Fingerprint-memoized {!Ranking.rank} over the suite. *)

val point : ctx -> Config.t -> Tuning.config_point
(** Fingerprint-memoized {!Tuning.measure_point}. *)

val all_standard_configs : Config.t list
val dy_values : int list

(** {1 Tables and figures} *)

val table1 : ctx -> Util.Tablefmt.t
val table2 : ctx -> Util.Tablefmt.t
val table3 : ctx -> Util.Tablefmt.t
val table4 : ctx -> Util.Tablefmt.t
val table5 : ctx -> Util.Tablefmt.t
val table6 : ctx -> Util.Tablefmt.t
val table7 : ctx -> Util.Tablefmt.t
val fig2_scatter : ctx -> string
val fig2 : ctx -> Util.Tablefmt.t
val table8 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val table9 : ctx -> Util.Tablefmt.t
val table10 : ctx -> Util.Tablefmt.t
val table11 : ctx -> Util.Tablefmt.t
val table12 : ctx -> Util.Tablefmt.t
val table13_14 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val fig3_table15 : ctx -> Util.Tablefmt.t * Util.Tablefmt.t
val fig4 : ctx -> Util.Tablefmt.t

(** {1 Extensions beyond the paper} *)

val clang_og_table : ctx -> Util.Tablefmt.t
val per_program_table : ctx -> Util.Tablefmt.t
val dwarf_sizes_table : ctx -> Util.Tablefmt.t
val autofdo_rounds_table : ctx -> Util.Tablefmt.t

(** {1 Sharded corpus experiments (ROADMAP item 5)}

    The enlarged corpus ({!Corpus}) measured at a configuration set.
    Deliberately independent of {!ctx} — a shard worker must not pay
    the 13-app suite preparation — and engineered for byte-identical
    merges: {!corpus_rows} computes a flat row list (shard-sliceable,
    deterministic per row), {!corpus_tables} renders tables from the
    row *set* (rows are re-sorted before any reduction), so folding
    per-shard partials together reproduces the single-process output
    exactly. *)

type corpus_spec = { cs_seed : int; cs_n : int }

type shard_spec = { sh_index : int; sh_count : int }
(** 1-based: shard [sh_index] of [sh_count], [1 <= sh_index <= sh_count]
    (the invariant {!Util.Cliopts.parse_shard} enforces). *)

type corpus_row = {
  cr_index : int;  (** position in the corpus — the merge sort key *)
  cr_program : string;
  cr_family : string;
  cr_config : string;  (** {!Config.name} of the measured config *)
  cr_avail : float;
  cr_cov : float;
  cr_product : float;  (** hybrid-method metrics *)
}

val corpus_digest : corpus_spec -> string
(** Content digest of the generated corpus; every shard and the merge
    step cross-check it, independent of shard count. *)

val shard_slice : shard_spec -> Corpus.entry list -> Corpus.entry list
(** Round-robin slice: shard [i] of [n] owns indices [i-1 mod n]. *)

val corpus_rows :
  engine:Measure_engine.t ->
  ?shard:shard_spec ->
  corpus_spec ->
  Config.t list ->
  corpus_row list
(** Measure (this shard's slice of) the corpus at every configuration,
    through the engine's caches — with a persistent store, shards
    coordinate by content address and interrupted runs resume warm.
    Bumps the [shard/*] progress counters ([programs], [rows],
    [resumed_programs]). *)

val corpus_tables :
  corpus_spec -> configs:string list -> corpus_row list -> Util.Tablefmt.t list
(** Final tables from a complete row set ([configs] in presentation
    order, as {!Config.name}s). Pure in the row set: any row order
    yields byte-identical output. *)

val render_corpus_tables :
  corpus_spec -> configs:string list -> corpus_row list -> string

(** {1 Search-based tuning (ROADMAP item 2)} *)

val search_base : Config.t
(** The searched base level (gcc -O2). *)

val search_budget : int
(** The pinned budget the bench scenario and CI gate use. *)

val search_seed : int

val search_dy_seeds : ctx -> Config.t list
(** The greedy dy configurations of {!search_base}, used to seed the
    search (and as the dominance targets). *)

val run_search :
  ?strategy:Tuning.strategy ->
  ?budget:int ->
  ?seed:int ->
  ctx ->
  Tuning.search_result
(** One search over the default suite at {!search_base}, seeded with
    {!search_dy_seeds}. *)

type dominance = {
  dom_greedy : (int * Tuning.config_point) list;  (** y, measured point *)
  dom_covered : int;  (** greedy points weakly dominated by the front *)
  dom_margin : float;  (** {!Tuning.weak_dominance_margin} over all *)
}

val search_dominance : ctx -> Tuning.search_result -> dominance

val search_front_table : ctx -> Util.Tablefmt.t
(** The searched front vs the greedy dy points, as an experiment table;
    bumps [search/greedy_total], [search/greedy_dominated] and
    [search/margin_ppm] for the bench dominance gate. *)
