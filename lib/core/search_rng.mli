(** Keyed, splittable seeding for the tuning search ({!Tuning.search}).

    A search draws randomness at many independent sites — candidate [i]
    of round [r] of restart [k] — and must produce byte-identical
    results at any [--jobs] setting and in any evaluation order. A
    single sequential generator cannot give that: whoever draws first
    changes everyone else's stream. [Search_rng] instead derives an
    independent {!Util.Rng.t} from a pure *key path*: the root seed
    mixed with each derivation label. Equal paths give equal streams;
    sibling paths are statistically independent (splitmix64 finalizer
    mixing). No global state, no [Random.self_init] — ever. *)

type t
(** A derivation point: a seed plus the labels mixed in so far. Pure
    value, freely shareable across domains. *)

val of_seed : int -> t
(** The root of a search's derivation tree. *)

val derive : t -> string -> t
(** [derive t label] — the child keyed by a string label (e.g. a
    strategy name or phase). *)

val derive_int : t -> int -> t
(** [derive t i] — the child keyed by an integer (candidate index,
    round number, restart number). *)

val gen : t -> Util.Rng.t
(** Materialize the generator at this derivation point. Every call
    returns a fresh generator with the same initial state. *)
