(** Ablation studies for the design choices DESIGN.md calls out — each
    isolates one modeling decision and measures how much the headline
    numbers depend on it.

    1. {b Breakpoint policy}: gdb-style all-locations breakpoints vs the
       naive lowest-address-only policy. The single-location policy
       overstates the inliner's line-coverage cost because a duplicated
       line is missed whenever its armed copy sits on a cold path.
    2. {b Entry-value emission}: gcc's unusable (entry-value-style)
       location entries on vs off. This is the channel that makes the
       static method overestimate availability (Table I); removing it
       collapses the static-vs-hybrid gap.
    3. {b Ranking metric}: ranking passes by the hybrid product vs the
       raw dynamic product. The paper argues the hybrid correction makes
       measurement sounder; this quantifies how much the resulting
       top-10 actually changes.
    4. {b Scheduler line retention}: gcc's post-RA scheduler strips
       displaced instructions' lines while clang's keeps them — the
       modeling choice behind schedule-insns2's #2 gcc ranking. Forcing
       clang-style retention on gcc shows how much coverage that one
       behaviour costs. *)

module T = Util.Tablefmt

(* ------------------------------------------------------------------ *)
(* 1. Breakpoint policy                                                *)

let breakpoint_policy (prepared : Evaluation.prepared list) (config : Config.t)
    =
  let rows =
    List.map
      (fun (p : Evaluation.prepared) ->
        let bin = Evaluation.compile p config in
        let lc all_locations =
          let traces =
            List.map
              (fun (hc : Evaluation.harness_corpus) ->
                Debugger.trace ~all_locations bin
                  ~entry:hc.Evaluation.hc_harness.Suite_types.h_entry
                  ~inputs:hc.Evaluation.hc_inputs)
              p.Evaluation.corpora
          in
          let merged = Evaluation.merge_traces traces in
          let base = Debugger.stepped_lines p.Evaluation.o0_trace in
          if base = [] then 1.0
          else
            float_of_int
              (List.length
                 (List.filter (fun l -> Hashtbl.mem merged.Debugger.stepped l) base))
            /. float_of_int (List.length base)
        in
        let all = lc true and lowest = lc false in
        [
          p.Evaluation.program.Suite_types.p_name;
          T.f4 all;
          T.f4 lowest;
          T.pct (Util.Stats.pct_delta all lowest);
        ])
      prepared
  in
  T.make
    ~title:
      (Printf.sprintf
         "Ablation 1: line coverage at %s under gdb-style vs lowest-address \
          breakpoints"
         (Config.name config))
    ~header:[ "program"; "all locations"; "lowest only"; "delta" ]
    rows

(* ------------------------------------------------------------------ *)
(* 2. Entry-value emission                                             *)

let entry_values (prepared : Evaluation.prepared list) (config : Config.t) =
  let rows =
    List.map
      (fun (p : Evaluation.prepared) ->
        let measure entry_values =
          let bin =
            Toolchain.compile
              ~options:(Toolchain.Options.make ~entry_values ())
              p.Evaluation.ast ~config ~roots:p.Evaluation.roots
          in
          let opt_trace = Evaluation.trace_config_bin p bin in
          Metrics.static_dbg
            {
              Metrics.defranges = p.Evaluation.defranges;
              unopt_trace = p.Evaluation.o0_trace;
              opt_trace;
              unopt_bin = p.Evaluation.o0_bin;
              opt_bin = bin;
            }
        in
        let with_ev = (measure true).Metrics.availability in
        let without = (measure false).Metrics.availability in
        [
          p.Evaluation.program.Suite_types.p_name;
          T.f4 with_ev;
          T.f4 without;
          T.pct (Util.Stats.pct_delta without with_ev);
        ])
      prepared
  in
  T.make
    ~title:
      (Printf.sprintf
         "Ablation 2: static-dbg availability at %s with and without \
          entry-value entries (the static-overestimation channel)"
         (Config.name config))
    ~header:[ "program"; "with entry-values"; "without"; "overestimation" ]
    rows

(* ------------------------------------------------------------------ *)
(* 3. Ranking metric                                                   *)

let ranking_metric (prepared : Evaluation.prepared list) (config : Config.t) =
  let hybrid = Ranking.rank prepared config in
  let dynamic =
    Ranking.rank ~metric:Ranking.dynamic_product prepared config
  in
  let top lr =
    List.map
      (fun (e : Ranking.pass_effect) -> e.Ranking.pe_pass)
      (Ranking.top_passes ~k:10 lr)
  in
  let th = top hybrid and td = top dynamic in
  let overlap = List.length (List.filter (fun p -> List.mem p td) th) in
  let rows =
    List.mapi
      (fun i h ->
        [
          string_of_int (i + 1);
          h;
          (match List.nth_opt td i with Some d -> d | None -> "-");
        ])
      th
  in
  T.make
    ~title:
      (Printf.sprintf
         "Ablation 3: top-10 at %s ranked by hybrid vs dynamic product \
          (overlap %d/10)"
         (Config.name config) overlap)
    ~header:[ "#"; "hybrid metric"; "dynamic metric" ]
    rows

(* ------------------------------------------------------------------ *)
(* 4. Scheduler line retention                                         *)

(** The design choice behind the two pipelines' scheduler gap: gcc's
    post-RA scheduler strips the line of every displaced instruction
    while clang's keeps lines attached (which is why schedule-insns2
    ranks #2 for gcc but the Machine Scheduler barely registers for
    clang). This ablation recompiles the gcc configuration with the
    clang-style retention forced on and measures the recovered line
    coverage. *)
let scheduler_lines (prepared : Evaluation.prepared list) (config : Config.t) =
  let rows =
    List.map
      (fun (p : Evaluation.prepared) ->
        let coverage keep =
          let bin =
            Toolchain.compile
              ~options:(Toolchain.Options.make ~sched_keep_lines:keep ())
              p.Evaluation.ast ~config ~roots:p.Evaluation.roots
          in
          let opt_trace = Evaluation.trace_config_bin p bin in
          Metrics.line_coverage_of_traces p.Evaluation.o0_trace opt_trace
        in
        let strip = coverage false and keep = coverage true in
        [
          p.Evaluation.program.Suite_types.p_name;
          T.f4 strip;
          T.f4 keep;
          T.pct (Util.Stats.pct_delta strip keep);
        ])
      prepared
  in
  T.make
    ~title:
      (Printf.sprintf
         "Ablation 4: line coverage at %s with gcc-style (strip) vs \
          clang-style (keep) scheduler line retention"
         (Config.name config))
    ~header:[ "program"; "strip lines"; "keep lines"; "recovered" ]
    rows
