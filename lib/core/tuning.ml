(** Configuration tuning (Section III-B, second component): build the
    [Ox-dy] configurations from a ranking and measure both sides of the
    trade — debuggability on the test suite, performance on the SPEC
    analogs. *)

(** [dy_config ranking ~y] disables the top-[y] ranked passes, with the
    paper's inliner exception: the general inliner toggle (gcc [inline],
    clang [Inliner]) is never disabled — only the more specific inlining
    flags participate. *)
let dy_config (lr : Ranking.level_ranking) ~y : Config.t =
  let candidates =
    List.filter
      (fun (e : Ranking.pass_effect) ->
        e.Ranking.pe_pass <> "inline" && e.Ranking.pe_pass <> "Inliner")
      lr.Ranking.lr_effects
  in
  let top = List.filteri (fun i _ -> i < y) candidates in
  {
    lr.Ranking.lr_config with
    Config.disabled = List.map (fun (e : Ranking.pass_effect) -> e.Ranking.pe_pass) top;
  }

(* -------------------------------------------------------------- *)
(* Performance on the SPEC analogs                                 *)

type bench_run = { br_name : string; br_cost : int }

(** Total VM cost of one benchmark under a configuration, cached on the
    measurement engine ([BenchCost] jobs: the compile hits tier 1, the
    VM run hits the .text-digest tier — two configurations producing
    identical machine code never re-run the benchmark). The SPEC analogs
    are closed programs; the median-of-three of the paper degenerates to
    a single deterministic run here. *)
let bench_cost ?engine (p : Suite_types.sprogram) (config : Config.t) =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  Measure_engine.bench_cost eng p config

type speedup_row = {
  sp_bench : string;
  sp_speedup : float;  (** over the O0 build of the same benchmark *)
}

(** [speedups benches config] — per-benchmark speedup over O0 plus the
    geometric mean. O0 costs are computed on the fly; callers measuring
    many configurations should use {!speedups_cached}. *)
let speedups_cached ?engine ~(o0_costs : (string * int) list)
    (benches : Suite_types.sprogram list) (config : Config.t) =
  let rows =
    List.map
      (fun p ->
        let name = p.Suite_types.p_name in
        let base = List.assoc name o0_costs in
        let c = bench_cost ?engine p config in
        {
          sp_bench = name;
          sp_speedup = float_of_int base /. float_of_int (max 1 c);
        })
      benches
  in
  let geo = Util.Stats.geomean (List.map (fun r -> r.sp_speedup) rows) in
  (rows, geo)

let o0_costs ?engine (benches : Suite_types.sprogram list) =
  List.map
    (fun p ->
      ( p.Suite_types.p_name,
        bench_cost ?engine p (Config.make Config.Gcc Config.O0) ))
    benches

let speedups ?engine benches config =
  speedups_cached ?engine ~o0_costs:(o0_costs ?engine benches) benches config

(* -------------------------------------------------------------- *)
(* Joint debug + performance measurement of a configuration         *)

type config_point = {
  cp_config : Config.t;
  cp_debug : float;  (** average hybrid product over the test suite *)
  cp_speedup : float;  (** geomean speedup over O0 on SPEC *)
  cp_per_program : (string * float) list;
}

let measure_point ?engine (prepared_suite : Evaluation.prepared list)
    ~(o0_costs : (string * int) list) (benches : Suite_types.sprogram list)
    (config : Config.t) : config_point =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  let per_program =
    List.map
      (fun (p : Evaluation.prepared) ->
        ( p.Evaluation.program.Suite_types.p_name,
          Measure_engine.product eng p config ))
      prepared_suite
  in
  let _, geo = speedups_cached ~engine:eng ~o0_costs benches config in
  {
    cp_config = config;
    cp_debug = Util.Stats.mean (List.map snd per_program);
    cp_speedup = geo;
    cp_per_program = per_program;
  }
