(** Configuration tuning (Section III-B, second component): build the
    [Ox-dy] configurations from a ranking and measure both sides of the
    trade — debuggability on the test suite, performance on the SPEC
    analogs. *)

(** [dy_config ranking ~y] disables the top-[y] ranked passes, with the
    paper's inliner exception: the general inliner toggle (gcc [inline],
    clang [Inliner]) is never disabled — only the more specific inlining
    flags participate. *)
let dy_config (lr : Ranking.level_ranking) ~y : Config.t =
  let candidates =
    List.filter
      (fun (e : Ranking.pass_effect) ->
        e.Ranking.pe_pass <> "inline" && e.Ranking.pe_pass <> "Inliner")
      lr.Ranking.lr_effects
  in
  let top = List.filteri (fun i _ -> i < y) candidates in
  {
    lr.Ranking.lr_config with
    Config.disabled = List.map (fun (e : Ranking.pass_effect) -> e.Ranking.pe_pass) top;
  }

(* -------------------------------------------------------------- *)
(* Performance on the SPEC analogs                                 *)

type bench_run = { br_name : string; br_cost : int }

(** Total VM cost of one benchmark under a configuration, cached on the
    measurement engine ([BenchCost] jobs: the compile hits tier 1, the
    VM run hits the .text-digest tier — two configurations producing
    identical machine code never re-run the benchmark). The SPEC analogs
    are closed programs; the median-of-three of the paper degenerates to
    a single deterministic run here. *)
let bench_cost ?engine (p : Suite_types.sprogram) (config : Config.t) =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  Measure_engine.bench_cost eng p config

type speedup_row = {
  sp_bench : string;
  sp_speedup : float;  (** over the O0 build of the same benchmark *)
}

(** [speedups benches config] — per-benchmark speedup over O0 plus the
    geometric mean. O0 costs are computed on the fly; callers measuring
    many configurations should use {!speedups_cached}. *)
let speedups_cached ?engine ~(o0_costs : (string * int) list)
    (benches : Suite_types.sprogram list) (config : Config.t) =
  let rows =
    List.map
      (fun p ->
        let name = p.Suite_types.p_name in
        let base = List.assoc name o0_costs in
        let c = bench_cost ?engine p config in
        {
          sp_bench = name;
          sp_speedup = float_of_int base /. float_of_int (max 1 c);
        })
      benches
  in
  let geo = Util.Stats.geomean (List.map (fun r -> r.sp_speedup) rows) in
  (rows, geo)

let o0_costs ?engine (benches : Suite_types.sprogram list) =
  List.map
    (fun p ->
      ( p.Suite_types.p_name,
        bench_cost ?engine p (Config.make Config.Gcc Config.O0) ))
    benches

let speedups ?engine benches config =
  speedups_cached ?engine ~o0_costs:(o0_costs ?engine benches) benches config

(* -------------------------------------------------------------- *)
(* Joint debug + performance measurement of a configuration         *)

type config_point = {
  cp_config : Config.t;
  cp_debug : float;  (** average hybrid product over the test suite *)
  cp_speedup : float;  (** geomean speedup over O0 on SPEC *)
  cp_per_program : (string * float) list;
}

let default_engine = function
  | Some e -> e
  | None -> Measure_engine.default ()

let measure_point ?engine (prepared_suite : Evaluation.prepared list)
    ~(o0_costs : (string * int) list) (benches : Suite_types.sprogram list)
    (config : Config.t) : config_point =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  let per_program =
    List.map
      (fun (p : Evaluation.prepared) ->
        ( p.Evaluation.program.Suite_types.p_name,
          Measure_engine.product eng p config ))
      prepared_suite
  in
  let _, geo = speedups_cached ~engine:eng ~o0_costs benches config in
  {
    cp_config = config;
    cp_debug = Util.Stats.mean (List.map snd per_program);
    cp_speedup = geo;
    cp_per_program = per_program;
  }

(* -------------------------------------------------------------- *)
(* Search over the 2^N disable-set space (ROADMAP item 2)           *)

(* The paper's greedy Ox-dy sweep can only disable prefix sets of one
   ranked order; the real debuggability/performance frontier lives in
   arbitrary disable *sets*. The strategies below explore that space,
   spending PR 5's sweep planner so each candidate costs only a
   pipeline suffix. Everything is driven from {!Search_rng} key paths,
   evaluated in deterministic batches on the engine's ordered pool, so
   one (strategy, seed, budget) triple produces byte-identical results
   at any --jobs setting. *)

type strategy = Random_sampling | Hill_climb | Bandit

let strategy_name = function
  | Random_sampling -> "random"
  | Hill_climb -> "hill-climb"
  | Bandit -> "bandit"

let strategy_of_string = function
  | "random" -> Some Random_sampling
  | "hill-climb" | "hillclimb" -> Some Hill_climb
  | "bandit" -> Some Bandit
  | _ -> None

type search_opts = {
  so_strategy : strategy;
  so_budget : int;  (** candidate evaluations, seeds included *)
  so_seed : int;
  so_debug_weight : float;  (** scalarization weight on the debug axis *)
  so_speed_weight : float;  (** ... and on the speedup axis *)
  so_seeds : Config.t list;
      (** evaluated first (within budget): known-good points — e.g. the
          greedy dy configurations — so the front weakly dominates them
          by construction and the search starts from their basins *)
}

let default_search_opts =
  {
    so_strategy = Hill_climb;
    so_budget = 64;
    so_seed = 1;
    so_debug_weight = 1.0;
    so_speed_weight = 1.0;
    so_seeds = [];
  }

type frontier_point = {
  fp_config : Config.t;
  fp_debug : float;
  fp_speedup : float;
}

type search_result = {
  sr_base : Config.t;
  sr_strategy : strategy;
  sr_seed : int;
  sr_budget : int;
  sr_evaluated : int;  (** distinct configurations measured *)
  sr_resumed : int;  (** of those, served from the persistent store *)
  sr_frontier : frontier_point list;
      (** the Pareto front of every evaluated point, sorted by
          increasing debug product (metric-duplicate configs collapse
          to the lexicographically-smallest name) *)
  sr_dominated : int;  (** evaluated points not on the front *)
}

(** The toggleable pass universe for a base level, with the paper's
    inliner exception (see {!dy_config}). *)
let pass_universe (base : Config.t) =
  List.filter
    (fun p -> p <> "inline" && p <> "Inliner")
    (Toolchain.pass_names (Config.make base.Config.compiler base.Config.level))

(* Mutable search state threaded through one {!search} call. The
   archive is keyed by fingerprint; [arch_order] keeps evaluation order
   so everything downstream is list-ordered, never table-ordered. *)
type search_state = {
  st_engine : Measure_engine.t;
  st_suite : Evaluation.prepared list;
  st_benches : Suite_types.sprogram list;
  st_o0 : (string * int) list;
  st_memo : (float * float) Engine.Memo.t;  (** persistent, for resume *)
  st_memo_scope : string;  (** subject-set digest prefixed to memo keys *)
  st_archive : (string, float * float) Hashtbl.t;
  mutable st_order : (Config.t * float * float) list;  (** reversed *)
  mutable st_count : int;
  mutable st_resumed : int;
}

let scalar (opts : search_opts) (debug, speedup) =
  (opts.so_debug_weight *. debug) +. (opts.so_speed_weight *. speedup)

let archived st (c : Config.t) = Hashtbl.find_opt st.st_archive (Config.fingerprint c)

(** Evaluate a batch of candidate configurations: dedup against the
    archive, serve what the persistent store already holds, sweep the
    rest (sharing pipeline suffixes), then measure on the ordered pool.
    The archive update walks the batch in input order — results are
    independent of worker count. *)
let eval_batch st (batch : Config.t list) =
  let seen = Hashtbl.create 16 in
  let fresh =
    List.filter
      (fun c ->
        let fp = Config.fingerprint c in
        if Hashtbl.mem st.st_archive fp || Hashtbl.mem seen fp then false
        else begin
          Hashtbl.replace seen fp ();
          true
        end)
      (List.map Config.canonical batch)
  in
  if fresh <> [] then begin
    let keyed =
      List.map
        (fun c -> (c, st.st_memo_scope ^ "|" ^ Config.fingerprint c))
        fresh
    in
    let resumed, to_compute =
      List.partition_map
        (fun (c, key) ->
          match Engine.Memo.find_opt st.st_memo key with
          | Some pt -> Either.Left (c, pt)
          | None -> Either.Right (c, key))
        keyed
    in
    st.st_resumed <- st.st_resumed + List.length resumed;
    Measure_engine.bump_search_counter "resumed" (List.length resumed);
    let computed =
      if to_compute = [] then []
      else begin
        let prefix_before = Measure_engine.prefix_counters () in
        let configs = List.map fst to_compute in
        List.iter
          (fun p -> Measure_engine.compile_sweep st.st_engine p configs)
          st.st_suite;
        List.iter
          (fun b -> Measure_engine.bench_compile_sweep st.st_engine b configs)
          st.st_benches;
        let shared =
          let get rows n =
            match List.assoc_opt n rows with Some v -> v | None -> 0
          in
          let after = Measure_engine.prefix_counters () in
          get after "prefix/hits" + get after "prefix/merged"
          - get prefix_before "prefix/hits"
          - get prefix_before "prefix/merged"
        in
        Measure_engine.bump_search_counter "suffix_shared" (max 0 shared);
        let points =
          Measure_engine.map st.st_engine
            (fun c ->
              let pt =
                measure_point ~engine:st.st_engine st.st_suite
                  ~o0_costs:st.st_o0 st.st_benches c
              in
              (pt.cp_debug, pt.cp_speedup))
            configs
        in
        List.map2
          (fun (c, key) pt ->
            Engine.Memo.add st.st_memo key pt;
            (c, pt))
          to_compute points
      end
    in
    (* Archive in batch order: resumed-vs-computed must not reorder. *)
    let by_fp = Hashtbl.create 16 in
    List.iter
      (fun (c, pt) -> Hashtbl.replace by_fp (Config.fingerprint c) pt)
      (resumed @ computed);
    List.iter
      (fun c ->
        let fp = Config.fingerprint c in
        let ((d, s) as pt) = Hashtbl.find by_fp fp in
        Hashtbl.replace st.st_archive fp pt;
        st.st_order <- (c, d, s) :: st.st_order;
        st.st_count <- st.st_count + 1)
      fresh;
    Measure_engine.bump_search_counter "candidates" (List.length fresh);
    Measure_engine.bump_search_counter "rounds" 1
  end;
  List.filter_map
    (fun c ->
      match archived st c with
      | Some (d, s) -> Some (Config.canonical c, d, s)
      | None -> None)
    (List.map Config.canonical batch)
  |> fun rows ->
  (* callers see each batch entry once, in input order *)
  let out = Hashtbl.create 16 in
  List.filter
    (fun (c, _, _) ->
      let fp = Config.fingerprint c in
      if Hashtbl.mem out fp then false
      else begin
        Hashtbl.replace out fp ();
        true
      end)
    rows

let remaining st (opts : search_opts) = max 0 (opts.so_budget - st.st_count)

let with_disabled (base : Config.t) disabled =
  Config.canonical { base with Config.disabled }

(** A uniform random disable set: size 0..n, then a seeded shuffle. *)
let random_subset rng (universe : string array) =
  let n = Array.length universe in
  if n = 0 then []
  else begin
    let k = Util.Rng.int rng (n + 1) in
    let copy = Array.copy universe in
    Util.Rng.shuffle rng copy;
    Array.to_list (Array.sub copy 0 k)
  end

(* -- strategy: seeded random sampling -- *)

let run_random st opts ~base ~universe ~key =
  let batch_size = 8 in
  let idx = ref 0 in
  let live = ref true in
  while remaining st opts > 0 && !live do
    let want = min batch_size (remaining st opts) in
    let batch =
      List.init want (fun i ->
          let rng = Search_rng.gen (Search_rng.derive_int key (!idx + i)) in
          with_disabled base (random_subset rng universe))
    in
    idx := !idx + want;
    ignore (eval_batch st batch);
    (* Tiny universes run out of distinct subsets before the budget
       runs out; cap the draws so the loop terminates. *)
    if !idx > (opts.so_budget * 4) + 64 then live := false
  done

(* -- strategy: hill-climb with restarts and annealing -- *)

let flip (current : string list) pass =
  if List.mem pass current then List.filter (fun p -> p <> pass) current
  else pass :: current

let run_hill_climb st opts ~base ~universe ~key =
  let n = Array.length universe in
  let restarts = 3 in
  let neighbors_per_step = min 6 (max 1 n) in
  let k = ref 0 in
  while remaining st opts > 0 && !k < restarts + (opts.so_budget / 4) do
    let rkey = Search_rng.derive_int (Search_rng.derive key "restart") !k in
    let start =
      if !k = 0 then []
      else random_subset (Search_rng.gen (Search_rng.derive rkey "start")) universe
    in
    let current = ref start in
    let current_score =
      match eval_batch st [ with_disabled base start ] with
      | (_, d, s) :: _ -> ref (scalar opts (d, s))
      | [] -> ref neg_infinity
    in
    let step = ref 0 in
    let stalled = ref 0 in
    while remaining st opts > 0 && !stalled < 2 && !step < opts.so_budget do
      let skey = Search_rng.derive_int (Search_rng.derive rkey "step") !step in
      let rng = Search_rng.gen skey in
      let picks = Array.copy universe in
      Util.Rng.shuffle rng picks;
      let want = min neighbors_per_step (remaining st opts) in
      let batch =
        List.init (min want n) (fun i ->
            with_disabled base (flip !current picks.(i)))
      in
      let evaluated = eval_batch st batch in
      (* Annealing: early steps may accept slightly-worse moves, so the
         climb can cross the shallow ridges the greedy sweep sits in;
         the tolerance decays geometrically to strict ascent. *)
      let temp =
        0.02 *. (0.5 ** float_of_int !step)
        *. (abs_float !current_score +. 1e-9)
      in
      (match evaluated with
      | [] -> incr stalled
      | rows ->
          let best =
            List.fold_left
              (fun acc ((_, d, s) as row) ->
                match acc with
                | Some (_, bd, bs)
                  when scalar opts (bd, bs) >= scalar opts (d, s) ->
                    acc
                | _ -> Some row)
              None rows
          in
          (match best with
          | Some (c, d, s) when scalar opts (d, s) >= !current_score -. temp ->
              if scalar opts (d, s) <= !current_score then incr stalled
              else stalled := 0;
              current := c.Config.disabled;
              current_score := scalar opts (d, s)
          | _ -> incr stalled));
      incr step
    done;
    incr k
  done

(* -- strategy: a bandit over per-pass arms (exponential weights) -- *)

let run_bandit st opts ~base ~universe ~key =
  let n = Array.length universe in
  if n = 0 then ignore (eval_batch st [ with_disabled base [] ])
  else begin
    let weights = Array.make n 1.0 in
    let batch_size = 8 in
    let round = ref 0 in
    (* The base point anchors the reward scale. *)
    ignore (eval_batch st [ with_disabled base [] ]);
    while remaining st opts > 0 && !round < opts.so_budget do
      let rkey = Search_rng.derive_int (Search_rng.derive key "round") !round in
      let want = min batch_size (remaining st opts) in
      let batch =
        List.init want (fun i ->
            let rng = Search_rng.gen (Search_rng.derive_int rkey i) in
            let set = ref [] in
            Array.iteri
              (fun j pass ->
                let p = weights.(j) /. (weights.(j) +. 1.0) in
                if Util.Rng.float rng < p then set := pass :: !set)
              universe;
            with_disabled base !set)
      in
      let evaluated = eval_batch st batch in
      (* Update the arms of every included pass against the mean score
         of everything evaluated so far — batch order, deterministic. *)
      let avg =
        let rows = st.st_order in
        if rows = [] then 0.0
        else
          List.fold_left (fun a (_, d, s) -> a +. scalar opts (d, s)) 0.0 rows
          /. float_of_int (List.length rows)
      in
      List.iter
        (fun ((c : Config.t), d, s) ->
          let advantage =
            (scalar opts (d, s) -. avg) /. (abs_float avg +. 1e-9)
          in
          Array.iteri
            (fun j pass ->
              if List.mem pass c.Config.disabled then
                weights.(j) <-
                  Float.min 20.0
                    (Float.max 0.05 (weights.(j) *. exp (0.3 *. advantage))))
            universe)
        evaluated;
      incr round
    done
  end

(* -- the frontier -- *)

let front_of (points : (Config.t * float * float) list) =
  let pts =
    List.map (fun (c, d, s) -> { fp_config = c; fp_debug = d; fp_speedup = s }) points
  in
  let dominates a b =
    a.fp_debug >= b.fp_debug && a.fp_speedup >= b.fp_speedup
    && (a.fp_debug > b.fp_debug || a.fp_speedup > b.fp_speedup)
  in
  let optimal =
    List.filter (fun p -> not (List.exists (fun q -> dominates q p) pts)) pts
  in
  (* Metric duplicates are interchangeable; keep one, by smallest name,
     so the front is a function of the evaluated *set*. *)
  let by_metrics = Hashtbl.create 8 in
  List.iter
    (fun p ->
      let k = (p.fp_debug, p.fp_speedup) in
      match Hashtbl.find_opt by_metrics k with
      | Some q when Config.name q.fp_config <= Config.name p.fp_config -> ()
      | _ -> Hashtbl.replace by_metrics k p)
    optimal;
  let dedup =
    List.filter
      (fun p ->
        match Hashtbl.find_opt by_metrics (p.fp_debug, p.fp_speedup) with
        | Some q -> q == p
        | None -> false)
      optimal
  in
  List.sort
    (fun a b ->
      compare
        (a.fp_debug, a.fp_speedup, Config.name a.fp_config)
        (b.fp_debug, b.fp_speedup, Config.name b.fp_config))
    dedup

let search ?engine (prepared_suite : Evaluation.prepared list)
    ~(o0_costs : (string * int) list) (benches : Suite_types.sprogram list)
    ~(base : Config.t) ~(opts : search_opts) : search_result =
  if opts.so_budget < 1 then invalid_arg "Tuning.search: budget must be >= 1";
  let eng = default_engine engine in
  let scope =
    Digest.to_hex
      (Digest.string
         (String.concat ";"
            (List.map
               (fun (p : Evaluation.prepared) ->
                 p.Evaluation.program.Suite_types.p_name)
               prepared_suite)
         ^ "|"
         ^ String.concat ";"
             (List.map (fun (b : Suite_types.sprogram) -> b.Suite_types.p_name) benches)))
  in
  let st =
    {
      st_engine = eng;
      st_suite = prepared_suite;
      st_benches = benches;
      st_o0 = o0_costs;
      st_memo = Measure_engine.memo eng ~name:"search-point" ();
      st_memo_scope = scope;
      st_archive = Hashtbl.create 64;
      st_order = [];
      st_count = 0;
      st_resumed = 0;
    }
  in
  let base = Config.canonical base in
  let universe = Array.of_list (pass_universe base) in
  let key =
    Search_rng.derive
      (Search_rng.derive (Search_rng.of_seed opts.so_seed) "tuning-search")
      (strategy_name opts.so_strategy)
  in
  (* Seed points first: the base level and any caller-provided
     configurations (the greedy dy points). Their membership in the
     evaluated set makes the front weakly dominate them by
     construction; the strategies then search for strict domination. *)
  let seeds =
    with_disabled base []
    :: List.map (fun c -> with_disabled base c.Config.disabled) opts.so_seeds
  in
  let rec take n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  ignore (eval_batch st (take opts.so_budget seeds));
  (match opts.so_strategy with
  | Random_sampling -> run_random st opts ~base ~universe ~key
  | Hill_climb -> run_hill_climb st opts ~base ~universe ~key
  | Bandit -> run_bandit st opts ~base ~universe ~key);
  let points = List.rev st.st_order in
  let frontier = front_of points in
  let dominated = st.st_count - List.length frontier in
  Measure_engine.bump_search_counter "frontier" (List.length frontier);
  Measure_engine.bump_search_counter "dominated" dominated;
  {
    sr_base = base;
    sr_strategy = opts.so_strategy;
    sr_seed = opts.so_seed;
    sr_budget = opts.so_budget;
    sr_evaluated = st.st_count;
    sr_resumed = st.st_resumed;
    sr_frontier = frontier;
    sr_dominated = dominated;
  }

(** [weak_dominance_margin front points] — how comfortably [front]
    covers [points]: for each point, the best over front entries of
    [min (df - dp, sf - sp)]; the minimum of those over all points.
    Non-negative iff every point is weakly dominated by some front
    entry. The bench gate records this (scaled to ppm) against
    DEBUGTUNER_SEARCH_FLOOR. *)
let weak_dominance_margin (front : frontier_point list)
    (points : (float * float) list) =
  List.fold_left
    (fun worst (d, s) ->
      let best =
        List.fold_left
          (fun acc f ->
            Float.max acc (Float.min (f.fp_debug -. d) (f.fp_speedup -. s)))
          neg_infinity front
      in
      Float.min worst best)
    infinity points
