(** Pass-impact ranking (Section III-B): for each pass of a level,
    measure the product metric with the pass disabled on every program,
    rank passes per program by relative increment, and aggregate by
    average rank position. All measurement runs on the measurement
    engine ({!Measure_engine}), so the per-pass sweep is cached and
    deduplicated across rankings, tunings and tables. *)

type pass_effect = {
  pe_pass : string;
  pe_avg_rank : float;
  pe_geo_increment_pct : float;
      (** geometric mean across programs of the relative increment *)
  pe_programs_improved : int;
  pe_programs_neutral : int;
  pe_programs_regressed : int;
}

type level_ranking = {
  lr_config : Config.t;  (** the reference level *)
  lr_effects : pass_effect list;  (** best pass first *)
  lr_baseline_avg : float;
}

val hybrid_product : Metrics.all_methods -> float
(** The score a ranking optimizes by default (Section III-D). *)

val dynamic_product : Metrics.all_methods -> float
(** Alternative metric for the ranking-metric ablation. *)

val per_program_increments :
  ?engine:Measure_engine.t ->
  ?metric:(Metrics.all_methods -> float) ->
  Evaluation.prepared ->
  Config.t ->
  float * (string * float) list
(** One program's baseline product and pass -> relative-increment
    association. [engine] defaults to {!Measure_engine.default}. *)

val rank :
  ?engine:Measure_engine.t ->
  ?metric:(Metrics.all_methods -> float) ->
  Evaluation.prepared list ->
  Config.t ->
  level_ranking
(** The full cross-program ranking for one level. Programs are measured
    on the engine's worker pool and reduced in suite order — identical
    output for any worker count. *)

val top_passes : ?k:int -> level_ranking -> pass_effect list
(** Top-[k] entries of a ranking (Tables V and VI rows). *)

val stability :
  ?engine:Measure_engine.t ->
  ?metric:(Metrics.all_methods -> float) ->
  ?k:int ->
  Evaluation.prepared list ->
  level_ranking ->
  float * float
(** Section V-A: average number of the cross-program top-[k] passes
    found in each program's own top-[k] and top-[2k]. *)

val impact_counts : level_ranking -> int * int * int * int
(** (total, positive, neutral, negative) pass counts (Table VII). *)
