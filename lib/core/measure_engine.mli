(** The repository's measurement engine — the single entry point for
    compiling, tracing, measuring and benchmarking (program,
    configuration) pairs, with a two-tier content-addressed cache and an
    optional [Domain] worker pool (see [lib/engine] for the substrate
    and DESIGN.md "Measurement engine" for the design).

    Tier 1 is keyed by (AST digest, {!Config.fingerprint}) and caches
    compiled binaries; tier 2 is keyed by (subject digest, [.text]
    digest) and caches traces, metrics and benchmark costs — two
    configurations whose binaries share machine code share one
    measurement (the engine-wide generalization of the paper's
    Section III-A discard optimization). *)

type t

type job =
  | Compile of Evaluation.prepared * Config.t
  | Trace of Evaluation.prepared * Config.t
  | Measure of Evaluation.prepared * Config.t
  | BenchCost of Suite_types.sprogram * Config.t

type result =
  | Binary of Emit.binary
  | Traced of Debugger.trace * Emit.binary
  | Measured of Metrics.all_methods * Emit.binary
  | Cost of int

val create : ?workers:int -> ?store:Engine.Disk_store.t -> unit -> t
(** Fresh caches, zeroed counters. [workers] sizes the pool behind
    {!map} (default 1 = sequential; parallel runs reduce in input order
    and stay byte-identical). [store] backs every cache tier with a
    persistent on-disk store (see {!open_store}): results already on
    disk are served without recomputing, fresh results are published
    back, so runs are resumable and warm re-runs near-instant — still
    byte-identical to cold ones. *)

val cache_schema : string
(** The serialization schema stamp written into every persistent cache
    entry: ["debugtuner-v1/" ^ Sys.ocaml_version]. Entries written under
    any other stamp are stale — evicted and recomputed, never decoded
    ([Marshal] is type-unsafe). *)

val open_store :
  ?dir:string -> ?max_bytes:int -> unit -> Engine.Disk_store.t
(** Open the repository's persistent artifact store. The directory is
    [dir] if given, else [$DEBUGTUNER_CACHE] if set and non-empty, else
    ["_cache"]. Always stamped with {!cache_schema}. *)

val default : unit -> t
(** The process-wide shared engine, for callers that do not thread an
    instance. *)

val run : t -> job -> result

val compile : t -> Evaluation.prepared -> Config.t -> Emit.binary
(** Tier-1 cached compilation. *)

val peek_compile : t -> Evaluation.prepared -> Config.t -> Emit.binary option
(** Side-effect-free tier-1 lookup (no compile, no counter bump). *)

val seed_compile :
  t -> Evaluation.prepared -> Config.t -> (unit -> Emit.binary) -> Emit.binary
(** Publish a binary produced outside the engine under the ordinary
    tier-1 key; [produce] must return exactly what a straight compile
    would (see [Engine.Make.seed_compile]). *)

val peek_bench_compile :
  t -> Suite_types.sprogram -> Config.t -> Emit.binary option

val seed_bench_compile :
  t ->
  Suite_types.sprogram ->
  Config.t ->
  (unit -> Emit.binary) ->
  Emit.binary

val trace : t -> Evaluation.prepared -> Config.t -> Debugger.trace * Emit.binary
(** Tier-2 cached trace extraction. *)

val measure :
  t -> Evaluation.prepared -> Config.t -> Metrics.all_methods * Emit.binary
(** Tier-2 cached measurement: the cached replacement for
    {!Evaluation.measure}. *)

val product : t -> Evaluation.prepared -> Config.t -> float
(** The paper's headline number (hybrid product), engine-cached. *)

val bench_cost : t -> Suite_types.sprogram -> Config.t -> int
(** Tier-2 cached benchmark cost: same [.text], same cost, no re-run. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Deterministic ordered parallel map on the engine's pool; [f] may
    issue engine jobs (the caches are domain-safe). Pool workers inherit
    the calling (domain, thread)'s request sink, so parallel work inside
    a request is attributed to that request. *)

(** {1 Per-request counter attribution}

    Every counter in the repository is process-cumulative; a service
    request must report only its own work. Under serialized execution a
    snapshot/subtract over {!stats_table} was enough; under concurrent
    execution it is unsound — the two snapshots bracket other requests'
    activity. Instead, each request registers a private sink for its
    (domain, thread) scope: every counter choke point (engine caches,
    disk store, sanitizer, obs counters, prefix planner, shard / search
    / vm tables) mirrors its bump into the current sink, using the exact
    row names {!stats_table} renders, so a request's rows equal what a
    serialized {!stats_delta} would have reported. *)

type request_sink

val create_request_sink : unit -> request_sink
(** A fresh, empty sink. *)

val with_request_sink : request_sink -> (unit -> 'a) -> 'a
(** [with_request_sink s f] runs [f] with [s] registered as the current
    (domain, thread)'s sink, restoring any previously-registered sink on
    exit (nested scopes compose). Concurrent callers on distinct threads
    or domains do not interfere. *)

val request_sink_rows : request_sink -> (string * int) list
(** The sink's accumulated rows, sorted, zero rows dropped — the same
    shape (and names) as {!stats_delta} over {!stats_table}. *)

val current_request_sink_rows : unit -> (string * int) list
(** The rows of the sink registered for the calling (domain, thread)
    scope, [[]] when none — lets request code observe its own
    accumulated counters mid-flight (e.g. the checker report extracts
    its per-pass sanitize rows). *)

(** {1 Pass-prefix incremental compilation}

    A sweep's configurations (Ranking's one-disabled-each set, Tuning's
    search frontier) mostly run the identical pipeline prefix up to
    their first divergence. The sweep planner groups a config set by
    shared prefix, executes each shared segment once
    ({!Toolchain.advance} over an {!Ir.Snapshot}-backed checkpoint),
    and schedules only the divergent suffixes ({!Toolchain.resume}) on
    the Domain pool. Contested entries are probed as they run: when an
    entry leaves the state digest (and backend options) unchanged it
    was a no-op on this subject, the divergence is immaterial, and both
    sides keep sharing — configs merging all the way to the end of the
    pipeline share a single backend run. Every produced binary is
    byte-identical to a straight-line compile and is seeded into the
    ordinary tier-1 table, so downstream consumers cannot tell the
    difference — except in wall clock. See DESIGN.md "Incremental
    compilation". *)

val prefix_cache_enabled : bool ref
(** Escape hatch ([--no-prefix-cache]): when [false] the sweep entry
    points compile every configuration straight (still in parallel,
    still cached) with no snapshotting. Default [true]. *)

val compile_sweep : t -> Evaluation.prepared -> Config.t list -> unit
(** Prewarm tier 1 for a sweep over one prepared program: compile every
    not-yet-cached configuration, sharing pipeline prefixes. After the
    call, {!compile}/{!trace}/{!measure} of any swept configuration is
    a tier-1 hit. Duplicate fingerprints are planned once. *)

val bench_compile_sweep : t -> Suite_types.sprogram -> Config.t list -> unit
(** {!compile_sweep} for the benchmark tier ({!bench_cost}). *)

val prefix_counters : unit -> (string * int) list
(** Process-wide planner activity as flat rows:
    [prefix/hits] (sweep compiles that skipped a shared prefix),
    [prefix/misses] (sweep compiles with nothing to share),
    [prefix/snapshot_bytes], [prefix/passes_skipped] (total pipeline
    entries not re-executed), [prefix/merged] (configs served a
    sibling's binary outright because every contested entry between
    them was a no-op). [hits]/[misses]/[passes_skipped] report the
    structural divergence trie — [passes_skipped] is exactly the sum of
    shared-prefix lengths, independent of how much better no-op merging
    did. Also merged into {!stats_table}. *)

val reset_prefix_counters : unit -> unit
(** Zero the planner counters (tests, bench scenario isolation). *)

val shard_counters : unit -> (string * int) list
(** Shard progress/resume counters bumped by the sharded experiment
    runner ([programs], [rows], [resumed_programs], ...), raw (no
    prefix). Merged into {!stats_table} as [shard/<name>] rows, so a
    shard's partial JSON and [--stats] output report how far the slice
    got and how much of a rerun was served warm. *)

val bump_shard_counter : string -> int -> unit
(** Add to a named shard counter (process-global, thread-safe). *)

val reset_shard_counters : unit -> unit
(** Zero the shard counters (tests, bench scenario isolation). *)

val search_counters : unit -> (string * int) list
(** Tuning-search counters bumped by {!Tuning.search} ([candidates],
    [suffix_shared], [frontier], [dominated], [resumed], [rounds]),
    raw (no prefix). Merged into {!stats_table} as [search/<name>]
    rows — the bench dominance gate and the resume regression test
    read them from there. *)

val bump_search_counter : string -> int -> unit
(** Add to a named search counter (process-global, thread-safe). *)

val reset_search_counters : unit -> unit
(** Zero the search counters (tests, bench scenario isolation). *)

val vm_counters : unit -> (string * int) list
(** VM-layer counters, raw (no prefix): [decode_hits] (decoded programs
    served from the persistent store) and [decode_misses] (fresh
    decodes), bumped only when an engine with a store has been created.
    Merged into {!stats_table} as [vm/<name>] rows. *)

val reset_vm_counters : unit -> unit
(** Zero the vm counters (tests, bench scenario isolation). *)

val workers : t -> int
val stats : t -> Engine.Stats.t

val store : t -> Engine.Disk_store.t option
(** The persistent store this engine was created with, if any. *)

val sanitizer_stats : unit -> (string * Engine.Stats.counter) list
(** Per-pass sanitizer counters ({!Sanitize.counters}) in the engine's
    counter shape — [hits] = boundaries validated, [misses] = invariant
    failures — named ["sanitize:<pass>"] so they interleave with the
    cache counters in [bench --stats] output. Empty unless compiles ran
    with the sanitizer on ([--sanitize] / [~sanitize:true]). *)

val stats_table : t -> (string * int) list
(** One flat, sorted [(name, value)] table merging every counter
    source: engine cache activity ([engine/<cache>/hits|misses|dedups],
    zero rows dropped), sanitizer boundaries
    ([sanitize/<pass>/checked|failures]), disk-store activity
    ([store/<cache>/hits|misses|writes|corrupt|stale|evicted], zero rows
    dropped, present only when the engine has a store), live [Obs]
    counters ([obs/<name>]), shard progress counters
    ([shard/<name>]), tuning-search counters ([search/<name>]) and
    vm-layer counters ([vm/<name>], zero rows dropped).
    The single stats path behind
    [bench --stats] and the CLI, in both text and JSON renderings. *)

val stats_delta :
  before:(string * int) list -> (string * int) list -> (string * int) list
(** [stats_delta ~before after] subtracts two {!stats_table} snapshots
    row-wise (rows absent from [before] count from zero, zero-delta
    rows dropped), preserving [after]'s order. The per-request
    accounting primitive behind [Api.Response.stats]: counters are
    process-cumulative, deltas are per-request. *)

val memo : t -> name:string -> (unit -> 'a Engine.Memo.t)
(** A fresh memo table wired to this engine's counters, for derived
    results keyed by {!Config.fingerprint} (rankings, trade-off points,
    speedup rows). *)
