(** AutoFDO: sample-based feedback-directed optimization (paper
    Section V-C).

    The causal chain reproduced end to end:

    + compile a {e profiling binary} at some configuration;
    + run it under cost-driven PC sampling (the perf-counter stand-in);
    + map each sampled address to a source line {e through that binary's
      line table} — samples landing on addresses without line info are
      lost;
    + aggregate into a source profile (line -> count);
    + recompile at the {e standard} level with the profile driving block
      frequencies, branch probabilities and inliner hotness.

    A debug-friendlier profiling configuration (the [O2-dy] of RQ3) keeps
    more line-table entries, loses fewer samples, and therefore produces
    a truer profile — measurable as a faster final binary. *)

type collection = {
  profile : Toolchain.profile;
  samples_taken : int;
  samples_lost : int;  (** sampled addresses with no line attribution *)
}

(** [collect bin ~entry ~workloads ~period ~seed] runs the profiling
    binary over the workloads with sampling on. *)
let collect (bin : Emit.binary) ~entry ~(workloads : int list list) ~period
    ~seed : collection =
  let line_counts = Hashtbl.create 256 in
  let taken = ref 0 and lost = ref 0 in
  List.iteri
    (fun i input ->
      let res =
        Vm.run bin ~entry ~input
          { Vm.default_opts with sample_period = Some period; seed = seed + i }
      in
      List.iter
        (fun addr ->
          incr taken;
          match
            if addr >= 0 && addr < Array.length bin.Emit.line_of then
              bin.Emit.line_of.(addr)
            else None
          with
          | Some line ->
              Hashtbl.replace line_counts line
                (1 + Option.value ~default:0 (Hashtbl.find_opt line_counts line))
          | None -> incr lost)
        res.Vm.samples)
    workloads;
  {
    profile = { Toolchain.line_counts; total_samples = !taken - !lost };
    samples_taken = !taken;
    samples_lost = !lost;
  }

type outcome = {
  final_cost : int;
  profiling_cost : int;
  lost_fraction : float;
  steppable_lines : int;  (** of the profiling binary (Table XV proxy) *)
}

(** [run_autofdo src ~roots ~entry ~workloads ~profiling_config
    ~final_config] performs one full AutoFDO iteration and measures the
    final binary on the same workloads. *)
let run_autofdo (src : Minic.Ast.program) ~roots ~entry ~workloads
    ~(profiling_config : Config.t) ~(final_config : Config.t) ?(period = 211)
    ?(seed = 7) () : outcome =
  let profiling_bin = Toolchain.compile src ~config:profiling_config ~roots in
  let coll = collect profiling_bin ~entry ~workloads ~period ~seed in
  let final_bin =
    Toolchain.compile
      ~options:(Toolchain.Options.make ~profile:coll.profile ())
      src ~config:final_config ~roots
  in
  let total_cost =
    List.fold_left
      (fun acc input ->
        let r = Vm.run final_bin ~entry ~input Vm.default_opts in
        acc + r.Vm.cost)
      0 workloads
  in
  let profiling_cost =
    List.fold_left
      (fun acc input ->
        let r = Vm.run profiling_bin ~entry ~input Vm.default_opts in
        acc + r.Vm.cost)
      0 workloads
  in
  {
    final_cost = total_cost;
    profiling_cost;
    lost_fraction =
      (if coll.samples_taken = 0 then 0.0
       else float_of_int coll.samples_lost /. float_of_int coll.samples_taken);
    steppable_lines =
      List.length (Dwarfish.steppable_lines profiling_bin.Emit.debug);
  }

(* ------------------------------------------------------------------ *)
(* Profile serialization (the llvm-profdata / create_llvm_prof text
   format analog): a versioned header, the total, then sorted
   "line: count" rows. Good profiles are inspectable and diffable;
   the paper's pipeline passes them between perf, create_llvm_prof and
   the compiler as files exactly like this. *)

exception Profile_error of string

let profile_to_string (p : Toolchain.profile) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "autofdo-profile v1\n";
  Buffer.add_string buf
    (Printf.sprintf "total: %d\n" p.Toolchain.total_samples);
  let rows =
    Hashtbl.fold (fun line count acc -> (line, count) :: acc)
      p.Toolchain.line_counts []
  in
  List.iter
    (fun (line, count) ->
      Buffer.add_string buf (Printf.sprintf "%d: %d\n" line count))
    (List.sort compare rows);
  Buffer.contents buf

let profile_of_string (text : string) : Toolchain.profile =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | header :: total_row :: rows ->
      if header <> "autofdo-profile v1" then
        raise (Profile_error ("bad header: " ^ header));
      let total =
        match String.index_opt total_row ':' with
        | Some i when String.sub total_row 0 i = "total" -> (
            let v =
              String.trim
                (String.sub total_row (i + 1) (String.length total_row - i - 1))
            in
            match int_of_string_opt v with
            | Some n when n >= 0 -> n
            | _ -> raise (Profile_error ("bad total: " ^ total_row)))
        | _ -> raise (Profile_error ("missing total row: " ^ total_row))
      in
      let line_counts = Hashtbl.create 64 in
      let sum = ref 0 in
      List.iter
        (fun row ->
          match String.index_opt row ':' with
          | None -> raise (Profile_error ("bad row: " ^ row))
          | Some i -> (
              let line = String.sub row 0 i in
              let count =
                String.trim (String.sub row (i + 1) (String.length row - i - 1))
              in
              match (int_of_string_opt line, int_of_string_opt count) with
              | Some l, Some c when l > 0 && c > 0 ->
                  if Hashtbl.mem line_counts l then
                    raise
                      (Profile_error (Printf.sprintf "duplicate line %d" l));
                  Hashtbl.replace line_counts l c;
                  sum := !sum + c
              | _ -> raise (Profile_error ("bad row: " ^ row))))
        rows;
      if !sum <> total then
        raise
          (Profile_error
             (Printf.sprintf "total %d does not match row sum %d" total !sum));
      { Toolchain.line_counts; total_samples = total }
  | _ -> raise (Profile_error "missing header")
