(** The paper's evaluation, one constructor per table/figure. Each
    function renders a {!Util.Tablefmt.t} (printed by [bench/main.exe])
    from shared, cached measurement state. All randomness is seeded, so
    every run prints identical tables. *)

module T = Util.Tablefmt

type ctx = {
  suite : Evaluation.prepared list;
  spec : Suite_types.sprogram list;
  o0_costs : (string * int) list;
  synth_count : int;
  mutable synth : Evaluation.prepared list option;
  synth_mu : Mutex.t;
      (** guards [synth]: the one piece of mutable context state, so
          concurrent requests sharing a context build the corpus once *)
  engine : Measure_engine.t;
      (** the shared measurement engine: every compile / trace / measure
          / bench job of every table goes through its two-tier cache *)
  rankings : Ranking.level_ranking Engine.Memo.t;
      (** derived results, keyed by {!Config.fingerprint} *)
  points : Tuning.config_point Engine.Memo.t;
  speedup_rows : Tuning.speedup_row list Engine.Memo.t;
  prepares : Evaluation.prepared Engine.Memo.t;
      (** prepared subjects, keyed by {!Evaluation.prepare_key} — with a
          persistent store this makes the expensive corpus construction
          itself resumable *)
}

let prepare_via memo ?fuzz_budget ?seed p =
  Engine.Memo.find_or_add memo
    (Evaluation.prepare_key ?fuzz_budget ?seed p)
    (fun () -> Evaluation.prepare ?fuzz_budget ?seed p)

let create ?(synth_count = 40) ?workers ?store () =
  let engine = Measure_engine.create ?workers ?store () in
  let prepares = Measure_engine.memo engine ~name:"prepare" () in
  {
    suite = List.map (prepare_via prepares) Programs.all;
    spec = Spec.all;
    o0_costs = Tuning.o0_costs ~engine Spec.all;
    synth_count;
    synth = None;
    synth_mu = Mutex.create ();
    engine;
    rankings = Measure_engine.memo engine ~name:"ranking" ();
    points = Measure_engine.memo engine ~name:"point" ();
    speedup_rows = Measure_engine.memo engine ~name:"speedup" ();
    prepares;
  }

let suite ctx = ctx.suite
let engine ctx = ctx.engine
let engine_stats ctx =
  Engine.Stats.snapshot (Measure_engine.stats ctx.engine)
  @ Measure_engine.sanitizer_stats ()

let synth_programs ctx =
  (* Double-checked under the lock: the corpus is deterministic in
     (synth_count, seed), so two racing builders would agree — the lock
     only keeps the expensive preparation from running twice. *)
  Mutex.lock ctx.synth_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctx.synth_mu)
    (fun () ->
      match ctx.synth with
      | Some s -> s
      | None ->
          let s =
            List.init ctx.synth_count (fun i ->
                prepare_via ctx.prepares ~fuzz_budget:8
                  (Synth.program ~seed:(i + 1)))
          in
          ctx.synth <- Some s;
          s)

let measure ctx prepared config = Measure_engine.measure ctx.engine prepared config

let ranking ctx config =
  Engine.Memo.find_or_add ctx.rankings (Config.fingerprint config) (fun () ->
      Ranking.rank ~engine:ctx.engine ctx.suite config)

let point ctx config =
  Engine.Memo.find_or_add ctx.points (Config.fingerprint config) (fun () ->
      Tuning.measure_point ~engine:ctx.engine ctx.suite ~o0_costs:ctx.o0_costs
        ctx.spec config)

let all_standard_configs =
  List.concat_map
    (fun comp ->
      List.map (fun l -> Config.make comp l) (Config.standard_levels comp))
    [ Config.Gcc; Config.Clang ]

let dy_values = [ 3; 5; 7; 9 ]

let dy_configs ctx =
  let configs =
    List.concat_map
      (fun base ->
        List.map
          (fun y -> (base, y, Tuning.dy_config (ranking ctx base) ~y))
          dy_values)
      all_standard_configs
  in
  (* The dy frontier of one base level differs only in how many of the
     ranked passes are disabled — long shared pipeline prefixes.
     Prewarm tier 1 incrementally before the per-point measurement
     fan-out; on any later call the sweep peeks everything cached and
     is a no-op. *)
  let just = List.map (fun (_, _, c) -> c) configs in
  List.iter
    (fun p -> Measure_engine.compile_sweep ctx.engine p just)
    ctx.suite;
  List.iter
    (fun sp -> Measure_engine.bench_compile_sweep ctx.engine sp just)
    ctx.spec;
  configs

(* ------------------------------------------------------------------ *)
(* Table I: method comparison on synthetic programs                    *)

let table1 ctx =
  let programs = synth_programs ctx in
  let rows =
    List.map
      (fun config ->
        let per_program =
          List.map (fun p -> fst (measure ctx p config)) programs
        in
        let geo f = Util.Stats.geomean (List.map f per_program) in
        let avail m = (m : Metrics.all_methods) in
        ignore avail;
        [
          Config.compiler_name config.Config.compiler;
          Config.level_name config.Config.level;
          T.f4 (geo (fun m -> m.Metrics.m_static.Metrics.availability));
          T.f4 (geo (fun m -> m.Metrics.m_static_dbg.Metrics.availability));
          T.f4 (geo (fun m -> m.Metrics.m_dynamic.Metrics.availability));
          T.f4 (geo (fun m -> m.Metrics.m_hybrid.Metrics.availability));
          T.f4 (geo (fun m -> m.Metrics.m_static.Metrics.line_coverage));
          T.f4 (geo (fun m -> m.Metrics.m_static_dbg.Metrics.line_coverage));
          T.f4 (geo (fun m -> m.Metrics.m_dynamic.Metrics.line_coverage));
          T.f4 (geo (fun m -> m.Metrics.m_static.Metrics.product));
          T.f4 (geo (fun m -> m.Metrics.m_static_dbg.Metrics.product));
          T.f4 (geo (fun m -> m.Metrics.m_dynamic.Metrics.product));
          T.f4 (geo (fun m -> m.Metrics.m_hybrid.Metrics.product));
        ])
      all_standard_configs
  in
  (* The paper also reports geometric standard deviations in
     [1.08, 1.12] to argue low per-program variability. *)
  let gsd =
    let programs = synth_programs ctx in
    let per_program =
      List.concat_map
        (fun config ->
          List.map
            (fun p ->
              (fst (measure ctx p config)).Metrics.m_hybrid.Metrics.product)
            programs)
        all_standard_configs
    in
    Util.Stats.geo_stddev per_program
  in
  T.make
    ~title:
      (Printf.sprintf
         "Table I: metric methods on %d synthetic programs (geomean; hybrid           product geo-stddev %.2f)"
         ctx.synth_count gsd)
    ~header:
      [
        "compiler"; "opt"; "avail:static"; "static-dbg"; "dynamic"; "hybrid";
        "lc:static"; "static-dbg"; "dyn/hybrid"; "prod:static"; "static-dbg";
        "dynamic"; "hybrid";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Table II: the four metrics on libpng                                *)

let table2 ctx =
  let libpng =
    List.find
      (fun (p : Evaluation.prepared) ->
        p.Evaluation.program.Suite_types.p_name = "libpng")
      ctx.suite
  in
  let rows =
    List.map
      (fun config ->
        let m, _ = measure ctx libpng config in
        let h = m.Metrics.m_hybrid in
        [
          Config.compiler_name config.Config.compiler;
          Config.level_name config.Config.level;
          T.f4 h.Metrics.availability;
          T.f4 h.Metrics.line_coverage;
          T.f4 h.Metrics.product;
        ])
      all_standard_configs
  in
  T.make ~title:"Table II: debug information quality metrics on libpng"
    ~header:[ "compiler"; "opt"; "avail. of vars"; "line coverage"; "product" ]
    rows

(* ------------------------------------------------------------------ *)
(* Table III: test-suite statistics                                    *)

let table3 ctx =
  let stats = List.map Evaluation.stats ctx.suite in
  let rows =
    List.map
      (fun (s : Evaluation.suite_stats) ->
        [
          s.Evaluation.ss_program;
          string_of_int s.Evaluation.ss_inputs;
          T.f2 s.Evaluation.ss_reduction_pct;
          string_of_int s.Evaluation.ss_steppable;
          string_of_int s.Evaluation.ss_stepped;
          T.f2 s.Evaluation.ss_debug_coverage_pct;
        ])
      stats
  in
  let avg f = Util.Stats.mean (List.map f stats) in
  let avg_row =
    [
      "average";
      T.f2 (avg (fun s -> float_of_int s.Evaluation.ss_inputs));
      T.f2 (avg (fun s -> s.Evaluation.ss_reduction_pct));
      T.f2 (avg (fun s -> float_of_int s.Evaluation.ss_steppable));
      T.f2 (avg (fun s -> float_of_int s.Evaluation.ss_stepped));
      T.f2 (avg (fun s -> s.Evaluation.ss_debug_coverage_pct));
    ]
  in
  T.make ~title:"Table III: programs and inputs of the test suite"
    ~header:
      [
        "program"; "avg inputs (min.)"; "% reduction"; "steppable lines";
        "stepped lines"; "% debug coverage";
      ]
    (rows @ [ avg_row ])

(* ------------------------------------------------------------------ *)
(* Table IV: product metric on the suite, standard levels              *)

let suite_products ctx config =
  List.map
    (fun (p : Evaluation.prepared) ->
      ( p.Evaluation.program.Suite_types.p_name,
        Measure_engine.product ctx.engine p config ))
    ctx.suite

let table4 ctx =
  let gcc_levels = [ Config.Og; Config.O1; Config.O2; Config.O3 ] in
  let clang_levels = [ Config.O1; Config.O2; Config.O3 ] in
  let gcc =
    List.map (fun l -> (l, suite_products ctx (Config.make Config.Gcc l))) gcc_levels
  in
  let clang =
    List.map
      (fun l -> (l, suite_products ctx (Config.make Config.Clang l)))
      clang_levels
  in
  let value table level name = List.assoc name (List.assoc level table) in
  let rows =
    List.map
      (fun (p : Evaluation.prepared) ->
        let name = p.Evaluation.program.Suite_types.p_name in
        let delta l =
          let g = value gcc l name and c = value clang l name in
          if c = 0.0 then "-" else T.pct ((g -. c) /. c *. 100.0)
        in
        [ name ]
        @ List.map (fun l -> T.f2 (value gcc l name)) gcc_levels
        @ List.map (fun l -> T.f2 (value clang l name)) clang_levels
        @ List.map delta clang_levels)
      ctx.suite
  in
  let avg_of table levels =
    List.map
      (fun l -> T.f2 (Util.Stats.mean (List.map snd (List.assoc l table))))
      levels
  in
  let avg_delta =
    List.map
      (fun l ->
        let g = Util.Stats.mean (List.map snd (List.assoc l gcc)) in
        let c = Util.Stats.mean (List.map snd (List.assoc l clang)) in
        T.pct ((g -. c) /. c *. 100.0))
      clang_levels
  in
  let avg_row =
    [ "average" ] @ avg_of gcc gcc_levels @ avg_of clang clang_levels @ avg_delta
  in
  T.make
    ~title:"Table IV: debug information availability on the test suite"
    ~header:
      [
        "program"; "gcc Og"; "gcc O1"; "gcc O2"; "gcc O3"; "clang O1";
        "clang O2"; "clang O3"; "d%O1"; "d%O2"; "d%O3";
      ]
    (rows @ [ avg_row ])

(* ------------------------------------------------------------------ *)
(* Tables V / VI: top-10 critical passes                               *)

let top10_table ctx comp title =
  let levels = Config.standard_levels comp in
  let tops =
    List.map
      (fun l ->
        (l, Ranking.top_passes ~k:10 (ranking ctx (Config.make comp l))))
      levels
  in
  (* The paper's stability argument: the average-rank top-10 should
     recur in per-program rankings (Section V-A reports 7-8 in the
     per-program top-10). *)
  let stab =
    List.map
      (fun l ->
        let lr = ranking ctx (Config.make comp l) in
        let in10, in20 = Ranking.stability ~engine:ctx.engine ~k:10 ctx.suite lr in
        Printf.sprintf "%s: %.1f/10 in per-program top-10, %.1f in top-20"
          (Config.level_name l) in10 in20)
      levels
  in
  let title = title ^ " [stability: " ^ String.concat "; " stab ^ "]" in
  let rows =
    List.init 10 (fun i ->
        string_of_int (i + 1)
        :: List.concat_map
             (fun (_, top) ->
               match List.nth_opt top i with
               | Some (e : Ranking.pass_effect) ->
                   [ e.Ranking.pe_pass; T.f2 e.Ranking.pe_geo_increment_pct ]
               | None -> [ "-"; "-" ])
             tops)
  in
  let header =
    "#"
    :: List.concat_map
         (fun l -> [ Config.level_name l; "+%" ])
         levels
  in
  T.make ~title ~header rows

let table5 ctx = top10_table ctx Config.Gcc "Table V: top-10 critical passes, gcc"

let table6 ctx =
  top10_table ctx Config.Clang "Table VI: top-10 critical passes, clang"

(* ------------------------------------------------------------------ *)
(* Table VII: pass impact counts                                       *)

let table7 ctx =
  let rows =
    List.concat_map
      (fun comp ->
        List.map
          (fun l ->
            let total, pos, neutral, neg =
              Ranking.impact_counts (ranking ctx (Config.make comp l))
            in
            [
              Config.compiler_name comp;
              Config.level_name l;
              string_of_int total;
              Printf.sprintf "(%d,%d,%d)" pos neutral neg;
            ])
          (Config.standard_levels comp))
      [ Config.Gcc; Config.Clang ]
  in
  T.make
    ~title:"Table VII: tested passes per level (positive, neutral, negative)"
    ~header:[ "compiler"; "level"; "passes"; "(>,=,<)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 2 / Tables VIII, XIII, XIV: trade-off and Pareto front       *)

let all_points ctx =
  let standard = List.map (fun c -> point ctx c) all_standard_configs in
  let dy = List.map (fun (_, _, c) -> point ctx c) (dy_configs ctx) in
  standard @ dy

let fig2_scatter ctx =
  let points = all_points ctx in
  let fronted = Pareto.front (List.map Pareto.of_config_point points) in
  Util.Tablefmt.scatter
    ~title:"Figure 2 (scatter): x = debug product, y = speedup over O0; * = Pareto-optimal, s = standard level, d = Ox-dy"
    ~width:64 ~height:18 ~xlabel:"debug product" ~ylabel:"speedup"
    (List.map
       (fun ((p : Pareto.point), optimal) ->
         let marker =
           if optimal then '*'
           else if String.contains p.Pareto.pt_name 'd' then 'd'
           else 's'
         in
         (p.Pareto.pt_debug, p.Pareto.pt_speedup, marker))
       fronted)

let fig2 ctx =
  let points = all_points ctx in
  let pareto = Pareto.front (List.map Pareto.of_config_point points) in
  let rows =
    List.map
      (fun ((p : Pareto.point), optimal) ->
        [
          p.Pareto.pt_name;
          T.f4 p.Pareto.pt_debug;
          T.f4 p.Pareto.pt_speedup;
          (if optimal then "pareto" else "");
        ])
      pareto
  in
  T.make
    ~title:
      "Figure 2: debuggability (product) vs speedup over O0, all configurations"
    ~header:[ "configuration"; "debug product"; "speedup"; "front" ]
    rows

let table8 ctx =
  let rows which =
    List.concat_map
      (fun comp ->
        List.map
          (fun y ->
            [ Config.compiler_name comp; Printf.sprintf "Ox-d%d" y ]
            @ List.map
                (fun l ->
                  let base = point ctx (Config.make comp l) in
                  let cfg = Tuning.dy_config (ranking ctx (Config.make comp l)) ~y in
                  let p = point ctx cfg in
                  match which with
                  | `Debug ->
                      T.pct
                        (Util.Stats.pct_delta base.Tuning.cp_debug
                           p.Tuning.cp_debug)
                  | `Speed ->
                      T.pct
                        (Util.Stats.pct_delta base.Tuning.cp_speedup
                           p.Tuning.cp_speedup))
                (Config.standard_levels comp))
          dy_values)
      [ Config.Gcc; Config.Clang ]
  in
  let header comp_levels = [ "compiler"; "config" ] @ comp_levels in
  ( T.make
      ~title:"Table VIII (top): % improvement of debug info availability"
      ~header:(header [ "Og/O1"; "O1/O2"; "O2/O3"; "O3/-" ])
      (rows `Debug),
    T.make
      ~title:"Table VIII (bottom): % speedup reduction"
      ~header:(header [ "Og/O1"; "O1/O2"; "O2/O3"; "O3/-" ])
      (rows `Speed) )

let table13_14 ctx =
  let points = all_points ctx in
  let fronted = Pareto.front (List.map Pareto.of_config_point points) in
  let find name =
    List.find (fun ((p : Pareto.point), _) -> p.Pareto.pt_name = name) fronted
  in
  let mk which title =
    let rows =
      List.concat_map
        (fun comp ->
          List.map
            (fun l ->
              let base_cfg = Config.make comp l in
              let base_name = Config.name base_cfg in
              let base, base_opt = find base_name in
              let base_v =
                match which with
                | `Debug -> base.Pareto.pt_debug
                | `Speed -> base.Pareto.pt_speedup
              in
              [
                Config.compiler_name comp;
                Config.level_name l;
                (T.f4 base_v ^ if base_opt then "*" else "");
              ]
              @ List.concat_map
                  (fun y ->
                    let cfg = Tuning.dy_config (ranking ctx base_cfg) ~y in
                    let p, opt = find (Config.name cfg) in
                    let v =
                      match which with
                      | `Debug -> p.Pareto.pt_debug
                      | `Speed -> p.Pareto.pt_speedup
                    in
                    [
                      (T.f4 v ^ if opt then "*" else "");
                      T.pct (Util.Stats.pct_delta base_v v);
                    ])
                  dy_values)
            (Config.standard_levels comp))
        [ Config.Gcc; Config.Clang ]
    in
    T.make ~title
      ~header:
        [
          "compiler"; "level"; "Ox"; "d3"; "d%"; "d5"; "d%"; "d7"; "d%"; "d9";
          "d%";
        ]
      rows
  in
  ( mk `Debug "Table XIII: debug product per configuration (* = Pareto-optimal)",
    mk `Speed "Table XIV: speedup per configuration (* = Pareto-optimal)" )

(* ------------------------------------------------------------------ *)
(* Tables IX / X: per-program debug quality for Ox-dy                  *)

let per_program_dy_table ctx comp title =
  let levels = Config.standard_levels comp in
  let configs =
    List.concat_map
      (fun y ->
        List.map
          (fun l -> (y, l, Tuning.dy_config (ranking ctx (Config.make comp l)) ~y))
          levels)
      dy_values
  in
  let measured =
    List.map (fun (y, l, cfg) -> ((y, l), point ctx cfg)) configs
  in
  let rows =
    List.map
      (fun (p : Evaluation.prepared) ->
        let name = p.Evaluation.program.Suite_types.p_name in
        name
        :: List.concat_map
             (fun y ->
               List.map
                 (fun l ->
                   let pt = List.assoc (y, l) measured in
                   T.f4 (List.assoc name pt.Tuning.cp_per_program))
                 levels)
             dy_values)
      ctx.suite
  in
  let avg_row =
    "average"
    :: List.concat_map
         (fun y ->
           List.map
             (fun l ->
               let pt = List.assoc (y, l) measured in
               T.f4 pt.Tuning.cp_debug)
             levels)
         dy_values
  in
  let header =
    "program"
    :: List.concat_map
         (fun y ->
           List.map
             (fun l -> Printf.sprintf "%s-d%d" (Config.level_name l) y)
             levels)
         dy_values
  in
  T.make ~title ~header (rows @ [ avg_row ])

let table9 ctx =
  per_program_dy_table ctx Config.Gcc
    "Table IX: per-program debug quality, gcc Ox-dy"

let table10 ctx =
  per_program_dy_table ctx Config.Clang
    "Table X: per-program debug quality, clang Ox-dy"

(* ------------------------------------------------------------------ *)
(* Tables XI / XII: SPEC speedups                                      *)

let spec_speedup_rows ctx config =
  Engine.Memo.find_or_add ctx.speedup_rows (Config.fingerprint config)
    (fun () ->
      fst
        (Tuning.speedups_cached ~engine:ctx.engine ~o0_costs:ctx.o0_costs
           ctx.spec config))

let table11 ctx =
  let rows =
    List.concat_map
      (fun (p : Suite_types.sprogram) ->
        let name = p.Suite_types.p_name in
        List.concat_map
          (fun comp ->
            List.map
              (fun l ->
                let base = Config.make comp l in
                let cell cfg =
                  let rows = spec_speedup_rows ctx cfg in
                  T.f4
                    (List.find (fun r -> r.Tuning.sp_bench = name) rows)
                      .Tuning.sp_speedup
                in
                [
                  name;
                  Config.compiler_name comp;
                  Config.level_name l;
                  cell base;
                ]
                @ List.map
                    (fun y ->
                      cell (Tuning.dy_config (ranking ctx base) ~y))
                    dy_values)
              (Config.standard_levels comp))
          [ Config.Gcc; Config.Clang ])
      ctx.spec
  in
  T.make
    ~title:"Table XI: SPEC analog speedups over O0 (standard and Ox-dy)"
    ~header:[ "benchmark"; "compiler"; "level"; "standard"; "d3"; "d5"; "d7"; "d9" ]
    rows

let table12 ctx =
  let rows =
    List.concat_map
      (fun (p : Suite_types.sprogram) ->
        let name = p.Suite_types.p_name in
        List.concat_map
          (fun comp ->
            List.map
              (fun l ->
                let base = Config.make comp l in
                let speedup cfg =
                  let rows = spec_speedup_rows ctx cfg in
                  (List.find (fun r -> r.Tuning.sp_bench = name) rows)
                    .Tuning.sp_speedup
                in
                let base_v = speedup base in
                [ name; Config.compiler_name comp; Config.level_name l ]
                @ List.map
                    (fun y ->
                      let v =
                        speedup (Tuning.dy_config (ranking ctx base) ~y)
                      in
                      T.pct (Util.Stats.pct_delta base_v v))
                    dy_values)
              (Config.standard_levels comp))
          [ Config.Gcc; Config.Clang ])
      ctx.spec
  in
  T.make
    ~title:"Table XII: SPEC analog % improvement of Ox-dy over reference level"
    ~header:[ "benchmark"; "compiler"; "level"; "d3"; "d5"; "d7"; "d9" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 3 / Table XV: AutoFDO on the SPEC analogs                    *)

type autofdo_row = {
  ar_bench : string;
  ar_o2_speedup : float;  (** plain O2 vs O2-AutoFDO *)
  ar_dy : (int * float * float) list;
      (** y, speedup of O2-dy-profile AutoFDO vs O2-AutoFDO, % extra
          steppable lines in the profiling binary *)
}

let autofdo_level = Config.O2

let autofdo_data ctx =
  let comp = Config.Clang in
  let base_cfg = Config.make comp autofdo_level in
  let lr = ranking ctx base_cfg in
  List.map
    (fun (p : Suite_types.sprogram) ->
      let ast = Suite_types.ast p in
      let roots = Suite_types.roots p in
      let h = List.hd p.Suite_types.p_harnesses in
      let entry = h.Suite_types.h_entry in
      let workloads =
        if h.Suite_types.h_seeds = [] then [ [] ] else h.Suite_types.h_seeds
      in
      let run_with profiling_config =
        Autofdo.run_autofdo ast ~roots ~entry ~workloads ~profiling_config
          ~final_config:base_cfg ()
      in
      let baseline = run_with base_cfg in
      let plain_o2_cost =
        let bin = Toolchain.compile ast ~config:base_cfg ~roots in
        List.fold_left
          (fun acc input ->
            let r = Vm.run bin ~entry ~input Vm.default_opts in
            acc + r.Vm.cost)
          0 workloads
      in
      let dy =
        List.map
          (fun y ->
            let cfg = Tuning.dy_config lr ~y in
            let o = run_with cfg in
            ( y,
              float_of_int baseline.Autofdo.final_cost
                /. float_of_int (max 1 o.Autofdo.final_cost),
              Util.Stats.pct_delta
                (float_of_int baseline.Autofdo.steppable_lines)
                (float_of_int o.Autofdo.steppable_lines) ))
          dy_values
      in
      {
        ar_bench = p.Suite_types.p_name;
        ar_o2_speedup =
          float_of_int baseline.Autofdo.final_cost
          /. float_of_int (max 1 plain_o2_cost);
        ar_dy = dy;
      })
    ctx.spec

let fig3_table15 ctx =
  let data = autofdo_data ctx in
  let fig3_rows =
    List.map
      (fun r ->
        let best_y, best, _ =
          List.fold_left
            (fun ((_, bv, _) as acc) ((_, v, _) as cand) ->
              if v > bv then cand else acc)
            (List.hd r.ar_dy) r.ar_dy
        in
        [
          r.ar_bench;
          T.f4 r.ar_o2_speedup;
          T.f4 best;
          Printf.sprintf "O2-d%d" best_y;
          T.pct ((best -. 1.0) *. 100.0);
        ])
      data
  in
  let fig3 =
    T.make
      ~title:
        "Figure 3: relative performance vs O2-AutoFDO (plain O2, best O2-dy-AutoFDO)"
      ~header:[ "benchmark"; "O2 (no AutoFDO)"; "best O2-dy"; "config"; "d%" ]
      fig3_rows
  in
  let t15_rows =
    List.map
      (fun r ->
        r.ar_bench
        :: List.concat_map
             (fun (_, v, lines) -> [ T.f4 v; T.pct ((v -. 1.0) *. 100.0); T.pct lines ])
             r.ar_dy)
      data
  in
  let avg_row =
    "average"
    :: List.concat_map
         (fun idx ->
           let col f =
             Util.Stats.mean (List.map (fun r -> f (List.nth r.ar_dy idx)) data)
           in
           [
             T.f4 (col (fun (_, v, _) -> v));
             T.pct (col (fun (_, v, _) -> (v -. 1.0) *. 100.0));
             T.pct (col (fun (_, _, l) -> l));
           ])
         [ 0; 1; 2; 3 ]
  in
  let t15 =
    T.make
      ~title:
        "Table XV: AutoFDO speedup vs O2-AutoFDO and % extra steppable lines"
      ~header:
        ([ "benchmark" ]
        @ List.concat_map
            (fun y ->
              [
                Printf.sprintf "d%d speedup" y; "d%"; "extra lines %";
              ])
            dy_values)
      (t15_rows @ [ avg_row ])
  in
  (fig3, t15)

(* ------------------------------------------------------------------ *)
(* Extension: the prototype clang -Og (paper Section V-B takeaway)      *)

let clang_og_table ctx =
  let candidates =
    [
      ("clang-O0", Config.make Config.Clang Config.O0);
      ("clang-O1", Config.make Config.Clang Config.O1);
      ("clang-Og (proposed)", Extensions.clang_og);
      ("gcc-Og", Config.make Config.Gcc Config.Og);
    ]
  in
  let rows =
    List.map
      (fun (name, cfg) ->
        let pt = point ctx cfg in
        [
          name;
          T.f4 pt.Tuning.cp_debug;
          T.f4 pt.Tuning.cp_speedup;
        ])
      candidates
  in
  T.make
    ~title:
      "Extension: a prototype clang -Og (O1 minus the five recurring lossy        passes), vs its neighbours"
    ~header:[ "configuration"; "debug product"; "speedup over O0" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension: per-program tuned configurations (Section VI)            *)

let per_program_table ctx =
  let cfg = Config.make Config.Gcc Config.O2 in
  let y = 5 in
  let rows = Extensions.per_program ctx.suite cfg ~y in
  let abbreviate passes =
    match passes with
    | a :: b :: c :: _ :: _ -> Printf.sprintf "%s, %s, %s, ..." a b c
    | l -> String.concat ", " l
  in
  T.make
    ~title:
      (Printf.sprintf
         "Extension: per-program O2-d%d vs the suite-wide O2-d%d (gcc; mean \
          gain %+.2f%%)"
         y y
         (Extensions.per_program_mean_gain rows))
    ~header:
      [ "program"; "global d5"; "own d5"; "gain %"; "program's disable set" ]
    (List.map
       (fun (r : Extensions.per_program_row) ->
         [
           r.Extensions.pp_program;
           T.f4 r.Extensions.pp_global;
           T.f4 r.Extensions.pp_local;
           T.pct r.Extensions.pp_gain_pct;
           abbreviate r.Extensions.pp_disabled;
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* Extension: encoded debug-info sizes                                 *)

let dwarf_sizes_table ctx =
  let levels =
    [
      (Config.Gcc, Config.O0); (Config.Gcc, Config.Og); (Config.Gcc, Config.O1);
      (Config.Gcc, Config.O2); (Config.Gcc, Config.O3);
      (Config.Clang, Config.O2);
    ]
  in
  let rows =
    List.map
      (fun (comp, level) ->
        let cfg = Config.make comp level in
        let line_total = ref 0 and loc_total = ref 0 in
        let entries = ref 0 and code = ref 0 in
        List.iter
          (fun (p : Evaluation.prepared) ->
            let bin = Measure_engine.compile ctx.engine p cfg in
            let line, locs, _ = Dwarf_encode.section_sizes bin.Emit.debug in
            line_total := !line_total + line;
            loc_total := !loc_total + locs;
            entries :=
              !entries + List.length bin.Emit.debug.Dwarfish.line_table;
            code := !code + Array.length bin.Emit.code)
          ctx.suite;
        [
          Config.name cfg;
          string_of_int !code;
          string_of_int !entries;
          Printf.sprintf "%dB" !line_total;
          Printf.sprintf "%dB" !loc_total;
          Printf.sprintf "%.2f" (float_of_int !loc_total /. float_of_int !line_total);
        ])
      levels
  in
  T.make
    ~title:
      "Extension: encoded DWARF section sizes over the 13-program suite        (.debug_line shrinks with optimization; .debug_loc fragments and grows)"
    ~header:
      [ "config"; "instrs"; "line entries"; ".debug_line"; ".debug_loc"; "loc/line" ]
    rows

(* ------------------------------------------------------------------ *)
(* Extension: iterative (multi-round) AutoFDO                          *)

let autofdo_rounds_table ctx =
  ignore ctx;
  let bench = Spec.find "505.mcf" in
  let ast = Suite_types.ast bench in
  let rounds =
    Extensions.iterative_autofdo ast ~roots:(Suite_types.roots bench)
      ~entry:"main" ~workloads:[ [] ]
      ~config:(Config.make Config.Clang Config.O2)
      ~rounds:3 ()
  in
  let rows =
    List.map
      (fun (r : Extensions.round) ->
        [
          string_of_int r.Extensions.rd_index;
          string_of_int r.Extensions.rd_cost;
          T.pct (r.Extensions.rd_lost_fraction *. 100.0);
        ])
      rounds
  in
  T.make
    ~title:
      "Extension: iterative AutoFDO on 505.mcf (each round profiles the        previous round's optimized binary)"
    ~header:[ "round"; "final cost"; "samples lost %" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 4: AutoFDO on the large workload                             *)

let fig4 ctx =
  let comp = Config.Clang in
  let base_cfg = Config.make comp Config.O3 in
  let lr = ranking ctx base_cfg in
  let p = Selfcomp.program in
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let workload = Selfcomp.workload ~seed:2026 ~units:100 in
  let run_with profiling_config =
    Autofdo.run_autofdo ast ~roots ~entry:"main" ~workloads:[ workload ]
      ~profiling_config ~final_config:base_cfg ~period:431 ()
  in
  let baseline = run_with base_cfg in
  let plain_bin = Toolchain.compile ast ~config:base_cfg ~roots in
  let plain_cost =
    (Vm.run plain_bin ~entry:"main" ~input:workload Vm.default_opts).Vm.cost
  in
  let rows =
    List.map
      (fun y ->
        let cfg = Tuning.dy_config lr ~y in
        let o = run_with cfg in
        [
          Printf.sprintf "O3-d%d" y;
          T.f4
            (float_of_int baseline.Autofdo.final_cost
            /. float_of_int (max 1 o.Autofdo.final_cost));
          T.pct
            ((float_of_int baseline.Autofdo.final_cost
              /. float_of_int (max 1 o.Autofdo.final_cost)
             -. 1.0)
            *. 100.0);
          T.pct (o.Autofdo.lost_fraction *. 100.0);
        ])
      dy_values
  in
  let headline =
    [
      "O3-AutoFDO vs plain O3";
      T.f4 (float_of_int plain_cost /. float_of_int (max 1 baseline.Autofdo.final_cost));
      T.pct
        ((float_of_int plain_cost /. float_of_int (max 1 baseline.Autofdo.final_cost)
         -. 1.0)
        *. 100.0);
      T.pct (baseline.Autofdo.lost_fraction *. 100.0);
    ]
  in
  T.make
    ~title:
      "Figure 4: AutoFDO on the large workload (selfcomp, 100 units); O3-dy profiles vs O3 profile"
    ~header:[ "configuration"; "speedup"; "d%"; "samples lost %" ]
    (headline :: rows)

(* ------------------------------------------------------------------ *)
(* Sharded corpus experiments (ROADMAP item 5): the enlarged corpus
   measured at a configuration set, shard-sliceable, rendered from a
   flat row list so that per-shard partials fold back into tables
   byte-identical to the single-process run.                           *)

type corpus_spec = { cs_seed : int; cs_n : int }
type shard_spec = { sh_index : int; sh_count : int }

type corpus_row = {
  cr_index : int;
  cr_program : string;
  cr_family : string;
  cr_config : string;
  cr_avail : float;
  cr_cov : float;
  cr_product : float;
}

let corpus_digest spec = Corpus.digest ~seed:spec.cs_seed ~n:spec.cs_n

(* Round-robin assignment: shard i of n owns corpus indices congruent
   to i-1 mod n. The corpus is generated whole in every process (it is
   cheap next to preparation), so the slice — unlike a range split —
   balances the expensive tail families across shards. *)
let shard_slice shard entries =
  List.filter
    (fun (e : Corpus.entry) ->
      e.Corpus.e_index mod shard.sh_count = shard.sh_index - 1)
    entries

let corpus_families spec =
  let synth, fuzz, selfcomp = Corpus.counts ~n:spec.cs_n in
  [ ("synth", synth); ("fuzz", fuzz); ("selfcomp", selfcomp) ]

let prepare_misses engine =
  match
    List.assoc_opt "prepare"
      (Engine.Stats.snapshot (Measure_engine.stats engine))
  with
  | Some c -> c.Engine.Stats.misses
  | None -> 0

let corpus_rows ~engine ?shard spec configs : corpus_row list =
  let entries = Corpus.generate ~seed:spec.cs_seed ~n:spec.cs_n in
  let mine =
    match shard with None -> entries | Some s -> shard_slice s entries
  in
  let prepares = Measure_engine.memo engine ~name:"prepare" () in
  let computed_before = prepare_misses engine in
  let per_entry =
    Measure_engine.map engine
      (fun (e : Corpus.entry) ->
        let prepared =
          prepare_via prepares ~fuzz_budget:e.Corpus.e_fuzz_budget
            e.Corpus.e_program
        in
        List.map
          (fun config ->
            let m, _ = Measure_engine.measure engine prepared config in
            let h = m.Metrics.m_hybrid in
            {
              cr_index = e.Corpus.e_index;
              cr_program = e.Corpus.e_program.Suite_types.p_name;
              cr_family = Corpus.family_name e.Corpus.e_family;
              cr_config = Config.name config;
              cr_avail = h.Metrics.availability;
              cr_cov = h.Metrics.line_coverage;
              cr_product = h.Metrics.product;
            })
          configs)
      mine
  in
  let programs = List.length mine in
  let computed = prepare_misses engine - computed_before in
  Measure_engine.bump_shard_counter "programs" programs;
  Measure_engine.bump_shard_counter "rows" (programs * List.length configs);
  Measure_engine.bump_shard_counter "resumed_programs"
    (max 0 (programs - computed));
  List.concat per_entry

(* Rendering is a pure function of the row *set*: rows are re-sorted by
   (corpus index, config position) before any reduction, so a merge of
   shard partials and a straight single-process run — which produce the
   same rows in different orders — print byte-identical tables. *)
let corpus_tables spec ~configs (rows : corpus_row list) : T.t list =
  let config_pos c =
    let rec go i = function
      | [] -> List.length configs
      | x :: rest -> if x = c then i else go (i + 1) rest
    in
    go 0 configs
  in
  let rows =
    List.sort
      (fun a b ->
        compare
          (a.cr_index, config_pos a.cr_config)
          (b.cr_index, config_pos b.cr_config))
      rows
  in
  let geo sel rs = Util.Stats.geomean (List.map sel rs) in
  let summary =
    let per_config =
      List.map
        (fun c ->
          let rs = List.filter (fun r -> r.cr_config = c) rows in
          [
            c;
            string_of_int (List.length rs);
            T.f4 (geo (fun r -> r.cr_avail) rs);
            T.f4 (geo (fun r -> r.cr_cov) rs);
            T.f4 (geo (fun r -> r.cr_product) rs);
          ])
        configs
    in
    T.make
      ~title:
        (Printf.sprintf
           "Corpus summary: %d programs, seed %d, digest %s (hybrid geomean)"
           spec.cs_n spec.cs_seed
           (String.sub (corpus_digest spec) 0 12))
      ~header:[ "config"; "programs"; "avail"; "lcov"; "product" ]
      per_config
  in
  let families =
    let family_rows =
      List.concat_map
        (fun (fam, count) ->
          if count = 0 then []
          else
            List.map
              (fun c ->
                let rs =
                  List.filter
                    (fun r -> r.cr_family = fam && r.cr_config = c)
                    rows
                in
                [
                  fam;
                  c;
                  string_of_int (List.length rs);
                  T.f4 (geo (fun r -> r.cr_avail) rs);
                  T.f4 (geo (fun r -> r.cr_product) rs);
                ])
              configs)
        (corpus_families spec)
    in
    T.make ~title:"Corpus by family (hybrid geomean)"
      ~header:[ "family"; "config"; "programs"; "avail"; "product" ]
      family_rows
  in
  [ summary; families ]

let render_corpus_tables spec ~configs rows =
  String.concat "" (List.map T.render (corpus_tables spec ~configs rows))

(* ------------------------------------------------------------------ *)
(* Search-based tuning (ROADMAP item 2): the searched Pareto front vs
   the paper's greedy dy points, on the default suite.                 *)

(** The search's base level — the paper's flagship gcc -O2. *)
let search_base = Config.make Config.Gcc Config.O2

(** The defaults the bench scenario and the dominance gate pin. *)
let search_budget = 48

let search_seed = 1

let search_dy_seeds ctx =
  List.map (fun y -> Tuning.dy_config (ranking ctx search_base) ~y) dy_values

let run_search ?(strategy = Tuning.Hill_climb) ?(budget = search_budget)
    ?(seed = search_seed) ctx =
  Tuning.search ~engine:ctx.engine ctx.suite ~o0_costs:ctx.o0_costs ctx.spec
    ~base:search_base
    ~opts:
      {
        Tuning.default_search_opts with
        Tuning.so_strategy = strategy;
        so_budget = budget;
        so_seed = seed;
        so_seeds = search_dy_seeds ctx;
      }

type dominance = {
  dom_greedy : (int * Tuning.config_point) list;  (** y, measured point *)
  dom_covered : int;  (** greedy points weakly dominated by the front *)
  dom_margin : float;  (** {!Tuning.weak_dominance_margin} over all *)
}

let search_dominance ctx (r : Tuning.search_result) =
  let greedy =
    List.map
      (fun y -> (y, point ctx (Tuning.dy_config (ranking ctx search_base) ~y)))
      dy_values
  in
  let margin_of pt =
    Tuning.weak_dominance_margin r.Tuning.sr_frontier
      [ (pt.Tuning.cp_debug, pt.Tuning.cp_speedup) ]
  in
  let covered =
    List.length (List.filter (fun (_, pt) -> margin_of pt >= 0.0) greedy)
  in
  let margin =
    Tuning.weak_dominance_margin r.Tuning.sr_frontier
      (List.map
         (fun (_, pt) -> (pt.Tuning.cp_debug, pt.Tuning.cp_speedup))
         greedy)
  in
  { dom_greedy = greedy; dom_covered = covered; dom_margin = margin }

(** Run the pinned search, record the dominance counters the bench gate
    reads ([search/greedy_total], [search/greedy_dominated],
    [search/margin_ppm]), and render the experiment table. *)
let search_front_table ctx =
  let r = run_search ctx in
  let dom = search_dominance ctx r in
  Measure_engine.bump_search_counter "greedy_total" (List.length dom.dom_greedy);
  Measure_engine.bump_search_counter "greedy_dominated" dom.dom_covered;
  Measure_engine.bump_search_counter "margin_ppm"
    (int_of_float (Float.round (dom.dom_margin *. 1e6)));
  let front_rows =
    List.map
      (fun (f : Tuning.frontier_point) ->
        [
          Config.name f.Tuning.fp_config;
          T.f4 f.Tuning.fp_debug;
          T.f4 f.Tuning.fp_speedup;
          "front";
        ])
      r.Tuning.sr_frontier
  in
  let greedy_rows =
    List.map
      (fun (y, pt) ->
        let m =
          Tuning.weak_dominance_margin r.Tuning.sr_frontier
            [ (pt.Tuning.cp_debug, pt.Tuning.cp_speedup) ]
        in
        [
          Printf.sprintf "greedy O2-d%d" y;
          T.f4 pt.Tuning.cp_debug;
          T.f4 pt.Tuning.cp_speedup;
          (if m > 0.0 then Printf.sprintf "dominated (+%.4f)" m
           else if m = 0.0 then "on front"
           else Printf.sprintf "NOT dominated (%.4f)" m);
        ])
      dom.dom_greedy
  in
  T.make
    ~title:
      (Printf.sprintf
         "Search: %s front (budget %d, seed %d) vs greedy %s-dy — %d/%d \
          greedy points weakly dominated, margin %.4f (%d candidates, %d on \
          front)"
         (Tuning.strategy_name r.Tuning.sr_strategy)
         r.Tuning.sr_budget r.Tuning.sr_seed
         (Config.name search_base)
         dom.dom_covered
         (List.length dom.dom_greedy)
         dom.dom_margin r.Tuning.sr_evaluated
         (List.length r.Tuning.sr_frontier))
    ~header:[ "configuration"; "debug product"; "speedup"; "front" ]
    (front_rows @ greedy_rows)
