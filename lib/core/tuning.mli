(** Configuration tuning (Section III-B, second component): build the
    [Ox-dy] configurations from a ranking and measure both sides of the
    trade — debuggability on the test suite, performance on the SPEC
    analogs. All measurement is engine-cached ({!Measure_engine});
    [engine] parameters default to {!Measure_engine.default}. *)

val dy_config : Ranking.level_ranking -> y:int -> Config.t
(** Disable the top-[y] ranked passes, with the paper's inliner
    exception: the general inliner toggle (gcc [inline], clang
    [Inliner]) is never disabled — only the more specific inlining
    flags participate. *)

type bench_run = { br_name : string; br_cost : int }

val bench_cost : ?engine:Measure_engine.t -> Suite_types.sprogram -> Config.t -> int
(** Total VM cost of one benchmark under a configuration (a cached
    engine [BenchCost] job; identical [.text] never re-runs). *)

type speedup_row = {
  sp_bench : string;
  sp_speedup : float;  (** over the O0 build of the same benchmark *)
}

val speedups_cached :
  ?engine:Measure_engine.t ->
  o0_costs:(string * int) list ->
  Suite_types.sprogram list ->
  Config.t ->
  speedup_row list * float
(** Per-benchmark speedups over the given O0 costs, plus the geometric
    mean. *)

val o0_costs :
  ?engine:Measure_engine.t -> Suite_types.sprogram list -> (string * int) list

val speedups :
  ?engine:Measure_engine.t ->
  Suite_types.sprogram list ->
  Config.t ->
  speedup_row list * float
(** {!speedups_cached} with O0 costs computed on the fly. *)

type config_point = {
  cp_config : Config.t;
  cp_debug : float;  (** average hybrid product over the test suite *)
  cp_speedup : float;  (** geomean speedup over O0 on SPEC *)
  cp_per_program : (string * float) list;
}

val measure_point :
  ?engine:Measure_engine.t ->
  Evaluation.prepared list ->
  o0_costs:(string * int) list ->
  Suite_types.sprogram list ->
  Config.t ->
  config_point
(** Joint debug + performance measurement of a configuration (a Figure 2
    point). *)

(** {1 Search over the 2^N disable-set space}

    The greedy [Ox-dy] sweep above can only disable prefix sets of one
    ranked order; {!search} explores arbitrary disable sets with
    pluggable strategies, spending the pass-prefix sweep planner so
    each candidate costs only a pipeline suffix. Strictly seeded
    ({!Search_rng} key paths, batch evaluation on the engine's ordered
    pool): equal (strategy, seed, budget) produce byte-identical
    results at any worker count. Evaluations persist in the engine's
    store under the ["search-point"] cache, so a killed search resumes
    ([search/resumed] counter). *)

type strategy =
  | Random_sampling  (** uniform seeded subsets *)
  | Hill_climb  (** single-flip ascent, restarts, annealed acceptance *)
  | Bandit  (** exponential weights over per-pass arms *)

val strategy_name : strategy -> string
(** ["random"], ["hill-climb"], ["bandit"] — the CLI/API spelling. *)

val strategy_of_string : string -> strategy option

type search_opts = {
  so_strategy : strategy;
  so_budget : int;  (** candidate evaluations, seeds included *)
  so_seed : int;
  so_debug_weight : float;  (** scalarization weight on the debug axis *)
  so_speed_weight : float;  (** ... and on the speedup axis *)
  so_seeds : Config.t list;
      (** evaluated first (within budget): known-good points — e.g. the
          greedy dy configurations — so the front weakly dominates them
          by construction and the search starts from their basins *)
}

val default_search_opts : search_opts
(** Hill-climb, budget 64, seed 1, equal weights, no seeds. *)

type frontier_point = {
  fp_config : Config.t;
  fp_debug : float;
  fp_speedup : float;
}

type search_result = {
  sr_base : Config.t;
  sr_strategy : strategy;
  sr_seed : int;
  sr_budget : int;
  sr_evaluated : int;  (** distinct configurations measured *)
  sr_resumed : int;  (** of those, served from the persistent store *)
  sr_frontier : frontier_point list;
      (** the Pareto front of every evaluated point, sorted by
          increasing debug product (metric-duplicate configs collapse
          to the lexicographically-smallest name) *)
  sr_dominated : int;  (** evaluated points not on the front *)
}

val pass_universe : Config.t -> string list
(** The toggleable passes of a base level, with the inliner
    exception. *)

val search :
  ?engine:Measure_engine.t ->
  Evaluation.prepared list ->
  o0_costs:(string * int) list ->
  Suite_types.sprogram list ->
  base:Config.t ->
  opts:search_opts ->
  search_result
(** Run one search. Bumps the [search/*] counters
    ({!Measure_engine.search_counters}): [candidates], [rounds],
    [suffix_shared] (sweep compiles that reused a pipeline prefix),
    [resumed], [frontier], [dominated]. *)

val weak_dominance_margin :
  frontier_point list -> (float * float) list -> float
(** [weak_dominance_margin front points] — for each (debug, speedup)
    point, the best over front entries of [min (df - dp, sf - sp)],
    then the minimum over points: non-negative iff the front weakly
    dominates every point. [infinity] on no points, [neg_infinity] on
    an empty front with points. *)
