(** Configuration tuning (Section III-B, second component): build the
    [Ox-dy] configurations from a ranking and measure both sides of the
    trade — debuggability on the test suite, performance on the SPEC
    analogs. All measurement is engine-cached ({!Measure_engine});
    [engine] parameters default to {!Measure_engine.default}. *)

val dy_config : Ranking.level_ranking -> y:int -> Config.t
(** Disable the top-[y] ranked passes, with the paper's inliner
    exception: the general inliner toggle (gcc [inline], clang
    [Inliner]) is never disabled — only the more specific inlining
    flags participate. *)

type bench_run = { br_name : string; br_cost : int }

val bench_cost : ?engine:Measure_engine.t -> Suite_types.sprogram -> Config.t -> int
(** Total VM cost of one benchmark under a configuration (a cached
    engine [BenchCost] job; identical [.text] never re-runs). *)

type speedup_row = {
  sp_bench : string;
  sp_speedup : float;  (** over the O0 build of the same benchmark *)
}

val speedups_cached :
  ?engine:Measure_engine.t ->
  o0_costs:(string * int) list ->
  Suite_types.sprogram list ->
  Config.t ->
  speedup_row list * float
(** Per-benchmark speedups over the given O0 costs, plus the geometric
    mean. *)

val o0_costs :
  ?engine:Measure_engine.t -> Suite_types.sprogram list -> (string * int) list

val speedups :
  ?engine:Measure_engine.t ->
  Suite_types.sprogram list ->
  Config.t ->
  speedup_row list * float
(** {!speedups_cached} with O0 costs computed on the fly. *)

type config_point = {
  cp_config : Config.t;
  cp_debug : float;  (** average hybrid product over the test suite *)
  cp_speedup : float;  (** geomean speedup over O0 on SPEC *)
  cp_per_program : (string * float) list;
}

val measure_point :
  ?engine:Measure_engine.t ->
  Evaluation.prepared list ->
  o0_costs:(string * int) list ->
  Suite_types.sprogram list ->
  Config.t ->
  config_point
(** Joint debug + performance measurement of a configuration (a Figure 2
    point). *)
