(* Keyed derivation on top of the repository's splitmix64 generator.
   The state is a single int mixed with each label through the
   splitmix64 finalizer (via one Util.Rng step), so derivation is cheap,
   pure, and independent of evaluation order. *)

type t = { state : int }

(* One splitmix64 finalizer application, as an int-to-int mix: seed a
   generator at [x] and take its first 62 bits. *)
let mix x = Util.Rng.bits (Util.Rng.create x)

(* FNV-1a over the label bytes, folded into an OCaml int. Fixed
   algorithm — never Hashtbl.hash, whose value is not part of any
   compatibility contract. *)
let fnv1a (s : string) =
  let h = ref 0x3bf29ce484222325 in
  (* 64-bit FNV offset basis truncated into OCaml's 63-bit int *)
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let of_seed seed = { state = mix seed }
let derive t label = { state = mix (t.state lxor fnv1a label) }
let derive_int t i = { state = mix (t.state lxor mix (i + 0x9e3779b9)) }
let gen t = Util.Rng.create t.state
