(** Pass-impact ranking (Section III-B): for each pass of a level,
    measure the product metric with the pass disabled on every program,
    rank passes per program by relative increment, and aggregate by
    average rank position. *)

type pass_effect = {
  pe_pass : string;
  pe_avg_rank : float;
  pe_geo_increment_pct : float;
      (** geometric mean across programs of the relative increment *)
  pe_programs_improved : int;
  pe_programs_neutral : int;
  pe_programs_regressed : int;
}

type level_ranking = {
  lr_config : Config.t;  (** the reference level *)
  lr_effects : pass_effect list;  (** best pass first *)
  lr_baseline_avg : float;
}

(** The score a ranking optimizes; the paper uses the hybrid product
    (Section III-D: "one or more metrics of choice"). *)
let hybrid_product (m : Metrics.all_methods) = m.Metrics.m_hybrid.Metrics.product

let dynamic_product (m : Metrics.all_methods) = m.Metrics.m_dynamic.Metrics.product

(* Relative increments per program for one level. Returns, per program,
   an association pass -> increment, plus the baseline product. All
   measurement goes through the engine. A disabled pass whose binary
   has the same .text as the baseline scores exactly the baseline
   without re-tracing — the paper's Section III-A discard optimization.
   The discard is scoped to the baseline on purpose: it is the paper's
   definition of "the pass did nothing", whereas the engine's own
   tier-2 sharing demands full binary identity (identical .text can
   still carry different debug info). Discards show up in the engine's
   statistics under "rank-discard". *)
let per_program_increments ?engine ?(metric = hybrid_product)
    (prepared : Evaluation.prepared) (config : Config.t) =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  let passes = Toolchain.pass_names config in
  (* The whole sweep — baseline plus one config per disabled pass —
     shares its pipeline prefix up to each divergence: compile it
     incrementally up front, so the per-pass loop below only ever sees
     tier-1 hits. *)
  Measure_engine.compile_sweep eng prepared
    (config
    :: List.map (fun pass -> { config with Config.disabled = [ pass ] }) passes);
  let baseline_m, baseline_bin = Measure_engine.measure eng prepared config in
  let baseline = metric baseline_m in
  let increments =
    List.map
      (fun pass ->
        let cfg = { config with Config.disabled = [ pass ] } in
        let bin = Measure_engine.compile eng prepared cfg in
        let m =
          if String.equal bin.Emit.text_digest baseline_bin.Emit.text_digest
          then begin
            Engine.Stats.bump (Measure_engine.stats eng) "rank-discard" `Dedup;
            baseline_m
          end
          else fst (Measure_engine.measure eng prepared cfg)
        in
        let v = metric m in
        let inc = if baseline > 0.0 then (v -. baseline) /. baseline else 0.0 in
        (pass, inc))
      passes
  in
  (baseline, increments)

(* Rank positions for one program (Section III-B): positive increments
   take positions 1..k by magnitude; every no-effect pass shares the
   identical low rank k+1; negative passes share k+2, below them. *)
let rank_positions increments =
  let pos, rest = List.partition (fun (_, i) -> i > 1e-9) increments in
  let sorted_pos = List.sort (fun (_, a) (_, b) -> compare b a) pos in
  let k = List.length sorted_pos in
  List.mapi (fun i (pass, _) -> (pass, float_of_int (i + 1))) sorted_pos
  @ List.map
      (fun (pass, i) ->
        (pass, float_of_int (if i < -1e-9 then k + 2 else k + 1)))
      rest

(** [rank prepared_programs config] — the full cross-program ranking for
    one level. Programs are measured on the engine's worker pool (one
    job per program; sequential on a one-worker engine) and reduced in
    suite order, so the ranking is identical for any worker count. *)
let rank ?engine ?metric (prepared_programs : Evaluation.prepared list)
    (config : Config.t) : level_ranking =
  let eng =
    match engine with Some e -> e | None -> Measure_engine.default ()
  in
  let per_program =
    Measure_engine.map eng
      (fun p -> per_program_increments ~engine:eng ?metric p config)
      prepared_programs
  in
  let positions = List.map (fun (_, incs) -> rank_positions incs) per_program in
  let all_passes = Toolchain.pass_names config in
  let avg_ranks =
    List.map
      (fun pass ->
        let ranks = List.filter_map (List.assoc_opt pass) positions in
        (pass, Util.Stats.mean ranks))
      all_passes
  in
  let effects =
    List.map
      (fun (pass, avg_rank) ->
        let incs =
          List.filter_map
            (fun (_, incs) -> List.assoc_opt pass incs)
            per_program
        in
        let improved = List.length (List.filter (fun i -> i > 1e-9) incs) in
        let neutral =
          List.length (List.filter (fun i -> abs_float i <= 1e-9) incs)
        in
        let regressed = List.length (List.filter (fun i -> i < -1e-9) incs) in
        let geo =
          (Util.Stats.geomean (List.map (fun i -> 1.0 +. i) incs) -. 1.0)
          *. 100.0
        in
        {
          pe_pass = pass;
          pe_avg_rank = avg_rank;
          pe_geo_increment_pct = geo;
          pe_programs_improved = improved;
          pe_programs_neutral = neutral;
          pe_programs_regressed = regressed;
        })
      avg_ranks
  in
  (* Order by average rank; ties (typically all-neutral passes) break
     toward the larger average increment, then pipeline order. *)
  let effects =
    List.stable_sort
      (fun a b ->
        compare
          (a.pe_avg_rank, -.a.pe_geo_increment_pct)
          (b.pe_avg_rank, -.b.pe_geo_increment_pct))
      effects
  in
  {
    lr_config = config;
    lr_effects = effects;
    lr_baseline_avg =
      Util.Stats.mean (List.map (fun (b, _) -> b) per_program);
  }

(** Top-[k] pass names of a ranking (Tables V and VI rows). *)
let top_passes ?(k = 10) (lr : level_ranking) =
  List.filteri (fun i _ -> i < k) lr.lr_effects

(** The paper's stability check (Section V-A): how many of the
    cross-program top-[k] passes also sit in each program's own top-[k]
    (and top-[2k]) ranking. Returns the averages over programs. *)
let stability ?engine ?metric ?(k = 10)
    (prepared_programs : Evaluation.prepared list) (lr : level_ranking) =
  let global_top =
    List.filteri (fun i _ -> i < k) lr.lr_effects
    |> List.map (fun e -> e.pe_pass)
  in
  let per_program_hits =
    List.map
      (fun p ->
        let _, incs = per_program_increments ?engine ?metric p lr.lr_config in
        let ranked =
          rank_positions incs
          |> List.sort (fun (_, a) (_, b) -> compare a b)
          |> List.map fst
        in
        let topk = List.filteri (fun i _ -> i < k) ranked in
        let top2k = List.filteri (fun i _ -> i < 2 * k) ranked in
        ( List.length (List.filter (fun p -> List.mem p topk) global_top),
          List.length (List.filter (fun p -> List.mem p top2k) global_top) ))
      prepared_programs
  in
  let avg f =
    Util.Stats.mean (List.map (fun x -> float_of_int (f x)) per_program_hits)
  in
  (avg fst, avg snd)

(** Counts of positive / neutral / negative passes (Table VII). *)
let impact_counts (lr : level_ranking) =
  let pos =
    List.length (List.filter (fun e -> e.pe_programs_improved > e.pe_programs_regressed && e.pe_geo_increment_pct > 1e-6) lr.lr_effects)
  in
  let neg =
    List.length (List.filter (fun e -> e.pe_geo_increment_pct < -1e-6) lr.lr_effects)
  in
  let total = List.length lr.lr_effects in
  (total, pos, total - pos - neg, neg)
