(** Coverage-preserving corpus minimization — the [afl-cmin] analog.

    Greedy set cover over edge coverage: process inputs by decreasing
    coverage, keep an input only if it contributes an edge not yet
    covered by the kept set. The kept subset covers exactly the same
    edges as the full corpus. *)

(* ------------------------------------------------------------------ *)
(* Generic delta-debugging list reduction                              *)

(** [shrink_list ~still_interesting items] greedily reduces [items] to a
    smaller list for which [still_interesting] holds — classic
    ddmin-style chunk removal with halving granularity, used by the
    differential oracle to shrink a failing synthetic program to a
    reportable reproducer. [still_interesting items] must be true on
    entry; the result also satisfies it. Deterministic: no randomness,
    chunks are tried front to back. *)
let shrink_list ~(still_interesting : 'a list -> bool) (items : 'a list) :
    'a list =
  let remove_chunk l ~start ~len =
    List.filteri (fun i _ -> i < start || i >= start + len) l
  in
  let rec at_granularity cur chunk =
    if chunk < 1 then cur
    else begin
      let n = List.length cur in
      let rec sweep cur start shrunk =
        if start >= List.length cur then (cur, shrunk)
        else
          let cand = remove_chunk cur ~start ~len:chunk in
          if List.length cand < List.length cur && still_interesting cand then
            sweep cand start true
          else sweep cur (start + chunk) shrunk
      in
      let cur, shrunk = sweep cur 0 false in
      if shrunk && chunk <= n then at_granularity cur chunk
      else at_granularity cur (chunk / 2)
    end
  in
  let n = List.length items in
  if n = 0 then items else at_granularity items (max 1 (n / 2))

(* ------------------------------------------------------------------ *)
(* Coverage-preserving corpus minimization                             *)

type stats = { kept : int list list; original : int; reduction_pct : float }

let minimize (bin : Emit.binary) ~entry (corpus : int list list) : stats =
  let with_cov =
    List.map
      (fun input ->
        let res = Fuzzer.run_input bin ~entry input in
        (input, Fuzzer.edges_of res))
      corpus
  in
  let sorted =
    List.sort
      (fun (_, a) (_, b) -> compare (List.length b) (List.length a))
      with_cov
  in
  let covered = Hashtbl.create 1024 in
  let kept =
    List.filter_map
      (fun (input, edges) ->
        let adds = List.exists (fun e -> not (Hashtbl.mem covered e)) edges in
        if adds then begin
          List.iter (fun e -> Hashtbl.replace covered e ()) edges;
          Some input
        end
        else None)
      sorted
  in
  let original = List.length corpus in
  let reduction =
    if original = 0 then 0.0
    else
      float_of_int (original - List.length kept)
      /. float_of_int original *. 100.0
  in
  { kept; original; reduction_pct = reduction }
