(** A small coverage-guided mutational fuzzer, standing in for the
    OSS-Fuzz campaigns the paper mines for inputs (Section IV).

    Inputs are integer vectors (what [input()] consumes). Coverage is
    the VM's control-transfer edge set over the O0 binary. The loop is
    AFL-shaped: pick a corpus entry, mutate it (bit/arith/havoc/splice),
    keep the child in the queue if it exercises a new edge {e or} drives
    some edge into an unseen hit-count bucket (AFL's novelty rule — this
    is why real queues hold thousands of inputs that coverage-preserving
    minimization later cuts by ~97%). Fully deterministic under the
    given seed. *)

(* AFL-style logarithmic hit-count buckets. *)
let bucket n =
  if n <= 3 then n
  else if n <= 7 then 4
  else if n <= 15 then 8
  else if n <= 31 then 16
  else if n <= 127 then 32
  else 128

type corpus_entry = { data : int list; edge_count : int }

type result = {
  corpus : corpus_entry list;  (** inputs that each contributed coverage *)
  total_execs : int;
  edges_found : int;
}

let run_input bin ~entry input =
  Vm.run bin ~entry ~input
    { Vm.default_opts with coverage = true; max_instrs = 300_000 }

(* Sorted: Hashtbl.fold order depends on the table's internal layout
   (insertion order, resizes, and the hash seed under randomized
   hashing), which would make corpus growth — and so every downstream
   fuzz verdict — run-dependent. *)
let edges_of (res : Vm.result) =
  List.sort compare (Hashtbl.fold (fun e _ acc -> e :: acc) res.Vm.edges [])

let mutate rng (data : int list) =
  let arr = Array.of_list data in
  let n = Array.length arr in
  let pick_value () =
    match Util.Rng.int rng 6 with
    | 0 -> Util.Rng.int_in rng (-4) 16
    | 1 -> Util.Rng.int_in rng 0 255
    | 2 -> 1 lsl Util.Rng.int rng 16
    | 3 -> -(1 lsl Util.Rng.int rng 16)
    | 4 -> Util.Rng.int_in rng (-1000) 1000
    | _ -> Util.Rng.bits rng mod 100000
  in
  match Util.Rng.int rng 5 with
  | 0 when n > 0 ->
      (* Overwrite one element. *)
      let i = Util.Rng.int rng n in
      arr.(i) <- pick_value ();
      Array.to_list arr
  | 1 when n > 0 ->
      (* Arithmetic tweak. *)
      let i = Util.Rng.int rng n in
      arr.(i) <- arr.(i) + Util.Rng.int_in rng (-8) 8;
      Array.to_list arr
  | 2 ->
      (* Insert. *)
      let i = if n = 0 then 0 else Util.Rng.int rng (n + 1) in
      let l = Array.to_list arr in
      let rec ins k = function
        | rest when k = 0 -> pick_value () :: rest
        | [] -> [ pick_value () ]
        | x :: rest -> x :: ins (k - 1) rest
      in
      ins i l
  | 3 when n > 1 ->
      (* Delete. *)
      let i = Util.Rng.int rng n in
      List.filteri (fun k _ -> k <> i) (Array.to_list arr)
  | _ ->
      (* Havoc: several overwrites plus possible extension. *)
      let extra = Util.Rng.int rng 4 in
      let l = Array.to_list arr @ List.init extra (fun _ -> pick_value ()) in
      List.map
        (fun x -> if Util.Rng.chance rng 1 3 then pick_value () else x)
        l

(** [fuzz bin ~entry ~seeds ~budget ~seed] runs [budget] executions. *)
let fuzz (bin : Emit.binary) ~entry ~(seeds : int list list) ~budget ~seed =
  let rng = Util.Rng.create seed in
  let global_edges : (int * int, unit) Hashtbl.t = Hashtbl.create 1024 in
  let global_buckets : (int * int * int, unit) Hashtbl.t = Hashtbl.create 2048 in
  let corpus = ref [] in
  let execs = ref 0 in
  let try_input data =
    incr execs;
    let res = run_input bin ~entry data in
    let novel = ref false in
    Hashtbl.iter
      (fun ((src, dst) as e) count ->
        if not (Hashtbl.mem global_edges e) then begin
          Hashtbl.replace global_edges e ();
          novel := true
        end;
        let bk = (src, dst, bucket count) in
        if not (Hashtbl.mem global_buckets bk) then begin
          Hashtbl.replace global_buckets bk ();
          novel := true
        end)
      res.Vm.edges;
    if !novel then
      corpus := { data; edge_count = Hashtbl.length res.Vm.edges } :: !corpus
  in
  let base_seeds = if seeds = [] then [ []; [ 0 ]; [ 1; 2; 3 ] ] else seeds in
  List.iter try_input base_seeds;
  while !execs < budget do
    let parent =
      match !corpus with
      | [] -> []
      | c -> (Util.Rng.choose_list rng c).data
    in
    try_input (mutate rng parent)
  done;
  {
    corpus = List.rev !corpus;
    total_execs = !execs;
    edges_found = Hashtbl.length global_edges;
  }
