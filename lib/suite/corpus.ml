(** The enlarged experiment corpus (ROADMAP item 5): parameterized,
    seed-deterministic program generation two orders of magnitude past
    the paper's 13 apps + 40 synthetic programs.

    Three families, concatenated in a fixed order so the corpus layout
    is a pure function of [(seed, n)] — crucially independent of how
    many shards later split the work:

    - [Synth]: {!Synth.program} generator sweeps (closed, Csmith-like;
      the paper's synthetic population scaled up by sweeping the seed).
    - [Fuzz]: input-driven mixing programs generated here whose
      measurement corpora are fuzzing-derived — [Evaluation.prepare]
      runs the real {!Fuzzer} over the seeded harness inputs with a
      larger budget than the closed synth programs get.
    - [Selfcomp]: {!Selfcomp.program} self-compilation subjects, each
      with a distinct seeded {!Selfcomp.workload} (the Figure 4 shape,
      many times over).

    Per-family fuzz budgets ride along in each entry because they are
    part of {!Evaluation.prepare_key}: every shard must prepare a given
    program identically or the content-addressed work-sharing through
    the disk store falls apart. *)

open Suite_types

type family = Synth | Fuzz | Selfcomp

let family_name = function
  | Synth -> "synth"
  | Fuzz -> "fuzz"
  | Selfcomp -> "selfcomp"

type entry = {
  e_index : int;  (** position in the corpus; the merge sort key *)
  e_family : family;
  e_fuzz_budget : int;  (** passed to [Evaluation.prepare] *)
  e_program : sprogram;
}

(* ------------------------------------------------------------------ *)
(* The fuzz family: programs that read input and branch on it, so the
   fuzzer's corpus expansion (not just the seeded inputs) decides what
   the debugger can observe.                                           *)

let fuzz_program ~seed : sprogram =
  let rng = Util.Rng.create ((seed * 2654435761) lxor 0x5f5f) in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let n_mixers = 2 + Util.Rng.int rng 3 in
  line "int state[8];";
  line "";
  for m = 0 to n_mixers - 1 do
    line "int mix%d(int x) {" m;
    line "  int r = (x * %d) ^ (x >> %d);" (1 + Util.Rng.int rng 97)
      (1 + Util.Rng.int rng 4);
    line "  if ((r & %d) == 0) {" (1 + Util.Rng.int rng 7);
    line "    r = r + %d;" (3 + Util.Rng.int rng 61);
    line "  } else {";
    line "    r = r - state[%d];" (Util.Rng.int rng 8);
    line "  }";
    line "  state[%d] = (state[%d] + r) %% 65521;" (Util.Rng.int rng 8)
      (Util.Rng.int rng 8);
    line "  return r %% 9973;";
    line "}";
    line ""
  done;
  line "int main() {";
  line "  int i = 0;";
  line "  while (i < 8) {";
  line "    state[i] = i * %d + 1;" (1 + Util.Rng.int rng 9);
  line "    i = i + 1;";
  line "  }";
  line "  int acc = %d;" (Util.Rng.int rng 1000);
  line "  int n = 0;";
  line "  while (!eof() && n < 64) {";
  line "    int v = input();";
  for m = 0 to n_mixers - 1 do
    line "    if ((v %% %d) == %d) {" n_mixers m;
    line "      acc = (acc + mix%d(v)) %% 1000003;" m;
    line "    }"
  done;
  line "    n = n + 1;";
  line "  }";
  line "  output(acc);";
  line "  output(state[%d]);" (Util.Rng.int rng 8);
  line "  output(n);";
  line "  return 0;";
  line "}";
  let seeds =
    List.init 3 (fun _ ->
        List.init (4 + Util.Rng.int rng 8) (fun _ -> Util.Rng.int rng 256))
  in
  {
    p_name = Printf.sprintf "fuzz-%d" seed;
    p_source = Buffer.contents b;
    p_harnesses = [ { h_name = "main"; h_entry = "main"; h_seeds = seeds } ];
  }

(* ------------------------------------------------------------------ *)
(* The selfcomp family: one shared source, distinct seeded workloads.  *)

let selfcomp_subject ~seed : sprogram =
  let units = 2 + (seed mod 3) in
  {
    Selfcomp.program with
    p_name = Printf.sprintf "selfcomp-%d" seed;
    p_harnesses =
      [
        {
          h_name = "units";
          h_entry = "main";
          h_seeds = [ Selfcomp.workload ~seed ~units ];
        };
      ];
  }

(* ------------------------------------------------------------------ *)
(* Corpus layout                                                       *)

(** Family sizes for a corpus of [n] programs: mostly synth sweeps, a
    quarter fuzz programs, a sixteenth (the expensive ones) selfcomp
    subjects. A pure function of [n]. *)
let counts ~n =
  let selfcomp = n / 16 in
  let fuzz = n / 4 in
  (n - fuzz - selfcomp, fuzz, selfcomp)

let synth_budget = 8 (* matches the Table I synth preparation *)
let fuzz_budget = 12
let selfcomp_budget = 4

let generate ~seed ~n : entry list =
  let synth_n, fuzz_n, selfcomp_n = counts ~n in
  let families =
    List.init synth_n (fun i ->
        (Synth, synth_budget, Synth.program ~seed:(seed + i)))
    @ List.init fuzz_n (fun i ->
        (Fuzz, fuzz_budget, fuzz_program ~seed:(seed + i)))
    @ List.init selfcomp_n (fun i ->
        (Selfcomp, selfcomp_budget, selfcomp_subject ~seed:(seed + i)))
  in
  List.mapi
    (fun i (fam, budget, p) ->
      { e_index = i; e_family = fam; e_fuzz_budget = budget; e_program = p })
    families

(** Content digest of the whole corpus: every shard (and the merge
    step) can check it is talking about the same program population
    regardless of shard count. *)
let digest ~seed ~n : string =
  let b = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string b (family_name e.e_family);
      Buffer.add_char b '\000';
      Buffer.add_string b e.e_program.p_name;
      Buffer.add_char b '\000';
      Buffer.add_string b (string_of_int e.e_fuzz_budget);
      Buffer.add_char b '\000';
      Buffer.add_string b e.e_program.p_source;
      List.iter
        (fun h ->
          Buffer.add_string b h.h_name;
          List.iter
            (fun inputs ->
              List.iter
                (fun v ->
                  Buffer.add_string b (string_of_int v);
                  Buffer.add_char b ',')
                inputs;
              Buffer.add_char b ';')
            h.h_seeds)
        e.e_program.p_harnesses)
    (generate ~seed ~n);
  Digest.to_hex (Digest.string (Buffer.contents b))
