(** The measurement engine: content-addressed caching and deterministic
    parallel execution for "measure (program, configuration)" jobs.

    Every table of the paper's evaluation is assembled from the same
    primitive — compile a program under a configuration, trace it, and
    compute metrics — and the experiment drivers re-request identical
    jobs thousands of times. This library is the shared substrate those
    drivers run on:

    - {!Stats}: named hit / miss / dedup counters, so the caching is
      observable (surfaced by [bench/main.exe --stats]);
    - {!Memo}: a mutex-protected content-addressed memo table (string
      key -> value) with per-table counters;
    - {!Pool}: an optional [Domain]-based worker pool with a
      deterministic ordered reduction — results come back in input
      order, so parallel runs print byte-identical tables;
    - {!Make}: a functor turning domain operations (compile, trace,
      metrics, benchmark) into a typed job API with a two-tier
      content-addressed cache. Tier 1 is keyed by (subject content
      digest, canonical configuration fingerprint) and stores compiled
      binaries; tier 2 is keyed by a binary content digest and stores
      traces / metrics / benchmark costs, generalizing the paper's
      Section III-A ".text-identical discard" to every measurement in
      the repository. The domain supplies two binary keys: a full one
      for debug-quality results (identical .text can carry different
      debug info, so metrics need the whole binary to agree) and a
      possibly coarser one for execution cost (which depends on the
      machine code alone).

    - {!Disk_store}: a persistent content-addressed artifact store — a
      versioned on-disk cache directory behind every memo table, so
      measurement survives process restarts and long experiment runs
      are resumable.

    The library is deliberately ignorant of the compiler model: it
    depends on nothing but the standard library (plus [Unix], for the
    disk store's atomic-rename publication and LRU clock); the concrete
    instantiation lives in [Debugtuner.Measure_engine]. *)

(** {1 Cache statistics} *)

module Stats : sig
  type t

  type counter = {
    hits : int;  (** result served from a cache tier *)
    misses : int;  (** job actually executed *)
    dedups : int;
        (** tier-2 content collisions: a fresh compile whose binary
            digest was already measured, served without re-tracing /
            re-running *)
  }

  type event = [ `Hit | `Miss | `Dedup ]

  val create : unit -> t

  val bump : t -> string -> event -> unit
  (** [bump t cache event] increments [event]'s counter of the named
      cache. Domain-safe. *)

  val snapshot : t -> (string * counter) list
  (** Per-cache counters, sorted by cache name. *)

  val total : t -> counter
  (** Sum over every cache. *)

  val set_observer : (string -> event -> unit) option -> unit
  (** Install a process-wide mirror called after every {!bump} with the
      cache name and event, outside the table lock — the instantiation
      points this at its per-request counter sink so concurrent
      requests can each report only their own activity. *)
end

(** {1 Persistent content-addressed artifact store} *)

(** A disk-backed second level behind the in-memory memo tables: a
    cache directory of write-once entries, keyed by the same content
    addresses, published with atomic write-then-rename so concurrent
    writers (domains of one process, or separate processes sharing the
    directory) can never expose a half-written entry under its final
    name. Every entry carries a format-version + schema stamp and a
    payload checksum: stale or damaged entries are detected on read,
    evicted, counted, and recomputed — never trusted. The store is
    size-bounded with LRU eviction (a read refreshes the entry's
    mtime). All failures degrade to cache misses; the store can never
    change a result or fail a run. *)
module Disk_store : sig
  type t

  val format_version : int
  (** Bumped whenever the on-disk entry layout changes; entries written
      by any other version self-invalidate on read. *)

  val create : ?max_bytes:int -> ?schema:string -> dir:string -> unit -> t
  (** Open (creating if needed) the store rooted at [dir]. [schema] is
      the caller's serialization-format stamp — entries written under a
      different schema are treated as stale. [max_bytes] bounds the
      total entry payload on disk (default 512 MiB); exceeding it
      triggers LRU eviction. *)

  val dir : t -> string

  val get : t -> cache:string -> key:string -> string option
  (** The stored bytes for [key] in the named cache, verifying the
      version stamp and checksum. Stale and corrupt entries are evicted
      and reported as misses. *)

  val put : t -> cache:string -> key:string -> string -> unit
  (** Publish an entry atomically (write to a temp file, then rename).
      Failures are swallowed: the store degrades to a miss. *)

  val invalidate : t -> cache:string -> key:string -> unit
  (** Evict one entry and count it as corrupt — for callers whose
      decoding failed after {!get} succeeded. *)

  val clear : t -> int
  (** Remove every entry (and abandoned temp files); returns how many
      entries were removed. *)

  val gc : t -> int
  (** Maintenance sweep: drop stale/corrupt entries, enforce
      [max_bytes] by LRU, remove abandoned temp files. Returns the
      number of stale/corrupt entries removed. *)

  val entry_count : t -> int
  val size_bytes : t -> int

  val summary : t -> (string * int * int) list
  (** Per-cache [(name, entries, bytes)], sorted. *)

  val counters : t -> (string * int) list
  (** This handle's activity as flat rows —
      [<cache>/hits|misses|writes|corrupt|stale|evicted|evicted_ext] —
      sorted; zero rows included (renderers filter). [evicted] counts
      this handle's own LRU/gc removals; [evicted_ext] counts entries
      this handle published that later vanished from disk, i.e.
      evictions performed by another process sharing the directory. *)

  (** {2 Observability seam} *)

  type io_wrap = {
    wrap : 'a. string -> (string * string) list -> (unit -> 'a) -> 'a;
  }

  val set_io_wrap : io_wrap option -> unit
  (** Install a wrapper bracketing every store I/O ([store:get],
      [store:put], [store:gc]) — the instantiation points this at [Obs]
      spans/counters without this library depending on lib/obs. *)

  val set_note_observer : (string -> string -> int -> unit) option -> unit
  (** Install a process-wide mirror called as [(cache, field, amount)]
      on every counter mutation ([hits], [misses], [writes], [corrupt],
      [stale], [evicted], [evicted_ext]) — the per-request attribution
      seam. May fire with internal store locks held: the observer must
      not call back into the store. *)
end

(** {1 Content-addressed memo tables} *)

module Memo : sig
  type 'a t

  val create :
    ?stats:Stats.t -> ?store:Disk_store.t -> name:string -> unit -> 'a t
  (** A fresh table. When [stats] is given, lookups bump the counters
      under [name]. When [store] is given, the table is read-through /
      write-through persistent: misses consult the disk store (under
      the cache named [name], values [Marshal]ed) and computed values
      are published back. A disk payload that fails to decode is
      evicted and recomputed. *)

  val find_or_add : 'a t -> string -> (unit -> 'a) -> 'a
  (** [find_or_add t key produce] returns the cached value for [key],
      running [produce] (outside the table lock) on a miss. [produce]
      must be deterministic in [key]: under parallel execution two
      domains may race on the same key and the first inserted value
      wins. *)

  val find_opt : 'a t -> string -> 'a option
  val add : 'a t -> string -> 'a -> unit
  val length : 'a t -> int
end

(** {1 Deterministic worker pool} *)

module Pool : sig
  type t

  val create : ?workers:int -> unit -> t
  (** [workers <= 1] (the default) is the sequential fallback: [map] is
      exactly [List.map]. *)

  val recommended_workers : unit -> int
  (** [Domain.recommended_domain_count], capped to a sane bound. *)

  val workers : t -> int

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** Ordered parallel map: the result list matches the input order
      element-for-element regardless of worker count or scheduling, so
      any reduction over it is deterministic. Exceptions raised by [f]
      are re-raised (the one attached to the earliest input wins). *)
end

(** {1 The typed job API} *)

(** Domain operations the engine caches. All functions must be pure
    (deterministic, no shared mutable state) — the repository's
    compiler, tracer and VM qualify — and every [*_key] must be a
    content address: equal keys imply interchangeable results. *)
module type DOMAIN = sig
  type config
  type subject  (** a prepared test-suite program *)

  type bench_subject  (** a benchmark program (no corpus needed) *)

  type binary
  type trace
  type metrics

  val config_key : config -> string
  (** Canonical configuration fingerprint (order- and
      duplicate-insensitive over disabled passes). *)

  val subject_ast_key : subject -> string
  (** Content digest of the compile inputs (AST + roots); tier-1 key
      component. *)

  val subject_key : subject -> string
  (** Content digest of everything measurement depends on (AST + corpus
      + baseline); tier-2 key component. *)

  val bench_subject_key : bench_subject -> string

  val binary_key : binary -> string
  (** Content digest of the *whole* binary (machine code and debug
      sections): the key of the trace and metrics tiers. Two binaries
      sharing it must be interchangeable for any measurement. *)

  val binary_cost_key : binary -> string
  (** Key of the benchmark-cost tier. Execution cost depends on the
      machine code alone, so this may be the (coarser) .text digest —
      sharing costs between binaries that differ only in debug info. *)

  val compile : subject -> config -> binary
  val trace : subject -> binary -> trace
  val metrics : subject -> binary -> trace -> metrics
  val bench_compile : bench_subject -> config -> binary
  val bench_run : bench_subject -> binary -> int
end

module Make (D : DOMAIN) : sig
  type t

  (** The four job kinds of the measurement engine. *)
  type job =
    | Compile of D.subject * D.config
    | Trace of D.subject * D.config
    | Measure of D.subject * D.config
    | BenchCost of D.bench_subject * D.config

  type result =
    | Binary of D.binary
    | Traced of D.trace * D.binary
    | Measured of D.metrics * D.binary
    | Cost of int

  val create : ?workers:int -> ?store:Disk_store.t -> unit -> t
  (** A fresh engine: empty caches, zeroed counters, and a worker pool
      of the given size (default 1 = sequential). When [store] is
      given, every cache tier is backed by that persistent store: jobs
      already on disk are served without executing (counted as hits),
      and fresh results are published back — so a second run of the
      same workload is warm, and an interrupted run resumes where it
      stopped. *)

  val run : t -> job -> result

  (** Typed wrappers over {!run}: *)

  val compile : t -> D.subject -> D.config -> D.binary
  (** Tier-1 cached: keyed by (subject AST digest, config
      fingerprint). *)

  val peek_compile : t -> D.subject -> D.config -> D.binary option
  (** Tier-1 lookup without side effects: no compile, no counter bump.
      Sweep planners use it to drop already-cached configurations before
      grouping the rest by shared pipeline prefix. *)

  val seed_compile : t -> D.subject -> D.config -> (unit -> D.binary) -> D.binary
  (** [seed_compile t s c produce] publishes a binary produced outside
      the engine (e.g. an incremental prefix-cache suffix compile) under
      the ordinary tier-1 key — the regular hit/miss counters fire, and
      every later {!compile} of the same job is a plain tier-1 hit.
      [produce] must return exactly what [D.compile s c] would. *)

  val peek_bench_compile : t -> D.bench_subject -> D.config -> D.binary option
  (** {!peek_compile} for the benchmark tier. *)

  val seed_bench_compile :
    t -> D.bench_subject -> D.config -> (unit -> D.binary) -> D.binary
  (** {!seed_compile} for the benchmark tier. *)

  val trace : t -> D.subject -> D.config -> D.trace * D.binary
  (** Tier-2 cached: keyed by (subject digest, binary digest). *)

  val measure : t -> D.subject -> D.config -> D.metrics * D.binary
  (** Tier-2 cached. Two configurations of the same subject whose
      binaries share a content digest share one metrics object — the
      engine-wide generalization of the paper's discard optimization. *)

  val bench_cost : t -> D.bench_subject -> D.config -> int
  (** Tier-1 cached compile, tier-2 cached cost keyed by
      {!DOMAIN.binary_cost_key} (same .text, same cost — the benchmark
      never re-runs). *)

  val map : t -> ('a -> 'b) -> 'a list -> 'b list
  (** The engine's pool, see {!Pool.map}. Caches are domain-safe, so
      [f] may issue engine jobs. *)

  val workers : t -> int
  val stats : t -> Stats.t

  val store : t -> Disk_store.t option
  (** The persistent store this engine was created with, if any. *)

  val memo : t -> name:string -> (unit -> 'a Memo.t)
  (** [memo t ~name ()] is a fresh memo table wired to this engine's
      counters — for derived results (rankings, trade-off points,
      speedup rows) that are keyed by configuration fingerprint but
      computed outside the four core job kinds. *)
end
