(* Measurement-engine substrate: content-addressed memo tables with
   observable counters, a deterministic Domain worker pool, and the
   two-tier cached job API (see engine.mli for the contract). *)

module Stats = struct
  type counter = { hits : int; misses : int; dedups : int }

  type cell = {
    mutable c_hits : int;
    mutable c_misses : int;
    mutable c_dedups : int;
  }

  type event = [ `Hit | `Miss | `Dedup ]

  type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

  let create () = { mutex = Mutex.create (); cells = Hashtbl.create 8 }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let cell t name =
    match Hashtbl.find_opt t.cells name with
    | Some c -> c
    | None ->
        let c = { c_hits = 0; c_misses = 0; c_dedups = 0 } in
        Hashtbl.replace t.cells name c;
        c

  (* Observability seam: the instantiation (Measure_engine) mirrors
     every bump into a per-request counter sink without this library
     depending on it. Called outside the table lock, after the
     cumulative counter has been updated. *)
  let observer : (string -> event -> unit) option ref = ref None
  let set_observer f = observer := f

  let bump t name (event : event) =
    locked t (fun () ->
        let c = cell t name in
        match event with
        | `Hit -> c.c_hits <- c.c_hits + 1
        | `Miss -> c.c_misses <- c.c_misses + 1
        | `Dedup -> c.c_dedups <- c.c_dedups + 1);
    match !observer with None -> () | Some f -> f name event

  let snapshot t =
    locked t (fun () ->
        Hashtbl.fold
          (fun name c acc ->
            (name, { hits = c.c_hits; misses = c.c_misses; dedups = c.c_dedups })
            :: acc)
          t.cells []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

  let total t =
    List.fold_left
      (fun acc (_, c) ->
        {
          hits = acc.hits + c.hits;
          misses = acc.misses + c.misses;
          dedups = acc.dedups + c.dedups;
        })
      { hits = 0; misses = 0; dedups = 0 }
      (snapshot t)
end

(* Persistent content-addressed artifact store: a cache directory of
   write-once entries published by atomic write-then-rename, each
   carrying a format-version stamp, its full key and a payload checksum
   so stale or damaged entries self-invalidate on read instead of ever
   being trusted. Values are opaque byte strings (the Memo layer above
   handles (de)serialization); keys are the same content addresses the
   in-memory tables use. Safe under concurrent writers in separate
   domains or separate processes: a half-written temp file is never
   visible under its final name, so the worst a race costs is a
   recomputation. *)
module Disk_store = struct
  let format_version = 1

  (* Observability seam: the instantiation (Measure_engine) installs a
     polymorphic wrapper that brackets every store I/O in an [Obs] span
     and counter without this library depending on lib/obs. *)
  type io_wrap = {
    wrap : 'a. string -> (string * string) list -> (unit -> 'a) -> 'a;
  }

  let io_wrap : io_wrap option ref = ref None
  let set_io_wrap w = io_wrap := w

  let wrapped name args f =
    match !io_wrap with None -> f () | Some w -> w.wrap name args f

  (* Second seam, same shape as {!Stats.observer}: every counter
     mutation is mirrored as [(cache, field, amount)] so the
     instantiation can attribute store activity to the request that
     caused it. May fire with the store lock held, so the observer must
     never re-enter this module. *)
  let note_observer : (string -> string -> int -> unit) option ref = ref None
  let set_note_observer f = note_observer := f

  let note cache field n =
    match !note_observer with None -> () | Some f -> f cache field n

  type cell = {
    mutable s_hits : int;
    mutable s_misses : int;
    mutable s_writes : int;
    mutable s_corrupt : int;  (** truncated / bit-flipped / undecodable *)
    mutable s_stale : int;  (** format-version or schema mismatch *)
    mutable s_evicted : int;  (** removed by the size bound (LRU) *)
    mutable s_evicted_ext : int;
        (** entries this handle published that later vanished from disk —
            evicted by another process sharing the directory *)
  }

  type t = {
    root : string;
    schema : string;
    max_bytes : int;
    mutex : Mutex.t;
    mutable size : int;  (** approximate: concurrent processes drift it *)
    cells : (string, cell) Hashtbl.t;
    written : (string, unit) Hashtbl.t;
        (** entry paths this handle published (and has not itself
            removed): a later disk miss on one of them means another
            process evicted it — the cross-process eviction signal *)
  }

  let default_max_bytes = 512 * 1024 * 1024

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  (* Assumes the lock is held. *)
  let cell t name =
    match Hashtbl.find_opt t.cells name with
    | Some c -> c
    | None ->
        let c =
          {
            s_hits = 0;
            s_misses = 0;
            s_writes = 0;
            s_corrupt = 0;
            s_stale = 0;
            s_evicted = 0;
            s_evicted_ext = 0;
          }
        in
        Hashtbl.replace t.cells name c;
        c

  let bump t name f = locked t (fun () -> f (cell t name))
  let objects_dir t = Filename.concat t.root "objects"
  let tmp_dir t = Filename.concat t.root "tmp"

  let rec mkdir_p dir =
    if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
    else begin
      mkdir_p (Filename.dirname dir);
      try Sys.mkdir dir 0o755 with Sys_error _ -> ()
    end

  let readdir_sorted dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        entries
    | exception Sys_error _ -> [||]

  let is_dir d = try Sys.is_directory d with Sys_error _ -> false

  (* Every published entry, deterministically ordered:
     [f acc ~cache path]. *)
  let fold_entries t f acc =
    Array.fold_left
      (fun acc cache ->
        let cdir = Filename.concat (objects_dir t) cache in
        if not (is_dir cdir) then acc
        else
          Array.fold_left
            (fun acc shard ->
              let sdir = Filename.concat cdir shard in
              if not (is_dir sdir) then acc
              else
                Array.fold_left
                  (fun acc file -> f acc ~cache (Filename.concat sdir file))
                  acc (readdir_sorted sdir))
            acc (readdir_sorted cdir))
      acc
      (readdir_sorted (objects_dir t))

  let file_size path = try (Unix.stat path).Unix.st_size with _ -> 0
  let file_mtime path = try (Unix.stat path).Unix.st_mtime with _ -> 0.0

  let scan_size t = fold_entries t (fun acc ~cache:_ p -> acc + file_size p) 0

  let create ?(max_bytes = default_max_bytes) ?(schema = "") ~dir () =
    mkdir_p (Filename.concat dir "objects");
    mkdir_p (Filename.concat dir "tmp");
    let t =
      {
        root = dir;
        schema;
        max_bytes = max 1 max_bytes;
        mutex = Mutex.create ();
        size = 0;
        cells = Hashtbl.create 8;
        written = Hashtbl.create 64;
      }
    in
    t.size <- scan_size t;
    t

  let dir t = t.root

  let entry_path t ~cache ~key =
    let digest = Digest.to_hex (Digest.string key) in
    Filename.concat
      (Filename.concat (Filename.concat (objects_dir t) cache)
         (String.sub digest 0 2))
      digest

  (* On-disk entry layout (everything length-prefixed by the header
     line, so a parse can only succeed on a byte-exact document):

       DTSTORE1 <version> <schema-len> <key-len> <payload-len> <md5(payload)>\n
       <schema>\n
       <key>\n
       <payload>                                        (end of file)   *)

  type bad = Corrupt | Stale | Other_key

  exception Bad of bad

  let read_entry t ?expect_key path =
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let fail b = raise (Bad b) in
    let header =
      match input_line ic with
      | line -> line
      | exception End_of_file -> fail Corrupt
    in
    match String.split_on_char ' ' header with
    | [ magic; ver; slen; klen; plen; sum ] ->
        if magic <> "DTSTORE1" then fail Corrupt;
        let int s =
          match int_of_string_opt s with
          | Some n when n >= 0 -> n
          | _ -> fail Corrupt
        in
        let ver = int ver
        and slen = int slen
        and klen = int klen
        and plen = int plen in
        let really n =
          match really_input_string ic n with
          | s -> s
          | exception End_of_file -> fail Corrupt
        in
        let newline () =
          match input_char ic with
          | '\n' -> ()
          | _ -> fail Corrupt
          | exception End_of_file -> fail Corrupt
        in
        let schema = really slen in
        newline ();
        if ver <> format_version || schema <> t.schema then fail Stale;
        let key = really klen in
        newline ();
        (match expect_key with
        | Some k when k <> key -> fail Other_key
        | _ -> ());
        let payload = really plen in
        let at_eof =
          match input_char ic with
          | _ -> false
          | exception End_of_file -> true
        in
        if not at_eof then fail Corrupt;
        if Digest.to_hex (Digest.string payload) <> sum then fail Corrupt;
        payload
    | _ -> fail Corrupt

  (* Remove an entry, keeping the size estimate in step. Assumes the
     lock is NOT held. *)
  let remove_entry t path =
    let bytes = file_size path in
    match Sys.remove path with
    | () ->
        locked t (fun () ->
            t.size <- max 0 (t.size - bytes);
            Hashtbl.remove t.written path)
    | exception Sys_error _ -> ()

  (* LRU eviction to ~7/8 of the bound (amortizes rescans). Assumes the
     lock is held; rescans the directory so concurrent processes'
     entries are accounted. *)
  let evict_locked t =
    let entries =
      fold_entries t
        (fun acc ~cache p -> (file_mtime p, p, cache, file_size p) :: acc)
        []
    in
    t.size <- List.fold_left (fun a (_, _, _, s) -> a + s) 0 entries;
    if t.size > t.max_bytes then begin
      let target = t.max_bytes * 7 / 8 in
      List.iter
        (fun (mtime, path, cache, bytes) ->
          if t.size > target then
            (* Re-stat before removing: between the scan above and this
               removal another process may have republished the entry
               (tmp+rename) or refreshed its LRU clock with a hit — the
               scanned mtime is then stale, and deleting a freshly
               written or freshly used entry is the one eviction-vs-
               writer race that actually hurts. A newer mtime means the
               entry earned a later LRU position; leave it alone. *)
            if file_mtime path > mtime then ()
            else
              match Sys.remove path with
              | () ->
                  t.size <- max 0 (t.size - bytes);
                  Hashtbl.remove t.written path;
                  (cell t cache).s_evicted <- (cell t cache).s_evicted + 1;
                  note cache "evicted" 1
              | exception Sys_error _ -> ())
        (List.sort compare entries)
    end

  let tmp_seq = Atomic.make 0

  let put t ~cache ~key data =
    wrapped "store:put" [ ("cache", cache) ] @@ fun () ->
    (* A failed write (disk full, permissions, racing eviction) must
       never fail the measurement — the store degrades to a miss. *)
    try
      let path = entry_path t ~cache ~key in
      mkdir_p (Filename.dirname path);
      let tmp =
        Filename.concat (tmp_dir t)
          (Printf.sprintf "%d-%d.tmp" (Unix.getpid ())
             (Atomic.fetch_and_add tmp_seq 1))
      in
      mkdir_p (tmp_dir t);
      let oc = open_out_bin tmp in
      let bytes =
        Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
        let header =
          Printf.sprintf "DTSTORE1 %d %d %d %d %s\n" format_version
            (String.length t.schema) (String.length key) (String.length data)
            (Digest.to_hex (Digest.string data))
        in
        output_string oc header;
        output_string oc t.schema;
        output_char oc '\n';
        output_string oc key;
        output_char oc '\n';
        output_string oc data;
        String.length header + String.length t.schema + String.length key
        + String.length data + 2
      in
      let replaced = file_size path in
      Sys.rename tmp path;
      locked t (fun () ->
          (cell t cache).s_writes <- (cell t cache).s_writes + 1;
          note cache "writes" 1;
          Hashtbl.replace t.written path ();
          t.size <- max 0 (t.size + bytes - replaced);
          if t.size > t.max_bytes then evict_locked t)
    with _ -> ()

  let get t ~cache ~key =
    wrapped "store:get" [ ("cache", cache) ] @@ fun () ->
    let path = entry_path t ~cache ~key in
    if not (Sys.file_exists path) then begin
      (* A miss on an entry we ourselves published (and did not remove)
         means another process's eviction took it: the cross-process
         eviction signal, counted separately from our own LRU work. *)
      locked t (fun () ->
          let c = cell t cache in
          c.s_misses <- c.s_misses + 1;
          note cache "misses" 1;
          if Hashtbl.mem t.written path then begin
            Hashtbl.remove t.written path;
            c.s_evicted_ext <- c.s_evicted_ext + 1;
            note cache "evicted_ext" 1
          end);
      None
    end
    else
      match read_entry t ~expect_key:key path with
      | payload ->
          bump t cache (fun c -> c.s_hits <- c.s_hits + 1);
          note cache "hits" 1;
          (* LRU clock: a hit refreshes the entry's mtime. *)
          (try Unix.utimes path 0.0 0.0 with _ -> ());
          Some payload
      | exception Bad Other_key ->
          (* An md5 collision between distinct keys: not our entry, so
             leave it alone and recompute. *)
          bump t cache (fun c -> c.s_misses <- c.s_misses + 1);
          note cache "misses" 1;
          None
      | exception Bad Stale ->
          remove_entry t path;
          bump t cache (fun c -> c.s_stale <- c.s_stale + 1);
          note cache "stale" 1;
          None
      | exception Bad Corrupt ->
          remove_entry t path;
          bump t cache (fun c -> c.s_corrupt <- c.s_corrupt + 1);
          note cache "corrupt" 1;
          None
      | exception _ ->
          bump t cache (fun c -> c.s_misses <- c.s_misses + 1);
          note cache "misses" 1;
          None

  (* The caller decoded a checksummed payload and failed — a schema
     drift the version stamp did not capture. Evict and count. *)
  let invalidate t ~cache ~key =
    remove_entry t (entry_path t ~cache ~key);
    bump t cache (fun c -> c.s_corrupt <- c.s_corrupt + 1);
    note cache "corrupt" 1

  let remove_tmp t ~max_age =
    let now = Unix.time () in
    Array.iter
      (fun f ->
        let p = Filename.concat (tmp_dir t) f in
        if now -. file_mtime p > max_age then
          try Sys.remove p with Sys_error _ -> ())
      (readdir_sorted (tmp_dir t))

  let clear t =
    locked t @@ fun () ->
    let n =
      fold_entries t
        (fun acc ~cache:_ p ->
          match Sys.remove p with
          | () -> acc + 1
          | exception Sys_error _ -> acc)
        0
    in
    (* Prune the now-empty shard/cache directories (best-effort). *)
    Array.iter
      (fun cache ->
        let cdir = Filename.concat (objects_dir t) cache in
        Array.iter
          (fun shard ->
            try Sys.rmdir (Filename.concat cdir shard) with Sys_error _ -> ())
          (readdir_sorted cdir);
        try Sys.rmdir cdir with Sys_error _ -> ())
      (readdir_sorted (objects_dir t));
    remove_tmp t ~max_age:(-1.0);
    Hashtbl.reset t.written;
    t.size <- 0;
    n

  (* Full maintenance sweep: drop stale / corrupt entries, enforce the
     size bound, remove abandoned temp files. Returns how many entries
     were removed. *)
  let gc t =
    wrapped "store:gc" [] @@ fun () ->
    locked t @@ fun () ->
    let removed = ref 0 in
    fold_entries t
      (fun () ~cache path ->
        match read_entry t path with
        | (_ : string) -> ()
        | exception Bad (Stale | Corrupt) | exception Sys_error _ ->
            let bytes = file_size path in
            (match Sys.remove path with
            | () ->
                incr removed;
                t.size <- max 0 (t.size - bytes);
                Hashtbl.remove t.written path;
                let c = cell t cache in
                c.s_evicted <- c.s_evicted + 1;
                note cache "evicted" 1
            | exception Sys_error _ -> ())
        | exception Bad Other_key -> assert false)
      ();
    t.size <- scan_size t;
    if t.size > t.max_bytes then evict_locked t;
    remove_tmp t ~max_age:900.0;
    !removed

  let entry_count t = fold_entries t (fun acc ~cache:_ _ -> acc + 1) 0
  let size_bytes t = locked t (fun () -> t.size)

  (** Per-cache [(name, entries, bytes)], sorted by cache name. *)
  let summary t =
    let tbl = Hashtbl.create 8 in
    fold_entries t
      (fun () ~cache p ->
        let n, b =
          Option.value ~default:(0, 0) (Hashtbl.find_opt tbl cache)
        in
        Hashtbl.replace tbl cache (n + 1, b + file_size p))
      ();
    Hashtbl.fold (fun cache (n, b) acc -> (cache, n, b) :: acc) tbl []
    |> List.sort compare

  (** Flat [(counter-name, value)] rows ([<cache>/hits] etc.), zero rows
      included (the renderer filters), sorted. *)
  let counters t =
    locked t @@ fun () ->
    Hashtbl.fold
      (fun name c acc ->
        (name ^ "/hits", c.s_hits)
        :: (name ^ "/misses", c.s_misses)
        :: (name ^ "/writes", c.s_writes)
        :: (name ^ "/corrupt", c.s_corrupt)
        :: (name ^ "/stale", c.s_stale)
        :: (name ^ "/evicted", c.s_evicted)
        :: (name ^ "/evicted_ext", c.s_evicted_ext)
        :: acc)
      t.cells []
    |> List.sort compare
end

module Memo = struct
  type 'a t = {
    mutex : Mutex.t;
    table : (string, 'a) Hashtbl.t;
    stats : Stats.t option;
    name : string;
    store : Disk_store.t option;
  }

  let create ?stats ?store ~name () =
    { mutex = Mutex.create (); table = Hashtbl.create 64; stats; name; store }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let bump t event =
    match t.stats with None -> () | Some s -> Stats.bump s t.name event

  let mem_add t key v =
    locked t (fun () ->
        if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key v)

  (* Write-through to the disk store. Serialization is [Marshal] on the
     memo's value type — the table's name doubles as the on-disk cache
     name, and the store's schema stamp guards against layout drift. A
     value Marshal rejects (closures) silently stays memory-only. *)
  let disk_put t key v =
    match t.store with
    | None -> ()
    | Some s -> (
        match Marshal.to_string v [] with
        | data -> Disk_store.put s ~cache:t.name ~key data
        | exception _ -> ())

  (* Memory first, then disk; a disk hit is promoted into the memory
     table so repeated lookups stay cheap and physically shared. A
     payload that passes the checksum but fails to decode is a schema
     drift the version stamp missed: evict it and miss. *)
  let find_opt t key =
    match locked t (fun () -> Hashtbl.find_opt t.table key) with
    | Some v -> Some v
    | None -> (
        match t.store with
        | None -> None
        | Some s -> (
            match Disk_store.get s ~cache:t.name ~key with
            | None -> None
            | Some data -> (
                match Marshal.from_string data 0 with
                | v ->
                    mem_add t key v;
                    (* Serve the table's copy: a racing insert may have
                       won, and callers rely on physical sharing. *)
                    locked t (fun () -> Hashtbl.find_opt t.table key)
                | exception _ ->
                    Disk_store.invalidate s ~cache:t.name ~key;
                    None)))

  let add t key v =
    mem_add t key v;
    disk_put t key v

  (* The producer runs outside the lock so other domains can use the
     table meanwhile; a concurrent duplicate computation of the same key
     is harmless because producers are deterministic and [add] keeps the
     first value. *)
  let find_or_add t key produce =
    match find_opt t key with
    | Some v ->
        bump t `Hit;
        v
    | None ->
        bump t `Miss;
        let v = produce () in
        add t key v;
        v

  let length t = locked t (fun () -> Hashtbl.length t.table)
end

module Pool = struct
  type t = { workers : int }

  let recommended_workers () = min 16 (Domain.recommended_domain_count ())

  let create ?(workers = 1) () = { workers = max 1 workers }

  let workers t = t.workers

  let map t f xs =
    let n = List.length xs in
    (* Calls from a worker (an [f] that itself maps, e.g. a per-program
       sweep inside a per-suite map) run sequentially: nested spawning
       would oversubscribe the machine quadratically. *)
    if t.workers <= 1 || n <= 1 || not (Domain.is_main_domain ()) then
      List.map f xs
    else begin
      let items = Array.of_list xs in
      (* Each slot is written by exactly one domain (the one that claimed
         its index) and read only after every join — no data race. *)
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               Some (try Ok (f items.(i)) with e -> Error e));
            loop ()
          end
        in
        loop ()
      in
      let domains =
        List.init (min t.workers n) (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join domains;
      (* Ordered reduction: walk the slots in input order, so the output
         (and any table built from it) is identical to the sequential
         run; the earliest input's exception wins, as List.map's would. *)
      Array.to_list results
      |> List.map (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> assert false)
    end
end

module type DOMAIN = sig
  type config
  type subject
  type bench_subject
  type binary
  type trace
  type metrics

  val config_key : config -> string
  val subject_ast_key : subject -> string
  val subject_key : subject -> string
  val bench_subject_key : bench_subject -> string
  val binary_key : binary -> string
  val binary_cost_key : binary -> string

  val compile : subject -> config -> binary
  val trace : subject -> binary -> trace
  val metrics : subject -> binary -> trace -> metrics
  val bench_compile : bench_subject -> config -> binary
  val bench_run : bench_subject -> binary -> int
end

module Make (D : DOMAIN) = struct
  type t = {
    pool : Pool.t;
    stats : Stats.t;
    store : Disk_store.t option;
        (** persistent second level behind every memo table *)
    binaries : D.binary Memo.t;  (** tier 1: (AST digest, fingerprint) *)
    bench_binaries : D.binary Memo.t;  (** tier 1 for benchmarks *)
    traces : D.trace Memo.t;  (** tier 2: (subject digest, binary digest) *)
    measures : D.metrics Memo.t;  (** tier 2 *)
    costs : int Memo.t;  (** tier 2, keyed by the coarser cost key *)
  }

  type job =
    | Compile of D.subject * D.config
    | Trace of D.subject * D.config
    | Measure of D.subject * D.config
    | BenchCost of D.bench_subject * D.config

  type result =
    | Binary of D.binary
    | Traced of D.trace * D.binary
    | Measured of D.metrics * D.binary
    | Cost of int

  let create ?workers ?store () =
    let stats = Stats.create () in
    {
      pool = Pool.create ?workers ();
      stats;
      store;
      binaries = Memo.create ~stats ?store ~name:"compile" ();
      bench_binaries = Memo.create ~stats ?store ~name:"bench-compile" ();
      traces = Memo.create ~stats ?store ~name:"trace" ();
      measures = Memo.create ~stats ?store ~name:"measure" ();
      costs = Memo.create ~stats ?store ~name:"bench-cost" ();
    }

  let tier1_key ast_key config = ast_key ^ "/" ^ D.config_key config

  (* Tier-1 lookup that also reports whether the binary was freshly
     compiled — a fresh compile whose binary digest already sits in a
     tier-2 table is a *dedup* (the discard optimization firing), while
     a tier-1 hit followed by a tier-2 hit is a plain cache hit. *)
  let compile_tracked t subject config =
    let key = tier1_key (D.subject_ast_key subject) config in
    let fresh = ref false in
    let bin =
      Memo.find_or_add t.binaries key (fun () ->
          fresh := true;
          D.compile subject config)
    in
    (bin, !fresh)

  let compile t subject config = fst (compile_tracked t subject config)

  (* Planner support (see Measure_engine's prefix planner): [peek]
     checks tier 1 without executing anything or touching the counters —
     the planner uses it to drop already-compiled configs from a sweep
     before grouping the rest by shared prefix. [seed] publishes a
     binary produced outside the engine (an incremental suffix compile)
     under the ordinary tier-1 key, bumping the regular counters, so
     every later [compile]/[trace]/[measure] of that config is a plain
     tier-1 hit. *)
  let peek_compile t subject config =
    Memo.find_opt t.binaries (tier1_key (D.subject_ast_key subject) config)

  let seed_compile t subject config produce =
    Memo.find_or_add t.binaries
      (tier1_key (D.subject_ast_key subject) config)
      produce

  let peek_bench_compile t bench config =
    Memo.find_opt t.bench_binaries
      (tier1_key (D.bench_subject_key bench) config)

  let seed_bench_compile t bench config produce =
    Memo.find_or_add t.bench_binaries
      (tier1_key (D.bench_subject_key bench) config)
      produce

  (* Tier-2 generic lookup with hit/dedup classification. [bin_key]
     picks which binary digest keys the tier (full for debug-quality
     results, code-only for execution cost). *)
  let tier2 t (memo : _ Memo.t) ~subject_key ~bin_key ~bin ~fresh produce =
    let key = subject_key ^ "@" ^ bin_key bin in
    match Memo.find_opt memo key with
    | Some v ->
        Stats.bump t.stats memo.Memo.name (if fresh then `Dedup else `Hit);
        v
    | None ->
        Stats.bump t.stats memo.Memo.name `Miss;
        let v = produce () in
        Memo.add memo key v;
        v

  let trace t subject config =
    let bin, fresh = compile_tracked t subject config in
    let tr =
      tier2 t t.traces ~subject_key:(D.subject_key subject)
        ~bin_key:D.binary_key ~bin ~fresh (fun () -> D.trace subject bin)
    in
    (tr, bin)

  let measure t subject config =
    let bin, fresh = compile_tracked t subject config in
    let m =
      tier2 t t.measures ~subject_key:(D.subject_key subject)
        ~bin_key:D.binary_key ~bin ~fresh (fun () ->
          (* The trace is transient: only its metrics are retained, so a
             full-evaluation run holds one metrics record per distinct
             binary, not one trace (traces are orders of magnitude
             larger). Explicit [Trace] jobs do populate the trace
             tier. *)
          let tr =
            match
              Memo.find_opt t.traces
                (D.subject_key subject ^ "@" ^ D.binary_key bin)
            with
            | Some tr -> tr
            | None -> D.trace subject bin
          in
          D.metrics subject bin tr)
    in
    (m, bin)

  let bench_cost t bench config =
    let key = tier1_key (D.bench_subject_key bench) config in
    let fresh = ref false in
    let bin =
      Memo.find_or_add t.bench_binaries key (fun () ->
          fresh := true;
          D.bench_compile bench config)
    in
    tier2 t t.costs ~subject_key:(D.bench_subject_key bench)
      ~bin_key:D.binary_cost_key ~bin ~fresh:!fresh (fun () ->
        D.bench_run bench bin)

  let run t = function
    | Compile (s, c) -> Binary (compile t s c)
    | Trace (s, c) ->
        let tr, bin = trace t s c in
        Traced (tr, bin)
    | Measure (s, c) ->
        let m, bin = measure t s c in
        Measured (m, bin)
    | BenchCost (b, c) -> Cost (bench_cost t b c)

  let map t f xs = Pool.map t.pool f xs
  let workers t = Pool.workers t.pool
  let stats t = t.stats
  let store t = t.store
  let memo t ~name () = Memo.create ~stats:t.stats ?store:t.store ~name ()
end
