(* Measurement-engine substrate: content-addressed memo tables with
   observable counters, a deterministic Domain worker pool, and the
   two-tier cached job API (see engine.mli for the contract). *)

module Stats = struct
  type counter = { hits : int; misses : int; dedups : int }

  type cell = {
    mutable c_hits : int;
    mutable c_misses : int;
    mutable c_dedups : int;
  }

  type event = [ `Hit | `Miss | `Dedup ]

  type t = { mutex : Mutex.t; cells : (string, cell) Hashtbl.t }

  let create () = { mutex = Mutex.create (); cells = Hashtbl.create 8 }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let cell t name =
    match Hashtbl.find_opt t.cells name with
    | Some c -> c
    | None ->
        let c = { c_hits = 0; c_misses = 0; c_dedups = 0 } in
        Hashtbl.replace t.cells name c;
        c

  let bump t name (event : event) =
    locked t (fun () ->
        let c = cell t name in
        match event with
        | `Hit -> c.c_hits <- c.c_hits + 1
        | `Miss -> c.c_misses <- c.c_misses + 1
        | `Dedup -> c.c_dedups <- c.c_dedups + 1)

  let snapshot t =
    locked t (fun () ->
        Hashtbl.fold
          (fun name c acc ->
            (name, { hits = c.c_hits; misses = c.c_misses; dedups = c.c_dedups })
            :: acc)
          t.cells []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b))

  let total t =
    List.fold_left
      (fun acc (_, c) ->
        {
          hits = acc.hits + c.hits;
          misses = acc.misses + c.misses;
          dedups = acc.dedups + c.dedups;
        })
      { hits = 0; misses = 0; dedups = 0 }
      (snapshot t)
end

module Memo = struct
  type 'a t = {
    mutex : Mutex.t;
    table : (string, 'a) Hashtbl.t;
    stats : Stats.t option;
    name : string;
  }

  let create ?stats ~name () =
    { mutex = Mutex.create (); table = Hashtbl.create 64; stats; name }

  let locked t f =
    Mutex.lock t.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

  let bump t event =
    match t.stats with None -> () | Some s -> Stats.bump s t.name event

  let find_opt t key = locked t (fun () -> Hashtbl.find_opt t.table key)

  let add t key v =
    locked t (fun () ->
        if not (Hashtbl.mem t.table key) then Hashtbl.replace t.table key v)

  (* The producer runs outside the lock so other domains can use the
     table meanwhile; a concurrent duplicate computation of the same key
     is harmless because producers are deterministic and [add] keeps the
     first value. *)
  let find_or_add t key produce =
    match find_opt t key with
    | Some v ->
        bump t `Hit;
        v
    | None ->
        bump t `Miss;
        let v = produce () in
        add t key v;
        v

  let length t = locked t (fun () -> Hashtbl.length t.table)
end

module Pool = struct
  type t = { workers : int }

  let recommended_workers () = min 16 (Domain.recommended_domain_count ())

  let create ?(workers = 1) () = { workers = max 1 workers }

  let workers t = t.workers

  let map t f xs =
    let n = List.length xs in
    if t.workers <= 1 || n <= 1 then List.map f xs
    else begin
      let items = Array.of_list xs in
      (* Each slot is written by exactly one domain (the one that claimed
         its index) and read only after every join — no data race. *)
      let results = Array.make n None in
      let next = Atomic.make 0 in
      let worker () =
        let rec loop () =
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (results.(i) <-
               Some (try Ok (f items.(i)) with e -> Error e));
            loop ()
          end
        in
        loop ()
      in
      let domains =
        List.init (min t.workers n) (fun _ -> Domain.spawn worker)
      in
      List.iter Domain.join domains;
      (* Ordered reduction: walk the slots in input order, so the output
         (and any table built from it) is identical to the sequential
         run; the earliest input's exception wins, as List.map's would. *)
      Array.to_list results
      |> List.map (function
           | Some (Ok r) -> r
           | Some (Error e) -> raise e
           | None -> assert false)
    end
end

module type DOMAIN = sig
  type config
  type subject
  type bench_subject
  type binary
  type trace
  type metrics

  val config_key : config -> string
  val subject_ast_key : subject -> string
  val subject_key : subject -> string
  val bench_subject_key : bench_subject -> string
  val binary_key : binary -> string
  val binary_cost_key : binary -> string

  val compile : subject -> config -> binary
  val trace : subject -> binary -> trace
  val metrics : subject -> binary -> trace -> metrics
  val bench_compile : bench_subject -> config -> binary
  val bench_run : bench_subject -> binary -> int
end

module Make (D : DOMAIN) = struct
  type t = {
    pool : Pool.t;
    stats : Stats.t;
    binaries : D.binary Memo.t;  (** tier 1: (AST digest, fingerprint) *)
    bench_binaries : D.binary Memo.t;  (** tier 1 for benchmarks *)
    traces : D.trace Memo.t;  (** tier 2: (subject digest, binary digest) *)
    measures : D.metrics Memo.t;  (** tier 2 *)
    costs : int Memo.t;  (** tier 2, keyed by the coarser cost key *)
  }

  type job =
    | Compile of D.subject * D.config
    | Trace of D.subject * D.config
    | Measure of D.subject * D.config
    | BenchCost of D.bench_subject * D.config

  type result =
    | Binary of D.binary
    | Traced of D.trace * D.binary
    | Measured of D.metrics * D.binary
    | Cost of int

  let create ?workers () =
    let stats = Stats.create () in
    {
      pool = Pool.create ?workers ();
      stats;
      binaries = Memo.create ~stats ~name:"compile" ();
      bench_binaries = Memo.create ~stats ~name:"bench-compile" ();
      traces = Memo.create ~stats ~name:"trace" ();
      measures = Memo.create ~stats ~name:"measure" ();
      costs = Memo.create ~stats ~name:"bench-cost" ();
    }

  let tier1_key ast_key config = ast_key ^ "/" ^ D.config_key config

  (* Tier-1 lookup that also reports whether the binary was freshly
     compiled — a fresh compile whose binary digest already sits in a
     tier-2 table is a *dedup* (the discard optimization firing), while
     a tier-1 hit followed by a tier-2 hit is a plain cache hit. *)
  let compile_tracked t subject config =
    let key = tier1_key (D.subject_ast_key subject) config in
    let fresh = ref false in
    let bin =
      Memo.find_or_add t.binaries key (fun () ->
          fresh := true;
          D.compile subject config)
    in
    (bin, !fresh)

  let compile t subject config = fst (compile_tracked t subject config)

  (* Tier-2 generic lookup with hit/dedup classification. [bin_key]
     picks which binary digest keys the tier (full for debug-quality
     results, code-only for execution cost). *)
  let tier2 t (memo : _ Memo.t) ~subject_key ~bin_key ~bin ~fresh produce =
    let key = subject_key ^ "@" ^ bin_key bin in
    match Memo.find_opt memo key with
    | Some v ->
        Stats.bump t.stats memo.Memo.name (if fresh then `Dedup else `Hit);
        v
    | None ->
        Stats.bump t.stats memo.Memo.name `Miss;
        let v = produce () in
        Memo.add memo key v;
        v

  let trace t subject config =
    let bin, fresh = compile_tracked t subject config in
    let tr =
      tier2 t t.traces ~subject_key:(D.subject_key subject)
        ~bin_key:D.binary_key ~bin ~fresh (fun () -> D.trace subject bin)
    in
    (tr, bin)

  let measure t subject config =
    let bin, fresh = compile_tracked t subject config in
    let m =
      tier2 t t.measures ~subject_key:(D.subject_key subject)
        ~bin_key:D.binary_key ~bin ~fresh (fun () ->
          (* The trace is transient: only its metrics are retained, so a
             full-evaluation run holds one metrics record per distinct
             binary, not one trace (traces are orders of magnitude
             larger). Explicit [Trace] jobs do populate the trace
             tier. *)
          let tr =
            match
              Memo.find_opt t.traces
                (D.subject_key subject ^ "@" ^ D.binary_key bin)
            with
            | Some tr -> tr
            | None -> D.trace subject bin
          in
          D.metrics subject bin tr)
    in
    (m, bin)

  let bench_cost t bench config =
    let key = tier1_key (D.bench_subject_key bench) config in
    let fresh = ref false in
    let bin =
      Memo.find_or_add t.bench_binaries key (fun () ->
          fresh := true;
          D.bench_compile bench config)
    in
    tier2 t t.costs ~subject_key:(D.bench_subject_key bench)
      ~bin_key:D.binary_cost_key ~bin ~fresh:!fresh (fun () ->
        D.bench_run bench bin)

  let run t = function
    | Compile (s, c) -> Binary (compile t s c)
    | Trace (s, c) ->
        let tr, bin = trace t s c in
        Traced (tr, bin)
    | Measure (s, c) ->
        let m, bin = measure t s c in
        Measured (m, bin)
    | BenchCost (b, c) -> Cost (bench_cost t b c)

  let map t f xs = Pool.map t.pool f xs
  let workers t = Pool.workers t.pool
  let stats t = t.stats
  let memo t ~name () = Memo.create ~stats:t.stats ~name ()
end
