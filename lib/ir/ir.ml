(** The intermediate representation shared by both optimizing pipelines.

    A function is a control-flow graph of basic blocks over virtual
    registers. Lowering from the AST places every local variable in a
    frame slot (the O0 shape: loads and stores around every access);
    {!Mem2reg} then promotes slots to SSA values with phi nodes. Debug
    information lives in two places:

    - every instruction and terminator carries an optional source line;
    - [Dbg] pseudo-instructions bind a source variable to the operand
      holding its current value (the analog of [llvm.dbg.value]); frame
      slots that are never promoted instead carry their variable in
      [slot_var], giving the whole-function memory locations that make O0
      binaries fully debuggable.

    Passes transform the graph and are responsible for maintaining both —
    loss of either is precisely what the experiments measure. *)

type reg = int
type label = int

type operand = Reg of reg | Imm of int

(** Non-short-circuit binary operators ([&&]/[||] are lowered to control
    flow). Comparisons yield 0 or 1. *)
type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ceq
  | Cne
  | Clt
  | Cle
  | Cgt
  | Cge

type unop = Neg | Lnot | Bnot

type base = Slot of int | Global of string

type addr = { base : base; index : operand }
(** Memory reference: element [index] of [base]. Scalars use index 0. *)

type var_id = { origin : string; name : string }
(** Identity of a source variable: the function it was declared in (which
    survives inlining, like [DW_TAG_inlined_subroutine]) and its name. *)

type ikind =
  | Bin of binop * reg * operand * operand
  | Un of unop * reg * operand
  | Mov of reg * operand
  | Load of reg * addr
  | Store of addr * operand
  | Call of reg option * string * operand list
  | Input of reg  (** read the next test-input value *)
  | Eof of reg  (** 1 when the test input is exhausted, else 0 *)
  | Output of operand  (** append to the program output *)
  | Select of reg * operand * operand * operand
      (** [Select (dst, cond, if_true, if_false)] — produced by
          if-conversion *)
  | Vec of binop * (reg * operand * operand) array
      (** SLP-packed lanes: one instruction computing every lane *)
  | Dbg of var_id * operand option
      (** variable binding; [None] records that the value was optimized
          out (an explicitly-undefined location) *)

type instr = { mutable ik : ikind; mutable line : int option }

type term =
  | Ret of operand option
  | Br of label
  | Cbr of operand * label * label  (** non-zero takes the first target *)

type block = {
  b_label : label;
  mutable phis : phi list;
  mutable instrs : instr list;
  mutable term : term;
  mutable term_line : int option;
  mutable preds : label list;  (** maintained by {!recompute_preds} *)
  mutable freq : float;
      (** estimated execution frequency, filled by the branch-probability
          pass; 1.0 until then *)
  mutable prob : float;
      (** for [Cbr]: estimated probability of the first target *)
}

and phi = {
  p_dst : reg;
  mutable p_args : (label * operand) list;  (** one entry per predecessor *)
}

type slot = {
  s_id : int;
  s_size : int;  (** number of elements *)
  s_var : var_id option;  (** the variable living here, if any *)
  s_array : bool;
}

type fn = {
  f_name : string;
  f_line : int;
  f_params : (reg * var_id) list;  (** entry registers holding arguments *)
  mutable f_slots : slot list;
  blocks : (label, block) Hashtbl.t;
  mutable entry : label;
  mutable layout : label list;  (** emission order; entry first *)
  mutable next_reg : int;
  mutable next_label : int;
  mutable next_slot : int;
  mutable is_pure : bool;  (** set by ipa-pure-const *)
  mutable always_inline : bool;  (** single-callsite marker *)
}

type global_def = { g_name : string; g_size : int; g_init : int }

type program = { funcs : (string, fn) Hashtbl.t; prog_globals : global_def list }

(* ------------------------------------------------------------------ *)
(* Constructors and fresh names                                        *)

let fresh_reg fn =
  let r = fn.next_reg in
  fn.next_reg <- r + 1;
  r

let fresh_slot fn ~size ~var ~array =
  let s = { s_id = fn.next_slot; s_size = size; s_var = var; s_array = array } in
  fn.next_slot <- fn.next_slot + 1;
  fn.f_slots <- fn.f_slots @ [ s ];
  s

let block fn l =
  match Hashtbl.find_opt fn.blocks l with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Ir.block: no block %d in %s" l fn.f_name)

let new_block fn =
  let l = fn.next_label in
  fn.next_label <- l + 1;
  let b =
    {
      b_label = l;
      phis = [];
      instrs = [];
      term = Ret None;
      term_line = None;
      preds = [];
      freq = 1.0;
      prob = 0.5;
    }
  in
  Hashtbl.replace fn.blocks l b;
  fn.layout <- fn.layout @ [ l ];
  b

let create_fn ~name ~line ~params =
  let fn =
    {
      f_name = name;
      f_line = line;
      f_params = [];
      f_slots = [];
      blocks = Hashtbl.create 16;
      entry = 0;
      layout = [];
      next_reg = 0;
      next_label = 0;
      next_slot = 0;
      is_pure = false;
      always_inline = false;
    }
  in
  let param_regs =
    List.map (fun v -> (fresh_reg fn, { origin = name; name = v })) params
  in
  let fn = { fn with f_params = param_regs } in
  let entry = new_block fn in
  fn.entry <- entry.b_label;
  fn

(* ------------------------------------------------------------------ *)
(* Structure queries                                                   *)

(** All functions of [p] in source order ((f_line, f_name), the same key
    [Inline] sorts callers by) — never [Hashtbl] iteration order.
    [p.funcs] is populated in source order by the parser but in
    sorted-name order by [Snapshot.restore], so the two tables present
    different iteration orders for identical contents; any pass that
    walked [funcs] directly would compile a snapshot-resumed pipeline
    differently from a straight one. Per-function passes iterate
    through here so the question cannot arise. *)
let sorted_funcs (p : program) =
  List.sort
    (fun a b -> compare (a.f_line, a.f_name) (b.f_line, b.f_name))
    (Hashtbl.fold (fun _ fn acc -> fn :: acc) p.funcs [])

let iter_funcs f (p : program) = List.iter f (sorted_funcs p)

let succs = function
  | Ret _ -> []
  | Br l -> [ l ]
  | Cbr (_, l1, l2) -> if l1 = l2 then [ l1 ] else [ l1; l2 ]

let recompute_preds fn =
  Hashtbl.iter (fun _ b -> b.preds <- []) fn.blocks;
  List.iter
    (fun l ->
      let b = block fn l in
      List.iter
        (fun s ->
          let sb = block fn s in
          if not (List.mem l sb.preds) then sb.preds <- sb.preds @ [ l ])
        (succs b.term))
    fn.layout

(** Labels reachable from entry, as a set. *)
let reachable fn =
  let seen = Hashtbl.create 16 in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter go (succs (block fn l).term)
    end
  in
  go fn.entry;
  seen

(** Reverse postorder of reachable blocks, entry first. *)
let rpo fn =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec go l =
    if not (Hashtbl.mem seen l) then begin
      Hashtbl.replace seen l ();
      List.iter go (succs (block fn l).term);
      order := l :: !order
    end
  in
  go fn.entry;
  !order

(** Remove unreachable blocks from the table and the layout, and prune
    phi arguments coming from removed predecessors. *)
let prune_unreachable fn =
  let live = reachable fn in
  fn.layout <- List.filter (Hashtbl.mem live) fn.layout;
  Hashtbl.iter
    (fun l _ -> if not (Hashtbl.mem live l) then Hashtbl.remove fn.blocks l)
    (Hashtbl.copy fn.blocks);
  recompute_preds fn;
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun p -> p.p_args <- List.filter (fun (l, _) -> List.mem l b.preds) p.p_args)
        b.phis)
    fn.blocks

(* ------------------------------------------------------------------ *)
(* Defs and uses                                                       *)

let def_of_ikind = function
  | Bin (_, d, _, _) | Un (_, d, _) | Mov (d, _) | Load (d, _) | Input d
  | Eof d
  | Select (d, _, _, _) ->
      [ d ]
  | Call (Some d, _, _) -> [ d ]
  | Call (None, _, _) | Store _ | Output _ | Dbg _ -> []
  | Vec (_, lanes) -> Array.to_list (Array.map (fun (d, _, _) -> d) lanes)

let operand_uses = function Reg r -> [ r ] | Imm _ -> []

let addr_uses a = operand_uses a.index

let uses_of_ikind = function
  | Bin (_, _, a, b) -> operand_uses a @ operand_uses b
  | Un (_, _, a) | Mov (_, a) | Output a -> operand_uses a
  | Load (_, a) -> addr_uses a
  | Store (a, v) -> addr_uses a @ operand_uses v
  | Call (_, _, args) -> List.concat_map operand_uses args
  | Input _ | Eof _ -> []
  | Select (_, c, a, b) -> operand_uses c @ operand_uses a @ operand_uses b
  | Vec (_, lanes) ->
      Array.to_list lanes
      |> List.concat_map (fun (_, a, b) -> operand_uses a @ operand_uses b)
  | Dbg (_, Some o) -> operand_uses o
  | Dbg (_, None) -> []

(** Registers used by an instruction, debug bindings excluded — the
    notion of "use" that keeps values alive for DCE. *)
let real_uses_of_ikind = function
  | Dbg _ -> []
  | ik -> uses_of_ikind ik

let term_uses = function
  | Ret (Some o) -> operand_uses o
  | Ret None | Br _ -> []
  | Cbr (c, _, _) -> operand_uses c

(* ------------------------------------------------------------------ *)
(* Rewriting                                                           *)

let subst_operand map = function
  | Reg r as o -> ( match map r with Some o' -> o' | None -> o)
  | Imm _ as o -> o

let subst_addr map a = { a with index = subst_operand map a.index }

(** [subst_uses map ik] rewrites every register use according to [map]
    (definitions are untouched). [Dbg] bindings whose register is mapped
    to another register or constant follow the value; a binding whose
    register is mapped to "nothing" must be handled by the caller. *)
let subst_uses map ik =
  match ik with
  | Bin (op, d, a, b) -> Bin (op, d, subst_operand map a, subst_operand map b)
  | Un (op, d, a) -> Un (op, d, subst_operand map a)
  | Mov (d, a) -> Mov (d, subst_operand map a)
  | Load (d, a) -> Load (d, subst_addr map a)
  | Store (a, v) -> Store (subst_addr map a, subst_operand map v)
  | Call (d, f, args) -> Call (d, f, List.map (subst_operand map) args)
  | Input _ | Eof _ | Dbg (_, None) -> ik
  | Output a -> Output (subst_operand map a)
  | Select (d, c, a, b) ->
      Select (d, subst_operand map c, subst_operand map a, subst_operand map b)
  | Vec (op, lanes) ->
      Vec
        ( op,
          Array.map
            (fun (d, a, b) -> (d, subst_operand map a, subst_operand map b))
            lanes )
  | Dbg (v, Some o) -> Dbg (v, Some (subst_operand map o))

let subst_term map = function
  | Ret (Some o) -> Ret (Some (subst_operand map o))
  | Ret None as t -> t
  | Br _ as t -> t
  | Cbr (c, l1, l2) -> Cbr (subst_operand map c, l1, l2)

(** Apply a register substitution throughout a function (uses only). *)
let apply_subst fn map =
  Hashtbl.iter
    (fun _ b ->
      List.iter
        (fun p ->
          p.p_args <- List.map (fun (l, o) -> (l, subst_operand map o)) p.p_args)
        b.phis;
      List.iter (fun i -> i.ik <- subst_uses map i.ik) b.instrs;
      b.term <- subst_term map b.term)
    fn.blocks

(* ------------------------------------------------------------------ *)
(* Iteration helpers                                                   *)

let iter_blocks fn f = List.iter (fun l -> f (block fn l)) fn.layout

let iter_instrs fn f = iter_blocks fn (fun b -> List.iter (f b) b.instrs)

(** Count of non-debug instructions — the "size" used by inlining
    heuristics and pass statistics. *)
let size fn =
  let n = ref 0 in
  iter_instrs fn (fun _ i ->
      match i.ik with Dbg _ -> () | _ -> incr n);
  !n

(* ------------------------------------------------------------------ *)
(* Evaluation of operators: the single semantics shared by the VM, the
   constant folder and every simplification, so that optimization can
   never change program output. *)

let eval_binop op a b =
  match op with
  | Add -> Arith.add a b
  | Sub -> Arith.sub a b
  | Mul -> Arith.mul a b
  | Div -> Arith.div a b
  | Rem -> Arith.rem a b
  | And -> Arith.band a b
  | Or -> Arith.bor a b
  | Xor -> Arith.bxor a b
  | Shl -> Arith.shl a b
  | Shr -> Arith.shr a b
  | Ceq -> Arith.ceq a b
  | Cne -> Arith.cne a b
  | Clt -> Arith.clt a b
  | Cle -> Arith.cle a b
  | Cgt -> Arith.cgt a b
  | Cge -> Arith.cge a b

let eval_unop op a =
  match op with Neg -> Arith.neg a | Lnot -> Arith.lnot a | Bnot -> Arith.bnot a

(** Operator properties used by value numbering and instcombine. *)
let commutative = function
  | Add | Mul | And | Or | Xor | Ceq | Cne -> true
  | Sub | Div | Rem | Shl | Shr | Clt | Cle | Cgt | Cge -> false

(* ------------------------------------------------------------------ *)
(* Printing (for diagnostics and the IR golden tests)                  *)

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ceq -> "ceq"
  | Cne -> "cne"
  | Clt -> "clt"
  | Cle -> "cle"
  | Cgt -> "cgt"
  | Cge -> "cge"

let unop_name = function Neg -> "neg" | Lnot -> "lnot" | Bnot -> "bnot"

let operand_to_string = function
  | Reg r -> Printf.sprintf "r%d" r
  | Imm n -> string_of_int n

let base_to_string = function
  | Slot s -> Printf.sprintf "slot%d" s
  | Global g -> "@" ^ g

let addr_to_string a =
  Printf.sprintf "%s[%s]" (base_to_string a.base) (operand_to_string a.index)

let var_to_string v = Printf.sprintf "%s:%s" v.origin v.name

let ikind_to_string = function
  | Bin (op, d, a, b) ->
      Printf.sprintf "r%d = %s %s, %s" d (binop_name op) (operand_to_string a)
        (operand_to_string b)
  | Un (op, d, a) ->
      Printf.sprintf "r%d = %s %s" d (unop_name op) (operand_to_string a)
  | Mov (d, a) -> Printf.sprintf "r%d = %s" d (operand_to_string a)
  | Load (d, a) -> Printf.sprintf "r%d = load %s" d (addr_to_string a)
  | Store (a, v) ->
      Printf.sprintf "store %s, %s" (addr_to_string a) (operand_to_string v)
  | Call (None, f, args) ->
      Printf.sprintf "call %s(%s)" f
        (String.concat ", " (List.map operand_to_string args))
  | Call (Some d, f, args) ->
      Printf.sprintf "r%d = call %s(%s)" d f
        (String.concat ", " (List.map operand_to_string args))
  | Input d -> Printf.sprintf "r%d = input" d
  | Eof d -> Printf.sprintf "r%d = eof" d
  | Output a -> Printf.sprintf "output %s" (operand_to_string a)
  | Select (d, c, a, b) ->
      Printf.sprintf "r%d = select %s ? %s : %s" d (operand_to_string c)
        (operand_to_string a) (operand_to_string b)
  | Vec (op, lanes) ->
      let lane (d, a, b) =
        Printf.sprintf "r%d=%s,%s" d (operand_to_string a) (operand_to_string b)
      in
      Printf.sprintf "vec.%s {%s}" (binop_name op)
        (String.concat "; " (Array.to_list (Array.map lane lanes)))
  | Dbg (v, Some o) ->
      Printf.sprintf "dbg %s = %s" (var_to_string v) (operand_to_string o)
  | Dbg (v, None) -> Printf.sprintf "dbg %s = <optimized out>" (var_to_string v)

let term_to_string = function
  | Ret None -> "ret"
  | Ret (Some o) -> "ret " ^ operand_to_string o
  | Br l -> Printf.sprintf "br L%d" l
  | Cbr (c, l1, l2) ->
      Printf.sprintf "cbr %s, L%d, L%d" (operand_to_string c) l1 l2

let line_suffix = function None -> "" | Some l -> Printf.sprintf "  ; line %d" l

let fn_to_string fn =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "fn %s(%s)\n" fn.f_name
       (String.concat ", "
          (List.map
             (fun (r, v) -> Printf.sprintf "r%d=%s" r (var_to_string v))
             fn.f_params)));
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "  slot%d size=%d%s\n" s.s_id s.s_size
           (match s.s_var with
           | Some v -> " var=" ^ var_to_string v
           | None -> "")))
    fn.f_slots;
  List.iter
    (fun l ->
      let b = block fn l in
      Buffer.add_string buf (Printf.sprintf "L%d:\n" l);
      List.iter
        (fun p ->
          let args =
            List.map
              (fun (pl, o) -> Printf.sprintf "L%d:%s" pl (operand_to_string o))
              p.p_args
          in
          Buffer.add_string buf
            (Printf.sprintf "  r%d = phi [%s]\n" p.p_dst (String.concat ", " args)))
        b.phis;
      List.iter
        (fun i ->
          Buffer.add_string buf
            (Printf.sprintf "  %s%s\n" (ikind_to_string i.ik) (line_suffix i.line)))
        b.instrs;
      Buffer.add_string buf
        (Printf.sprintf "  %s%s\n" (term_to_string b.term)
           (line_suffix b.term_line)))
    fn.layout;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Snapshots: mutation-isolated copies of a whole program              *)

(** Deep, mutation-isolated copies of an {!program} — the substrate of
    pass-prefix incremental compilation. A snapshot captured at a pass
    boundary can later be {!Snapshot.restore}d into a fresh program and
    compilation resumed from that exact state, any number of times: the
    snapshot shares no mutable structure with either the program it was
    captured from or any program restored from it.

    Copy discipline, by field:
    - mutable records ([fn], [block], [instr], [phi]) are re-allocated;
    - [Vec] lanes hold a mutable array, so the array is copied; every
      other [ikind] payload is immutable and shared;
    - immutable lists ([f_slots], [f_params], [layout], [preds],
      [p_args], [prog_globals]) are shared — passes replace these
      fields, they never mutate list cells;
    - the [funcs] and [blocks] hash tables are rebuilt with insertions
      in sorted key order, so a restored program's table layout depends
      only on content, never on the insertion history of the original
      (bucket order is observable through [Hashtbl.iter]). *)
module Snapshot = struct
  type t = {
    sn_funcs : (string * fn) list;  (** deep copies, sorted by name *)
    sn_globals : global_def list;
    mutable sn_digest : string option;  (** computed on demand *)
    sn_words : int;  (** reachable heap words of the copied functions *)
  }

  let copy_ikind = function
    | Vec (op, lanes) -> Vec (op, Array.copy lanes)
    | ik -> ik

  let copy_instr (i : instr) = { ik = copy_ikind i.ik; line = i.line }

  let copy_phi (p : phi) = { p_dst = p.p_dst; p_args = p.p_args }

  let copy_block (b : block) =
    {
      b_label = b.b_label;
      phis = List.map copy_phi b.phis;
      instrs = List.map copy_instr b.instrs;
      term = b.term;
      term_line = b.term_line;
      preds = b.preds;
      freq = b.freq;
      prob = b.prob;
    }

  let sorted_labels (fn : fn) =
    Hashtbl.fold (fun l _ acc -> l :: acc) fn.blocks []
    |> List.sort Stdlib.compare

  let copy_fn (fn : fn) =
    let blocks = Hashtbl.create (max 16 (Hashtbl.length fn.blocks)) in
    List.iter
      (fun l -> Hashtbl.replace blocks l (copy_block (Hashtbl.find fn.blocks l)))
      (sorted_labels fn);
    {
      f_name = fn.f_name;
      f_line = fn.f_line;
      f_params = fn.f_params;
      f_slots = fn.f_slots;
      blocks;
      entry = fn.entry;
      layout = fn.layout;
      next_reg = fn.next_reg;
      next_label = fn.next_label;
      next_slot = fn.next_slot;
      is_pure = fn.is_pure;
      always_inline = fn.always_inline;
    }

  let sorted_names (p : program) =
    Hashtbl.fold (fun n _ acc -> n :: acc) p.funcs []
    |> List.sort String.compare

  let capture (p : program) : t =
    let funcs =
      List.map (fun n -> (n, copy_fn (Hashtbl.find p.funcs n))) (sorted_names p)
    in
    {
      sn_funcs = funcs;
      sn_globals = p.prog_globals;
      sn_digest = None;
      sn_words = Obj.reachable_words (Obj.repr funcs);
    }

  (** A fresh program sharing no mutable state with the snapshot: every
      restore forks its own copy, so many resumed compilations can run
      from one snapshot (even concurrently — the snapshot itself is
      only read). *)
  let restore (t : t) : program =
    let funcs = Hashtbl.create (max 16 (List.length t.sn_funcs)) in
    List.iter (fun (n, fn) -> Hashtbl.replace funcs n (copy_fn fn)) t.sn_funcs;
    { funcs; prog_globals = t.sn_globals }

  (* The digest walks deterministic structure only: functions sorted by
     name, blocks in layout order via [fn_to_string], plus every field
     that printer omits (entry label, fresh-name counters, purity and
     inline markers, slot array-ness, per-block frequency/probability in
     hex-float form, predecessor lists, globals). No hash table is ever
     serialized directly, so the digest is independent of table
     insertion history by construction. *)
  let digest_program (p : program) : string =
    let buf = Buffer.create 4096 in
    List.iter
      (fun n ->
        let fn = Hashtbl.find p.funcs n in
        Buffer.add_string buf
          (Printf.sprintf "fn %s line=%d entry=L%d next=%d,%d,%d pure=%b ai=%b\n"
             fn.f_name fn.f_line fn.entry fn.next_reg fn.next_label fn.next_slot
             fn.is_pure fn.always_inline);
        List.iter
          (fun (s : slot) ->
            Buffer.add_string buf
              (Printf.sprintf "slot%d array=%b\n" s.s_id s.s_array))
          fn.f_slots;
        Buffer.add_string buf (fn_to_string fn);
        List.iter
          (fun l ->
            let b = block fn l in
            Buffer.add_string buf
              (Printf.sprintf "L%d freq=%h prob=%h preds=%s\n" l b.freq b.prob
                 (String.concat "," (List.map string_of_int b.preds))))
          fn.layout)
      (sorted_names p);
    List.iter
      (fun (g : global_def) ->
        Buffer.add_string buf
          (Printf.sprintf "global %s size=%d init=%d\n" g.g_name g.g_size
             g.g_init))
      p.prog_globals;
    Digest.to_hex (Digest.string (Buffer.contents buf))

  let digest (t : t) : string =
    match t.sn_digest with
    | Some d -> d
    | None ->
        (* Digesting only reads, so view the templates in place instead
           of paying for a restore copy. *)
        let funcs = Hashtbl.create (max 16 (List.length t.sn_funcs)) in
        List.iter (fun (n, fn) -> Hashtbl.replace funcs n fn) t.sn_funcs;
        let d = digest_program { funcs; prog_globals = t.sn_globals } in
        t.sn_digest <- Some d;
        d

  let size_bytes (t : t) = t.sn_words * (Sys.word_size / 8)
end
