(** The virtual machine executing emitted binaries, with a deterministic
    cost model standing in for the paper's hardware.

    Cost model (in abstract cycles):
    - most ALU operations cost 1; multiplies 3; divides 10
    - memory loads and stores cost 4
    - every operand resident in a frame word ([Pslot]) adds 1 (an
      L1-resident stack access) — spilling and memory-resident variables
      cost real but moderate cycles
    - a control transfer to anything other than the next address adds 3
      (taken-branch / fetch redirect) — block placement earns its keep here
    - reading a location written by the immediately preceding instruction
      adds 2 (pipeline hazard), or 4 if the producer was a load
      (load-use) — post-RA scheduling earns its keep here
    - calls cost 9 (save/restore, argument marshalling) plus one cycle
      per frame word (frame setup and zeroing), the frame part deferred
      to the activation point for shrink-wrapped functions
    - a [k]-lane vector operation costs [1 + k/2] instead of [k] scalar
      instructions

    The VM also provides the instrumentation the framework needs: edge
    coverage (for the fuzzer), first-hit temporary breakpoints (for the
    debugger), and cost-driven PC sampling (for AutoFDO). *)

exception Budget_exhausted
exception Runtime_error of string

type sampler = {
  period : int;
  mutable next_at : int;
  mutable samples : int list;  (** sampled addresses, newest first *)
  rng : Util.Rng.t;
}

type run_opts = {
  max_instrs : int;
  coverage : bool;
  breakpoints : bool array option;
      (** per-address temporary breakpoints; cleared on first hit *)
  sample_period : int option;
  seed : int;  (** sampling jitter seed *)
}

let default_opts =
  {
    max_instrs = 4_000_000;
    coverage = false;
    breakpoints = None;
    sample_period = None;
    seed = 1;
  }

type result = {
  output : int list;
  cost : int;
  instrs : int;
  edges : (int * int, int) Hashtbl.t;  (** (src, dst) -> count *)
  bp_hits : int list;  (** breakpoint addresses in first-hit order *)
  samples : int list;  (** sampled addresses in order *)
  timed_out : bool;
}

type frame = {
  fr_fi : Emit.func_info;
  fr_mem : int array;
  fr_ret_pc : int;
  fr_ret_dst : Mach.mloc option;
  fr_saved : int array;
  mutable fr_paid : bool;  (** frame cost charged (shrink-wrapping) *)
}

type state = {
  bin : Emit.binary;
  pregs : int array;
  mutable frames : frame list;
  globals : (string, int array) Hashtbl.t;
  input : int array;
  mutable input_pos : int;
  mutable out_rev : int list;
  mutable cost : int;
  mutable icount : int;
  mutable pc : int;
  mutable last_writes : Mach.mloc list;  (** locations written by previous instr *)
  mutable last_was_load : bool;
  edges : (int * int, int) Hashtbl.t;
  mutable bp_hits_rev : int list;
  mutable halted : bool;
}

let cur_frame st =
  match st.frames with
  | f :: _ -> f
  | [] -> raise (Runtime_error "no active frame")

let global_mem st g =
  match Hashtbl.find_opt st.globals g with
  | Some a -> a
  | None -> raise (Runtime_error ("unknown global " ^ g))

let wrap_index i size = if size <= 0 then 0 else ((i mod size) + size) mod size

(* Operand resolution, charging the frame-word cost. *)
let read_loc st = function
  | Mach.Preg k -> st.pregs.(k)
  | Mach.Pslot i ->
      st.cost <- st.cost + 1;
      let f = cur_frame st in
      f.fr_mem.(f.fr_fi.Emit.fi_data_words + i)

let read_val st = function Mach.Loc l -> read_loc st l | Mach.Cst n -> n

let write_loc st l v =
  match l with
  | Mach.Preg k -> st.pregs.(k) <- v
  | Mach.Pslot i ->
      st.cost <- st.cost + 1;
      let f = cur_frame st in
      f.fr_mem.(f.fr_fi.Emit.fi_data_words + i) <- v

let resolve_addr st (a : Mach.maddr) =
  let idx = read_val st a.Mach.mindex in
  match a.Mach.mbase with
  | Mach.Mframe slot ->
      let f = cur_frame st in
      let offset, size =
        match
          List.find_opt (fun (id, _, _) -> id = slot) f.fr_fi.Emit.fi_slot_offset
        with
        | Some (_, o, s) -> (o, s)
        | None -> raise (Runtime_error "bad frame slot")
      in
      (f.fr_mem, offset + wrap_index idx size)
  | Mach.Mglobal g ->
      let mem = global_mem st g in
      (mem, wrap_index idx (Array.length mem))

(* Frame-activation cost for shrink-wrapped functions. *)
let charge_frame st =
  let f = cur_frame st in
  if not f.fr_paid then begin
    f.fr_paid <- true;
    st.cost <- st.cost + Array.length f.fr_mem
  end

let enter_function st fi args ~ret_pc ~ret_dst =
  let frame =
    {
      fr_fi = fi;
      fr_mem = Array.make fi.Emit.fi_frame_words 0;
      fr_ret_pc = ret_pc;
      fr_ret_dst = ret_dst;
      fr_saved = Array.copy st.pregs;
      fr_paid = fi.Emit.fi_activation = None;
    }
  in
  st.cost <- st.cost + 9;
  if fi.Emit.fi_activation = None then
    st.cost <- st.cost + fi.Emit.fi_frame_words;
  st.frames <- frame :: st.frames;
  (* Deliver arguments into the callee's parameter locations. *)
  List.iteri
    (fun i loc ->
      let v = try List.nth args i with _ -> 0 in
      match loc with
      | Mach.Preg k -> st.pregs.(k) <- v
      | Mach.Pslot s -> frame.fr_mem.(fi.Emit.fi_data_words + s) <- v)
    fi.Emit.fi_param_locs;
  st.pc <- fi.Emit.fi_entry

let func_by_name st name =
  match Hashtbl.find_opt st.bin.Emit.fn_by_name name with
  | Some idx -> st.bin.Emit.funcs.(idx)
  | None -> raise (Runtime_error ("call to unknown function " ^ name))

(** Execute one instruction; updates [st.pc]. *)
let step st (opts : run_opts) sampler =
  let bin = st.bin in
  let pc = st.pc in
  if pc < 0 || pc >= Array.length bin.Emit.code then
    raise (Runtime_error "pc out of range");
  (* Temporary breakpoints: record the first hit, then clear. *)
  (match opts.breakpoints with
  | Some bps when bps.(pc) ->
      bps.(pc) <- false;
      st.bp_hits_rev <- pc :: st.bp_hits_rev
  | _ -> ());
  st.icount <- st.icount + 1;
  if st.icount > opts.max_instrs then raise Budget_exhausted;
  let hazard reads_ =
    if st.last_writes <> [] && List.exists (fun l -> List.mem l st.last_writes) reads_
    then if st.last_was_load then 4 else 2
    else 0
  in
  let fallthrough = pc + 1 in
  let transfer dst =
    if opts.coverage || opts.sample_period <> None then begin
      let key = (pc, dst) in
      Hashtbl.replace st.edges key
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.edges key))
    end;
    if dst <> fallthrough then st.cost <- st.cost + 3;
    st.pc <- dst
  in
  (match bin.Emit.code.(pc) with
  | Emit.Eins mk ->
      let reads_ = Mach.reads mk in
      st.cost <- st.cost + 1 + hazard reads_;
      if Mach.touches_frame mk then charge_frame st;
      (match mk with
      | Mach.Mbin (op, d, a, b) ->
          let cost_extra =
            match op with Ir.Mul -> 2 | Ir.Div | Ir.Rem -> 9 | _ -> 0
          in
          st.cost <- st.cost + cost_extra;
          write_loc st d (Ir.eval_binop op (read_val st a) (read_val st b));
          st.last_was_load <- false
      | Mach.Mun (op, d, a) ->
          write_loc st d (Ir.eval_unop op (read_val st a));
          st.last_was_load <- false
      | Mach.Mmov (d, a) ->
          write_loc st d (read_val st a);
          st.last_was_load <- false
      | Mach.Mload (d, a) ->
          st.cost <- st.cost + 3;
          let mem, i = resolve_addr st a in
          write_loc st d mem.(i);
          st.last_was_load <- true
      | Mach.Mstore (a, v) ->
          st.cost <- st.cost + 3;
          let value = read_val st v in
          let mem, i = resolve_addr st a in
          mem.(i) <- value;
          st.last_was_load <- false
      | Mach.Mcall (dst, f, args) ->
          let argv = List.map (read_val st) args in
          let fi = func_by_name st f in
          enter_function st fi argv ~ret_pc:fallthrough ~ret_dst:dst;
          st.last_writes <- [];
          st.last_was_load <- false;
          (* control transferred; skip the bottom-of-function PC update *)
          raise_notrace Exit
      | Mach.Minput d ->
          st.cost <- st.cost + 2;
          let v =
            if st.input_pos < Array.length st.input then begin
              let v = st.input.(st.input_pos) in
              st.input_pos <- st.input_pos + 1;
              v
            end
            else 0
          in
          write_loc st d v;
          st.last_was_load <- false
      | Mach.Meof d ->
          write_loc st d (if st.input_pos >= Array.length st.input then 1 else 0);
          st.last_was_load <- false
      | Mach.Moutput v ->
          st.cost <- st.cost + 2;
          st.out_rev <- read_val st v :: st.out_rev;
          st.last_was_load <- false
      | Mach.Mselect (d, c, a, b) ->
          let v = if read_val st c <> 0 then read_val st a else read_val st b in
          write_loc st d v;
          st.last_was_load <- false
      | Mach.Mvec (op, lanes) ->
          (* SIMD: one extra cycle per pair of lanes beyond the base. *)
          st.cost <- st.cost + (Array.length lanes / 2);
          let results =
            Array.map
              (fun (_, a, b) -> Ir.eval_binop op (read_val st a) (read_val st b))
              lanes
          in
          Array.iteri (fun i (d, _, _) -> write_loc st d results.(i)) lanes;
          st.last_was_load <- false
      | Mach.Mdbg _ -> () (* never emitted; defensive *));
      st.last_writes <- Mach.writes mk;
      st.pc <- fallthrough
  | Emit.Ejmp t ->
      st.cost <- st.cost + 1;
      st.last_writes <- [];
      transfer t
  | Emit.Ecbr (c, t1, t2) ->
      st.cost <- st.cost + 1 + hazard (Mach.mval_reads c);
      let v = read_val st c in
      st.last_writes <- [];
      transfer (if v <> 0 then t1 else t2)
  | Emit.Eret v ->
      st.cost <- st.cost + 2;
      let value = Option.map (read_val st) v in
      (match st.frames with
      | [] -> raise (Runtime_error "return with no frame")
      | f :: rest ->
          st.frames <- rest;
          Array.blit f.fr_saved 0 st.pregs 0 (Array.length st.pregs);
          if rest = [] then st.halted <- true
          else begin
            (match (f.fr_ret_dst, value) with
            | Some d, Some v -> write_loc st d v
            | Some d, None -> write_loc st d 0
            | None, _ -> ());
            st.last_writes <- [];
            st.last_was_load <- false;
            transfer f.fr_ret_pc
          end));
  (* Cost-driven sampling. *)
  match sampler with
  | Some s ->
      while st.cost >= s.next_at do
        s.samples <- st.pc :: s.samples;
        (* Small deterministic jitter avoids lockstep aliasing with loop
           bodies, like real PMU sampling. *)
        s.next_at <- s.next_at + s.period + Util.Rng.int s.rng (max 1 (s.period / 8))
      done
  | None -> ()

(** [run bin ~entry ~args ~input opts] executes [bin] starting at
    function [entry]. *)
let run_unobserved (bin : Emit.binary) ~entry ?(args = []) ~input
    (opts : run_opts) : result =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun (g : Ir.global_def) ->
      Hashtbl.replace globals g.Ir.g_name (Array.make g.Ir.g_size g.Ir.g_init))
    bin.Emit.bin_globals;
  let st =
    {
      bin;
      pregs = Array.make (Mach.num_regs + 1) 0;
      frames = [];
      globals;
      input = Array.of_list input;
      input_pos = 0;
      out_rev = [];
      cost = 0;
      icount = 0;
      pc = 0;
      last_writes = [];
      last_was_load = false;
      edges = Hashtbl.create 256;
      bp_hits_rev = [];
      halted = false;
    }
  in
  let sampler =
    Option.map
      (fun period ->
        {
          period;
          next_at = period;
          samples = [];
          rng = Util.Rng.create (opts.seed + 77);
        })
      opts.sample_period
  in
  let fi =
    match Hashtbl.find_opt bin.Emit.fn_by_name entry with
    | Some idx -> bin.Emit.funcs.(idx)
    | None -> raise (Runtime_error ("no entry function " ^ entry))
  in
  enter_function st fi args ~ret_pc:(-1) ~ret_dst:None;
  let timed_out = ref false in
  (try
     while not st.halted do
       try step st opts sampler with Exit -> ()
     done
   with Budget_exhausted -> timed_out := true);
  {
    output = List.rev st.out_rev;
    cost = st.cost;
    instrs = st.icount;
    edges = st.edges;
    bp_hits = List.rev st.bp_hits_rev;
    samples = (match sampler with Some s -> List.rev s.samples | None -> []);
    timed_out = !timed_out;
  }

(* The [Obs.enabled] guard keeps the disabled path free of the span
   machinery (and of the args-list allocation) — executions dominate
   every experiment's inner loop. *)
let run bin ~entry ?(args = []) ~input opts : result =
  if not (Obs.enabled ()) then run_unobserved bin ~entry ~args ~input opts
  else
    Obs.Span.wrap "vm:run"
      ~args:[ ("entry", entry) ]
      (fun () ->
        let r = run_unobserved bin ~entry ~args ~input opts in
        Obs.count "vm/runs";
        Obs.count ~n:r.instrs "vm/instrs";
        Obs.count ~n:r.cost "vm/cost";
        r)
