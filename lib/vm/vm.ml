(** The virtual machine executing emitted binaries, with a deterministic
    cost model standing in for the paper's hardware.

    Cost model (in abstract cycles):
    - most ALU operations cost 1; multiplies 3; divides 10
    - memory loads and stores cost 4
    - every operand resident in a frame word ([Pslot]) adds 1 (an
      L1-resident stack access) — spilling and memory-resident variables
      cost real but moderate cycles
    - a control transfer to anything other than the next address adds 3
      (taken-branch / fetch redirect) — block placement earns its keep here
    - reading a location written by the immediately preceding instruction
      adds 2 (pipeline hazard), or 4 if the producer was a load
      (load-use) — post-RA scheduling earns its keep here
    - calls cost 9 (save/restore, argument marshalling) plus one cycle
      per frame word (frame setup and zeroing), the frame part deferred
      to the activation point for shrink-wrapped functions
    - a [k]-lane vector operation costs [1 + k/2] instead of [k] scalar
      instructions

    The VM also provides the instrumentation the framework needs: edge
    coverage (for the fuzzer), first-hit temporary breakpoints (for the
    debugger), and cost-driven PC sampling (for AutoFDO).

    Two cores implement these semantics. {!Reference} is the original
    tree-walking interpreter over [Emit.eop]; it is the executable
    specification, and remains the engine behind the stepwise
    ({!step}/{!state}) API used by the debugger. The fast core decodes a
    binary once ({!Decode}) into flat instruction arrays with resolved
    frame-slot offsets, precomputed hazard bitsets and static costs, and
    fused superinstructions, then executes with an array-based frame
    stack and no per-instruction allocation. [run] dispatches to the
    fast core when the binary is decodable and falls back to
    {!Reference} otherwise (or when [DEBUGTUNER_VM=reference] is set).
    The conformance suite pins the two cores to byte-identical
    {!result}s. *)

exception Budget_exhausted
exception Runtime_error of string

type sampler = {
  period : int;
  mutable next_at : int;
  mutable samples : int list;  (** sampled addresses, newest first *)
  rng : Util.Rng.t;
}

type run_opts = {
  max_instrs : int;
  coverage : bool;
  breakpoints : bool array option;
      (** per-address temporary breakpoints; cleared on first hit *)
  sample_period : int option;
  seed : int;  (** sampling jitter seed *)
}

let default_opts =
  {
    max_instrs = 4_000_000;
    coverage = false;
    breakpoints = None;
    sample_period = None;
    seed = 1;
  }

type result = {
  output : int list;
  cost : int;
  instrs : int;
  edges : (int * int, int) Hashtbl.t;  (** (src, dst) -> count *)
  bp_hits : int list;  (** breakpoint addresses in first-hit order *)
  samples : int list;  (** sampled addresses in order *)
  timed_out : bool;
}

type frame = {
  fr_fi : Emit.func_info;
  fr_mem : int array;
  fr_ret_pc : int;
  fr_ret_dst : Mach.mloc option;
  fr_saved : int array;
  mutable fr_paid : bool;  (** frame cost charged (shrink-wrapping) *)
}

type state = {
  bin : Emit.binary;
  pregs : int array;
  mutable frames : frame list;
  globals : (string, int array) Hashtbl.t;
  input : int array;
  mutable input_pos : int;
  mutable out_rev : int list;
  mutable cost : int;
  mutable icount : int;
  mutable pc : int;
  mutable last_writes : Mach.mloc list;  (** locations written by previous instr *)
  mutable last_was_load : bool;
  edges : (int * int, int) Hashtbl.t;
  mutable bp_hits_rev : int list;
  mutable halted : bool;
}

let cur_frame st =
  match st.frames with
  | f :: _ -> f
  | [] -> raise (Runtime_error "no active frame")

let global_mem st g =
  match Hashtbl.find_opt st.globals g with
  | Some a -> a
  | None -> raise (Runtime_error ("unknown global " ^ g))

let wrap_index i size = if size <= 0 then 0 else ((i mod size) + size) mod size

(* Operand resolution, charging the frame-word cost. *)
let read_loc st = function
  | Mach.Preg k -> st.pregs.(k)
  | Mach.Pslot i ->
      st.cost <- st.cost + 1;
      let f = cur_frame st in
      f.fr_mem.(f.fr_fi.Emit.fi_data_words + i)

let read_val st = function Mach.Loc l -> read_loc st l | Mach.Cst n -> n

let write_loc st l v =
  match l with
  | Mach.Preg k -> st.pregs.(k) <- v
  | Mach.Pslot i ->
      st.cost <- st.cost + 1;
      let f = cur_frame st in
      f.fr_mem.(f.fr_fi.Emit.fi_data_words + i) <- v

let resolve_addr st (a : Mach.maddr) =
  let idx = read_val st a.Mach.mindex in
  match a.Mach.mbase with
  | Mach.Mframe slot ->
      let f = cur_frame st in
      let offset, size =
        match
          List.find_opt (fun (id, _, _) -> id = slot) f.fr_fi.Emit.fi_slot_offset
        with
        | Some (_, o, s) -> (o, s)
        | None -> raise (Runtime_error "bad frame slot")
      in
      (f.fr_mem, offset + wrap_index idx size)
  | Mach.Mglobal g ->
      let mem = global_mem st g in
      (mem, wrap_index idx (Array.length mem))

(* Frame-activation cost for shrink-wrapped functions. *)
let charge_frame st =
  let f = cur_frame st in
  if not f.fr_paid then begin
    f.fr_paid <- true;
    st.cost <- st.cost + Array.length f.fr_mem
  end

let enter_function st fi args ~ret_pc ~ret_dst =
  let frame =
    {
      fr_fi = fi;
      fr_mem = Array.make fi.Emit.fi_frame_words 0;
      fr_ret_pc = ret_pc;
      fr_ret_dst = ret_dst;
      fr_saved = Array.copy st.pregs;
      fr_paid = fi.Emit.fi_activation = None;
    }
  in
  st.cost <- st.cost + 9;
  if fi.Emit.fi_activation = None then
    st.cost <- st.cost + fi.Emit.fi_frame_words;
  st.frames <- frame :: st.frames;
  (* Deliver arguments into the callee's parameter locations. Missing
     arguments (under-application) are explicitly zero-filled; surplus
     arguments are evaluated by the caller but not delivered. *)
  List.iteri
    (fun i loc ->
      let v = match List.nth_opt args i with Some v -> v | None -> 0 in
      match loc with
      | Mach.Preg k -> st.pregs.(k) <- v
      | Mach.Pslot s -> frame.fr_mem.(fi.Emit.fi_data_words + s) <- v)
    fi.Emit.fi_param_locs;
  st.pc <- fi.Emit.fi_entry

let func_by_name st name =
  match Hashtbl.find_opt st.bin.Emit.fn_by_name name with
  | Some idx -> st.bin.Emit.funcs.(idx)
  | None -> raise (Runtime_error ("call to unknown function " ^ name))

(** Execute one instruction; updates [st.pc]. *)
let step st (opts : run_opts) sampler =
  let bin = st.bin in
  let pc = st.pc in
  if pc < 0 || pc >= Array.length bin.Emit.code then
    raise (Runtime_error "pc out of range");
  (* Temporary breakpoints: record the first hit, then clear. *)
  (match opts.breakpoints with
  | Some bps when bps.(pc) ->
      bps.(pc) <- false;
      st.bp_hits_rev <- pc :: st.bp_hits_rev
  | _ -> ());
  st.icount <- st.icount + 1;
  if st.icount > opts.max_instrs then raise Budget_exhausted;
  let hazard reads_ =
    if st.last_writes <> [] && List.exists (fun l -> List.mem l st.last_writes) reads_
    then if st.last_was_load then 4 else 2
    else 0
  in
  let fallthrough = pc + 1 in
  let transfer dst =
    if opts.coverage || opts.sample_period <> None then begin
      let key = (pc, dst) in
      Hashtbl.replace st.edges key
        (1 + Option.value ~default:0 (Hashtbl.find_opt st.edges key))
    end;
    if dst <> fallthrough then st.cost <- st.cost + 3;
    st.pc <- dst
  in
  (match bin.Emit.code.(pc) with
  | Emit.Eins mk ->
      let reads_ = Mach.reads mk in
      st.cost <- st.cost + 1 + hazard reads_;
      if Mach.touches_frame mk then charge_frame st;
      (match mk with
      | Mach.Mbin (op, d, a, b) ->
          let cost_extra =
            match op with Ir.Mul -> 2 | Ir.Div | Ir.Rem -> 9 | _ -> 0
          in
          st.cost <- st.cost + cost_extra;
          write_loc st d (Ir.eval_binop op (read_val st a) (read_val st b));
          st.last_was_load <- false
      | Mach.Mun (op, d, a) ->
          write_loc st d (Ir.eval_unop op (read_val st a));
          st.last_was_load <- false
      | Mach.Mmov (d, a) ->
          write_loc st d (read_val st a);
          st.last_was_load <- false
      | Mach.Mload (d, a) ->
          st.cost <- st.cost + 3;
          let mem, i = resolve_addr st a in
          write_loc st d mem.(i);
          st.last_was_load <- true
      | Mach.Mstore (a, v) ->
          st.cost <- st.cost + 3;
          let value = read_val st v in
          let mem, i = resolve_addr st a in
          mem.(i) <- value;
          st.last_was_load <- false
      | Mach.Mcall (dst, f, args) ->
          let argv = List.map (read_val st) args in
          let fi = func_by_name st f in
          enter_function st fi argv ~ret_pc:fallthrough ~ret_dst:dst;
          st.last_writes <- [];
          st.last_was_load <- false;
          (* control transferred; skip the bottom-of-function PC update *)
          raise_notrace Exit
      | Mach.Minput d ->
          st.cost <- st.cost + 2;
          let v =
            if st.input_pos < Array.length st.input then begin
              let v = st.input.(st.input_pos) in
              st.input_pos <- st.input_pos + 1;
              v
            end
            else 0
          in
          write_loc st d v;
          st.last_was_load <- false
      | Mach.Meof d ->
          write_loc st d (if st.input_pos >= Array.length st.input then 1 else 0);
          st.last_was_load <- false
      | Mach.Moutput v ->
          st.cost <- st.cost + 2;
          st.out_rev <- read_val st v :: st.out_rev;
          st.last_was_load <- false
      | Mach.Mselect (d, c, a, b) ->
          let v = if read_val st c <> 0 then read_val st a else read_val st b in
          write_loc st d v;
          st.last_was_load <- false
      | Mach.Mvec (op, lanes) ->
          (* SIMD: one extra cycle per pair of lanes beyond the base. *)
          st.cost <- st.cost + (Array.length lanes / 2);
          let results =
            Array.map
              (fun (_, a, b) -> Ir.eval_binop op (read_val st a) (read_val st b))
              lanes
          in
          Array.iteri (fun i (d, _, _) -> write_loc st d results.(i)) lanes;
          st.last_was_load <- false
      | Mach.Mdbg _ -> () (* never emitted; defensive *));
      st.last_writes <- Mach.writes mk;
      st.pc <- fallthrough
  | Emit.Ejmp t ->
      st.cost <- st.cost + 1;
      st.last_writes <- [];
      transfer t
  | Emit.Ecbr (c, t1, t2) ->
      st.cost <- st.cost + 1 + hazard (Mach.mval_reads c);
      let v = read_val st c in
      st.last_writes <- [];
      transfer (if v <> 0 then t1 else t2)
  | Emit.Eret v ->
      st.cost <- st.cost + 2;
      let value = Option.map (read_val st) v in
      (match st.frames with
      | [] -> raise (Runtime_error "return with no frame")
      | f :: rest ->
          st.frames <- rest;
          Array.blit f.fr_saved 0 st.pregs 0 (Array.length st.pregs);
          if rest = [] then st.halted <- true
          else begin
            (match (f.fr_ret_dst, value) with
            | Some d, Some v -> write_loc st d v
            | Some d, None -> write_loc st d 0
            | None, _ -> ());
            st.last_writes <- [];
            st.last_was_load <- false;
            transfer f.fr_ret_pc
          end));
  (* Cost-driven sampling. *)
  match sampler with
  | Some s ->
      while st.cost >= s.next_at do
        s.samples <- st.pc :: s.samples;
        (* Small deterministic jitter avoids lockstep aliasing with loop
           bodies, like real PMU sampling. *)
        s.next_at <- s.next_at + s.period + Util.Rng.int s.rng (max 1 (s.period / 8))
      done
  | None -> ()

(** The original tree-walking interpreter — the executable specification
    the fast core is conformance-tested against, and the fallback for
    binaries the decoder rejects. *)
module Reference = struct
  let run (bin : Emit.binary) ~entry ?(args = []) ~input (opts : run_opts) :
      result =
    let globals = Hashtbl.create 16 in
    List.iter
      (fun (g : Ir.global_def) ->
        Hashtbl.replace globals g.Ir.g_name (Array.make g.Ir.g_size g.Ir.g_init))
      bin.Emit.bin_globals;
    let st =
      {
        bin;
        pregs = Array.make (Mach.num_regs + 1) 0;
        frames = [];
        globals;
        input = Array.of_list input;
        input_pos = 0;
        out_rev = [];
        cost = 0;
        icount = 0;
        pc = 0;
        last_writes = [];
        last_was_load = false;
        edges = Hashtbl.create 256;
        bp_hits_rev = [];
        halted = false;
      }
    in
    let sampler =
      Option.map
        (fun period ->
          {
            period;
            next_at = period;
            samples = [];
            rng = Util.Rng.create (opts.seed + 77);
          })
        opts.sample_period
    in
    let fi =
      match Hashtbl.find_opt bin.Emit.fn_by_name entry with
      | Some idx -> bin.Emit.funcs.(idx)
      | None -> raise (Runtime_error ("no entry function " ^ entry))
    in
    enter_function st fi args ~ret_pc:(-1) ~ret_dst:None;
    let timed_out = ref false in
    (try
       while not st.halted do
         try step st opts sampler with Exit -> ()
       done
     with Budget_exhausted -> timed_out := true);
    {
      output = List.rev st.out_rev;
      cost = st.cost;
      instrs = st.icount;
      edges = st.edges;
      bp_hits = List.rev st.bp_hits_rev;
      samples = (match sampler with Some s -> List.rev s.samples | None -> []);
      timed_out = !timed_out;
    }
end

(** One-time flattening of an [Emit.binary] into the fast core's
    pre-decoded form: operands carry resolved absolute frame-word
    indices, every instruction carries its static cost, its hazard
    read/write bitsets and its touches-frame flag, and adjacent
    cmp+cbr / load+use pairs are fused into superinstructions on the
    plain (uninstrumented) code array.

    Hazard bitsets pack [Preg k] as bit [k] and [Pslot i] as bit
    [15 + i]; binaries whose spill indices do not fit (i > 47), or with
    degenerate layouts the checks below reject, decode to [None] and run
    on {!Reference}. Decoded programs are immutable (all mutable
    per-run state lives in the fast core's own state record), so the
    digest-keyed cache can be shared across domains behind its mutex. *)
module Decode = struct
  exception Unsupported

  (* Register file width: num_regs architectural registers plus the
     scratch register the backend reserves. *)
  let nregs = Mach.num_regs + 1

  type operand =
    | Oreg of int
    | Oslot of int  (** absolute frame-word index (data_words + spill) *)
    | Ocst of int

  type dst = Dreg of int | Dslot of int  (** absolute frame-word index *)

  type daddr =
    | Aframe of int * int  (** offset, size — both decode-checked *)
    | Aglobal of int * int  (** global table index, size *)

  (* Per-instruction static fields: [c] the precomputed cost (base +
     op extras + frame-word operand charges + any statically-known
     branch penalty), [rb]/[wb] the hazard read/write bitsets, [tf]
     whether the instruction triggers the shrink-wrap frame charge. *)
  type dins =
    | Ibin of {
        op : Ir.binop;
        d : dst;
        a : operand;
        b : operand;
        c : int;
        rb : int;
        wb : int;
        tf : bool;
      }
    | Iun of {
        op : Ir.unop;
        d : dst;
        a : operand;
        c : int;
        rb : int;
        wb : int;
        tf : bool;
      }
    | Imov of { d : dst; a : operand; c : int; rb : int; wb : int; tf : bool }
    | Iload of {
        d : dst;
        ad : daddr;
        ix : operand;
        c : int;
        rb : int;
        wb : int;
        tf : bool;
      }
    | Istore of {
        ad : daddr;
        ix : operand;
        v : operand;
        c : int;
        rb : int;
        tf : bool;
      }
    | Icall of {
        fx : int;  (** callee index in [p_funcs] *)
        srcs : operand array;  (** one per callee parameter, zero-padded *)
        ret_mode : int;  (** 0 none, 1 register, 2 frame word *)
        ret_idx : int;  (** register number or caller-absolute frame index *)
        c : int;
        rb : int;
        tf : bool;
      }
    | Iinput of { d : dst; c : int; wb : int; tf : bool }
    | Ieof of { d : dst; c : int; wb : int; tf : bool }
    | Ioutput of { v : operand; c : int; rb : int; tf : bool }
    | Iselect of {
        d : dst;
        cnd : operand;
        a : operand;
        b : operand;
        xa : int;  (** frame-word charge of arm [a], paid only if taken *)
        xb : int;
        c : int;
        rb : int;
        wb : int;
        tf : bool;
      }
    | Ivec of {
        op : Ir.binop;
        lanes : (dst * operand * operand) array;
        c : int;
        rb : int;
        wb : int;
        tf : bool;
      }
    | Inop  (** [Mdbg]: cost 1, no reads, no writes *)
    | Ijmp of { t : int; c : int }  (** c includes the taken-branch 3 *)
    | Icbr of {
        cnd : operand;
        t1 : int;
        t2 : int;
        x1 : int;  (** +3 if t1 is not the fallthrough *)
        x2 : int;
        c : int;
        rb : int;
      }
    | Iret of { v : operand; c : int }  (** no hazard: returns pay a flat 2 *)
    | Ifail of string
        (** statically-malformed instruction (unknown global/function,
            bad frame slot): raises [Runtime_error] when executed, like
            the reference core *)
    | Icmp_cbr of {
        (* fused Mbin ; Ecbr — part 2's pair hazard is static in c2 *)
        op : Ir.binop;
        d : dst;
        a : operand;
        b : operand;
        c1 : int;
        rb : int;
        tf : bool;
        cnd : operand;
        t1 : int;
        t2 : int;
        x1 : int;
        x2 : int;
        c2 : int;
      }
    | Iload_bin of {
        (* fused Mload ; Mbin — part 2's load-use hazard is static in c2 *)
        d : dst;
        ad : daddr;
        ix : operand;
        c1 : int;
        rb1 : int;
        tf1 : bool;
        op : Ir.binop;
        d2 : dst;
        a : operand;
        b : operand;
        c2 : int;
        wb2 : int;
        tf2 : bool;
      }

  type dfunc = {
    df_entry : int;
    df_frame_words : int;
    df_prepaid : bool;  (** frame cost charged at entry (not shrink-wrapped) *)
    df_params : dst array;
  }

  type program = {
    p_code : dins array;  (** unfused; the instrumented loop runs this *)
    p_plain : dins array;  (** with superinstructions; the plain loop *)
    p_funcs : dfunc array;
    p_globals : (int * int) array;  (** size, init — in [bin_globals] order *)
    p_max_params : int;
    p_max_lanes : int;
  }

  let bit_of = function
    | Mach.Preg k ->
        if k < 0 || k >= nregs then raise Unsupported;
        1 lsl k
    | Mach.Pslot i ->
        if i < 0 || i > 47 then raise Unsupported;
        1 lsl (nregs + i)

  let bits locs = List.fold_left (fun acc l -> acc lor bit_of l) 0 locs

  (* The +1 frame-word charge of an operand, statically. *)
  let loc_cost = function Mach.Preg _ -> 0 | Mach.Pslot _ -> 1
  let val_cost = function Mach.Loc l -> loc_cost l | Mach.Cst _ -> 0

  let decode (bin : Emit.binary) : program =
    let funcs = bin.Emit.funcs in
    let globals = Array.of_list bin.Emit.bin_globals in
    let gindex = Hashtbl.create 16 in
    (* Last definition wins, matching the reference core's
       [Hashtbl.replace] over the definition list. *)
    Array.iteri
      (fun i (g : Ir.global_def) -> Hashtbl.replace gindex g.Ir.g_name i)
      globals;
    let dfuncs =
      Array.map
        (fun (fi : Emit.func_info) ->
          let dw = fi.Emit.fi_data_words and fw = fi.Emit.fi_frame_words in
          let params =
            Array.of_list
              (List.map
                 (function
                   | Mach.Preg k ->
                       if k < 0 || k >= nregs then raise Unsupported;
                       Dreg k
                   | Mach.Pslot s ->
                       if s < 0 || s > 47 || dw + s >= fw then raise Unsupported;
                       Dslot (dw + s))
                 fi.Emit.fi_param_locs)
          in
          {
            df_entry = fi.Emit.fi_entry;
            df_frame_words = fw;
            df_prepaid = fi.Emit.fi_activation = None;
            df_params = params;
          })
        funcs
    in
    let max_params = ref 1 and max_lanes = ref 1 in
    Array.iter
      (fun df -> max_params := max !max_params (Array.length df.df_params))
      dfuncs;
    let code = bin.Emit.code in
    let len = Array.length code in
    let dec pc =
      (* Frame context of the address. [fn_of_addr] can only be out of a
         function for padding that is never executed; any frame-relative
         operand there makes the binary unsupported. *)
      let fx = bin.Emit.fn_of_addr.(pc) in
      let dw, fw =
        if fx < 0 || fx >= Array.length funcs then (0, 0)
        else
          let fi = funcs.(fx) in
          (fi.Emit.fi_data_words, fi.Emit.fi_frame_words)
      in
      let dst_of = function
        | Mach.Preg k ->
            if k < 0 || k >= nregs then raise Unsupported;
            Dreg k
        | Mach.Pslot i ->
            if i < 0 || i > 47 || dw + i >= fw then raise Unsupported;
            Dslot (dw + i)
      in
      let op_of = function
        | Mach.Cst n -> Ocst n
        | Mach.Loc (Mach.Preg k) ->
            if k < 0 || k >= nregs then raise Unsupported;
            Oreg k
        | Mach.Loc (Mach.Pslot i) ->
            if i < 0 || i > 47 || dw + i >= fw then raise Unsupported;
            Oslot (dw + i)
      in
      (* Resolve a memory base; [Error msg] decodes to [Ifail msg] so the
         run raises exactly what the reference core raises on execution. *)
      let addr_of (a : Mach.maddr) =
        match a.Mach.mbase with
        | Mach.Mframe slot -> (
            let fi = funcs.(fx) in
            match
              List.find_opt
                (fun (id, _, _) -> id = slot)
                fi.Emit.fi_slot_offset
            with
            | Some (_, o, s) ->
                if o < 0 || s < 1 || o + s > fw then raise Unsupported;
                Ok (Aframe (o, s))
            | None -> Error "bad frame slot")
        | Mach.Mglobal g -> (
            match Hashtbl.find_opt gindex g with
            | Some i ->
                let size = globals.(i).Ir.g_size in
                if size < 1 then raise Unsupported;
                Ok (Aglobal (i, size))
            | None -> Error ("unknown global " ^ g))
      in
      match code.(pc) with
      | Emit.Eins mk -> (
          let rb = bits (Mach.reads mk) in
          let wb = bits (Mach.writes mk) in
          let tf = Mach.touches_frame mk in
          match mk with
          | Mach.Mbin (op, d, a, b) ->
              let extra =
                match op with Ir.Mul -> 2 | Ir.Div | Ir.Rem -> 9 | _ -> 0
              in
              Ibin
                {
                  op;
                  d = dst_of d;
                  a = op_of a;
                  b = op_of b;
                  c = 1 + extra + val_cost a + val_cost b + loc_cost d;
                  rb;
                  wb;
                  tf;
                }
          | Mach.Mun (op, d, a) ->
              Iun
                {
                  op;
                  d = dst_of d;
                  a = op_of a;
                  c = 1 + val_cost a + loc_cost d;
                  rb;
                  wb;
                  tf;
                }
          | Mach.Mmov (d, a) ->
              Imov
                {
                  d = dst_of d;
                  a = op_of a;
                  c = 1 + val_cost a + loc_cost d;
                  rb;
                  wb;
                  tf;
                }
          | Mach.Mload (d, a) -> (
              let ix = op_of a.Mach.mindex in
              let c = 4 + val_cost a.Mach.mindex + loc_cost d in
              match addr_of a with
              | Ok ad -> Iload { d = dst_of d; ad; ix; c; rb; wb; tf }
              | Error msg -> Ifail msg)
          | Mach.Mstore (a, v) -> (
              let ix = op_of a.Mach.mindex in
              let c = 4 + val_cost a.Mach.mindex + val_cost v in
              match addr_of a with
              | Ok ad -> Istore { ad; ix; v = op_of v; c; rb; tf }
              | Error msg -> Ifail msg)
          | Mach.Mcall (dst, f, args) -> (
              match Hashtbl.find_opt bin.Emit.fn_by_name f with
              | None -> Ifail ("call to unknown function " ^ f)
              | Some cx ->
                  let callee = dfuncs.(cx) in
                  let nparams = Array.length callee.df_params in
                  let srcs =
                    Array.init nparams (fun i ->
                        match List.nth_opt args i with
                        | Some v -> op_of v
                        | None -> Ocst 0)
                  in
                  let ret_mode, ret_idx =
                    match dst with
                    | None -> (0, 0)
                    | Some (Mach.Preg k) ->
                        if k < 0 || k >= nregs then raise Unsupported;
                        (1, k)
                    | Some (Mach.Pslot i) ->
                        if i < 0 || dw + i >= fw then raise Unsupported;
                        (2, dw + i)
                  in
                  let c =
                    1 + 9
                    + List.fold_left (fun acc v -> acc + val_cost v) 0 args
                    + (if callee.df_prepaid then callee.df_frame_words else 0)
                  in
                  Icall { fx = cx; srcs; ret_mode; ret_idx; c; rb; tf })
          | Mach.Minput d ->
              Iinput { d = dst_of d; c = 3 + loc_cost d; wb; tf }
          | Mach.Meof d -> Ieof { d = dst_of d; c = 1 + loc_cost d; wb; tf }
          | Mach.Moutput v ->
              Ioutput { v = op_of v; c = 3 + val_cost v; rb; tf }
          | Mach.Mselect (d, cnd, a, b) ->
              Iselect
                {
                  d = dst_of d;
                  cnd = op_of cnd;
                  a = op_of a;
                  b = op_of b;
                  xa = val_cost a;
                  xb = val_cost b;
                  c = 1 + val_cost cnd + loc_cost d;
                  rb;
                  wb;
                  tf;
                }
          | Mach.Mvec (op, lanes) ->
              let n = Array.length lanes in
              max_lanes := max !max_lanes n;
              let c =
                Array.fold_left
                  (fun acc (d, a, b) ->
                    acc + val_cost a + val_cost b + loc_cost d)
                  (1 + (n / 2))
                  lanes
              in
              Ivec
                {
                  op;
                  lanes =
                    Array.map
                      (fun (d, a, b) -> (dst_of d, op_of a, op_of b))
                      lanes;
                  c;
                  rb;
                  wb;
                  tf;
                }
          | Mach.Mdbg _ -> Inop)
      | Emit.Ejmp t -> Ijmp { t; c = (if t <> pc + 1 then 4 else 1) }
      | Emit.Ecbr (cnd, t1, t2) ->
          Icbr
            {
              cnd = op_of cnd;
              t1;
              t2;
              x1 = (if t1 <> pc + 1 then 3 else 0);
              x2 = (if t2 <> pc + 1 then 3 else 0);
              c = 1 + val_cost cnd;
              rb = bits (Mach.mval_reads cnd);
            }
      | Emit.Eret v ->
          let rv, rc =
            match v with
            | None -> (Ocst 0, 0)
            | Some x -> (op_of x, val_cost x)
          in
          Iret { v = rv; c = 2 + rc }
    in
    let d_code = Array.init len dec in
    (* Superinstruction pass: fuse straight-line pairs on a copy. The
       second address keeps its unfused instruction so jumps into the
       middle of a pair still work, and the unfused array keeps the
       per-instruction breakpoint/edge/sample semantics exact. *)
    let d_plain = Array.copy d_code in
    for pc = 0 to len - 2 do
      if bin.Emit.fn_of_addr.(pc) = bin.Emit.fn_of_addr.(pc + 1) then
        match (d_code.(pc), d_code.(pc + 1)) with
        | Ibin { op; d; a; b; c; rb; wb; tf }, Icbr cb ->
            (* Part 2's hazard is against part 1's writes exactly: +2
               when the branch condition reads the compare's result. *)
            let c2 = cb.c + (if cb.rb land wb <> 0 then 2 else 0) in
            d_plain.(pc) <-
              Icmp_cbr
                {
                  op;
                  d;
                  a;
                  b;
                  c1 = c;
                  rb;
                  tf;
                  cnd = cb.cnd;
                  t1 = cb.t1;
                  t2 = cb.t2;
                  x1 = cb.x1;
                  x2 = cb.x2;
                  c2;
                }
        | Iload { d; ad; ix; c; rb; wb; tf }, Ibin b2 ->
            (* Load-use: the consumer pays the 4-cycle penalty when it
               reads the load's destination. *)
            let c2 = b2.c + (if b2.rb land wb <> 0 then 4 else 0) in
            d_plain.(pc) <-
              Iload_bin
                {
                  d;
                  ad;
                  ix;
                  c1 = c;
                  rb1 = rb;
                  tf1 = tf;
                  op = b2.op;
                  d2 = b2.d;
                  a = b2.a;
                  b = b2.b;
                  c2;
                  wb2 = b2.wb;
                  tf2 = b2.tf;
                }
        | _ -> ()
    done;
    {
      p_code = d_code;
      p_plain = d_plain;
      p_funcs = dfuncs;
      p_globals =
        Array.map (fun (g : Ir.global_def) -> (g.Ir.g_size, g.Ir.g_init)) globals;
      p_max_params = !max_params;
      p_max_lanes = !max_lanes;
    }

  (* Digest-keyed decode cache, shared across the engine's domains. The
     table is bounded; decoding outside the lock means a race decodes
     twice, which is benign (programs are immutable). *)
  let cache : (string, program option) Hashtbl.t = Hashtbl.create 64
  let cache_mu = Mutex.create ()

  (* Bumped whenever [program]'s layout (or the decoder's output for a
     given binary — new superinstructions, changed cost model) changes:
     persisted decode results from any other version must read as
     misses, never be trusted. *)
  let format_version = 1

  (* Persistence seam: the instantiation (Measure_engine) keys decode
     results into its [Disk_store] without this library depending on
     lib/engine. [ps_get]/[ps_put] see the full versioned key; a [None]
     payload records "decode unsupported", which is as expensive to
     rediscover as a successful decode. [ps_note true] is a persisted
     hit, [ps_note false] a fresh decode — the vm/decode_hits|misses
     counters. *)
  type persist = {
    ps_get : string -> program option option;
    ps_put : string -> program option -> unit;
    ps_note : bool -> unit;
  }

  let persist : persist option ref = ref None
  let set_persist p = persist := p

  let persist_key digest = Printf.sprintf "decode-v%d/%s" format_version digest

  let get (bin : Emit.binary) : program option =
    Mutex.lock cache_mu;
    let cached = Hashtbl.find_opt cache bin.Emit.full_digest in
    Mutex.unlock cache_mu;
    match cached with
    | Some p -> p
    | None ->
        let p =
          match !persist with
          | None -> (try Some (decode bin) with Unsupported -> None)
          | Some ps -> (
              match ps.ps_get (persist_key bin.Emit.full_digest) with
              | Some p ->
                  ps.ps_note true;
                  p
              | None ->
                  let p = try Some (decode bin) with Unsupported -> None in
                  ps.ps_note false;
                  ps.ps_put (persist_key bin.Emit.full_digest) p;
                  p)
        in
        Mutex.lock cache_mu;
        if Hashtbl.length cache > 192 then Hashtbl.reset cache;
        Hashtbl.replace cache bin.Emit.full_digest p;
        Mutex.unlock cache_mu;
        p

  (** Whether the fast core can execute this binary (decode succeeded).
      The conformance suite asserts this for every generated binary, so
      the fast path provably engages. *)
  let supported bin = get bin <> None
end

(** The pre-decoded execution core: flat {!Decode} arrays, an array-based
    frame stack (frame words, saved register windows and return records
    all live in growable flat arrays), and unsafe indexing everywhere a
    bound was established at decode time. Two loops share the state: the
    plain loop runs the fused code with zero instrumentation overhead,
    the instrumented loop runs the unfused code with the exact
    per-instruction breakpoint/edge/sampler semantics of {!step}. *)
module Fast = struct
  open Decode

  type fstate = {
    mutable stk : int array;  (** frame words of all live frames *)
    mutable fp : int;  (** current frame base in [stk] *)
    mutable sp : int;
    mutable depth : int;
    mutable f_ret_pc : int array;
    mutable f_ret_mode : int array;
    mutable f_ret_idx : int array;
    mutable f_fp : int array;
    mutable f_words : int array;
    mutable f_paid : bool array;
    mutable rsave : int array;  (** [nregs]-wide saved register windows *)
    regs : int array;
    g_mem : int array array;
    input : int array;
    mutable input_pos : int;
    mutable out_rev : int list;
    mutable cost : int;
    mutable icount : int;
    mutable last_bits : int;  (** write bitset of the previous instruction *)
    mutable hp : int;  (** hazard penalty of the previous writer: 2 or 4 *)
    mutable cur_paid : bool;  (** shrink-wrap charge state of the top frame *)
    mutable cur_words : int;
    mutable bp_hits_rev : int list;
    pscratch : int array;  (** call-argument staging, caller → callee *)
    vscratch : int array;  (** vector-lane staging, reads before writes *)
  }

  let ensure_stk st need =
    if need > Array.length st.stk then begin
      let n = ref (max 1024 (Array.length st.stk)) in
      while !n < need do
        n := !n * 2
      done;
      let a = Array.make !n 0 in
      Array.blit st.stk 0 a 0 st.sp;
      st.stk <- a
    end

  let grow_frames st =
    let n = Array.length st.f_ret_pc * 2 in
    let g a =
      let b = Array.make n 0 in
      Array.blit a 0 b 0 st.depth;
      b
    in
    st.f_ret_pc <- g st.f_ret_pc;
    st.f_ret_mode <- g st.f_ret_mode;
    st.f_ret_idx <- g st.f_ret_idx;
    st.f_fp <- g st.f_fp;
    st.f_words <- g st.f_words;
    let p = Array.make n false in
    Array.blit st.f_paid 0 p 0 st.depth;
    st.f_paid <- p;
    let r = Array.make (n * nregs) 0 in
    Array.blit st.rsave 0 r 0 (st.depth * nregs);
    st.rsave <- r

  (* Mirrors [enter_function]: registers are saved before parameter
     delivery (the caller reads arguments before this is called), the
     frame is zeroed, and the 9 + frame_words cost is part of the call
     instruction's static cost. *)
  let push_frame st (df : dfunc) ~ret_pc ~ret_mode ~ret_idx =
    let d = st.depth in
    if d = Array.length st.f_ret_pc then grow_frames st;
    Array.blit st.regs 0 st.rsave (d * nregs) nregs;
    st.f_ret_pc.(d) <- ret_pc;
    st.f_ret_mode.(d) <- ret_mode;
    st.f_ret_idx.(d) <- ret_idx;
    st.f_fp.(d) <- st.sp;
    st.f_words.(d) <- df.df_frame_words;
    if d > 0 then st.f_paid.(d - 1) <- st.cur_paid;
    ensure_stk st (st.sp + df.df_frame_words);
    Array.fill st.stk st.sp df.df_frame_words 0;
    st.fp <- st.sp;
    st.sp <- st.sp + df.df_frame_words;
    st.depth <- d + 1;
    st.cur_paid <- df.df_prepaid;
    st.cur_words <- df.df_frame_words

  let[@inline] rdo st o =
    match o with
    | Oreg k -> Array.unsafe_get st.regs k
    | Oslot i -> Array.unsafe_get st.stk (st.fp + i)
    | Ocst n -> n

  let[@inline] wrd st d v =
    match d with
    | Dreg k -> Array.unsafe_set st.regs k v
    | Dslot i -> Array.unsafe_set st.stk (st.fp + i) v

  let[@inline] wrap i s =
    let r = i mod s in
    if r < 0 then r + s else r

  let[@inline] charge st tf =
    if tf && not st.cur_paid then begin
      st.cur_paid <- true;
      st.cost <- st.cost + st.cur_words
    end

  let[@inline] haz st rb = if st.last_bits land rb <> 0 then st.hp else 0

  let[@inline] mem_get st ad idx =
    match ad with
    | Aframe (o, s) -> Array.unsafe_get st.stk (st.fp + o + wrap idx s)
    | Aglobal (g, s) ->
        Array.unsafe_get (Array.unsafe_get st.g_mem g) (wrap idx s)

  let[@inline] mem_set st ad idx v =
    match ad with
    | Aframe (o, s) -> Array.unsafe_set st.stk (st.fp + o + wrap idx s) v
    | Aglobal (g, s) ->
        Array.unsafe_set (Array.unsafe_get st.g_mem g) (wrap idx s) v

  (* The uninstrumented loop over the fused code: no breakpoints, no
     edges, no sampler — callers guarantee the options ask for none. *)
  let exec_plain (p : program) st max_instrs start =
    let code = p.p_plain in
    let len = Array.length code in
    let funcs = p.p_funcs in
    let pc = ref start in
    let running = ref true in
    while !running do
      let pc0 = !pc in
      if pc0 < 0 || pc0 >= len then raise (Runtime_error "pc out of range");
      st.icount <- st.icount + 1;
      if st.icount > max_instrs then raise Budget_exhausted;
      match Array.unsafe_get code pc0 with
      | Ibin { op; d; a; b; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (Ir.eval_binop op (rdo st a) (rdo st b));
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Iun { op; d; a; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (Ir.eval_unop op (rdo st a));
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Imov { d; a; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (rdo st a);
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Iload { d; ad; ix; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (mem_get st ad (rdo st ix));
          st.last_bits <- wb;
          st.hp <- 4;
          pc := pc0 + 1
      | Istore { ad; ix; v; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let value = rdo st v in
          mem_set st ad (rdo st ix) value;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := pc0 + 1
      | Icall { fx; srcs; ret_mode; ret_idx; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let n = Array.length srcs in
          let ps = st.pscratch in
          for i = 0 to n - 1 do
            Array.unsafe_set ps i (rdo st (Array.unsafe_get srcs i))
          done;
          let df = Array.unsafe_get funcs fx in
          push_frame st df ~ret_pc:(pc0 + 1) ~ret_mode ~ret_idx;
          let params = df.df_params in
          for i = 0 to n - 1 do
            wrd st (Array.unsafe_get params i) (Array.unsafe_get ps i)
          done;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := df.df_entry
      | Iinput { d; c; wb; tf } ->
          st.cost <- st.cost + c;
          charge st tf;
          let v =
            if st.input_pos < Array.length st.input then begin
              let v = Array.unsafe_get st.input st.input_pos in
              st.input_pos <- st.input_pos + 1;
              v
            end
            else 0
          in
          wrd st d v;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ieof { d; c; wb; tf } ->
          st.cost <- st.cost + c;
          charge st tf;
          wrd st d (if st.input_pos >= Array.length st.input then 1 else 0);
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ioutput { v; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          st.out_rev <- rdo st v :: st.out_rev;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := pc0 + 1
      | Iselect { d; cnd; a; b; xa; xb; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let v =
            if rdo st cnd <> 0 then begin
              st.cost <- st.cost + xa;
              rdo st a
            end
            else begin
              st.cost <- st.cost + xb;
              rdo st b
            end
          in
          wrd st d v;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ivec { op; lanes; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let n = Array.length lanes in
          let vs = st.vscratch in
          for i = 0 to n - 1 do
            let _, a, b = Array.unsafe_get lanes i in
            Array.unsafe_set vs i (Ir.eval_binop op (rdo st a) (rdo st b))
          done;
          for i = 0 to n - 1 do
            let d, _, _ = Array.unsafe_get lanes i in
            wrd st d (Array.unsafe_get vs i)
          done;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Inop ->
          st.cost <- st.cost + 1;
          st.last_bits <- 0;
          pc := pc0 + 1
      | Ijmp { t; c } ->
          st.cost <- st.cost + c;
          st.last_bits <- 0;
          pc := t
      | Icbr { cnd; t1; t2; x1; x2; c; rb } ->
          st.cost <- st.cost + c + haz st rb;
          let t, x = if rdo st cnd <> 0 then (t1, x1) else (t2, x2) in
          st.cost <- st.cost + x;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := t
      | Iret { v; c } ->
          st.cost <- st.cost + c;
          let value = rdo st v in
          let d = st.depth - 1 in
          Array.blit st.rsave (d * nregs) st.regs 0 nregs;
          st.sp <- st.f_fp.(d);
          st.depth <- d;
          if d = 0 then running := false
          else begin
            st.fp <- st.f_fp.(d - 1);
            st.cur_paid <- st.f_paid.(d - 1);
            st.cur_words <- st.f_words.(d - 1);
            (match st.f_ret_mode.(d) with
            | 1 -> Array.unsafe_set st.regs st.f_ret_idx.(d) value
            | 2 ->
                st.cost <- st.cost + 1;
                Array.unsafe_set st.stk (st.fp + st.f_ret_idx.(d)) value
            | _ -> ());
            let rp = st.f_ret_pc.(d) in
            if rp <> pc0 + 1 then st.cost <- st.cost + 3;
            st.last_bits <- 0;
            st.hp <- 2;
            pc := rp
          end
      | Ifail msg -> raise (Runtime_error msg)
      | Icmp_cbr { op; d; a; b; c1; rb; tf; cnd; t1; t2; x1; x2; c2 } ->
          st.cost <- st.cost + c1 + haz st rb;
          charge st tf;
          wrd st d (Ir.eval_binop op (rdo st a) (rdo st b));
          (* The branch is its own instruction for the budget, and its
             pair hazard against the compare is already static in c2. *)
          st.icount <- st.icount + 1;
          if st.icount > max_instrs then raise Budget_exhausted;
          st.cost <- st.cost + c2;
          let t, x = if rdo st cnd <> 0 then (t1, x1) else (t2, x2) in
          st.cost <- st.cost + x;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := t
      | Iload_bin { d; ad; ix; c1; rb1; tf1; op; d2; a; b; c2; wb2; tf2 } ->
          st.cost <- st.cost + c1 + haz st rb1;
          charge st tf1;
          wrd st d (mem_get st ad (rdo st ix));
          st.icount <- st.icount + 1;
          if st.icount > max_instrs then raise Budget_exhausted;
          st.cost <- st.cost + c2;
          charge st tf2;
          wrd st d2 (Ir.eval_binop op (rdo st a) (rdo st b));
          st.last_bits <- wb2;
          st.hp <- 2;
          pc := pc0 + 2
    done

  (* The instrumented loop over the unfused code: per-instruction
     breakpoint recording, edge counting on transfers, and the
     cost-driven sampler (skipped after calls, exactly like the
     reference core's [Exit] shortcut skips the bottom of [step]). *)
  let exec_instr (p : program) st (opts : run_opts) sampler edges start =
    let code = p.p_code in
    let len = Array.length code in
    let funcs = p.p_funcs in
    let record_edges = opts.coverage || opts.sample_period <> None in
    let max_instrs = opts.max_instrs in
    let bump src dst =
      if record_edges then begin
        let key = (src, dst) in
        Hashtbl.replace edges key
          (1 + Option.value ~default:0 (Hashtbl.find_opt edges key))
      end
    in
    let pc = ref start in
    let running = ref true in
    let skip = ref false in
    while !running do
      let pc0 = !pc in
      if pc0 < 0 || pc0 >= len then raise (Runtime_error "pc out of range");
      (match opts.breakpoints with
      | Some bps when bps.(pc0) ->
          bps.(pc0) <- false;
          st.bp_hits_rev <- pc0 :: st.bp_hits_rev
      | _ -> ());
      st.icount <- st.icount + 1;
      if st.icount > max_instrs then raise Budget_exhausted;
      skip := false;
      (match Array.unsafe_get code pc0 with
      | Ibin { op; d; a; b; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (Ir.eval_binop op (rdo st a) (rdo st b));
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Iun { op; d; a; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (Ir.eval_unop op (rdo st a));
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Imov { d; a; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (rdo st a);
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Iload { d; ad; ix; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          wrd st d (mem_get st ad (rdo st ix));
          st.last_bits <- wb;
          st.hp <- 4;
          pc := pc0 + 1
      | Istore { ad; ix; v; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let value = rdo st v in
          mem_set st ad (rdo st ix) value;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := pc0 + 1
      | Icall { fx; srcs; ret_mode; ret_idx; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let n = Array.length srcs in
          let ps = st.pscratch in
          for i = 0 to n - 1 do
            Array.unsafe_set ps i (rdo st (Array.unsafe_get srcs i))
          done;
          let df = Array.unsafe_get funcs fx in
          push_frame st df ~ret_pc:(pc0 + 1) ~ret_mode ~ret_idx;
          let params = df.df_params in
          for i = 0 to n - 1 do
            wrd st (Array.unsafe_get params i) (Array.unsafe_get ps i)
          done;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := df.df_entry;
          skip := true
      | Iinput { d; c; wb; tf } ->
          st.cost <- st.cost + c;
          charge st tf;
          let v =
            if st.input_pos < Array.length st.input then begin
              let v = Array.unsafe_get st.input st.input_pos in
              st.input_pos <- st.input_pos + 1;
              v
            end
            else 0
          in
          wrd st d v;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ieof { d; c; wb; tf } ->
          st.cost <- st.cost + c;
          charge st tf;
          wrd st d (if st.input_pos >= Array.length st.input then 1 else 0);
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ioutput { v; c; rb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          st.out_rev <- rdo st v :: st.out_rev;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := pc0 + 1
      | Iselect { d; cnd; a; b; xa; xb; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let v =
            if rdo st cnd <> 0 then begin
              st.cost <- st.cost + xa;
              rdo st a
            end
            else begin
              st.cost <- st.cost + xb;
              rdo st b
            end
          in
          wrd st d v;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Ivec { op; lanes; c; rb; wb; tf } ->
          st.cost <- st.cost + c + haz st rb;
          charge st tf;
          let n = Array.length lanes in
          let vs = st.vscratch in
          for i = 0 to n - 1 do
            let _, a, b = Array.unsafe_get lanes i in
            Array.unsafe_set vs i (Ir.eval_binop op (rdo st a) (rdo st b))
          done;
          for i = 0 to n - 1 do
            let d, _, _ = Array.unsafe_get lanes i in
            wrd st d (Array.unsafe_get vs i)
          done;
          st.last_bits <- wb;
          st.hp <- 2;
          pc := pc0 + 1
      | Inop ->
          st.cost <- st.cost + 1;
          st.last_bits <- 0;
          pc := pc0 + 1
      | Ijmp { t; c } ->
          st.cost <- st.cost + c;
          st.last_bits <- 0;
          bump pc0 t;
          pc := t
      | Icbr { cnd; t1; t2; x1; x2; c; rb } ->
          st.cost <- st.cost + c + haz st rb;
          let t, x = if rdo st cnd <> 0 then (t1, x1) else (t2, x2) in
          bump pc0 t;
          st.cost <- st.cost + x;
          st.last_bits <- 0;
          st.hp <- 2;
          pc := t
      | Iret { v; c } ->
          st.cost <- st.cost + c;
          let value = rdo st v in
          let d = st.depth - 1 in
          Array.blit st.rsave (d * nregs) st.regs 0 nregs;
          st.sp <- st.f_fp.(d);
          st.depth <- d;
          if d = 0 then running := false
          else begin
            st.fp <- st.f_fp.(d - 1);
            st.cur_paid <- st.f_paid.(d - 1);
            st.cur_words <- st.f_words.(d - 1);
            (match st.f_ret_mode.(d) with
            | 1 -> Array.unsafe_set st.regs st.f_ret_idx.(d) value
            | 2 ->
                st.cost <- st.cost + 1;
                Array.unsafe_set st.stk (st.fp + st.f_ret_idx.(d)) value
            | _ -> ());
            let rp = st.f_ret_pc.(d) in
            bump pc0 rp;
            if rp <> pc0 + 1 then st.cost <- st.cost + 3;
            st.last_bits <- 0;
            st.hp <- 2;
            pc := rp
          end
      | Ifail msg -> raise (Runtime_error msg)
      | Icmp_cbr _ | Iload_bin _ ->
          (* superinstructions live only in [p_plain] *)
          assert false);
      match sampler with
      | Some s when not !skip ->
          while st.cost >= s.next_at do
            s.samples <- !pc :: s.samples;
            s.next_at <-
              s.next_at + s.period + Util.Rng.int s.rng (max 1 (s.period / 8))
          done
      | _ -> ()
    done

  let run (p : program) (bin : Emit.binary) ~entry ~args ~input
      (opts : run_opts) : result =
    let st =
      {
        stk = Array.make 1024 0;
        fp = 0;
        sp = 0;
        depth = 0;
        f_ret_pc = Array.make 64 0;
        f_ret_mode = Array.make 64 0;
        f_ret_idx = Array.make 64 0;
        f_fp = Array.make 64 0;
        f_words = Array.make 64 0;
        f_paid = Array.make 64 false;
        rsave = Array.make (64 * nregs) 0;
        regs = Array.make nregs 0;
        g_mem = Array.map (fun (size, init) -> Array.make size init) p.p_globals;
        input = Array.of_list input;
        input_pos = 0;
        out_rev = [];
        cost = 0;
        icount = 0;
        last_bits = 0;
        hp = 2;
        cur_paid = true;
        cur_words = 0;
        bp_hits_rev = [];
        pscratch = Array.make p.p_max_params 0;
        vscratch = Array.make p.p_max_lanes 0;
      }
    in
    let fx =
      match Hashtbl.find_opt bin.Emit.fn_by_name entry with
      | Some i -> i
      | None -> raise (Runtime_error ("no entry function " ^ entry))
    in
    let df = p.p_funcs.(fx) in
    push_frame st df ~ret_pc:(-1) ~ret_mode:0 ~ret_idx:0;
    st.cost <- st.cost + 9 + (if df.df_prepaid then df.df_frame_words else 0);
    Array.iteri
      (fun i d ->
        let v = match List.nth_opt args i with Some v -> v | None -> 0 in
        wrd st d v)
      df.df_params;
    let sampler =
      Option.map
        (fun period ->
          {
            period;
            next_at = period;
            samples = [];
            rng = Util.Rng.create (opts.seed + 77);
          })
        opts.sample_period
    in
    let edges = Hashtbl.create 256 in
    let timed_out = ref false in
    let plain =
      (match opts.breakpoints with None -> true | Some _ -> false)
      && (not opts.coverage)
      && opts.sample_period = None
    in
    (try
       if plain then exec_plain p st opts.max_instrs df.df_entry
       else exec_instr p st opts sampler edges df.df_entry
     with Budget_exhausted -> timed_out := true);
    {
      output = List.rev st.out_rev;
      cost = st.cost;
      instrs = st.icount;
      edges;
      bp_hits = List.rev st.bp_hits_rev;
      samples = (match sampler with Some s -> List.rev s.samples | None -> []);
      timed_out = !timed_out;
    }
end

(* The escape hatch is read once at module initialization: a process
   either trusts the fast core or pins everything to the reference one
   (the ci.sh conformance smoke diffs the two). *)
let use_reference =
  match Sys.getenv_opt "DEBUGTUNER_VM" with
  | Some "reference" -> true
  | _ -> false

(** Which core [run] dispatches to — mixed into oracle verdict keys so
    cached verdicts never cross cores. *)
let active_core () = if use_reference then "reference" else "fast"

let run_unobserved bin ~entry ?(args = []) ~input opts =
  if use_reference then Reference.run bin ~entry ~args ~input opts
  else
    match Decode.get bin with
    | Some p -> Fast.run p bin ~entry ~args ~input opts
    | None -> Reference.run bin ~entry ~args ~input opts

(* The [Obs.enabled] guard keeps the disabled path free of the span
   machinery (and of the args-list allocation) — executions dominate
   every experiment's inner loop. *)
let run bin ~entry ?(args = []) ~input opts : result =
  if not (Obs.enabled ()) then run_unobserved bin ~entry ~args ~input opts
  else
    Obs.Span.wrap "vm:run"
      ~args:[ ("entry", entry) ]
      (fun () ->
        let r = run_unobserved bin ~entry ~args ~input opts in
        Obs.count "vm/runs";
        Obs.count ~n:r.instrs "vm/instrs";
        Obs.count ~n:r.cost "vm/cost";
        r)
