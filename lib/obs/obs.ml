(** Zero-cost-when-disabled tracing for the whole stack.

    A recording session is installed process-wide with {!start};
    while one is active, {!Span.wrap}/{!Span.start}/{!count} append
    events and counters to it, and {!pipeline_instrument} turns the
    toolchain's {!Instrument.t} stream into per-pass spans and profiles
    (wall time plus IR/debug-info deltas). With no session installed,
    every entry point is a single [match] on [!current] returning
    immediately — no clock read, no allocation — so shipping code can
    stay instrumented unconditionally.

    Exporters: {!to_chrome_json} writes the Chrome [trace_event] format
    (load the file in [chrome://tracing] or Perfetto; spans from
    different engine workers land on their own [tid] lanes), and
    {!self_time_report} prints a sorted self-time table.
    {!validate_chrome} is the small validator the test suite and the CLI
    run over emitted traces.

    Timestamps come from bechamel's monotonic clock ([CLOCK_MONOTONIC],
    nanoseconds, no allocation). *)

module Clock = struct
  let now_ns () : int64 = Monotonic_clock.now ()
end

(* ------------------------------------------------------------------ *)
(* Events and sessions                                                 *)

type kind =
  | Begin  (** Chrome [ph:"B"] — opens a named interval *)
  | End  (** Chrome [ph:"E"] — closes the innermost [Begin] *)
  | Complete of int64  (** Chrome [ph:"X"] with a duration in ns *)

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_ts : int64;  (** ns since the session started *)
  ev_tid : int;  (** recording domain — engine workers get own lanes *)
  ev_args : (string * string) list;
}

(* Per-pass aggregate, accumulated across every compile of the session. *)
type pcell = {
  mutable pc_calls : int;
  mutable pc_ns : int64;
  mutable pc_d : Instrument.counts;
}

type pass_profile = {
  pr_pass : string;
  pr_calls : int;
  pr_ns : int64;  (** total wall time across calls *)
  pr_delta : Instrument.counts;  (** summed per-invocation deltas *)
}

type session = {
  mu : Mutex.t;
  mutable evs : event list;  (** newest first *)
  ctrs : (string, int ref) Hashtbl.t;
  profs : (string, pcell) Hashtbl.t;
  mutable prof_order : string list;  (** first-seen pass names, newest first *)
  s_t0 : int64;
}

let current : session option ref = ref None
let enabled () = match !current with Some _ -> true | None -> false

(** Install a fresh recording session (idempotent: an active session
    stays). *)
let start () =
  match !current with
  | Some _ -> ()
  | None ->
      current :=
        Some
          {
            mu = Mutex.create ();
            evs = [];
            ctrs = Hashtbl.create 32;
            profs = Hashtbl.create 32;
            prof_order = [];
            s_t0 = Clock.now_ns ();
          }

(** Uninstall and return the active session, if any. *)
let stop () =
  match !current with
  | None -> None
  | Some s ->
      current := None;
      Some s

let tid () = (Domain.self () :> int)

let emit s ev =
  Mutex.lock s.mu;
  s.evs <- ev :: s.evs;
  Mutex.unlock s.mu

let rel s t = Int64.sub t s.s_t0

(* ------------------------------------------------------------------ *)
(* The recording API                                                   *)

module Span = struct
  (** [wrap name f] runs [f] inside a complete ([X]) span. Disabled:
      exactly [f ()]. The span is recorded even when [f] raises. *)
  let wrap ?(args = []) name f =
    match !current with
    | None -> f ()
    | Some s ->
        let t0 = Clock.now_ns () in
        Fun.protect
          ~finally:(fun () ->
            let t1 = Clock.now_ns () in
            emit s
              {
                ev_name = name;
                ev_kind = Complete (Int64.sub t1 t0);
                ev_ts = rel s t0;
                ev_tid = tid ();
                ev_args = args;
              })
          f

  (** Explicitly bracketed span ([B]/[E] pair). [finish] closes the
      innermost open [start] of the same domain; keep them balanced. *)
  let start ?(args = []) name =
    match !current with
    | None -> ()
    | Some s ->
        emit s
          {
            ev_name = name;
            ev_kind = Begin;
            ev_ts = rel s (Clock.now_ns ());
            ev_tid = tid ();
            ev_args = args;
          }

  let finish name =
    match !current with
    | None -> ()
    | Some s ->
        emit s
          {
            ev_name = name;
            ev_kind = End;
            ev_ts = rel s (Clock.now_ns ());
            ev_tid = tid ();
            ev_args = [];
          }
end

(* Observability-of-observability seam: Measure_engine mirrors every
   recorded [count] into its per-request counter sink so a request's
   stats rows report only that request's activity. Fires only while a
   session is active — matching [stats_table], whose obs/* rows read
   the active session — which keeps the disabled path allocation-free. *)
let count_observer : (string -> int -> unit) option ref = ref None
let set_count_observer f = count_observer := f

(** [count name ~n] bumps a named counter (created on first use). *)
let count ?(n = 1) name =
  match !current with
  | None -> ()
  | Some s ->
      Mutex.lock s.mu;
      (match Hashtbl.find_opt s.ctrs name with
      | Some r -> r := !r + n
      | None -> Hashtbl.replace s.ctrs name (ref n));
      Mutex.unlock s.mu;
      (match !count_observer with None -> () | Some f -> f name n)

(* ------------------------------------------------------------------ *)
(* Session accessors                                                   *)

(** Events in emission order (roughly timestamp order; [Complete] spans
    are appended when they close). *)
let events (s : session) = List.rev s.evs

let counters (s : session) =
  Mutex.lock s.mu;
  let out = Hashtbl.fold (fun name r acc -> (name, !r) :: acc) s.ctrs [] in
  Mutex.unlock s.mu;
  List.sort compare out

(** Counters of the active session ([[]] when disabled) — feeds the
    unified stats table. *)
let current_counters () =
  match !current with None -> [] | Some s -> counters s

(** Per-pass profiles in first-execution order. *)
let profiles (s : session) : pass_profile list =
  Mutex.lock s.mu;
  let out =
    List.rev_map
      (fun name ->
        let c = Hashtbl.find s.profs name in
        {
          pr_pass = name;
          pr_calls = c.pc_calls;
          pr_ns = c.pc_ns;
          pr_delta = c.pc_d;
        })
      s.prof_order
  in
  Mutex.unlock s.mu;
  out

(* ------------------------------------------------------------------ *)
(* The toolchain instrument                                            *)

(** [pipeline_instrument ()] is the tracer's view of one compilation:
    [Some] only while a session is active (so the disabled path costs
    one [match] in [Toolchain.compile]). Phases become [B]/[E] events
    named ["phase:<name>"]; each pass becomes a [Complete] span whose
    interval runs from the previous boundary event to the pass's own
    boundary, which makes span time self time by construction (the
    pipeline is sequential within a compile). Pass spans also accumulate
    into the session's per-pass profiles, with IR/debug-info deltas
    differenced against the previous boundary of the same kind (machine
    baselines reset at each function's ["isel"]).

    When the sanitizer is attached to the same compile it runs before
    the tracer, so a pass span includes that pass's boundary validation
    — the cost of checking is attributed to the pass that incurred it. *)
let pipeline_instrument () =
  match !current with
  | None -> None
  | Some s ->
      let my_tid = tid () in
      let last = ref (Clock.now_ns ()) in
      let last_ir = ref None in
      let last_mach = ref None in
      let bump_profile name dur d =
        Mutex.lock s.mu;
        let c =
          match Hashtbl.find_opt s.profs name with
          | Some c -> c
          | None ->
              let c =
                { pc_calls = 0; pc_ns = 0L; pc_d = Instrument.zero_counts }
              in
              Hashtbl.replace s.profs name c;
              s.prof_order <- name :: s.prof_order;
              c
        in
        c.pc_calls <- c.pc_calls + 1;
        c.pc_ns <- Int64.add c.pc_ns dur;
        c.pc_d <-
          {
            Instrument.c_instrs = c.pc_d.Instrument.c_instrs + d.Instrument.c_instrs;
            c_blocks = c.pc_d.Instrument.c_blocks + d.Instrument.c_blocks;
            c_lines = c.pc_d.Instrument.c_lines + d.Instrument.c_lines;
            c_vars = c.pc_d.Instrument.c_vars + d.Instrument.c_vars;
          };
        Mutex.unlock s.mu
      in
      let mark () = last := Clock.now_ns () in
      Some
        {
          Instrument.on_phase_start =
            (fun name ->
              emit s
                {
                  ev_name = "phase:" ^ name;
                  ev_kind = Begin;
                  ev_ts = rel s (Clock.now_ns ());
                  ev_tid = my_tid;
                  ev_args = [];
                };
              mark ());
          on_phase_end =
            (fun name ->
              emit s
                {
                  ev_name = "phase:" ^ name;
                  ev_kind = End;
                  ev_ts = rel s (Clock.now_ns ());
                  ev_tid = my_tid;
                  ev_args = [];
                });
          on_pass =
            (fun name scope ->
              let now = Clock.now_ns () in
              let dur =
                let d = Int64.sub now !last in
                if Int64.compare d 0L < 0 then 0L else d
              in
              let cur = Instrument.counts_of_scope scope in
              let delta =
                match scope with
                | Instrument.Ir_program _ ->
                    let d =
                      match !last_ir with
                      | Some p -> Instrument.sub_counts cur p
                      | None -> Instrument.zero_counts
                    in
                    last_ir := Some cur;
                    d
                | Instrument.Mach_fn _ ->
                    (* A fresh function starts a fresh baseline: "isel"
                       is its first boundary. *)
                    let prev = if name = "isel" then None else !last_mach in
                    let d =
                      match prev with
                      | Some p -> Instrument.sub_counts cur p
                      | None -> Instrument.zero_counts
                    in
                    last_mach := Some cur;
                    d
                | Instrument.Binary _ -> Instrument.zero_counts
              in
              emit s
                {
                  ev_name = name;
                  ev_kind = Complete dur;
                  ev_ts = rel s !last;
                  ev_tid = my_tid;
                  ev_args =
                    [
                      ("instrs", string_of_int cur.Instrument.c_instrs);
                      ("d_instrs", string_of_int delta.Instrument.c_instrs);
                      ("d_lines", string_of_int delta.Instrument.c_lines);
                      ("d_vars", string_of_int delta.Instrument.c_vars);
                    ];
                };
              bump_profile name dur delta;
              (* Re-mark after the (unattributed) counting work above. *)
              mark ());
        }

(* ------------------------------------------------------------------ *)
(* Chrome trace_event export                                           *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = Int64.to_float ns /. 1000.0

(** The Chrome [trace_event] JSON object ([{"traceEvents": [...]}]),
    loadable in [chrome://tracing] / Perfetto. Timestamps are
    microseconds relative to session start; every recording domain is a
    separate [tid] lane. *)
let to_chrome_json (s : session) =
  let evs =
    (* Stable-sort by timestamp: B/E pairs stay correctly ordered per
       tid (they were emitted in real-time order), and viewers that
       process sequentially see a monotonic stream. *)
    List.stable_sort
      (fun a b -> Int64.compare a.ev_ts b.ev_ts)
      (events s)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"ts\":0,\
     \"args\":{\"name\":\"debugtuner\"}}";
  List.iter
    (fun ev ->
      Buffer.add_string b ",\n";
      let ph, dur =
        match ev.ev_kind with
        | Begin -> ("B", None)
        | End -> ("E", None)
        | Complete d -> ("X", Some d)
      in
      Buffer.add_string b
        (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%.3f"
           (json_escape ev.ev_name) ph ev.ev_tid (us_of_ns ev.ev_ts));
      (match dur with
      | Some d -> Buffer.add_string b (Printf.sprintf ",\"dur\":%.3f" (us_of_ns d))
      | None -> ());
      if ev.ev_args <> [] then begin
        Buffer.add_string b ",\"args\":{";
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          ev.ev_args;
        Buffer.add_char b '}'
      end;
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Self-time report                                                    *)

(* Spans as closed intervals: Complete events directly, B/E pairs
   matched with a per-tid stack over the timestamp-sorted stream. *)
let intervals (s : session) =
  let evs =
    List.stable_sort (fun a b -> Int64.compare a.ev_ts b.ev_ts) (events s)
  in
  let out = ref [] in
  let stacks : (int, (string * int64) list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some st -> st
    | None ->
        let st = ref [] in
        Hashtbl.replace stacks tid st;
        st
  in
  List.iter
    (fun ev ->
      match ev.ev_kind with
      | Complete d -> out := (ev.ev_name, ev.ev_tid, ev.ev_ts, d) :: !out
      | Begin ->
          let st = stack ev.ev_tid in
          st := (ev.ev_name, ev.ev_ts) :: !st
      | End -> (
          let st = stack ev.ev_tid in
          match !st with
          | (name, t0) :: rest ->
              st := rest;
              out := (name, ev.ev_tid, t0, Int64.sub ev.ev_ts t0) :: !out
          | [] -> () (* unbalanced End: drop *)))
    evs;
  !out

type self_row = {
  sr_name : string;
  sr_calls : int;
  sr_total_ns : int64;
  sr_self_ns : int64;  (** total minus time spent in nested spans *)
}

(** Per-name self times: each span's duration minus the durations of
    spans nested directly inside it (same tid, contained interval),
    aggregated by name and sorted by self time, descending. *)
let self_times (s : session) : self_row list =
  let ivs = intervals s in
  (* Group by tid, sort by (start asc, end desc) so parents precede
     their children; a containment stack then attributes each span's
     duration to its direct parent's child-total. *)
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (name, tid, t0, dur) ->
      let l = try Hashtbl.find by_tid tid with Not_found -> [] in
      Hashtbl.replace by_tid tid ((name, t0, dur) :: l))
    ivs;
  let rows : (string, int * int64 * int64) Hashtbl.t = Hashtbl.create 32 in
  let add name dur self =
    let calls, total, selft =
      try Hashtbl.find rows name with Not_found -> (0, 0L, 0L)
    in
    Hashtbl.replace rows name
      (calls + 1, Int64.add total dur, Int64.add selft self)
  in
  Hashtbl.iter
    (fun _tid l ->
      let sorted =
        List.sort
          (fun (_, a0, ad) (_, b0, bd) ->
            match Int64.compare a0 b0 with
            | 0 -> Int64.compare bd ad (* longer first: parent before child *)
            | c -> c)
          l
      in
      (* Stack of open ancestors: (name, end_ts, child_ns ref). *)
      let stk = ref [] in
      let close_until ts =
        let rec go () =
          match !stk with
          | (name, e, dur, children) :: rest when Int64.compare e ts <= 0 ->
              stk := rest;
              add name dur (Int64.sub dur !children);
              (match rest with
              | (_, _, _, pc) :: _ -> pc := Int64.add !pc dur
              | [] -> ());
              go ()
          | _ -> ()
        in
        go ()
      in
      List.iter
        (fun (name, t0, dur) ->
          close_until t0;
          stk := (name, Int64.add t0 dur, dur, ref 0L) :: !stk)
        sorted;
      close_until Int64.max_int)
    by_tid;
  let out =
    Hashtbl.fold
      (fun name (calls, total, self) acc ->
        { sr_name = name; sr_calls = calls; sr_total_ns = total; sr_self_ns = self }
        :: acc)
      rows []
  in
  List.sort
    (fun a b ->
      match Int64.compare b.sr_self_ns a.sr_self_ns with
      | 0 -> compare a.sr_name b.sr_name
      | c -> c)
    out

let ms ns = Int64.to_float ns /. 1e6

(** Sorted self-time text report over every recorded span. *)
let self_time_report (s : session) =
  let rows = self_times s in
  let total = List.fold_left (fun a r -> Int64.add a r.sr_self_ns) 0L rows in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "== Self-time report (%d span name(s), %.3f ms total) ==\n"
       (List.length rows) (ms total));
  Buffer.add_string b
    (Printf.sprintf "%-32s %8s %12s %12s %6s\n" "span" "calls" "total(ms)"
       "self(ms)" "self%");
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%-32s %8d %12.3f %12.3f %5.1f%%\n" r.sr_name r.sr_calls
           (ms r.sr_total_ns) (ms r.sr_self_ns)
           (if Int64.compare total 0L > 0 then
              100.0 *. Int64.to_float r.sr_self_ns /. Int64.to_float total
            else 0.0)))
    rows;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Chrome trace validation (a small generic JSON reader + checks)      *)

type json =
  | Jnull
  | Jbool of bool
  | Jnum of float
  | Jstr of string
  | Jarr of json list
  | Jobj of (string * json) list

exception Bad_json of string

let parse_json (text : string) : json =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub text !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = text.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = text.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char b e;
              go ()
          | 'n' ->
              Buffer.add_char b '\n';
              go ()
          | 't' ->
              Buffer.add_char b '\t';
              go ()
          | 'r' ->
              Buffer.add_char b '\r';
              go ()
          | 'b' ->
              Buffer.add_char b '\b';
              go ()
          | 'f' ->
              Buffer.add_char b '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub text !pos 4 in
              pos := !pos + 4;
              let code =
                try int_of_string ("0x" ^ hex)
                with _ -> fail "bad \\u escape"
              in
              Buffer.add_char b (if code < 128 then Char.chr code else '?');
              go ()
          | _ -> fail "unknown escape")
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected a number";
    match float_of_string_opt (String.sub text start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Jobj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Jobj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Jarr []
        end
        else begin
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Jarr (elems [])
        end
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some _ -> Jnum (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

type validation = {
  v_events : int;  (** events checked (metadata excluded) *)
  v_spans : (string * int) list;
      (** per-name span counts ([B] and [X] events), sorted *)
}

(** [validate_chrome text] checks that [text] is a well-formed Chrome
    [trace_event] JSON document: a [{"traceEvents": [...]}] object (or a
    bare event array), every event an object with a string ["name"], a
    ["ph"] of B/E/X/M, a numeric [ts >= 0] and, for X, a numeric
    [dur >= 0]; and per [(pid, tid)] the B/E events (in timestamp order)
    form balanced, name-matched nesting. *)
let validate_chrome (text : string) : (validation, string) result =
  match parse_json text with
  | exception Bad_json msg -> Error ("malformed JSON: " ^ msg)
  | json -> (
      let events =
        match json with
        | Jobj fields -> (
            match List.assoc_opt "traceEvents" fields with
            | Some (Jarr evs) -> Ok evs
            | Some _ -> Error "\"traceEvents\" is not an array"
            | None -> Error "missing \"traceEvents\"")
        | Jarr evs -> Ok evs
        | _ -> Error "top level is neither an object nor an array"
      in
      match events with
      | Error e -> Error e
      | Ok evs -> (
          let err = ref None in
          let fail_ev i msg =
            if !err = None then err := Some (Printf.sprintf "event %d: %s" i msg)
          in
          let checked = ref [] in
          List.iteri
            (fun i ev ->
              match ev with
              | Jobj fields -> (
                  let str k =
                    match List.assoc_opt k fields with
                    | Some (Jstr s) -> Some s
                    | _ -> None
                  in
                  let num k =
                    match List.assoc_opt k fields with
                    | Some (Jnum f) -> Some f
                    | _ -> None
                  in
                  match (str "name", str "ph") with
                  | None, _ -> fail_ev i "missing string \"name\""
                  | _, None -> fail_ev i "missing string \"ph\""
                  | Some name, Some ph -> (
                      match ph with
                      | "M" -> ()
                      | "B" | "E" | "X" -> (
                          let pid =
                            Option.value ~default:0.0 (num "pid")
                          and tid = Option.value ~default:0.0 (num "tid") in
                          match num "ts" with
                          | None -> fail_ev i "missing numeric \"ts\""
                          | Some ts when ts < 0.0 -> fail_ev i "negative \"ts\""
                          | Some ts -> (
                              match ph with
                              | "X" -> (
                                  match num "dur" with
                                  | None ->
                                      fail_ev i "X event missing numeric \"dur\""
                                  | Some d when d < 0.0 ->
                                      fail_ev i "negative \"dur\""
                                  | Some _ ->
                                      checked :=
                                        (pid, tid, ts, ph, name, i) :: !checked)
                              | _ ->
                                  checked :=
                                    (pid, tid, ts, ph, name, i) :: !checked))
                      | _ -> fail_ev i ("bad \"ph\": " ^ ph)))
              | _ -> fail_ev i "not an object")
            evs;
          match !err with
          | Some e -> Error e
          | None ->
              (* B/E balance per (pid, tid), in timestamp order. *)
              let lanes = Hashtbl.create 8 in
              List.iter
                (fun ((pid, tid, _, _, _, _) as e) ->
                  let key = (pid, tid) in
                  let l =
                    try Hashtbl.find lanes key with Not_found -> []
                  in
                  Hashtbl.replace lanes key (e :: l))
                !checked;
              let spans = Hashtbl.create 16 in
              let bump name =
                Hashtbl.replace spans name
                  (1 + try Hashtbl.find spans name with Not_found -> 0)
              in
              Hashtbl.iter
                (fun _ lane ->
                  let sorted =
                    List.stable_sort
                      (fun (_, _, a, _, _, ai) (_, _, b, _, _, bi) ->
                        match compare a b with 0 -> compare ai bi | c -> c)
                      (List.rev lane)
                  in
                  let stk = ref [] in
                  List.iter
                    (fun (_, _, _, ph, name, i) ->
                      match ph with
                      | "X" -> bump name
                      | "B" ->
                          bump name;
                          stk := name :: !stk
                      | "E" -> (
                          match !stk with
                          | top :: rest when top = name -> stk := rest
                          | top :: _ ->
                              fail_ev i
                                (Printf.sprintf
                                   "E \"%s\" does not match open B \"%s\"" name
                                   top)
                          | [] -> fail_ev i ("E \"" ^ name ^ "\" with no open B"))
                      | _ -> ())
                    sorted;
                  match !stk with
                  | [] -> ()
                  | top :: _ ->
                      if !err = None then
                        err := Some ("unclosed B event \"" ^ top ^ "\""))
                lanes;
              (match !err with
              | Some e -> Error e
              | None ->
                  Ok
                    {
                      v_events = List.length !checked;
                      v_spans =
                        List.sort compare
                          (Hashtbl.fold
                             (fun name c acc -> (name, c) :: acc)
                             spans []);
                    })))
