(** The toolchain's instrumentation seam.

    [Toolchain.compile] reports its progress through exactly one
    interface — this one. Every observer (the pass-boundary sanitizer,
    the {!Obs} tracer, ad-hoc clients) implements the same three
    callbacks, and the driver composes them with {!combine}; there is no
    second hook path anywhere in the pipeline.

    - [on_phase_start name] / [on_phase_end name] bracket the coarse
      driver phases (["ir"], ["backend"], ["emit"]); always balanced,
      including on exceptions (see {!phase});
    - [on_pass name scope] fires {e after} each executed pass with the
      program object the pass just transformed — the whole IR program at
      an IR boundary, one machine function at a machine boundary, the
      finished binary after emission.

    Callbacks must be purely observational: the driver guarantees
    byte-identical artifacts whether or not any instrument is attached,
    which holds only as long as no callback mutates its scope. *)

type scope =
  | Ir_program of Ir.program  (** IR pass boundary (whole program) *)
  | Mach_fn of Mach.mfn  (** machine pass boundary (one function) *)
  | Binary of Emit.binary  (** after emission *)

type t = {
  on_phase_start : string -> unit;
  on_phase_end : string -> unit;
  on_pass : string -> scope -> unit;
}

let nop =
  {
    on_phase_start = (fun _ -> ());
    on_phase_end = (fun _ -> ());
    on_pass = (fun _ _ -> ());
  }

(** Fan one stream of events out to several observers, in list order. *)
let combine = function
  | [] -> nop
  | [ t ] -> t
  | ts ->
      {
        on_phase_start = (fun n -> List.iter (fun i -> i.on_phase_start n) ts);
        on_phase_end = (fun n -> List.iter (fun i -> i.on_phase_end n) ts);
        on_pass = (fun n s -> List.iter (fun i -> i.on_pass n s) ts);
      }

(** [phase t name f] runs [f] bracketed by [on_phase_start]/[_end];
    the end event fires even when [f] raises, so phase events always
    balance. *)
let phase t name f =
  t.on_phase_start name;
  Fun.protect ~finally:(fun () -> t.on_phase_end name) f

(* ------------------------------------------------------------------ *)
(* Debug-info-aware size counts of a scope, for per-pass profiles      *)

(** What a profiler wants to difference across a pass: code size, CFG
    size, and the two debug-info coverage axes the paper measures (how
    many distinct source lines survive on instructions, how many
    variables are still tracked). *)
type counts = {
  c_instrs : int;  (** real (non-debug) instructions *)
  c_blocks : int;
  c_lines : int;  (** distinct source lines still attributed *)
  c_vars : int;  (** distinct tracked variables *)
}

let zero_counts = { c_instrs = 0; c_blocks = 0; c_lines = 0; c_vars = 0 }

let sub_counts a b =
  {
    c_instrs = a.c_instrs - b.c_instrs;
    c_blocks = a.c_blocks - b.c_blocks;
    c_lines = a.c_lines - b.c_lines;
    c_vars = a.c_vars - b.c_vars;
  }

(* The IR counting must agree exactly with [Toolchain.ir_stats_of]
   (instrs exclude Dbg; the line set takes terminator lines plus
   non-debug instruction lines) so per-pass deltas telescope to the
   whole-compile deltas reported by [pipeline_trace]. *)
let counts_of_ir (prog : Ir.program) =
  let instrs = ref 0 and blocks = ref 0 in
  let lines = Hashtbl.create 64 and vars = Hashtbl.create 16 in
  let add_var v = Hashtbl.replace vars (Ir.var_to_string v) () in
  Hashtbl.iter
    (fun _ (fn : Ir.fn) ->
      List.iter (fun (_, v) -> add_var v) fn.Ir.f_params;
      List.iter
        (fun (s : Ir.slot) -> Option.iter add_var s.Ir.s_var)
        fn.Ir.f_slots;
      Ir.iter_blocks fn (fun b ->
          incr blocks;
          (match b.Ir.term_line with
          | Some l -> Hashtbl.replace lines l ()
          | None -> ());
          List.iter
            (fun (i : Ir.instr) ->
              match i.Ir.ik with
              | Ir.Dbg (v, _) -> add_var v
              | _ -> (
                  incr instrs;
                  match i.Ir.line with
                  | Some l -> Hashtbl.replace lines l ()
                  | None -> ()))
            b.Ir.instrs))
    prog.Ir.funcs;
  {
    c_instrs = !instrs;
    c_blocks = !blocks;
    c_lines = Hashtbl.length lines;
    c_vars = Hashtbl.length vars;
  }

let counts_of_mach (m : Mach.mfn) =
  let instrs = ref 0 in
  let lines = Hashtbl.create 32 and vars = Hashtbl.create 16 in
  let add_line = function
    | Some l -> Hashtbl.replace lines l ()
    | None -> ()
  in
  let add_var v = Hashtbl.replace vars (Ir.var_to_string v) () in
  List.iter
    (fun (s : Mach.frame_slot) -> Option.iter add_var s.Mach.fs_var)
    m.Mach.mf_frame;
  Hashtbl.iter
    (fun _ (b : Mach.mblock) ->
      add_line b.Mach.mterm_line;
      List.iter
        (fun (i : Mach.minstr) ->
          match i.Mach.mk with
          | Mach.Mdbg (v, _) -> add_var v
          | _ ->
              incr instrs;
              add_line i.Mach.mline)
        b.Mach.mins)
    m.Mach.mf_blocks;
  {
    c_instrs = !instrs;
    c_blocks = List.length m.Mach.mf_layout;
    c_lines = Hashtbl.length lines;
    c_vars = Hashtbl.length vars;
  }

let counts_of_binary (bin : Emit.binary) =
  let lines = Hashtbl.create 64 in
  Array.iter
    (function Some l -> Hashtbl.replace lines l () | None -> ())
    bin.Emit.line_of;
  let vars = Hashtbl.create 16 in
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      Hashtbl.replace vars (Ir.var_to_string vi.Dwarfish.vi_var) ())
    bin.Emit.debug.Dwarfish.vars;
  {
    c_instrs = Array.length bin.Emit.code;
    c_blocks = Array.length bin.Emit.funcs;
    c_lines = Hashtbl.length lines;
    c_vars = Hashtbl.length vars;
  }

let counts_of_scope = function
  | Ir_program p -> counts_of_ir p
  | Mach_fn m -> counts_of_mach m
  | Binary b -> counts_of_binary b
