(** Zero-cost-when-disabled tracing: spans, counters, per-pass
    profiles, Chrome [trace_event] export and a self-time report.

    Install a session with {!start}; every recording entry point is a
    single match on the session ref when disabled — no clock read, no
    allocation — so call sites stay instrumented unconditionally. *)

module Clock : sig
  val now_ns : unit -> int64
  (** Monotonic clock, nanoseconds (bechamel's [CLOCK_MONOTONIC] stub;
      no allocation). *)
end

(** {1 Sessions} *)

type kind =
  | Begin  (** Chrome [ph:"B"] — opens a named interval *)
  | End  (** Chrome [ph:"E"] — closes the innermost [Begin] *)
  | Complete of int64  (** Chrome [ph:"X"] with a duration in ns *)

type event = {
  ev_name : string;
  ev_kind : kind;
  ev_ts : int64;  (** ns since the session started *)
  ev_tid : int;  (** recording domain — engine workers get own lanes *)
  ev_args : (string * string) list;  (** per-span key/value attributes *)
}

type session

val start : unit -> unit
(** Install a fresh process-wide recording session (idempotent). *)

val stop : unit -> session option
(** Uninstall and return the active session, if any. *)

val enabled : unit -> bool

(** {1 Recording} *)

module Span : sig
  val wrap : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
  (** [wrap name f] runs [f] inside a complete span ([X] event),
      recorded even when [f] raises. Disabled: exactly [f ()]. *)

  val start : ?args:(string * string) list -> string -> unit
  (** Open a bracketed span ([B] event). Balance with {!finish}. *)

  val finish : string -> unit
  (** Close the innermost open {!start} of this domain ([E] event). *)
end

val count : ?n:int -> string -> unit
(** Bump a named session counter (created on first use; default 1). *)

val set_count_observer : (string -> int -> unit) option -> unit
(** Install a process-wide mirror called on every recorded {!count}
    (i.e. only while a session is active, keeping the disabled path
    allocation-free) with the counter name and amount — the per-request
    attribution seam (Measure_engine points this at its request
    sink). *)

val pipeline_instrument : unit -> Instrument.t option
(** The tracer's view of one compilation — [Some] only while a session
    is active. Phases become [B]/[E] events named ["phase:<name>"]; each
    pass becomes a complete span (self time by construction: the span
    runs from the previous boundary to this one) and accumulates into
    the session's per-pass profiles with IR/debug-info deltas. Create
    one per compile: the closure carries that compile's boundary
    state. *)

(** {1 Session contents} *)

val events : session -> event list
(** Events in emission order. *)

val counters : session -> (string * int) list
(** Session counters, sorted by name. *)

val current_counters : unit -> (string * int) list
(** Counters of the active session; [[]] when disabled. *)

type pass_profile = {
  pr_pass : string;
  pr_calls : int;  (** pass invocations across all compiles recorded *)
  pr_ns : int64;  (** total wall time across invocations *)
  pr_delta : Instrument.counts;
      (** summed per-invocation deltas: instruction/block counts and
          debug-info line/variable coverage *)
}

val profiles : session -> pass_profile list
(** Per-pass profiles in first-execution order. *)

(** {1 Exporters} *)

val to_chrome_json : session -> string
(** The Chrome [trace_event] JSON document ([{"traceEvents": [...]}]),
    loadable in [chrome://tracing] / Perfetto; timestamps in
    microseconds relative to session start. *)

type self_row = {
  sr_name : string;
  sr_calls : int;
  sr_total_ns : int64;
  sr_self_ns : int64;  (** total minus time spent in nested spans *)
}

val self_times : session -> self_row list
(** Per-name self times, sorted descending. *)

val self_time_report : session -> string
(** {!self_times} rendered as a text table. *)

(** {1 Validation} *)

type validation = {
  v_events : int;  (** events checked (metadata excluded) *)
  v_spans : (string * int) list;
      (** per-name span counts ([B] and [X] events), sorted *)
}

val validate_chrome : string -> (validation, string) result
(** Check a Chrome [trace_event] document: well-formed JSON, every event
    carries a string name, a [ph] of B/E/X/M, a non-negative numeric
    [ts] (and [dur] for X), and per-[(pid, tid)] lane the B/E events
    nest and balance. *)
