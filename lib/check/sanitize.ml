(** The pipeline sanitizer: self-checking at every pass boundary.

    When enabled (the [~sanitize] flag of [Toolchain.compile], or the
    global {!enabled} gate), the toolchain revalidates the program after
    *every* IR pass, every machine pass and final emission, so a
    miscompiling or debug-info-corrupting pass is caught at the exact
    boundary where it fired — the in-process analog of
    [-fchecking] / LLVM's [-verify-each], extended with the debug-info
    invariants this repository's measurements rest on.

    Checked at each IR boundary:
    - the structural SSA/CFG invariants of {!Verify} (layout/table
      agreement, phi-per-predecessor, single assignment, no undefined
      uses);
    - {b dominance consistency}: every (non-debug) register use is
      dominated by its definition — phis read on the incoming edge,
      terminators at block exit;
    - {b liveness consistency}: nothing but parameters is live into the
      entry block (no path can read an undefined register);
    - {b line validity}: every retained line attribution is a positive
      source line;
    - {b debug-info monotonicity}: the set of source lines attributed to
      instructions and the set of tracked variables (parameters, slot
      homes, [Dbg] bindings) never *grow* across a pass — optimizers may
      lose debug information (that loss is what the experiments
      measure), but a pass inventing a line or a variable is corrupting
      the records the metrics trust.

    Machine boundaries check the same monotonicity plus machine
    structure (terminator targets, layout/entry agreement, register and
    spill-slot bounds, frame-slot references). The final binary is
    checked with {!Debug_verify} ("every line-table entry references a
    live instruction" and friends) plus a range-nesting invariant:
    location ranges of one variable must be disjoint or properly
    nested — a partially-overlapping pair means the location list was
    corrupted rather than merely narrowed.

    Every boundary validated and every failure is counted per pass name;
    {!counters} feeds [Measure_engine.sanitizer_stats] and
    [bench --stats]. *)

type invariant =
  | Structural  (** {!Verify} (IR) or machine CFG/layout breakage *)
  | Dominance  (** a use not dominated by its definition *)
  | Liveness_entry  (** a non-parameter register live into entry *)
  | Line_invalid  (** a non-positive source line attribution *)
  | Line_grow  (** a pass invented a source line *)
  | Var_grow  (** a pass invented a tracked variable *)
  | Loc_bounds  (** machine location outside registers/frame/spill area *)
  | Binary_debug  (** {!Debug_verify} diagnostics on the emitted binary *)
  | Range_nesting  (** partially-overlapping location ranges of one var *)

let invariant_name = function
  | Structural -> "structural"
  | Dominance -> "dominance"
  | Liveness_entry -> "liveness-entry"
  | Line_invalid -> "line-invalid"
  | Line_grow -> "line-grow"
  | Var_grow -> "var-grow"
  | Loc_bounds -> "loc-bounds"
  | Binary_debug -> "binary-debug"
  | Range_nesting -> "range-nesting"

exception
  Check_failed of { pass : string; invariant : invariant; detail : string }

let failure_message ~pass invariant detail =
  Printf.sprintf "sanitizer: pass '%s' violated %s: %s" pass
    (invariant_name invariant) detail

let () =
  Printexc.register_printer (function
    | Check_failed { pass; invariant; detail } ->
        Some (failure_message ~pass invariant detail)
    | _ -> None)

let fail ~pass invariant fmt =
  Printf.ksprintf
    (fun detail -> raise (Check_failed { pass; invariant; detail }))
    fmt

(** Global gate read by [Toolchain.compile] when no explicit [~sanitize]
    is passed — lets the CLI and the bench harness turn checking on for
    every engine-driven compile without threading a flag everywhere. *)
let enabled = ref false

(* ------------------------------------------------------------------ *)
(* Per-pass counters (domain-safe: the engine pool compiles from
   multiple domains)                                                    *)

type counter = { mutable checks : int; mutable failures : int }

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let counters_mu = Mutex.create ()

let counter_for pass =
  match Hashtbl.find_opt counters_tbl pass with
  | Some c -> c
  | None ->
      let c = { checks = 0; failures = 0 } in
      Hashtbl.replace counters_tbl pass c;
      c

(* Observability seam: the instantiation (Measure_engine) mirrors every
   bump into a per-request counter sink. Called as
   [(pass, checks, failures)], outside the counter lock. *)
let observer : (string -> int -> int -> unit) option ref = ref None
let set_observer f = observer := f

let observe pass checks failures =
  match !observer with None -> () | Some f -> f pass checks failures

let bump_checks pass =
  Mutex.lock counters_mu;
  (counter_for pass).checks <- (counter_for pass).checks + 1;
  Mutex.unlock counters_mu;
  observe pass 1 0

let bump_failures pass =
  Mutex.lock counters_mu;
  (counter_for pass).failures <- (counter_for pass).failures + 1;
  Mutex.unlock counters_mu;
  observe pass 0 1

(** [(pass, boundaries validated, failures)], sorted by pass name. *)
let counters () =
  Mutex.lock counters_mu;
  let out =
    Hashtbl.fold
      (fun pass c acc -> (pass, c.checks, c.failures) :: acc)
      counters_tbl []
  in
  Mutex.unlock counters_mu;
  List.sort compare out

let reset_counters () =
  Mutex.lock counters_mu;
  Hashtbl.reset counters_tbl;
  Mutex.unlock counters_mu

(** [record deltas] credits [(pass, checks, failures)] triples wholesale
    — for callers replaying sanitizer activity captured on an earlier
    run (e.g. a persistent-cache hit serving a compile that originally
    ran with the sanitizer on), so warm output matches cold output. *)
let record deltas =
  Mutex.lock counters_mu;
  List.iter
    (fun (pass, checks, failures) ->
      let c = counter_for pass in
      c.checks <- c.checks + checks;
      c.failures <- c.failures + failures)
    deltas;
  Mutex.unlock counters_mu;
  List.iter (fun (pass, checks, failures) -> observe pass checks failures) deltas

(* ------------------------------------------------------------------ *)
(* Debug-info snapshots: what a pass may shrink but never grow          *)

module Int_set = Set.Make (Int)
module Str_set = Set.Make (String)

type snapshot = { sn_lines : Int_set.t; sn_vars : Str_set.t }

let snapshot_ir (prog : Ir.program) =
  let lines = ref Int_set.empty and vars = ref Str_set.empty in
  let add_line = function
    | Some l -> lines := Int_set.add l !lines
    | None -> ()
  in
  let add_var v = vars := Str_set.add (Ir.var_to_string v) !vars in
  Hashtbl.iter
    (fun _ (fn : Ir.fn) ->
      List.iter (fun (_, v) -> add_var v) fn.Ir.f_params;
      List.iter
        (fun (s : Ir.slot) -> Option.iter add_var s.Ir.s_var)
        fn.Ir.f_slots;
      Ir.iter_blocks fn (fun b ->
          add_line b.Ir.term_line;
          List.iter
            (fun (i : Ir.instr) ->
              add_line i.Ir.line;
              match i.Ir.ik with Ir.Dbg (v, _) -> add_var v | _ -> ())
            b.Ir.instrs))
    prog.Ir.funcs;
  { sn_lines = !lines; sn_vars = !vars }

let snapshot_mach (m : Mach.mfn) =
  let lines = ref Int_set.empty and vars = ref Str_set.empty in
  let add_line = function
    | Some l -> lines := Int_set.add l !lines
    | None -> ()
  in
  let add_var v = vars := Str_set.add (Ir.var_to_string v) !vars in
  List.iter
    (fun (s : Mach.frame_slot) -> Option.iter add_var s.Mach.fs_var)
    m.Mach.mf_frame;
  Hashtbl.iter
    (fun _ (b : Mach.mblock) ->
      add_line b.Mach.mterm_line;
      List.iter
        (fun (i : Mach.minstr) ->
          add_line i.Mach.mline;
          match i.Mach.mk with Mach.Mdbg (v, _) -> add_var v | _ -> ())
        b.Mach.mins)
    m.Mach.mf_blocks;
  { sn_lines = !lines; sn_vars = !vars }

let check_monotone ~pass ~what (prev : snapshot) (cur : snapshot) =
  let new_lines = Int_set.diff cur.sn_lines prev.sn_lines in
  (match Int_set.choose_opt new_lines with
  | Some l ->
      fail ~pass Line_grow "%s: line %d appeared out of nowhere (%d new)"
        what l (Int_set.cardinal new_lines)
  | None -> ());
  match Str_set.choose_opt (Str_set.diff cur.sn_vars prev.sn_vars) with
  | Some v -> fail ~pass Var_grow "%s: variable %s appeared out of nowhere" what v
  | None -> ()

(* ------------------------------------------------------------------ *)
(* IR invariants                                                       *)

let check_lines_valid ~pass (fn : Ir.fn) =
  let bad where = function
    | Some l when l < 1 ->
        fail ~pass Line_invalid "%s: %s carries line %d" fn.Ir.f_name where l
    | _ -> ()
  in
  Ir.iter_blocks fn (fun b ->
      bad (Printf.sprintf "terminator of L%d" b.Ir.b_label) b.Ir.term_line;
      List.iter
        (fun (i : Ir.instr) ->
          bad (Ir.ikind_to_string i.Ir.ik) i.Ir.line)
        b.Ir.instrs)

(* Every non-debug register use is dominated by its definition. Debug
   bindings are exempt: a [Dbg] operand's soundness is what the
   experiments *measure*, not an invariant the pipeline guarantees. *)
let check_dominance ~pass (fn : Ir.fn) =
  let t = Dom.compute fn in
  let reach = Ir.reachable fn in
  (* Definition sites: params before phis before instructions. *)
  let site = Hashtbl.create 64 in
  List.iter
    (fun (r, _) -> Hashtbl.replace site r (fn.Ir.entry, -2))
    fn.Ir.f_params;
  Hashtbl.iter
    (fun l (b : Ir.block) ->
      List.iter
        (fun (p : Ir.phi) -> Hashtbl.replace site p.Ir.p_dst (l, -1))
        b.Ir.phis;
      List.iteri
        (fun i (ins : Ir.instr) ->
          List.iter
            (fun d -> Hashtbl.replace site d (l, i))
            (Ir.def_of_ikind ins.Ir.ik))
        b.Ir.instrs)
    fn.Ir.blocks;
  let dominated ~use_label ~use_index ~ctx r =
    match Hashtbl.find_opt site r with
    | None -> () (* an undefined use; Verify reports it as Structural *)
    | Some (dl, di) ->
        if dl = use_label then begin
          if di >= use_index then
            fail ~pass Dominance
              "%s: r%d used at %s before its definition in the same block L%d"
              fn.Ir.f_name r ctx use_label
        end
        else if Hashtbl.mem reach dl && not (Dom.dominates t dl use_label) then
          fail ~pass Dominance
            "%s: use of r%d at %s (L%d) not dominated by its definition (L%d)"
            fn.Ir.f_name r ctx use_label dl
  in
  Hashtbl.iter
    (fun l (b : Ir.block) ->
      if Hashtbl.mem reach l then begin
        List.iter
          (fun (p : Ir.phi) ->
            List.iter
              (fun (pl, o) ->
                List.iter
                  (fun r ->
                    match Hashtbl.find_opt site r with
                    | Some (dl, _)
                      when dl <> pl && Hashtbl.mem reach pl
                           && Hashtbl.mem reach dl
                           && not (Dom.dominates t dl pl) ->
                        fail ~pass Dominance
                          "%s: phi r%d arg r%d (edge L%d->L%d) not dominated \
                           by its definition (L%d)"
                          fn.Ir.f_name p.Ir.p_dst r pl l dl
                    | _ -> ())
                  (Ir.operand_uses o))
              p.Ir.p_args)
          b.Ir.phis;
        List.iteri
          (fun i (ins : Ir.instr) ->
            List.iter
              (dominated ~use_label:l ~use_index:i
                 ~ctx:(Ir.ikind_to_string ins.Ir.ik))
              (Ir.real_uses_of_ikind ins.Ir.ik))
          b.Ir.instrs;
        List.iter
          (dominated ~use_label:l ~use_index:max_int ~ctx:"terminator")
          (Ir.term_uses b.Ir.term)
      end)
    fn.Ir.blocks

let check_liveness_entry ~pass (fn : Ir.fn) =
  let lv = Liveness.compute fn in
  let params = Liveness.Reg_set.of_list (List.map fst fn.Ir.f_params) in
  let extra =
    Liveness.Reg_set.diff (Liveness.live_in lv fn.Ir.entry) params
  in
  match Liveness.Reg_set.choose_opt extra with
  | Some r ->
      fail ~pass Liveness_entry
        "%s: r%d is live into the entry block but is not a parameter"
        fn.Ir.f_name r
  | None -> ()

(** [check_ir ~pass ?prev ?ssa prog] validates the whole program at a
    pass boundary and returns the fresh debug-info snapshot to thread to
    the next boundary. [ssa] (default true) gates the dominance check —
    the freshly lowered pre-SSA form routes merges through slots and is
    checked without it. *)
let check_ir ?prev ?(ssa = true) ~pass (prog : Ir.program) =
  bump_checks pass;
  try
    Hashtbl.iter
      (fun _ (fn : Ir.fn) ->
        (try Verify.check_fn fn
         with Verify.Invalid msg -> fail ~pass Structural "%s" msg);
        check_lines_valid ~pass fn;
        if ssa then check_dominance ~pass fn;
        check_liveness_entry ~pass fn)
      prog.Ir.funcs;
    let sn = snapshot_ir prog in
    Option.iter (fun p -> check_monotone ~pass ~what:"ir" p sn) prev;
    sn
  with Check_failed _ as e ->
    bump_failures pass;
    raise e

(* ------------------------------------------------------------------ *)
(* Machine invariants                                                  *)

let check_mach_structure ~pass (m : Mach.mfn) =
  (match m.Mach.mf_layout with
  | e :: _ when e = m.Mach.mf_entry -> ()
  | _ ->
      fail ~pass Structural "%s: machine entry is not first in layout"
        m.Mach.mf_name);
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if Hashtbl.mem seen l then
        fail ~pass Structural "%s: label %d appears twice in machine layout"
          m.Mach.mf_name l;
      Hashtbl.replace seen l ();
      if not (Hashtbl.mem m.Mach.mf_blocks l) then
        fail ~pass Structural "%s: machine layout mentions missing block %d"
          m.Mach.mf_name l)
    m.Mach.mf_layout;
  Hashtbl.iter
    (fun l (b : Mach.mblock) ->
      List.iter
        (fun s ->
          if not (Hashtbl.mem m.Mach.mf_blocks s) then
            fail ~pass Structural
              "%s: machine block %d branches to missing block %d"
              m.Mach.mf_name l s)
        (Mach.msuccs b.Mach.mterm))
    m.Mach.mf_blocks

let check_mach_locs ~pass (m : Mach.mfn) =
  let frame_ids =
    List.map (fun (s : Mach.frame_slot) -> s.Mach.fs_id) m.Mach.mf_frame
  in
  let check_loc ctx = function
    | Mach.Preg k ->
        if k < 0 || k > Mach.num_regs then
          (* [num_regs] itself is the reserved scratch register the
             emitter may use; anything beyond is garbage. *)
          fail ~pass Loc_bounds "%s: %s names register R%d (of %d)"
            m.Mach.mf_name ctx k Mach.num_regs
    | Mach.Pslot i ->
        if i < 0 || i >= m.Mach.mf_spill_words then
          fail ~pass Loc_bounds
            "%s: %s names spill slot %d, spill area has %d words"
            m.Mach.mf_name ctx i m.Mach.mf_spill_words
  in
  let check_addr ctx (a : Mach.maddr) =
    match a.Mach.mbase with
    | Mach.Mframe s ->
        if not (List.mem s frame_ids) then
          fail ~pass Loc_bounds "%s: %s references missing frame slot %d"
            m.Mach.mf_name ctx s
    | Mach.Mglobal _ -> ()
  in
  let check_instr (i : Mach.minstr) =
    let ctx = Mach.mkind_to_string i.Mach.mk in
    List.iter (check_loc ctx) (Mach.writes i.Mach.mk);
    List.iter (check_loc ctx) (Mach.reads i.Mach.mk);
    (match i.Mach.mk with
    | Mach.Mload (_, a) | Mach.Mstore (a, _) -> check_addr ctx a
    | Mach.Mdbg (_, Some (Mach.Dloc l)) -> check_loc ctx l
    | _ -> ());
    match i.Mach.mline with
    | Some l when l < 1 ->
        fail ~pass Line_invalid "%s: %s carries line %d" m.Mach.mf_name ctx l
    | _ -> ()
  in
  List.iter (check_loc "parameter") m.Mach.mf_param_locs;
  Hashtbl.iter
    (fun _ (b : Mach.mblock) -> List.iter check_instr b.Mach.mins)
    m.Mach.mf_blocks

(** [check_mach ~pass ?prev m] validates one machine function at a
    machine-pass boundary. *)
let check_mach ?prev ~pass (m : Mach.mfn) =
  bump_checks pass;
  try
    check_mach_structure ~pass m;
    check_mach_locs ~pass m;
    let sn = snapshot_mach m in
    Option.iter
      (fun p -> check_monotone ~pass ~what:m.Mach.mf_name p sn)
      prev;
    sn
  with Check_failed _ as e ->
    bump_failures pass;
    raise e

(* ------------------------------------------------------------------ *)
(* Binary invariants                                                   *)

(* Location ranges of one variable must be disjoint or properly nested:
   a partial overlap means two inconsistent location records claim the
   same addresses — narrowing loses coverage (measured, fine),
   partial overlap is corruption. *)
let check_range_nesting ~pass (bin : Emit.binary) =
  List.iter
    (fun (vi : Dwarfish.var_info) ->
      let rs =
        List.filter
          (fun (r : Dwarfish.range) -> r.Dwarfish.lo < r.Dwarfish.hi)
          vi.Dwarfish.vi_ranges
      in
      let rec pairs = function
        | [] -> ()
        | (a : Dwarfish.range) :: rest ->
            List.iter
              (fun (b : Dwarfish.range) ->
                let a, b =
                  if
                    (a.Dwarfish.lo, a.Dwarfish.hi)
                    <= (b.Dwarfish.lo, b.Dwarfish.hi)
                  then (a, b)
                  else (b, a)
                in
                (* sorted: a.lo <= b.lo; partial overlap = b starts
                   inside a but ends beyond it *)
                if
                  b.Dwarfish.lo > a.Dwarfish.lo
                  && b.Dwarfish.lo < a.Dwarfish.hi
                  && b.Dwarfish.hi > a.Dwarfish.hi
                then
                  fail ~pass Range_nesting
                    "%s has partially-overlapping ranges [%d, %d) and [%d, %d)"
                    (Ir.var_to_string vi.Dwarfish.vi_var)
                    a.Dwarfish.lo a.Dwarfish.hi b.Dwarfish.lo b.Dwarfish.hi)
              rest;
            pairs rest
      in
      pairs rs)
    bin.Emit.debug.Dwarfish.vars

(** [check_binary ~pass bin] validates the emitted binary: the
    structural {!Debug_verify} diagnostics (line-table entries reference
    live instructions, ranges in bounds, locations materializable) plus
    the range-nesting invariant. *)
let check_binary ~pass (bin : Emit.binary) =
  bump_checks pass;
  try
    (match Debug_verify.verify bin with
    | [] -> ()
    | d :: _ as ds ->
        fail ~pass Binary_debug "%d diagnostic(s); first: %s" (List.length ds)
          (Debug_verify.diag_to_string d));
    check_range_nesting ~pass bin
  with Check_failed _ as e ->
    bump_failures pass;
    raise e

(* ------------------------------------------------------------------ *)
(* The sanitizer as a pipeline instrument                              *)

(** [instrument ()] is the sanitizer's view of one compilation, in the
    toolchain's {!Instrument.t} shape. The closure threads the
    debug-info snapshots from boundary to boundary: IR boundaries chain
    through {!check_ir} (the pre-SSA ["lower"] boundary skips the
    dominance check), machine boundaries chain through {!check_mach}
    with the baseline reset at each function's ["isel"], and the
    ["emit"] boundary runs {!check_binary}. Create one per compile. *)
let instrument () =
  let ir_snap = ref None in
  let mach_snap = ref None in
  {
    Instrument.on_phase_start = (fun _ -> ());
    on_phase_end = (fun _ -> ());
    on_pass =
      (fun pass scope ->
        match scope with
        | Instrument.Ir_program prog ->
            let ssa = pass <> "lower" in
            ir_snap := Some (check_ir ?prev:!ir_snap ~ssa ~pass prog)
        | Instrument.Mach_fn m ->
            let prev = if pass = "isel" then None else !mach_snap in
            mach_snap := Some (check_mach ?prev ~pass m)
        | Instrument.Binary bin -> check_binary ~pass bin);
  }
