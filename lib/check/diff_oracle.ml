(** The differential oracle: every program is a compiler test.

    Ground truth is the MiniC source interpreter ([Minic.Interp]); the
    candidate is the full toolchain — compile at O0–O3 under both the
    Gcc_like and Clang_like pipelines (sanitizer on, so every pass
    boundary is also validated) and execute on the VM. Any divergence in
    the output sequence is a miscompile; any sanitizer trip is
    debug-info corruption; both are reported with the offending
    program/config/input. Failing *synthetic* programs are first shrunk
    line-by-line with the ddmin machinery in {!Cmin.shrink_list} so the
    report carries a minimal reproducer.

    This is the repo's analog of the differential setups in "Who's
    Debugging the Debuggers?" — except it runs in-process, over the
    whole suite, as part of tier-1 tests. *)

module C = Debugtuner.Config
module T = Debugtuner.Toolchain

type fail_kind =
  | Mismatch of { expected : int list; actual : int list }
      (** VM output diverged from the interpreter *)
  | Vm_timeout  (** interpreter finished, VM exhausted its budget *)
  | Sanitizer of { pass : string; detail : string }
      (** a pass boundary check fired during compilation *)
  | Compile_error of string  (** the toolchain raised *)

type failure = {
  f_program : string;
  f_config : string;
  f_entry : string;
  f_input : int list;
  f_kind : fail_kind;
  f_shrunk : string option;  (** minimized source (synthetic programs) *)
}

type report = {
  r_programs : int;
  r_configs : int;
  r_runs : int;  (** (program, harness, input, config) executions *)
  r_skipped : int;  (** inputs with no ground truth (interp step limit) *)
  r_failures : failure list;
}

(** The full differential matrix: {O0..O3} x {Gcc_like, Clang_like}. *)
let configs () =
  List.concat_map
    (fun level -> [ C.make C.Gcc level; C.make C.Clang level ])
    [ C.O0; C.O1; C.O2; C.O3 ]

let ints l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

let fail_kind_to_string = function
  | Mismatch { expected; actual } ->
      Printf.sprintf "output mismatch: interp=%s vm=%s" (ints expected)
        (ints actual)
  | Vm_timeout -> "vm timed out where the interpreter finished"
  | Sanitizer { pass; detail } ->
      Printf.sprintf "sanitizer: pass '%s': %s" pass detail
  | Compile_error msg -> Printf.sprintf "compile error: %s" msg

let failure_to_string f =
  Printf.sprintf "%s %s entry=%s input=%s: %s%s" f.f_program f.f_config
    f.f_entry (ints f.f_input)
    (fail_kind_to_string f.f_kind)
    (match f.f_shrunk with
    | Some src ->
        Printf.sprintf "\n  shrunk reproducer (%d lines):\n%s"
          (List.length (String.split_on_char '\n' src))
          (String.concat "\n"
             (List.map (fun l -> "    " ^ l) (String.split_on_char '\n' src)))
    | None -> "")

(* ------------------------------------------------------------------ *)
(* One differential run                                                *)

let interp_budget = 2_000_000
let vm_budget = 8_000_000

(** [reference ast ~entry ~input] is the interpreter's verdict:
    [Some output], or [None] past the step budget (no ground truth — the
    caller skips the input). *)
let reference ast ~entry ~input =
  match Minic.Interp.run ~max_steps:interp_budget ast ~entry ~input with
  | out -> Some out
  | exception Minic.Interp.Step_limit -> None

(** [run_one ast ~roots ~entry ~input cfg ~expected] compiles (sanitizer
    on) and executes one configuration against the interpreter's
    [expected] output. [None] = agreement. *)
let run_one ast ~roots ~entry ~input (cfg : C.t) ~expected =
  Obs.count "oracle/runs";
  match
    T.compile ast ~config:cfg ~roots
      ~options:(T.Options.make ~sanitize:true ())
  with
  | exception Sanitize.Check_failed { pass; invariant = _; detail } ->
      Some (Sanitizer { pass; detail })
  | exception e -> Some (Compile_error (Printexc.to_string e))
  | bin -> (
      let res =
        Vm.run bin ~entry ~input { Vm.default_opts with max_instrs = vm_budget }
      in
      if res.Vm.timed_out then Some Vm_timeout
      else
        match res.Vm.output = expected with
        | true -> None
        | false -> Some (Mismatch { expected; actual = res.Vm.output }))

(* ------------------------------------------------------------------ *)
(* Persistent verdict cache                                            *)

(* With a store, each program's whole differential verdict — failures,
   run counts and the sanitizer-counter delta its compiles produced — is
   cached on a content address of everything the verdict depends on.
   Warm hits replay the sanitizer delta ({!Sanitize.record}) so a warm
   [check] prints byte-identical output, counters included. *)

let counters_delta before after =
  let find pass l =
    match List.find_opt (fun (q, _, _) -> q = pass) l with
    | Some (_, c, f) -> (c, f)
    | None -> (0, 0)
  in
  List.filter_map
    (fun (pass, c, f) ->
      let bc, bf = find pass before in
      if c = bc && f = bf then None else Some (pass, c - bc, f - bf))
    after

let verdict_key tag payload =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          ( tag,
            payload,
            interp_budget,
            vm_budget,
            List.map C.fingerprint (configs ()),
            (* Verdicts must never cross VM cores: a cached verdict
               computed by one core could otherwise mask a divergence in
               the other. *)
            Vm.active_core (),
            "oracle-v2" )
          []))

let cached store ~key (f : unit -> 'a) : 'a =
  match store with
  | None -> f ()
  | Some s -> (
      let fresh () =
        let before = Sanitize.counters () in
        let v = f () in
        let delta = counters_delta before (Sanitize.counters ()) in
        (try
           Engine.Disk_store.put s ~cache:"oracle" ~key
             (Marshal.to_string (v, delta) [])
         with _ -> ());
        v
      in
      match Engine.Disk_store.get s ~cache:"oracle" ~key with
      | None -> fresh ()
      | Some payload -> (
          match
            (Marshal.from_string payload 0 : 'a * (string * int * int) list)
          with
          | v, delta ->
              Sanitize.record delta;
              v
          | exception _ ->
              Engine.Disk_store.invalidate s ~cache:"oracle" ~key;
              fresh ()))

(* ------------------------------------------------------------------ *)
(* Suite programs                                                      *)

(** [check_program p] runs the whole differential matrix over every
    harness and seed input of a suite program. Returns failures (empty =
    clean) and the number of (runs, skipped-for-no-ground-truth). With
    [store], the verdict is served from the persistent cache when the
    program, inputs, configurations and budgets are unchanged. *)
let check_program ?store (p : Suite_types.sprogram) :
    failure list * (int * int) =
  cached store
    ~key:
      (verdict_key "program" (p.Suite_types.p_source, p.Suite_types.p_harnesses))
  @@ fun () ->
  Obs.Span.wrap "oracle:program" ~args:[ ("program", p.Suite_types.p_name) ]
  @@ fun () ->
  let ast = Suite_types.ast p in
  let roots = Suite_types.roots p in
  let runs = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  List.iter
    (fun (h : Suite_types.harness) ->
      List.iter
        (fun input ->
          match reference ast ~entry:h.Suite_types.h_entry ~input with
          | None -> incr skipped
          | Some expected ->
              List.iter
                (fun cfg ->
                  incr runs;
                  match
                    run_one ast ~roots ~entry:h.Suite_types.h_entry ~input cfg
                      ~expected
                  with
                  | None -> ()
                  | Some kind ->
                      failures :=
                        {
                          f_program = p.Suite_types.p_name;
                          f_config = C.name cfg;
                          f_entry = h.Suite_types.h_entry;
                          f_input = input;
                          f_kind = kind;
                          f_shrunk = None;
                        }
                        :: !failures)
                (configs ()))
        h.Suite_types.h_seeds)
    p.Suite_types.p_harnesses;
  (List.rev !failures, (!runs, !skipped))

(** [check_suite ()] sweeps every [Programs.all] program. *)
let check_suite ?store () : report =
  let runs = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  List.iter
    (fun p ->
      let fs, (r, s) = check_program ?store p in
      runs := !runs + r;
      skipped := !skipped + s;
      failures := !failures @ [ fs ])
    Programs.all;
  {
    r_programs = List.length Programs.all;
    r_configs = List.length (configs ());
    r_runs = !runs;
    r_skipped = !skipped;
    r_failures = List.concat !failures;
  }

(* ------------------------------------------------------------------ *)
(* Synthetic programs + shrinking                                      *)

(* Deterministic small input set for synthetic mains (which read via
   input()/eof() and so accept any vector). *)
let synth_inputs = [ []; [ 3; 1; 4; 1; 5; 9; 2; 6 ] ]

(** Does [source] still exhibit a failure for [cfg]/[input]? Used as the
    ddmin predicate: the candidate must still parse/typecheck, still
    have a ground truth, and still fail the same configuration (any
    failure kind counts — the bug may shift shape while shrinking, which
    is fine for a reproducer). *)
let source_still_fails source (cfg : C.t) ~input =
  try
    let ast = Minic.Typecheck.parse_and_check source in
    match reference ast ~entry:"main" ~input with
    | None -> false
    | Some expected ->
        run_one ast ~roots:[ "main" ] ~entry:"main" ~input cfg ~expected
        <> None
  with _ -> false

(** [shrink_source source cfg ~input] minimizes a failing synthetic
    program line-by-line with {!Cmin.shrink_list}. *)
let shrink_source source (cfg : C.t) ~input =
  let lines = String.split_on_char '\n' source in
  let still_interesting ls =
    source_still_fails (String.concat "\n" ls) cfg ~input
  in
  if not (still_interesting lines) then None
  else Some (String.concat "\n" (Cmin.shrink_list ~still_interesting lines))

(** [check_synth ~seed] runs one synthetic program through the matrix,
    shrinking any failure before reporting it. *)
let check_synth ?store ~seed () : failure list * (int * int) =
  let name = Printf.sprintf "synth-%d" seed in
  Obs.Span.wrap "oracle:synth" ~args:[ ("program", name) ] @@ fun () ->
  let source = Synth.generate ~seed in
  cached store ~key:(verdict_key "synth" (source, synth_inputs)) @@ fun () ->
  let ast = Minic.Typecheck.parse_and_check source in
  let runs = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  List.iter
    (fun input ->
      match reference ast ~entry:"main" ~input with
      | None -> incr skipped
      | Some expected ->
          List.iter
            (fun cfg ->
              incr runs;
              match
                run_one ast ~roots:[ "main" ] ~entry:"main" ~input cfg ~expected
              with
              | None -> ()
              | Some kind ->
                  failures :=
                    {
                      f_program = name;
                      f_config = C.name cfg;
                      f_entry = "main";
                      f_input = input;
                      f_kind = kind;
                      f_shrunk = shrink_source source cfg ~input;
                    }
                    :: !failures)
            (configs ()))
    synth_inputs;
  (List.rev !failures, (!runs, !skipped))

(** [fuzz ~count ~seed] runs [count] synthetic programs (seeds [seed] to
    [seed + count - 1]) through the full differential matrix.
    Deterministic for a given [(count, seed)]. *)
let fuzz ?store ~count ~seed () : report =
  let runs = ref 0 and skipped = ref 0 in
  let failures = ref [] in
  for s = seed to seed + count - 1 do
    let fs, (r, sk) = check_synth ?store ~seed:s () in
    runs := !runs + r;
    skipped := !skipped + sk;
    failures := !failures @ [ fs ]
  done;
  {
    r_programs = count;
    r_configs = List.length (configs ());
    r_runs = !runs;
    r_skipped = !skipped;
    r_failures = List.concat !failures;
  }

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let report_lines (r : report) =
  Printf.sprintf
    "differential oracle: %d program(s) x %d config(s), %d run(s), %d \
     skipped (no ground truth), %d failure(s)"
    r.r_programs r.r_configs r.r_runs r.r_skipped
    (List.length r.r_failures)
  :: List.map failure_to_string r.r_failures

let report_to_string r = String.concat "\n" (report_lines r)
let clean r = r.r_failures = []
