(** clang's [SimplifyCFG]: the cleanup canonicalizations plus the two
    transformations responsible for its debug cost in the paper —
    common-instruction hoisting from the two targets of a conditional
    branch (the second copy's line entries vanish) and single-instruction
    speculation that turns tiny diamonds into selects (branch lines
    vanish). *)

(* Hoist identical leading instructions of both branch targets into the
   predecessor. The copies compute the same value, so the second
   target's register is substituted by the first's; the hoisted
   instruction keeps the first copy's line, the other line is lost. *)
let hoist_common (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let hoisted = ref 0 in
  Ir.iter_blocks fn (fun head ->
      match head.Ir.term with
      | Ir.Cbr (_, t_l, f_l) when t_l <> f_l -> (
          match (Hashtbl.find_opt fn.Ir.blocks t_l, Hashtbl.find_opt fn.Ir.blocks f_l) with
          | Some t, Some f
            when t.Ir.preds = [ head.Ir.b_label ]
                 && f.Ir.preds = [ head.Ir.b_label ]
                 && t.Ir.phis = [] && f.Ir.phis = [] ->
              let progress = ref true in
              while !progress do
                progress := false;
                let first_real (b : Ir.block) =
                  List.find_opt
                    (fun (i : Ir.instr) ->
                      match i.Ir.ik with Ir.Dbg _ -> false | _ -> true)
                    b.Ir.instrs
                in
                match (first_real t, first_real f) with
                | Some it, Some jf -> (
                    match
                      ( Putil.value_key it.Ir.ik,
                        Putil.value_key jf.Ir.ik,
                        Ir.def_of_ikind it.Ir.ik,
                        Ir.def_of_ikind jf.Ir.ik )
                    with
                    | Some ka, Some kb, [ da ], [ db ]
                      when ka = kb && Putil.pure_ikind it.Ir.ik ->
                        (* Move the first copy up; alias the second. *)
                        t.Ir.instrs <-
                          List.filter (fun i -> i != it) t.Ir.instrs;
                        f.Ir.instrs <-
                          List.filter (fun i -> i != jf) f.Ir.instrs;
                        head.Ir.instrs <- head.Ir.instrs @ [ it ];
                        let subst = Hashtbl.create 1 in
                        Hashtbl.replace subst db (Ir.Reg da);
                        Putil.replace_uses fn subst;
                        incr hoisted;
                        progress := true
                    | _ -> ())
                | _ -> ()
              done
          | _ -> ())
      | _ -> ());
  !hoisted

(** [run fn] — cleanup + hoisting + single-instruction speculation. *)
let run (fn : Ir.fn) =
  Cleanup.run fn;
  let h = hoist_common fn in
  let s = If_conversion.run ~max_arm:1 fn in
  Cleanup.run fn;
  h + s

let run_program (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run fn)) p
