(** Superword-level parallelism (gcc [tree-slp-vectorize]).

    Independent same-operator scalar operations inside a block are packed
    into one [Vec] instruction (placed at the first member's position,
    which is legal because every member's operands are checked to be
    available there). The vector instruction carries the first member's
    line; the other members' line entries vanish — the per-element
    stepping loss the paper observes. All lane destinations are still
    defined, so debug bindings survive packing itself. *)

let max_lanes = 4
let window = 8

let packable (ik : Ir.ikind) =
  match ik with
  | Ir.Bin ((Ir.Div | Ir.Rem), _, _, _) -> None (* lane cost would lie *)
  | Ir.Bin (op, d, a, b) -> Some (op, d, a, b)
  | _ -> None

let run (fn : Ir.fn) =
  let packed = ref 0 in
  Ir.iter_blocks fn (fun blk ->
      let arr = Array.of_list blk.Ir.instrs in
      let n = Array.length arr in
      let consumed = Array.make n false in
      let out = ref [] in
      for i = 0 to n - 1 do
        if not consumed.(i) then begin
          match packable arr.(i).Ir.ik with
          | Some (op, d0, a0, b0) ->
              (* Scan a small window ahead for isomorphic, independent
                 operations whose operands are defined before position
                 [i]. *)
              let group = ref [ (d0, a0, b0) ] in
              let group_dsts = ref [ d0 ] in
              let defs_between = ref [] in
              let j = ref (i + 1) in
              while !j < n && !j <= i + window && List.length !group < max_lanes do
                (match packable arr.(!j).Ir.ik with
                | Some (op', d, a, b) when op' = op && not consumed.(!j) ->
                    let operand_ok = function
                      | Ir.Imm _ -> true
                      | Ir.Reg r ->
                          (not (List.mem r !defs_between))
                          && not (List.mem r !group_dsts)
                    in
                    if operand_ok a && operand_ok b then begin
                      group := (d, a, b) :: !group;
                      group_dsts := d :: !group_dsts;
                      consumed.(!j) <- true
                    end
                    else
                      defs_between :=
                        Ir.def_of_ikind arr.(!j).Ir.ik @ !defs_between
                | _ ->
                    defs_between := Ir.def_of_ikind arr.(!j).Ir.ik @ !defs_between);
                incr j
              done;
              if List.length !group >= 2 then begin
                incr packed;
                out :=
                  {
                    Ir.ik = Ir.Vec (op, Array.of_list (List.rev !group));
                    line = arr.(i).Ir.line;
                  }
                  :: !out
              end
              else out := arr.(i) :: !out
          | None -> out := arr.(i) :: !out
        end
      done;
      blk.Ir.instrs <- List.rev !out);
  !packed

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
