(** Loop-invariant code motion — the heart of [tree-loop-optimize] in our
    gcc pipeline and of the loop canonicalization stage in clang's.

    Pure instructions whose operands are defined outside the loop are
    hoisted to the preheader; loads additionally require that the loop
    contains no store to the same base and no calls. Hoisted
    instructions lose their line (cross-block motion), shrinking the
    steppable set inside hot loops. *)

module Label_set = Loops.Label_set

let run (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let hoisted = ref 0 in
  let dom = Dom.compute fn in
  let loop_info = Loops.find fn dom in
  (* Innermost loops first so invariants bubble outward across
     iterations of the pass. *)
  let loops =
    List.sort (fun a b -> compare b.Loops.depth a.Loops.depth) loop_info.Loops.loops
  in
  List.iter
    (fun lp ->
      (* Defs inside the loop. *)
      let inside_defs = Hashtbl.create 32 in
      Label_set.iter
        (fun l ->
          let b = Ir.block fn l in
          List.iter
            (fun (p : Ir.phi) -> Hashtbl.replace inside_defs p.Ir.p_dst ())
            b.Ir.phis;
          List.iter
            (fun (i : Ir.instr) ->
              List.iter
                (fun d -> Hashtbl.replace inside_defs d ())
                (Ir.def_of_ikind i.Ir.ik))
            b.Ir.instrs)
        lp.Loops.body;
      let loop_has_store_to base =
        Label_set.fold
          (fun l acc ->
            acc
            || List.exists
                 (fun (i : Ir.instr) ->
                   match i.Ir.ik with
                   | Ir.Store (a, _) -> a.Ir.base = base
                   | _ -> false)
                 (Ir.block fn l).Ir.instrs)
          lp.Loops.body false
      in
      let loop_has_call =
        Label_set.fold
          (fun l acc ->
            acc
            || List.exists
                 (fun (i : Ir.instr) ->
                   match i.Ir.ik with Ir.Call _ -> true | _ -> false)
                 (Ir.block fn l).Ir.instrs)
          lp.Loops.body false
      in
      let invariant_reg r = not (Hashtbl.mem inside_defs r) in
      let invariant_operand = function
        | Ir.Imm _ -> true
        | Ir.Reg r -> invariant_reg r
      in
      (* Iterate within the loop: hoisting one instruction can make
         another invariant. *)
      let progress = ref true in
      while !progress do
        progress := false;
        Label_set.iter
          (fun l ->
            let b = Ir.block fn l in
            let to_hoist = ref [] in
            b.Ir.instrs <-
              List.filter
                (fun (i : Ir.instr) ->
                  let movable =
                    match i.Ir.ik with
                    | Ir.Load (_, a) ->
                        invariant_operand a.Ir.index
                        && (not (loop_has_store_to a.Ir.base))
                        && not loop_has_call
                    | ik ->
                        Putil.pure_ikind ik
                        && (match ik with Ir.Load _ -> false | _ -> true)
                        && List.for_all invariant_reg (Ir.uses_of_ikind ik)
                  in
                  (* Hoisting from a conditionally-executed block would
                     change how often the instruction runs; our operations
                     are total (no traps), so speculation is safe, but we
                     restrict division to blocks that dominate every latch
                     to keep the cost model honest. *)
                  let speculation_ok =
                    match i.Ir.ik with
                    | Ir.Bin ((Ir.Div | Ir.Rem), _, _, _) ->
                        List.for_all
                          (fun latch -> Dom.dominates dom l latch)
                          lp.Loops.latches
                    | _ -> true
                  in
                  if
                    movable && speculation_ok
                    &&
                    match i.Ir.ik with
                    | Ir.Load (_, a) -> invariant_operand a.Ir.index
                    | ik -> List.for_all invariant_reg (Ir.uses_of_ikind ik)
                  then begin
                    to_hoist := i :: !to_hoist;
                    List.iter
                      (fun d -> Hashtbl.remove inside_defs d)
                      (Ir.def_of_ikind i.Ir.ik);
                    incr hoisted;
                    progress := true;
                    false
                  end
                  else true)
                b.Ir.instrs;
            if !to_hoist <> [] then begin
              let ph = Loops.preheader fn lp in
              let phb = Ir.block fn ph in
              List.iter
                (fun (i : Ir.instr) ->
                  i.Ir.line <- None;
                  phb.Ir.instrs <- phb.Ir.instrs @ [ i ])
                (List.rev !to_hoist)
            end)
          lp.Loops.body
      done)
    loops;
  !hoisted

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
