(** Dead store elimination.

    Two safe-but-real cases:
    - a store overwritten later in the same block by another store to the
      same static address, with no intervening read or call that could
      observe the memory;
    - stores to memory that is never read anywhere in the program (an
      anonymous or write-only slot/global).

    A deleted store's line entry vanishes. When the store targeted a
    named variable's frame home, the variable's memory image is stale
    from then on; we record the fact by binding the variable to the
    stored value if it is still available, or optimized-out otherwise —
    the same trade gcc's -Og refuses to make (paper refs [12], [13]). *)

let addr_key (a : Ir.addr) =
  Printf.sprintf "%s[%s]" (Ir.base_to_string a.Ir.base)
    (Ir.operand_to_string a.Ir.index)

(* Bases loaded anywhere in the function/program. *)
let loaded_bases (p : Ir.program) =
  let tbl = Hashtbl.create 32 in
  Hashtbl.iter
    (fun _ fn ->
      Ir.iter_instrs fn (fun _ i ->
          match i.Ir.ik with
          | Ir.Load (_, a) -> (
              match a.Ir.base with
              | Ir.Global g -> Hashtbl.replace tbl ("g:" ^ g) ()
              | Ir.Slot s ->
                  Hashtbl.replace tbl (Printf.sprintf "s:%s:%d" fn.Ir.f_name s) ())
          | _ -> ()))
    p.Ir.funcs;
  tbl

let base_key (fn : Ir.fn) = function
  | Ir.Global g -> "g:" ^ g
  | Ir.Slot s -> Printf.sprintf "s:%s:%d" fn.Ir.f_name s

let var_of_slot (fn : Ir.fn) = function
  | Ir.Slot s ->
      List.find_map
        (fun (sl : Ir.slot) ->
          if sl.Ir.s_id = s && not sl.Ir.s_array then sl.Ir.s_var else None)
        fn.Ir.f_slots
  | Ir.Global _ -> None

let run_fn (fn : Ir.fn) ~loaded =
  let removed = ref 0 in
  (* Case 2: write-only memory. *)
  Ir.iter_blocks fn (fun b ->
      b.Ir.instrs <-
        List.concat_map
          (fun (i : Ir.instr) ->
            match i.Ir.ik with
            | Ir.Store (a, v) when not (Hashtbl.mem loaded (base_key fn a.Ir.base))
              -> (
                incr removed;
                match var_of_slot fn a.Ir.base with
                | Some var ->
                    (* Keep the value findable for the debugger where we
                       can; the frame home is gone. *)
                    [ { Ir.ik = Ir.Dbg (var, Some v); line = i.Ir.line } ]
                | None -> [])
            | _ -> [ i ])
          b.Ir.instrs);
  (* Case 1: intra-block overwrites. Walk backwards remembering the
     addresses stored after the current point with nothing observing
     memory in between. *)
  Ir.iter_blocks fn (fun b ->
      let pending : (string, unit) Hashtbl.t = Hashtbl.create 8 in
      let observes = function
        | Ir.Load _ | Ir.Call _ | Ir.Input _ | Ir.Output _ -> true
        | _ -> false
      in
      let kept =
        List.fold_left
          (fun acc (i : Ir.instr) ->
            match i.Ir.ik with
            | Ir.Store (a, v) ->
                let k = addr_key a in
                if Hashtbl.mem pending k then begin
                  (* This store is overwritten later with no observer in
                     between: dead. *)
                  incr removed;
                  match var_of_slot fn a.Ir.base with
                  | Some var ->
                      { Ir.ik = Ir.Dbg (var, Some v); line = i.Ir.line } :: acc
                  | None -> acc
                end
                else begin
                  Hashtbl.replace pending k ();
                  i :: acc
                end
            | ik when observes ik ->
                Hashtbl.reset pending;
                i :: acc
            | _ -> i :: acc)
          []
          (List.rev b.Ir.instrs)
      in
      b.Ir.instrs <- kept);
  !removed

(** [run p] runs DSE over the whole program; returns stores removed. *)
let run (p : Ir.program) =
  let loaded = loaded_bases p in
  List.fold_left (fun acc fn -> acc + run_fn fn ~loaded) 0 (Ir.sorted_funcs p)
