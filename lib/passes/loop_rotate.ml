(** Loop rotation (clang [LoopRotate], gcc [tree-ch] — loop header
    copying).

    A while-shaped loop tests its condition in the header on every
    iteration and pays a branch each time control returns from the latch.
    Rotation copies the header's condition computation into (a) the
    preheader, as an entry guard, and (b) the latch, which then branches
    back or exits directly — the do-while shape. One jump per iteration
    is saved.

    Debug consequences, all mechanical: the duplicated condition carries
    duplicated line entries (the breakpoint lands on the guard copy); the
    exit block now joins two paths (guard and latch) whose variable
    locations disagree, so bindings die at the join unless both paths
    agree.

    Restrictions (checked, else the loop is skipped): the header's
    non-phi instructions are pure; non-phi header definitions are not
    used outside the header except by the branch; the exit block is
    outside the loop. Header phi values used outside the loop are routed
    through new phis in the exit block. *)

module Label_set = Loops.Label_set

let rotate_one (fn : Ir.fn) (lp : Loops.loop) =
  let header = Ir.block fn lp.Loops.header in
  match header.Ir.term with
  | Ir.Cbr (cond, body_l, exit_l)
    when Label_set.mem body_l lp.Loops.body
         && (not (Label_set.mem exit_l lp.Loops.body))
         && exit_l <> lp.Loops.header ->
      let pure_instrs =
        List.for_all
          (fun (i : Ir.instr) ->
            match i.Ir.ik with
            | Ir.Dbg _ -> true
            | ik -> Putil.pure_ikind ik && (match ik with Ir.Load _ -> false | _ -> true))
          header.Ir.instrs
      in
      let header_defs =
        List.concat_map
          (fun (i : Ir.instr) -> Ir.def_of_ikind i.Ir.ik)
          header.Ir.instrs
      in
      (* Uses of header instruction defs outside the header (other than
         the branch itself) make rotation too invasive — skip. *)
      let defs_escape =
        let escape = ref false in
        Ir.iter_blocks fn (fun b ->
            if b.Ir.b_label <> lp.Loops.header then begin
              List.iter
                (fun (p : Ir.phi) ->
                  List.iter
                    (fun (_, o) ->
                      List.iter
                        (fun r -> if List.mem r header_defs then escape := true)
                        (Ir.operand_uses o))
                    p.Ir.p_args)
                b.Ir.phis;
              List.iter
                (fun (i : Ir.instr) ->
                  List.iter
                    (fun r -> if List.mem r header_defs then escape := true)
                    (Ir.uses_of_ikind i.Ir.ik))
                b.Ir.instrs;
              List.iter
                (fun r -> if List.mem r header_defs then escape := true)
                (Ir.term_uses b.Ir.term)
            end)
        ;
        !escape
      in
      Ir.recompute_preds fn;
      if
        (not pure_instrs) || defs_escape
        || List.length lp.Loops.latches <> 1
        || (Ir.block fn exit_l).Ir.phis <> []
        (* A break inside the body would give the exit other
           predecessors; the two-way exit phi below could not represent
           them. *)
        || (Ir.block fn exit_l).Ir.preds <> [ lp.Loops.header ]
      then false
      else begin
        let latch_l = List.hd lp.Loops.latches in
        let latch = Ir.block fn latch_l in
        (* Only rotate the classic shape where the latch jumps
           unconditionally to the header. *)
        match latch.Ir.term with
        | Ir.Br h when h = lp.Loops.header ->
            let dom_orig = Dom.compute fn in
            (* After rotation the guard reaches the exit without passing
               the header, so a block that merges paths from the exit
               region and the body region would lose header domination; a
               header-phi use there could not be repaired. Bail on that
               shape: a use outside the loop must be dominated either by
               the exit or (still) by the header. *)
            let reachable_from_exit =
              let seen = Hashtbl.create 16 in
              let rec go l =
                if not (Hashtbl.mem seen l) then begin
                  Hashtbl.replace seen l ();
                  List.iter go (Ir.succs (Ir.block fn l).Ir.term)
                end
              in
              go exit_l;
              seen
            in
            let phi_dsts =
              List.map (fun (p : Ir.phi) -> p.Ir.p_dst) header.Ir.phis
            in
            let unsound = ref false in
            let bad_site l =
              (not (Label_set.mem l lp.Loops.body))
              && Hashtbl.mem reachable_from_exit l
              && not (Dom.dominates dom_orig exit_l l)
            in
            Ir.iter_blocks fn (fun b ->
                let check r = if List.mem r phi_dsts then unsound := true in
                (* Phi arguments are evaluated at the contributing
                   predecessor; attribute their uses there. *)
                List.iter
                  (fun (q : Ir.phi) ->
                    List.iter
                      (fun (pl, o) ->
                        if bad_site pl then
                          List.iter check (Ir.operand_uses o))
                      q.Ir.p_args)
                  b.Ir.phis;
                if bad_site b.Ir.b_label then begin
                  List.iter
                    (fun (i : Ir.instr) ->
                      List.iter check (Ir.uses_of_ikind i.Ir.ik))
                    b.Ir.instrs;
                  List.iter check (Ir.term_uses b.Ir.term)
                end);
            if !unsound then false
            else begin
            let ph = Loops.preheader fn lp in
            let phb = Ir.block fn ph in
            (* Copy the header computation with a value substitution:
               header phis resolve to the value flowing in from [who]. *)
            let copy_into (dst : Ir.block) who ~append =
              let map = Hashtbl.create 8 in
              List.iter
                (fun (p : Ir.phi) ->
                  match List.assoc_opt who p.Ir.p_args with
                  | Some v -> Hashtbl.replace map p.Ir.p_dst v
                  | None -> ())
                header.Ir.phis;
              let fresh = Hashtbl.create 8 in
              let fresh_def r =
                let r' = Ir.fresh_reg fn in
                Hashtbl.replace fresh r r';
                Hashtbl.replace map r (Ir.Reg r');
                r'
              in
              let copies =
                List.filter_map
                  (fun (i : Ir.instr) ->
                    match i.Ir.ik with
                    | Ir.Dbg _ -> None
                    | ik ->
                        Some
                          {
                            Ir.ik =
                              Putil.clone_ikind ~fresh_def
                                ~map_use:(Hashtbl.find_opt map) ik;
                            line = i.Ir.line;
                          })
                  header.Ir.instrs
              in
              if append then dst.Ir.instrs <- dst.Ir.instrs @ copies
              else dst.Ir.instrs <- copies @ dst.Ir.instrs;
              Ir.subst_operand (Hashtbl.find_opt map) cond
            in
            (* Entry guard in the preheader. *)
            let guard_cond = copy_into phb ph ~append:true in
            phb.Ir.term <- Ir.Cbr (guard_cond, lp.Loops.header, exit_l);
            phb.Ir.term_line <- header.Ir.term_line;
            (* Latch now tests the next iteration's condition itself. *)
            let latch_cond = copy_into latch latch_l ~append:true in
            latch.Ir.term <- Ir.Cbr (latch_cond, lp.Loops.header, exit_l);
            latch.Ir.term_line <- header.Ir.term_line;
            (* The header falls through into the body. *)
            header.Ir.term <- Ir.Br body_l;
            (* Header phi values used outside the loop: a use in a block
               dominated by the exit must merge guard/latch values in the
               exit block; a use in a block still dominated by the header
               (e.g. an early-return block hanging off the body) keeps the
               phi. [rotatable_exits] has already ruled out the shapes
               where neither holds. *)
            let exit_b = Ir.block fn exit_l in
            let outside_subst = Hashtbl.create 8 in
            List.iter
              (fun (p : Ir.phi) ->
                let used_outside = ref false in
                let exit_site l =
                  (not (Label_set.mem l lp.Loops.body))
                  && Dom.dominates dom_orig exit_l l
                in
                Ir.iter_blocks fn (fun b ->
                    let check r = if r = p.Ir.p_dst then used_outside := true in
                    List.iter
                      (fun (q : Ir.phi) ->
                        List.iter
                          (fun (pl, o) ->
                            if exit_site pl then
                              List.iter check (Ir.operand_uses o))
                          q.Ir.p_args)
                      b.Ir.phis;
                    if exit_site b.Ir.b_label then begin
                      List.iter
                        (fun (i : Ir.instr) ->
                          List.iter check (Ir.real_uses_of_ikind i.Ir.ik))
                        b.Ir.instrs;
                      List.iter check (Ir.term_uses b.Ir.term)
                    end)
                ;
                if !used_outside then begin
                  let merged = Ir.fresh_reg fn in
                  let from_guard =
                    Option.value ~default:(Ir.Imm 0)
                      (List.assoc_opt ph p.Ir.p_args)
                  in
                  let from_latch =
                    Option.value ~default:(Ir.Imm 0)
                      (List.assoc_opt latch_l p.Ir.p_args)
                  in
                  exit_b.Ir.phis <-
                    exit_b.Ir.phis
                    @ [
                        {
                          Ir.p_dst = merged;
                          p_args = [ (ph, from_guard); (latch_l, from_latch) ];
                        };
                      ];
                  Hashtbl.replace outside_subst p.Ir.p_dst (Ir.Reg merged)
                end)
              header.Ir.phis;
            (* Substitute only at sites dominated by the exit: a block's
               instructions/terminator when the block is, a phi argument
               when its contributing predecessor is. *)
            if Hashtbl.length outside_subst > 0 then begin
              let exit_site l =
                (not (Label_set.mem l lp.Loops.body))
                && Dom.dominates dom_orig exit_l l
              in
              Ir.iter_blocks fn (fun b ->
                  List.iter
                    (fun (q : Ir.phi) ->
                      q.Ir.p_args <-
                        List.map
                          (fun (pl, o) ->
                            if exit_site pl then
                              ( pl,
                                Ir.subst_operand
                                  (Hashtbl.find_opt outside_subst) o )
                            else (pl, o))
                          q.Ir.p_args)
                    b.Ir.phis;
                  if exit_site b.Ir.b_label then begin
                    List.iter
                      (fun (i : Ir.instr) ->
                        i.Ir.ik <-
                          Ir.subst_uses (Hashtbl.find_opt outside_subst) i.Ir.ik)
                      b.Ir.instrs;
                    b.Ir.term <-
                      Ir.subst_term (Hashtbl.find_opt outside_subst) b.Ir.term
                  end)
            end;
            Ir.recompute_preds fn;
            true
            end
        | _ -> false
      end
  | _ -> false

let run (fn : Ir.fn) =
  (* Rotating a loop reshapes the CFG, invalidating sibling/outer loop
     records; recompute and retry until a fixpoint so nests rotate
     fully. Already-rotated loops have a conditional latch and are
     skipped by the shape guard, so this terminates. *)
  let total = ref 0 in
  let progress = ref true in
  let rounds = ref 0 in
  while !progress && !rounds < 8 do
    progress := false;
    incr rounds;
    Ir.prune_unreachable fn;
    let dom = Dom.compute fn in
    let loop_info = Loops.find fn dom in
    List.iter
      (fun lp ->
        (* The loop record may be stale after an earlier rotation this
           round; guard against vanished blocks. *)
        if
          Hashtbl.mem fn.Ir.blocks lp.Loops.header
          && Loops.Label_set.for_all
               (fun l -> Hashtbl.mem fn.Ir.blocks l)
               lp.Loops.body
          && (not !progress)
          && rotate_one fn lp
        then begin
          incr total;
          progress := true
        end)
      loop_info.Loops.loops
  done;
  if !total > 0 then Cleanup.run fn;
  !total

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
