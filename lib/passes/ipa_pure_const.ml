(** Interprocedural purity analysis (gcc [ipa-pure-const]).

    Marks functions whose result depends only on their arguments and that
    have no observable effects: no stores, no I/O, no loads from globals
    or arrays (memory could change between calls), and only calls to
    functions already proven pure. CSE and DCE consume the marking:
    repeated pure calls collapse and unused pure calls disappear —
    together with their line entries and any variable bound to a deleted
    result. *)

let fn_locally_pure (fn : Ir.fn) ~assumed =
  let ok = ref true in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Store _ | Ir.Input _ | Ir.Eof _ | Ir.Output _ | Ir.Load _ ->
          ok := false
      | Ir.Call (_, callee, _) -> if not (assumed callee) then ok := false
      | _ -> ());
  !ok

(** [run p] computes the greatest fixpoint of purity (optimistic start,
    remove offenders until stable) and sets [is_pure] on each function. *)
let run (p : Ir.program) =
  let pure = Hashtbl.create 16 in
  Hashtbl.iter (fun name _ -> Hashtbl.replace pure name true) p.Ir.funcs;
  let assumed name = Option.value ~default:false (Hashtbl.find_opt pure name) in
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun name fn ->
        if assumed name && not (fn_locally_pure fn ~assumed) then begin
          Hashtbl.replace pure name false;
          changed := true
        end)
      p.Ir.funcs
  done;
  Hashtbl.iter (fun name fn -> fn.Ir.is_pure <- assumed name) p.Ir.funcs

(** Predicate over the current markings, as consumed by DCE/CSE. *)
let pure_predicate (p : Ir.program) name =
  match Hashtbl.find_opt p.Ir.funcs name with
  | Some fn -> fn.Ir.is_pure
  | None -> false

(** Clear markings (pass disabled). *)
let reset (p : Ir.program) =
  Ir.iter_funcs (fun fn -> fn.Ir.is_pure <- false) p
