(** Instruction combining: constant folding, algebraic identities,
    copy/constant propagation and comparison/branch shaping.

    Serves as clang's [InstCombine] and gcc's [tree-forwprop]. Folded
    instructions disappear together with their line entries; debug
    bindings follow the replacement value, so the dominant debug cost of
    this pass is in the line table, matching its mid-table ranking in the
    paper. *)

let is_cmp = function
  | Ir.Ceq | Ir.Cne | Ir.Clt | Ir.Cle | Ir.Cgt | Ir.Cge -> true
  | _ -> false

let invert_cmp = function
  | Ir.Ceq -> Ir.Cne
  | Ir.Cne -> Ir.Ceq
  | Ir.Clt -> Ir.Cge
  | Ir.Cle -> Ir.Cgt
  | Ir.Cgt -> Ir.Cle
  | Ir.Cge -> Ir.Clt
  | op -> op

(* One simplification step for a single instruction: either a replacement
   operand for its destination (instruction disappears) or a cheaper
   instruction form. *)
type outcome = Replace of Ir.operand | Rewrite of Ir.ikind | Keep

let simplify defs ik =
  match ik with
  | Ir.Mov (_, o) -> Replace o
  | Ir.Bin (op, _, Ir.Imm a, Ir.Imm b) -> Replace (Ir.Imm (Ir.eval_binop op a b))
  | Ir.Un (op, _, Ir.Imm a) -> Replace (Ir.Imm (Ir.eval_unop op a))
  | Ir.Bin (op, d, Ir.Imm a, b) when Ir.commutative op ->
      Rewrite (Ir.Bin (op, d, b, Ir.Imm a))
  | Ir.Bin (Ir.Add, _, a, Ir.Imm 0)
  | Ir.Bin (Ir.Sub, _, a, Ir.Imm 0)
  | Ir.Bin (Ir.Mul, _, a, Ir.Imm 1)
  | Ir.Bin (Ir.Div, _, a, Ir.Imm 1)
  | Ir.Bin (Ir.Or, _, a, Ir.Imm 0)
  | Ir.Bin (Ir.Xor, _, a, Ir.Imm 0)
  | Ir.Bin (Ir.Shl, _, a, Ir.Imm 0)
  | Ir.Bin (Ir.Shr, _, a, Ir.Imm 0) ->
      Replace a
  | Ir.Bin (Ir.Mul, _, _, Ir.Imm 0) | Ir.Bin (Ir.And, _, _, Ir.Imm 0) ->
      Replace (Ir.Imm 0)
  | Ir.Bin (Ir.Sub, _, Ir.Reg a, Ir.Reg b) when a = b -> Replace (Ir.Imm 0)
  | Ir.Bin (Ir.Xor, _, Ir.Reg a, Ir.Reg b) when a = b -> Replace (Ir.Imm 0)
  | Ir.Bin (Ir.Mul, d, a, Ir.Imm 2) -> Rewrite (Ir.Bin (Ir.Add, d, a, a))
  | Ir.Bin (Ir.Mul, d, a, Ir.Imm n)
    when n > 2 && n land (n - 1) = 0 ->
      (* Multiply by a power of two becomes a shift. *)
      let rec log2 n acc = if n <= 1 then acc else log2 (n lsr 1) (acc + 1) in
      Rewrite (Ir.Bin (Ir.Shl, d, a, Ir.Imm (log2 n 0)))
  | Ir.Select (_, Ir.Imm c, a, b) -> Replace (if c <> 0 then a else b)
  | Ir.Select (_, _, a, b) when a = b -> Replace a
  (* (a + c1) + c2 -> a + (c1 + c2), reassociating through the defining
     instruction. *)
  | Ir.Bin (Ir.Add, d, Ir.Reg r, Ir.Imm c2) -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Bin (Ir.Add, _, a, Ir.Imm c1)) ->
          Rewrite (Ir.Bin (Ir.Add, d, a, Ir.Imm (c1 + c2)))
      | Some (Ir.Bin (Ir.Sub, _, a, Ir.Imm c1)) ->
          Rewrite (Ir.Bin (Ir.Add, d, a, Ir.Imm (c2 - c1)))
      | _ -> Keep)
  (* !(cmp) -> inverted cmp *)
  | Ir.Un (Ir.Lnot, d, Ir.Reg r) -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Bin (op, _, a, b)) when is_cmp op ->
          Rewrite (Ir.Bin (invert_cmp op, d, a, b))
      | _ -> Keep)
  (* cmp-of-cmp against zero: (cmp != 0) -> cmp, (cmp == 0) -> inverted *)
  | Ir.Bin (Ir.Cne, _, Ir.Reg r, Ir.Imm 0) -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Bin (op, _, _, _)) when is_cmp op -> Replace (Ir.Reg r)
      | _ -> Keep)
  | Ir.Bin (Ir.Ceq, d, Ir.Reg r, Ir.Imm 0) -> (
      match Hashtbl.find_opt defs r with
      | Some (Ir.Bin (op, _, a, b)) when is_cmp op ->
          Rewrite (Ir.Bin (invert_cmp op, d, a, b))
      | _ -> Keep)
  | _ -> Keep

(** [run fn] applies simplifications to a fixpoint; returns the number of
    instructions removed. *)
let run (fn : Ir.fn) =
  let removed = ref 0 in
  let progress = ref true in
  while !progress do
    progress := false;
    (* Definition table for cross-instruction rules. *)
    let defs = Hashtbl.create 64 in
    Ir.iter_instrs fn (fun _ i ->
        List.iter
          (fun d -> Hashtbl.replace defs d i.Ir.ik)
          (Ir.def_of_ikind i.Ir.ik));
    let subst = Hashtbl.create 16 in
    Ir.iter_blocks fn (fun b ->
        b.Ir.instrs <-
          List.filter
            (fun (i : Ir.instr) ->
              match i.Ir.ik with
              | Ir.Dbg _ -> true
              | ik -> (
                  match simplify defs ik with
                  | Replace o -> (
                      match Ir.def_of_ikind ik with
                      | [ d ] ->
                          Hashtbl.replace subst d o;
                          incr removed;
                          progress := true;
                          false
                      | _ -> true)
                  | Rewrite ik' ->
                      i.Ir.ik <- ik';
                      progress := true;
                      true
                  | Keep -> true))
            b.Ir.instrs);
    if Hashtbl.length subst > 0 then Putil.replace_uses fn subst
  done;
  Cleanup.run fn;
  !removed

let run_program (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run fn)) p
