(** Temporary expression replacement (gcc [tree-ter]).

    gcc's TER forwards single-use SSA temporaries into their consumer when
    both sit in the same block with nothing in between that could change
    the result, rebuilding expression trees before RTL expansion. The
    effect we reproduce mechanically: the forwarded temporary stops being
    a separately steppable statement (its line entry disappears — it is
    now part of the consumer's expression) and its live range collapses
    to a point (less register pressure, the performance win). We realize
    it by moving each such definition directly in front of its single
    consumer and stripping its line. *)

let run (fn : Ir.fn) =
  let moved = ref 0 in
  let counts = Putil.use_counts fn in
  Ir.iter_blocks fn (fun b ->
      (* Position of each instruction and the single intra-block use of
         each single-use def. *)
      let arr = Array.of_list b.Ir.instrs in
      let n = Array.length arr in
      let pos_of_use : (Ir.reg, int) Hashtbl.t = Hashtbl.create 16 in
      for k = 0 to n - 1 do
        List.iter
          (fun r ->
            (* Only the first (and for single-use defs, only) use
               matters. *)
            if not (Hashtbl.mem pos_of_use r) then Hashtbl.replace pos_of_use r k)
          (Ir.real_uses_of_ikind arr.(k).Ir.ik)
      done;
      (* Decide, for each pure single-use def, whether its consumer is
         later in this block with no side-effecting instruction in
         between (loads must additionally not cross stores or calls). *)
      let target = Array.make n (-1) in
      for k = 0 to n - 1 do
        match (Ir.def_of_ikind arr.(k).Ir.ik, arr.(k).Ir.ik) with
        | [ d ], ik when Putil.pure_ikind ik -> (
            match Hashtbl.find_opt pos_of_use d with
            | Some u
              when u > k && Hashtbl.find_opt counts d = Some 1 ->
                let safe = ref true in
                (match ik with
                | Ir.Load _ ->
                    for j = k + 1 to u - 1 do
                      match arr.(j).Ir.ik with
                      | Ir.Store _ | Ir.Call _ | Ir.Input _ | Ir.Output _ ->
                          safe := false
                      | _ -> ()
                    done
                | _ -> ());
                if !safe then target.(k) <- u
            | _ -> ())
        | _ -> ()
      done;
      if Array.exists (fun t -> t >= 0) target then begin
        incr moved;
        (* Rebuild the block with forwarded defs placed right before
           their consumer. *)
        let buckets = Hashtbl.create 8 in
        for k = 0 to n - 1 do
          if target.(k) >= 0 then begin
            let cur =
              Option.value ~default:[] (Hashtbl.find_opt buckets target.(k))
            in
            Hashtbl.replace buckets target.(k) (cur @ [ arr.(k) ]);
            arr.(k).Ir.line <- None
          end
        done;
        let out = ref [] in
        for k = 0 to n - 1 do
          (match Hashtbl.find_opt buckets k with
          | Some fwd -> out := List.rev_append fwd !out
          | None -> ());
          if target.(k) < 0 then out := arr.(k) :: !out
        done;
        b.Ir.instrs <- List.rev !out
      end);
  !moved

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
