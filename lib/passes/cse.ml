(** Common-subexpression elimination, in two strengths:

    - {!run_local} — clang's [EarlyCSE]: per-block value numbering of pure
      operations plus local redundant-load elimination;
    - {!run_global} — clang's [GVN] and gcc's [tree-fre] /
      [tree-dominator-opts]: dominator-scoped value numbering (an
      expression computed in a dominator is reused), with load reuse
      restricted to bases never stored through in the function.

    A removed instruction's uses (and debug bindings) are re-pointed at
    the surviving value, so variable values survive; the line entry of the
    removed instruction does not — the classic CSE debug signature. *)

let addr_key (a : Ir.addr) =
  Printf.sprintf "%s[%s]" (Ir.base_to_string a.Ir.base)
    (Ir.operand_to_string a.Ir.index)

let stored_bases (fn : Ir.fn) =
  let tbl = Hashtbl.create 16 in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Store (a, _) -> Hashtbl.replace tbl a.Ir.base ()
      | _ -> ());
  tbl

let has_calls_or_io (fn : Ir.fn) =
  let found = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Call _ | Ir.Input _ | Ir.Output _ -> found := true
      | _ -> ());
  !found

(** Local (per-block) CSE with redundant-load elimination. *)
let run_local ?(pure_calls = fun _ -> false) (fn : Ir.fn) =
  let removed = ref 0 in
  Ir.iter_blocks fn (fun b ->
      let values = Hashtbl.create 32 in
      let loads = Hashtbl.create 16 in
      let subst = Hashtbl.create 8 in
      let resolve o =
        match o with
        | Ir.Reg r -> (
            match Hashtbl.find_opt subst r with Some o' -> o' | None -> o)
        | Ir.Imm _ -> o
      in
      b.Ir.instrs <-
        List.filter
          (fun (i : Ir.instr) ->
            i.Ir.ik <- Ir.subst_uses (fun r -> Hashtbl.find_opt subst r) i.Ir.ik;
            ignore resolve;
            match i.Ir.ik with
            | Ir.Store (a, _) ->
                (* Conservative: any store invalidates remembered loads
                   from the same base; unknown index kills the base. *)
                Hashtbl.iter
                  (fun k (base, _) ->
                    if base = a.Ir.base then Hashtbl.remove loads k)
                  (Hashtbl.copy loads);
                true
            | Ir.Call (_, f, _) when not (pure_calls f) ->
                Hashtbl.reset loads;
                true
            | Ir.Load (d, a) -> (
                let k = addr_key a in
                match Hashtbl.find_opt loads k with
                | Some (_, prev) ->
                    Hashtbl.replace subst d (Ir.Reg prev);
                    incr removed;
                    false
                | None ->
                    Hashtbl.replace loads k (a.Ir.base, d);
                    true)
            | ik when Putil.pure_ikind ~pure_calls ik -> (
                match (Putil.value_key ik, Ir.def_of_ikind ik) with
                | Some key, [ d ] -> (
                    match Hashtbl.find_opt values key with
                    | Some prev ->
                        Hashtbl.replace subst d (Ir.Reg prev);
                        incr removed;
                        false
                    | None ->
                        Hashtbl.replace values key d;
                        true)
                | _ -> true)
            | _ -> true)
          b.Ir.instrs;
      if Hashtbl.length subst > 0 then Putil.replace_uses fn subst);
  !removed

(** Dominator-scoped value numbering. *)
let run_global ?(pure_calls = fun _ -> false) (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let removed = ref 0 in
  let dom = Dom.compute fn in
  let stored = stored_bases fn in
  let impure_fn = has_calls_or_io fn in
  let subst = Hashtbl.create 16 in
  (* Scoped hash table: an association list stack per dominator path. *)
  let rec walk label (scope : (string * Ir.reg) list) =
    let b = Ir.block fn label in
    let scope = ref scope in
    b.Ir.instrs <-
      List.filter
        (fun (i : Ir.instr) ->
          i.Ir.ik <- Ir.subst_uses (fun r -> Hashtbl.find_opt subst r) i.Ir.ik;
          let numberable =
            match i.Ir.ik with
            | Ir.Load (_, a) ->
                (* Loads participate only when nothing in the function can
                   change the loaded memory. *)
                (not (Hashtbl.mem stored a.Ir.base)) && not impure_fn
            | Ir.Call (_, f, _) -> pure_calls f
            | ik -> Putil.pure_ikind ~pure_calls:(fun _ -> false) ik
          in
          if not numberable then true
          else
            let key =
              match i.Ir.ik with
              | Ir.Load (_, a) -> Some ("load:" ^ addr_key a)
              | Ir.Call (_, f, args) ->
                  Some
                    (Printf.sprintf "call:%s(%s)" f
                       (String.concat "," (List.map Ir.operand_to_string args)))
              | ik -> Putil.value_key ik
            in
            match (key, Ir.def_of_ikind i.Ir.ik) with
            | Some key, [ d ] -> (
                match List.assoc_opt key !scope with
                | Some prev ->
                    Hashtbl.replace subst d (Ir.Reg prev);
                    incr removed;
                    false
                | None ->
                    scope := (key, d) :: !scope;
                    true)
            | _ -> true)
        b.Ir.instrs;
    b.Ir.term <- Ir.subst_term (fun r -> Hashtbl.find_opt subst r) b.Ir.term;
    List.iter (fun c -> walk c !scope) (Dom.children dom label)
  in
  walk fn.Ir.entry [];
  (* Phi arguments may still reference removed registers. *)
  Putil.replace_uses fn subst;
  !removed

let run_local_program ?pure_calls (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run_local ?pure_calls fn)) p

let run_global_program ?pure_calls (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run_global ?pure_calls fn)) p
