(** Dead code elimination.

    Deletes pure instructions (and phis) whose results are never used by
    real code. A debug binding does not keep a value alive — this is the
    canonical way compilers lose variables, and the reason gcc's -Og
    carves exceptions into its DCE (see the paper's refs [12], [13]).
    Bindings to deleted values are marked optimized-out. *)

let run ?(pure_calls = fun _ -> false) (fn : Ir.fn) =
  let changed = ref true in
  let dead_total = Hashtbl.create 16 in
  while !changed do
    changed := false;
    let counts = Putil.use_counts fn in
    let used r = Hashtbl.mem counts r in
    Ir.iter_blocks fn (fun b ->
        b.Ir.phis <-
          List.filter
            (fun (p : Ir.phi) ->
              if used p.Ir.p_dst then true
              else begin
                Hashtbl.replace dead_total p.Ir.p_dst ();
                changed := true;
                false
              end)
            b.Ir.phis;
        b.Ir.instrs <-
          List.filter
            (fun (i : Ir.instr) ->
              let defs = Ir.def_of_ikind i.Ir.ik in
              if
                Putil.pure_ikind ~pure_calls i.Ir.ik
                && not (List.exists used defs)
              then begin
                List.iter (fun d -> Hashtbl.replace dead_total d ()) defs;
                changed := true;
                false
              end
              else true)
            b.Ir.instrs)
  done;
  Putil.kill_bindings fn dead_total;
  Hashtbl.length dead_total

let run_program ?pure_calls (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run ?pure_calls fn)) p
