(** Branch probability and block frequency estimation
    (gcc [guess-branch-probability]).

    Purely analytical — it changes no code — but several consumers read
    its outputs: block placement chains by edge probability, the inliner
    weighs callsite hotness, and if-conversion avoids heavily-biased
    diamonds. Disabling it resets every probability to 0.5 and every
    frequency to 1, degrading all of those decisions; the debug effect
    measured for this pass in the paper is exactly this kind of indirect
    consequence.

    Heuristics (in gcc's spirit): back edges are taken with probability
    0.9; edges to return-only blocks are cold; equality comparisons are
    unlikely true; everything else is 0.5. Frequencies multiply 8x per
    loop-nest level. *)

let run (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let dom = Dom.compute fn in
  let loops = Loops.find fn dom in
  Ir.iter_blocks fn (fun b ->
      (match b.Ir.term with
      | Ir.Cbr (cond, l1, l2) ->
          let back l = Dom.dominates dom l b.Ir.b_label in
          let returns l =
            match (Ir.block fn l).Ir.term with Ir.Ret _ -> true | _ -> false
          in
          let p =
            if back l1 && not (back l2) then 0.9
            else if back l2 && not (back l1) then 0.1
            else if returns l1 && not (returns l2) then 0.25
            else if returns l2 && not (returns l1) then 0.75
            else
              (* Equality tests are usually false (gcc's opcode
                 heuristic). *)
              match cond with
              | Ir.Reg r ->
                  let defined_as_eq =
                    let found = ref false in
                    Ir.iter_instrs fn (fun _ i ->
                        match i.Ir.ik with
                        | Ir.Bin (Ir.Ceq, d, _, _) when d = r -> found := true
                        | _ -> ());
                    !found
                  in
                  if defined_as_eq then 0.3 else 0.5
              | Ir.Imm c -> if c <> 0 then 1.0 else 0.0
          in
          b.Ir.prob <- p
      | Ir.Br _ | Ir.Ret _ -> b.Ir.prob <- 1.0);
      b.Ir.freq <- 8.0 ** float_of_int (Loops.depth loops b.Ir.b_label))

(** Reset to the uninformed state (pass disabled). *)
let reset (fn : Ir.fn) =
  Ir.iter_blocks fn (fun b ->
      b.Ir.prob <- 0.5;
      b.Ir.freq <- 1.0)

let run_program (p : Ir.program) = Ir.iter_funcs run p
let reset_program (p : Ir.program) = Ir.iter_funcs reset p
