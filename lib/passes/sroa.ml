(** Scalar replacement of aggregates (clang [SROA]; gcc's equivalent SRA
    runs under the same implementation in our gcc pipeline, where it never
    reaches the top-10 ranking, matching the paper).

    Small local arrays accessed only through constant indices are split
    into scalar slots, which mem2reg then promotes into SSA values. The
    elements become anonymous — DWARF has no per-element home once the
    aggregate is gone (real compilers rarely recover full
    [DW_OP_piece] coverage) — so the array variable disappears from the
    debug info while every access gets register speed. *)

let max_elements = 4

let run (fn : Ir.fn) =
  let split = ref 0 in
  let candidates =
    List.filter
      (fun (s : Ir.slot) -> s.Ir.s_array && s.Ir.s_size <= max_elements)
      fn.Ir.f_slots
  in
  let const_indexed (s : Ir.slot) =
    let ok = ref true in
    Ir.iter_instrs fn (fun _ i ->
        match i.Ir.ik with
        | Ir.Load (_, { base = Ir.Slot id; index })
        | Ir.Store ({ base = Ir.Slot id; index }, _)
          when id = s.Ir.s_id -> (
            match index with
            | Ir.Imm n when n >= 0 && n < s.Ir.s_size -> ()
            | _ -> ok := false)
        | _ -> ());
    !ok
  in
  let new_ids = ref [] in
  List.iter
    (fun (s : Ir.slot) ->
      if const_indexed s then begin
        incr split;
        (* One anonymous scalar slot per element. *)
        let pieces =
          Array.init s.Ir.s_size (fun _ ->
              let piece = Ir.fresh_slot fn ~size:1 ~var:None ~array:false in
              new_ids := piece.Ir.s_id :: !new_ids;
              piece.Ir.s_id)
        in
        Ir.iter_instrs fn (fun _ i ->
            match i.Ir.ik with
            | Ir.Load (d, { base = Ir.Slot id; index = Ir.Imm n })
              when id = s.Ir.s_id ->
                i.Ir.ik <-
                  Ir.Load (d, { Ir.base = Ir.Slot pieces.(n); index = Ir.Imm 0 })
            | Ir.Store ({ base = Ir.Slot id; index = Ir.Imm n }, v)
              when id = s.Ir.s_id ->
                i.Ir.ik <-
                  Ir.Store ({ Ir.base = Ir.Slot pieces.(n); index = Ir.Imm 0 }, v)
            | _ -> ());
        fn.Ir.f_slots <-
          List.filter (fun (x : Ir.slot) -> x.Ir.s_id <> s.Ir.s_id) fn.Ir.f_slots
      end)
    candidates;
  if !new_ids <> [] then Mem2reg.run ~only:!new_ids fn;
  !split

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
