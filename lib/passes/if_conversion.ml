(** If-conversion (gcc [if-conversion]): small pure diamonds and triangles
    become straight-line code with [Select]s.

    The branch disappears (good when it is poorly predicted — the cost
    model charges taken branches), and the then/else statements are
    hoisted into the head block. Hoisted instructions drop their lines and
    the conditional debug bindings inside the branches cannot be kept
    (they would assert the wrong value on the other path); when both arms
    bound the same variable to the two select inputs, the variable is
    re-bound to the select result. *)

let default_max_arm_instrs = 3

let arm_convertible ~max_arm (b : Ir.block) =
  b.Ir.phis = []
  && List.length
       (List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.ik with Ir.Dbg _ -> false | _ -> true)
          b.Ir.instrs)
     <= max_arm
  && List.for_all
       (fun (i : Ir.instr) ->
         match i.Ir.ik with
         | Ir.Dbg _ -> true
         | Ir.Load _ -> false (* do not widen memory traffic *)
         | ik -> Putil.pure_ikind ik)
       b.Ir.instrs

(* Debug bindings of an arm, keyed by variable. *)
let arm_bindings (b : Ir.block) =
  List.filter_map
    (fun (i : Ir.instr) ->
      match i.Ir.ik with Ir.Dbg (v, Some o) -> Some (v, o) | _ -> None)
    b.Ir.instrs

let real_instrs (b : Ir.block) =
  List.filter
    (fun (i : Ir.instr) ->
      match i.Ir.ik with Ir.Dbg _ -> false | _ -> true)
    b.Ir.instrs

let run ?(max_arm = default_max_arm_instrs) (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  Ir.recompute_preds fn;
  let converted = ref 0 in
  List.iter
    (fun head_l ->
      match Hashtbl.find_opt fn.Ir.blocks head_l with
      | None -> ()
      | Some head -> (
          match head.Ir.term with
          | Ir.Cbr (cond, t_l, f_l) when t_l <> f_l -> (
              let t = Ir.block fn t_l and f = Ir.block fn f_l in
              let diamond =
                t.Ir.preds = [ head_l ] && f.Ir.preds = [ head_l ]
                && t.Ir.term = Ir.Br (match f.Ir.term with Ir.Br j -> j | _ -> -1)
                && arm_convertible ~max_arm t && arm_convertible ~max_arm f
              in
              let triangle_then =
                t.Ir.preds = [ head_l ]
                && t.Ir.term = Ir.Br f_l
                && arm_convertible ~max_arm t
              in
              match
                (if diamond then `Diamond
                 else if triangle_then then `Triangle
                 else `No)
              with
              | `Diamond ->
                  let join_l = match t.Ir.term with Ir.Br j -> j | _ -> assert false in
                  let join = Ir.block fn join_l in
                  if List.sort compare join.Ir.preds = List.sort compare [ t_l; f_l ]
                  then begin
                    (* Hoist both arms (lines dropped), then turn each
                       join phi into a select. *)
                    let hoist (arm : Ir.block) =
                      List.iter (fun (i : Ir.instr) -> i.Ir.line <- None)
                        (real_instrs arm);
                      head.Ir.instrs <- head.Ir.instrs @ real_instrs arm
                    in
                    hoist t;
                    hoist f;
                    let tb = arm_bindings t and fb = arm_bindings f in
                    let selects = ref [] in
                    List.iter
                      (fun (p : Ir.phi) ->
                        let vt =
                          Option.value ~default:(Ir.Imm 0)
                            (List.assoc_opt t_l p.Ir.p_args)
                        in
                        let vf =
                          Option.value ~default:(Ir.Imm 0)
                            (List.assoc_opt f_l p.Ir.p_args)
                        in
                        head.Ir.instrs <-
                          head.Ir.instrs
                          @ [
                              {
                                Ir.ik = Ir.Select (p.Ir.p_dst, cond, vt, vf);
                                line = None;
                              };
                            ];
                        (* Re-bind variables that both arms bound to the
                           select inputs. *)
                        List.iter
                          (fun (v, o) ->
                            if o = vt && List.assoc_opt v fb = Some vf then
                              selects :=
                                {
                                  Ir.ik = Ir.Dbg (v, Some (Ir.Reg p.Ir.p_dst));
                                  line = None;
                                }
                                :: !selects)
                          tb)
                      join.Ir.phis;
                    head.Ir.instrs <- head.Ir.instrs @ List.rev !selects;
                    join.Ir.phis <- [];
                    head.Ir.term <- Ir.Br join_l;
                    Hashtbl.remove fn.Ir.blocks t_l;
                    Hashtbl.remove fn.Ir.blocks f_l;
                    fn.Ir.layout <-
                      List.filter (fun x -> x <> t_l && x <> f_l) fn.Ir.layout;
                    Ir.recompute_preds fn;
                    incr converted
                  end
              | `Triangle ->
                  (* head -> t -> f and head -> f. *)
                  let join = f in
                  if
                    List.sort compare join.Ir.preds
                    = List.sort compare [ head_l; t_l ]
                  then begin
                    List.iter (fun (i : Ir.instr) -> i.Ir.line <- None)
                      (real_instrs t);
                    head.Ir.instrs <- head.Ir.instrs @ real_instrs t;
                    List.iter
                      (fun (p : Ir.phi) ->
                        let vt =
                          Option.value ~default:(Ir.Imm 0)
                            (List.assoc_opt t_l p.Ir.p_args)
                        in
                        let vh =
                          Option.value ~default:(Ir.Imm 0)
                            (List.assoc_opt head_l p.Ir.p_args)
                        in
                        head.Ir.instrs <-
                          head.Ir.instrs
                          @ [
                              {
                                Ir.ik = Ir.Select (p.Ir.p_dst, cond, vt, vh);
                                line = None;
                              };
                            ])
                      join.Ir.phis;
                    join.Ir.phis <- [];
                    head.Ir.term <- Ir.Br f_l;
                    Hashtbl.remove fn.Ir.blocks t_l;
                    fn.Ir.layout <- List.filter (fun x -> x <> t_l) fn.Ir.layout;
                    Ir.recompute_preds fn;
                    incr converted
                  end
              | `No -> ())
          | _ -> ()))
    fn.Ir.layout;
  if !converted > 0 then Cleanup.run fn;
  !converted

let run_program ?max_arm (p : Ir.program) =
  Ir.iter_funcs (fun fn -> ignore (run ?max_arm fn)) p
