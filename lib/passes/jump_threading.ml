(** Jump threading (gcc [thread-jumps], clang [JumpThreading]).

    When a block's conditional branch is decided on some incoming edge,
    that predecessor is retargeted straight to the decided destination,
    skipping the test. Two ways an edge decides the branch:

    - a phi argument that is a constant (possibly through one comparison
      of the phi against a constant);
    - a {e dominating condition}: the predecessor itself just branched on
      a comparison of the same register, so on the taken edge the value
      is known (the classic if-chain case, [if (x==1) ... if (x==2)]).

    Values the threaded block defines for code below it are repaired with
    new phis at the destination (the SSA-updater part of real jump
    threading). The threaded edge bypasses the block's debug bindings and
    the new join splits location ranges — the mechanical losses behind
    this pass's high ranking in the paper. *)

(* The comparison (if any) defining a block's branch condition. *)
let cond_cmp (fn : Ir.fn) (b : Ir.block) =
  match b.Ir.term with
  | Ir.Cbr (Ir.Reg r, _, _) ->
      let found = ref None in
      Ir.iter_instrs fn (fun _ i ->
          match i.Ir.ik with
          | Ir.Bin (op, d, Ir.Reg x, Ir.Imm c) when d = r ->
              found := Some (op, x, c)
          | _ -> ());
      !found
  | _ -> None

(* Walk [pred]'s dominator chain for a conditional branch on a
   comparison of [x] with a constant whose taken edge dominates [pred]:
   the strongest fact about [x] that necessarily holds on entry. *)
let dominating_fact (fn : Ir.fn) dom pred x =
  (* A fact established on edge D->T holds at [pred] when T dominates
     [pred] AND T's only predecessor is D — then every path to [pred]
     entered T through that very edge. (T merely dominating [pred] is
     not enough: T reachable from elsewhere would launder the fact.) *)
  let edge_holds d t =
    Dom.dominates dom t pred && (Ir.block fn t).Ir.preds = [ d ]
  in
  let rec up l =
    match Dom.idom dom l with
    | None -> None
    | Some d -> (
        let db = Ir.block fn d in
        match (cond_cmp fn db, db.Ir.term) with
        | Some (pop, px, pc), Ir.Cbr (_, pt, pf) when px = x && pt <> pf ->
            if edge_holds d pt then Some (pop, pc, true)
            else if edge_holds d pf then Some (pop, pc, false)
            else up d
        | _ -> up d)
  in
  Ir.recompute_preds fn;
  up pred

(* What does entering [b] from [pred] tell us about [b]'s branch
   condition? *)
let eval_cond_for_pred (fn : Ir.fn) dom (b : Ir.block) pred =
  let phi_value r =
    List.find_map
      (fun (p : Ir.phi) ->
        if p.Ir.p_dst = r then
          match List.assoc_opt pred p.Ir.p_args with
          | Some (Ir.Imm n) -> Some n
          | _ -> None
        else None)
      b.Ir.phis
  in
  match b.Ir.term with
  | Ir.Cbr (Ir.Imm n, _, _) -> Some n
  | Ir.Cbr (Ir.Reg r, _, _) -> (
      match phi_value r with
      | Some n -> Some n
      | None -> (
          (* Through one comparison of a phi with a constant... *)
          let via_phi_cmp =
            match cond_cmp fn b with
            | Some (op, x, c) -> (
                match phi_value x with
                | Some v -> Some (Ir.eval_binop op v c)
                | None -> None)
            | None -> None
          in
          match via_phi_cmp with
          | Some v -> Some v
          | None -> (
              (* ... or through a dominating condition on the same
                 register: either the predecessor's own branch (the edge
                 chooses), or any comparison on a dominator whose taken
                 edge dominates the predecessor (the if-chain case). *)
              match cond_cmp fn b with
              | None -> None
              | Some (op, x, c) -> (
                  let apply (pop, pc, on_true) =
                    if (on_true && pop = Ir.Ceq) || ((not on_true) && pop = Ir.Cne)
                    then (* x = pc exactly *)
                      Some (Ir.eval_binop op pc c)
                    else if
                      (* x known != pc: decides equality tests against
                         that same constant. *)
                      ((on_true && pop = Ir.Cne)
                      || ((not on_true) && pop = Ir.Ceq))
                      && op = Ir.Ceq && c = pc
                    then Some 0
                    else None
                  in
                  let via_pred_branch =
                    match Hashtbl.find_opt fn.Ir.blocks pred with
                    | Some pb -> (
                        match (cond_cmp fn pb, pb.Ir.term) with
                        | Some (pop, px, pc), Ir.Cbr (_, pt, pf)
                          when px = x && pt <> pf ->
                            if b.Ir.b_label = pt then apply (pop, pc, true)
                            else if b.Ir.b_label = pf then apply (pop, pc, false)
                            else None
                        | _ -> None)
                    | None -> None
                  in
                  match via_pred_branch with
                  | Some v -> Some v
                  | None -> (
                      match dominating_fact fn dom pred x with
                      | Some fact -> apply fact
                      | None -> None)))))
  | Ir.Br _ | Ir.Ret _ -> None

(* Threadable block shape: phis, debug bindings, and pure computations
   feeding only the branch condition. *)
let threadable_block (b : Ir.block) counts =
  List.for_all
    (fun (i : Ir.instr) ->
      match i.Ir.ik with
      | Ir.Dbg _ -> true
      | Ir.Bin (_, d, _, _) when Putil.pure_ikind i.Ir.ik ->
          (match b.Ir.term with
          | Ir.Cbr (Ir.Reg c, _, _) when c = d ->
              Hashtbl.find_opt counts d = Some 1
          | _ -> false)
      | _ -> false)
    b.Ir.instrs

(* Uses of [r] outside block [b], classified against [target]'s
   pre-threading dominance region: `Inside (substitutable), `Keep (still
   dominated by b's region, untouched), or `Unsafe. *)
let classify_uses (fn : Ir.fn) dom ~b_label ~target r =
  let reachable_from_target =
    let seen = Hashtbl.create 16 in
    let rec go l =
      if not (Hashtbl.mem seen l) then begin
        Hashtbl.replace seen l ();
        List.iter go (Ir.succs (Ir.block fn l).Ir.term)
      end
    in
    go target;
    seen
  in
  let unsafe = ref false in
  let used_inside = ref false in
  Ir.iter_blocks fn (fun ob ->
      if ob.Ir.b_label <> b_label then begin
        let classify_block ub =
          if Dom.dominates dom target ub then used_inside := true
          else if Hashtbl.mem reachable_from_target ub then unsafe := true
        in
        let check_in ub rr = if rr = r then classify_block ub in
        List.iter
          (fun (i : Ir.instr) ->
            List.iter (check_in ob.Ir.b_label) (Ir.real_uses_of_ikind i.Ir.ik))
          ob.Ir.instrs;
        List.iter (check_in ob.Ir.b_label) (Ir.term_uses ob.Ir.term);
        (* Phi-argument uses are attributed to the contributing pred. *)
        List.iter
          (fun (p : Ir.phi) ->
            List.iter
              (fun (pl, o) ->
                if pl <> b_label then
                  List.iter (check_in pl) (Ir.operand_uses o))
              p.Ir.p_args)
          ob.Ir.phis
      end);
  if !unsafe then `Unsafe else if !used_inside then `Inside else `Keep

let run (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let threaded = ref 0 in
  let counts = Putil.use_counts fn in
  let labels = fn.Ir.layout in
  List.iter
    (fun l ->
      match Hashtbl.find_opt fn.Ir.blocks l with
      | None -> ()
      | Some b -> (
          match b.Ir.term with
          | Ir.Cbr (_, t1, t2)
            when l <> fn.Ir.entry && t1 <> l && t2 <> l
                 && threadable_block b counts ->
              Ir.recompute_preds fn;
              List.iter
                (fun pred ->
                  let dom = Dom.compute fn in
                  match eval_cond_for_pred fn dom b pred with
                  | Some v
                    when pred <> l && Hashtbl.mem fn.Ir.blocks pred
                         && Hashtbl.mem fn.Ir.blocks l -> (
                      let target = if v <> 0 then t1 else t2 in
                      let resolve_through o =
                        match o with
                        | Ir.Reg r -> (
                            match
                              List.find_map
                                (fun (p : Ir.phi) ->
                                  if p.Ir.p_dst = r then
                                    List.assoc_opt pred p.Ir.p_args
                                  else None)
                                b.Ir.phis
                            with
                            | Some value -> value
                            | None -> o)
                        | Ir.Imm _ -> o
                      in
                      (* Values of b consumed below: phi dsts used outside
                         b. The cond computation is consumed by the branch
                         only (threadable_block). *)
                      let escaped =
                        List.filter
                          (fun (p : Ir.phi) ->
                            classify_uses fn dom ~b_label:l ~target p.Ir.p_dst
                            <> `Keep)
                          b.Ir.phis
                      in
                      let tb0 = Ir.block fn target in
                      let already_edge0 = List.mem pred tb0.Ir.preds in
                      let repairs_ok =
                        target <> l
                        (* A pre-existing direct edge from this pred can
                           carry only one phi value; bail if a repair
                           would need two. *)
                        && (not (already_edge0 && escaped <> []))
                        (* A repair phi's argument for a target pred
                           other than the new edge is the escaped value
                           itself, defined in [l] — only valid if [l]
                           dominates that pred. The new edge
                           pred->target can itself break that dominance
                           (a path now bypasses [l]), so probe the CFG
                           as it will be after retargeting. *)
                        && (escaped = []
                           || begin
                                let pb = Ir.block fn pred in
                                let saved = pb.Ir.term in
                                let redirect x = if x = l then target else x in
                                pb.Ir.term <-
                                  (match saved with
                                  | Ir.Br x -> Ir.Br (redirect x)
                                  | Ir.Cbr (c, x, y) ->
                                      Ir.Cbr (c, redirect x, redirect y)
                                  | Ir.Ret _ as t -> t);
                                Ir.recompute_preds fn;
                                let dom2 = Dom.compute fn in
                                let ok =
                                  List.for_all
                                    (fun tp ->
                                      tp = pred || Dom.dominates dom2 l tp)
                                    (Ir.block fn target).Ir.preds
                                in
                                pb.Ir.term <- saved;
                                Ir.recompute_preds fn;
                                ok
                              end)
                        && List.for_all
                             (fun (p : Ir.phi) ->
                               classify_uses fn dom ~b_label:l ~target
                                 p.Ir.p_dst
                               <> `Unsafe)
                             b.Ir.phis
                        (* The repair phi needs one argument per
                           existing pred of the target plus the new
                           edge; target phis must not already have an
                           edge from this pred with a different value. *)
                        && (let tb = Ir.block fn target in
                            (not (List.mem pred tb.Ir.preds))
                            || List.for_all
                                 (fun (p : Ir.phi) ->
                                   match
                                     ( List.assoc_opt pred p.Ir.p_args,
                                       List.assoc_opt l p.Ir.p_args )
                                   with
                                   | Some existing, Some via_b ->
                                       existing = resolve_through via_b
                                   | _ -> true)
                                 tb.Ir.phis)
                      in
                      if repairs_ok then begin
                        let tb = Ir.block fn target in
                        let already_edge = List.mem pred tb.Ir.preds in
                        (* Extend the target's existing phis with the new
                           edge's value. *)
                        List.iter
                          (fun (p : Ir.phi) ->
                            match List.assoc_opt l p.Ir.p_args with
                            | Some via_b ->
                                if not (List.mem_assoc pred p.Ir.p_args) then
                                  p.Ir.p_args <-
                                    (pred, resolve_through via_b) :: p.Ir.p_args
                            | None -> ())
                          tb.Ir.phis;
                        (* Repair escaped values with new phis at the
                           target. *)
                        let subst = Hashtbl.create 4 in
                        List.iter
                          (fun (p : Ir.phi) ->
                            let x = p.Ir.p_dst in
                            let fresh = Ir.fresh_reg fn in
                            let args =
                              List.map
                                (fun tp ->
                                  if tp = pred && not already_edge then
                                    (tp, resolve_through (Ir.Reg x))
                                  else (tp, Ir.Reg x))
                                tb.Ir.preds
                            in
                            let args =
                              if already_edge then args
                              else if List.mem_assoc pred args then args
                              else (pred, resolve_through (Ir.Reg x)) :: args
                            in
                            tb.Ir.phis <-
                              tb.Ir.phis @ [ { Ir.p_dst = fresh; p_args = args } ];
                            Hashtbl.replace subst x (Ir.Reg fresh))
                          escaped;
                        (* Substitute escaped uses in target-dominated
                           blocks. *)
                        if Hashtbl.length subst > 0 then
                          Ir.iter_blocks fn (fun ob ->
                              let dominated ub = Dom.dominates dom target ub in
                              if
                                ob.Ir.b_label <> l
                                && ob.Ir.b_label <> target
                                && dominated ob.Ir.b_label
                              then begin
                                List.iter
                                  (fun (i : Ir.instr) ->
                                    i.Ir.ik <-
                                      Ir.subst_uses (Hashtbl.find_opt subst)
                                        i.Ir.ik)
                                  ob.Ir.instrs;
                                ob.Ir.term <-
                                  Ir.subst_term (Hashtbl.find_opt subst) ob.Ir.term
                              end;
                              (* Phi args contributed by dominated preds
                                 (including the target itself, whose end
                                 is past the repair phi) — except the
                                 target's own entry phis, whose args from
                                 non-dominated preds stay. *)
                              List.iter
                                (fun (p : Ir.phi) ->
                                  p.Ir.p_args <-
                                    List.map
                                      (fun (pl, o) ->
                                        if pl <> l && dominated pl then
                                          ( pl,
                                            Ir.subst_operand
                                              (Hashtbl.find_opt subst) o )
                                        else (pl, o))
                                      p.Ir.p_args)
                                ob.Ir.phis);
                        (* Instructions in the target itself (after its
                           phis) are dominated by it too. *)
                        (if Hashtbl.length subst > 0 then begin
                           List.iter
                             (fun (i : Ir.instr) ->
                               i.Ir.ik <-
                                 Ir.subst_uses (Hashtbl.find_opt subst) i.Ir.ik)
                             tb.Ir.instrs;
                           tb.Ir.term <-
                             Ir.subst_term (Hashtbl.find_opt subst) tb.Ir.term
                         end);
                        (* Finally retarget the predecessor and drop its
                           entries from the threaded block's phis. *)
                        let pb = Ir.block fn pred in
                        let redirect x = if x = l then target else x in
                        pb.Ir.term <-
                          (match pb.Ir.term with
                          | Ir.Br x -> Ir.Br (redirect x)
                          | Ir.Cbr (c, x, y) -> Ir.Cbr (c, redirect x, redirect y)
                          | Ir.Ret _ as t -> t);
                        List.iter
                          (fun (p : Ir.phi) ->
                            p.Ir.p_args <-
                              List.filter (fun (pl, _) -> pl <> pred) p.Ir.p_args)
                          b.Ir.phis;
                        Ir.recompute_preds fn;
                        incr threaded
                      end)
                  | _ -> ())
                b.Ir.preds
          | _ -> ()))
    labels;
  if !threaded > 0 then begin
    Ir.recompute_preds fn;
    Cleanup.run fn
  end;
  !threaded

let run_program (p : Ir.program) = Ir.iter_funcs (fun fn -> ignore (run fn)) p
