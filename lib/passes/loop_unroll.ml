(** Loop unrolling (clang [LoopUnroll]; part of gcc's O3 loop work).

    Operates on single-block self-loops — the shape simple inner loops
    take after rotation and CFG cleanup. The body is duplicated with a
    fresh exit test, halving the number of taken back-edges; the copy
    keeps its source lines (so line entries duplicate, as real unrolling
    does) and its remapped debug bindings. *)

let unroll_block (fn : Ir.fn) (l : Ir.label) =
  let b = Ir.block fn l in
  match b.Ir.term with
  | Ir.Cbr (cond, t1, t2) when (t1 = l) <> (t2 = l) ->
      let exit_l = if t1 = l then t2 else t1 in
      let continue_if_true = t1 = l in
      let body_size =
        List.length
          (List.filter
             (fun (i : Ir.instr) ->
               match i.Ir.ik with Ir.Dbg _ -> false | _ -> true)
             b.Ir.instrs)
      in
      if body_size > 30 then false
      else begin
        (* ---- escape analysis, before any mutation ----
           Loop definitions used outside need a merge phi in the exit
           block, and that phi must cover EVERY exit-block predecessor:
           - the loop and its copy carry the two iterations' values;
           - a pred on a cycle through the exit (e.g. a sibling inner
             loop) carries the previous merge — the phi's own value —
             which is valid SSA only if the exit dominates that pred;
           - an entry-side pred (a loop guard's bypass edge) can never
             carry an observable value (any path from it to a use must
             re-enter this loop and re-cross the exit), so it gets a
             dead 0.
           Bail out entirely when the self-referential case would break
           dominance. *)
        let loop_defs =
          List.map (fun (p : Ir.phi) -> p.Ir.p_dst) b.Ir.phis
          @ List.concat_map
              (fun (i : Ir.instr) -> Ir.def_of_ikind i.Ir.ik)
              b.Ir.instrs
        in
        let used_outside_loop d =
          let found = ref false in
          Ir.iter_blocks fn (fun ob ->
              if ob.Ir.b_label <> l then begin
                let check r = if r = d then found := true in
                List.iter
                  (fun (q : Ir.phi) ->
                    List.iter
                      (fun (pl, o) ->
                        if pl <> l then List.iter check (Ir.operand_uses o))
                      q.Ir.p_args)
                  ob.Ir.phis;
                List.iter
                  (fun (i : Ir.instr) ->
                    List.iter check (Ir.uses_of_ikind i.Ir.ik))
                  ob.Ir.instrs;
                List.iter check (Ir.term_uses ob.Ir.term)
              end);
          !found
        in
        let escaping = List.filter used_outside_loop loop_defs in
        let exit_extra_preds =
          Hashtbl.fold
            (fun pl (pb : Ir.block) acc ->
              if pl <> l && List.mem exit_l (Ir.succs pb.Ir.term) then
                pl :: acc
              else acc)
            fn.Ir.blocks []
          |> List.sort compare
        in
        let reach_exit = Hashtbl.create 16 in
        let rec mark x =
          if not (Hashtbl.mem reach_exit x) then begin
            Hashtbl.replace reach_exit x ();
            match Hashtbl.find_opt fn.Ir.blocks x with
            | Some xb -> List.iter mark (Ir.succs xb.Ir.term)
            | None -> ()
          end
        in
        mark exit_l;
        let escape_plan_ok =
          escaping = [] || exit_extra_preds = []
          || begin
               Ir.recompute_preds fn;
               let dom = Dom.compute fn in
               List.for_all
                 (fun p ->
                   (not (Hashtbl.mem reach_exit p))
                   || Dom.dominates dom exit_l p)
                 exit_extra_preds
             end
        in
        if not escape_plan_ok then false
        else begin
        let map : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
        (* Iteration-1 values of the phis are their back-edge arguments. *)
        List.iter
          (fun (p : Ir.phi) ->
            match List.assoc_opt l p.Ir.p_args with
            | Some v -> Hashtbl.replace map p.Ir.p_dst v
            | None -> ())
          b.Ir.phis;
        let l2 = Ir.new_block fn in
        let fresh_def r =
          let r' = Ir.fresh_reg fn in
          Hashtbl.replace map r (Ir.Reg r');
          r'
        in
        l2.Ir.instrs <-
          List.map
            (fun (i : Ir.instr) ->
              {
                Ir.ik =
                  Putil.clone_ikind ~fresh_def ~map_use:(Hashtbl.find_opt map)
                    i.Ir.ik;
                line = i.Ir.line;
              })
            b.Ir.instrs;
        let cond2 = Ir.subst_operand (Hashtbl.find_opt map) cond in
        l2.Ir.term <-
          (if continue_if_true then Ir.Cbr (cond2, l, exit_l)
           else Ir.Cbr (cond2, exit_l, l));
        l2.Ir.term_line <- b.Ir.term_line;
        l2.Ir.freq <- b.Ir.freq /. 2.0;
        b.Ir.term <-
          (if continue_if_true then Ir.Cbr (cond, l2.Ir.b_label, exit_l)
           else Ir.Cbr (cond, exit_l, l2.Ir.b_label));
        (* The loop phis' back edge now comes from the copy, carrying the
           remapped (iteration-2) values. *)
        List.iter
          (fun (p : Ir.phi) ->
            p.Ir.p_args <-
              List.map
                (fun (pl, o) ->
                  if pl = l then
                    (l2.Ir.b_label, Ir.subst_operand (Hashtbl.find_opt map) o)
                  else (pl, o))
                p.Ir.p_args)
          b.Ir.phis;
        (* The exit block gains a second incoming edge from the copy. *)
        List.iter
          (fun (p : Ir.phi) ->
            match List.assoc_opt l p.Ir.p_args with
            | Some v ->
                p.Ir.p_args <-
                  p.Ir.p_args
                  @ [ (l2.Ir.b_label, Ir.subst_operand (Hashtbl.find_opt map) v) ]
            | None -> ())
          (Ir.block fn exit_l).Ir.phis;
        (* Merge the two iterations' values of every escaping definition
           in the exit block, per the pre-mutation escape plan. *)
        let escape_subst = Hashtbl.create 4 in
        let outside_block ob =
          ob.Ir.b_label <> l && ob.Ir.b_label <> l2.Ir.b_label
        in
        List.iter
          (fun d ->
            let merged = Ir.fresh_reg fn in
            let from_copy =
              Ir.subst_operand (Hashtbl.find_opt map) (Ir.Reg d)
            in
            (Ir.block fn exit_l).Ir.phis <-
              (Ir.block fn exit_l).Ir.phis
              @ [
                  {
                    Ir.p_dst = merged;
                    p_args =
                      [ (l, Ir.Reg d); (l2.Ir.b_label, from_copy) ]
                      @ List.map
                          (fun pl ->
                            ( pl,
                              if Hashtbl.mem reach_exit pl then Ir.Reg merged
                              else Ir.Imm 0 ))
                          exit_extra_preds;
                  };
                ];
            Hashtbl.replace escape_subst d (Ir.Reg merged))
          escaping;
        if Hashtbl.length escape_subst > 0 then
          Ir.iter_blocks fn (fun ob ->
              if outside_block ob then begin
                List.iter
                  (fun (q : Ir.phi) ->
                    q.Ir.p_args <-
                      List.map
                        (fun (pl, o) ->
                          if pl = l || pl = l2.Ir.b_label then (pl, o)
                          else
                            (pl, Ir.subst_operand (Hashtbl.find_opt escape_subst) o))
                        q.Ir.p_args)
                  ob.Ir.phis;
                List.iter
                  (fun (i : Ir.instr) ->
                    i.Ir.ik <-
                      Ir.subst_uses (Hashtbl.find_opt escape_subst) i.Ir.ik)
                  ob.Ir.instrs;
                ob.Ir.term <-
                  Ir.subst_term (Hashtbl.find_opt escape_subst) ob.Ir.term
              end);
        (* Place the copy right after the original. *)
        fn.Ir.layout <-
          List.concat_map
            (fun x ->
              if x = l then [ l; l2.Ir.b_label ]
              else if x = l2.Ir.b_label then []
              else [ x ])
            fn.Ir.layout;
        Ir.recompute_preds fn;
        true
        end
      end
  | _ -> false

(** [run fn ~factor] unrolls every single-block self-loop; [factor] 4
    applies the doubling twice to the innermost candidates. *)
let run (fn : Ir.fn) ~factor =
  Ir.prune_unreachable fn;
  let times = if factor >= 4 then 2 else 1 in
  let total = ref 0 in
  for _ = 1 to times do
    let selfloops =
      List.filter
        (fun l ->
          match Hashtbl.find_opt fn.Ir.blocks l with
          | Some b -> List.mem l (Ir.succs b.Ir.term)
          | None -> false)
        fn.Ir.layout
    in
    List.iter (fun l -> if unroll_block fn l then incr total) selfloops
  done;
  !total
