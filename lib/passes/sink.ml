(** Code sinking (gcc [tree-sink]; the same engine serves clang's
    [Machine code sinking] at the IR level just before the backend).

    A pure instruction whose results are used in exactly one block other
    than its own is moved to the head of that block, provided the
    destination is dominated by the definition and the instruction has no
    memory or ordering constraints. Paths that never reach the use no
    longer execute the instruction (the performance win); the moved
    instruction drops its line (compilers deliberately strip locations on
    cross-block motion to avoid erratic stepping), and any binding of its
    value starts later — both measurable losses. *)

let run (fn : Ir.fn) =
  Ir.prune_unreachable fn;
  let moved = ref 0 in
  let dom = Dom.compute fn in
  let loops = Loops.find fn dom in
  (* Map register -> blocks using it (phis count as uses in the
     predecessor contributing the value). *)
  let use_blocks : (Ir.reg, int list ref) Hashtbl.t = Hashtbl.create 64 in
  let add_use r l =
    match Hashtbl.find_opt use_blocks r with
    | Some refs -> if not (List.mem l !refs) then refs := l :: !refs
    | None -> Hashtbl.replace use_blocks r (ref [ l ])
  in
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (p : Ir.phi) ->
          List.iter
            (fun (pl, o) -> List.iter (fun r -> add_use r pl) (Ir.operand_uses o))
            p.Ir.p_args)
        b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun r -> add_use r b.Ir.b_label)
            (Ir.real_uses_of_ikind i.Ir.ik))
        b.Ir.instrs;
      List.iter (fun r -> add_use r b.Ir.b_label) (Ir.term_uses b.Ir.term));
  Ir.iter_blocks fn (fun b ->
      let sunk = ref [] in
      b.Ir.instrs <-
        List.filter
          (fun (i : Ir.instr) ->
            match i.Ir.ik with
            | Ir.Load _ | Ir.Dbg _ -> true (* loads are order-sensitive *)
            | ik when Putil.pure_ikind ik -> (
                match Ir.def_of_ikind ik with
                | [ d ] -> (
                    match Hashtbl.find_opt use_blocks d with
                    | Some { contents = [ target ] }
                      when target <> b.Ir.b_label
                           && Dom.dominates dom b.Ir.b_label target
                           && Loops.depth loops target
                              <= Loops.depth loops b.Ir.b_label ->
                        (* Never sink *into* a loop (it would execute more
                           often); sinking to equal/shallower depth only. *)
                        sunk := (target, i) :: !sunk;
                        incr moved;
                        false
                    | _ -> true)
                | _ -> true)
            | _ -> true)
          b.Ir.instrs;
      List.iter
        (fun (target, (i : Ir.instr)) ->
          i.Ir.line <- None;
          let tb = Ir.block fn target in
          tb.Ir.instrs <- i :: tb.Ir.instrs)
        (List.rev !sunk))

let run_program (p : Ir.program) = Ir.iter_funcs run p
