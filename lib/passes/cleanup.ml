(** CFG cleanup, run between passes in both pipelines (not toggleable —
    every production compiler interleaves equivalent canonicalization).

    Kept deliberately debug-friendly: merging a straight-line pair keeps
    every line; a trivial phi forwards its operand everywhere including
    debug bindings. The only loss here is dropping the debug bindings of
    an empty forwarding block that cannot be moved into a multi-pred
    successor — rare and tiny. *)

let trivial_phis (fn : Ir.fn) =
  let changed = ref true in
  while !changed do
    changed := false;
    let map = Hashtbl.create 8 in
    Ir.iter_blocks fn (fun b ->
        b.Ir.phis <-
          List.filter
            (fun (p : Ir.phi) ->
              let distinct =
                List.sort_uniq compare
                  (List.filter (fun o -> o <> Ir.Reg p.Ir.p_dst)
                     (List.map snd p.Ir.p_args))
              in
              match distinct with
              | [ one ] ->
                  Hashtbl.replace map p.Ir.p_dst one;
                  changed := true;
                  false
              | _ -> true)
            b.Ir.phis);
    if Hashtbl.length map > 0 then Putil.replace_uses fn map
  done

(* Merge [b] with its unique successor [s] when [s]'s unique predecessor
   is [b] and [s] has no phis. *)
let merge_pairs (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let changed = ref true in
  while !changed do
    changed := false;
    let labels = fn.Ir.layout in
    List.iter
      (fun l ->
        match Hashtbl.find_opt fn.Ir.blocks l with
        | None -> ()
        | Some b -> (
            match b.Ir.term with
            | Ir.Br s when s <> l -> (
                match Hashtbl.find_opt fn.Ir.blocks s with
                | Some sb
                  when sb.Ir.preds = [ l ] && sb.Ir.phis = [] && s <> fn.Ir.entry
                  ->
                    b.Ir.instrs <- b.Ir.instrs @ sb.Ir.instrs;
                    b.Ir.term <- sb.Ir.term;
                    b.Ir.term_line <- sb.Ir.term_line;
                    Hashtbl.remove fn.Ir.blocks s;
                    fn.Ir.layout <- List.filter (fun x -> x <> s) fn.Ir.layout;
                    (* Successors' phis referring to s now come from b. *)
                    List.iter
                      (fun succ ->
                        match Hashtbl.find_opt fn.Ir.blocks succ with
                        | Some tb ->
                            List.iter
                              (fun (p : Ir.phi) ->
                                p.Ir.p_args <-
                                  List.map
                                    (fun (pl, o) ->
                                      if pl = s then (l, o) else (pl, o))
                                    p.Ir.p_args)
                              tb.Ir.phis
                        | None -> ())
                      (Ir.succs b.Ir.term);
                    Ir.recompute_preds fn;
                    changed := true
                | _ -> ())
            | _ -> ()))
      labels
  done

(* Remove blocks that only forward ([Br t], no instructions except debug
   bindings, no phis), rerouting predecessors straight to the target. *)
let remove_forwarders (fn : Ir.fn) =
  Ir.recompute_preds fn;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun l ->
        match Hashtbl.find_opt fn.Ir.blocks l with
        | None -> ()
        | Some b -> (
            let only_dbg =
              List.for_all
                (fun (i : Ir.instr) ->
                  match i.Ir.ik with Ir.Dbg _ -> true | _ -> false)
                b.Ir.instrs
            in
            match b.Ir.term with
            | Ir.Br t
              when only_dbg && b.Ir.phis = [] && t <> l && l <> fn.Ir.entry ->
                let tb = Ir.block fn t in
                (* If the target has phis, rerouting is only safe when
                   each pred gets the value the forwarder would have
                   passed — that value is the forwarder's own incoming
                   one, identical for every pred, so it is safe; but the
                   target must not already have an edge from a pred
                   (duplicate phi entries). *)
                let pred_conflict =
                  List.exists (fun p -> List.mem p tb.Ir.preds) b.Ir.preds
                  && tb.Ir.phis <> []
                in
                if not pred_conflict then begin
                  (* Move the debug bindings into the target when it has a
                     single predecessor (us); otherwise they are dropped —
                     a small real loss. *)
                  (if tb.Ir.preds = [ l ] then
                     tb.Ir.instrs <-
                       List.filter
                         (fun (i : Ir.instr) ->
                           match i.Ir.ik with Ir.Dbg _ -> true | _ -> false)
                         b.Ir.instrs
                       @ tb.Ir.instrs);
                  List.iter
                    (fun p ->
                      let pb = Ir.block fn p in
                      let redirect x = if x = l then t else x in
                      pb.Ir.term <-
                        (match pb.Ir.term with
                        | Ir.Br x -> Ir.Br (redirect x)
                        | Ir.Cbr (c, x, y) -> Ir.Cbr (c, redirect x, redirect y)
                        | Ir.Ret _ as r -> r))
                    b.Ir.preds;
                  (* Target phis: replace the edge from the forwarder with
                     edges from each pred carrying the same value. *)
                  List.iter
                    (fun (p : Ir.phi) ->
                      match List.assoc_opt l p.Ir.p_args with
                      | Some v ->
                          p.Ir.p_args <-
                            List.filter (fun (pl, _) -> pl <> l) p.Ir.p_args
                            @ List.map (fun pred -> (pred, v)) b.Ir.preds
                      | None -> ())
                    tb.Ir.phis;
                  Hashtbl.remove fn.Ir.blocks l;
                  fn.Ir.layout <- List.filter (fun x -> x <> l) fn.Ir.layout;
                  Ir.recompute_preds fn;
                  changed := true
                end
            | _ -> ()))
      fn.Ir.layout
  done

(** Fold conditional branches with constant or equal-target conditions. *)
let fold_branches (fn : Ir.fn) =
  Ir.iter_blocks fn (fun b ->
      match b.Ir.term with
      | Ir.Cbr (Ir.Imm c, l1, l2) ->
          let dead = if c <> 0 then l2 else l1 in
          let live = if c <> 0 then l1 else l2 in
          (* Remove the dead edge's phi entries. *)
          (match Hashtbl.find_opt fn.Ir.blocks dead with
          | Some db when dead <> live ->
              List.iter
                (fun (p : Ir.phi) ->
                  p.Ir.p_args <-
                    List.filter (fun (pl, _) -> pl <> b.Ir.b_label) p.Ir.p_args)
                db.Ir.phis
          | _ -> ());
          b.Ir.term <- Ir.Br live
      | Ir.Cbr (c, l1, l2) when l1 = l2 ->
          ignore c;
          b.Ir.term <- Ir.Br l1
      | _ -> ())

(* Phis never consumed by real code are structural residue of SSA
   construction and pass rewrites; every compiler sweeps them outside
   any toggleable pass. Debug bindings referencing them go optimized-out
   (this loss belongs to whichever pass orphaned the phi). *)
let dead_phis (fn : Ir.fn) =
  let changed = ref true in
  let killed = Hashtbl.create 8 in
  while !changed do
    changed := false;
    let counts = Putil.use_counts fn in
    Ir.iter_blocks fn (fun b ->
        b.Ir.phis <-
          List.filter
            (fun (p : Ir.phi) ->
              if Hashtbl.mem counts p.Ir.p_dst then true
              else begin
                Hashtbl.replace killed p.Ir.p_dst ();
                changed := true;
                false
              end)
            b.Ir.phis)
  done;
  Putil.kill_bindings fn killed

(* Debug bindings whose register no longer has a definition anywhere in
   the function — its block was pruned as unreachable, or a pass deleted
   the value without rewriting debug uses — go optimized-out, the same
   way LLVM turns the dbg.value users of a deleted instruction into
   undef. Real uses of such registers would be a pass bug (the verifier
   rejects them); debug uses are the supported, lossy case. *)
let orphaned_dbg (fn : Ir.fn) =
  let defined = Hashtbl.create 64 in
  List.iter (fun (r, _) -> Hashtbl.replace defined r ()) fn.Ir.f_params;
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (p : Ir.phi) -> Hashtbl.replace defined p.Ir.p_dst ())
        b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          List.iter
            (fun d -> Hashtbl.replace defined d ())
            (Ir.def_of_ikind i.Ir.ik))
        b.Ir.instrs);
  Ir.iter_blocks fn (fun b ->
      List.iter
        (fun (i : Ir.instr) ->
          match i.Ir.ik with
          | Ir.Dbg (v, Some o)
            when List.exists
                   (fun r -> not (Hashtbl.mem defined r))
                   (Ir.operand_uses o) ->
              i.Ir.ik <- Ir.Dbg (v, None)
          | _ -> ())
        b.Ir.instrs)

(** The full cleanup: run to a fixpoint of the component rewrites. *)
let run (fn : Ir.fn) =
  fold_branches fn;
  Ir.prune_unreachable fn;
  trivial_phis fn;
  remove_forwarders fn;
  merge_pairs fn;
  trivial_phis fn;
  dead_phis fn;
  Ir.prune_unreachable fn;
  orphaned_dbg fn

let run_program (p : Ir.program) = Ir.iter_funcs run p
