(** The inliner.

    Inlined instructions keep their source lines and the callee's
    variables are re-announced with debug bindings at the inlined entry
    (our [DW_TAG_inlined_subroutine] analog), so inlining by itself is
    nearly debug-neutral — the heavy loss the paper attributes to the
    inliner arises downstream, when CSE/DCE/merging chew through the
    freshly exposed code. That indirect dynamic is reproduced here
    mechanically simply by running the inliner early in both pipelines.

    Policies mirror the toggles in the paper's tables: gcc's
    [inline-fncs-called-once] (inline and delete single-callsite
    functions), [inline-small-functions], [inline-functions] (larger,
    hotness-aware, O2+), the [inline] master switch, and clang's
    [Inliner] with a per-level threshold. *)

type policy = {
  called_once : bool;
  small_threshold : int;  (** 0 disables *)
  functions_threshold : int;  (** 0 disables; doubled for hot callsites *)
  max_caller_size : int;
  rounds : int;
}

let policy_off =
  {
    called_once = false;
    small_threshold = 0;
    functions_threshold = 0;
    max_caller_size = 500;
    rounds = 3;
  }

(* ------------------------------------------------------------------ *)

let count_callsites (p : Ir.program) =
  let counts = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ fn ->
      Ir.iter_instrs fn (fun _ i ->
          match i.Ir.ik with
          | Ir.Call (_, f, _) ->
              Hashtbl.replace counts f
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts f))
          | _ -> ()))
    p.Ir.funcs;
  counts

let is_directly_recursive (fn : Ir.fn) =
  let found = ref false in
  Ir.iter_instrs fn (fun _ i ->
      match i.Ir.ik with
      | Ir.Call (_, f, _) when f = fn.Ir.f_name -> found := true
      | _ -> ());
  !found

(** Splice [callee]'s body into [caller] at the callsite identified by
    physical equality with [call_instr] inside [host_label]. *)
let inline_at (caller : Ir.fn) ~host_label ~(call_instr : Ir.instr)
    (callee : Ir.fn) =
  let host = Ir.block caller host_label in
  let dst, args =
    match call_instr.Ir.ik with
    | Ir.Call (d, _, args) -> (d, args)
    | _ -> invalid_arg "inline_at: not a call"
  in
  (* Split the host block around the call. *)
  let rec split before = function
    | [] -> invalid_arg "inline_at: callsite not found"
    | i :: rest when i == call_instr -> (List.rev before, rest)
    | i :: rest -> split (i :: before) rest
  in
  let before, after = split [] host.Ir.instrs in
  let cont = Ir.new_block caller in
  cont.Ir.instrs <- after;
  cont.Ir.term <- host.Ir.term;
  cont.Ir.term_line <- host.Ir.term_line;
  cont.Ir.freq <- host.Ir.freq;
  cont.Ir.prob <- host.Ir.prob;
  (* Phis in old successors referring to the host now come from the
     continuation. *)
  List.iter
    (fun s ->
      List.iter
        (fun (p : Ir.phi) ->
          p.Ir.p_args <-
            List.map
              (fun (l, o) -> if l = host_label then (cont.Ir.b_label, o) else (l, o))
              p.Ir.p_args)
        (Ir.block caller s).Ir.phis)
    (Ir.succs host.Ir.term);
  host.Ir.instrs <- before;
  (* Copy the callee. *)
  let reg_map : (Ir.reg, Ir.operand) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun i (r, _) ->
      let arg = try List.nth args i with _ -> Ir.Imm 0 in
      Hashtbl.replace reg_map r arg)
    callee.Ir.f_params;
  let fresh_of : (Ir.reg, Ir.reg) Hashtbl.t = Hashtbl.create 32 in
  let fresh_def r =
    match Hashtbl.find_opt fresh_of r with
    | Some r' -> r'
    | None ->
        let r' = Ir.fresh_reg caller in
        Hashtbl.replace fresh_of r r';
        Hashtbl.replace reg_map r (Ir.Reg r');
        r'
  in
  (* Pre-register fresh names for every callee definition so that uses
     that appear before defs in our traversal still map correctly. The
     walk follows the callee's layout, never its block table: fresh
     register numbering in the caller must not depend on the table's
     bucket order (which reflects insertion history, not content). *)
  List.iter
    (fun l ->
      let b = Ir.block callee l in
      List.iter (fun (p : Ir.phi) -> ignore (fresh_def p.Ir.p_dst)) b.Ir.phis;
      List.iter
        (fun (i : Ir.instr) ->
          List.iter (fun d -> ignore (fresh_def d)) (Ir.def_of_ikind i.Ir.ik))
        b.Ir.instrs)
    callee.Ir.layout;
  let slot_map : (int, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (s : Ir.slot) ->
      let s' =
        Ir.fresh_slot caller ~size:s.Ir.s_size ~var:s.Ir.s_var
          ~array:s.Ir.s_array
      in
      Hashtbl.replace slot_map s.Ir.s_id s'.Ir.s_id)
    callee.Ir.f_slots;
  let label_map : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun l -> Hashtbl.replace label_map l (Ir.new_block caller).Ir.b_label)
    callee.Ir.layout;
  let map_label l =
    match Hashtbl.find_opt label_map l with
    | Some l' -> l'
    | None -> invalid_arg "inline_at: unmapped label"
  in
  let map_use r = Hashtbl.find_opt reg_map r in
  let map_slots ik =
    let fix (a : Ir.addr) =
      match a.Ir.base with
      | Ir.Slot s -> { a with Ir.base = Ir.Slot (Hashtbl.find slot_map s) }
      | Ir.Global _ -> a
    in
    match ik with
    | Ir.Load (d, a) -> Ir.Load (d, fix a)
    | Ir.Store (a, v) -> Ir.Store (fix a, v)
    | other -> other
  in
  let rets = ref [] in
  List.iter
    (fun l ->
      let src = Ir.block callee l in
      let dst_b = Ir.block caller (map_label l) in
      dst_b.Ir.phis <-
        List.map
          (fun (p : Ir.phi) ->
            {
              Ir.p_dst = fresh_def p.Ir.p_dst;
              p_args =
                List.map
                  (fun (pl, o) ->
                    (map_label pl, Ir.subst_operand map_use o))
                  p.Ir.p_args;
            })
          src.Ir.phis;
      dst_b.Ir.instrs <-
        List.map
          (fun (i : Ir.instr) ->
            {
              Ir.ik = map_slots (Putil.clone_ikind ~fresh_def ~map_use i.Ir.ik);
              line = i.Ir.line;
            })
          src.Ir.instrs;
      dst_b.Ir.freq <- host.Ir.freq *. src.Ir.freq;
      dst_b.Ir.prob <- src.Ir.prob;
      dst_b.Ir.term_line <- src.Ir.term_line;
      dst_b.Ir.term <-
        (match src.Ir.term with
        | Ir.Br t -> Ir.Br (map_label t)
        | Ir.Cbr (c, t1, t2) ->
            Ir.Cbr (Ir.subst_operand map_use c, map_label t1, map_label t2)
        | Ir.Ret v ->
            let value =
              match v with
              | Some o -> Ir.subst_operand map_use o
              | None -> Ir.Imm 0
            in
            rets := (map_label l, value) :: !rets;
            Ir.Br cont.Ir.b_label))
    callee.Ir.layout;
  (* Announce the callee's parameters at the inlined entry, the
     inlined-subroutine debug convention. *)
  let entry_copy = Ir.block caller (map_label callee.Ir.entry) in
  entry_copy.Ir.instrs <-
    List.mapi
      (fun i (_, (v : Ir.var_id)) ->
        let arg = try List.nth args i with _ -> Ir.Imm 0 in
        { Ir.ik = Ir.Dbg (v, Some arg); line = call_instr.Ir.line })
      callee.Ir.f_params
    @ entry_copy.Ir.instrs;
  host.Ir.term <- Ir.Br (map_label callee.Ir.entry);
  host.Ir.term_line <- call_instr.Ir.line;
  (* The call's result becomes a phi of the inlined returns. *)
  (match dst with
  | Some d ->
      cont.Ir.phis <- [ { Ir.p_dst = d; p_args = List.rev !rets } ]
  | None -> ());
  (* Layout: host, inlined blocks, continuation, rest. *)
  let inlined_labels = List.map map_label callee.Ir.layout in
  let rest =
    List.filter
      (fun l -> l <> cont.Ir.b_label && not (List.mem l inlined_labels))
      caller.Ir.layout
  in
  let rec insert_after = function
    | [] -> []
    | l :: tl when l = host_label ->
        (l :: inlined_labels) @ (cont.Ir.b_label :: tl)
    | l :: tl -> l :: insert_after tl
  in
  caller.Ir.layout <- insert_after rest;
  Ir.recompute_preds caller

(* ------------------------------------------------------------------ *)

(** [run p ~policy ~roots] inlines according to [policy]. [roots] are
    entry points that must never be deleted even when all their calls are
    inlined away. Returns the number of callsites inlined. *)
let run (p : Ir.program) ~(policy : policy) ~roots =
  let total = ref 0 in
  for _round = 1 to policy.rounds do
    let callsites = count_callsites p in
    let deletable = Hashtbl.create 8 in
    (* Visit callers in source order, never table order: inlining grows
       caller bodies progressively, so the visit order is observable in
       the result (a caller inlined early may cross a size threshold for
       a later decision). Table order depends on insertion history —
       e.g. whether the program was just lowered or restored from a
       snapshot — and must not leak into the output. *)
    let callers = Ir.sorted_funcs p in
    List.iter
      (fun caller ->
        (* Collect the candidate callsites first: inlining mutates the
           block structure under us. *)
        let candidates = ref [] in
        Ir.iter_blocks caller (fun b ->
            List.iter
              (fun (i : Ir.instr) ->
                match i.Ir.ik with
                | Ir.Call (_, f, _) when f <> caller.Ir.f_name -> (
                    match Hashtbl.find_opt p.Ir.funcs f with
                    | Some callee when not (is_directly_recursive callee) ->
                        let size = Ir.size callee in
                        let hot = b.Ir.freq >= 8.0 in
                        let once =
                          policy.called_once
                          && Hashtbl.find_opt callsites f = Some 1
                          (* gcc bounds called-once inlining by unit
                             growth; very large bodies stay outlined. *)
                          && size <= 40
                        in
                        let small =
                          policy.small_threshold > 0
                          && size <= policy.small_threshold
                        in
                        let general =
                          policy.functions_threshold > 0
                          && (size <= policy.functions_threshold
                             || (hot && size <= 2 * policy.functions_threshold))
                        in
                        if
                          (once || small || general)
                          && Ir.size caller + size <= policy.max_caller_size
                        then begin
                          candidates := (b.Ir.b_label, i, callee, once) :: !candidates
                        end
                    | _ -> ())
                | _ -> ())
              b.Ir.instrs);
        List.iter
          (fun (host_label, call_instr, callee, once) ->
            (* The block structure may have changed; locate the call
               again by physical identity. *)
            let still_there = ref None in
            Ir.iter_blocks caller (fun b ->
                List.iter
                  (fun i -> if i == call_instr then still_there := Some b.Ir.b_label)
                  b.Ir.instrs);
            ignore host_label;
            match !still_there with
            | Some host_label ->
                inline_at caller ~host_label ~call_instr callee;
                incr total;
                if once then Hashtbl.replace deletable callee.Ir.f_name ()
            | None -> ())
          (List.rev !candidates);
        Cleanup.run caller)
      callers;
    (* Remove single-callsite functions that are now uncalled. *)
    let callsites_after = count_callsites p in
    Hashtbl.iter
      (fun name () ->
        if
          (not (List.mem name roots))
          && Option.value ~default:0 (Hashtbl.find_opt callsites_after name) = 0
        then Hashtbl.remove p.Ir.funcs name)
      deletable
  done;
  !total
