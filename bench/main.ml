(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus Bechamel
   micro-benchmarks of the toolchain itself.

     dune exec bench/main.exe            -- print every table/figure
     dune exec bench/main.exe -- --only table5 fig3
     dune exec bench/main.exe -- --micro -- also run micro-benchmarks
     dune exec bench/main.exe -- --synth 120  -- more Table I programs
     dune exec bench/main.exe -- --stats      -- unified counter table
                                   (engine caches + sanitizer + obs)
     dune exec bench/main.exe -- --sanitize   -- pass-boundary sanitizer
                                   on for every compile (counters show
                                   under --stats as sanitize/<pass>/...)
     dune exec bench/main.exe -- --json out.json  -- machine-readable
                                   timings + counter table
     dune exec bench/main.exe -- --jobs 4     -- engine worker pool
     dune exec bench/main.exe -- --trace out.json -- Chrome trace_event
                                   JSON of every span (chrome://tracing)
     dune exec bench/main.exe -- --profile    -- sorted self-time report
     dune exec bench/main.exe -- --cache-dir D -- persistent artifact
                                   store at D (default _cache/ or
                                   $DEBUGTUNER_CACHE); warm re-runs are
                                   near-instant and byte-identical
     dune exec bench/main.exe -- --no-cache   -- disable the store
     dune exec bench/main.exe -- --no-prefix-cache -- compile sweeps
                                   from scratch (disable pass-prefix
                                   incremental compilation)

   The shared switches (--stats/--json/--jobs/--sanitize/--trace/
   --profile/--cache-dir/--no-cache/--no-prefix-cache) are declared
   once in Util.Cliopts
   and mean the same thing under `debugtuner_cli`. Output is
   deterministic for a given --synth value, including under --jobs > 1
   (the engine's parallel reduction is ordered) and across cold/warm
   cache runs (only the bracketed timing lines vary). *)

module E = Debugtuner.Experiments

let timings : (string * float) list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := (name, dt) :: !timings;
  Printf.printf "[%s: %.1fs]\n\n%!" name dt;
  r

(* ------------------------------------------------------------------ *)
(* Service-mode scenario (DESIGN.md "Service mode & API"): an
   in-process daemon on a scratch socket, one cold one-shot client —
   paying the compile — then N concurrent clients x M rounds of the
   same request mix served from the daemon's shared caches. The two
   timing rows pushed here ("serve-cold-one-shot", "serve-warm-p50")
   feed compare.ml's serve gate: warm p50 must be at least 10x faster
   than the cold one-shot. The table is deterministic; latencies and
   throughput go on a bracketed line. *)

let serve_requests =
  let cfg = Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2 in
  let compile view =
    Api.Request.Compile
      {
        c_subject = Api.Request.Named "zlib";
        c_config = cfg;
        c_profile = None;
        c_sanitize = false;
        c_view = view;
      }
  in
  [
    compile Api.Request.Summary;
    Api.Request.Bench
      {
        b_subject = Api.Request.Named "zlib";
        b_config = cfg;
        b_action = Api.Request.Cost;
      };
    compile Api.Request.Passes;
    Api.Request.Stats { s_what = Api.Request.Suite };
  ]

let serve_scenario () =
  let socket =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "dt-bench-%d.sock" (Unix.getpid ()))
  in
  let ctx = Api.create_ctx () in
  let server = Api_server.create ~queue_limit:32 ~socket ctx in
  let accept = Api_server.start server in
  let cold_req = List.hd serve_requests in
  let t0 = Unix.gettimeofday () in
  let cold_ok =
    match Api_client.oneshot socket cold_req with
    | Ok r -> r.Api.Response.status = Api.Response.Ok
    | Error _ -> false
  in
  let cold_dt = Unix.gettimeofday () -. t0 in
  timings := ("serve-cold-one-shot", cold_dt) :: !timings;
  let n_clients = 4 and rounds = 8 in
  let per_round = List.length serve_requests in
  let lat = Array.init n_clients (fun _ -> Array.make (rounds * per_round) 0.0) in
  let okc = Array.make n_clients 0 in
  let w0 = Unix.gettimeofday () in
  let client i () =
    let c = Api_client.connect socket in
    let slot = ref 0 in
    for _ = 1 to rounds do
      List.iter
        (fun req ->
          let r0 = Unix.gettimeofday () in
          (match Api_client.rpc c req with
          | Ok r when r.Api.Response.status = Api.Response.Ok ->
              okc.(i) <- okc.(i) + 1
          | _ -> ());
          lat.(i).(!slot) <- Unix.gettimeofday () -. r0;
          incr slot)
        serve_requests
    done;
    Api_client.close c
  in
  let threads = List.init n_clients (fun i -> Thread.create (client i) ()) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. w0 in
  Api_server.stop server;
  Thread.join accept;
  let all = Array.concat (Array.to_list lat) in
  Array.sort compare all;
  let pct q =
    let n = Array.length all in
    if n = 0 then 0.0 else all.(min (n - 1) (n * q / 100))
  in
  let p50 = pct 50 and p99 = pct 99 in
  timings := ("serve-warm-p50", p50) :: !timings;
  let total = n_clients * rounds * per_round in
  let warm_ok = Array.fold_left ( + ) 0 okc in
  Printf.printf
    "[serve: cold %.3fs, warm p50 %.2fms p99 %.2fms, %.0f req/s over %d requests]\n\n%!"
    cold_dt (p50 *. 1000.0) (p99 *. 1000.0)
    (if wall > 0.0 then float_of_int total /. wall else 0.0)
    total;
  (* Concurrency phase: the identical compile-heavy workload pushed
     through a serialized server (executors = 0: requests execute
     inline on session threads, which all share the main domain's
     runtime lock — the pre-pool behavior) and through the executor
     pool (min 4 (recommended_domain_count): never more domains than
     cores, where extra domains only add GC synchronization). Each
     phase gets a fresh context, so both pay the same cold tier-1
     compiles; every (client, round, slot) carries a distinct
     disable-set, so every request is a real compile, never a cache
     hit, and no two concurrent requests contend on one key. The rows
     "serve-serialized-4c"/"serve-concurrent-4c" feed compare.ml's
     DEBUGTUNER_SERVE_CONCURRENCY_FLOOR gate (serialized wall over
     concurrent wall — genuine parallel speedup needs cores; single-core
     runners can only assert the pool does not collapse throughput). *)
  let conc_rounds = 4 and conc_slots = 4 in
  let base_cfg =
    Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2
  in
  let pool = Array.of_list (Debugtuner.Toolchain.pass_names base_cfg) in
  let npool = Array.length pool in
  let config_for i r s =
    let k = ((i * conc_rounds) + r) * conc_slots + s in
    let a = k mod npool in
    let b = ((k / npool) + k + 1) mod npool in
    let b = if b = a then (b + 1) mod npool else b in
    {
      base_cfg with
      Debugtuner.Config.disabled = List.sort_uniq compare [ pool.(a); pool.(b) ];
    }
  in
  let conc_requests i =
    List.concat
      (List.init conc_rounds (fun r ->
           List.init conc_slots (fun s ->
               Api.Request.Compile
                 {
                   c_subject = Api.Request.Named "zlib";
                   c_config = config_for i r s;
                   c_profile = None;
                   c_sanitize = false;
                   c_view = Api.Request.Summary;
                 })))
  in
  let run_phase ~executors =
    let sock = Printf.sprintf "%s.x%d" socket executors in
    let pctx = Api.create_ctx () in
    let pserver =
      Api_server.create ~queue_limit:32 ~executors ~socket:sock pctx
    in
    let paccept = Api_server.start pserver in
    let ok = Array.make n_clients 0 in
    let t0 = Unix.gettimeofday () in
    let client i () =
      let c = Api_client.connect sock in
      List.iter
        (fun req ->
          match Api_client.rpc c req with
          | Ok r when r.Api.Response.status = Api.Response.Ok ->
              ok.(i) <- ok.(i) + 1
          | _ -> ())
        (conc_requests i);
      Api_client.close c
    in
    let threads = List.init n_clients (fun i -> Thread.create (client i) ()) in
    List.iter Thread.join threads;
    let wall = Unix.gettimeofday () -. t0 in
    Api_server.stop pserver;
    Thread.join paccept;
    (wall, Array.fold_left ( + ) 0 ok)
  in
  let ser_wall, ser_ok = run_phase ~executors:0 in
  let conc_wall, conc_ok =
    run_phase ~executors:(min 4 (Domain.recommended_domain_count ()))
  in
  timings := ("serve-serialized-4c", ser_wall) :: !timings;
  timings := ("serve-concurrent-4c", conc_wall) :: !timings;
  let conc_total = n_clients * conc_rounds * conc_slots in
  Printf.printf
    "[serve-concurrency: serialized %.2fs, 4-client concurrent %.2fs, speedup %.2fx over %d compiles]\n\n%!"
    ser_wall conc_wall
    (if conc_wall > 0.0 then ser_wall /. conc_wall else 0.0)
    conc_total;
  [
    Util.Tablefmt.make
      ~title:"Service mode: daemon under concurrent load (zlib, gcc-O2)"
      ~header:[ "phase"; "clients"; "requests"; "ok" ]
      [
        [ "cold one-shot"; "1"; "1"; (if cold_ok then "1" else "0") ];
        [
          "warm mixed";
          string_of_int n_clients;
          string_of_int total;
          string_of_int warm_ok;
        ];
        [
          "serialized compiles";
          string_of_int n_clients;
          string_of_int conc_total;
          string_of_int ser_ok;
        ];
        [
          "concurrent compiles";
          string_of_int n_clients;
          string_of_int conc_total;
          string_of_int conc_ok;
        ];
      ];
  ]

(* ------------------------------------------------------------------ *)
(* VM core scenario (DESIGN.md "VM core"): the same hot workload —
   libpng's fuzz_defilter harness at gcc-O2 — run for a fixed number of
   iterations under the reference interpreter and under the pre-decoded
   direct-threaded core. The two timing rows pushed here
   ("vm-reference", "vm-fast") feed compare.ml's vm gate: the fast core
   must be at least 5x faster. The table (cost / instrs / output
   checksum, byte-identical across cores) is deterministic; wall-clock
   and the speedup go on a bracketed line. *)

(* A deliberately hot kernel (~350k executed instructions per run):
   per-run setup amortises away, so the row ratio measures the two
   dispatch loops themselves rather than frame/arena allocation. *)
let vm_hot_src =
  {|
int buf[64];

int mix(int a, int b) {
  int t = a * 31 + b;
  t = t ^ (t / 7);
  return t + (t % 13);
}

int main() {
  int i = 0;
  int acc = 1;
  while (i < 64) {
    buf[i] = i * 2654435761 + 17;
    i = i + 1;
  }
  int round = 0;
  while (round < 200) {
    i = 0;
    while (i < 64) {
      acc = mix(acc, buf[i]);
      buf[i] = acc;
      i = i + 1;
    }
    round = round + 1;
  }
  output(acc & 65535);
  return 0;
}
|}

let vm_scenario () =
  let ast = Minic.Typecheck.parse_and_check vm_hot_src in
  let bin =
    Debugtuner.Toolchain.compile ast
      ~config:(Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2)
      ~roots:[ "main" ]
  in
  let entry = "main" in
  let input = [] in
  let prog =
    match Vm.Decode.get bin with
    | Some p -> p
    | None -> failwith "vm scenario: binary not supported by the fast core"
  in
  let run_ref () = Vm.Reference.run bin ~entry ~input Vm.default_opts in
  let run_fast () = Vm.Fast.run prog bin ~entry ~args:[] ~input Vm.default_opts in
  let r_ref = run_ref () and r_fast = run_fast () in
  let agree =
    r_ref.Vm.output = r_fast.Vm.output
    && r_ref.Vm.cost = r_fast.Vm.cost
    && r_ref.Vm.instrs = r_fast.Vm.instrs
  in
  let iters = 20 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      ignore (f ())
    done;
    Unix.gettimeofday () -. t0
  in
  let dt_ref = time run_ref in
  let dt_fast = time run_fast in
  timings := ("vm-reference", dt_ref) :: !timings;
  timings := ("vm-fast", dt_fast) :: !timings;
  let speedup = if dt_fast > 0.0 then dt_ref /. dt_fast else infinity in
  Printf.printf
    "[vm: reference %.3fs, fast %.3fs over %d runs, speedup %.1fx]\n\n%!"
    dt_ref dt_fast iters speedup;
  let checksum r =
    List.fold_left (fun a v -> (a * 31) + v) (List.length r.Vm.output) r.Vm.output
  in
  let row core (r : Vm.result) =
    [
      core;
      string_of_int r.Vm.cost;
      string_of_int r.Vm.instrs;
      string_of_int (checksum r);
      (if agree then "yes" else "NO");
    ]
  in
  [
    Util.Tablefmt.make
      ~title:"VM cores: hot mix kernel, gcc-O2 (identical results)"
      ~header:[ "core"; "cost"; "instrs"; "output checksum"; "agree" ]
      [ row "reference" r_ref; row "fast" r_fast ];
  ]

(* ------------------------------------------------------------------ *)
(* Sharded corpus scenario (DESIGN.md "Sharded execution"): the same
   corpus experiment run as 1, 2 and 4 single-shard worker *processes*
   (this binary re-exec'd with --shard-worker), each writing a JSON
   partial that the parent merges through Api.Request.Merge. Workers
   run one at a time and each is timed alone: the recorded row for a
   phase is the *slowest shard's own wall clock* — the phase's critical
   path, which is what a deployment with one core per worker pays.
   Timing n concurrent processes here would measure the CI machine's
   core count, not the sharding; the critical path gates exactly the
   property this code controls (balanced slices, no duplicated work).
   The three timing rows ("shard-1-proc", "shard-2-proc",
   "shard-4-proc") feed compare.ml's DEBUGTUNER_SHARD_FLOOR gate
   (default: 2 processes at least 1.5x faster than 1). Each phase gets
   its own store directory — under --cache-dir when given (so a warm
   re-run resumes every phase from disk), else a scratch dir removed at
   the end — and the merged tables of all three phases must be
   byte-identical, which the scenario itself asserts. *)

let shard_seed = 7
let shard_corpus = 96

let shard_configs =
  [
    Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2;
    Debugtuner.Config.make Debugtuner.Config.Clang Debugtuner.Config.O1;
  ]

(* Set from --cache-dir before the scenarios run; None = scratch. *)
let shard_store_base : string option ref = ref None

let shard_worker_main spec dir =
  (match Util.Cliopts.parse_shard spec with
  | Error msg ->
      prerr_endline ("shard worker: " ^ msg);
      exit 2
  | Ok shard -> (
      let store =
        Debugtuner.Measure_engine.open_store
          ~dir:(Filename.concat dir "store") ()
      in
      let job =
        Api.Job.make ~configs:shard_configs ~seed:shard_seed
          ~corpus:shard_corpus ~shard ()
      in
      match
        Api.execute (Api.create_ctx ~store ())
          (Api.Request.Experiments { e_job = job })
      with
      | {
       Api.Response.status = Api.Response.Ok;
       data = Api.Response.D_partial p;
       _;
      } ->
          let i, n = shard in
          let file =
            Filename.concat dir (Printf.sprintf "shard-%d-of-%d.json" i n)
          in
          let oc = open_out file in
          output_string oc (Api.partial_to_json p);
          output_char oc '\n';
          close_out oc
      | { Api.Response.text; _ } ->
          prerr_endline ("shard worker: " ^ text);
          exit 1));
  exit 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      try Sys.rmdir path with Sys_error _ -> ()
    end
    else try Sys.remove path with Sys_error _ -> ()

let mkdir_p dir =
  try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let shard_scenario () =
  let base, scratch =
    match !shard_store_base with
    | Some d ->
        mkdir_p d;
        (d, false)
    | None ->
        let d =
          Filename.concat
            (Filename.get_temp_dir_name ())
            (Printf.sprintf "dt-bench-shard-%d" (Unix.getpid ()))
        in
        mkdir_p d;
        (d, true)
  in
  let exe = Sys.executable_name in
  let run_worker dir spec =
    flush stdout;
    let pid =
      Unix.create_process exe
        [| exe; "--shard-worker"; spec; dir |]
        Unix.stdin Unix.stdout Unix.stderr
    in
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _ -> failwith ("shard scenario: worker " ^ spec ^ " failed")
  in
  let phase n =
    let dir = Filename.concat base (Printf.sprintf "shard-phase-%d" n) in
    mkdir_p dir;
    let slowest = ref 0.0 in
    for i = 1 to n do
      let t0 = Unix.gettimeofday () in
      run_worker dir (Printf.sprintf "%d/%d" i n);
      slowest := Float.max !slowest (Unix.gettimeofday () -. t0)
    done;
    let partials =
      List.init n (fun k ->
          let file =
            Filename.concat dir
              (Printf.sprintf "shard-%d-of-%d.json" (k + 1) n)
          in
          let ic = open_in_bin file in
          let s = really_input_string ic (in_channel_length ic) in
          close_in ic;
          match Api.partial_of_json s with
          | Ok p -> p
          | Error e -> failwith ("shard scenario: bad partial " ^ file ^ ": " ^ e))
    in
    let merged =
      Api.execute (Api.create_ctx ())
        (Api.Request.Merge { m_partials = partials })
    in
    (match merged.Api.Response.status with
    | Api.Response.Ok -> ()
    | _ -> failwith ("shard scenario: merge failed: " ^ merged.Api.Response.text));
    let programs =
      List.fold_left (fun a p -> a + p.Api.Partial.pt_programs) 0 partials
    in
    let rows =
      List.fold_left (fun a p -> a + List.length p.Api.Partial.pt_rows) 0 partials
    in
    (!slowest, programs, rows, merged.Api.Response.text)
  in
  let t1, pr1, rw1, text1 = phase 1 in
  let t2, pr2, rw2, text2 = phase 2 in
  let t4, pr4, rw4, text4 = phase 4 in
  timings := ("shard-1-proc", t1) :: !timings;
  timings := ("shard-2-proc", t2) :: !timings;
  timings := ("shard-4-proc", t4) :: !timings;
  if scratch then rm_rf base;
  let identical = text1 = text2 && text2 = text4 in
  Printf.printf
    "[shard: 1-proc %.3fs, 2-proc critical path %.3fs (%.1fx), 4-proc %.3fs (%.1fx)]\n\n%!"
    t1 t2
    (if t2 > 0.0 then t1 /. t2 else infinity)
    t4
    (if t4 > 0.0 then t1 /. t4 else infinity);
  if not identical then
    failwith "shard scenario: merged tables differ across shard counts";
  print_string text1;
  let row n pr rw =
    [
      string_of_int n;
      string_of_int pr;
      string_of_int rw;
      (if identical then "yes" else "NO");
    ]
  in
  [
    Util.Tablefmt.make
      ~title:
        (Printf.sprintf
           "Sharded execution: corpus n=%d, seed %d, merged from JSON partials"
           shard_corpus shard_seed)
      ~header:[ "processes"; "programs"; "rows"; "merge identical" ]
      [ row 1 pr1 rw1; row 2 pr2 rw2; row 4 pr4 rw4 ];
  ]

let experiments ctx : (string * (unit -> Util.Tablefmt.t list)) list =
  [
    ("table1", fun () -> [ E.table1 ctx ]);
    ("table2", fun () -> [ E.table2 ctx ]);
    ("table3", fun () -> [ E.table3 ctx ]);
    ("table4", fun () -> [ E.table4 ctx ]);
    ("table5", fun () -> [ E.table5 ctx ]);
    ("table6", fun () -> [ E.table6 ctx ]);
    ("table7", fun () -> [ E.table7 ctx ]);
    ( "fig2",
      fun () ->
        print_string (E.fig2_scatter ctx);
        print_newline ();
        [ E.fig2 ctx ] );
    ( "table8",
      fun () ->
        let top, bottom = E.table8 ctx in
        [ top; bottom ] );
    ("table9", fun () -> [ E.table9 ctx ]);
    ("table10", fun () -> [ E.table10 ctx ]);
    ("table11", fun () -> [ E.table11 ctx ]);
    ("table12", fun () -> [ E.table12 ctx ]);
    ( "table13",
      fun () ->
        let t13, _ = E.table13_14 ctx in
        [ t13 ] );
    ( "table14",
      fun () ->
        let _, t14 = E.table13_14 ctx in
        [ t14 ] );
    ( "fig3",
      fun () ->
        let f3, _ = E.fig3_table15 ctx in
        [ f3 ] );
    ( "table15",
      fun () ->
        let _, t15 = E.fig3_table15 ctx in
        [ t15 ] );
    ("fig4", fun () -> [ E.fig4 ctx ]);
    ( "ablations",
      fun () ->
        let cfg = Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2 in
        let suite = E.suite ctx in
        [
          Debugtuner.Ablations.breakpoint_policy suite cfg;
          Debugtuner.Ablations.entry_values suite cfg;
          Debugtuner.Ablations.ranking_metric suite cfg;
          Debugtuner.Ablations.scheduler_lines suite cfg;
        ] );
    ( "ranking",
      (* The Section V pass sweep in isolation: one full Ranking.rank of
         gcc-O2 over the suite — the cost driver the pass-prefix cache
         targets (compare BENCH_baseline.json cold wall clock with
         --no-prefix-cache). *)
      fun () ->
        let cfg =
          Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2
        in
        let lr = E.ranking ctx cfg in
        let rows =
          List.mapi
            (fun i (e : Debugtuner.Ranking.pass_effect) ->
              [
                string_of_int (i + 1);
                e.Debugtuner.Ranking.pe_pass;
                Printf.sprintf "%.2f" e.Debugtuner.Ranking.pe_avg_rank;
                Printf.sprintf "%.2f"
                  e.Debugtuner.Ranking.pe_geo_increment_pct;
              ])
            (Debugtuner.Ranking.top_passes lr)
        in
        [
          Util.Tablefmt.make
            ~title:"Ranking sweep: top-10 critical passes, gcc-O2"
            ~header:[ "#"; "pass"; "avg rank"; "+%" ]
            rows;
        ] );
    ("clang-og", fun () -> [ E.clang_og_table ctx ]);
    ("per-program", fun () -> [ E.per_program_table ctx ]);
    ("dwarf-sizes", fun () -> [ E.dwarf_sizes_table ctx ]);
    ("autofdo-rounds", fun () -> [ E.autofdo_rounds_table ctx ]);
    ( "search",
      (* ROADMAP item 2: the search layer's experiment — the hill-climb
         front at the pinned (budget, seed) vs the greedy gcc-O2-dy
         points. Bumps search/greedy_total, search/greedy_dominated and
         search/margin_ppm, which compare.ml's dominance gate reads from
         the cold-run JSON counter table. *)
      fun () -> [ E.search_front_table ctx ] );
    ("serve", fun () -> serve_scenario ());
    ("vm", fun () -> vm_scenario ());
    ("shard", fun () -> shard_scenario ());
  ]

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the toolchain                          *)

let micro_tests () =
  let open Bechamel in
  let libpng = Programs.find "libpng" in
  let src = libpng.Suite_types.p_source in
  let ast = Minic.Typecheck.parse_and_check src in
  let roots = Suite_types.roots libpng in
  let compile comp lvl () =
    ignore
      (Debugtuner.Toolchain.compile ast
         ~config:(Debugtuner.Config.make comp lvl)
         ~roots)
  in
  let bin =
    Debugtuner.Toolchain.compile ast
      ~config:(Debugtuner.Config.make Debugtuner.Config.Gcc Debugtuner.Config.O2)
      ~roots
  in
  [
    Test.make ~name:"parse+check libpng"
      (Staged.stage (fun () -> ignore (Minic.Typecheck.parse_and_check src)));
    Test.make ~name:"compile gcc-O0"
      (Staged.stage (compile Debugtuner.Config.Gcc Debugtuner.Config.O0));
    Test.make ~name:"compile gcc-O2"
      (Staged.stage (compile Debugtuner.Config.Gcc Debugtuner.Config.O2));
    Test.make ~name:"compile clang-O2"
      (Staged.stage (compile Debugtuner.Config.Clang Debugtuner.Config.O2));
    Test.make ~name:"vm run libpng/defilter"
      (Staged.stage (fun () ->
           ignore
             (Vm.run bin ~entry:"fuzz_defilter"
                ~input:[ 2; 0; 10; 20; 30; 40; 1; 5; 5; 5; 5 ]
                Vm.default_opts)));
    Test.make ~name:"debugger trace libpng"
      (Staged.stage (fun () ->
           ignore
             (Debugger.trace bin ~entry:"fuzz_defilter"
                ~inputs:[ [ 2; 0; 10; 20; 30; 40; 1; 5 ] ])));
  ]

let run_micro () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.6) ~kde:(Some 100) ()
  in
  let grouped = Test.make_grouped ~name:"toolchain" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  print_endline "== Micro-benchmarks (Bechamel, monotonic clock) ==";
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
      | _ -> Printf.printf "%-40s (no estimate)\n" name)
    results;
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Unified counter table and machine-readable output                   *)

(* One stats path: engine caches, sanitizer boundaries and obs counters
   all flow through Measure_engine.stats_table and render with the
   shared Util.Cliopts key/value formatters, text and JSON alike. *)
let counter_table ctx =
  Debugtuner.Measure_engine.stats_table (E.engine ctx)

let print_stats ctx =
  print_endline "== Counters (engine caches / sanitizer / obs) ==";
  List.iter print_endline (Util.Cliopts.kv_lines (counter_table ctx));
  print_newline ()

(* Hand-rolled JSON: flat structure, only strings / numbers, no
   dependency. *)
let write_json file ctx ~synth ~workers =
  let b = Buffer.create 1024 in
  let timing_fields =
    List.rev_map
      (fun (name, dt) -> Printf.sprintf "    {\"name\": %S, \"seconds\": %.6f}" name dt)
      !timings
  in
  let stat_fields =
    List.map (fun row -> "    " ^ row)
      (Util.Cliopts.kv_json_rows (counter_table ctx))
  in
  Buffer.add_string b "{\n";
  Buffer.add_string b (Printf.sprintf "  \"synth\": %d,\n" synth);
  Buffer.add_string b (Printf.sprintf "  \"workers\": %d,\n" workers);
  Buffer.add_string b
    (Printf.sprintf "  \"total_seconds\": %.3f,\n"
       (List.fold_left (fun a (_, dt) -> a +. dt) 0.0 !timings));
  Buffer.add_string b "  \"timings\": [\n";
  Buffer.add_string b (String.concat ",\n" timing_fields);
  Buffer.add_string b "\n  ],\n";
  Buffer.add_string b "  \"stats\": [\n";
  Buffer.add_string b (String.concat ",\n" stat_fields);
  Buffer.add_string b "\n  ]\n}\n";
  let oc = open_out file in
  output_string oc (Buffer.contents b);
  close_out oc;
  Printf.printf "[timings + counter table written to %s]\n%!" file

let () =
  (* Child mode of the shard scenario: run one shard of the corpus and
     write its JSON partial. Intercepted before normal option parsing —
     a worker is not a harness run. *)
  (match Sys.argv with
  | [| _; "--shard-worker"; spec; dir |] -> shard_worker_main spec dir
  | _ -> ());
  let common = Util.Cliopts.defaults () in
  let rest = Util.Cliopts.parse common (List.tl (Array.to_list Sys.argv)) in
  let rec parse only micro synth = function
    | [] -> (only, micro, synth)
    | "--only" :: rest ->
        let names, rest' =
          let rec take acc = function
            | x :: r when String.length x < 2 || String.sub x 0 2 <> "--" ->
                take (x :: acc) r
            | r -> (List.rev acc, r)
          in
          take [] rest
        in
        parse (only @ names) micro synth rest'
    | "--micro" :: rest -> parse only true synth rest
    | "--synth" :: n :: rest -> parse only micro (int_of_string n) rest
    | _ :: rest -> parse only micro synth rest
  in
  let only, micro, synth = parse [] false 40 rest in
  let jobs = common.Util.Cliopts.c_jobs in
  if common.Util.Cliopts.c_sanitize then Sanitize.enabled := true;
  if common.Util.Cliopts.c_no_prefix_cache then
    Debugtuner.Measure_engine.prefix_cache_enabled := false;
  if common.Util.Cliopts.c_trace <> None || common.Util.Cliopts.c_profile then
    Obs.start ();
  (* The persistent artifact store is on by default (default _cache/, or
     $DEBUGTUNER_CACHE, or --cache-dir): a warm re-run serves compiles,
     traces, metrics and even suite preparation from disk and stays
     byte-identical to a cold one. --no-cache opts out. *)
  let store =
    if common.Util.Cliopts.c_no_cache then None
    else
      Some
        (Debugtuner.Measure_engine.open_store
           ?dir:common.Util.Cliopts.c_cache_dir ())
  in
  (* The shard scenario anchors its per-phase store directories under an
     explicit --cache-dir (warm re-runs then resume every phase from
     disk); with no explicit dir it works in scratch space. *)
  shard_store_base := common.Util.Cliopts.c_cache_dir;
  Printf.printf
    "DebugTuner benchmark harness (deterministic; synth=%d; jobs=%d)\n\n%!"
    synth jobs;
  let ctx =
    timed "prepare suite" (fun () ->
        E.create ~synth_count:synth ~workers:jobs ?store ())
  in
  let selected =
    match only with
    | [] -> experiments ctx
    | names -> List.filter (fun (n, _) -> List.mem n names) (experiments ctx)
  in
  List.iter
    (fun (name, build) ->
      let tables = timed name build in
      List.iter
        (fun t ->
          Util.Tablefmt.print t;
          print_newline ())
        tables)
    selected;
  if micro then run_micro ();
  if common.Util.Cliopts.c_stats then print_stats ctx;
  (match common.Util.Cliopts.c_json with
  | Some file -> write_json file ctx ~synth ~workers:jobs
  | None -> ());
  match Obs.stop () with
  | None -> ()
  | Some session ->
      if common.Util.Cliopts.c_profile then
        print_string (Obs.self_time_report session);
      (match common.Util.Cliopts.c_trace with
      | Some file ->
          let oc = open_out file in
          output_string oc (Obs.to_chrome_json session);
          close_out oc;
          Printf.printf "[trace written to %s (%d events)]\n%!" file
            (List.length (Obs.events session))
      | None -> ())
